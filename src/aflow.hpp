// Umbrella header for the analogflow library: the analog max-flow substrate
// of Liu & Zhang (DAC'15) and every subsystem it depends on. Include the
// per-module headers directly when compile time matters.
#pragma once

#include "analog/crossbar.hpp"
#include "analog/mapper.hpp"
#include "analog/power.hpp"
#include "analog/quantize.hpp"
#include "analog/solver.hpp"
#include "analog/substrate_config.hpp"
#include "analog/tuning.hpp"
#include "analog/variation.hpp"
#include "arch/clustered.hpp"
#include "arch/partition.hpp"
#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "flow/maxflow.hpp"
#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "graph/network.hpp"
#include "la/lu.hpp"
#include "la/ordering.hpp"
#include "la/sparse.hpp"
#include "mincut/decomposition.hpp"
#include "mincut/dual_circuit.hpp"
#include "sim/dc.hpp"
#include "sim/sweep.hpp"
#include "sim/transient.hpp"

#include "circuit/netlist.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace aflow::circuit {

double OpAmp::tau() const {
  // Dominant pole at f_p = GBW / A gives tau = A / (2 pi GBW).
  return params.gain / (2.0 * std::numbers::pi * params.gbw);
}

void Memristor::apply_programming_pulse(double v, double dt) {
  if (std::abs(v) < params.v_threshold) return; // retention below threshold
  const double overdrive = std::abs(v) - params.v_threshold;
  const double delta = params.switch_rate * overdrive * dt;
  // Positive bias (a above b) lowers memristance toward LRS; negative bias
  // raises it toward HRS.
  if (v > 0.0)
    memristance = std::max(params.r_lrs, memristance - delta);
  else
    memristance = std::min(params.r_hrs, memristance + delta);
}

Netlist::Netlist() { node_names_.push_back("gnd"); }

NodeId Netlist::new_node(std::string name) {
  const NodeId id = static_cast<NodeId>(node_names_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  node_names_.push_back(std::move(name));
  return id;
}

void Netlist::check_node(NodeId n) const {
  if (n < 0 || n >= num_nodes())
    throw std::invalid_argument("Netlist: node id out of range");
}

int Netlist::add_resistor(NodeId a, NodeId b, double ohms) {
  check_node(a);
  check_node(b);
  if (ohms == 0.0) throw std::invalid_argument("Netlist: zero resistance");
  resistors_.push_back({a, b, ohms});
  return static_cast<int>(resistors_.size()) - 1;
}

int Netlist::add_negative_resistor(NodeId a, NodeId b, double magnitude_ohms,
                                   double tau) {
  check_node(a);
  check_node(b);
  if (!(magnitude_ohms > 0.0))
    throw std::invalid_argument("Netlist: negative resistor magnitude must be > 0");
  if (tau < 0.0) throw std::invalid_argument("Netlist: negative tau");
  negres_.push_back({a, b, magnitude_ohms, tau});
  return static_cast<int>(negres_.size()) - 1;
}

int Netlist::add_capacitor(NodeId a, NodeId b, double farads) {
  check_node(a);
  check_node(b);
  if (!(farads > 0.0)) throw std::invalid_argument("Netlist: capacitance must be > 0");
  capacitors_.push_back({a, b, farads});
  return static_cast<int>(capacitors_.size()) - 1;
}

int Netlist::add_vsource(NodeId pos, NodeId neg, double volts) {
  check_node(pos);
  check_node(neg);
  vsources_.push_back({pos, neg, volts});
  return static_cast<int>(vsources_.size()) - 1;
}

int Netlist::add_isource(NodeId from, NodeId to, double amps) {
  check_node(from);
  check_node(to);
  isources_.push_back({from, to, amps});
  return static_cast<int>(isources_.size()) - 1;
}

int Netlist::add_diode(NodeId anode, NodeId cathode, const DiodeParams& params) {
  check_node(anode);
  check_node(cathode);
  if (!(params.r_on > 0.0) || !(params.r_off > 0.0))
    throw std::invalid_argument("Netlist: diode resistances must be > 0");
  diodes_.push_back({anode, cathode, params});
  return static_cast<int>(diodes_.size()) - 1;
}

int Netlist::add_opamp(NodeId in_plus, NodeId in_minus, NodeId out,
                       const OpAmpParams& params) {
  check_node(in_plus);
  check_node(in_minus);
  check_node(out);
  if (!(params.r_out > 0.0))
    throw std::invalid_argument("Netlist: op-amp needs r_out > 0");
  if (!(params.gain > 0.0) || !(params.gbw > 0.0))
    throw std::invalid_argument("Netlist: op-amp gain and GBW must be > 0");
  opamps_.push_back({in_plus, in_minus, out, params});
  return static_cast<int>(opamps_.size()) - 1;
}

int Netlist::add_memristor(NodeId a, NodeId b, const MemristorParams& params,
                           double initial_memristance) {
  check_node(a);
  check_node(b);
  if (!(params.r_lrs > 0.0) || !(params.r_hrs > params.r_lrs))
    throw std::invalid_argument("Netlist: memristor needs 0 < r_lrs < r_hrs");
  const double m =
      std::clamp(initial_memristance, params.r_lrs, params.r_hrs);
  memristors_.push_back({a, b, params, m});
  return static_cast<int>(memristors_.size()) - 1;
}

int Netlist::add_nic_negative_resistor(NodeId terminal, double r_target, double r0,
                                       const OpAmpParams& params) {
  check_node(terminal);
  const NodeId vminus = new_node(node_name(terminal) + ".nic_vm");
  const NodeId vout = new_node(node_name(terminal) + ".nic_vo");
  add_resistor(vout, vminus, r0);
  add_resistor(vminus, kGround, r0);
  add_resistor(vout, terminal, r_target);
  return add_opamp(terminal, vminus, vout, params);
}

} // namespace aflow::circuit

#include "circuit/mna.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aflow::circuit {

namespace {

constexpr double kThermalVoltage = 0.025852; // kT/q at 300 K, volts

/// SPICE-style junction voltage limiting (pnjlim): keeps Newton from
/// overflowing the exponential.
double limit_junction(double v_new, double v_old, double vt, double vcrit) {
  if (v_new > vcrit && std::abs(v_new - v_old) > 2.0 * vt) {
    if (v_old > 0.0) {
      const double arg = 1.0 + (v_new - v_old) / vt;
      if (arg > 0.0) return v_old + vt * std::log(arg);
      return vcrit;
    }
    return vt * std::log(v_new / vt);
  }
  return v_new;
}

// History-term arithmetic shared between the full stamp loop and the
// RHS-only tape replay (refresh_history_rhs). Each term has exactly one
// definition so both paths round identically — that is what makes the
// incremental refresh bit-identical to a full assemble.

double negres_history(const NegativeResistor& nr, double i_state, double dt) {
  const double k = dt / nr.tau;
  const double beta = 1.0 / (1.0 + k);
  return beta * i_state; // current leaving terminal a
}

double cap_history(const Capacitor& c, double v_state, double dt) {
  const double g = c.capacitance / dt;
  return g * v_state;
}

double opamp_history(const OpAmp& op, double ve_state, double dt) {
  const double k = dt / op.tau();
  const double hist = ve_state / (1.0 + k);
  return hist * (1.0 / op.params.r_out);
}

struct ShockleyLin {
  double gd = 0.0;  // companion conductance
  double ieq = 0.0; // companion current at the linearisation point
};

ShockleyLin shockley_linearization(const Diode& d, double v0) {
  const double nvt = d.params.emission * kThermalVoltage;
  const double e = std::exp(std::min(v0 / nvt, 200.0));
  const double gd = d.params.i_sat / nvt * e;
  const double id = d.params.i_sat * (e - 1.0);
  return {gd, id - gd * v0};
}

} // namespace

DeviceState DeviceState::initial(const Netlist& net) {
  DeviceState s;
  s.diode_on.assign(net.diodes().size(), 0);
  s.diode_v.assign(net.diodes().size(), 0.0);
  s.opamp_ve.assign(net.opamps().size(), 0.0);
  s.opamp_sat.assign(net.opamps().size(), 0);
  s.negres_i.assign(net.negative_resistors().size(), 0.0);
  s.cap_v.assign(net.capacitors().size(), 0.0);
  return s;
}

size_t DeviceState::memory_bytes() const {
  return diode_on.capacity() * sizeof(char) +
         diode_v.capacity() * sizeof(double) +
         opamp_ve.capacity() * sizeof(double) +
         opamp_sat.capacity() * sizeof(signed char) +
         negres_i.capacity() * sizeof(double) + cap_v.capacity() * sizeof(double);
}

int MnaAssembler::num_unknowns() const {
  return (net_->num_nodes() - 1) + static_cast<int>(net_->vsources().size());
}

int MnaAssembler::vsource_unknown(int src) const {
  return (net_->num_nodes() - 1) + src;
}

// The stamp sequence below must be state-independent: PatternAssembly maps
// the i-th emitted triplet to a fixed CSC slot, so every DeviceState (and
// every gmin value) has to emit the same (row, col) sequence. Devices whose
// linearisation drops a coupling term (railed op-amps) stamp an explicit
// zero instead of skipping the entry.
void MnaAssembler::assemble(const DeviceState& state, const StampOptions& opt,
                            la::Triplets& a, std::vector<double>& rhs) const {
  assemble_impl(state, opt, a, rhs, nullptr);
}

void MnaAssembler::assemble_impl(
    const DeviceState& state, const StampOptions& opt, la::Triplets& a,
    std::vector<double>& rhs,
    std::vector<PatternAssembly::RhsSlot>* tape) const {
  using RhsSlot = PatternAssembly::RhsSlot;
  const int n = num_unknowns();
  a.reset(n, n);
  rhs.assign(n, 0.0);

  auto stamp_conductance = [&](NodeId na, NodeId nb, double g) {
    const int ia = node_unknown(na);
    const int ib = node_unknown(nb);
    if (ia >= 0) a.add(ia, ia, g);
    if (ib >= 0) a.add(ib, ib, g);
    if (ia >= 0 && ib >= 0) {
      a.add(ia, ib, -g);
      a.add(ib, ia, -g);
    }
  };
  auto stamp_current_into = [&](NodeId node, double amps) {
    const int i = node_unknown(node);
    if (i < 0) return;
    rhs[i] += amps;
    if (tape) tape->push_back({i, -1, amps, RhsSlot::Kind::kStatic});
  };
  // History contribution: `amps` must equal `sign * <history helper>` so the
  // tape replay — which recomputes the helper and applies `sign` — lands on
  // the same bits.
  auto stamp_history_into = [&](NodeId node, double amps,
                                RhsSlot::Kind kind, int device, double sign) {
    const int i = node_unknown(node);
    if (i < 0) return;
    rhs[i] += amps;
    if (tape) tape->push_back({i, device, sign, kind});
  };

  // gmin to ground on every node keeps otherwise-floating nodes pinned.
  // Stamped unconditionally (an explicit zero when gmin == 0) so the
  // pattern survives gmin stepping.
  for (NodeId node = 1; node < net_->num_nodes(); ++node)
    a.add(node_unknown(node), node_unknown(node), opt.gmin);

  for (const auto& r : net_->resistors())
    stamp_conductance(r.a, r.b, 1.0 / r.resistance);

  for (const auto& m : net_->memristors())
    stamp_conductance(m.a, m.b, 1.0 / m.memristance);

  for (size_t i = 0; i < net_->negative_resistors().size(); ++i) {
    const auto& nr = net_->negative_resistors()[i];
    const double g = 1.0 / nr.magnitude;
    if (!opt.transient || nr.tau <= 0.0) {
      stamp_conductance(nr.a, nr.b, -g);
    } else {
      // Backward Euler on tau dI/dt = -g V - I.
      const double k = opt.dt / nr.tau;
      const double alpha = k / (1.0 + k);
      stamp_conductance(nr.a, nr.b, -alpha * g);
      const double hist = negres_history(nr, state.negres_i[i], opt.dt);
      stamp_history_into(nr.a, -hist, PatternAssembly::RhsSlot::Kind::kNegRes,
                         static_cast<int>(i), -1.0);
      stamp_history_into(nr.b, hist, PatternAssembly::RhsSlot::Kind::kNegRes,
                         static_cast<int>(i), 1.0);
    }
  }

  for (size_t i = 0; i < net_->capacitors().size(); ++i) {
    const auto& c = net_->capacitors()[i];
    if (!opt.transient) continue; // open in DC
    const double g = c.capacitance / opt.dt;
    stamp_conductance(c.a, c.b, g);
    const double hist = cap_history(c, state.cap_v[i], opt.dt);
    stamp_history_into(c.a, hist, PatternAssembly::RhsSlot::Kind::kCap,
                       static_cast<int>(i), 1.0);
    stamp_history_into(c.b, -hist, PatternAssembly::RhsSlot::Kind::kCap,
                       static_cast<int>(i), -1.0);
  }

  for (const auto& cs : net_->isources()) {
    stamp_current_into(cs.from, -cs.value);
    stamp_current_into(cs.to, cs.value);
  }

  for (size_t i = 0; i < net_->vsources().size(); ++i) {
    const auto& vs = net_->vsources()[i];
    const int j = vsource_unknown(static_cast<int>(i));
    const int ip = node_unknown(vs.pos);
    const int in = node_unknown(vs.neg);
    if (ip >= 0) { a.add(ip, j, 1.0); a.add(j, ip, 1.0); }
    if (in >= 0) { a.add(in, j, -1.0); a.add(j, in, -1.0); }
    rhs[j] = vs.value; // branch row j receives no other contribution
    if (tape)
      tape->push_back(
          {j, -1, vs.value, PatternAssembly::RhsSlot::Kind::kStatic});
  }

  for (size_t i = 0; i < net_->diodes().size(); ++i) {
    const auto& d = net_->diodes()[i];
    if (d.params.model == DiodeModel::kPiecewiseLinear) {
      if (state.diode_on[i]) {
        const double g = 1.0 / d.params.r_on;
        stamp_conductance(d.anode, d.cathode, g);
        // I = (Vak - Von)/Ron: the -Von/Ron term is a current source
        // from anode to cathode.
        stamp_current_into(d.anode, g * d.params.v_on);
        stamp_current_into(d.cathode, -g * d.params.v_on);
      } else {
        stamp_conductance(d.anode, d.cathode, 1.0 / d.params.r_off);
      }
    } else {
      // The linearisation point drifts by < the Newton tolerance without
      // forcing a refactorisation, so the companion current is a history
      // term: the tape replay recomputes it from the current diode_v.
      const ShockleyLin lin = shockley_linearization(d, state.diode_v[i]);
      stamp_conductance(d.anode, d.cathode, lin.gd);
      stamp_history_into(d.anode, -lin.ieq,
                         PatternAssembly::RhsSlot::Kind::kShockley,
                         static_cast<int>(i), -1.0);
      stamp_history_into(d.cathode, lin.ieq,
                         PatternAssembly::RhsSlot::Kind::kShockley,
                         static_cast<int>(i), 1.0);
    }
  }

  for (size_t i = 0; i < net_->opamps().size(); ++i) {
    const auto& op = net_->opamps()[i];
    const double a_gain = op.params.gain;
    const double g_out = 1.0 / op.params.r_out;
    const int io = node_unknown(op.out);
    assert(io >= 0 && "op-amp output must not be ground");

    const int ip_rail = node_unknown(op.in_plus);
    const int im_rail = node_unknown(op.in_minus);
    if (state.opamp_sat[i] != 0 && op.params.v_rail > 0.0) {
      // Railed: the output stage is a stiff source at +-v_rail with no
      // dependence on the inputs. The input couplings are stamped as
      // explicit zeros to keep the pattern identical to the linear branch.
      // A rail-state change forces a refactorisation, so the drive is
      // static from the tape's point of view.
      a.add(io, io, g_out);
      if (ip_rail >= 0) a.add(io, ip_rail, 0.0);
      if (im_rail >= 0) a.add(io, im_rail, 0.0);
      stamp_current_into(op.out, state.opamp_sat[i] * op.params.v_rail * g_out);
      continue;
    }

    double alpha = 1.0;
    if (opt.transient) {
      const double k = opt.dt / op.tau();
      alpha = k / (1.0 + k);
    }
    // I(out -> element) = (Vout - Ve)/Rout with
    // Ve = hist + alpha * A * (Vp - Vm).
    const int ip = node_unknown(op.in_plus);
    const int im = node_unknown(op.in_minus);
    a.add(io, io, g_out);
    if (ip >= 0) a.add(io, ip, -alpha * a_gain * g_out);
    if (im >= 0) a.add(io, im, alpha * a_gain * g_out);
    if (opt.transient)
      stamp_history_into(op.out, opamp_history(op, state.opamp_ve[i], opt.dt),
                         PatternAssembly::RhsSlot::Kind::kOpAmp,
                         static_cast<int>(i), 1.0);
  }
}

bool MnaAssembler::assemble(const DeviceState& state, const StampOptions& opt,
                            PatternAssembly& pa) const {
  // Record the RHS tape only for transient assembles: the DC engines never
  // replay it, and the recording has a (small) per-stamp cost.
  std::vector<PatternAssembly::RhsSlot>* tape =
      opt.transient ? &pa.rhs_tape_ : nullptr;
  if (tape) tape->clear();
  assemble_impl(state, opt, pa.triplets_, pa.rhs_, tape);
  pa.history_ready_ = opt.transient;
  if (pa.ready_ &&
      pa.triplets_.entries().size() == pa.slot_.size() &&
      pa.triplets_.rows() == pa.matrix_.rows()) {
    pa.matrix_.update_values(pa.triplets_.entries(), pa.slot_);
    return true;
  }
  pa.matrix_ = la::SparseMatrix::from_triplets(pa.triplets_, &pa.slot_);
  pa.ready_ = true;
  return false;
}

void MnaAssembler::refresh_history_rhs(const DeviceState& state,
                                       const StampOptions& opt,
                                       PatternAssembly& pa) const {
  assert(pa.history_ready_ && opt.transient);
  using Kind = PatternAssembly::RhsSlot::Kind;
  auto& rhs = pa.rhs_;
  std::fill(rhs.begin(), rhs.end(), 0.0);
  // A diode's anode/cathode slots are adjacent in stamp order; memoise the
  // exp()-based companion current so each diode pays for it once per
  // refresh, as in the full stamp loop.
  int last_shockley_device = -1;
  double last_shockley_ieq = 0.0;
  for (const PatternAssembly::RhsSlot& s : pa.rhs_tape_) {
    double v = 0.0;
    switch (s.kind) {
      case Kind::kStatic:
        v = s.value;
        break;
      case Kind::kNegRes:
        v = s.value * negres_history(net_->negative_resistors()[s.device],
                                     state.negres_i[s.device], opt.dt);
        break;
      case Kind::kCap:
        v = s.value * cap_history(net_->capacitors()[s.device],
                                  state.cap_v[s.device], opt.dt);
        break;
      case Kind::kOpAmp:
        v = s.value * opamp_history(net_->opamps()[s.device],
                                    state.opamp_ve[s.device], opt.dt);
        break;
      case Kind::kShockley:
        if (s.device != last_shockley_device) {
          last_shockley_ieq =
              shockley_linearization(net_->diodes()[s.device],
                                     state.diode_v[s.device])
                  .ieq;
          last_shockley_device = s.device;
        }
        v = s.value * last_shockley_ieq;
        break;
    }
    rhs[s.row] += v;
  }
}

int MnaAssembler::update_pwl_diode_states(std::span<const double> x,
                                          DeviceState& state,
                                          FlipPolicy policy,
                                          std::uint64_t rng_draw) const {
  // Dead band around the switching point: at a clamp boundary both states
  // satisfy their own inequality to within solver noise, and flipping on
  // exact zero crossings chatters forever. 1 nV is far below any signal of
  // interest (levels are ~0.05..3 V) and far above LU round-off.
  constexpr double kDeadBand = 1e-9;
  int flips = 0;
  int worst = -1;
  double worst_violation = 0.0;
  std::vector<int> violators;
  for (size_t i = 0; i < net_->diodes().size(); ++i) {
    const auto& d = net_->diodes()[i];
    if (d.params.model != DiodeModel::kPiecewiseLinear) continue;
    const double vak = branch_voltage(d.anode, d.cathode, x);
    double violation = 0.0;
    if (!state.diode_on[i] && vak > d.params.v_on)
      violation = vak - d.params.v_on;
    else if (state.diode_on[i] && vak < d.params.v_on)
      violation = d.params.v_on - vak;
    if (violation <= kDeadBand) continue;
    switch (policy) {
      case FlipPolicy::kAll:
        state.diode_on[i] = !state.diode_on[i];
        ++flips;
        break;
      case FlipPolicy::kWorst:
        if (violation > worst_violation) {
          worst_violation = violation;
          worst = static_cast<int>(i);
        }
        break;
      case FlipPolicy::kRandom:
        violators.push_back(static_cast<int>(i));
        break;
    }
  }
  if (policy == FlipPolicy::kWorst && worst >= 0) {
    state.diode_on[worst] = !state.diode_on[worst];
    flips = 1;
  }
  if (policy == FlipPolicy::kRandom && !violators.empty()) {
    const int pick = violators[rng_draw % violators.size()];
    state.diode_on[pick] = !state.diode_on[pick];
    flips = 1;
  }
  return flips;
}

double MnaAssembler::update_shockley_points(std::span<const double> x,
                                            DeviceState& state) const {
  double max_dv = 0.0;
  for (size_t i = 0; i < net_->diodes().size(); ++i) {
    const auto& d = net_->diodes()[i];
    if (d.params.model != DiodeModel::kShockley) continue;
    const double nvt = d.params.emission * kThermalVoltage;
    const double vcrit = nvt * std::log(nvt / (std::sqrt(2.0) * d.params.i_sat));
    const double v_raw = branch_voltage(d.anode, d.cathode, x);
    const double v_lim = limit_junction(v_raw, state.diode_v[i], nvt, vcrit);
    max_dv = std::max(max_dv, std::abs(v_lim - state.diode_v[i]));
    state.diode_v[i] = v_lim;
  }
  return max_dv;
}

int MnaAssembler::update_opamp_saturation(std::span<const double> x,
                                          const StampOptions& opt,
                                          DeviceState& state) const {
  int flips = 0;
  for (size_t i = 0; i < net_->opamps().size(); ++i) {
    const auto& op = net_->opamps()[i];
    if (op.params.v_rail <= 0.0) continue;
    // The value the linear stage would drive right now.
    double alpha = 1.0;
    double hist = 0.0;
    if (opt.transient) {
      const double k = opt.dt / op.tau();
      alpha = k / (1.0 + k);
      hist = state.opamp_ve[i] / (1.0 + k);
    }
    const double ve_lin =
        hist + alpha * op.params.gain *
                   branch_voltage(op.in_plus, op.in_minus, x);
    // Railed amps return to the linear region first (never rail-to-rail):
    // while railed the feedback loop is open, so the raw A*(V+ - V-) of the
    // railed solution overstates the drive and would latch the state.
    signed char want = state.opamp_sat[i];
    if (state.opamp_sat[i] > 0) {
      want = ve_lin >= op.params.v_rail ? 1 : 0;
    } else if (state.opamp_sat[i] < 0) {
      want = ve_lin <= -op.params.v_rail ? -1 : 0;
    } else {
      want = ve_lin > op.params.v_rail ? 1
             : ve_lin < -op.params.v_rail ? -1 : 0;
    }
    if (want != state.opamp_sat[i]) {
      state.opamp_sat[i] = want;
      ++flips;
    }
  }
  return flips;
}

void MnaAssembler::advance_dynamic_states(std::span<const double> x,
                                          const StampOptions& opt,
                                          DeviceState& state) const {
  assert(opt.transient);
  for (size_t i = 0; i < net_->capacitors().size(); ++i) {
    const auto& c = net_->capacitors()[i];
    state.cap_v[i] = branch_voltage(c.a, c.b, x);
  }
  for (size_t i = 0; i < net_->negative_resistors().size(); ++i) {
    const auto& nr = net_->negative_resistors()[i];
    if (nr.tau <= 0.0) {
      state.negres_i[i] = -branch_voltage(nr.a, nr.b, x) / nr.magnitude;
    } else {
      const double k = opt.dt / nr.tau;
      state.negres_i[i] =
          (state.negres_i[i] - k * branch_voltage(nr.a, nr.b, x) / nr.magnitude) /
          (1.0 + k);
    }
  }
  for (size_t i = 0; i < net_->opamps().size(); ++i) {
    const auto& op = net_->opamps()[i];
    const double vdiff =
        branch_voltage(op.in_plus, op.in_minus, x) * op.params.gain;
    const double k = opt.dt / op.tau();
    double ve = (state.opamp_ve[i] + k * vdiff) / (1.0 + k);
    if (op.params.v_rail > 0.0)
      ve = std::clamp(ve, -op.params.v_rail, op.params.v_rail);
    state.opamp_ve[i] = ve;
  }
}

double MnaAssembler::diode_current(int d, std::span<const double> x,
                                   const DeviceState& state) const {
  const auto& diode = net_->diodes()[d];
  const double vak = branch_voltage(diode.anode, diode.cathode, x);
  if (diode.params.model == DiodeModel::kPiecewiseLinear) {
    if (state.diode_on[d]) return (vak - diode.params.v_on) / diode.params.r_on;
    return vak / diode.params.r_off;
  }
  const double nvt = diode.params.emission * kThermalVoltage;
  return diode.params.i_sat * (std::exp(std::min(vak / nvt, 200.0)) - 1.0);
}

} // namespace aflow::circuit

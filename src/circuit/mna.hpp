// Modified nodal analysis: turns a Netlist plus device state into the linear
// system A x = b solved by the `sim` engines.
//
// Unknown layout: x = [V(node 1) ... V(node N-1), I(vsource 0) ... ].
// Ground (node 0) is the reference. Nonlinear devices (diodes) and dynamic
// devices (capacitors, op-amps, lagged negative resistors) are linearised /
// discretised (backward Euler) around the supplied DeviceState.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "la/sparse.hpp"

namespace aflow::circuit {

/// Evolving per-device state consumed and produced by the simulator.
struct DeviceState {
  std::vector<char> diode_on;      // PWL diode conduction state
  std::vector<double> diode_v;     // junction voltage linearisation point
  std::vector<double> opamp_ve;    // op-amp internal (single-pole) state
  std::vector<signed char> opamp_sat; // -1 / 0 / +1: rail saturation state
  std::vector<double> negres_i;    // lagged negative-resistor current state
  std::vector<double> cap_v;       // capacitor branch voltage

  static DeviceState initial(const Netlist& net);

  /// Heap bytes retained by the state vectors — the cost a core::ReusePool
  /// charges a carried device state against its byte budget.
  size_t memory_bytes() const;
};

struct StampOptions {
  bool transient = false; // false: DC (capacitors open, lags at steady state)
  double dt = 0.0;        // backward-Euler step, seconds (transient only)
  double gmin = 1e-12;    // Siemens to ground on every node, for robustness
};

/// Pattern-stable assembly target: the CSC pattern of the MNA matrix is
/// fixed on the first assemble (the stamp sequence is state-independent —
/// diode flips, op-amp rail changes, and gmin stepping only change values),
/// and every later assemble is a numeric-only in-place update. This is what
/// lets the solvers run SparseLU::refactor instead of rebuilding the matrix
/// and its symbolic analysis each Newton iteration / time step.
///
/// Transient assembles additionally record an RHS "tape": every right-hand
/// side contribution, in stamp order, tagged as either a static value or a
/// per-device history term (capacitor charge, negative-resistor lag, op-amp
/// pole, Shockley linearisation current). RHS-only steps — no diode flips,
/// no dt change, no source change — replay the tape through
/// MnaAssembler::refresh_history_rhs, recomputing only the history terms,
/// instead of re-running the full stamp loop. The replay preserves the
/// stamp-order accumulation, so the refreshed RHS is bit-identical to the
/// one a full assemble would produce.
class PatternAssembly {
 public:
  /// One recorded RHS contribution. For history kinds, `value` is the
  /// stamp's sign (+-1.0) applied to the recomputed history term; for
  /// kStatic it is the contribution itself.
  struct RhsSlot {
    enum class Kind : unsigned char {
      kStatic,   // state-independent (sources, PWL diode offsets, ...)
      kNegRes,   // lagged negative-resistor history current
      kCap,      // capacitor backward-Euler history current
      kOpAmp,    // op-amp single-pole history drive
      kShockley, // Shockley companion-model current at the linearisation point
    };
    int row = 0;
    int device = -1; // index into the netlist's device vector (history kinds)
    double value = 0.0;
    Kind kind = Kind::kStatic;
  };

  /// True once a pattern has been captured.
  bool ready() const { return ready_; }
  /// True once a transient assemble has recorded the RHS tape, i.e.
  /// refresh_history_rhs is available.
  bool history_ready() const { return history_ready_; }
  /// The assembled matrix (values of the most recent assemble call).
  const la::SparseMatrix& matrix() const { return matrix_; }
  const std::vector<double>& rhs() const { return rhs_; }
  /// Drops the captured pattern and tape; the next assemble rebuilds them.
  void reset() {
    ready_ = false;
    history_ready_ = false;
  }

 private:
  friend class MnaAssembler;
  la::Triplets triplets_; // reused stamp buffer
  std::vector<int> slot_; // triplet entry -> CSC value slot
  la::SparseMatrix matrix_;
  std::vector<double> rhs_;
  std::vector<RhsSlot> rhs_tape_; // transient assembles only
  bool ready_ = false;
  bool history_ready_ = false;
};

class MnaAssembler {
 public:
  explicit MnaAssembler(const Netlist& net) : net_(&net) {}

  int num_unknowns() const;
  /// Index of a node voltage in x (-1 for ground).
  int node_unknown(NodeId n) const { return n - 1; }
  /// Index of a voltage-source branch current in x.
  int vsource_unknown(int src) const;

  double node_voltage(NodeId n, std::span<const double> x) const {
    return n == kGround ? 0.0 : x[static_cast<size_t>(n) - 1];
  }
  /// Current delivered from the source's positive terminal into the circuit.
  double vsource_current(int src, std::span<const double> x) const {
    return -x[static_cast<size_t>(vsource_unknown(src))];
  }

  /// Builds A (triplets) and b for the given state. Previous contents of
  /// `a` / `rhs` are discarded.
  void assemble(const DeviceState& state, const StampOptions& opt,
                la::Triplets& a, std::vector<double>& rhs) const;

  /// Pattern-stable assembly: captures the CSC pattern on the first call
  /// and performs numeric-only in-place updates afterwards. Returns true
  /// when the existing pattern was reused, false when it was (re)built —
  /// callers use this to decide between SparseLU::refactor and factor.
  /// `opt.transient` must not change across calls on the same `pa`.
  /// Transient assembles also (re)record the RHS tape consumed by
  /// refresh_history_rhs.
  bool assemble(const DeviceState& state, const StampOptions& opt,
                PatternAssembly& pa) const;

  /// RHS-only incremental update for transient steps: replays the RHS tape
  /// recorded by the last transient assemble, recomputing per-device history
  /// terms from `state` and static entries from the recording. The result is
  /// bit-identical to a full assemble *provided* everything that feeds the
  /// matrix or the static RHS is unchanged since the tape was recorded: same
  /// dt, same gmin, same PWL diode / op-amp rail states, same source values.
  /// The caller (TransientSolver) guarantees this by refreshing only while
  /// no event forced a refactorisation. Requires `pa.history_ready()`.
  void refresh_history_rhs(const DeviceState& state, const StampOptions& opt,
                           PatternAssembly& pa) const;

  /// How inconsistent PWL diodes are flipped after a solve.
  enum class FlipPolicy {
    kAll,    // flip every violator (fast, can cycle)
    kWorst,  // flip only the largest violator (Katzenelson-style)
    kRandom, // flip one violator uniformly at random (cycle breaker)
  };

  /// Checks PWL diode states against the solution `x` and flips inconsistent
  /// ones according to `policy`. Returns the number of flips performed.
  int update_pwl_diode_states(std::span<const double> x, DeviceState& state,
                              FlipPolicy policy = FlipPolicy::kAll,
                              std::uint64_t rng_draw = 0) const;

  /// Moves Shockley linearisation points toward the solution (with junction
  /// voltage limiting). Returns the largest |V_new - V_old| across diodes.
  double update_shockley_points(std::span<const double> x,
                                DeviceState& state) const;

  /// Checks op-amp output-rail saturation against the solution and updates
  /// the per-amp state. Returns the number of state changes.
  int update_opamp_saturation(std::span<const double> x, const StampOptions& opt,
                              DeviceState& state) const;

  /// Commits dynamic states (capacitors, op-amps, lags) after an accepted
  /// transient step of `opt.dt`.
  void advance_dynamic_states(std::span<const double> x, const StampOptions& opt,
                              DeviceState& state) const;

  /// Current through diode `d` (anode -> cathode) for the solution `x`.
  double diode_current(int d, std::span<const double> x,
                       const DeviceState& state) const;

  const Netlist& netlist() const { return *net_; }

 private:
  double branch_voltage(NodeId a, NodeId b, std::span<const double> x) const {
    return node_voltage(a, x) - node_voltage(b, x);
  }

  /// Shared stamp loop; when `tape` is non-null every RHS contribution is
  /// recorded (in stamp order) for later history-only replay.
  void assemble_impl(const DeviceState& state, const StampOptions& opt,
                     la::Triplets& a, std::vector<double>& rhs,
                     std::vector<PatternAssembly::RhsSlot>* tape) const;

  const Netlist* net_;
};

} // namespace aflow::circuit

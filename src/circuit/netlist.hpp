// Circuit netlist: nodes plus the device set needed by the analog max-flow
// substrate of Liu & Zhang (DAC'15).
//
// Device models:
//  - Resistor: linear, resistance may be negative (the paper's ideal
//    negative resistors are stamped directly as negative conductances).
//  - NegativeResistor: behavioural negative resistor with an optional
//    first-order lag (time constant tau) standing in for the finite
//    gain-bandwidth of the op-amp realisation; tau == 0 gives the ideal
//    element. I satisfies  tau * dI/dt = -V/R - I.
//  - Diode: piecewise-linear ideal diode (Ron / Roff / Von) by default, or a
//    Shockley exponential model for SPICE-grade runs.
//  - OpAmp: single-pole behavioural op-amp: the internal source Ve follows
//    tau_a * dVe/dt = A (V+ - V-) - Ve with tau_a = A / (2 pi GBW), driving
//    the output through Rout. Used to build the Fig. 9a negative-impedance
//    converter explicitly.
//  - Memristor: a resistor whose memristance is a configuration (programmed
//    by the crossbar controller, Sec. 3.1) with behavioural threshold
//    switching used by the programming model.
//  - Voltage / current sources; voltage sources add a branch-current
//    unknown in MNA.
//
// Node 0 is ground; all other nodes are created with `new_node`.
#pragma once

#include <string>
#include <vector>

namespace aflow::circuit {

using NodeId = int;
inline constexpr NodeId kGround = 0;

struct Resistor {
  NodeId a = kGround;
  NodeId b = kGround;
  double resistance = 0.0; // ohms; negative allowed (ideal negative resistor)
};

struct NegativeResistor {
  NodeId a = kGround;
  NodeId b = kGround;
  double magnitude = 0.0; // ohms, > 0; element behaves as -magnitude
  double tau = 0.0;       // seconds; 0 = ideal (no lag)
};

struct Capacitor {
  NodeId a = kGround;
  NodeId b = kGround;
  double capacitance = 0.0; // farads
};

struct VoltageSource {
  NodeId pos = kGround;
  NodeId neg = kGround;
  double value = 0.0; // volts; mutable between solves (step/ramp drivers)
};

struct CurrentSource {
  NodeId from = kGround;
  NodeId to = kGround;
  double value = 0.0; // amps flowing from -> to through the source
};

enum class DiodeModel {
  kPiecewiseLinear, // ideal switch: Ron + Von when on, Roff when off
  kShockley,        // I = Is (exp(V / (n VT)) - 1), Newton-linearised
};

struct DiodeParams {
  DiodeModel model = DiodeModel::kPiecewiseLinear;
  double r_on = 1.0;      // ohms (PWL on-state)
  double r_off = 1e9;     // ohms (PWL off-state)
  double v_on = 0.0;      // volts (PWL turn-on voltage)
  double i_sat = 1e-14;   // amps (Shockley)
  double emission = 1.0;  // ideality factor n (Shockley)
};

struct Diode {
  NodeId anode = kGround;
  NodeId cathode = kGround;
  DiodeParams params;
};

struct OpAmpParams {
  double gain = 1e4;    // open-loop DC gain A (Table 1)
  double gbw = 10e9;    // gain-bandwidth product, Hz (Table 1: 10-50 GHz)
  double r_out = 50.0;  // output resistance, ohms
  double v_rail = 15.0; // output saturation (+-), volts; <= 0 disables
};

struct OpAmp {
  NodeId in_plus = kGround;
  NodeId in_minus = kGround;
  NodeId out = kGround;
  OpAmpParams params;
  /// Dominant-pole time constant of the internal state Ve.
  double tau() const;
};

struct MemristorParams {
  double r_lrs = 10e3;        // ohms, low-resistance state (Table 1)
  double r_hrs = 1000e3;      // ohms, high-resistance state (Table 1)
  double v_threshold = 1.3;   // volts; |V| above this moves the state
  double switch_rate = 1e15;  // (ohm/s)/V overdrive: d|M|/dt scale
};

struct Memristor {
  NodeId a = kGround;
  NodeId b = kGround;
  MemristorParams params;
  double memristance = 1000e3; // current configuration, ohms

  /// Behavioural programming step: evolves memristance under voltage
  /// `v = Va - Vb` applied for `dt` seconds. Positive overdrive moves the
  /// device toward LRS, negative toward HRS; below threshold it retains.
  void apply_programming_pulse(double v, double dt);
  bool is_lrs() const { return memristance <= 2.0 * params.r_lrs; }
};

class Netlist {
 public:
  Netlist();

  /// Creates a node and returns its id. Names are for diagnostics only.
  NodeId new_node(std::string name = {});
  int num_nodes() const { return static_cast<int>(node_names_.size()); }
  const std::string& node_name(NodeId n) const { return node_names_[n]; }

  int add_resistor(NodeId a, NodeId b, double ohms);
  int add_negative_resistor(NodeId a, NodeId b, double magnitude_ohms,
                            double tau = 0.0);
  int add_capacitor(NodeId a, NodeId b, double farads);
  int add_vsource(NodeId pos, NodeId neg, double volts);
  int add_isource(NodeId from, NodeId to, double amps);
  int add_diode(NodeId anode, NodeId cathode, const DiodeParams& params = {});
  int add_opamp(NodeId in_plus, NodeId in_minus, NodeId out,
                const OpAmpParams& params = {});
  int add_memristor(NodeId a, NodeId b, const MemristorParams& params,
                    double initial_memristance);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<NegativeResistor>& negative_resistors() const { return negres_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VoltageSource>& vsources() const { return vsources_; }
  const std::vector<CurrentSource>& isources() const { return isources_; }
  const std::vector<Diode>& diodes() const { return diodes_; }
  const std::vector<OpAmp>& opamps() const { return opamps_; }
  const std::vector<Memristor>& memristors() const { return memristors_; }

  void set_vsource_value(int id, double volts) { vsources_[id].value = volts; }
  void set_isource_value(int id, double amps) { isources_[id].value = amps; }
  void set_memristance(int id, double ohms) { memristors_[id].memristance = ohms; }
  Memristor& memristor(int id) { return memristors_[id]; }
  void set_resistance(int id, double ohms) { resistors_[id].resistance = ohms; }
  void set_negative_resistor_magnitude(int id, double ohms) {
    negres_[id].magnitude = ohms;
  }

  /// Adds the Fig. 9a negative-impedance converter: an explicit op-amp
  /// (`params`) with feedback resistors `r0` realising -r_target between
  /// `terminal` and ground. Returns the op-amp id.
  int add_nic_negative_resistor(NodeId terminal, double r_target, double r0,
                                const OpAmpParams& params);

 private:
  void check_node(NodeId n) const;

  std::vector<std::string> node_names_;
  std::vector<Resistor> resistors_;
  std::vector<NegativeResistor> negres_;
  std::vector<Capacitor> capacitors_;
  std::vector<VoltageSource> vsources_;
  std::vector<CurrentSource> isources_;
  std::vector<Diode> diodes_;
  std::vector<OpAmp> opamps_;
  std::vector<Memristor> memristors_;
};

} // namespace aflow::circuit

#include "mincut/dual_circuit.hpp"

#include <cmath>
#include <string>

#include "circuit/mna.hpp"
#include "sim/dc.hpp"

namespace aflow::mincut {

namespace {

class DualCircuitBuilder {
 public:
  DualCircuitBuilder(const graph::FlowNetwork& g, const DualCircuitOptions& opt)
      : g_(g), opt_(opt), r_(opt.config.lrs_resistance) {}

  struct Built {
    circuit::Netlist nl;
    std::vector<circuit::NodeId> p;       // per vertex
    std::vector<circuit::NodeId> d;       // per edge
    std::vector<int> g_clamp;             // diode id per edge constraint
    int st_clamp = -1;                    // diode id of p_s - p_t >= 1
    double i_unit = 0.0;                  // objective current per capacity unit
  };

  Built build() {
    Built b;
    auto& nl = b.nl;
    const double c_max = g_.max_capacity();
    b.i_unit = opt_.objective_scale * 1.0 / r_ / c_max; // amps per cap unit

    // Variable nodes with non-negativity clamps.
    b.p.resize(g_.num_vertices());
    for (int v = 0; v < g_.num_vertices(); ++v) {
      b.p[v] = nl.new_node("p" + std::to_string(v));
      nl.add_diode(circuit::kGround, b.p[v], opt_.config.diode);
    }
    b.d.resize(g_.num_edges());
    for (int e = 0; e < g_.num_edges(); ++e) {
      b.d[e] = nl.new_node("d" + std::to_string(e));
      nl.add_diode(circuit::kGround, b.d[e], opt_.config.diode);
      // Objective: constant pull toward 0 proportional to the capacity.
      nl.add_isource(b.d[e], circuit::kGround, b.i_unit * g_.edge(e).capacity);
    }

    // Widget resistors are scaled up to decouple inactive constraints and
    // reduce the virtual-ground loading of the p nodes.
    const double rc = r_ * opt_.constraint_resistor_factor;

    // Shared negation widgets p_v^-.
    std::vector<circuit::NodeId> p_neg(g_.num_vertices(), -1);
    auto p_minus = [&](int v) {
      if (p_neg[v] >= 0) return p_neg[v];
      const auto pm = nl.new_node("p" + std::to_string(v) + "m");
      const auto mid = nl.new_node();
      nl.add_resistor(b.p[v], mid, rc);
      nl.add_resistor(pm, mid, rc);
      add_negres(nl, mid, rc / 2.0);
      p_neg[v] = pm;
      return pm;
    };

    // Edge constraint widgets: g = -(d - p_i + p_j), clamp g <= 0.
    b.g_clamp.resize(g_.num_edges());
    for (int e = 0; e < g_.num_edges(); ++e) {
      const auto& edge = g_.edge(e);
      const auto a = nl.new_node();
      const auto gn = nl.new_node("g" + std::to_string(e));
      nl.add_resistor(b.d[e], a, rc);
      nl.add_resistor(p_minus(edge.from), a, rc);
      nl.add_resistor(b.p[edge.to], a, rc);
      nl.add_resistor(gn, a, rc);
      add_negres(nl, a, rc / 4.0);
      b.g_clamp[e] = nl.add_diode(gn, circuit::kGround, opt_.config.diode);
    }

    // Source/sink constraint: h = p_s - p_t - 1 >= 0.
    {
      const auto ref = nl.new_node("ref1v");
      nl.add_vsource(ref, circuit::kGround, 1.0);
      const auto bnode = nl.new_node();
      const auto h = nl.new_node("h_st");
      nl.add_resistor(p_minus(g_.source()), bnode, rc);
      nl.add_resistor(b.p[g_.sink()], bnode, rc);
      nl.add_resistor(ref, bnode, rc);
      nl.add_resistor(h, bnode, rc);
      add_negres(nl, bnode, rc / 4.0);
      b.st_clamp = nl.add_diode(circuit::kGround, h, opt_.config.diode);
    }
    return b;
  }

 private:
  void add_negres(circuit::Netlist& nl, circuit::NodeId node, double magnitude) {
    switch (opt_.config.fidelity) {
      case analog::NegResFidelity::kOpAmpNic:
        nl.add_nic_negative_resistor(node, magnitude, opt_.config.nic_r0,
                                     opt_.config.opamp_params());
        break;
      default:
        nl.add_negative_resistor(node, circuit::kGround, magnitude, 0.0);
        break;
    }
  }

  const graph::FlowNetwork& g_;
  const DualCircuitOptions& opt_;
  double r_;
};

} // namespace

AnalogMinCutResult solve_mincut_dual(const graph::FlowNetwork& net,
                                     const DualCircuitOptions& options) {
  net.validate();
  DualCircuitBuilder builder(net, options);
  auto built = builder.build();

  sim::DcOptions dc_opt;
  dc_opt.ordering_cache = options.ordering_cache;
  dc_opt.cancel = options.cancel;
  sim::DcSolver solver(built.nl, dc_opt);
  circuit::DeviceState state = circuit::DeviceState::initial(built.nl);

  AnalogMinCutResult out;
  auto accumulate = [&](const sim::DcStats& s) {
    out.dc_iterations += s.iterations;
    out.warm_iterations += s.warm_iterations;
    out.cold_iterations += s.cold_iterations;
    out.full_factors += s.full_factors;
    out.refactors += s.refactors;
  };

  // Cross-request warm start (see DualCircuitOptions::reuse_pool): the
  // shared bit-stable pool protocol seeds the LCP search from the previous
  // same-pattern request's converged state; a failed attempt falls back to
  // the cold start.
  std::uint64_t pool_key = 0;
  std::vector<double> x;
  sim::PooledWarmStart warm;
  if (options.reuse_pool) {
    pool_key = solver.pattern_key();
    warm = sim::pooled_warm_start(solver, *options.reuse_pool, pool_key, state,
                                  options.warm_iteration_budget, accumulate);
    out.pool_hits = warm.pool_hit ? 1 : 0;
    out.pool_misses = warm.pool_hit ? 0 : 1;
    if (warm.primed) out.full_factors++; // the priming factorisation
  }
  if (warm.solved) {
    x = std::move(warm.x);
    out.warm_started = true;
  } else {
    x = solver.solve(state);
  }
  accumulate(solver.stats());

  if (options.reuse_pool) {
    core::ReuseEntry entry;
    entry.lu = solver.share_factorization();
    entry.state = std::make_shared<const circuit::DeviceState>(state);
    entry.x = std::make_shared<const std::vector<double>>(x);
    out.pool_evictions = options.reuse_pool->store(pool_key, std::move(entry));
  }

  const auto& mna = solver.assembler();
  out.p_values.resize(net.num_vertices());
  out.side.resize(net.num_vertices());
  for (int v = 0; v < net.num_vertices(); ++v) {
    out.p_values[v] = mna.node_voltage(built.p[v], x);
    out.side[v] = out.p_values[v] > 0.5 ? 1 : 0;
  }
  out.d_values.resize(net.num_edges());
  out.edge_flow.resize(net.num_edges());
  for (int e = 0; e < net.num_edges(); ++e) {
    out.d_values[e] = mna.node_voltage(built.d[e], x);
    out.cut_value += net.edge(e).capacity * out.d_values[e];
    // Dual recovery: the clamp-diode current is the constraint's multiplier,
    // i.e. the edge flow. The widget injects it through the g branch whose
    // unit resistor carries it to the star; force balance at d converts the
    // objective scale (i_unit amps per capacity unit) back to flow units.
    out.edge_flow[e] = -mna.diode_current(built.g_clamp[e], x, state) /
                       (4.0 * built.i_unit);
  }
  out.flow_value =
      mna.diode_current(built.st_clamp, x, state) / (4.0 * built.i_unit);
  return out;
}

} // namespace aflow::mincut

// Dual decomposition for large graphs (Sec. 6.4).
//
// Following the paper's sketch (after Strandmark & Kahl, CVPR'10): the
// vertex set is split into two overlapping regions M and N; every edge
// inside the overlap appears in both subproblems with half its capacity
// plus/minus a Lagrange multiplier. Each iteration solves the two
// independent min-cut subproblems (on the substrate — reconfigured and
// reused — or on the CPU) and nudges the multipliers toward agreement of
// the overlap vertices' cut-side labels with a diminishing subgradient
// step. On agreement, the merged labelling is a globally optimal min cut.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flow/maxflow.hpp"
#include "graph/network.hpp"

namespace aflow::mincut {

struct Split {
  std::vector<char> in_m;    // vertex in region M
  std::vector<char> in_n;    // vertex in region N
  std::vector<char> overlap; // in both
};

/// Splits vertices by BFS distance from the source: the nearer half goes to
/// M, the farther half to N, with `overlap_rings` BFS rings shared.
/// Source/sink terminals are added to both regions.
Split split_by_bfs(const graph::FlowNetwork& net, int overlap_rings = 1);

/// K-band generalisation of Split: `mask[v]` holds one bit per band the
/// vertex belongs to. Bands are BFS-distance ranges at quantile thresholds,
/// each extended `overlap_rings` rings into its predecessor, so every
/// ordinary vertex lies in one band or in two consecutive ones; terminals
/// carry all bands. For num_regions == 2 the membership is identical to
/// split_by_bfs.
struct BandSplit {
  int num_regions = 0;
  std::vector<std::uint64_t> mask;
};

BandSplit split_bands_by_bfs(const graph::FlowNetwork& net, int num_regions,
                             int overlap_rings = 1);

struct DecompositionOptions {
  int max_iterations = 60;
  double initial_step = 0.25; // in units of the largest capacity
  int overlap_rings = 1;
  /// Bands of the dual decomposition (2..64). The two-band default is the
  /// paper's M/N scheme; more bands shrink each subproblem further at the
  /// cost of more overlap coupling.
  int num_regions = 2;
  /// Min-cut oracle for the subproblems; defaults to push-relabel + residual
  /// cut. Swap in an analog solve to model substrate reuse. Custom oracles
  /// run sequentially (they may carry shared state); leave unset to let the
  /// engine fan the per-iteration subproblems across threads.
  std::function<flow::MinCutResult(const graph::FlowNetwork&)> oracle;
  /// Registry backend + thread count for the default-oracle path, which
  /// solves each iteration's num_regions subproblems through a
  /// core::BatchEngine worker pool. 0 threads = hardware concurrency.
  std::string solver = "push_relabel";
  int num_threads = 1;
};

struct DecompositionResult {
  double cut_value = 0.0;        // merged cut value on the full graph
  std::vector<char> side;        // merged labelling
  int iterations = 0;
  bool agreed = false;           // overlap labels agreed (=> optimal)
  int disagreements = 0;         // remaining label disagreements
  std::vector<double> bound_history; // sum of subproblem values per iteration
  int subproblem_vertices_m = 0; // band 0 size (kept for the 2-band API)
  int subproblem_vertices_n = 0; // last band size
  std::vector<int> region_vertices; // per-band vertex counts, all bands
};

DecompositionResult solve_by_decomposition(const graph::FlowNetwork& net,
                                           const DecompositionOptions& options = {});

} // namespace aflow::mincut

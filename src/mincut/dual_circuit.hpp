// Analog min-cut solver via the dual LP (Sec. 6.3, Figs. 12-14).
//
// The min-cut linear program:
//     minimize   sum c_ij d_ij
//     subject to d_ij - p_i + p_j >= 0   for every edge (i, j)
//                p_s - p_t >= 1
//                p_i >= 0, d_ij >= 0
//
// Circuit realisation built from the same primitives as the max-flow
// substrate (the paper only sketches this architecture; this is the
// concrete design):
//  - one node per variable (p_i, d_ij);
//  - a negation widget per vertex producing p_i^- (shared by all of i's
//    outgoing constraint widgets);
//  - per edge, an adder widget: a star node A with unit resistors to
//    d_ij, p_i^-, p_j and to a sense node g_ij, plus a -r/4 negative
//    resistor at A, enforcing  V(g_ij) = -(d_ij - p_i + p_j);
//  - a diode clamping V(g_ij) <= 0, i.e. the constraint g >= 0; when the
//    constraint is active the diode current is the constraint's dual
//    variable — which for this LP is precisely the edge flow;
//  - the source/sink constraint p_s - p_t >= 1 via the same widget with a
//    1 V reference in the star;
//  - the objective as current sources pulling each d_ij toward ground with
//    magnitude proportional to c_ij (linear objective => constant forces);
//  - diodes clamping every p and d non-negative.
//
// At the operating point, V(p_i) in [0, 1] approximates the partition
// indicator and sum c_ij V(d_ij) the cut value.
#pragma once

#include <memory>

#include "analog/substrate_config.hpp"
#include "core/reuse_pool.hpp"
#include "graph/network.hpp"
#include "util/cancel.hpp"

namespace aflow::mincut {

struct DualCircuitOptions {
  analog::SubstrateConfig config; // r, diode model, fidelity for negres
  /// Objective current for a full-capacity edge, as a fraction of (1V / r).
  double objective_scale = 1.0;
  /// Constraint-widget resistors are this multiple of r. Larger values
  /// reduce the parasitic resistive coupling between variable nodes through
  /// inactive constraint stars (the dominant distortion of the analog LP),
  /// at the cost of larger internal voltage swings. 50 gives exact
  /// thresholded partitions across the test corpus; beyond ~100 the DC
  /// complementarity search starts to struggle.
  double constraint_resistor_factor = 50.0;
  /// Optional cross-instance ordering share (see sim::DcOptions).
  std::shared_ptr<la::OrderingCache> ordering_cache;
  /// Optional cross-request warm start through the same per-pattern
  /// entries the DC/transient adapters use (core::ReusePool). The dual
  /// circuit's structure depends only on the graph topology — capacities
  /// enter as current-source values — so a reconfigured instance hits the
  /// previous request's entry and seeds the LCP search from its converged
  /// state, typically collapsing dozens of complementarity iterations to a
  /// couple. Bit-identical to the cold path by construction: only the
  /// pattern-pure column ordering is taken from the pooled prototype, and
  /// the solver is primed with the exact factorisation a cold solve would
  /// compute first (sim::DcSolver::prime).
  std::shared_ptr<core::ReusePool> reuse_pool;
  /// Iteration cap for the pooled warm attempt before falling back to the
  /// cold start (bounds the cost of a stale seed).
  int warm_iteration_budget = 48;
  /// Cooperative cancellation, checked at every Newton iteration of the
  /// underlying DC solve (util/cancel.hpp). Default never cancels.
  util::CancelToken cancel;
};

struct AnalogMinCutResult {
  double cut_value = 0.0;          // capacity units
  std::vector<char> side;          // side[v] = 1 if source side (p_v > 0.5)
  std::vector<double> d_values;    // V(d_ij) per edge (cut indicators)
  std::vector<double> p_values;    // V(p_i) per vertex
  std::vector<double> edge_flow;   // recovered dual variables (flow), cap units
  double flow_value = 0.0;         // recovered total flow (weak-duality check)
  int dc_iterations = 0;
  /// Warm-start telemetry: warm + cold == dc_iterations always;
  /// full_factors includes the canonical priming factorisation.
  bool warm_started = false;
  int warm_iterations = 0;
  int cold_iterations = 0;
  long long full_factors = 0;
  long long refactors = 0;
  /// ReusePool traffic (zero without a pool): one lookup per solve.
  long long pool_hits = 0;
  long long pool_misses = 0;
  long long pool_evictions = 0;
};

/// Builds and solves the dual circuit at DC. Throws sim::ConvergenceError if
/// the operating point cannot be found.
AnalogMinCutResult solve_mincut_dual(const graph::FlowNetwork& net,
                                     const DualCircuitOptions& options = {});

} // namespace aflow::mincut

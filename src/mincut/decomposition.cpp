#include "mincut/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace aflow::mincut {

namespace {

std::vector<int> undirected_bfs_distance(const graph::FlowNetwork& net,
                                         int start) {
  constexpr int kInf = 1 << 29;
  std::vector<int> dist(net.num_vertices(), kInf);
  std::queue<int> q;
  dist[start] = 0;
  q.push(start);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    auto visit = [&](int u) {
      if (dist[u] > dist[v] + 1) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    };
    for (int e : net.out_edges(v)) visit(net.edge(e).to);
    for (int e : net.in_edges(v)) visit(net.edge(e).from);
  }
  return dist;
}

/// One subproblem: the induced subgraph of a region, overlap edges at half
/// capacity, plus the +-lambda terminal arcs on overlap vertices.
struct Subproblem {
  graph::FlowNetwork net{2, 0, 1};
  std::vector<int> to_local; // full vertex -> local id (-1 if absent)
  std::vector<int> to_full;  // local -> full vertex
};

Subproblem build_subproblem(const graph::FlowNetwork& g, const Split& split,
                            bool region_m, const std::vector<double>& lambda) {
  const auto& in_region = region_m ? split.in_m : split.in_n;
  Subproblem sp;
  sp.to_local.assign(g.num_vertices(), -1);
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!in_region[v]) continue;
    sp.to_local[v] = static_cast<int>(sp.to_full.size());
    sp.to_full.push_back(v);
  }
  sp.net = graph::FlowNetwork(static_cast<int>(sp.to_full.size()),
                              sp.to_local[g.source()], sp.to_local[g.sink()]);

  for (const auto& e : g.edges()) {
    const int u = sp.to_local[e.from];
    const int v = sp.to_local[e.to];
    if (u < 0 || v < 0) continue;
    const bool shared = split.overlap[e.from] && split.overlap[e.to];
    const double cap = shared ? e.capacity / 2.0 : e.capacity;
    if (cap > 0.0) sp.net.add_edge(u, v, cap);
  }

  // Lagrangian unary terms on duplicated vertices: lambda > 0 pushes the M
  // copy toward the sink side and the N copy toward the source side.
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!split.overlap[v] || v == g.source() || v == g.sink()) continue;
    const double l = lambda[v];
    if (l == 0.0) continue;
    const int lv = sp.to_local[v];
    const bool toward_sink = region_m ? (l > 0.0) : (l < 0.0);
    if (toward_sink)
      sp.net.add_edge(lv, sp.net.sink(), std::abs(l));
    else
      sp.net.add_edge(sp.net.source(), lv, std::abs(l));
  }
  return sp;
}

} // namespace

Split split_by_bfs(const graph::FlowNetwork& net, int overlap_rings) {
  if (overlap_rings < 1)
    throw std::invalid_argument("split_by_bfs: overlap_rings must be >= 1");
  const auto dist = undirected_bfs_distance(net, net.source());

  // Median reachable distance defines the frontier.
  std::vector<int> reachable;
  for (int v = 0; v < net.num_vertices(); ++v)
    if (dist[v] < (1 << 29)) reachable.push_back(dist[v]);
  std::nth_element(reachable.begin(), reachable.begin() + reachable.size() / 2,
                   reachable.end());
  const int frontier = reachable.empty() ? 0 : reachable[reachable.size() / 2];

  Split split;
  split.in_m.assign(net.num_vertices(), 0);
  split.in_n.assign(net.num_vertices(), 0);
  split.overlap.assign(net.num_vertices(), 0);
  for (int v = 0; v < net.num_vertices(); ++v) {
    const int d = dist[v];
    split.in_m[v] = d <= frontier;
    split.in_n[v] = d >= frontier - overlap_rings + 1; // unreachable -> N
  }
  // Terminals live in both regions.
  split.in_m[net.source()] = split.in_n[net.source()] = 1;
  split.in_m[net.sink()] = split.in_n[net.sink()] = 1;
  for (int v = 0; v < net.num_vertices(); ++v)
    split.overlap[v] = split.in_m[v] && split.in_n[v];
  return split;
}

DecompositionResult solve_by_decomposition(const graph::FlowNetwork& net,
                                           const DecompositionOptions& options) {
  auto oracle = options.oracle;
  if (!oracle) {
    oracle = [](const graph::FlowNetwork& g) {
      return flow::min_cut_from_flow(g, flow::push_relabel(g));
    };
  }

  const Split split = split_by_bfs(net, options.overlap_rings);
  std::vector<double> lambda(net.num_vertices(), 0.0);
  const double cmax = net.max_capacity();

  DecompositionResult out;
  out.side.assign(net.num_vertices(), 0);
  for (int v = 0; v < net.num_vertices(); ++v) {
    out.subproblem_vertices_m += split.in_m[v];
    out.subproblem_vertices_n += split.in_n[v];
  }

  std::vector<char> side_m, side_n;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    out.iterations = iter;
    const Subproblem sp_m = build_subproblem(net, split, true, lambda);
    const Subproblem sp_n = build_subproblem(net, split, false, lambda);
    const auto cut_m = oracle(sp_m.net);
    const auto cut_n = oracle(sp_n.net);
    out.bound_history.push_back(cut_m.cut_value + cut_n.cut_value);

    side_m.assign(net.num_vertices(), 0);
    side_n.assign(net.num_vertices(), 0);
    for (int v = 0; v < net.num_vertices(); ++v) {
      if (sp_m.to_local[v] >= 0) side_m[v] = cut_m.side[sp_m.to_local[v]];
      if (sp_n.to_local[v] >= 0) side_n[v] = cut_n.side[sp_n.to_local[v]];
    }

    out.disagreements = 0;
    for (int v = 0; v < net.num_vertices(); ++v)
      if (split.overlap[v] && side_m[v] != side_n[v]) out.disagreements++;

    if (out.disagreements == 0) {
      out.agreed = true;
      break;
    }

    // Diminishing subgradient step on the overlap labels.
    const double step = options.initial_step * cmax / std::sqrt(iter);
    for (int v = 0; v < net.num_vertices(); ++v) {
      if (!split.overlap[v]) continue;
      lambda[v] += step * (static_cast<int>(side_m[v]) - side_n[v]);
    }
  }

  // Merge: M labels for M-side vertices, N for the rest (overlap agreed, or
  // M wins ties when the iteration cap was hit).
  for (int v = 0; v < net.num_vertices(); ++v)
    out.side[v] = split.in_m[v] ? side_m[v] : side_n[v];
  out.side[net.source()] = 1;
  out.side[net.sink()] = 0;

  for (const auto& e : net.edges())
    if (out.side[e.from] && !out.side[e.to]) out.cut_value += e.capacity;
  return out;
}

} // namespace aflow::mincut

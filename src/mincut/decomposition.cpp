#include "mincut/decomposition.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "core/batch_engine.hpp"

namespace aflow::mincut {

namespace {

std::vector<int> undirected_bfs_distance(const graph::FlowNetwork& net,
                                         int start) {
  constexpr int kInf = 1 << 29;
  std::vector<int> dist(net.num_vertices(), kInf);
  std::queue<int> q;
  dist[start] = 0;
  q.push(start);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    auto visit = [&](int u) {
      if (dist[u] > dist[v] + 1) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    };
    for (int e : net.out_edges(v)) visit(net.edge(e).to);
    for (int e : net.in_edges(v)) visit(net.edge(e).from);
  }
  return dist;
}

/// One subproblem: the induced subgraph of a band, edges shared between
/// bands at capacity / share-count, plus the +-lambda terminal arcs on
/// duplicated vertices.
struct Subproblem {
  graph::FlowNetwork net{2, 0, 1};
  std::vector<int> to_local; // full vertex -> local id (-1 if absent)
  std::vector<int> to_full;  // local -> full vertex
};

Subproblem build_band_subproblem(const graph::FlowNetwork& g,
                                 const BandSplit& bands, int b,
                                 const std::vector<double>& lambda) {
  const std::uint64_t bit = std::uint64_t{1} << b;
  Subproblem sp;
  sp.to_local.assign(g.num_vertices(), -1);
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!(bands.mask[v] & bit)) continue;
    sp.to_local[v] = static_cast<int>(sp.to_full.size());
    sp.to_full.push_back(v);
  }
  sp.net = graph::FlowNetwork(static_cast<int>(sp.to_full.size()),
                              sp.to_local[g.source()], sp.to_local[g.sink()]);

  for (const auto& e : g.edges()) {
    const int u = sp.to_local[e.from];
    const int v = sp.to_local[e.to];
    if (u < 0 || v < 0) continue;
    // An edge both of whose endpoints live in `shares` common bands appears
    // in each of those subproblems with 1/shares of its capacity, so the
    // copies sum back to the original capacity (the two-band special case is
    // the paper's half-capacity overlap rule).
    const int shares = std::popcount(bands.mask[e.from] & bands.mask[e.to]);
    const double cap = e.capacity / std::max(1, shares);
    if (cap > 0.0) sp.net.add_edge(u, v, cap);
  }

  // Lagrangian unary terms on duplicated vertices: lambda > 0 pushes the
  // lower-band ("M") copy toward the sink side and the upper copy toward
  // the source side.
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!(bands.mask[v] & bit) || std::popcount(bands.mask[v]) < 2 ||
        v == g.source() || v == g.sink())
      continue;
    const double l = lambda[v];
    if (l == 0.0) continue;
    const int lv = sp.to_local[v];
    const bool lowest_band = std::countr_zero(bands.mask[v]) == b;
    const bool toward_sink = lowest_band ? (l > 0.0) : (l < 0.0);
    if (toward_sink)
      sp.net.add_edge(lv, sp.net.sink(), std::abs(l));
    else
      sp.net.add_edge(sp.net.source(), lv, std::abs(l));
  }
  return sp;
}

} // namespace

Split split_by_bfs(const graph::FlowNetwork& net, int overlap_rings) {
  if (overlap_rings < 1)
    throw std::invalid_argument("split_by_bfs: overlap_rings must be >= 1");
  const auto dist = undirected_bfs_distance(net, net.source());

  // Median reachable distance defines the frontier.
  std::vector<int> reachable;
  for (int v = 0; v < net.num_vertices(); ++v)
    if (dist[v] < (1 << 29)) reachable.push_back(dist[v]);
  std::nth_element(reachable.begin(), reachable.begin() + reachable.size() / 2,
                   reachable.end());
  const int frontier = reachable.empty() ? 0 : reachable[reachable.size() / 2];

  Split split;
  split.in_m.assign(net.num_vertices(), 0);
  split.in_n.assign(net.num_vertices(), 0);
  split.overlap.assign(net.num_vertices(), 0);
  for (int v = 0; v < net.num_vertices(); ++v) {
    const int d = dist[v];
    split.in_m[v] = d <= frontier;
    split.in_n[v] = d >= frontier - overlap_rings + 1; // unreachable -> N
  }
  // Terminals live in both regions.
  split.in_m[net.source()] = split.in_n[net.source()] = 1;
  split.in_m[net.sink()] = split.in_n[net.sink()] = 1;
  for (int v = 0; v < net.num_vertices(); ++v)
    split.overlap[v] = split.in_m[v] && split.in_n[v];
  return split;
}

BandSplit split_bands_by_bfs(const graph::FlowNetwork& net, int num_regions,
                             int overlap_rings) {
  if (num_regions < 2 || num_regions > 64)
    throw std::invalid_argument(
        "split_bands_by_bfs: num_regions must be in [2, 64]");
  if (overlap_rings < 1)
    throw std::invalid_argument(
        "split_bands_by_bfs: overlap_rings must be >= 1");
  constexpr int kInf = 1 << 29;
  const auto dist = undirected_bfs_distance(net, net.source());

  std::vector<int> reachable;
  for (int v = 0; v < net.num_vertices(); ++v)
    if (dist[v] < kInf) reachable.push_back(dist[v]);
  std::sort(reachable.begin(), reachable.end());

  // Band b covers distances (frontier[b-1], frontier[b]] at quantile
  // thresholds, extended `overlap_rings` rings downward into its
  // predecessor; the last band is unbounded above (unreachable vertices land
  // there, as in split_by_bfs).
  std::vector<int> frontier(static_cast<size_t>(num_regions) - 1, 0);
  for (int b = 0; b + 1 < num_regions; ++b) {
    if (!reachable.empty()) {
      const size_t q = std::min(reachable.size() - 1,
                                reachable.size() * (static_cast<size_t>(b) + 1) /
                                    static_cast<size_t>(num_regions));
      frontier[b] = reachable[q];
    }
  }

  BandSplit out;
  out.num_regions = num_regions;
  out.mask.assign(net.num_vertices(), 0);
  for (int v = 0; v < net.num_vertices(); ++v) {
    const int d = dist[v];
    for (int b = 0; b < num_regions; ++b) {
      const bool below_upper = b + 1 == num_regions || d <= frontier[b];
      const bool above_lower =
          b == 0 || d >= frontier[b - 1] - overlap_rings + 1;
      if (below_upper && above_lower) out.mask[v] |= std::uint64_t{1} << b;
    }
  }
  // Terminals live in every band.
  const std::uint64_t all =
      num_regions == 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << num_regions) - 1;
  out.mask[net.source()] = all;
  out.mask[net.sink()] = all;
  return out;
}

DecompositionResult solve_by_decomposition(const graph::FlowNetwork& net,
                                           const DecompositionOptions& options) {
  const int k = options.num_regions;
  const BandSplit bands =
      split_bands_by_bfs(net, k, options.overlap_rings);
  std::vector<double> lambda(net.num_vertices(), 0.0);
  const double cmax = net.max_capacity();

  DecompositionResult out;
  out.side.assign(net.num_vertices(), 0);
  out.region_vertices.assign(k, 0);
  for (int v = 0; v < net.num_vertices(); ++v)
    for (int b = 0; b < k; ++b)
      if (bands.mask[v] & (std::uint64_t{1} << b)) out.region_vertices[b]++;
  out.subproblem_vertices_m = out.region_vertices.front();
  out.subproblem_vertices_n = out.region_vertices.back();

  // Custom oracles run sequentially (they may carry shared warm-start
  // state); the default path fans each iteration's k subproblems through a
  // BatchEngine worker pool with a per-worker registry backend.
  const auto solve_all = [&](const std::vector<Subproblem>& sps) {
    std::vector<flow::MinCutResult> cuts(sps.size());
    if (options.oracle) {
      for (size_t b = 0; b < sps.size(); ++b)
        cuts[b] = options.oracle(sps[b].net);
      return cuts;
    }
    std::vector<graph::FlowNetwork> nets;
    nets.reserve(sps.size());
    for (const Subproblem& sp : sps) nets.push_back(sp.net);
    core::BatchOptions bo;
    bo.solver = options.solver;
    bo.num_threads = options.num_threads;
    const core::BatchReport rep = core::BatchEngine(bo).run(nets);
    for (size_t b = 0; b < sps.size(); ++b) {
      const core::InstanceOutcome& o = rep.outcomes[b];
      if (!o.ok)
        throw std::runtime_error("solve_by_decomposition: band " +
                                 std::to_string(b) + " failed: " + o.error);
      cuts[b] = flow::min_cut_from_flow(nets[b], o.result);
    }
    return cuts;
  };

  // side[b][v] is v's label in band b's solution (0 when absent).
  std::vector<std::vector<char>> side(
      static_cast<size_t>(k), std::vector<char>(net.num_vertices(), 0));
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    out.iterations = iter;
    std::vector<Subproblem> sps;
    sps.reserve(static_cast<size_t>(k));
    for (int b = 0; b < k; ++b)
      sps.push_back(build_band_subproblem(net, bands, b, lambda));
    const std::vector<flow::MinCutResult> cuts = solve_all(sps);

    double bound = 0.0;
    for (int b = 0; b < k; ++b) {
      bound += cuts[b].cut_value;
      auto& sb = side[static_cast<size_t>(b)];
      std::fill(sb.begin(), sb.end(), 0);
      for (int v = 0; v < net.num_vertices(); ++v)
        if (sps[b].to_local[v] >= 0)
          sb[v] = cuts[b].side[sps[b].to_local[v]];
    }
    out.bound_history.push_back(bound);

    // A duplicated vertex disagrees when its copies' labels are not all
    // equal; the subgradient compares the lowest and highest copies.
    out.disagreements = 0;
    for (int v = 0; v < net.num_vertices(); ++v) {
      if (std::popcount(bands.mask[v]) < 2) continue;
      const int lo = std::countr_zero(bands.mask[v]);
      const int hi = 63 - std::countl_zero(bands.mask[v]);
      bool mismatch = false;
      for (int b = lo; b <= hi; ++b)
        if ((bands.mask[v] >> b & 1) && side[b][v] != side[lo][v])
          mismatch = true;
      if (mismatch) out.disagreements++;
    }

    if (out.disagreements == 0) {
      out.agreed = true;
      break;
    }

    const double step = options.initial_step * cmax / std::sqrt(iter);
    for (int v = 0; v < net.num_vertices(); ++v) {
      if (std::popcount(bands.mask[v]) < 2) continue;
      const int lo = std::countr_zero(bands.mask[v]);
      const int hi = 63 - std::countl_zero(bands.mask[v]);
      lambda[v] += step * (static_cast<int>(side[lo][v]) - side[hi][v]);
    }
  }

  // Merge: every vertex takes the label of its lowest band (the earlier
  // band wins ties when the iteration cap was hit).
  for (int v = 0; v < net.num_vertices(); ++v) {
    const std::uint64_t mv = bands.mask[v];
    out.side[v] = mv == 0 ? 0 : side[static_cast<size_t>(
                                     std::countr_zero(mv))][v];
  }
  out.side[net.source()] = 1;
  out.side[net.sink()] = 0;

  for (const auto& e : net.edges())
    if (out.side[e.from] && !out.side[e.to]) out.cut_value += e.capacity;
  return out;
}

} // namespace aflow::mincut

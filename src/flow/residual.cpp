#include "flow/residual.hpp"

#include <algorithm>

namespace aflow::flow::detail {

Residual::Residual(const graph::FlowNetwork& net) : n(net.num_vertices()) {
  const int m = net.num_edges();
  cap.resize(2 * static_cast<size_t>(m));
  head.resize(2 * static_cast<size_t>(m));
  arc_start.assign(static_cast<size_t>(n) + 1, 0);
  for (int e = 0; e < m; ++e) {
    const auto& edge = net.edge(e);
    cap[2 * static_cast<size_t>(e)] = edge.capacity;
    cap[2 * static_cast<size_t>(e) + 1] = 0.0;
    head[2 * static_cast<size_t>(e)] = edge.to;
    head[2 * static_cast<size_t>(e) + 1] = edge.from;
    arc_start[static_cast<size_t>(edge.from) + 1]++;
    arc_start[static_cast<size_t>(edge.to) + 1]++;
  }
  for (int v = 0; v < n; ++v) arc_start[v + 1] += arc_start[v];
  arc_ids.resize(2 * static_cast<size_t>(m));
  std::vector<int> cursor(arc_start.begin(), arc_start.end() - 1);
  for (int e = 0; e < m; ++e) {
    const auto& edge = net.edge(e);
    arc_ids[cursor[edge.from]++] = 2 * e;
    arc_ids[cursor[edge.to]++] = 2 * e + 1;
  }
}

Residual::Residual(const graph::FlowNetwork& net,
                   std::span<const double> prior_flow)
    : Residual(net) {
  const int m = net.num_edges();
  for (int e = 0; e < m; ++e) {
    const double c = net.edge(e).capacity;
    const double f = std::clamp(prior_flow[e], 0.0, c);
    cap[2 * static_cast<size_t>(e)] = c - f;
    cap[2 * static_cast<size_t>(e) + 1] = f;
  }
}

double Residual::flow_value_at(const graph::FlowNetwork& net, int s) const {
  double value = 0.0;
  for (int e : net.out_edges(s))
    value += net.edge(e).capacity - cap[2 * static_cast<size_t>(e)];
  for (int e : net.in_edges(s))
    value -= net.edge(e).capacity - cap[2 * static_cast<size_t>(e)];
  return value;
}

std::vector<double> Residual::edge_flows(const graph::FlowNetwork& net) const {
  std::vector<double> flows(net.num_edges());
  for (int e = 0; e < net.num_edges(); ++e)
    flows[e] = net.edge(e).capacity - cap[2 * static_cast<size_t>(e)];
  return flows;
}

} // namespace aflow::flow::detail

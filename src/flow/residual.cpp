#include "flow/residual.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>

namespace aflow::flow::detail {

Residual::Residual(const graph::FlowNetwork& net) : n(net.num_vertices()) {
  const int m = net.num_edges();
  cap.resize(2 * static_cast<size_t>(m));
  head.resize(2 * static_cast<size_t>(m));
  arc_start.assign(static_cast<size_t>(n) + 1, 0);
  for (int e = 0; e < m; ++e) {
    const auto& edge = net.edge(e);
    cap[2 * static_cast<size_t>(e)] = edge.capacity;
    cap[2 * static_cast<size_t>(e) + 1] = 0.0;
    head[2 * static_cast<size_t>(e)] = edge.to;
    head[2 * static_cast<size_t>(e) + 1] = edge.from;
    arc_start[static_cast<size_t>(edge.from) + 1]++;
    arc_start[static_cast<size_t>(edge.to) + 1]++;
  }
  for (int v = 0; v < n; ++v) arc_start[v + 1] += arc_start[v];
  arc_ids.resize(2 * static_cast<size_t>(m));
  std::vector<int> cursor(arc_start.begin(), arc_start.end() - 1);
  for (int e = 0; e < m; ++e) {
    const auto& edge = net.edge(e);
    arc_ids[cursor[edge.from]++] = 2 * e;
    arc_ids[cursor[edge.to]++] = 2 * e + 1;
  }
}

Residual::Residual(const graph::FlowNetwork& net,
                   std::span<const double> prior_flow)
    : Residual(net) {
  const int m = net.num_edges();
  for (int e = 0; e < m; ++e) {
    const double c = net.edge(e).capacity;
    const double f = std::clamp(prior_flow[e], 0.0, c);
    cap[2 * static_cast<size_t>(e)] = c - f;
    cap[2 * static_cast<size_t>(e) + 1] = f;
  }
}

Residual::Residual(const graph::CsrGraph& g) : n(g.num_vertices()) {
  const std::int64_t m = g.num_edges();
  if (2 * m >= std::numeric_limits<int>::max())
    throw std::length_error(
        "Residual: 2m arcs exceed the int arc index; the refinement residual "
        "caps sharded instances below 2^30 edges");
  cap.resize(2 * static_cast<size_t>(m));
  head.resize(2 * static_cast<size_t>(m));
  arc_start.assign(static_cast<size_t>(n) + 1, 0);
  for (std::int64_t e = 0; e < m; ++e) {
    cap[2 * static_cast<size_t>(e)] = g.edge_capacity(e);
    cap[2 * static_cast<size_t>(e) + 1] = 0.0;
    head[2 * static_cast<size_t>(e)] = g.edge_to(e);
    head[2 * static_cast<size_t>(e) + 1] = g.edge_from(e);
  }
  // The CSR view already holds the incidence lists in the same arc encoding;
  // copy them down to int instead of re-counting.
  for (int v = 0; v < n; ++v)
    arc_start[static_cast<size_t>(v) + 1] =
        arc_start[static_cast<size_t>(v)] +
        static_cast<int>(g.arcs(v).size());
  arc_ids.resize(2 * static_cast<size_t>(m));
  size_t w = 0;
  for (int v = 0; v < n; ++v)
    for (std::int64_t a : g.arcs(v)) arc_ids[w++] = static_cast<int>(a);
}

Residual::Residual(const graph::CsrGraph& g, std::span<const double> prior_flow)
    : Residual(g) {
  const std::int64_t m = g.num_edges();
  for (std::int64_t e = 0; e < m; ++e) {
    const double c = g.edge_capacity(e);
    const double f = std::clamp(prior_flow[static_cast<size_t>(e)], 0.0, c);
    cap[2 * static_cast<size_t>(e)] = c - f;
    cap[2 * static_cast<size_t>(e) + 1] = f;
  }
}

double Residual::flow_value_at(const graph::FlowNetwork& net, int s) const {
  double value = 0.0;
  for (int e : net.out_edges(s))
    value += net.edge(e).capacity - cap[2 * static_cast<size_t>(e)];
  for (int e : net.in_edges(s))
    value -= net.edge(e).capacity - cap[2 * static_cast<size_t>(e)];
  return value;
}

std::vector<double> Residual::edge_flows(const graph::FlowNetwork& net) const {
  std::vector<double> flows(net.num_edges());
  for (int e = 0; e < net.num_edges(); ++e)
    flows[e] = net.edge(e).capacity - cap[2 * static_cast<size_t>(e)];
  return flows;
}

std::vector<double> Residual::carried_edge_flows() const {
  const size_t m = cap.size() / 2;
  std::vector<double> flows(m);
  for (size_t e = 0; e < m; ++e) flows[e] = cap[2 * e + 1];
  return flows;
}

double Residual::carried_flow_at(int s) const {
  // Even incident arcs are out-edges of s (flow = reverse cap), odd ones are
  // in-edges (flow = the odd arc's own cap).
  double value = 0.0;
  for (int a : arcs(s))
    value += (a & 1) ? -cap[static_cast<size_t>(a)]
                     : cap[static_cast<size_t>(a ^ 1)];
  return value;
}

std::vector<double> Residual::imbalances() const {
  std::vector<double> im(static_cast<size_t>(n), 0.0);
  const size_t m = cap.size() / 2;
  for (size_t e = 0; e < m; ++e) {
    const double f = cap[2 * e + 1];
    im[static_cast<size_t>(head[2 * e])] += f;     // edge head gains inflow
    im[static_cast<size_t>(head[2 * e + 1])] -= f; // edge tail pays outflow
  }
  return im;
}

namespace {

/// Imbalances below this are float dust, not repair work: digital priors
/// carry integral flows, so genuine violations are >= 1 capacity unit.
/// Relative to the instance's capacity scale — at capacities >= 1e9 the
/// rounding dust of carried flows exceeds any absolute threshold, so the
/// repair scales the epsilon by the largest residual capacity (clamped to
/// at least the historical absolute value so small instances behave
/// exactly as before).
constexpr double kImbalanceEps = 1e-9;

double capacity_scale(const Residual& r) {
  double scale = 1.0;
  for (const double c : r.cap) scale = std::max(scale, c);
  return scale;
}

/// Shortest-path repair pusher over a carried residual. Both directions
/// terminate by flow decomposition of the carried pseudo-flow: a surplus
/// node's extra inflow is reversible back to the source, a deficit node's
/// extra outflow is reversible back from the sink.
class ConservationRepair {
 public:
  ConservationRepair(Residual& r, int s, int t, ArcTouchLog* touched)
      : r_(r), s_(s), t_(t), eps_(kImbalanceEps * capacity_scale(r)),
        im_(r.imbalances()), parent_arc_(r.n, -1), seen_(r.n, 0),
        touched_(touched) {
    if (touched_) arc_logged_.assign(r.cap.size(), 0);
  }

  /// All excesses drain before any deficit fills: once no excess nodes
  /// remain, decomposing the carried pseudo-flow shows every deficit node's
  /// surplus outflow reaches the sink, so the reverse search in fill_deficit
  /// always finds a terminal supplier.
  bool run(long long& ops, const util::CancelToken& cancel) {
    for (int v = 0; v < r_.n; ++v) {
      if (v == s_ || v == t_) continue;
      while (im_[v] > eps_) {
        cancel.check();
        if (!drain_excess(v)) return false;
        ops++;
      }
    }
    for (int v = 0; v < r_.n; ++v) {
      if (v == s_ || v == t_) continue;
      while (im_[v] < -eps_) {
        cancel.check();
        if (!fill_deficit(v)) return false;
        ops++;
      }
    }
    return true;
  }

 private:
  bool is_deficit(int v) const {
    return v != s_ && v != t_ && im_[v] < -eps_;
  }

  /// Moves `amount` across `arc`, logging both directions' pre-push
  /// capacities on first touch when a touch log is attached.
  void push_arc(int arc, double amount) {
    if (touched_) {
      for (const int a : {arc, r_.rev(arc)}) {
        if (!arc_logged_[static_cast<size_t>(a)]) {
          arc_logged_[static_cast<size_t>(a)] = 1;
          touched_->emplace_back(a, r_.cap[static_cast<size_t>(a)]);
        }
      }
    }
    r_.cap[static_cast<size_t>(arc)] -= amount;
    r_.cap[static_cast<size_t>(r_.rev(arc))] += amount;
  }

  /// BFS forward from `v` to the nearest of {s, t, any deficit vertex};
  /// pushes the bottleneck (capped by both imbalances) along the path.
  bool drain_excess(int v) {
    ++stamp_;
    std::queue<int> q;
    q.push(v);
    seen_[v] = stamp_;
    int target = -1;
    while (!q.empty() && target < 0) {
      const int x = q.front();
      q.pop();
      for (int arc : r_.arcs(x)) {
        // Dust-capacity arcs (rounding residue of earlier pushes) are
        // saturated for repair purposes: routing through one would cap the
        // push at float noise and stall the repair.
        const int u = r_.head[arc];
        if (seen_[u] == stamp_ || r_.cap[arc] <= eps_) continue;
        seen_[u] = stamp_;
        parent_arc_[u] = arc;
        if (u == s_ || u == t_ || is_deficit(u)) {
          target = u;
          break;
        }
        q.push(u);
      }
    }
    if (target < 0) return false;

    double amount = im_[v];
    if (is_deficit(target)) amount = std::min(amount, -im_[target]);
    for (int x = target; x != v; x = r_.head[r_.rev(parent_arc_[x])])
      amount = std::min(amount, r_.cap[parent_arc_[x]]);
    if (amount <= eps_) return false;

    for (int x = target; x != v; x = r_.head[r_.rev(parent_arc_[x])])
      push_arc(parent_arc_[x], amount);
    im_[v] -= amount;
    if (target != s_ && target != t_) im_[target] += amount;
    return true;
  }

  /// BFS backward from `v` to the nearest of {s, t} (all surplus vertices
  /// are drained before any fill runs, so only terminals can supply);
  /// pushes the bottleneck along the found u -> ... -> v residual path.
  bool fill_deficit(int v) {
    ++stamp_;
    std::queue<int> q;
    q.push(v);
    seen_[v] = stamp_;
    int source_node = -1;
    while (!q.empty() && source_node < 0) {
      const int x = q.front();
      q.pop();
      for (int arc : r_.arcs(x)) {
        // Predecessor u = head[arc] supplies x through the arc's reverse
        // (u -> x), which must have residual capacity above the dust
        // threshold (see drain_excess).
        const int u = r_.head[arc];
        if (seen_[u] == stamp_ || r_.cap[r_.rev(arc)] <= eps_)
          continue;
        seen_[u] = stamp_;
        parent_arc_[u] = r_.rev(arc); // the u -> x residual arc
        if (u == s_ || u == t_) {
          source_node = u;
          break;
        }
        q.push(u);
      }
    }
    if (source_node < 0) return false;

    double amount = -im_[v];
    for (int x = source_node; x != v; x = r_.head[parent_arc_[x]])
      amount = std::min(amount, r_.cap[parent_arc_[x]]);
    if (amount <= eps_) return false;

    for (int x = source_node; x != v; x = r_.head[parent_arc_[x]])
      push_arc(parent_arc_[x], amount);
    im_[v] += amount;
    return true;
  }

  Residual& r_;
  int s_, t_;
  double eps_;
  std::vector<double> im_;
  std::vector<int> parent_arc_;
  std::vector<int> seen_; // visit stamps: seen_[u] == stamp_ means visited
  ArcTouchLog* touched_;
  std::vector<char> arc_logged_; // per-arc "already in the touch log" flag
  int stamp_ = 0;
};

} // namespace

bool repair_conservation(Residual& r, int s, int t, long long& ops,
                         const util::CancelToken& cancel) {
  return ConservationRepair(r, s, t, nullptr).run(ops, cancel);
}

bool repair_conservation(Residual& r, int s, int t, long long& ops,
                         ArcTouchLog& touched,
                         const util::CancelToken& cancel) {
  return ConservationRepair(r, s, t, &touched).run(ops, cancel);
}

} // namespace aflow::flow::detail

#include "flow/residual.hpp"

namespace aflow::flow::detail {

Residual::Residual(const graph::FlowNetwork& net) : n(net.num_vertices()) {
  const int m = net.num_edges();
  cap.resize(2 * static_cast<size_t>(m));
  head.resize(2 * static_cast<size_t>(m));
  adj.resize(n);
  for (int e = 0; e < m; ++e) {
    const auto& edge = net.edge(e);
    cap[2 * static_cast<size_t>(e)] = edge.capacity;
    cap[2 * static_cast<size_t>(e) + 1] = 0.0;
    head[2 * static_cast<size_t>(e)] = edge.to;
    head[2 * static_cast<size_t>(e) + 1] = edge.from;
    adj[edge.from].push_back(2 * e);
    adj[edge.to].push_back(2 * e + 1);
  }
}

std::vector<double> Residual::edge_flows(const graph::FlowNetwork& net) const {
  std::vector<double> flows(net.num_edges());
  for (int e = 0; e < net.num_edges(); ++e)
    flows[e] = net.edge(e).capacity - cap[2 * static_cast<size_t>(e)];
  return flows;
}

} // namespace aflow::flow::detail

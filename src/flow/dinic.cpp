#include <algorithm>
#include <limits>
#include <queue>

#include "flow/maxflow.hpp"
#include "flow/residual.hpp"

namespace aflow::flow {

namespace {

/// Blocking-flow augmenter over an externally owned residual, so the cold
/// solve (fresh residual) and the incremental delta path (carried residual,
/// flow/delta.hpp) share one implementation.
class DinicSolver {
 public:
  DinicSolver(detail::Residual& r, int s, int t,
              const util::CancelToken& cancel)
      : r_(r), s_(s), t_(t), cancel_(cancel), level_(r.n), it_(r.n) {}

  double augment(long long& ops) {
    double added = 0.0;
    // One cancellation check per BFS phase: at most n phases, each a full
    // blocking flow, so the check granularity matches the unit of real work.
    while (cancel_.check(), bfs_levels()) {
      std::fill(it_.begin(), it_.end(), 0);
      for (;;) {
        const double pushed = dfs(s_, std::numeric_limits<double>::infinity());
        if (pushed <= 0.0) break;
        added += pushed;
        ops++;
      }
    }
    return added;
  }

 private:
  bool bfs_levels() {
    std::fill(level_.begin(), level_.end(), -1);
    level_[s_] = 0;
    std::queue<int> q;
    q.push(s_);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int arc : r_.arcs(v)) {
        const int u = r_.head[arc];
        if (level_[u] == -1 && r_.cap[arc] > 0.0) {
          level_[u] = level_[v] + 1;
          q.push(u);
        }
      }
    }
    return level_[t_] >= 0;
  }

  double dfs(int v, double limit) {
    if (v == t_) return limit;
    const std::span<const int> arcs = r_.arcs(v);
    for (int& i = it_[v]; i < static_cast<int>(arcs.size()); ++i) {
      const int arc = arcs[i];
      const int u = r_.head[arc];
      if (r_.cap[arc] <= 0.0 || level_[u] != level_[v] + 1) continue;
      const double pushed = dfs(u, std::min(limit, r_.cap[arc]));
      if (pushed > 0.0) {
        r_.cap[arc] -= pushed;
        r_.cap[r_.rev(arc)] += pushed;
        return pushed;
      }
    }
    level_[v] = -1;
    return 0.0;
  }

  detail::Residual& r_;
  int s_, t_;
  util::CancelToken cancel_;
  std::vector<int> level_;
  std::vector<int> it_;
};

} // namespace

namespace detail {

double dinic_augment(Residual& r, int s, int t, long long& ops,
                     const util::CancelToken& cancel) {
  return DinicSolver(r, s, t, cancel).augment(ops);
}

} // namespace detail

MaxFlowResult dinic(const graph::FlowNetwork& net,
                    const util::CancelToken& cancel) {
  detail::Residual r(net);
  MaxFlowResult result;
  result.flow_value = detail::dinic_augment(r, net.source(), net.sink(),
                                            result.operations, cancel);
  result.edge_flow = r.edge_flows(net);
  return result;
}

} // namespace aflow::flow

#include <algorithm>
#include <limits>
#include <queue>

#include "flow/maxflow.hpp"
#include "flow/residual.hpp"

namespace aflow::flow {

namespace {

class DinicSolver {
 public:
  DinicSolver(const graph::FlowNetwork& net)
      : r_(net), s_(net.source()), t_(net.sink()),
        level_(r_.n), it_(r_.n) {}

  MaxFlowResult run(const graph::FlowNetwork& net) {
    MaxFlowResult result;
    while (bfs_levels()) {
      std::fill(it_.begin(), it_.end(), 0);
      for (;;) {
        const double pushed = dfs(s_, std::numeric_limits<double>::infinity());
        if (pushed <= 0.0) break;
        result.flow_value += pushed;
        result.operations++;
      }
    }
    result.edge_flow = r_.edge_flows(net);
    return result;
  }

 private:
  bool bfs_levels() {
    std::fill(level_.begin(), level_.end(), -1);
    level_[s_] = 0;
    std::queue<int> q;
    q.push(s_);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int arc : r_.adj[v]) {
        const int u = r_.head[arc];
        if (level_[u] == -1 && r_.cap[arc] > 0.0) {
          level_[u] = level_[v] + 1;
          q.push(u);
        }
      }
    }
    return level_[t_] >= 0;
  }

  double dfs(int v, double limit) {
    if (v == t_) return limit;
    for (int& i = it_[v]; i < static_cast<int>(r_.adj[v].size()); ++i) {
      const int arc = r_.adj[v][i];
      const int u = r_.head[arc];
      if (r_.cap[arc] <= 0.0 || level_[u] != level_[v] + 1) continue;
      const double pushed = dfs(u, std::min(limit, r_.cap[arc]));
      if (pushed > 0.0) {
        r_.cap[arc] -= pushed;
        r_.cap[r_.rev(arc)] += pushed;
        return pushed;
      }
    }
    level_[v] = -1;
    return 0.0;
  }

  detail::Residual r_;
  int s_, t_;
  std::vector<int> level_;
  std::vector<int> it_;
};

} // namespace

MaxFlowResult dinic(const graph::FlowNetwork& net) {
  return DinicSolver(net).run(net);
}

} // namespace aflow::flow

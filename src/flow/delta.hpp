// First-class capacity deltas: the reconfiguration-stream currency of the
// serving layer (PR 6).
//
// The paper's core pitch is cheap *reconfiguration*: the substrate re-solves
// a perturbed instance far faster than a from-scratch run. A CapacityDelta
// is the batch of edge-capacity edits between two same-topology instances;
// the incremental digital solvers here carry the previous solution's
// residual graph across the edits and repair it instead of re-solving:
//
//  1. carry: rebuild the residual from the post-edit capacities and the
//     prior per-edge flow, clamping flow into [0, capacity] (an edit that
//     decreased a capacity below its carried flow leaves a capacity-feasible
//     pseudo-flow with conservation violations at the edge's endpoints);
//  2. repair: drain every conservation violation with shortest residual
//     paths — surplus inflow routes to a deficit node, the sink, or back to
//     the source; residual paths for both directions are guaranteed by flow
//     decomposition of the carried pseudo-flow, so the repair is total and
//     needs O(|changed region|) path searches for a k-edge edit;
//  3. re-augment: run the backend's own maximum-flow machinery from the
//     repaired feasible flow (Dinic blocking flows, or FIFO push-relabel
//     seeded as a preflow), which only does work where the edits opened new
//     slack. The result is a true maximum flow of the edited network — the
//     invalidation rule and its soundness argument live in DESIGN.md
//     "Incremental re-solve: the delta path".
//
// The delta path never trades correctness for speed: a prior of the wrong
// shape (or a repair that fails to make progress numerically) falls back to
// the from-scratch solver, counted in SolveMetrics::delta_fallbacks.
#pragma once

#include <vector>

#include "flow/maxflow.hpp"
#include "graph/network.hpp"

namespace aflow::flow {

/// One edge-capacity edit. `old_capacity` is recorded when the edit is
/// applied (CapacityDelta::apply) or diffed (delta_between), making the
/// delta invertible and its magnitude measurable; a negative value means
/// "not recorded".
struct CapacityEdit {
  int edge = -1;
  double capacity = 0.0;      // new capacity (validated: must be positive)
  double old_capacity = -1.0; // pre-edit capacity, when known
};

/// A batch of capacity edits against one fixed topology. Edits apply in
/// order; a later edit to the same edge wins.
struct CapacityDelta {
  std::vector<CapacityEdit> edits;

  bool empty() const { return edits.empty(); }

  /// Distinct edges touched (after last-edit-wins merging).
  int distinct_edges() const;

  /// Applies the edits to `net` in order and records every edit's
  /// old_capacity. All-or-nothing: every index and capacity is validated
  /// up front (the same rules as FlowNetwork::set_capacity), so a bad
  /// trailing edit throws std::invalid_argument with the network unchanged
  /// and no old_capacity field overwritten.
  void apply(graph::FlowNetwork& net);

  /// Per-edge composition of the ordered edit list: one edit per distinct
  /// edge, carrying the FIRST recorded old_capacity and the LAST new
  /// capacity (order of first appearance). This is the net effect of the
  /// delta — when one delta edits an edge twice, the raw list's second
  /// old_capacity records the intermediate value, which is telemetry, not
  /// a change measure.
  std::vector<CapacityEdit> composed() const;

  /// Largest |capacity - old_capacity| / max(old_capacity, 1) over the
  /// *composed* (first-old, last-new) edits — the analog trust-region
  /// measure, so two edits that cancel out on one edge measure as no
  /// change rather than as the larger intermediate swing. 0 for an empty
  /// delta; +infinity when any composed edit lacks a recorded
  /// old_capacity (an unmeasured delta never passes a trust test).
  double max_relative_change() const;
};

/// Structural diff: the edits (with old_capacity recorded) that turn
/// `before` into `after`. Throws std::invalid_argument when the two differ
/// in topology (vertex count, edge count, endpoints, source/sink).
CapacityDelta delta_between(const graph::FlowNetwork& before,
                            const graph::FlowNetwork& after);

/// True when `prior` can seed an incremental re-solve of `net`: the
/// edge-flow vector matches the edge count and every entry is finite. (The
/// repair tolerates any such vector — feasibility is restored from
/// arbitrary pseudo-flows — so this is a shape check, not a semantic one.)
bool delta_prior_usable(const graph::FlowNetwork& net,
                        const MaxFlowResult& prior);

/// Incremental re-solves. `net` is the post-edit network, `prior` the
/// solution of the pre-edit instance; `delta` names the edited edges (used
/// for telemetry and the repair's work accounting — correctness does not
/// depend on it being exact). Returns a maximum flow of `net` whose value
/// (and min-cut value) is identical to a from-scratch solve; edge flows may
/// differ where maximum flows are non-unique. Falls back to the
/// from-scratch solver when `prior` is unusable, counted in
/// metrics.delta_fallbacks (metrics.delta_solves counts the fast path).
MaxFlowResult dinic_delta(const graph::FlowNetwork& net,
                          const CapacityDelta& delta,
                          const MaxFlowResult& prior,
                          const util::CancelToken& cancel = {});
MaxFlowResult push_relabel_delta(const graph::FlowNetwork& net,
                                 const CapacityDelta& delta,
                                 const MaxFlowResult& prior,
                                 const util::CancelToken& cancel = {});

} // namespace aflow::flow

// Classical (digital) max-flow solvers.
//
// `push_relabel` (FIFO active list, gap heuristic, initial global relabel)
// is the paper's CPU baseline (Goldberg-Tarjan); `dinic` and `edmonds_karp`
// serve as independent cross-checks and alternative baselines. All solvers
// return per-edge flows so the analog solution can be compared edge-wise.
#pragma once

#include <vector>

#include "graph/network.hpp"
#include "util/cancel.hpp"

namespace aflow::flow {

/// Optional backend telemetry for perf tracking (aflow bench --json, batch
/// reports). Classical solvers leave it zeroed; the analog backends fill it
/// from their DC/transient statistics.
struct SolveMetrics {
  long long iterations = 0;       // Newton/PWL iterations or transient solves
  long long full_factors = 0;     // factorisations incl. symbolic analysis
  long long refactors = 0;        // numeric-only fast-path factorisations
  long long prototype_refactors = 0; // refactors via cross-instance prototypes
  long long rhs_refreshes = 0;    // transient RHS-only incremental updates
  long long warm_iterations = 0;  // iterations in warm-started solves
  long long cold_iterations = 0;  // iterations in cold solves
  bool warm_started = false;      // result came from a warm-started solve
  // core::ReusePool traffic attributable to this solve (warm backends only):
  // one lookup per solve, so pool_hits + pool_misses == pool lookups.
  long long pool_hits = 0;
  long long pool_misses = 0;
  long long pool_evictions = 0;   // LRU entries evicted by this solve's store
  // Delta-path telemetry (ISolver::solve_delta): a solve entered through the
  // incremental entry either rode the delta fast path (delta_solves) or fell
  // back to a from-scratch/full-warm solve (delta_fallbacks) — exactly one of
  // the two per solve_delta call. edges_touched counts the distinct edited
  // edges the delta carried (whichever path ran).
  long long delta_solves = 0;
  long long delta_fallbacks = 0;
  long long edges_touched = 0;
  // Push-relabel restart telemetry (flow/push_relabel.cpp). A cold start
  // floods every live source arc (one injected_excess_arcs tick per arc);
  // a slack-bounded warm restart seeds its whole budget at the source —
  // one tick per pass — so injected_excess_arcs is the direct measure of
  // restart locality (near the step count on a warm stream, near the
  // source degree times the step count on a cold one).
  // returned_excess_walks counts phase-2 walks hauling unroutable excess
  // home; phase2_fallbacks counts engagements of the slow legacy discharge
  // fallback after a genuine (fresh-cursor) phase-2 dead end;
  // warm_escalations counts warm restarts whose max-flow certificate
  // failed, forcing a full flood continuation (correctness backstop).
  long long injected_excess_arcs = 0;
  long long returned_excess_walks = 0;
  long long phase2_fallbacks = 0;
  long long warm_escalations = 0;
  // Graceful-degradation ladder telemetry (DESIGN.md "Failure taxonomy and
  // the degradation ladder"): each counter records one fallback rung taken
  // on behalf of this solve, so every recovery is visible to clients
  // instead of silent.
  long long fallback_analog_digital = 0; // analog failure -> digital backend
  long long fallback_region_retries = 0; // sharded region solve re-attempts
  long long fallback_region_direct = 0;  // region solved by local direct rung
  long long fallback_pool_rebuilds = 0;  // corrupt pool entry dropped+rebuilt

  /// Accumulates another solve's counters (warm_started ORs). Every field
  /// is attributable to the request that produced it, so the same type
  /// serves both aggregation scopes of the serving layer: *per-session*
  /// (one connection's requests) and *shared-bank* (every session through
  /// one solver bank). The two scopes reconcile by construction — summing
  /// the per-session pool_* counters over all sessions of a bank yields
  /// the shared pool's own cumulative hit/miss/eviction statistics.
  SolveMetrics& operator+=(const SolveMetrics& m) {
    iterations += m.iterations;
    full_factors += m.full_factors;
    refactors += m.refactors;
    prototype_refactors += m.prototype_refactors;
    rhs_refreshes += m.rhs_refreshes;
    warm_iterations += m.warm_iterations;
    cold_iterations += m.cold_iterations;
    warm_started = warm_started || m.warm_started;
    pool_hits += m.pool_hits;
    pool_misses += m.pool_misses;
    pool_evictions += m.pool_evictions;
    delta_solves += m.delta_solves;
    delta_fallbacks += m.delta_fallbacks;
    edges_touched += m.edges_touched;
    injected_excess_arcs += m.injected_excess_arcs;
    returned_excess_walks += m.returned_excess_walks;
    phase2_fallbacks += m.phase2_fallbacks;
    warm_escalations += m.warm_escalations;
    fallback_analog_digital += m.fallback_analog_digital;
    fallback_region_retries += m.fallback_region_retries;
    fallback_region_direct += m.fallback_region_direct;
    fallback_pool_rebuilds += m.fallback_pool_rebuilds;
    return *this;
  }
};

struct MaxFlowResult {
  double flow_value = 0.0;
  /// Flow assigned to each input edge, parallel to FlowNetwork::edges().
  std::vector<double> edge_flow;
  /// Algorithm-specific work counter (augmentations, pushes, ...), for the
  /// operation-count comparisons in the benchmarks.
  long long operations = 0;
  SolveMetrics metrics;
};

/// The optional CancelToken makes long solves cooperatively cancellable
/// (deadline or explicit flag; see util/cancel.hpp): a tripped token throws
/// util::CancelledError from the solver's next iteration boundary. The
/// default token never cancels.
MaxFlowResult edmonds_karp(const graph::FlowNetwork& net,
                           const util::CancelToken& cancel = {});
MaxFlowResult dinic(const graph::FlowNetwork& net,
                    const util::CancelToken& cancel = {});
MaxFlowResult push_relabel(const graph::FlowNetwork& net,
                           const util::CancelToken& cancel = {});

/// A minimum s-t cut extracted from a maximum flow.
struct MinCutResult {
  double cut_value = 0.0;
  /// side[v] == 1 iff v is on the source side of the cut.
  std::vector<char> side;
  /// Input-edge indices crossing the cut (source side -> sink side).
  std::vector<int> cut_edges;
};

/// Computes the min cut from a max flow via residual reachability.
MinCutResult min_cut_from_flow(const graph::FlowNetwork& net,
                               const MaxFlowResult& flow);

/// Verifies that `result` is a feasible flow on `net`: capacity bounds and
/// conservation hold to within `tol`, and flow_value matches the net
/// source outflow. Returns an empty string when valid, otherwise a
/// human-readable description of the first violation.
std::string check_flow(const graph::FlowNetwork& net, const MaxFlowResult& result,
                       double tol = 1e-9);

} // namespace aflow::flow

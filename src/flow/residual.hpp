// Shared residual-graph representation for the augmenting-path and
// push-relabel solvers: forward/backward arc pairs in a flat array, with
// arc i^1 the reverse of arc i.
#pragma once

#include <vector>

#include "graph/network.hpp"

namespace aflow::flow::detail {

struct Residual {
  explicit Residual(const graph::FlowNetwork& net);

  /// Residual capacity per arc; arcs 2e / 2e+1 are the forward / reverse
  /// pair of input edge e.
  std::vector<double> cap;
  std::vector<int> head;              // arc -> target vertex
  std::vector<std::vector<int>> adj;  // vertex -> incident arc ids
  int n = 0;

  int rev(int arc) const { return arc ^ 1; }

  /// Extracts per-input-edge flow (forward capacity consumed).
  std::vector<double> edge_flows(const graph::FlowNetwork& net) const;
};

} // namespace aflow::flow::detail

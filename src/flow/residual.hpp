// Shared residual-graph representation for the augmenting-path and
// push-relabel solvers: forward/backward arc pairs in a flat array, with
// arc i^1 the reverse of arc i.
#pragma once

#include <span>
#include <vector>

#include "flow/maxflow.hpp"
#include "graph/csr.hpp"
#include "graph/network.hpp"
#include "util/cancel.hpp"

namespace aflow::flow::detail {

struct Residual {
  explicit Residual(const graph::FlowNetwork& net);

  /// Builds the residual of `net` carrying a prior per-edge flow (clamped
  /// into [0, capacity], so a flow that an edit made infeasible enters as a
  /// capacity-feasible pseudo-flow whose conservation violations the delta
  /// repair then drains). This is the carry-over seam of the incremental
  /// re-solve path (flow/delta.hpp).
  Residual(const graph::FlowNetwork& net, std::span<const double> prior_flow);

  /// CSR twins of the two constructors above — the huge-instance path
  /// (core::ShardedSolver) never materialises a FlowNetwork. Throws
  /// std::length_error when 2m overflows the int arc index (the residual is
  /// the one structure of the sharded path still bounded by int).
  explicit Residual(const graph::CsrGraph& g);
  Residual(const graph::CsrGraph& g, std::span<const double> prior_flow);

  /// Residual capacity per arc; arcs 2e / 2e+1 are the forward / reverse
  /// pair of input edge e.
  std::vector<double> cap;
  std::vector<int> head; // arc -> target vertex
  // Incident arcs in CSR form (arc_ids[arc_start[v] .. arc_start[v+1])):
  // two flat arrays instead of a vector-of-vectors, so building a residual
  // is two O(E) passes with no per-vertex allocations — that build is the
  // fixed cost of every delta re-solve (flow/delta.hpp), where it would
  // otherwise dominate small-edit steps.
  std::vector<int> arc_start; // n + 1 offsets
  std::vector<int> arc_ids;
  int n = 0;

  int rev(int arc) const { return arc ^ 1; }

  /// Arcs leaving `v` (forward arcs of v's out-edges plus reverse arcs of
  /// its in-edges).
  std::span<const int> arcs(int v) const {
    return {arc_ids.data() + arc_start[v],
            static_cast<size_t>(arc_start[v + 1] - arc_start[v])};
  }

  /// Extracts per-input-edge flow (forward capacity consumed).
  std::vector<double> edge_flows(const graph::FlowNetwork& net) const;

  /// Flow value currently carried: net flow out of `s` (forward consumption
  /// minus reverse consumption over s-incident arcs).
  double flow_value_at(const graph::FlowNetwork& net, int s) const;

  /// Graph-free twins: augmentation preserves cap[2e] + cap[2e+1] =
  /// capacity(e), so the flow on edge e is recoverable as cap[2e+1] without
  /// consulting the input graph. These let the CSR path read results (and
  /// the repair below find imbalances) from the residual alone.
  std::vector<double> carried_edge_flows() const;
  double carried_flow_at(int s) const;
  /// Conservation surplus (inflow - outflow) per vertex under the carried
  /// flow; source/sink entries are reported but are not repair targets.
  std::vector<double> imbalances() const;
};

/// Restores conservation at every ordinary vertex of a capacity-feasible
/// pseudo-flow held in `r`, by shortest-path pushes over the residual: every
/// excess drains to {s, t, nearest deficit}, then every deficit fills from a
/// terminal. Termination follows from flow decomposition of the carried
/// pseudo-flow (DESIGN.md "Incremental re-solve: the delta path"). Counts
/// one op per push into `ops`; returns false when no progress is possible
/// (numerically degenerate carry), in which case the caller should discard
/// the carry and solve from scratch. Shared by the delta re-solve path and
/// the sharded-solve boundary stitch (core/sharded_solver.hpp), whose
/// min-matched cut-arc flows violate conservation exactly at region
/// boundaries.
/// All three entry points below take an optional util::CancelToken and
/// check it at their natural phase boundaries (one repair push, one Dinic
/// BFS phase, every ~1k push-relabel queue pops); a tripped token unwinds
/// with util::CancelledError. The default token never cancels and costs one
/// null test per check.
bool repair_conservation(Residual& r, int s, int t, long long& ops,
                         const util::CancelToken& cancel = {});

/// Pre-repair residual capacities of the arcs a repair pass mutated: one
/// (arc id, capacity before the first touch) entry per touched arc. The
/// delta path uses this to bound a push-relabel warm restart by the slack
/// the repair actually opened (see PushRelabelWarm below).
using ArcTouchLog = std::vector<std::pair<int, double>>;

/// As repair_conservation above, additionally recording every arc whose
/// residual capacity the repair changed into `touched` (appended; each arc
/// at most once, with its pre-repair capacity).
bool repair_conservation(Residual& r, int s, int t, long long& ops,
                         ArcTouchLog& touched,
                         const util::CancelToken& cancel = {});

/// Augments the (feasible-flow) residual `r` to a maximum flow with Dinic
/// blocking flows; returns the flow value added and counts augmenting paths
/// into `ops`. Cold solves pass a fresh Residual (zero flow); the delta path
/// passes a repaired carry-over residual.
double dinic_augment(Residual& r, int s, int t, long long& ops,
                     const util::CancelToken& cancel = {});

/// Warm-restart plan for push_relabel_augment: instead of saturating every
/// live source-adjacent residual arc (the cold flood), seed
/// `injection_budget` units of excess at the source itself, labelled at its
/// true BFS height — equivalent to flooding one virtual super-source arc
/// s' -> s of that capacity. The discharge then chooses which source arcs
/// carry the new flow, so the total injection is O(budget), not O(total
/// source slack). The budget is a bound on the value still augmentable
/// after the edit (min of the newly-opened-slack sum and the raised-cut
/// ceiling — see flow/delta.cpp), so the capped entry still admits a
/// maximum flow; whatever it cannot route stays parked at s and is dropped
/// as the virtual excess it always was. A pass that parks its source
/// (h(s) >= n) is certified maximal by its own valid labeling; a
/// budget-exhausted pass is checked with an exact residual-reachability
/// BFS and escalates to the cold flood on failure
/// (SolveMetrics::warm_escalations), so correctness never depends on the
/// budget argument — only the restart cost does. DESIGN.md "Incremental
/// re-solve: the delta path" carries the full soundness argument.
struct PushRelabelWarm {
  double injection_budget = 0.0;
};

/// Runs FIFO push-relabel (gap heuristic, initial global relabel) from the
/// feasible flow currently held in `r`, leaving `r` a maximum flow; returns
/// pushes + relabels. A feasible flow is a preflow with no excess, so the
/// standard initialisation (saturate s-adjacent residual arcs, discharge)
/// is valid from any carried flow, not just the zero flow. Cold solves pass
/// no warm plan (full source flood); the delta path passes a PushRelabelWarm
/// whose budget is seeded as excess at the source. When `metrics` is
/// non-null the restart counters (injected_excess_arcs,
/// returned_excess_walks, phase2_fallbacks, warm_escalations) are added to
/// it.
long long push_relabel_augment(Residual& r, int s, int t,
                               const util::CancelToken& cancel = {},
                               SolveMetrics* metrics = nullptr,
                               const PushRelabelWarm* warm = nullptr);

} // namespace aflow::flow::detail

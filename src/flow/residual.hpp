// Shared residual-graph representation for the augmenting-path and
// push-relabel solvers: forward/backward arc pairs in a flat array, with
// arc i^1 the reverse of arc i.
#pragma once

#include <span>
#include <vector>

#include "graph/network.hpp"

namespace aflow::flow::detail {

struct Residual {
  explicit Residual(const graph::FlowNetwork& net);

  /// Builds the residual of `net` carrying a prior per-edge flow (clamped
  /// into [0, capacity], so a flow that an edit made infeasible enters as a
  /// capacity-feasible pseudo-flow whose conservation violations the delta
  /// repair then drains). This is the carry-over seam of the incremental
  /// re-solve path (flow/delta.hpp).
  Residual(const graph::FlowNetwork& net, std::span<const double> prior_flow);

  /// Residual capacity per arc; arcs 2e / 2e+1 are the forward / reverse
  /// pair of input edge e.
  std::vector<double> cap;
  std::vector<int> head; // arc -> target vertex
  // Incident arcs in CSR form (arc_ids[arc_start[v] .. arc_start[v+1])):
  // two flat arrays instead of a vector-of-vectors, so building a residual
  // is two O(E) passes with no per-vertex allocations — that build is the
  // fixed cost of every delta re-solve (flow/delta.hpp), where it would
  // otherwise dominate small-edit steps.
  std::vector<int> arc_start; // n + 1 offsets
  std::vector<int> arc_ids;
  int n = 0;

  int rev(int arc) const { return arc ^ 1; }

  /// Arcs leaving `v` (forward arcs of v's out-edges plus reverse arcs of
  /// its in-edges).
  std::span<const int> arcs(int v) const {
    return {arc_ids.data() + arc_start[v],
            static_cast<size_t>(arc_start[v + 1] - arc_start[v])};
  }

  /// Extracts per-input-edge flow (forward capacity consumed).
  std::vector<double> edge_flows(const graph::FlowNetwork& net) const;

  /// Flow value currently carried: net flow out of `s` (forward consumption
  /// minus reverse consumption over s-incident arcs).
  double flow_value_at(const graph::FlowNetwork& net, int s) const;
};

/// Augments the (feasible-flow) residual `r` to a maximum flow with Dinic
/// blocking flows; returns the flow value added and counts augmenting paths
/// into `ops`. Cold solves pass a fresh Residual (zero flow); the delta path
/// passes a repaired carry-over residual.
double dinic_augment(Residual& r, int s, int t, long long& ops);

/// Runs FIFO push-relabel (gap heuristic, initial global relabel) from the
/// feasible flow currently held in `r`, leaving `r` a maximum flow; returns
/// pushes + relabels. A feasible flow is a preflow with no excess, so the
/// standard initialisation (saturate s-adjacent residual arcs, discharge)
/// is valid from any carried flow, not just the zero flow.
long long push_relabel_augment(Residual& r, int s, int t);

} // namespace aflow::flow::detail

#include <algorithm>
#include <limits>
#include <queue>

#include "flow/maxflow.hpp"
#include "flow/residual.hpp"

namespace aflow::flow {

MaxFlowResult edmonds_karp(const graph::FlowNetwork& net,
                           const util::CancelToken& cancel) {
  detail::Residual r(net);
  const int s = net.source();
  const int t = net.sink();
  MaxFlowResult result;

  std::vector<int> pred_arc(r.n);
  for (;;) {
    cancel.check(); // one check per augmenting-path BFS
    std::fill(pred_arc.begin(), pred_arc.end(), -1);
    pred_arc[s] = -2;
    std::queue<int> q;
    q.push(s);
    while (!q.empty() && pred_arc[t] == -1) {
      const int v = q.front();
      q.pop();
      for (int arc : r.arcs(v)) {
        const int u = r.head[arc];
        if (pred_arc[u] == -1 && r.cap[arc] > 0.0) {
          pred_arc[u] = arc;
          q.push(u);
        }
      }
    }
    if (pred_arc[t] == -1) break;

    double bottleneck = std::numeric_limits<double>::infinity();
    for (int v = t; v != s;) {
      const int arc = pred_arc[v];
      bottleneck = std::min(bottleneck, r.cap[arc]);
      v = r.head[r.rev(arc)];
    }
    for (int v = t; v != s;) {
      const int arc = pred_arc[v];
      r.cap[arc] -= bottleneck;
      r.cap[r.rev(arc)] += bottleneck;
      v = r.head[r.rev(arc)];
    }
    result.flow_value += bottleneck;
    result.operations++;
  }

  result.edge_flow = r.edge_flows(net);
  return result;
}

} // namespace aflow::flow

#include <cmath>
#include <queue>
#include <sstream>

#include "flow/maxflow.hpp"

namespace aflow::flow {

MinCutResult min_cut_from_flow(const graph::FlowNetwork& net,
                               const MaxFlowResult& flow) {
  const int n = net.num_vertices();
  MinCutResult cut;
  cut.side.assign(n, 0);

  // Saturation tolerance, relative to the instance's capacity scale: at
  // capacities >= 1e9 the rounding dust a solver leaves on a saturated
  // arc exceeds any absolute threshold, and a BFS that crosses one such
  // arc walks past the true cut (clamped below by the historical absolute
  // value so small instances behave exactly as before).
  constexpr double kEpsAbs = 1e-9;
  double scale = 1.0;
  for (int e = 0; e < net.num_edges(); ++e)
    scale = std::max(scale, net.edge(e).capacity);
  const double eps = kEpsAbs * scale;

  // BFS in the residual graph from the source.
  std::queue<int> q;
  q.push(net.source());
  cut.side[net.source()] = 1;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int e : net.out_edges(v)) {
      const auto& edge = net.edge(e);
      if (!cut.side[edge.to] && edge.capacity - flow.edge_flow[e] > eps) {
        cut.side[edge.to] = 1;
        q.push(edge.to);
      }
    }
    for (int e : net.in_edges(v)) {
      const auto& edge = net.edge(e);
      if (!cut.side[edge.from] && flow.edge_flow[e] > eps) {
        cut.side[edge.from] = 1;
        q.push(edge.from);
      }
    }
  }

  for (int e = 0; e < net.num_edges(); ++e) {
    const auto& edge = net.edge(e);
    if (cut.side[edge.from] && !cut.side[edge.to]) {
      cut.cut_edges.push_back(e);
      cut.cut_value += edge.capacity;
    }
  }
  return cut;
}

std::string check_flow(const graph::FlowNetwork& net, const MaxFlowResult& result,
                       double tol) {
  std::ostringstream err;
  if (static_cast<int>(result.edge_flow.size()) != net.num_edges())
    return "edge_flow size mismatch";

  for (int e = 0; e < net.num_edges(); ++e) {
    const double f = result.edge_flow[e];
    const double c = net.edge(e).capacity;
    if (f < -tol || f > c + tol) {
      err << "edge " << e << ": flow " << f << " outside [0, " << c << "]";
      return err.str();
    }
  }
  for (int v = 0; v < net.num_vertices(); ++v) {
    if (v == net.source() || v == net.sink()) continue;
    double balance = 0.0;
    for (int e : net.in_edges(v)) balance += result.edge_flow[e];
    for (int e : net.out_edges(v)) balance -= result.edge_flow[e];
    if (std::abs(balance) > tol) {
      err << "vertex " << v << ": conservation violated by " << balance;
      return err.str();
    }
  }
  double source_out = 0.0;
  for (int e : net.out_edges(net.source())) source_out += result.edge_flow[e];
  for (int e : net.in_edges(net.source())) source_out -= result.edge_flow[e];
  if (std::abs(source_out - result.flow_value) > tol) {
    err << "flow_value " << result.flow_value << " != net source outflow "
        << source_out;
    return err.str();
  }
  return {};
}

} // namespace aflow::flow

// FIFO push-relabel (Goldberg-Tarjan) with the two standard heuristics that
// make it the practical CPU reference the paper benchmarks against:
//   - initial global relabeling (exact distance labels from a reverse BFS),
//   - the gap heuristic (when a height level empties, every vertex above it
//     is lifted past n, cutting off dead regions).
//
// The solver operates on an externally owned residual and starts from
// whatever feasible flow it carries: a feasible flow is a preflow with no
// excess, so the standard initialisation (saturate the source-adjacent
// residual arcs, discharge) is valid from any carried flow. The cold entry
// (flow::push_relabel) passes a fresh zero-flow residual and floods every
// live source arc; the incremental delta path (flow/delta.hpp) passes a
// repaired carry-over residual plus a PushRelabelWarm plan whose budget
// bounds the value still augmentable after the edit (the slack the edit
// newly opened). The warm pass seeds that budget as excess *at the source
// itself*, labelled at its true BFS height — the flood of a virtual
// super-source arc of that capacity — so the total injected excess is
// O(budget) instead of O(total source slack), and a k-edge capacity edit
// costs O(changed region) instead of a near-constant fraction of a cold
// solve. The warm result is certified maximal by an exact residual
// reachability check; a failed certificate escalates to the flood, so the
// budget argument is a performance bound, never a correctness assumption.
#include <algorithm>
#include <limits>
#include <queue>

#include "flow/maxflow.hpp"
#include "flow/residual.hpp"

namespace aflow::flow {

namespace {

class PushRelabelSolver {
 public:
  PushRelabelSolver(detail::Residual& r, int s, int t,
                    const util::CancelToken& cancel, SolveMetrics* metrics)
      : r_(r), s_(s), t_(t), cancel_(cancel), metrics_(metrics), n_(r.n),
        height_(n_, 0), excess_(n_, 0.0), current_arc_(n_, 0),
        height_count_(2 * static_cast<size_t>(n_) + 1, 0) {
    // Capacity-relative dust threshold: at capacity scales >= 1e9 the
    // double rounding residue of carried flows exceeds any absolute
    // epsilon, so every dust comparison in the restart scales with the
    // largest residual capacity (clamped so small instances keep the
    // historical absolute thresholds).
    double scale = 1.0;
    for (const double c : r_.cap) scale = std::max(scale, c);
    // Well below check_flow's 1e-9 conservation tolerance at scale 1, well
    // above double rounding dust at the capacity scale in play.
    excess_eps_ = 1e-11 * scale;
    refresh_threshold_ =
        std::max<long long>(64, static_cast<long long>(r_.cap.size()) / 16);
  }

  long long augment(const detail::PushRelabelWarm* warm) {
    run_pass(warm ? warm->injection_budget
                  : std::numeric_limits<double>::infinity());
    // A warm pass that parked its source (height >= n with budget left)
    // carries its own exact maximality certificate: heights stay a valid
    // labeling throughout, and a valid labeling with h(s) >= n admits no
    // residual s->t path. Only a pass that spent its whole budget — where
    // maximality rests on the budget >= augmentable-value argument — needs
    // the reachability BFS to check that the budget did not undershoot
    // (stale or unmeasured prior, dust-starved bound).
    if (warm && !source_parked_ && !is_maximum()) {
      // Finish with the cold flood from the current — strictly closer —
      // flow; the counter keeps the escalation visible in telemetry
      // instead of just slower.
      if (metrics_) metrics_->warm_escalations++;
      run_pass(std::numeric_limits<double>::infinity());
    }
    return pushes_ + relabels_;
  }

 private:
  /// One full push-relabel pass from the feasible flow currently in `r_`:
  /// exact global relabel, excess injection (see below), FIFO discharge,
  /// then the phase-2 return of parked excess. Re-entrant: the warm entry
  /// runs a second (flood) pass when its maximality certificate fails.
  ///
  /// Cold (budget = infinity): the source is pinned at height n and every
  /// live source arc is saturated with excess — the textbook start, valid
  /// from any feasible flow.
  ///
  /// Warm (finite budget): the source is an ordinary vertex at its exact
  /// BFS height, seeded with `budget` units of excess — equivalently, the
  /// flood of a virtual super-source s' -> s arc with capacity `budget`.
  /// The discharge itself then chooses which source arcs carry the new
  /// flow, so the *total* injection is bounded by the budget instead of by
  /// the total source slack; with the budget a bound on the augmentable
  /// value, the capped entry still admits a maximum flow (some maximum
  /// flow differs from the carried one by s->t paths of at most that
  /// value), and whatever the budget cannot route stays parked at s and is
  /// simply dropped — it was virtual excess, never flow.
  void run_pass(double budget) {
    warm_source_ = budget < std::numeric_limits<double>::infinity();
    std::fill(excess_.begin(), excess_.end(), 0.0);
    std::fill(current_arc_.begin(), current_arc_.end(), 0);
    global_relabel(); // warm: source at its true height; cold: at n

    parking_only_ = warm_source_;
    relabel_work_ = 0;
    if (warm_source_) {
      if (budget > 0.0 && height_[s_] < n_) {
        excess_[s_] = budget;
        active_.push(s_);
        if (metrics_) metrics_->injected_excess_arcs++;
      }
    } else {
      // Saturate the source-adjacent arcs with residual slack — except
      // those into vertices the initial global relabel put at height n (no
      // residual path to the sink). Heights never decrease and stay a
      // valid labeling, so such a vertex can never reach the sink later
      // either: flow pushed there could only round-trip back to s.
      for (int arc : r_.arcs(s_)) {
        if (r_.cap[arc] <= 0.0 || height_[r_.head[arc]] >= n_) continue;
        inject(arc, r_.cap[arc]);
        if (metrics_) metrics_->injected_excess_arcs++;
      }
    }

    // Main loop: route as much excess as possible to the sink. A vertex
    // already at height >= n when popped (lifted by the gap heuristic, or
    // cut off by the initial relabel) can never reach the sink again, so
    // its excess is parked for the return-to-source sweep below instead of
    // being discharged uphill. The source only ever holds *virtual* excess
    // (the warm budget), so its leftovers are dropped, not parked.
    while (!active_.empty()) {
      maybe_check_cancel();
      const int v = active_.front();
      active_.pop();
      if (v == t_ || height_[v] >= n_) continue;
      if (v == s_ && !warm_source_) continue;
      discharge(v);
    }
    source_parked_ = warm_source_ && height_[s_] >= n_;
    excess_[s_] = 0.0;
    if (!return_excess_to_source()) {
      // Genuine dead end even with freshly invalidated cursors (dust
      // capacity bottlenecks): finish with the legacy discharge walk,
      // which returns excess by relabeling past n. Slow but
      // unconditionally correct — and counted, so a stream that silently
      // engages it is visible in telemetry. The walk NEEDS the climb past
      // n, so the warm pass's park-at-n rule is lifted for it.
      parking_only_ = false;
      if (metrics_) metrics_->phase2_fallbacks++;
      for (int v = 0; v < n_; ++v)
        if (v != s_ && v != t_ && excess_[v] > 0.0) active_.push(v);
      while (!active_.empty()) {
        maybe_check_cancel();
        const int v = active_.front();
        active_.pop();
        if (v == s_ || v == t_) continue;
        discharge(v);
      }
    }
  }

  /// Maximality certificate for the warm pass: a maximum flow has no
  /// residual s->t path. Dust-capacity arcs are treated as saturated, like
  /// everywhere else in the restart; one O(m) BFS per warm solve.
  bool is_maximum() const {
    std::vector<char> seen(static_cast<size_t>(n_), 0);
    std::queue<int> q;
    q.push(s_);
    seen[s_] = 1;
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int arc : r_.arcs(v)) {
        const int u = r_.head[arc];
        if (seen[u] || r_.cap[arc] <= excess_eps_) continue;
        if (u == t_) return false;
        seen[u] = 1;
        q.push(u);
      }
    }
    return true;
  }

  /// Discharge pops run ~millions/s; amortise the steady_clock read behind
  /// the deadline check to one in 1024 pops.
  void maybe_check_cancel() {
    if ((++pops_ & 1023) == 0) cancel_.check();
  }

  /// Phase 2: every parked excess travels back to the source by retracing
  /// flow-carrying in-arcs (odd arc ids: cap[2e+1] is exactly the flow on
  /// input edge e). Flow decomposition of the preflow guarantees each
  /// excess unit lies on an s -> v flow path, so the backward walk reaches
  /// s — after cancelling any flow cycles it wanders into, each of which
  /// zeroes at least one arc, so the whole phase terminates. Walking flow
  /// arcs directly (instead of BFS over the full residual per push) keeps
  /// the return cost proportional to the flow being unwound.
  ///
  /// The per-vertex in-arc cursors are an amortisation, not an invariant:
  /// they are only sound while flow-arc capacities are non-increasing,
  /// which holds within one sweep (every phase-2 mutation — cycle
  /// cancellation or an unwind to s — only *decreases* odd-arc capacity)
  /// but not across anything that pushes new flow, e.g. the escalation
  /// pass of a warm restart or the legacy discharge fallback, either of
  /// which can restore capacity behind an advanced cursor. An apparent
  /// dead end therefore invalidates the walk's cursors and retries once
  /// with a fresh scan; only a dead end that survives fresh cursors is
  /// genuine. Returns false on such a genuine dead end (float-dust
  /// inflow); the caller then finishes with the legacy discharge walk.
  bool return_excess_to_source() {
    const double eps = excess_eps_;
    std::vector<int> mark(n_, 0);
    std::vector<int> mark_pos(n_, -1);
    std::vector<int> cur(n_, 0); // per-vertex in-arc scan position
    std::vector<int> walk_v, walk_arc;
    int stamp = 0;
    for (int v0 = 0; v0 < n_; ++v0) {
      if (v0 == s_ || v0 == t_) continue;
      bool retried = false; // one fresh-cursor retry per apparent dead end
      while (excess_[v0] > eps) {
        maybe_check_cancel();
        ++stamp;
        walk_v.assign(1, v0);
        walk_arc.clear();
        mark[v0] = stamp;
        mark_pos[v0] = 0;
        bool routed = false;
        bool dead = false;
        while (!routed && !dead) {
          const int x = walk_v.back();
          const std::span<const int> arcs = r_.arcs(x);
          int& c = cur[x];
          while (c < static_cast<int>(arcs.size()) &&
                 (!(arcs[c] & 1) || r_.cap[arcs[c]] <= eps))
            c++;
          if (c == static_cast<int>(arcs.size())) {
            dead = true;
            break;
          }
          const int arc = arcs[c];
          const int u = r_.head[arc];
          if (u == s_) {
            // s -> ... -> v0 flow path found: unwind the excess along it.
            double amount = excess_[v0];
            for (int a : walk_arc) amount = std::min(amount, r_.cap[a]);
            amount = std::min(amount, r_.cap[arc]);
            for (int a : walk_arc) {
              r_.cap[a] -= amount;
              r_.cap[r_.rev(a)] += amount;
            }
            r_.cap[arc] -= amount;
            r_.cap[r_.rev(arc)] += amount;
            excess_[v0] -= amount;
            pushes_++;
            if (metrics_) metrics_->returned_excess_walks++;
            routed = true;
          } else if (mark[u] == stamp) {
            // Flow cycle u -> ... -> x -> u: cancel its bottleneck (zeroes
            // at least one arc) and resume the walk from u.
            const int p = mark_pos[u];
            double amount = r_.cap[arc];
            for (size_t i = p; i < walk_arc.size(); ++i)
              amount = std::min(amount, r_.cap[walk_arc[i]]);
            for (size_t i = p; i < walk_arc.size(); ++i) {
              r_.cap[walk_arc[i]] -= amount;
              r_.cap[r_.rev(walk_arc[i])] += amount;
            }
            r_.cap[arc] -= amount;
            r_.cap[r_.rev(arc)] += amount;
            for (size_t i = p + 1; i < walk_v.size(); ++i) mark[walk_v[i]] = 0;
            walk_v.resize(p + 1);
            walk_arc.resize(p);
            pushes_++;
          } else {
            mark[u] = stamp;
            mark_pos[u] = static_cast<int>(walk_v.size());
            walk_v.push_back(u);
            walk_arc.push_back(arc);
          }
        }
        if (dead) {
          if (retried) return false; // genuine: fresh cursors found nothing
          retried = true;
          for (int x : walk_v) cur[x] = 0;
          continue;
        }
        retried = false;
      }
      excess_[v0] = std::max(excess_[v0], 0.0);
    }
    return true;
  }

  void global_relabel() {
    // Heights = BFS distance to sink in the residual graph; unreachable
    // vertices sit at n. A cold pass pins the source at n regardless (the
    // flood start); a warm pass labels it like any other vertex, because
    // it discharges its budget excess itself.
    std::fill(height_.begin(), height_.end(), n_);
    std::fill(height_count_.begin(), height_count_.end(), 0);
    height_[t_] = 0;
    std::queue<int> q;
    q.push(t_);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int arc : r_.arcs(v)) {
        // Arc (v -> u) in adj; we need residual capacity on (u -> v).
        const int u = r_.head[arc];
        if (height_[u] == n_ && (warm_source_ || u != s_) &&
            r_.cap[r_.rev(arc)] > 0.0) {
          height_[u] = height_[v] + 1;
          q.push(u);
        }
      }
    }
    for (int v = 0; v < n_; ++v) height_count_[height_[v]]++;
  }

  /// Moves `amount` units of excess from the source across `arc` — the
  /// cold flood's injection primitive (a warm pass seeds the budget at the
  /// source instead and lets discharge pick the arcs).
  void inject(int arc, double amount) {
    const int u = r_.head[arc];
    r_.cap[arc] -= amount;
    r_.cap[r_.rev(arc)] += amount;
    const bool was_inactive = excess_[u] == 0.0;
    excess_[u] += amount;
    if (was_inactive && u != s_ && u != t_) active_.push(u);
    pushes_++;
  }

  void push(int v, int arc) {
    const double delta = std::min(excess_[v], r_.cap[arc]);
    if (delta <= 0.0) return;
    const int u = r_.head[arc];
    r_.cap[arc] -= delta;
    r_.cap[r_.rev(arc)] += delta;
    excess_[v] -= delta;
    const bool was_inactive = excess_[u] == 0.0;
    excess_[u] += delta;
    // A warm source is an ordinary active vertex: excess pushed back into
    // it must requeue it, or budget it could still re-route would strand
    // (and needlessly fail the maximality certificate).
    if (was_inactive && u != t_ && (u != s_ || warm_source_))
      active_.push(u);
    pushes_++;
  }

  /// Periodic exact relabel for warm passes: recomputes BFS distances to
  /// the sink and lifts every vertex to max(current, exact). The max of
  /// two valid labelings is valid (per residual arc, take whichever
  /// labeling attains the max at the tail), so heights stay valid and
  /// non-decreasing — and every vertex cut off from the sink jumps
  /// straight to n in one O(m) pass. This is what ends a warm pass: once
  /// the newly-opened slack is routed, the source and the unroutable
  /// remainder of its budget are cut off, and without the refresh they
  /// would relabel toward n one step (and one full arc scan) at a time.
  void refresh_heights() {
    std::vector<int> dist(static_cast<size_t>(n_), n_);
    dist[t_] = 0;
    std::queue<int> q;
    q.push(t_);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int arc : r_.arcs(v)) {
        const int u = r_.head[arc];
        if (dist[u] == n_ && (warm_source_ || u != s_) &&
            r_.cap[r_.rev(arc)] > 0.0) {
          dist[u] = dist[v] + 1;
          q.push(u);
        }
      }
    }
    std::fill(height_count_.begin(), height_count_.end(), 0);
    for (int v = 0; v < n_; ++v) {
      height_[v] = std::max(height_[v], dist[v]);
      if (height_[v] <= 2 * n_) height_count_[height_[v]]++;
    }
    // Raised heights can re-admit arcs an advanced cursor already skipped.
    std::fill(current_arc_.begin(), current_arc_.end(), 0);
    relabel_work_ = 0;
  }

  void relabel(int v) {
    const int old_height = height_[v];
    int min_height = 2 * n_;
    for (int arc : r_.arcs(v))
      if (r_.cap[arc] > 0.0) min_height = std::min(min_height, height_[r_.head[arc]]);
    height_[v] = min_height + 1;
    relabels_++;
    relabel_work_ += static_cast<long long>(r_.arcs(v).size()) + 1;

    height_count_[old_height]--;
    if (height_[v] <= 2 * n_) height_count_[height_[v]]++;

    // Gap heuristic: no vertex left at `old_height` cuts off everything
    // above it (those vertices can never reach the sink again).
    if (height_count_[old_height] == 0 && old_height < n_) {
      for (int u = 0; u < n_; ++u) {
        if (u != s_ && height_[u] > old_height && height_[u] < n_) {
          height_count_[height_[u]]--;
          height_[u] = n_ + 1;
          height_count_[height_[u]]++;
        }
      }
    }
  }

  void discharge(int v) {
    while (excess_[v] > 0.0) {
      // Warm phase 1 parks a vertex the moment it crosses n: it can never
      // reach the sink again, and the phase-2 walk returns its excess far
      // cheaper than relabeling it toward 2n would. (The legacy fallback
      // clears parking_only_ — its whole mechanism is that climb.) For the
      // warm source this drops the unroutable remainder of the budget,
      // which is virtual excess, not flow.
      if (parking_only_ && height_[v] >= n_) break;
      if (current_arc_[v] == static_cast<int>(r_.arcs(v).size())) {
        relabel(v);
        current_arc_[v] = 0;
        if (parking_only_ && relabel_work_ > refresh_threshold_)
          refresh_heights();
        // Defensive bound only: heights are capped at 2n+1 by relabel's
        // scan, so a vertex above 2n has walked its excess back to s.
        if (height_[v] > 2 * n_) break;
        continue;
      }
      const int arc = r_.arcs(v)[current_arc_[v]];
      const int u = r_.head[arc];
      if (r_.cap[arc] > 0.0 && height_[v] == height_[u] + 1)
        push(v, arc);
      else
        current_arc_[v]++;
    }
  }

  detail::Residual& r_;
  int s_, t_;
  util::CancelToken cancel_;
  SolveMetrics* metrics_;
  int n_;
  bool warm_source_ = false;  // current pass runs the budgeted-source start
  bool parking_only_ = false; // warm phase 1: park at n, refresh heights
  bool source_parked_ = false; // warm pass ended with h(s) >= n: certified
  // Arc-scan work between exact-height refreshes of a warm pass; m/4 keeps
  // the refresh amortised against the relabeling it replaces.
  long long relabel_work_ = 0;
  long long refresh_threshold_ = 0;
  double excess_eps_ = 1e-11;
  long long pops_ = 0;
  std::vector<int> height_;
  std::vector<double> excess_;
  std::vector<int> current_arc_;
  std::vector<int> height_count_;
  std::queue<int> active_;
  long long pushes_ = 0;
  long long relabels_ = 0;
};

} // namespace

namespace detail {

long long push_relabel_augment(Residual& r, int s, int t,
                               const util::CancelToken& cancel,
                               SolveMetrics* metrics,
                               const PushRelabelWarm* warm) {
  return PushRelabelSolver(r, s, t, cancel, metrics).augment(warm);
}

} // namespace detail

MaxFlowResult push_relabel(const graph::FlowNetwork& net,
                           const util::CancelToken& cancel) {
  detail::Residual r(net);
  MaxFlowResult result;
  result.operations = detail::push_relabel_augment(
      r, net.source(), net.sink(), cancel, &result.metrics);
  result.flow_value = r.flow_value_at(net, net.source());
  result.edge_flow = r.edge_flows(net);
  return result;
}

} // namespace aflow::flow

// FIFO push-relabel (Goldberg-Tarjan) with the two standard heuristics that
// make it the practical CPU reference the paper benchmarks against:
//   - initial global relabeling (exact distance labels from a reverse BFS),
//   - the gap heuristic (when a height level empties, every vertex above it
//     is lifted past n, cutting off dead regions).
//
// The solver operates on an externally owned residual and starts from
// whatever feasible flow it carries: a feasible flow is a preflow with no
// excess, so the standard initialisation (saturate the source-adjacent
// residual arcs, discharge) is valid from any carried flow. The cold entry
// (flow::push_relabel) passes a fresh zero-flow residual; the incremental
// delta path (flow/delta.hpp) passes a repaired carry-over residual, which
// is what makes a k-edge capacity edit cost O(changed region): only the
// arcs with fresh slack out of the source create excess to discharge.
#include <algorithm>
#include <queue>

#include "flow/maxflow.hpp"
#include "flow/residual.hpp"

namespace aflow::flow {

namespace {

class PushRelabelSolver {
 public:
  PushRelabelSolver(detail::Residual& r, int s, int t,
                    const util::CancelToken& cancel)
      : r_(r), s_(s), t_(t), cancel_(cancel), n_(r.n),
        height_(n_, 0), excess_(n_, 0.0), current_arc_(n_, 0),
        height_count_(2 * static_cast<size_t>(n_) + 1, 0) {}

  long long augment() {
    global_relabel();

    // Saturate the source-adjacent arcs with residual slack — except those
    // into vertices the initial global relabel put at height n (no residual
    // path to the sink). Heights never decrease and stay a valid labeling,
    // so such a vertex can never reach the sink later either: flow pushed
    // there could only round-trip back to s. Skipping it keeps the answer a
    // maximum flow and matters most on the delta path, where the carried
    // prior is near-maximal and almost all remaining source slack faces a
    // saturated cut.
    height_count_[height_[s_]]--;
    height_[s_] = n_;
    height_count_[n_]++;
    for (int arc : r_.arcs(s_)) {
      if (r_.cap[arc] <= 0.0 || height_[r_.head[arc]] >= n_) continue;
      push(s_, arc);
    }

    // Main loop: route as much excess as possible to the sink. A vertex
    // already at height >= n when popped (lifted by the gap heuristic, or
    // cut off by the initial relabel) can never reach the sink again, so
    // its excess is parked for the return-to-source sweep below instead of
    // being discharged uphill.
    while (!active_.empty()) {
      maybe_check_cancel();
      const int v = active_.front();
      active_.pop();
      if (v == s_ || v == t_ || height_[v] >= n_) continue;
      discharge(v);
    }
    if (!return_excess_to_source()) {
      // Numerically degenerate drain (dust-capacity bottlenecks): finish
      // with the legacy discharge walk, which returns excess by relabeling
      // past n. Slow but unconditionally correct.
      for (int v = 0; v < n_; ++v)
        if (v != s_ && v != t_ && excess_[v] > 0.0) active_.push(v);
      while (!active_.empty()) {
        maybe_check_cancel();
        const int v = active_.front();
        active_.pop();
        if (v == s_ || v == t_) continue;
        discharge(v);
      }
    }
    return pushes_ + relabels_;
  }

 private:
  /// Discharge pops run ~millions/s; amortise the steady_clock read behind
  /// the deadline check to one in 1024 pops.
  void maybe_check_cancel() {
    if ((++pops_ & 1023) == 0) cancel_.check();
  }

  /// Phase 2: every parked excess travels back to the source by retracing
  /// flow-carrying in-arcs (odd arc ids: cap[2e+1] is exactly the flow on
  /// input edge e). Flow decomposition of the preflow guarantees each
  /// excess unit lies on an s -> v flow path, so the backward walk reaches
  /// s — after cancelling any flow cycles it wanders into, each of which
  /// zeroes at least one arc, so the whole phase terminates. Walking flow
  /// arcs directly (instead of BFS over the full residual per push) keeps
  /// the return cost proportional to the flow being unwound. Returns false
  /// only on a numerically degenerate dead end (float-dust inflow); the
  /// caller then finishes with the legacy discharge walk.
  bool return_excess_to_source() {
    // Well below check_flow's 1e-9 conservation tolerance, well above
    // double rounding dust at the capacity scales in play.
    constexpr double kExcessEps = 1e-11;
    std::vector<int> mark(n_, 0);
    std::vector<int> mark_pos(n_, -1);
    std::vector<int> cur(n_, 0); // per-vertex in-arc scan position
    std::vector<int> walk_v, walk_arc;
    int stamp = 0;
    for (int v0 = 0; v0 < n_; ++v0) {
      if (v0 == s_ || v0 == t_) continue;
      while (excess_[v0] > kExcessEps) {
        maybe_check_cancel();
        ++stamp;
        walk_v.assign(1, v0);
        walk_arc.clear();
        mark[v0] = stamp;
        mark_pos[v0] = 0;
        bool routed = false;
        while (!routed) {
          const int x = walk_v.back();
          const std::span<const int> arcs = r_.arcs(x);
          int& c = cur[x];
          while (c < static_cast<int>(arcs.size()) &&
                 (!(arcs[c] & 1) || r_.cap[arcs[c]] <= kExcessEps))
            c++;
          if (c == static_cast<int>(arcs.size())) return false; // dead end
          const int arc = arcs[c];
          const int u = r_.head[arc];
          if (u == s_) {
            // s -> ... -> v0 flow path found: unwind the excess along it.
            double amount = excess_[v0];
            for (int a : walk_arc) amount = std::min(amount, r_.cap[a]);
            amount = std::min(amount, r_.cap[arc]);
            for (int a : walk_arc) {
              r_.cap[a] -= amount;
              r_.cap[r_.rev(a)] += amount;
            }
            r_.cap[arc] -= amount;
            r_.cap[r_.rev(arc)] += amount;
            excess_[v0] -= amount;
            pushes_++;
            routed = true;
          } else if (mark[u] == stamp) {
            // Flow cycle u -> ... -> x -> u: cancel its bottleneck (zeroes
            // at least one arc) and resume the walk from u.
            const int p = mark_pos[u];
            double amount = r_.cap[arc];
            for (size_t i = p; i < walk_arc.size(); ++i)
              amount = std::min(amount, r_.cap[walk_arc[i]]);
            for (size_t i = p; i < walk_arc.size(); ++i) {
              r_.cap[walk_arc[i]] -= amount;
              r_.cap[r_.rev(walk_arc[i])] += amount;
            }
            r_.cap[arc] -= amount;
            r_.cap[r_.rev(arc)] += amount;
            for (size_t i = p + 1; i < walk_v.size(); ++i) mark[walk_v[i]] = 0;
            walk_v.resize(p + 1);
            walk_arc.resize(p);
            pushes_++;
          } else {
            mark[u] = stamp;
            mark_pos[u] = static_cast<int>(walk_v.size());
            walk_v.push_back(u);
            walk_arc.push_back(arc);
          }
        }
      }
      excess_[v0] = std::max(excess_[v0], 0.0);
    }
    return true;
  }

  void global_relabel() {
    // Heights = BFS distance to sink in the residual graph; unreachable
    // vertices (and the source) sit at n.
    std::fill(height_.begin(), height_.end(), n_);
    std::fill(height_count_.begin(), height_count_.end(), 0);
    height_[t_] = 0;
    std::queue<int> q;
    q.push(t_);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int arc : r_.arcs(v)) {
        // Arc (v -> u) in adj; we need residual capacity on (u -> v).
        const int u = r_.head[arc];
        if (height_[u] == n_ && u != s_ && r_.cap[r_.rev(arc)] > 0.0) {
          height_[u] = height_[v] + 1;
          q.push(u);
        }
      }
    }
    for (int v = 0; v < n_; ++v) height_count_[height_[v]]++;
  }

  void push(int v, int arc) {
    const int u = r_.head[arc];
    const double delta = std::min(v == s_ ? r_.cap[arc] : excess_[v], r_.cap[arc]);
    if (delta <= 0.0) return;
    r_.cap[arc] -= delta;
    r_.cap[r_.rev(arc)] += delta;
    if (v != s_) excess_[v] -= delta;
    const bool was_inactive = excess_[u] == 0.0;
    excess_[u] += delta;
    if (was_inactive && u != s_ && u != t_) active_.push(u);
    pushes_++;
  }

  void relabel(int v) {
    const int old_height = height_[v];
    int min_height = 2 * n_;
    for (int arc : r_.arcs(v))
      if (r_.cap[arc] > 0.0) min_height = std::min(min_height, height_[r_.head[arc]]);
    height_[v] = min_height + 1;
    relabels_++;

    height_count_[old_height]--;
    if (height_[v] <= 2 * n_) height_count_[height_[v]]++;

    // Gap heuristic: no vertex left at `old_height` cuts off everything
    // above it (those vertices can never reach the sink again).
    if (height_count_[old_height] == 0 && old_height < n_) {
      for (int u = 0; u < n_; ++u) {
        if (u != s_ && height_[u] > old_height && height_[u] < n_) {
          height_count_[height_[u]]--;
          height_[u] = n_ + 1;
          height_count_[height_[u]]++;
        }
      }
    }
  }

  void discharge(int v) {
    while (excess_[v] > 0.0) {
      if (current_arc_[v] == static_cast<int>(r_.arcs(v).size())) {
        relabel(v);
        current_arc_[v] = 0;
        // Defensive bound only: heights are capped at 2n+1 by relabel's
        // scan, so a vertex above 2n has walked its excess back to s.
        if (height_[v] > 2 * n_) break;
        continue;
      }
      const int arc = r_.arcs(v)[current_arc_[v]];
      const int u = r_.head[arc];
      if (r_.cap[arc] > 0.0 && height_[v] == height_[u] + 1)
        push(v, arc);
      else
        current_arc_[v]++;
    }
  }

  detail::Residual& r_;
  int s_, t_;
  util::CancelToken cancel_;
  int n_;
  long long pops_ = 0;
  std::vector<int> height_;
  std::vector<double> excess_;
  std::vector<int> current_arc_;
  std::vector<int> height_count_;
  std::queue<int> active_;
  long long pushes_ = 0;
  long long relabels_ = 0;
};

} // namespace

namespace detail {

long long push_relabel_augment(Residual& r, int s, int t,
                               const util::CancelToken& cancel) {
  return PushRelabelSolver(r, s, t, cancel).augment();
}

} // namespace detail

MaxFlowResult push_relabel(const graph::FlowNetwork& net,
                           const util::CancelToken& cancel) {
  detail::Residual r(net);
  MaxFlowResult result;
  result.operations =
      detail::push_relabel_augment(r, net.source(), net.sink(), cancel);
  result.flow_value = r.flow_value_at(net, net.source());
  result.edge_flow = r.edge_flows(net);
  return result;
}

} // namespace aflow::flow

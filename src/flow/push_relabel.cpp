// FIFO push-relabel (Goldberg-Tarjan) with the two standard heuristics that
// make it the practical CPU reference the paper benchmarks against:
//   - initial global relabeling (exact distance labels from a reverse BFS),
//   - the gap heuristic (when a height level empties, every vertex above it
//     is lifted past n, cutting off dead regions).
#include <algorithm>
#include <queue>

#include "flow/maxflow.hpp"
#include "flow/residual.hpp"

namespace aflow::flow {

namespace {

class PushRelabelSolver {
 public:
  explicit PushRelabelSolver(const graph::FlowNetwork& net)
      : r_(net), s_(net.source()), t_(net.sink()), n_(r_.n),
        height_(n_, 0), excess_(n_, 0.0), current_arc_(n_, 0),
        height_count_(2 * static_cast<size_t>(n_) + 1, 0) {}

  MaxFlowResult run(const graph::FlowNetwork& net) {
    global_relabel();

    // Saturate all source-adjacent arcs.
    height_count_[height_[s_]]--;
    height_[s_] = n_;
    height_count_[n_]++;
    for (int arc : r_.adj[s_]) {
      if (r_.cap[arc] <= 0.0) continue;
      push(s_, arc);
    }

    while (!active_.empty()) {
      const int v = active_.front();
      active_.pop();
      if (v == s_ || v == t_) continue;
      discharge(v);
    }

    MaxFlowResult result;
    result.flow_value = excess_[t_];
    result.edge_flow = r_.edge_flows(net);
    result.operations = pushes_ + relabels_;
    return result;
  }

 private:
  void global_relabel() {
    // Heights = BFS distance to sink in the residual graph; unreachable
    // vertices (and the source) sit at n.
    std::fill(height_.begin(), height_.end(), n_);
    std::fill(height_count_.begin(), height_count_.end(), 0);
    height_[t_] = 0;
    std::queue<int> q;
    q.push(t_);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int arc : r_.adj[v]) {
        // Arc (v -> u) in adj; we need residual capacity on (u -> v).
        const int u = r_.head[arc];
        if (height_[u] == n_ && u != s_ && r_.cap[r_.rev(arc)] > 0.0) {
          height_[u] = height_[v] + 1;
          q.push(u);
        }
      }
    }
    for (int v = 0; v < n_; ++v) height_count_[height_[v]]++;
  }

  void push(int v, int arc) {
    const int u = r_.head[arc];
    const double delta = std::min(v == s_ ? r_.cap[arc] : excess_[v], r_.cap[arc]);
    if (delta <= 0.0) return;
    r_.cap[arc] -= delta;
    r_.cap[r_.rev(arc)] += delta;
    if (v != s_) excess_[v] -= delta;
    const bool was_inactive = excess_[u] == 0.0;
    excess_[u] += delta;
    if (was_inactive && u != s_ && u != t_) active_.push(u);
    pushes_++;
  }

  void relabel(int v) {
    const int old_height = height_[v];
    int min_height = 2 * n_;
    for (int arc : r_.adj[v])
      if (r_.cap[arc] > 0.0) min_height = std::min(min_height, height_[r_.head[arc]]);
    height_[v] = min_height + 1;
    relabels_++;

    height_count_[old_height]--;
    if (height_[v] <= 2 * n_) height_count_[height_[v]]++;

    // Gap heuristic: no vertex left at `old_height` cuts off everything
    // above it (those vertices can never reach the sink again).
    if (height_count_[old_height] == 0 && old_height < n_) {
      for (int u = 0; u < n_; ++u) {
        if (u != s_ && height_[u] > old_height && height_[u] < n_) {
          height_count_[height_[u]]--;
          height_[u] = n_ + 1;
          height_count_[height_[u]]++;
        }
      }
    }
  }

  void discharge(int v) {
    while (excess_[v] > 0.0) {
      if (current_arc_[v] == static_cast<int>(r_.adj[v].size())) {
        relabel(v);
        current_arc_[v] = 0;
        // Defensive bound only: a vertex with excess always has a residual
        // path back to the source (its inflow came from s), which caps its
        // valid height at h(s) + n - 1 = 2n - 1, so this break can never
        // strand excess — the excess-return phase completes inside the
        // main loop. test_flow's conservation audit enforces this.
        if (height_[v] > 2 * n_) break; // disconnected from both terminals
        continue;
      }
      const int arc = r_.adj[v][current_arc_[v]];
      const int u = r_.head[arc];
      if (r_.cap[arc] > 0.0 && height_[v] == height_[u] + 1)
        push(v, arc);
      else
        current_arc_[v]++;
    }
  }

  detail::Residual r_;
  int s_, t_, n_;
  std::vector<int> height_;
  std::vector<double> excess_;
  std::vector<int> current_arc_;
  std::vector<int> height_count_;
  std::queue<int> active_;
  long long pushes_ = 0;
  long long relabels_ = 0;
};

} // namespace

MaxFlowResult push_relabel(const graph::FlowNetwork& net) {
  return PushRelabelSolver(net).run(net);
}

} // namespace aflow::flow

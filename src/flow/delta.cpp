#include "flow/delta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "flow/residual.hpp"

namespace aflow::flow {

namespace {

/// Fraction of the edge set beyond which a push-relabel delta restart
/// takes the cold flood instead of the slack-bounded warm restart — the
/// trust-region-style threshold of the analog delta path: when a quarter
/// of the edges changed, the "affected region" is most of the instance
/// and bounding the injection buys nothing over the flood.
constexpr double kWarmEditFraction = 0.25;

/// Per-arc excess cap for the slack-bounded warm restart: the total
/// residual capacity of the arcs the edit (plus its conservation repair)
/// newly opened — closed (or dust) before, open now. Every augmenting
/// path of the edited network crosses such an arc: a path whose every
/// residual capacity is unchanged was available against the prior, and
/// the prior was maximal. Each unit of extra flow consumes a unit of
/// newly-opened capacity, so the augmentable value — and with it any
/// maximum flow's extra entry through any one source arc — is bounded by
/// this sum (full argument in DESIGN.md "Incremental re-solve: the delta
/// path"). A garbage prior breaks the bound, not correctness: the warm
/// restart's maximality certificate escalates to the flood.
double warm_injection_budget(const CapacityDelta& delta,
                             const MaxFlowResult& prior,
                             const detail::Residual& r,
                             const detail::ArcTouchLog& touched,
                             double eps) {
  // Pre-edit residual capacity per changed arc. The repair log carries
  // the pre-repair value of every arc it moved flow across; edited edges
  // override it with the true pre-edit residual reconstructed from the
  // composed (first-old, last-new) edit and the prior flow, because the
  // clamp in the carry constructor already changed those arcs before the
  // repair ran.
  std::unordered_map<int, double> before;
  before.reserve(touched.size() + 2 * delta.edits.size());
  for (const auto& [arc, pre] : touched) before.emplace(arc, pre);
  for (const CapacityEdit& e : delta.composed()) {
    const int fwd = 2 * e.edge;
    if (e.edge < 0 ||
        2 * static_cast<size_t>(e.edge) + 1 >= r.cap.size())
      continue; // stale edit against another topology: nothing to bound
    if (e.old_capacity < 0.0) {
      // Unmeasured edit: conservatively count both arcs as newly opened.
      before[fwd] = 0.0;
      before[fwd + 1] = 0.0;
    } else {
      const double f_old = prior.edge_flow[e.edge];
      before[fwd] = e.old_capacity - f_old;
      before[fwd + 1] = f_old;
    }
  }

  double budget = 0.0;
  for (const auto& [arc, pre] : before) {
    const double now = r.cap[static_cast<size_t>(arc)];
    if (pre <= eps && now > eps) budget += now;
  }
  return budget;
}

/// Second, usually tighter bound on the same quantity, from the cut side:
/// the prior's min cut is still a cut, so the new maximum value is at most
/// prior_value + the sum of positive capacity deltas (only increases can
/// raise a cut's capacity, whichever edited edges it crosses); and some
/// maximum flow differs from the repaired carry by s->t paths alone
/// (difference cycles cancel without changing value or feasibility), so
/// the augmentable value is that ceiling minus the carried value. The two
/// bounds fail independently — slack_budget blows up when the repair
/// rewires long paths, cut_budget when a decrease drains much carried
/// flow — so the warm restart takes the min.
double warm_cut_budget(const CapacityDelta& delta,
                       const MaxFlowResult& prior, double carried_value,
                       double eps) {
  double raised = 0.0;
  for (const CapacityEdit& e : delta.composed()) {
    if (e.old_capacity < 0.0) // unmeasured edit: no ceiling from this side
      return std::numeric_limits<double>::infinity();
    raised += std::max(0.0, e.capacity - e.old_capacity);
  }
  // eps of headroom so rounding in the carried value cannot shave a real
  // unit off the budget (an undershoot is correct but escalates).
  return std::max(0.0, prior.flow_value + raised - carried_value) + eps;
}

MaxFlowResult solve_delta_impl(const graph::FlowNetwork& net,
                               const CapacityDelta& delta,
                               const MaxFlowResult& prior,
                               bool use_push_relabel,
                               const util::CancelToken& cancel) {
  const auto scratch = [&](bool fallback) {
    MaxFlowResult r =
        use_push_relabel ? push_relabel(net, cancel) : dinic(net, cancel);
    r.metrics.delta_fallbacks = fallback ? 1 : 0;
    r.metrics.edges_touched = delta.distinct_edges();
    return r;
  };
  if (!delta_prior_usable(net, prior)) return scratch(/*fallback=*/true);

  detail::Residual r(net, prior.edge_flow);
  MaxFlowResult result;
  if (use_push_relabel) {
    // The repair's touch log is what prices the warm restart: arcs whose
    // residual the repair changed are "opened slack" exactly like edited
    // arcs, so the budget covers repair-induced reroutes too (a decrease
    // that forces the repair to drain flow suboptimally leaves its
    // re-augmentable slack in the log).
    detail::ArcTouchLog touched;
    if (!detail::repair_conservation(r, net.source(), net.sink(),
                                     result.operations, touched, cancel))
      return scratch(/*fallback=*/true);
    const bool warm =
        delta.distinct_edges() <=
        std::max(1.0, kWarmEditFraction * net.num_edges());
    if (warm) {
      // The restart's dust threshold (matches push_relabel_augment's
      // capacity-relative excess_eps).
      double scale = 1.0;
      for (const double c : r.cap) scale = std::max(scale, c);
      const double eps = 1e-11 * scale;
      const detail::PushRelabelWarm plan{std::min(
          warm_injection_budget(delta, prior, r, touched, eps),
          warm_cut_budget(delta, prior,
                          r.flow_value_at(net, net.source()), eps))};
      result.operations += detail::push_relabel_augment(
          r, net.source(), net.sink(), cancel, &result.metrics, &plan);
    } else {
      result.operations += detail::push_relabel_augment(
          r, net.source(), net.sink(), cancel, &result.metrics);
    }
  } else {
    // The shared conservation repair (flow/residual.hpp) drains the
    // carry's imbalances; a false return means a numerically degenerate
    // prior.
    if (!detail::repair_conservation(r, net.source(), net.sink(),
                                     result.operations, cancel))
      return scratch(/*fallback=*/true);
    detail::dinic_augment(r, net.source(), net.sink(), result.operations,
                          cancel);
  }

  result.flow_value = r.flow_value_at(net, net.source());
  result.edge_flow = r.edge_flows(net);
  result.metrics.delta_solves = 1;
  result.metrics.edges_touched = delta.distinct_edges();
  return result;
}

} // namespace

int CapacityDelta::distinct_edges() const {
  std::unordered_set<int> edges;
  edges.reserve(edits.size());
  for (const CapacityEdit& e : edits) edges.insert(e.edge);
  return static_cast<int>(edges.size());
}

void CapacityDelta::apply(graph::FlowNetwork& net) {
  // All-or-nothing: validate every edit before mutating anything, so a bad
  // trailing edit cannot leave the network half-edited or clobber the
  // old_capacity fields recorded for the edits before it. The rules mirror
  // FlowNetwork::set_capacity exactly (index in range, capacity strictly
  // positive and therefore not NaN).
  for (const CapacityEdit& e : edits) {
    if (e.edge < 0 || e.edge >= net.num_edges())
      throw std::invalid_argument("CapacityDelta: edge index " +
                                  std::to_string(e.edge) + " out of range");
    if (!(e.capacity > 0.0))
      throw std::invalid_argument("CapacityDelta: capacity for edge " +
                                  std::to_string(e.edge) +
                                  " must be positive");
  }
  for (CapacityEdit& e : edits) {
    e.old_capacity = net.edge(e.edge).capacity;
    net.set_capacity(e.edge, e.capacity);
  }
}

std::vector<CapacityEdit> CapacityDelta::composed() const {
  std::vector<CapacityEdit> out;
  out.reserve(edits.size());
  std::unordered_map<int, size_t> slot; // edge -> index in out
  slot.reserve(edits.size());
  for (const CapacityEdit& e : edits) {
    const auto [it, fresh] = slot.emplace(e.edge, out.size());
    if (fresh)
      out.push_back(e); // first edit keeps the first old_capacity
    else
      out[it->second].capacity = e.capacity; // last new capacity wins
  }
  return out;
}

double CapacityDelta::max_relative_change() const {
  double worst = 0.0;
  for (const CapacityEdit& e : composed()) {
    if (e.old_capacity < 0.0)
      return std::numeric_limits<double>::infinity();
    worst = std::max(worst, std::abs(e.capacity - e.old_capacity) /
                                std::max(e.old_capacity, 1.0));
  }
  return worst;
}

CapacityDelta delta_between(const graph::FlowNetwork& before,
                            const graph::FlowNetwork& after) {
  if (before.num_vertices() != after.num_vertices() ||
      before.num_edges() != after.num_edges() ||
      before.source() != after.source() || before.sink() != after.sink())
    throw std::invalid_argument(
        "delta_between: instances differ in topology, not just capacities");
  CapacityDelta d;
  for (int e = 0; e < before.num_edges(); ++e) {
    const graph::Edge& a = before.edge(e);
    const graph::Edge& b = after.edge(e);
    if (a.from != b.from || a.to != b.to)
      throw std::invalid_argument(
          "delta_between: edge " + std::to_string(e) + " endpoints differ");
    if (a.capacity != b.capacity)
      d.edits.push_back({e, b.capacity, a.capacity});
  }
  return d;
}

bool delta_prior_usable(const graph::FlowNetwork& net,
                        const MaxFlowResult& prior) {
  if (static_cast<int>(prior.edge_flow.size()) != net.num_edges())
    return false;
  for (const double f : prior.edge_flow)
    if (!std::isfinite(f)) return false;
  return true;
}

MaxFlowResult dinic_delta(const graph::FlowNetwork& net,
                          const CapacityDelta& delta,
                          const MaxFlowResult& prior,
                          const util::CancelToken& cancel) {
  return solve_delta_impl(net, delta, prior, /*use_push_relabel=*/false,
                          cancel);
}

MaxFlowResult push_relabel_delta(const graph::FlowNetwork& net,
                                 const CapacityDelta& delta,
                                 const MaxFlowResult& prior,
                                 const util::CancelToken& cancel) {
  return solve_delta_impl(net, delta, prior, /*use_push_relabel=*/true,
                          cancel);
}

} // namespace aflow::flow

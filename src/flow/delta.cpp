#include "flow/delta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "flow/residual.hpp"

namespace aflow::flow {

namespace {

/// Imbalances below this are float dust, not repair work: digital priors
/// carry integral flows, so genuine violations are >= 1 capacity unit.
constexpr double kImbalanceEps = 1e-9;

/// Conservation surplus per vertex under the flow carried by `r`:
/// inflow - outflow (source/sink entries are computed but never repaired).
std::vector<double> imbalances(const graph::FlowNetwork& net,
                               const detail::Residual& r) {
  std::vector<double> im(net.num_vertices(), 0.0);
  for (int e = 0; e < net.num_edges(); ++e) {
    const double f =
        net.edge(e).capacity - r.cap[2 * static_cast<size_t>(e)];
    im[net.edge(e).to] += f;
    im[net.edge(e).from] -= f;
  }
  return im;
}

/// Shortest-path repair pusher over the carried residual. Both directions
/// terminate by flow decomposition of the carried pseudo-flow: a surplus
/// node's extra inflow is reversible back to the source, a deficit node's
/// extra outflow is reversible back from the sink.
class DeltaRepair {
 public:
  DeltaRepair(const graph::FlowNetwork& net, detail::Residual& r)
      : net_(net), r_(r), s_(net.source()), t_(net.sink()),
        im_(imbalances(net, r)), parent_arc_(r.n, -1), seen_(r.n, 0) {}

  /// Restores conservation at every ordinary vertex. All excesses drain
  /// before any deficit fills: once no excess nodes remain, decomposing the
  /// carried pseudo-flow shows every deficit node's surplus outflow reaches
  /// the sink, so the reverse search in fill_deficit always finds a terminal
  /// supplier. Returns false when a search or push fails to make progress
  /// (numerically degenerate prior) — the caller then falls back to a
  /// from-scratch solve.
  bool run(long long& ops) {
    for (int v = 0; v < r_.n; ++v) {
      if (v == s_ || v == t_) continue;
      while (im_[v] > kImbalanceEps) {
        if (!drain_excess(v)) return false;
        ops++;
      }
    }
    for (int v = 0; v < r_.n; ++v) {
      if (v == s_ || v == t_) continue;
      while (im_[v] < -kImbalanceEps) {
        if (!fill_deficit(v)) return false;
        ops++;
      }
    }
    return true;
  }

 private:
  bool is_deficit(int v) const {
    return v != s_ && v != t_ && im_[v] < -kImbalanceEps;
  }

  /// BFS forward from `v` to the nearest of {s, t, any deficit vertex};
  /// pushes the bottleneck (capped by both imbalances) along the path.
  bool drain_excess(int v) {
    ++stamp_;
    std::queue<int> q;
    q.push(v);
    seen_[v] = stamp_;
    int target = -1;
    while (!q.empty() && target < 0) {
      const int x = q.front();
      q.pop();
      for (int arc : r_.arcs(x)) {
        // Dust-capacity arcs (rounding residue of earlier pushes) are
        // saturated for repair purposes: routing through one would cap the
        // push at float noise and stall the repair.
        const int u = r_.head[arc];
        if (seen_[u] == stamp_ || r_.cap[arc] <= kImbalanceEps) continue;
        seen_[u] = stamp_;
        parent_arc_[u] = arc;
        if (u == s_ || u == t_ || is_deficit(u)) {
          target = u;
          break;
        }
        q.push(u);
      }
    }
    if (target < 0) return false;

    double amount = im_[v];
    if (is_deficit(target)) amount = std::min(amount, -im_[target]);
    for (int x = target; x != v; x = r_.head[r_.rev(parent_arc_[x])])
      amount = std::min(amount, r_.cap[parent_arc_[x]]);
    if (amount <= kImbalanceEps) return false;

    for (int x = target; x != v; x = r_.head[r_.rev(parent_arc_[x])]) {
      r_.cap[parent_arc_[x]] -= amount;
      r_.cap[r_.rev(parent_arc_[x])] += amount;
    }
    im_[v] -= amount;
    if (target != s_ && target != t_) im_[target] += amount;
    return true;
  }

  /// BFS backward from `v` to the nearest of {s, t} (all surplus vertices
  /// are drained before any fill runs, so only terminals can supply);
  /// pushes the bottleneck along the found u -> ... -> v residual path.
  bool fill_deficit(int v) {
    ++stamp_;
    std::queue<int> q;
    q.push(v);
    seen_[v] = stamp_;
    int source_node = -1;
    while (!q.empty() && source_node < 0) {
      const int x = q.front();
      q.pop();
      for (int arc : r_.arcs(x)) {
        // Predecessor u = head[arc] supplies x through the arc's reverse
        // (u -> x), which must have residual capacity above the dust
        // threshold (see drain_excess).
        const int u = r_.head[arc];
        if (seen_[u] == stamp_ || r_.cap[r_.rev(arc)] <= kImbalanceEps)
          continue;
        seen_[u] = stamp_;
        parent_arc_[u] = r_.rev(arc); // the u -> x residual arc
        if (u == s_ || u == t_) {
          source_node = u;
          break;
        }
        q.push(u);
      }
    }
    if (source_node < 0) return false;

    double amount = -im_[v];
    for (int x = source_node; x != v; x = r_.head[parent_arc_[x]])
      amount = std::min(amount, r_.cap[parent_arc_[x]]);
    if (amount <= kImbalanceEps) return false;

    for (int x = source_node; x != v; x = r_.head[parent_arc_[x]]) {
      r_.cap[parent_arc_[x]] -= amount;
      r_.cap[r_.rev(parent_arc_[x])] += amount;
    }
    im_[v] += amount;
    return true;
  }

  const graph::FlowNetwork& net_;
  detail::Residual& r_;
  int s_, t_;
  std::vector<double> im_;
  std::vector<int> parent_arc_;
  std::vector<int> seen_; // visit stamps: seen_[u] == stamp_ means visited
  int stamp_ = 0;
};

MaxFlowResult solve_delta_impl(const graph::FlowNetwork& net,
                               const CapacityDelta& delta,
                               const MaxFlowResult& prior,
                               bool use_push_relabel) {
  const auto scratch = [&](bool fallback) {
    MaxFlowResult r = use_push_relabel ? push_relabel(net) : dinic(net);
    r.metrics.delta_fallbacks = fallback ? 1 : 0;
    r.metrics.edges_touched = delta.distinct_edges();
    return r;
  };
  if (!delta_prior_usable(net, prior)) return scratch(/*fallback=*/true);

  detail::Residual r(net, prior.edge_flow);
  MaxFlowResult result;
  if (!DeltaRepair(net, r).run(result.operations))
    return scratch(/*fallback=*/true);

  if (use_push_relabel)
    result.operations += detail::push_relabel_augment(r, net.source(),
                                                      net.sink());
  else
    detail::dinic_augment(r, net.source(), net.sink(), result.operations);

  result.flow_value = r.flow_value_at(net, net.source());
  result.edge_flow = r.edge_flows(net);
  result.metrics.delta_solves = 1;
  result.metrics.edges_touched = delta.distinct_edges();
  return result;
}

} // namespace

int CapacityDelta::distinct_edges() const {
  std::unordered_set<int> edges;
  edges.reserve(edits.size());
  for (const CapacityEdit& e : edits) edges.insert(e.edge);
  return static_cast<int>(edges.size());
}

void CapacityDelta::apply(graph::FlowNetwork& net) {
  for (CapacityEdit& e : edits) {
    if (e.edge < 0 || e.edge >= net.num_edges())
      throw std::invalid_argument("CapacityDelta: edge index " +
                                  std::to_string(e.edge) + " out of range");
    e.old_capacity = net.edge(e.edge).capacity;
    net.set_capacity(e.edge, e.capacity); // validates the new capacity
  }
}

double CapacityDelta::max_relative_change() const {
  double worst = 0.0;
  for (const CapacityEdit& e : edits) {
    if (e.old_capacity < 0.0)
      return std::numeric_limits<double>::infinity();
    worst = std::max(worst, std::abs(e.capacity - e.old_capacity) /
                                std::max(e.old_capacity, 1.0));
  }
  return worst;
}

CapacityDelta delta_between(const graph::FlowNetwork& before,
                            const graph::FlowNetwork& after) {
  if (before.num_vertices() != after.num_vertices() ||
      before.num_edges() != after.num_edges() ||
      before.source() != after.source() || before.sink() != after.sink())
    throw std::invalid_argument(
        "delta_between: instances differ in topology, not just capacities");
  CapacityDelta d;
  for (int e = 0; e < before.num_edges(); ++e) {
    const graph::Edge& a = before.edge(e);
    const graph::Edge& b = after.edge(e);
    if (a.from != b.from || a.to != b.to)
      throw std::invalid_argument(
          "delta_between: edge " + std::to_string(e) + " endpoints differ");
    if (a.capacity != b.capacity)
      d.edits.push_back({e, b.capacity, a.capacity});
  }
  return d;
}

bool delta_prior_usable(const graph::FlowNetwork& net,
                        const MaxFlowResult& prior) {
  if (static_cast<int>(prior.edge_flow.size()) != net.num_edges())
    return false;
  for (const double f : prior.edge_flow)
    if (!std::isfinite(f)) return false;
  return true;
}

MaxFlowResult dinic_delta(const graph::FlowNetwork& net,
                          const CapacityDelta& delta,
                          const MaxFlowResult& prior) {
  return solve_delta_impl(net, delta, prior, /*use_push_relabel=*/false);
}

MaxFlowResult push_relabel_delta(const graph::FlowNetwork& net,
                                 const CapacityDelta& delta,
                                 const MaxFlowResult& prior) {
  return solve_delta_impl(net, delta, prior, /*use_push_relabel=*/true);
}

} // namespace aflow::flow

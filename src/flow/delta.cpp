#include "flow/delta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "flow/residual.hpp"

namespace aflow::flow {

namespace {

MaxFlowResult solve_delta_impl(const graph::FlowNetwork& net,
                               const CapacityDelta& delta,
                               const MaxFlowResult& prior,
                               bool use_push_relabel,
                               const util::CancelToken& cancel) {
  const auto scratch = [&](bool fallback) {
    MaxFlowResult r =
        use_push_relabel ? push_relabel(net, cancel) : dinic(net, cancel);
    r.metrics.delta_fallbacks = fallback ? 1 : 0;
    r.metrics.edges_touched = delta.distinct_edges();
    return r;
  };
  if (!delta_prior_usable(net, prior)) return scratch(/*fallback=*/true);

  detail::Residual r(net, prior.edge_flow);
  MaxFlowResult result;
  // The shared conservation repair (flow/residual.hpp) drains the carry's
  // imbalances; a false return means a numerically degenerate prior.
  if (!detail::repair_conservation(r, net.source(), net.sink(),
                                   result.operations, cancel))
    return scratch(/*fallback=*/true);

  if (use_push_relabel)
    result.operations += detail::push_relabel_augment(r, net.source(),
                                                      net.sink(), cancel);
  else
    detail::dinic_augment(r, net.source(), net.sink(), result.operations,
                          cancel);

  result.flow_value = r.flow_value_at(net, net.source());
  result.edge_flow = r.edge_flows(net);
  result.metrics.delta_solves = 1;
  result.metrics.edges_touched = delta.distinct_edges();
  return result;
}

} // namespace

int CapacityDelta::distinct_edges() const {
  std::unordered_set<int> edges;
  edges.reserve(edits.size());
  for (const CapacityEdit& e : edits) edges.insert(e.edge);
  return static_cast<int>(edges.size());
}

void CapacityDelta::apply(graph::FlowNetwork& net) {
  for (CapacityEdit& e : edits) {
    if (e.edge < 0 || e.edge >= net.num_edges())
      throw std::invalid_argument("CapacityDelta: edge index " +
                                  std::to_string(e.edge) + " out of range");
    e.old_capacity = net.edge(e.edge).capacity;
    net.set_capacity(e.edge, e.capacity); // validates the new capacity
  }
}

double CapacityDelta::max_relative_change() const {
  double worst = 0.0;
  for (const CapacityEdit& e : edits) {
    if (e.old_capacity < 0.0)
      return std::numeric_limits<double>::infinity();
    worst = std::max(worst, std::abs(e.capacity - e.old_capacity) /
                                std::max(e.old_capacity, 1.0));
  }
  return worst;
}

CapacityDelta delta_between(const graph::FlowNetwork& before,
                            const graph::FlowNetwork& after) {
  if (before.num_vertices() != after.num_vertices() ||
      before.num_edges() != after.num_edges() ||
      before.source() != after.source() || before.sink() != after.sink())
    throw std::invalid_argument(
        "delta_between: instances differ in topology, not just capacities");
  CapacityDelta d;
  for (int e = 0; e < before.num_edges(); ++e) {
    const graph::Edge& a = before.edge(e);
    const graph::Edge& b = after.edge(e);
    if (a.from != b.from || a.to != b.to)
      throw std::invalid_argument(
          "delta_between: edge " + std::to_string(e) + " endpoints differ");
    if (a.capacity != b.capacity)
      d.edits.push_back({e, b.capacity, a.capacity});
  }
  return d;
}

bool delta_prior_usable(const graph::FlowNetwork& net,
                        const MaxFlowResult& prior) {
  if (static_cast<int>(prior.edge_flow.size()) != net.num_edges())
    return false;
  for (const double f : prior.edge_flow)
    if (!std::isfinite(f)) return false;
  return true;
}

MaxFlowResult dinic_delta(const graph::FlowNetwork& net,
                          const CapacityDelta& delta,
                          const MaxFlowResult& prior,
                          const util::CancelToken& cancel) {
  return solve_delta_impl(net, delta, prior, /*use_push_relabel=*/false,
                          cancel);
}

MaxFlowResult push_relabel_delta(const graph::FlowNetwork& net,
                                 const CapacityDelta& delta,
                                 const MaxFlowResult& prior,
                                 const util::CancelToken& cancel) {
  return solve_delta_impl(net, delta, prior, /*use_push_relabel=*/true,
                          cancel);
}

} // namespace aflow::flow

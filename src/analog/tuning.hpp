// Post-fabrication resistance tuning (Sec. 4.3.2, Fig. 9b).
//
// The substrate is reconfigured into per-widget tuning circuits that enforce
// Vx^- = -Vx. The two-step procedure from the paper:
//   1. with Vx = 0, trim R3 (the widget's negative-resistor magnitude)
//      until Vx^- = 0, establishing 1/R3 = 1/r1 + 1/r2;
//   2. with Vx = 1 V, trim r2 until Vx^- = -1 V;
// iterated a few times for precision. Trimming is possible because every
// resistance is a memristor in LRS (fine-grained memristance modulation).
//
// `tune_negation_widget` runs the procedure on an actual mismatched widget
// (built at any fidelity) using the DC solver as the measurement bench, and
// reports the achieved negation error.
#pragma once

#include "analog/substrate_config.hpp"
#include "analog/variation.hpp"

namespace aflow::analog {

struct TuningOptions {
  SubstrateConfig config;     // fidelity, nominal r, op-amp parameters
  VariationModel variation;   // fabrication mismatch to tune away
  double tolerance = 1e-4;    // volts, per-step secant target
  int max_rounds = 8;         // outer 1-2 iterations
  double test_voltage = 1.0;  // volts for step 2
};

struct TuningReport {
  double initial_error = 0.0; // |Vxm + Vx| at Vx = test_voltage, volts
  double final_error = 0.0;
  int rounds = 0;
  bool converged = false;
  /// Error after each completed round (for convergence plots).
  std::vector<double> error_history;
  /// Trimmed values, for inspection: R3 magnitude and r2.
  double tuned_r3 = 0.0;
  double tuned_r2 = 0.0;
};

TuningReport tune_negation_widget(const TuningOptions& options);

} // namespace aflow::analog

// End-to-end analog max-flow solver: builds the substrate circuit for an
// instance, runs it (DC steady state, or full transient with the Vflow step
// of Sec. 3.2), and reads the solution back in problem units.
//
// Two solve methods:
//  - kSteadyState: the operating point the substrate converges to; used for
//    solution-quality experiments (quantization, variation, Vflow studies).
//  - kTransient: integrates the step response and measures the paper's
//    convergence time (first time the flow value stays within 0.1% of its
//    final value) — the quantity plotted in Fig. 10.
#pragma once

#include <memory>
#include <optional>

#include "analog/mapper.hpp"
#include "analog/substrate_config.hpp"
#include "core/reuse_pool.hpp"
#include "flow/delta.hpp"
#include "flow/maxflow.hpp"
#include "sim/transient.hpp"
#include "util/cancel.hpp"

namespace aflow::analog {

enum class SolveMethod { kSteadyState, kTransient };

struct AnalogSolveOptions {
  SubstrateConfig config;
  QuantizationMode quantization = QuantizationMode::kRound;
  SolveMethod method = SolveMethod::kSteadyState;
  ResistancePerturbation perturb;

  // Transient controls (defaults derived from the device time constants
  // when left unset).
  std::optional<double> dt_initial;
  std::optional<double> dt_max;
  double t_stop = 1e-3;
  double settle_tol = 1e-6;
  double convergence_band = 1e-3; // 0.1% band of Sec. 5.1
  /// Record V(x_e) for every edge (small circuits; Fig. 5c waveforms).
  bool record_edge_waveforms = false;

  /// Factorisation-reuse fast path through the DC / transient engines
  /// (see sim::DcOptions::reuse_factorization). Disable for the
  /// rebuild-every-iteration baseline.
  bool reuse_factorization = true;
  /// Optional cross-instance symbolic-analysis share: same-shape circuits
  /// (one crossbar topology, different programmed conductances) skip the
  /// fill-reducing ordering after the first instance. Thread-safe, and its
  /// seed is a pure function of the pattern, so share it as widely as
  /// convenient (per batch worker in core::BatchEngine; ONE per solver
  /// bank, across all sessions, in core::ServeEngine).
  std::shared_ptr<la::OrderingCache> ordering_cache;
  /// Optional cross-instance warm-start pool (see core::ReusePool): shares
  /// factored SparseLU prototypes and, for steady-state solves, seeds
  /// Newton from the previous same-shape instance's converged device state,
  /// skipping the Vflow homotopy when the warm attempt converges at full
  /// drive. Thread-safe; sharing width is a reproducibility choice, not a
  /// safety one (see the discipline note in core/reuse_pool.hpp): warm
  /// results depend on the order instances feed the pool, so they are
  /// reproducible in deterministic batches but not bit-stable across
  /// arbitrary schedules. Requires reuse_factorization.
  std::shared_ptr<core::ReusePool> reuse_pool;
  /// Iteration cap for the warm full-drive attempt before falling back to
  /// the cold homotopy ramp (bounds the cost of a failed warm start).
  int warm_iteration_budget = 48;

  /// Trust region for solve_delta: the delta path re-converges Newton from
  /// the pooled previous operating point, which is only a good initial
  /// guess while the edits keep the new operating point nearby. A delta
  /// whose largest per-edge relative change exceeds delta_trust_relative,
  /// or that touches more than delta_max_edge_fraction of the edges, takes
  /// the full solve (homotopy ramp) instead — counted as a delta fallback.
  double delta_trust_relative = 0.5;
  double delta_max_edge_fraction = 0.25;
};

struct AnalogFlowResult {
  /// Flow value in problem units from the per-edge ("debug") readout.
  double flow_value = 0.0;
  /// Flow value from the hardware readout J = t*Vflow - r*Iflow (Eq. 7a).
  double flow_value_hw = 0.0;
  std::vector<double> edge_flow; // problem units, parallel to input edges
  double max_conservation_violation = 0.0; // problem units

  /// Transient only: the paper's convergence time, seconds.
  double convergence_time = 0.0;
  /// Waveform of the flow value (volts); with record_edge_waveforms, edge
  /// voltages follow as additional series.
  sim::Waveform waveform;

  MapperCounts counts;
  double steady_iflow = 0.0; // amps delivered by the Vflow source
  long long factorizations = 0; // total = full_factors + refactors
  long long full_factors = 0;   // factorisations incl. symbolic analysis
  long long refactors = 0;      // numeric-only fast-path factorisations
  long long prototype_refactors = 0; // refactors via a cross-instance prototype
  long long solves = 0;
  long long rhs_refreshes = 0;  // transient RHS-only incremental updates
  int dc_iterations = 0;
  /// Warm-start telemetry: true when the result came from a warm-started
  /// solve (cross-instance device state, homotopy skipped); the iteration
  /// split always satisfies warm + cold == dc_iterations.
  bool warm_started = false;
  int warm_iterations = 0;
  int cold_iterations = 0;
  /// ReusePool traffic of this solve (zero without a pool): one lookup per
  /// solve, plus the LRU evictions the closing store triggered.
  long long pool_hits = 0;
  long long pool_misses = 0;
  long long pool_evictions = 0;
  /// Delta-path telemetry (solve_delta): exactly one of delta_solves /
  /// delta_fallbacks per solve_delta call — fast path (warm re-convergence
  /// from the pooled operating point) vs full solve; edges_touched counts
  /// the delta's distinct edited edges either way.
  long long delta_solves = 0;
  long long delta_fallbacks = 0;
  long long edges_touched = 0;
  /// Degradation-ladder telemetry: a pooled warm-start entry whose shapes
  /// no longer matched this pattern (corrupt or stale) was dropped from the
  /// pool and rebuilt by this solve's closing store.
  long long pool_rebuilds = 0;

  /// Relative error against an exact flow value.
  double relative_error(double exact) const {
    return exact == 0.0 ? 0.0 : std::abs(flow_value - exact) / exact;
  }
};

class AnalogMaxFlowSolver {
 public:
  explicit AnalogMaxFlowSolver(AnalogSolveOptions options = {})
      : options_(std::move(options)) {}

  /// `cancel` is per-call (adapter instances are shared across serve
  /// sessions, so the token must not live in the options): it threads into
  /// the DC Newton loop and the transient step loop, which check it at
  /// every iteration boundary and unwind with util::CancelledError.
  AnalogFlowResult solve(const graph::FlowNetwork& net,
                         const util::CancelToken& cancel = {}) const;

  /// Incremental re-solve for a capacity-edited instance. The analog
  /// carry-over state is the ReusePool entry of the pattern (factored LU
  /// prototype + previous converged operating point), not a caller-held
  /// prior, so the signature takes only the post-edit network and the
  /// delta. Within the trust region (AnalogSolveOptions::delta_trust_*)
  /// the steady-state path re-converges Newton from the pooled operating
  /// point at full drive, skipping the Vflow homotopy ramp; outside it —
  /// or for the transient method, which must start from rest because the
  /// settling time is the measured quantity — it falls back to solve().
  /// delta_solves / delta_fallbacks in the result record which path ran.
  AnalogFlowResult solve_delta(const graph::FlowNetwork& net,
                               const flow::CapacityDelta& delta,
                               const util::CancelToken& cancel = {}) const;

  /// True when the solver carries cross-instance state (factored
  /// prototypes + operating points) between solves — the precondition for
  /// solve_delta's fast path.
  bool has_reuse_pool() const {
    return options_.reuse_pool != nullptr && options_.reuse_factorization;
  }

  /// The circuit that `solve` would run, for inspection and tests.
  MaxFlowCircuit map(const graph::FlowNetwork& net) const {
    return build_maxflow_circuit(net, options_.config, options_.quantization,
                                 options_.perturb);
  }

  const AnalogSolveOptions& options() const { return options_; }

 private:
  AnalogFlowResult solve_steady_state(const graph::FlowNetwork& net,
                                      const util::CancelToken& cancel) const;
  AnalogFlowResult solve_transient(const graph::FlowNetwork& net,
                                   const util::CancelToken& cancel) const;

  AnalogSolveOptions options_;
};

} // namespace aflow::analog

#include "analog/power.hpp"

namespace aflow::analog {

int count_active_opamps(const graph::FlowNetwork& net) {
  int amps = 0;
  for (int e = 0; e < net.num_edges(); ++e) {
    const auto& edge = net.edge(e);
    if (edge.from == net.sink() || edge.to == net.source()) continue; // dropped
    if (edge.to != net.sink()) ++amps; // negation-widget NIC
  }
  for (int v = 0; v < net.num_vertices(); ++v) {
    if (v == net.source() || v == net.sink()) continue;
    if (net.degree(v) > 0) ++amps; // column NIC
  }
  return amps;
}

PowerReport estimate_power(const graph::FlowNetwork& net, const PowerParams& p) {
  PowerReport r;
  r.active_opamps = count_active_opamps(net);
  r.opamp_power = r.active_opamps * p.p_amp;
  return r;
}

PowerReport measure_power(const graph::FlowNetwork& net, const PowerParams& p,
                          const circuit::Netlist& netlist,
                          const circuit::MnaAssembler& mna,
                          std::span<const double> x) {
  PowerReport r = estimate_power(net, p);
  double watts = 0.0;
  for (const auto& res : netlist.resistors()) {
    if (res.resistance <= 0.0) continue;
    const double v = mna.node_voltage(res.a, x) - mna.node_voltage(res.b, x);
    watts += v * v / res.resistance;
  }
  for (const auto& mem : netlist.memristors()) {
    const double v = mna.node_voltage(mem.a, x) - mna.node_voltage(mem.b, x);
    watts += v * v / mem.memristance;
  }
  r.resistor_power = watts;
  return r;
}

long long max_edges_for_budget(double budget_watts, const PowerParams& p) {
  if (p.p_amp <= 0.0) return 0;
  return static_cast<long long>(budget_watts / p.p_amp);
}

double analog_energy(const PowerReport& report, double convergence_time_s) {
  return report.total() * convergence_time_s;
}

double cpu_energy(const PowerParams& p, double cpu_time_s) {
  return p.cpu_power * cpu_time_s;
}

} // namespace aflow::analog

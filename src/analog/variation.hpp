// Process variation, parasitic resistance, and tuning-residual models
// (Sec. 4.3).
//
// The key structural fact (Sec. 4.3.1) is that the solution depends only on
// resistance *ratios*: a common global scale cancels, so fabrication-lot
// variation of +-20..30% is harmless and only the *mismatch* between
// devices (+-0.1..1% with layout matching; tighter after memristive tuning)
// degrades the solution. These factories produce ResistancePerturbation
// callbacks for the mapper that realise each effect.
#pragma once

#include <cstdint>

#include "analog/mapper.hpp"

namespace aflow::analog {

struct VariationModel {
  /// Die-level common factor applied to every resistor (ratio-preserving).
  double global_scale = 1.0;
  /// Per-device relative mismatch: Gaussian sigma (truncated at 4 sigma).
  double mismatch_sigma = 0.0;
  /// If >= 0, models post-fabrication tuning (Sec. 4.3.2): the mismatch is
  /// replaced by a uniform residual in [-tuned_tolerance, +tuned_tolerance].
  double tuned_tolerance = -1.0;
  std::uint64_t seed = 1;
};

/// Perturbation sampling one deviation per (role, edge, vertex) site, so a
/// given site always sees the same fabricated value.
ResistancePerturbation make_variation(const VariationModel& model);

struct ParasiticModel {
  /// Wire resistance per crossbar cell pitch, ohms. A widget at crossbar
  /// cell (row, col) sees series resistance r_wire * (row + col) on its
  /// links — the classic position-dependent crossbar IR drop.
  double r_wire_per_cell = 0.0;
  int rows = 1000;
  int cols = 1000;
};

/// Adds position-dependent crossbar wire resistance on edge-link sites;
/// composes with `base` (applied first) when provided. The crossbar cell of
/// edge e = (u, v) is (row u, column v).
ResistancePerturbation make_parasitics(const graph::FlowNetwork& net,
                                       const ParasiticModel& model,
                                       ResistancePerturbation base = {});

} // namespace aflow::analog

#include "analog/tuning.hpp"

#include <cmath>
#include <functional>

#include "sim/dc.hpp"

namespace aflow::analog {

namespace {

/// The Fig. 9b tuning configuration: an op-amp inverter built from the
/// negation widget's own components — r1 into the virtual ground, r2 as
/// feedback, the widget's negative resistor (magnitude R3, nominal r/2)
/// from the virtual ground to actual ground, and a test voltage VP on the
/// non-inverting input:
///     Vxm = -(r2/r1) Vx + VP (1 + r2/r1 - r2/R3).
struct TuningBench {
  circuit::Netlist nl;
  int vx_source = -1;
  int vp_source = -1;
  int r2_id = -1;
  int r3_id = -1; // negative-resistor id
  circuit::NodeId xm = -1;

  double measure(double vx, double vp) {
    nl.set_vsource_value(vx_source, vx);
    nl.set_vsource_value(vp_source, vp);
    sim::DcSolver solver(nl);
    circuit::DeviceState state = circuit::DeviceState::initial(nl);
    const auto x = solver.solve(state);
    return solver.assembler().node_voltage(xm, x);
  }
};

TuningBench build_bench(const TuningOptions& opt) {
  TuningBench b;
  const double r = opt.config.lrs_resistance;
  const auto perturb = make_variation(opt.variation);

  const circuit::NodeId x = b.nl.new_node("x");
  const circuit::NodeId n = b.nl.new_node("vg"); // inverting (virtual gnd)
  const circuit::NodeId p = b.nl.new_node("vp"); // non-inverting test input
  b.xm = b.nl.new_node("xm");

  b.vx_source = b.nl.add_vsource(x, circuit::kGround, 0.0);
  b.vp_source = b.nl.add_vsource(p, circuit::kGround, 0.0);

  const double r1 = perturb(r, {ResistorRole::kNegationInput, 0, -1});
  const double r2 = perturb(r, {ResistorRole::kNegationMirror, 0, -1});
  const double r3 = perturb(r / 2.0, {ResistorRole::kWidgetNegRes, 0, -1});
  b.nl.add_resistor(x, n, r1);
  b.r2_id = b.nl.add_resistor(n, b.xm, r2);
  b.r3_id = b.nl.add_negative_resistor(n, circuit::kGround, r3);
  b.nl.add_opamp(p, n, b.xm, opt.config.opamp_params());
  return b;
}

/// Finds `value` in [lo, hi] such that measure(value) crosses zero
/// (bisection; f must change sign over the bracket).
double bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol, int iters = 80) {
  double flo = f(lo);
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (std::abs(fmid) < tol) return mid;
    if ((flo < 0.0) == (fmid < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

} // namespace

TuningReport tune_negation_widget(const TuningOptions& opt) {
  TuningBench bench = build_bench(opt);
  TuningReport report;
  const double vt = opt.test_voltage;
  const double vp_probe = 0.1; // volts, step-1 excitation of the VP input

  auto negation_error = [&] { return std::abs(bench.measure(vt, 0.0) + vt); };
  report.initial_error = negation_error();

  double r3 = bench.nl.negative_resistors()[bench.r3_id].magnitude;
  double r2 = bench.nl.resistors()[bench.r2_id].resistance;

  for (int round = 0; round < opt.max_rounds; ++round) {
    report.rounds = round + 1;

    // Step 1: Vx = 0, drive VP, trim R3 until Vxm = 0
    // (establishes 1/R3 = 1/r1 + 1/r2).
    r3 = bisect(
        [&](double candidate) {
          bench.nl.set_negative_resistor_magnitude(bench.r3_id, candidate);
          return bench.measure(0.0, vp_probe);
        },
        r3 / 4.0, r3 * 4.0, opt.tolerance / 10.0);
    bench.nl.set_negative_resistor_magnitude(bench.r3_id, r3);

    // Step 2: Vx = Vt, VP = 0, trim r2 until Vxm = -Vt.
    r2 = bisect(
        [&](double candidate) {
          bench.nl.set_resistance(bench.r2_id, candidate);
          return bench.measure(vt, 0.0) + vt;
        },
        r2 / 4.0, r2 * 4.0, opt.tolerance / 10.0);
    bench.nl.set_resistance(bench.r2_id, r2);

    const double err = negation_error();
    report.error_history.push_back(err);
    if (err < opt.tolerance) {
      report.converged = true;
      break;
    }
  }
  report.final_error = negation_error();
  report.converged = report.final_error < opt.tolerance;
  report.tuned_r3 = r3;
  report.tuned_r2 = r2;
  return report;
}

} // namespace aflow::analog

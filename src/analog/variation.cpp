#include "analog/variation.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace aflow::analog {

namespace {

/// Deterministic per-site RNG stream: the fabricated deviation of a site
/// must not depend on mapping order.
std::uint64_t site_key(const ResistorSite& site) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(site.role) + 1);
  mix(static_cast<std::uint64_t>(site.edge + 2));
  mix(static_cast<std::uint64_t>(site.vertex + 2));
  return h;
}

} // namespace

ResistancePerturbation make_variation(const VariationModel& model) {
  return [model](double nominal, const ResistorSite& site) {
    std::mt19937_64 rng(site_key(site) ^ model.seed);
    double deviation = 0.0;
    if (model.tuned_tolerance >= 0.0) {
      std::uniform_real_distribution<double> uni(-model.tuned_tolerance,
                                                 model.tuned_tolerance);
      deviation = uni(rng);
    } else if (model.mismatch_sigma > 0.0) {
      std::normal_distribution<double> gauss(0.0, model.mismatch_sigma);
      deviation = std::clamp(gauss(rng), -4.0 * model.mismatch_sigma,
                             4.0 * model.mismatch_sigma);
    }
    return nominal * model.global_scale * (1.0 + deviation);
  };
}

ResistancePerturbation make_parasitics(const graph::FlowNetwork& net,
                                       const ParasiticModel& model,
                                       ResistancePerturbation base) {
  return [&net, model, base](double nominal, const ResistorSite& site) {
    double value = base ? base(nominal, site) : nominal;
    if (site.edge >= 0 && model.r_wire_per_cell > 0.0) {
      switch (site.role) {
        case ResistorRole::kObjectiveLink:
        case ResistorRole::kTailLink:
        case ResistorRole::kNegationInput:
        case ResistorRole::kNegationMirror:
        case ResistorRole::kHeadLink: {
          const auto& e = net.edge(site.edge);
          value += model.r_wire_per_cell * (e.from + e.to);
          break;
        }
        default:
          break;
      }
    }
    return value;
  };
}

} // namespace aflow::analog

// Substrate design parameters (Table 1 of the paper) plus the modelling
// knobs for the fidelity ladder described in DESIGN.md "Fidelity ladder".
#pragma once

#include "circuit/netlist.hpp"

namespace aflow::analog {

/// How negative resistors (and the op-amps realising them) are modelled.
enum class NegResFidelity {
  kIdeal,      // literal negative conductance (the paper's Sec. 2 idealisation)
  kLag,        // first-order lag, tau = 1 / (pi * GBW): captures finite GBW
  kOpAmpNic,   // explicit Fig. 9a negative-impedance converter per element
};

/// Table 1: "Design parameters for the max-flow computing substrate."
struct SubstrateConfig {
  double lrs_resistance = 10e3;    // memristor LRS, ohms (the base r)
  double hrs_resistance = 1000e3;  // memristor HRS, ohms
  double vflow = 3.0;              // objective drive, volts
  double opamp_gain = 1e4;         // open-loop gain A
  double opamp_gbw = 10e9;         // gain-bandwidth product, Hz (10G..50G)
  int crossbar_rows = 1000;
  int crossbar_cols = 1000;
  int voltage_levels = 20;         // quantization levels N
  double vdd = 1.0;                // supply for capacity levels, volts

  // Modelling knobs (not part of Table 1).
  NegResFidelity fidelity = NegResFidelity::kLag;
  double parasitic_capacitance = 20e-15; // farads per net (Sec. 5.1); 0 = off
  /// Attach parasitics to widget-internal nodes (P, x^-) as well as the
  /// crossbar-visible nets. The idealised negative resistors make the
  /// internal nodes saddle points when capacitively loaded (see DESIGN.md
  /// "NIC saddle-point instability under capacitive load"); the default
  /// keeps parasitics on the long crossbar wires only.
  bool parasitics_on_internal_nodes = false;
  /// kLag realisation: true = series one-pole lag element on the negative
  /// resistor current (marginal at the widget operating point, relies on
  /// the L-stable integrator's damping); false = stable first-order
  /// equivalent (ideal negative conductance + shunt capacitance G*tau).
  bool lag_uses_series_element = false;
  circuit::DiodeParams diode{};          // PWL, Von = 0 by default
  /// Adjust clamp sources by the diode turn-on voltage (footnote 2).
  bool compensate_diode_von = true;
  double opamp_rout = 50.0;              // ohms
  double nic_r0 = 10e3;                  // ohms, Fig. 9a feedback resistors
  /// The NIC is a positive-feedback element: a large start-up transient can
  /// drive the op-amp to its rail, where the output (through Rtarget) holds
  /// the + input high — a self-consistent latch-up. Diode clamps on the NIC
  /// terminal (at +-min(anti_latch_margin * vdd, 0.45 * v_rail), far outside
  /// the operating range but inside the recovery bound rail/2) break the
  /// latch without affecting normal operation. See DESIGN.md "Railed
  /// latch-up and anti-latch clamps".
  bool nic_anti_latch = true;
  double anti_latch_margin = 3.0; // in units of vdd
  /// Stability margin for the negative resistors. The paper's widget sets
  /// |-R| exactly equal to the surrounding network resistance (r/2 against
  /// two parallel r, r/N against N links) — the marginal point of negative-
  /// impedance-converter stability, where any perturbation latches or
  /// diverges. Scaling the magnitudes by (1 + margin) moves every widget
  /// strictly into the stable region at the cost of an O(margin) negation /
  /// conservation error. 0 reproduces the paper's exact (marginal) design;
  /// the ablation bench quantifies the error/stability trade.
  double stability_margin = 0.0;
  /// Level-source sharing. The hardware shares one DAC voltage source per
  /// distinct capacity level (Sec. 4.1), which is what the default models —
  /// but it makes the netlist *shape* depend on the programmed capacities
  /// (which levels are in use, which edges share a rail). `true` gives
  /// every capacity clamp its own level source: electrically identical
  /// (same node voltages, same flows; source currents just stop being
  /// aggregated), a few extra branch unknowns, and an MNA pattern that
  /// depends only on the graph topology. That pattern stability is what
  /// lets reconfiguration batches — one topology, reprogrammed capacities —
  /// share factored-LU prototypes and warm-start state across instances
  /// (see core::ReusePool), exactly like the physical substrate, where
  /// reprogramming changes DAC codes, never the wiring.
  bool dedicated_level_sources = false;

  /// Lag time constant for NegResFidelity::kLag. The Fig. 9a NIC runs at a
  /// closed-loop feedback factor of ~1/2, so its bandwidth is ~GBW/2 and
  /// tau = 1 / (pi * GBW).
  double lag_tau() const;

  /// Output rails of the substrate op-amps. The marginal NIC widgets latch
  /// against any hard output bound (rails or clamps) once a start-up
  /// transient reaches it, so the default models the amps as unrailed: they
  /// settle correctly on instances whose transients stay bounded and the
  /// simulator's divergence guard reports the rest — both behaviours are
  /// findings of this reproduction (see EXPERIMENTS.md "Railed vs unrailed
  /// op-amp models"). Set > 0 to study the railed model.
  double opamp_v_rail = 0.0;

  circuit::OpAmpParams opamp_params() const {
    return {opamp_gain, opamp_gbw, opamp_rout, opamp_v_rail};
  }
  circuit::MemristorParams memristor_params() const {
    circuit::MemristorParams p;
    p.r_lrs = lrs_resistance;
    p.r_hrs = hrs_resistance;
    return p;
  }
};

} // namespace aflow::analog

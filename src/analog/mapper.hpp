// Direct mapping of a max-flow instance onto the analog substrate circuit
// (Sec. 2 of the paper):
//
//  - per edge e, a circuit node x_e whose voltage represents the flow on e,
//    clamped into [0, Q(c_e)] by the two-diode widget of Fig. 1;
//  - per internal vertex v, the flow-conservation circuit of Fig. 2: each
//    incoming edge contributes a negation widget (nodes x_e^- and P_e, two
//    positive resistors r and a -r/2 negative resistor) plus a link
//    resistor to the column node n_v; each outgoing edge links x_e to n_v
//    directly; n_v carries a -r/N_v negative resistor to ground (N_v = the
//    vertex degree, Eq. 4-5);
//  - the objective circuit of Fig. 3: Vflow drives every source-adjacent
//    edge node through a resistor r.
//
// Edges into the source or out of the sink cannot carry s-t flow and have no
// widget in the paper's construction; they are dropped and reported.
//
// All resistances can be perturbed per-site (process variation, parasitics,
// post-tuning residuals) through a ResistancePerturbation callback.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "analog/quantize.hpp"
#include "analog/substrate_config.hpp"
#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "graph/network.hpp"

namespace aflow::analog {

enum class ResistorRole {
  kObjectiveLink, // Vflow -> x_e               (nominal r)
  kTailLink,      // x_e -> n_u                 (nominal r)
  kNegationInput, // x_e -> P_e                 (nominal r)
  kNegationMirror,// x_e^- -> P_e               (nominal r)
  kHeadLink,      // x_e^- -> n_v               (nominal r)
  kWidgetNegRes,  // P_e -> gnd                 (nominal r/2, negative)
  kColumnNegRes,  // n_v -> gnd                 (nominal r/N_v, negative)
  kNicFeedback,   // NIC R0 (output -> V-)
  kNicGround,     // NIC R0 (V- -> gnd)
  kNicTarget,     // NIC Rtarget
};

struct ResistorSite {
  ResistorRole role;
  int edge = -1;   // input-edge index, when applicable
  int vertex = -1; // vertex index, when applicable
};

/// Maps a nominal resistance to the fabricated/tuned value at a site.
using ResistancePerturbation =
    std::function<double(double nominal, const ResistorSite&)>;

/// The constructed circuit plus everything needed to read the solution back.
struct MaxFlowCircuit {
  circuit::Netlist netlist;
  Quantizer quantizer{1.0, 1, 1.0};

  int vflow_source = -1;              // vsource id of the objective drive
  circuit::NodeId vflow_node = -1;
  std::vector<circuit::NodeId> edge_node;     // x_e, -1 if dropped
  std::vector<circuit::NodeId> edge_neg_node; // x_e^-, -1 if absent
  std::vector<circuit::NodeId> vertex_node;   // n_v, -1 for s, t, isolated
  std::vector<int> dropped_edges;
  std::vector<int> source_edges; // edges driven by the objective circuit
  int num_source_edges = 0;      // t in Eq. (7a) == source_edges.size()
  double base_resistance = 0.0;
  double vflow_value = 0.0;

  /// Sum of source-edge node voltages = the flow value in volts (Eq. 7a
  /// right-hand side). Requires access to internal nodes ("debug" readout).
  double flow_value_volts(std::span<const double> x,
                          const circuit::MnaAssembler& mna) const;

  /// Hardware readout: J = t * Vflow - r * Iflow (Eq. 7a), from the current
  /// delivered by the Vflow source only.
  double flow_value_volts_from_iflow(double iflow) const {
    return num_source_edges * vflow_value - base_resistance * iflow;
  }

  /// Per-edge flows in problem units (dropped edges report 0).
  std::vector<double> edge_flows(std::span<const double> x,
                                 const circuit::MnaAssembler& mna) const;

  /// Largest conservation violation (volts) across internal vertices:
  /// | sum V(x_in) - sum V(x_out) |.
  double max_conservation_violation_volts(
      std::span<const double> x, const circuit::MnaAssembler& mna,
      const graph::FlowNetwork& net) const;
};

struct MapperCounts {
  int nodes = 0;
  int resistors = 0;
  int negative_resistors = 0;
  int diodes = 0;
  int opamps = 0;
  int vsources = 0;
  int capacitors = 0;
};

MapperCounts count_devices(const circuit::Netlist& net);

/// Builds the substrate circuit for `net` under `config`.
MaxFlowCircuit build_maxflow_circuit(
    const graph::FlowNetwork& net, const SubstrateConfig& config,
    QuantizationMode mode = QuantizationMode::kRound,
    const ResistancePerturbation& perturb = {});

} // namespace aflow::analog

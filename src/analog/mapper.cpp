#include "analog/mapper.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

namespace aflow::analog {

namespace {

class CircuitBuilder {
 public:
  CircuitBuilder(const graph::FlowNetwork& g, const SubstrateConfig& config,
                 QuantizationMode mode, const ResistancePerturbation& perturb)
      : g_(g), config_(config), perturb_(perturb),
        r_(config.lrs_resistance) {
    out_.quantizer = Quantizer(config.vdd, config.voltage_levels,
                               g.max_capacity(), mode);
    out_.base_resistance = r_;
    out_.vflow_value = config.vflow;
  }

  MaxFlowCircuit build() {
    auto& nl = out_.netlist;
    out_.edge_node.assign(g_.num_edges(), -1);
    out_.edge_neg_node.assign(g_.num_edges(), -1);
    out_.vertex_node.assign(g_.num_vertices(), -1);

    // Objective drive (Fig. 3).
    out_.vflow_node = nl.new_node("vflow");
    out_.vflow_source =
        nl.add_vsource(out_.vflow_node, circuit::kGround, config_.vflow);

    // Edge nodes + capacity clamps (Fig. 1).
    for (int e = 0; e < g_.num_edges(); ++e) {
      const auto& edge = g_.edge(e);
      const bool usable = edge.from != g_.sink() && edge.to != g_.source();
      if (!usable) {
        out_.dropped_edges.push_back(e);
        continue;
      }
      const circuit::NodeId x = nl.new_node("x" + std::to_string(e));
      out_.edge_node[e] = x;
      add_capacity_clamp(x, edge.capacity);
    }

    // Conservation circuits (Fig. 2) and objective links.
    for (int v = 0; v < g_.num_vertices(); ++v) {
      if (v == g_.source() || v == g_.sink()) continue;
      int connections = 0;
      for (int e : g_.in_edges(v)) connections += out_.edge_node[e] >= 0;
      for (int e : g_.out_edges(v)) connections += out_.edge_node[e] >= 0;
      if (connections == 0) continue;
      const circuit::NodeId n = nl.new_node("n" + std::to_string(v));
      out_.vertex_node[v] = n;
      add_negative_resistor(n, r_ / connections,
                            {ResistorRole::kColumnNegRes, -1, v});
    }

    for (int e = 0; e < g_.num_edges(); ++e) {
      const circuit::NodeId x = out_.edge_node[e];
      if (x < 0) continue;
      const auto& edge = g_.edge(e);

      // Tail side: objective link from the source, conservation link else.
      if (edge.from == g_.source()) {
        add_resistor(out_.vflow_node, x, r_, {ResistorRole::kObjectiveLink, e, -1});
        out_.source_edges.push_back(e);
        out_.num_source_edges++;
      } else {
        add_resistor(x, out_.vertex_node[edge.from], r_,
                     {ResistorRole::kTailLink, e, edge.from});
      }

      // Head side: negation widget into the head column (skip the sink,
      // whose column carries no conservation constraint — footnote 3).
      if (edge.to != g_.sink()) {
        const circuit::NodeId xm = nl.new_node("x" + std::to_string(e) + "m");
        const circuit::NodeId p = nl.new_node("p" + std::to_string(e));
        out_.edge_neg_node[e] = xm;
        add_resistor(x, p, r_, {ResistorRole::kNegationInput, e, edge.to});
        add_resistor(xm, p, r_, {ResistorRole::kNegationMirror, e, edge.to});
        add_negative_resistor(p, r_ / 2.0, {ResistorRole::kWidgetNegRes, e, edge.to});
        add_resistor(xm, out_.vertex_node[edge.to], r_,
                     {ResistorRole::kHeadLink, e, edge.to});
      }
    }

    // Parasitic capacitance (Sec. 5.1: 20 fF per net). By default only the
    // crossbar-visible nets (Vflow row, edge nodes, column nodes) are
    // loaded; widget-internal nodes are micron-scale and their dynamics
    // belong to the negative-resistor model (see SubstrateConfig).
    // The Vflow node is pinned by its source; a parasitic there only adds
    // an inrush-current artefact to the Iflow readout, so it is skipped.
    if (config_.parasitic_capacitance > 0.0) {
      if (config_.parasitics_on_internal_nodes) {
        const int nodes_before_caps = nl.num_nodes();
        for (circuit::NodeId node = 1; node < nodes_before_caps; ++node) {
          if (node == out_.vflow_node) continue;
          nl.add_capacitor(node, circuit::kGround, config_.parasitic_capacitance);
        }
      } else {
        auto add_cap = [&](circuit::NodeId node) {
          if (node >= 0)
            nl.add_capacitor(node, circuit::kGround,
                             config_.parasitic_capacitance);
        };
        for (circuit::NodeId node : out_.edge_node) add_cap(node);
        for (circuit::NodeId node : out_.vertex_node) add_cap(node);
      }
    }

    return std::move(out_);
  }

 private:
  double perturbed(double nominal, const ResistorSite& site) const {
    return perturb_ ? perturb_(nominal, site) : nominal;
  }

  void add_resistor(circuit::NodeId a, circuit::NodeId b, double nominal,
                    const ResistorSite& site) {
    out_.netlist.add_resistor(a, b, perturbed(nominal, site));
  }

  void add_negative_resistor(circuit::NodeId node, double magnitude,
                             const ResistorSite& site) {
    auto& nl = out_.netlist;
    // Stability margin (see SubstrateConfig): bias the magnitude above the
    // marginal design point.
    magnitude *= 1.0 + config_.stability_margin;
    switch (config_.fidelity) {
      case NegResFidelity::kIdeal:
        nl.add_negative_resistor(node, circuit::kGround,
                                 perturbed(magnitude, site), 0.0);
        break;
      case NegResFidelity::kLag: {
        const double mag = perturbed(magnitude, site);
        if (config_.lag_uses_series_element) {
          nl.add_negative_resistor(node, circuit::kGround, mag,
                                   config_.lag_tau());
        } else {
          // First-order equivalent of the lagged NIC input admittance:
          //   Y(s) = -G / (1 + s tau) ~ -G + s (G tau),
          // i.e. an ideal negative conductance plus a shunt capacitor G*tau.
          // The full one-pole lag element is a saddle whenever the network
          // conductance seen by the element is below G (the classic NIC
          // stability constraint); this equivalent keeps the exact DC
          // solution while retaining GBW-proportional dynamics.
          nl.add_negative_resistor(node, circuit::kGround, mag, 0.0);
          nl.add_capacitor(node, circuit::kGround, config_.lag_tau() / mag);
        }
        break;
      }
      case NegResFidelity::kOpAmpNic: {
        // Explicit Fig. 9a converter; its three resistors are separate
        // fabrication sites.
        const circuit::NodeId vminus = nl.new_node();
        const circuit::NodeId vout = nl.new_node();
        ResistorSite s0 = site;
        s0.role = ResistorRole::kNicFeedback;
        nl.add_resistor(vout, vminus, perturbed(config_.nic_r0, s0));
        s0.role = ResistorRole::kNicGround;
        nl.add_resistor(vminus, circuit::kGround, perturbed(config_.nic_r0, s0));
        s0.role = ResistorRole::kNicTarget;
        nl.add_resistor(vout, node, perturbed(magnitude, s0));
        nl.add_opamp(node, vminus, vout, config_.opamp_params());
        if (config_.nic_anti_latch) {
          // Anti-latch clamps (see SubstrateConfig): bound the NIC output
          // swing to break the positive-feedback latch while staying
          // outside normal operation (|Vout| ~ 2|Vterminal| <= ~2 Vdd).
          const double level =
              std::min(config_.anti_latch_margin * config_.vdd,
                       0.45 * config_.opamp_params().v_rail);
          if (level > 0.0) {
            nl.add_diode(vout, level_rail(level), config_.diode);
            nl.add_diode(level_rail(-level), vout, config_.diode);
          }
        }
        break;
      }
    }
  }

  /// Fig. 1: two diodes and a (shared) level source clamp x into
  /// [0, Q(c)]. With a nonzero diode turn-on voltage and compensation on,
  /// source values are shifted by Von (footnote 2).
  void add_capacity_clamp(circuit::NodeId x, double capacity) {
    auto& nl = out_.netlist;
    const double von =
        config_.compensate_diode_von ? config_.diode.v_on : 0.0;

    // Lower clamp (V >= 0): diode from a -Von rail (ground when Von = 0).
    nl.add_diode(lower_rail(von), x, config_.diode);

    // Upper clamp (V <= Q(c)): diode into the level source shifted by -Von.
    const double level = out_.quantizer.to_voltage(capacity);
    nl.add_diode(x, level_rail(level - von), config_.diode);
  }

  circuit::NodeId lower_rail(double von) {
    if (von == 0.0) return circuit::kGround;
    return level_rail(von);
  }

  /// One shared voltage source per distinct level (Sec. 4.1: "one voltage
  /// source will be used for multiple edges") — or, with
  /// dedicated_level_sources, one source per clamp so the netlist shape is
  /// independent of the programmed levels (reconfiguration batches).
  circuit::NodeId level_rail(double volts) {
    if (config_.dedicated_level_sources) {
      // No dedupe, and a 0 V level still gets a real source: the pattern
      // must not change when a reprogrammed capacity quantizes to zero.
      const circuit::NodeId node =
          out_.netlist.new_node("lvl" + std::to_string(num_dedicated_rails_++));
      out_.netlist.add_vsource(node, circuit::kGround, volts);
      return node;
    }
    if (volts == 0.0) return circuit::kGround;
    const long long key = std::llround(volts * 1e9); // dedupe to 1 nV
    const auto it = level_nodes_.find(key);
    if (it != level_nodes_.end()) return it->second;
    const circuit::NodeId node =
        out_.netlist.new_node("lvl" + std::to_string(level_nodes_.size()));
    out_.netlist.add_vsource(node, circuit::kGround, volts);
    level_nodes_.emplace(key, node);
    return node;
  }

  const graph::FlowNetwork& g_;
  const SubstrateConfig& config_;
  const ResistancePerturbation& perturb_;
  double r_;
  MaxFlowCircuit out_;
  std::map<long long, circuit::NodeId> level_nodes_;
  int num_dedicated_rails_ = 0;
};

} // namespace

double MaxFlowCircuit::flow_value_volts(std::span<const double> x,
                                        const circuit::MnaAssembler& mna) const {
  double sum = 0.0;
  for (int e : source_edges) sum += mna.node_voltage(edge_node[e], x);
  return sum;
}

std::vector<double> MaxFlowCircuit::edge_flows(
    std::span<const double> x, const circuit::MnaAssembler& mna) const {
  std::vector<double> flows(edge_node.size(), 0.0);
  for (size_t e = 0; e < edge_node.size(); ++e) {
    if (edge_node[e] < 0) continue;
    flows[e] = quantizer.to_flow(mna.node_voltage(edge_node[e], x));
  }
  return flows;
}

double MaxFlowCircuit::max_conservation_violation_volts(
    std::span<const double> x, const circuit::MnaAssembler& mna,
    const graph::FlowNetwork& net) const {
  double worst = 0.0;
  for (int v = 0; v < net.num_vertices(); ++v) {
    if (v == net.source() || v == net.sink()) continue;
    if (vertex_node[v] < 0) continue;
    double balance = 0.0;
    bool any = false;
    for (int e : net.in_edges(v)) {
      if (edge_node[e] < 0) continue;
      balance += mna.node_voltage(edge_node[e], x);
      any = true;
    }
    for (int e : net.out_edges(v)) {
      if (edge_node[e] < 0) continue;
      balance -= mna.node_voltage(edge_node[e], x);
      any = true;
    }
    if (any) worst = std::max(worst, std::abs(balance));
  }
  return worst;
}

MapperCounts count_devices(const circuit::Netlist& net) {
  MapperCounts c;
  c.nodes = net.num_nodes();
  c.resistors = static_cast<int>(net.resistors().size());
  c.negative_resistors = static_cast<int>(net.negative_resistors().size());
  c.diodes = static_cast<int>(net.diodes().size());
  c.opamps = static_cast<int>(net.opamps().size());
  c.vsources = static_cast<int>(net.vsources().size());
  c.capacitors = static_cast<int>(net.capacitors().size());
  return c;
}

MaxFlowCircuit build_maxflow_circuit(const graph::FlowNetwork& net,
                                     const SubstrateConfig& config,
                                     QuantizationMode mode,
                                     const ResistancePerturbation& perturb) {
  net.validate();
  if (net.num_edges() == 0)
    throw std::invalid_argument("build_maxflow_circuit: graph has no edges");
  return CircuitBuilder(net, config, mode, perturb).build();
}

} // namespace aflow::analog

#include "analog/crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace aflow::analog {

Crossbar::Crossbar(int rows, int cols, const circuit::MemristorParams& memristor)
    : rows_(rows), cols_(cols), params_(memristor),
      m_(static_cast<size_t>(rows) * cols, memristor.r_hrs) {
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("Crossbar: dimensions must be positive");
}

void Crossbar::reset() {
  std::fill(m_.begin(), m_.end(), params_.r_hrs);
}

CrossbarProgramReport Crossbar::program(
    const std::vector<std::pair<int, int>>& lrs_cells,
    const ProgrammingParams& params) {
  CrossbarProgramReport report;
  for (const auto& [r, c] : lrs_cells)
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
      throw std::invalid_argument("Crossbar::program: cell out of range");

  std::set<std::pair<int, int>> targets(lrs_cells.begin(), lrs_cells.end());

  // Row-by-row protocol (Sec. 3.1). Only rows with targets need a cycle in
  // this model, but the paper's protocol spends one cycle per row; we count
  // the full n cycles for time, and skip empty rows only for energy.
  std::vector<std::vector<int>> cols_by_row(rows_);
  for (const auto& [r, c] : targets) cols_by_row[r].push_back(c);

  const double v_select = params.v_high - params.v_low;
  report.worst_half_select =
      std::max(std::abs(params.v_high), std::abs(params.v_low));
  report.disturb_margin = params_.v_threshold - report.worst_half_select;
  const bool disturbs = report.disturb_margin <= 0.0;
  const double dt = params.pulse_width * params.pulses_per_cell;

  // Per-column LRS census for closed-form half-select leakage accounting.
  std::vector<int> col_lrs(cols_, 0);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c)
      if (is_lrs(r, c)) col_lrs[c]++;

  for (int row = 0; row < rows_; ++row) {
    report.cycles++;
    report.program_time += dt;
    if (cols_by_row[row].empty()) continue;
    std::vector<char> col_high(cols_, 0);
    for (int c : cols_by_row[row]) col_high[c] = 1;

    // Active row: selected cells switch, unselected ones leak at -Vlow.
    for (int c = 0; c < cols_; ++c) {
      const double v = (col_high[c] ? params.v_high : 0.0) - params.v_low;
      const double m_before = cell(row, c);
      if (std::abs(v) >= params_.v_threshold) {
        circuit::Memristor dev{0, 0, params_, m_before};
        dev.apply_programming_pulse(v, dt);
        const bool was_lrs = is_lrs(row, c);
        cell(row, c) = dev.memristance;
        if (!was_lrs && is_lrs(row, c)) col_lrs[c]++;
        if (was_lrs && !is_lrs(row, c)) col_lrs[c]--;
      }
      const double g_avg = 0.5 * (1.0 / m_before + 1.0 / cell(row, c));
      report.program_energy += v * v * g_avg * dt;
    }
    (void)v_select;

    // Half-selected cells on raised columns (all other rows see Vhigh).
    for (int c : cols_by_row[row]) {
      if (disturbs) {
        // Bad margins: the pulse really disturbs the column; model it.
        for (int r = 0; r < rows_; ++r) {
          if (r == row) continue;
          const double m_before = cell(r, c);
          circuit::Memristor dev{0, 0, params_, m_before};
          dev.apply_programming_pulse(params.v_high, dt);
          const bool was_lrs = is_lrs(r, c);
          cell(r, c) = dev.memristance;
          if (!was_lrs && is_lrs(r, c)) col_lrs[c]++;
          const double g_avg = 0.5 * (1.0 / m_before + 1.0 / cell(r, c));
          report.program_energy += params.v_high * params.v_high * g_avg * dt;
        }
      } else {
        // Within margins: retention holds, only leakage energy accrues.
        const int lrs_others = col_lrs[c] - (is_lrs(row, c) ? 1 : 0);
        const int hrs_others = (rows_ - 1) - lrs_others;
        const double g_total =
            lrs_others / params_.r_lrs + hrs_others / params_.r_hrs;
        report.program_energy += params.v_high * params.v_high * g_total * dt;
      }
    }
  }

  // Verify (Sec. 3.1's implicit correctness requirement): LRS cells must be
  // at the link resistance, HRS cells must not have drifted measurably —
  // a half-select disturb that moves a cell partway counts as a failure
  // even before it crosses the LRS threshold.
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const bool want_lrs = targets.count({r, c}) > 0;
      const double m = cell(r, c);
      const bool ok = want_lrs ? m <= 2.0 * params_.r_lrs
                               : m >= 0.5 * params_.r_hrs;
      if (!ok) report.misprogrammed_cells++;
    }
  }
  report.success = report.misprogrammed_cells == 0 && report.disturb_margin > 0.0;
  return report;
}

double Crossbar::memristance(int row, int col) const { return cell(row, col); }

bool Crossbar::is_lrs(int row, int col) const {
  return cell(row, col) <= 2.0 * params_.r_lrs;
}

double Crossbar::utilization() const {
  long long lrs = 0;
  for (double m : m_)
    if (m <= 2.0 * params_.r_lrs) ++lrs;
  return static_cast<double>(lrs) / static_cast<double>(m_.size());
}

void Crossbar::age(double relative_drift) {
  for (double& m : m_) {
    if (m <= 2.0 * params_.r_lrs)
      m = std::clamp(m * (1.0 + relative_drift), params_.r_lrs, params_.r_hrs);
  }
}

std::vector<std::pair<int, int>> Crossbar::cells_for_graph(
    const graph::FlowNetwork& net) {
  std::vector<std::pair<int, int>> cells;
  for (int e = 0; e < net.num_edges(); ++e) {
    const auto& edge = net.edge(e);
    if (edge.from == net.sink() || edge.to == net.source()) continue;
    cells.emplace_back(edge.from, edge.to);
  }
  return cells;
}

ResistancePerturbation Crossbar::link_perturbation(
    const graph::FlowNetwork& net) const {
  // Snapshot the relevant memristances so the callback owns its data.
  std::vector<double> link_m(net.num_edges(), -1.0);
  for (int e = 0; e < net.num_edges(); ++e) {
    const auto& edge = net.edge(e);
    if (edge.from >= rows_ || edge.to >= cols_) continue;
    link_m[e] = memristance(edge.from, edge.to);
  }
  const int sink = net.sink();

  return [link_m, &net, sink](double nominal, const ResistorSite& site) {
    if (site.edge < 0 || link_m[site.edge] < 0.0) return nominal;
    const auto& edge = net.edge(site.edge);
    const bool head_is_link = edge.to != sink;
    switch (site.role) {
      case ResistorRole::kHeadLink:
        return head_is_link ? link_m[site.edge] : nominal;
      case ResistorRole::kTailLink:
      case ResistorRole::kObjectiveLink:
        return head_is_link ? nominal : link_m[site.edge];
      default:
        return nominal;
    }
  };
}

} // namespace aflow::analog

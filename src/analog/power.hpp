// Analytical power and energy model (Sec. 5.2).
//
// The op-amps dominate: one per present edge (the negation widget's NIC)
// plus one per internal vertex (the column NIC), so
//     P ~ (|E| + |V|) * Pamp,       Pamp = 1 V * 500 uA = 500 uW  (32 nm)
// Resistor dissipation is computed from the solved operating point and can
// be made negligible by proportionally scaling all resistances up
// (Sec. 4.3.1 ratio invariance), which the paper uses to justify dropping
// it from the budget math.
#pragma once

#include <span>

#include "analog/mapper.hpp"
#include "circuit/mna.hpp"
#include "graph/network.hpp"

namespace aflow::analog {

struct PowerParams {
  double p_amp = 500e-6;     // watts per op-amp (1 V x 500 uA, Sec. 5.2)
  double cpu_power = 95.0;   // watts, CPU package power for energy comparison
};

struct PowerReport {
  int active_opamps = 0;
  double opamp_power = 0.0;    // watts
  double resistor_power = 0.0; // watts (from the operating point; 0 if unknown)
  double total() const { return opamp_power + resistor_power; }
};

/// Op-amp census for a mapped instance: one per negation widget plus one per
/// active column (absent edges are power-gated, footnote 4).
int count_active_opamps(const graph::FlowNetwork& net);

/// Analytical substrate power for an instance (no operating point needed).
PowerReport estimate_power(const graph::FlowNetwork& net, const PowerParams& p);

/// Adds measured resistor dissipation (sum V^2/R over positive resistors and
/// memristors) from a solved operating point.
PowerReport measure_power(const graph::FlowNetwork& net, const PowerParams& p,
                          const circuit::Netlist& netlist,
                          const circuit::MnaAssembler& mna,
                          std::span<const double> x);

/// Largest edge count a substrate can host under `budget` watts (Sec. 5.2:
/// 5 W -> ~1e4 edges, 150 W -> 3e5 edges), assuming |V| << |E|.
long long max_edges_for_budget(double budget_watts, const PowerParams& p);

/// Energy of one analog solve: P * t_convergence.
double analog_energy(const PowerReport& report, double convergence_time_s);
/// Energy of the CPU baseline: P_cpu * t_cpu.
double cpu_energy(const PowerParams& p, double cpu_time_s);

} // namespace aflow::analog

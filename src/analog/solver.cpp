#include "analog/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "sim/dc.hpp"

namespace aflow::analog {

namespace {

/// Fastest time constant of the built circuit, used to seed the transient
/// step size.
double reference_tau(const SubstrateConfig& config) {
  double tau = 0.0;
  if (config.fidelity != NegResFidelity::kIdeal) tau = config.lag_tau();
  if (config.parasitic_capacitance > 0.0) {
    const double rc = config.lrs_resistance * config.parasitic_capacitance;
    tau = tau > 0.0 ? std::min(tau, rc) : rc;
  }
  return tau;
}

void fill_common(const MaxFlowCircuit& c, const circuit::MnaAssembler& mna,
                 std::span<const double> x, const graph::FlowNetwork& net,
                 AnalogFlowResult& out) {
  out.flow_value = c.quantizer.to_flow(c.flow_value_volts(x, mna));
  const double iflow = mna.vsource_current(c.vflow_source, x);
  out.steady_iflow = iflow;
  out.flow_value_hw = c.quantizer.to_flow(c.flow_value_volts_from_iflow(iflow));
  out.edge_flow = c.edge_flows(x, mna);
  out.max_conservation_violation =
      c.quantizer.to_flow(c.max_conservation_violation_volts(x, mna, net));
  out.counts = count_devices(c.netlist);
}

} // namespace

AnalogFlowResult AnalogMaxFlowSolver::solve(
    const graph::FlowNetwork& net, const util::CancelToken& cancel) const {
  switch (options_.method) {
    case SolveMethod::kSteadyState: return solve_steady_state(net, cancel);
    case SolveMethod::kTransient: return solve_transient(net, cancel);
  }
  return {};
}

AnalogFlowResult AnalogMaxFlowSolver::solve_delta(
    const graph::FlowNetwork& net, const flow::CapacityDelta& delta,
    const util::CancelToken& cancel) const {
  const auto fallback = [&] {
    AnalogFlowResult out = solve(net, cancel);
    out.delta_fallbacks = 1;
    out.edges_touched = delta.distinct_edges();
    return out;
  };
  // Transient must start from rest (the settling time is the measurement),
  // and without pooled state there is no operating point to carry.
  if (options_.method != SolveMethod::kSteadyState || !has_reuse_pool())
    return fallback();
  // Trust region: outside it the pooled operating point is too far from
  // the edited instance's for a reliable warm Newton re-convergence.
  // max_relative_change() is +inf for unmeasured deltas, so those fall
  // back too. (The comparisons are written to reject NaN as well.)
  if (!(delta.max_relative_change() <= options_.delta_trust_relative))
    return fallback();
  if (net.num_edges() > 0 &&
      !(delta.distinct_edges() <=
        options_.delta_max_edge_fraction * net.num_edges()))
    return fallback();

  // Inside the trust region the steady-state path already is the delta
  // path: it re-converges from the pooled same-pattern operating point via
  // DcSolver::solve_warm at full drive, skipping the Vflow homotopy. Count
  // a delta_solve only when the warm carry actually happened (a pool miss
  // or failed warm attempt ran the cold ramp — that is a fallback).
  AnalogFlowResult out = solve_steady_state(net, cancel);
  if (out.warm_started)
    out.delta_solves = 1;
  else
    out.delta_fallbacks = 1;
  out.edges_touched = delta.distinct_edges();
  return out;
}

AnalogFlowResult AnalogMaxFlowSolver::solve_steady_state(
    const graph::FlowNetwork& net, const util::CancelToken& cancel) const {
  // The explicit-NIC circuit adds op-amp rail states to the DC
  // complementarity problem, which routinely cycles; the physical way to
  // find its operating point is to let the (railed, hence bounded) dynamics
  // settle, so delegate to the transient engine.
  if (options_.config.fidelity == NegResFidelity::kOpAmpNic) {
    AnalogSolveOptions topt = options_;
    topt.method = SolveMethod::kTransient;
    topt.record_edge_waveforms = false;
    AnalogFlowResult out =
        AnalogMaxFlowSolver(topt).solve_transient(net, cancel);
    out.waveform = {};
    return out;
  }

  MaxFlowCircuit c = map(net);
  circuit::DeviceState state = circuit::DeviceState::initial(c.netlist);

  // One DcSolver serves the warm attempt and the whole homotopy ramp: the
  // MNA pattern is independent of the source value, so every solve after
  // the first factorisation rides the numeric refactor fast path.
  sim::DcOptions dc_opt;
  dc_opt.reuse_factorization = options_.reuse_factorization;
  dc_opt.ordering_cache = options_.ordering_cache;
  dc_opt.cancel = cancel;
  sim::DcSolver solver(c.netlist, dc_opt);

  const double v_target = options_.config.vflow;
  AnalogFlowResult out;
  std::vector<double> x;

  auto accumulate = [&](const sim::DcStats& s) {
    out.dc_iterations += s.iterations;
    out.warm_iterations += s.warm_iterations;
    out.cold_iterations += s.cold_iterations;
    out.full_factors += s.full_factors;
    out.refactors += s.refactors;
    out.prototype_refactors += s.prototype_refactors;
  };

  // Cross-instance warm start: fetch the previous same-pattern instance's
  // factored LU prototype and converged state from the pool and try to
  // converge directly at full drive, skipping the homotopy ramp entirely.
  // Any failure falls back to the cold ramp below.
  core::ReusePool* pool =
      options_.reuse_factorization ? options_.reuse_pool.get() : nullptr;
  std::uint64_t pool_key = 0;
  bool solved = false;
  if (pool) {
    pool_key = solver.pattern_key();
    const std::shared_ptr<const core::ReuseEntry> warm = pool->find(pool_key);
    out.pool_hits = warm ? 1 : 0;
    out.pool_misses = warm ? 0 : 1;
    if (warm && warm->lu) {
      sim::WarmStart seed;
      seed.lu_prototype = warm->lu;
      solver.warm_start(seed);
    }
    // Degradation ladder, pool rung: an entry that carries a device state
    // which no longer fits this pattern (64-bit key collision, or a stale /
    // corrupt entry) is dropped outright so it cannot keep poisoning every
    // future lookup of this key; the closing store below rebuilds it from
    // this solve's converged state.
    if (warm && warm->state &&
        !warm->shapes_match(c.netlist, solver.assembler().num_unknowns())) {
      pool->drop(pool_key);
      out.pool_rebuilds = 1;
    }
    if (warm &&
        warm->shapes_match(c.netlist, solver.assembler().num_unknowns())) {
      c.netlist.set_vsource_value(c.vflow_source, v_target);
      circuit::DeviceState attempt = *warm->state;
      auto warm_failed = [&] {
        // Warm residual not below the continuation threshold within the
        // budget (or the carried state stamps a singular system even
        // through gmin stepping): pay for the attempt and run the ramp
        // from a cold state.
        accumulate(solver.stats());
        state = circuit::DeviceState::initial(c.netlist);
      };
      try {
        x = solver.solve_warm(attempt, *warm->x,
                              options_.warm_iteration_budget);
        accumulate(solver.stats());
        state = std::move(attempt);
        solved = true;
        out.warm_started = true;
      } catch (const sim::ConvergenceError&) {
        warm_failed();
      } catch (const la::SingularMatrixError&) {
        warm_failed();
      }
    }
  }

  // Source-ramp homotopy (cold path): walking Vflow up from zero mirrors
  // the physical turn-on and keeps each diode-state solve a small
  // perturbation of the previous one — a cold solve at full drive can
  // cycle on large graphs.
  double v_done = 0.0;
  double step = v_target / 4.0;
  while (!solved && v_done < v_target) {
    const double v_try = std::min(v_target, v_done + step);
    c.netlist.set_vsource_value(c.vflow_source, v_try);
    circuit::DeviceState attempt = state;
    try {
      x = solver.solve(attempt);
    } catch (const sim::ConvergenceError&) {
      accumulate(solver.stats());
      step *= 0.5;
      if (step < v_target / 4096.0) throw;
      continue;
    }
    accumulate(solver.stats());
    state = std::move(attempt);
    v_done = v_try;
    step *= 2.0;
  }

  if (pool) {
    core::ReuseEntry entry;
    entry.lu = solver.export_warm_start().lu_prototype;
    entry.state = std::make_shared<const circuit::DeviceState>(state);
    entry.x = std::make_shared<const std::vector<double>>(x);
    out.pool_evictions = pool->store(pool_key, std::move(entry));
  }

  fill_common(c, solver.assembler(), x, net, out);
  out.solves = out.dc_iterations;
  out.factorizations = out.full_factors + out.refactors;
  return out;
}

AnalogFlowResult AnalogMaxFlowSolver::solve_transient(
    const graph::FlowNetwork& net, const util::CancelToken& cancel) const {
  MaxFlowCircuit c = map(net);

  const double tau = reference_tau(options_.config);
  if (tau <= 0.0) {
    // Purely resistive circuit: the "transient" is instantaneous.
    AnalogFlowResult out = solve_steady_state(net, cancel);
    out.convergence_time = 0.0;
    return out;
  }

  sim::TransientOptions topt;
  topt.dt_initial = options_.dt_initial.value_or(tau / 8.0);
  topt.dt_max = options_.dt_max.value_or(tau * 4096.0);
  topt.t_stop = options_.t_stop;
  topt.settle_tol = options_.settle_tol;
  topt.reuse_factorization = options_.reuse_factorization;
  topt.ordering_cache = options_.ordering_cache;
  topt.cancel = cancel;

  std::vector<sim::Probe> probes;
  probes.push_back(sim::Probe::source_current(c.vflow_source, "Iflow"));
  if (options_.record_edge_waveforms) {
    for (size_t e = 0; e < c.edge_node.size(); ++e) {
      if (c.edge_node[e] < 0) continue;
      probes.push_back(
          sim::Probe::node(c.edge_node[e], "V(x" + std::to_string(e) + ")"));
    }
  }

  sim::TransientSolver solver(c.netlist, topt);

  // Cross-instance prototype: enter the first factorisation through the
  // previous same-pattern instance's factors. (No device-state carry for
  // transient: the run must start from rest — the convergence time IS the
  // measured quantity.)
  core::ReusePool* pool =
      options_.reuse_factorization ? options_.reuse_pool.get() : nullptr;
  std::uint64_t pool_key = 0;
  long long pool_hits = 0, pool_misses = 0, pool_evictions = 0;
  if (pool) {
    pool_key = solver.pattern_key();
    const std::shared_ptr<const core::ReuseEntry> entry = pool->find(pool_key);
    pool_hits = entry ? 1 : 0;
    pool_misses = entry ? 0 : 1;
    if (entry && entry->lu) solver.set_lu_prototype(entry->lu);
  }

  circuit::DeviceState state = circuit::DeviceState::initial(c.netlist);
  sim::Waveform wf = solver.run(state, probes);

  if (pool) {
    core::ReuseEntry entry;
    entry.lu = solver.share_factorization();
    pool_evictions = pool->store(pool_key, std::move(entry));
  }

  // Convert the Iflow series into the flow value J(t) (volts, Eq. 7a).
  for (auto& row : wf.samples) row[0] = c.flow_value_volts_from_iflow(row[0]);
  wf.labels[0] = "J";

  AnalogFlowResult out;
  // Read the solution directly off the last accepted transient step (the
  // run stops only once the probes are settled).
  fill_common(c, solver.assembler(), solver.last_solution(), net, out);
  out.convergence_time = sim::convergence_time(
      wf.time, wf.series(0), options_.convergence_band);
  out.factorizations = solver.stats().factorizations;
  out.full_factors = solver.stats().full_factors;
  out.refactors = solver.stats().refactors;
  out.prototype_refactors = solver.stats().prototype_refactors;
  out.rhs_refreshes = solver.stats().rhs_refreshes;
  out.solves = solver.stats().solves;
  out.pool_hits = pool_hits;
  out.pool_misses = pool_misses;
  out.pool_evictions = pool_evictions;
  out.waveform = std::move(wf);
  return out;
}

} // namespace aflow::analog

#include "analog/quantize.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "analog/substrate_config.hpp"

namespace aflow::analog {

double SubstrateConfig::lag_tau() const {
  return 1.0 / (std::numbers::pi * opamp_gbw);
}

Quantizer::Quantizer(double vdd, int levels, double max_capacity,
                     QuantizationMode mode)
    : vdd_(vdd), levels_(levels), max_capacity_(max_capacity), mode_(mode) {
  if (!(vdd > 0.0)) throw std::invalid_argument("Quantizer: vdd must be > 0");
  if (levels < 1) throw std::invalid_argument("Quantizer: levels must be >= 1");
  if (!(max_capacity > 0.0))
    throw std::invalid_argument("Quantizer: max capacity must be > 0");
}

double Quantizer::to_voltage(double capacity) const {
  if (capacity < 0.0) throw std::invalid_argument("Quantizer: negative capacity");
  const double clamped = std::min(capacity, max_capacity_);
  switch (mode_) {
    case QuantizationMode::kNone:
      return clamped / max_capacity_ * vdd_;
    case QuantizationMode::kFloor:
      return std::floor(clamped / max_capacity_ * levels_) / levels_ * vdd_;
    case QuantizationMode::kRound:
      return std::round(clamped / max_capacity_ * levels_) / levels_ * vdd_;
  }
  return 0.0;
}

double Quantizer::worst_case_error() const {
  if (mode_ == QuantizationMode::kNone) return 0.0;
  return max_capacity_ / levels_;
}

} // namespace aflow::analog

// Voltage-level quantization (Sec. 4.1).
//
// Capacities are mapped onto N uniformly spaced source voltages in (0, Vdd];
// the circuit solution (volts) maps back to flow units by the C / Vdd scale.
// The paper's formula uses floor; its own Fig. 8 example (capacity 1, C = 3,
// N = 20 -> 0.35 V) rounds, so both are provided and kRound is the default.
#pragma once

#include <vector>

namespace aflow::analog {

enum class QuantizationMode {
  kFloor, // Q(x) = floor(x/C * N) / N * Vdd   (paper's Eq. in Sec. 4.1)
  kRound, // Q(x) = round(x/C * N) / N * Vdd   (matches the Fig. 8 example)
  kNone,  // one exact voltage per distinct capacity (idealised substrate)
};

class Quantizer {
 public:
  /// `max_capacity` is C, the largest capacity of the instance.
  Quantizer(double vdd, int levels, double max_capacity,
            QuantizationMode mode = QuantizationMode::kRound);

  /// Capacity -> source voltage (volts).
  double to_voltage(double capacity) const;
  /// Circuit voltage -> flow units.
  double to_flow(double voltage) const { return voltage * max_capacity_ / vdd_; }
  /// Flow units -> volts (for comparisons).
  double to_volts(double flow) const { return flow * vdd_ / max_capacity_; }

  /// Worst-case per-edge quantization error e = C / N (Sec. 4.1).
  double worst_case_error() const;

  double vdd() const { return vdd_; }
  int levels() const { return levels_; }
  double max_capacity() const { return max_capacity_; }
  QuantizationMode mode() const { return mode_; }

 private:
  double vdd_;
  int levels_;
  double max_capacity_;
  QuantizationMode mode_;
};

} // namespace aflow::analog

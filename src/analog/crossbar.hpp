// Reconfigurable crossbar architecture (Sec. 3).
//
// The substrate is an n x n array; the cell at (i, j) holds the circuit
// widget of edge (i, j), gated into the array by a memristor switch that
// doubles as the widget's link resistor (LRS memristance == the base r).
// Row/column i form the electrical net of vertex i; row s is the objective
// drive. Programming (Sec. 3.1) proceeds row by row: the active row is
// pulled to Vlow while target columns are raised to Vhigh, so selected
// cells see Vhigh - Vlow > Vth and switch to LRS, while half-selected cells
// see at most max(|Vhigh|, |Vlow|) < Vth and retain their state.
#pragma once

#include <utility>
#include <vector>

#include "analog/mapper.hpp"
#include "analog/substrate_config.hpp"
#include "graph/network.hpp"

namespace aflow::analog {

struct ProgrammingParams {
  double v_high = 1.2;       // volts on selected columns
  double v_low = -1.2;       // volts on the active row
  double pulse_width = 2e-9; // seconds per programming cycle
  int pulses_per_cell = 1;   // repeated pulses per cycle if needed
};

struct CrossbarProgramReport {
  int cycles = 0;               // row cycles used (== rows, Sec. 3.1)
  double program_time = 0.0;    // seconds
  double program_energy = 0.0;  // joules (selected + half-selected leakage)
  double worst_half_select = 0.0; // largest |V| across unselected cells
  double disturb_margin = 0.0;    // Vth - worst_half_select
  int misprogrammed_cells = 0;    // after verification
  bool success = false;
};

/// Behavioural model of the memristor crossbar with the Sec. 3.1
/// programming protocol and Sec. 3.2 readout support.
class Crossbar {
 public:
  Crossbar(int rows, int cols, const circuit::MemristorParams& memristor);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Resets every cell to HRS (strong reverse pulses).
  void reset();

  /// Programs the given cells to LRS, everything else left at HRS, using
  /// the row-by-row pulse protocol; verifies the final state.
  CrossbarProgramReport program(const std::vector<std::pair<int, int>>& lrs_cells,
                                const ProgrammingParams& params = {});

  double memristance(int row, int col) const;
  bool is_lrs(int row, int col) const;
  /// Fraction of cells in LRS (crossbar utilisation).
  double utilization() const;

  /// Models slow memristance drift (Sec. 4.3.2): every LRS cell drifts
  /// multiplicatively by `relative_drift` (e.g. 0.02 = +2%).
  void age(double relative_drift);

  /// Cells needed for a graph: one per usable edge, at (from, to).
  static std::vector<std::pair<int, int>> cells_for_graph(
      const graph::FlowNetwork& net);

  /// A ResistancePerturbation that realises each edge's crossbar link with
  /// the programmed memristance of its cell: the HeadLink for ordinary
  /// edges, the TailLink / ObjectiveLink for sink-adjacent edges (whose
  /// head column carries no widget). Misprogrammed (HRS) cells therefore
  /// leave their edge electrically disconnected, as on the real substrate.
  ResistancePerturbation link_perturbation(const graph::FlowNetwork& net) const;

 private:
  double& cell(int row, int col) { return m_[static_cast<size_t>(row) * cols_ + col]; }
  const double& cell(int row, int col) const {
    return m_[static_cast<size_t>(row) * cols_ + col];
  }

  int rows_;
  int cols_;
  circuit::MemristorParams params_;
  std::vector<double> m_; // memristance per cell, row-major
};

} // namespace aflow::analog

// Cross-instance warm-start pool: the reuse layer that makes reconfiguration
// batches (the paper's scenario — one crossbar topology, many programmed
// conductance sets) amortise setup across instances instead of cold-starting
// every solve. Keyed by the MNA pattern fingerprint, an entry carries:
//
//  1. a factored SparseLU prototype (pivot order + fill pattern, not just the
//     column ordering the la::OrderingCache shares): a new same-shape
//     instance clones it and enters directly through SparseLU::refactor,
//     skipping its own symbolic analysis and numeric pivoting, with the
//     usual pivot-degradation fallback;
//  2. the converged circuit::DeviceState and node-voltage vector of the last
//     same-shape instance, used to seed the Newton/PWL iteration
//     (DcSolver::solve_warm) and skip the Vflow source-ramp homotopy when
//     the warm attempt converges at full drive;
//  3. nothing transient-specific — the transient engines reuse (1) plus the
//     per-pattern RHS tape inside their own PatternAssembly.
//
// Sharing discipline: the pool is thread-safe, so how widely to share it is
// a reproducibility choice, not a safety one. Batch mode shares per worker
// (the analog registry's *_warm adapters — one pool per adapter instance,
// one adapter per BatchEngine worker); the serving engine goes further and
// shares ONE pool per solver bank across every session and worker
// (core::ServeEngine), maximising cross-client reuse. Unlike the ordering
// cache, whose seed is a pure function of the pattern, warm-started results
// depend on which instance last fed the pool, so batch results are
// reproducible under deterministic mode (fixed order) but not bit-stable
// across arbitrary schedules; keep the default adapters pool-free where
// schedule-invariant bits are required. (The sweep and min-cut consumers
// are the exception: canonical priming makes their warm results
// bit-identical to cold runs under any sharing — see DESIGN.md "Serving
// architecture".)
//
// Serving lifetimes: a long-running process (core::ServeEngine) sees an
// unbounded stream of patterns, so the pool supports a byte budget with
// least-recently-used eviction. `find` and `store` both count as "uses";
// when a store pushes the retained bytes past the budget, entries are
// evicted oldest-use-first until the pool fits again (the entry just stored
// is never evicted, so one entry larger than the whole budget is retained —
// and the budget reported as exceeded — rather than thrashing). A zero
// budget disables eviction (the per-batch default). Accounting is
// ownership-based: bytes the pool's shared_ptrs keep alive, whether or not
// an engine still holds another reference.
//
// A 64-bit key collision is harmless for correctness: a mismatched LU
// prototype is rejected by its own pattern fingerprint before entry, and a
// mismatched device state either fails the shape check or just makes a poor
// (still safe) Newton seed.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "circuit/mna.hpp"
#include "la/lu.hpp"

namespace aflow::core {

/// Warm-start payload for one MNA pattern. All members are optional; a DC
/// entry carries all three, a transient entry only the factorisation.
struct ReuseEntry {
  /// Factored same-pattern prototype to clone and enter through refactor.
  std::shared_ptr<const la::SparseLU> lu;
  /// Converged device state of the last same-shape instance (DC only).
  std::shared_ptr<const circuit::DeviceState> state;
  /// Node-voltage solution that `state` converged to.
  std::shared_ptr<const std::vector<double>> x;

  /// Retained heap bytes of the carried payloads (the LRU eviction cost).
  size_t memory_bytes() const;

  /// True when `state` and `x` exist and are shaped for `net` with
  /// `num_unknowns` MNA unknowns — the guard every consumer must pass
  /// before adopting a pooled device state, so a 64-bit key collision (or a
  /// stale pool) degrades to a cold start, never to an out-of-bounds read.
  bool shapes_match(const circuit::Netlist& net, int num_unknowns) const;
};

class ReusePool {
 public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long stores = 0;
    long long evictions = 0;
    /// Entries removed through drop() — the degradation ladder's
    /// corrupt-entry rung, not LRU pressure.
    long long drops = 0;
  };

  /// `byte_budget` bounds the retained payload bytes (0 = unbounded, the
  /// per-batch default; serving processes pass their per-worker budget).
  explicit ReusePool(size_t byte_budget = 0) : byte_budget_(byte_budget) {}

  /// Entry for `pattern_key`, or null. Counts a hit/miss and marks the
  /// entry most-recently-used.
  std::shared_ptr<const ReuseEntry> find(std::uint64_t pattern_key);

  /// Publishes the entry for `pattern_key` and returns how many other
  /// entries were evicted to fit the byte budget. Payload fields the new
  /// entry carries replace the previous ones; null fields keep the
  /// previously stored payload (so engines that publish only part of an
  /// entry cannot wipe another engine's share of the same pattern).
  int store(std::uint64_t pattern_key, ReuseEntry entry);

  /// Removes the entry for `pattern_key` (degradation ladder: a consumer
  /// that finds the entry corrupt — e.g. a carried device state whose
  /// shapes no longer match the pattern — drops it so it cannot poison
  /// subsequent lookups, then rebuilds it with its own closing store).
  /// Returns whether an entry was removed; counted in Stats::drops.
  bool drop(std::uint64_t pattern_key);

  /// Number of distinct patterns currently held.
  size_t size() const;
  /// Retained payload bytes currently held (can exceed byte_budget only
  /// when a single entry is larger than the whole budget).
  size_t bytes() const;
  size_t byte_budget() const { return byte_budget_; }
  Stats stats() const;

 private:
  struct Slot {
    std::shared_ptr<const ReuseEntry> entry;
    size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru; // position in lru_
  };

  void touch(Slot& slot, std::uint64_t key);

  mutable std::mutex mutex_;
  size_t byte_budget_ = 0;
  size_t bytes_ = 0;
  std::unordered_map<std::uint64_t, Slot> entries_;
  std::list<std::uint64_t> lru_; // front = most recently used
  Stats stats_;
};

} // namespace aflow::core

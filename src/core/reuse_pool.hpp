// Cross-instance warm-start pool: the reuse layer that makes reconfiguration
// batches (the paper's scenario — one crossbar topology, many programmed
// conductance sets) amortise setup across instances instead of cold-starting
// every solve. Keyed by the MNA pattern fingerprint, an entry carries:
//
//  1. a factored SparseLU prototype (pivot order + fill pattern, not just the
//     column ordering the la::OrderingCache shares): a new same-shape
//     instance clones it and enters directly through SparseLU::refactor,
//     skipping its own symbolic analysis and numeric pivoting, with the
//     usual pivot-degradation fallback;
//  2. the converged circuit::DeviceState and node-voltage vector of the last
//     same-shape instance, used to seed the Newton/PWL iteration
//     (DcSolver::solve_warm) and skip the Vflow source-ramp homotopy when
//     the warm attempt converges at full drive;
//  3. nothing transient-specific — the transient engines reuse (1) plus the
//     per-pattern RHS tape inside their own PatternAssembly.
//
// Sharing discipline mirrors la::OrderingCache: the pool is thread-safe, but
// give each batch worker its own pool (the analog registry's *_warm adapters
// do this — one pool per adapter instance, one adapter per BatchEngine
// worker). Unlike the ordering cache, whose seed is a pure function of the
// pattern, warm-started results depend on which instance last fed the pool,
// so batch results are reproducible under deterministic mode (fixed order)
// but not bit-stable across arbitrary schedules; keep the default adapters
// pool-free where schedule-invariant bits are required.
//
// A 64-bit key collision is harmless for correctness: a mismatched LU
// prototype is rejected by its own pattern fingerprint before entry, and a
// mismatched device state either fails the shape check or just makes a poor
// (still safe) Newton seed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "circuit/mna.hpp"
#include "la/lu.hpp"

namespace aflow::core {

/// Warm-start payload for one MNA pattern. All members are optional; a DC
/// entry carries all three, a transient entry only the factorisation.
struct ReuseEntry {
  /// Factored same-pattern prototype to clone and enter through refactor.
  std::shared_ptr<const la::SparseLU> lu;
  /// Converged device state of the last same-shape instance (DC only).
  std::shared_ptr<const circuit::DeviceState> state;
  /// Node-voltage solution that `state` converged to.
  std::shared_ptr<const std::vector<double>> x;
};

class ReusePool {
 public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long stores = 0;
  };

  /// Entry for `pattern_key`, or null. Counts a hit/miss.
  std::shared_ptr<const ReuseEntry> find(std::uint64_t pattern_key);

  /// Publishes the entry for `pattern_key`. Payload fields the new entry
  /// carries replace the previous ones; null fields keep the previously
  /// stored payload (so engines that publish only part of an entry cannot
  /// wipe another engine's share of the same pattern).
  void store(std::uint64_t pattern_key, ReuseEntry entry);

  /// Number of distinct patterns currently held.
  size_t size() const;
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const ReuseEntry>> entries_;
  Stats stats_;
};

} // namespace aflow::core

#include "core/reuse_pool.hpp"

#include <utility>

namespace aflow::core {

std::shared_ptr<const ReuseEntry> ReusePool::find(std::uint64_t pattern_key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(pattern_key);
  if (it == entries_.end()) {
    stats_.misses++;
    return nullptr;
  }
  stats_.hits++;
  return it->second;
}

void ReusePool::store(std::uint64_t pattern_key, ReuseEntry entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = entries_[pattern_key];
  // Merge: payloads the new entry does not carry survive from the previous
  // one, so a transient store (LU only) cannot wipe the device state a DC
  // store published under the same pattern (possible when the transient
  // stamps add no new positions, e.g. lag-only circuits without parasitics).
  if (slot) {
    if (!entry.lu) entry.lu = slot->lu;
    if (!entry.state) entry.state = slot->state;
    if (!entry.x) entry.x = slot->x;
  }
  slot = std::make_shared<const ReuseEntry>(std::move(entry));
  stats_.stores++;
}

size_t ReusePool::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

ReusePool::Stats ReusePool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

} // namespace aflow::core

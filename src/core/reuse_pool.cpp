#include "core/reuse_pool.hpp"

#include <utility>

#include "util/fault_injector.hpp"

namespace aflow::core {

size_t ReuseEntry::memory_bytes() const {
  size_t bytes = sizeof(ReuseEntry);
  if (lu) bytes += lu->memory_bytes();
  if (state) bytes += sizeof(circuit::DeviceState) + state->memory_bytes();
  if (x) bytes += sizeof(*x) + x->capacity() * sizeof(double);
  return bytes;
}

bool ReuseEntry::shapes_match(const circuit::Netlist& net,
                              int num_unknowns) const {
  if (!state || !x) return false;
  const circuit::DeviceState& s = *state;
  return s.diode_on.size() == net.diodes().size() &&
         s.diode_v.size() == net.diodes().size() &&
         s.opamp_ve.size() == net.opamps().size() &&
         s.opamp_sat.size() == net.opamps().size() &&
         s.negres_i.size() == net.negative_resistors().size() &&
         s.cap_v.size() == net.capacitors().size() &&
         x->size() == static_cast<size_t>(num_unknowns);
}

void ReusePool::touch(Slot& slot, std::uint64_t key) {
  // splice moves the existing node to the front without allocating, so a
  // touch can never throw — erase + push_front could fail mid-way and leave
  // the slot's iterator dangling.
  (void)key;
  lru_.splice(lru_.begin(), lru_, slot.lru);
  slot.lru = lru_.begin();
}

std::shared_ptr<const ReuseEntry> ReusePool::find(std::uint64_t pattern_key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(pattern_key);
  if (it == entries_.end()) {
    stats_.misses++;
    return nullptr;
  }
  stats_.hits++;
  touch(it->second, pattern_key);
  return it->second.entry;
}

int ReusePool::store(std::uint64_t pattern_key, ReuseEntry entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Exception safety (strong guarantee): everything that can throw —
  // the shared entry allocation, the spare LRU node, the map insertion —
  // happens before any pool state is modified, and the mutations that
  // publish the entry (splice, shared_ptr moves, byte accounting) are all
  // noexcept. A bad_alloc mid-store therefore leaves the pool exactly as it
  // was: no null-entry slot for find() to crash on, no dangling LRU
  // iterator, and bytes_/size()/stats() still reconciled.
  auto it = entries_.find(pattern_key);
  if (it != entries_.end()) {
    // Merge: payloads the new entry does not carry survive from the
    // previous one, so a transient store (LU only) cannot wipe the device
    // state a DC store published under the same pattern (possible when the
    // transient stamps add no new positions, e.g. lag-only circuits without
    // parasitics).
    if (!entry.lu) entry.lu = it->second.entry->lu;
    if (!entry.state) entry.state = it->second.entry->state;
    if (!entry.x) entry.x = it->second.entry->x;
  }

  // Chaos battery: "pool.store:badalloc" models the allocation below
  // failing; the reconciliation test asserts the guarantees above.
  util::FaultInjector::instance().fire("pool.store");

  auto shared = std::make_shared<const ReuseEntry>(std::move(entry));
  const size_t new_bytes = shared->memory_bytes();
  Slot* slot = nullptr;
  if (it == entries_.end()) {
    std::list<std::uint64_t> spare;
    spare.push_front(pattern_key);              // may throw; nothing changed
    it = entries_.try_emplace(pattern_key).first; // may throw; nothing changed
    // --- commit point: nothing below throws ---
    lru_.splice(lru_.begin(), spare);
    slot = &it->second;
    slot->lru = lru_.begin();
  } else {
    slot = &it->second;
    bytes_ -= slot->bytes;
    touch(*slot, pattern_key);
  }
  slot->entry = std::move(shared);
  slot->bytes = new_bytes;
  bytes_ += slot->bytes;
  stats_.stores++;

  // LRU eviction down to the byte budget. The entry just stored is at the
  // front of the recency list and is never evicted, so a single oversized
  // entry is retained (with bytes() > byte_budget()) instead of leaving the
  // pool permanently empty.
  int evicted = 0;
  if (byte_budget_ > 0) {
    while (bytes_ > byte_budget_ && lru_.size() > 1) {
      const std::uint64_t victim = lru_.back();
      lru_.pop_back();
      const auto vit = entries_.find(victim);
      bytes_ -= vit->second.bytes;
      entries_.erase(vit);
      stats_.evictions++;
      ++evicted;
    }
  }
  return evicted;
}

bool ReusePool::drop(std::uint64_t pattern_key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(pattern_key);
  if (it == entries_.end()) return false;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru);
  entries_.erase(it);
  stats_.drops++;
  return true;
}

size_t ReusePool::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t ReusePool::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

ReusePool::Stats ReusePool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

} // namespace aflow::core

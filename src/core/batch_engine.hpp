// BatchEngine: executes a batch of max-flow instances across a fixed pool of
// worker threads with per-instance timing and failure isolation. This is the
// serving seam of the roadmap: everything that needs "many instances, fast"
// (benches, the CLI, future sharding/async layers) goes through here.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/errors.hpp"
#include "core/solver.hpp"
#include "graph/network.hpp"

namespace aflow::core {

struct BatchOptions {
  /// Registry name of the backend to run.
  std::string solver = "dinic";
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Run everything in-order on the calling thread (implies num_threads = 1).
  /// Results are identical either way — this exists so tests and debugging
  /// sessions get reproducible scheduling and clean stack traces.
  bool deterministic = false;
  /// Run flow::check_flow on every solution; a violation marks the instance
  /// failed instead of silently returning an infeasible flow.
  bool validate = false;
  /// Cooperative cancellation for the whole batch: checked at every
  /// work-item claim and threaded into each solve. A tripped token fails
  /// the remaining instances with a retryable cancelled/deadline outcome
  /// (the never-throws-per-instance contract holds; in-flight solves unwind
  /// at their own iteration boundaries).
  CancelToken cancel;
};

/// Outcome of one instance within a batch.
struct InstanceOutcome {
  int index = -1;      // position in the input batch
  bool ok = false;
  std::string error;   // set when !ok (exception text or validation failure)
  /// Structured classification of `error` (code / retryable / typed
  /// detail), captured at the catch site so the serving layer can report
  /// machine-readable failures. Meaningful only when !ok.
  ErrorInfo error_info;
  flow::MaxFlowResult result;
  double seconds = 0.0; // solve wall-clock for this instance
};

struct BatchReport {
  /// One entry per input instance, in input order.
  std::vector<InstanceOutcome> outcomes;
  double wall_seconds = 0.0;
  int threads_used = 1;
  int failed = 0;
  /// Sum of flow values over successful instances.
  double total_flow = 0.0;
  /// Backend telemetry summed over successful instances (zeros for
  /// backends that do not report it). metrics.warm_started is true when
  /// any instance warm-started; warm_started_instances counts them.
  flow::SolveMetrics metrics;
  int warm_started_instances = 0;
};

class BatchEngine {
 public:
  explicit BatchEngine(BatchOptions options = {});

  /// Solves every instance; never throws on per-instance failure (malformed
  /// instance, solver exception) — those surface as `ok == false` outcomes.
  /// Throws std::invalid_argument when the solver name is unknown.
  BatchReport run(const std::vector<graph::FlowNetwork>& instances) const;

  /// Like run(), but executes on caller-provided solver instances (worker
  /// `t` uses `workers[t]`; `workers.size()` bounds the thread count,
  /// further clamped by the usual resolve_threads rules) instead of
  /// creating fresh ones from the registry. This is the serving entry
  /// point: a long-running process (core::ServeEngine) keeps its solvers —
  /// and therefore their ReusePools and ordering caches — alive across
  /// calls, which is what lets a request stream warm-start against earlier
  /// requests. `options().solver` is informational only on this path.
  BatchReport run(const std::vector<graph::FlowNetwork>& instances,
                  std::span<const SolverPtr> workers) const;

  /// Like the worker-span overload, but fans the whole batch into ONE
  /// shared solver instance from up to `threads` concurrent workers. This
  /// leans on the ISolver contract (solve must be concurrency-safe on one
  /// instance) and is the multi-session serving path: every session of a
  /// core::ServeEngine bank drives the same solver, so cross-instance
  /// assets (la::OrderingCache, core::ReusePool) are shared by everyone
  /// rather than partitioned per worker.
  BatchReport run(const std::vector<graph::FlowNetwork>& instances,
                  const SolverPtr& shared_solver, int threads) const;

  /// Lazily materialised batch for instances too big to coexist: worker
  /// threads claim index i, call make(i) to build the instance, solve it,
  /// hand the outcome to consume(outcome), and drop the instance and the
  /// solution's edge_flow before claiming the next index — so at most
  /// `threads` instances (plus their residuals) are alive at once. This is
  /// the region-solve path of core::ShardedSolver, where the k region
  /// subproblems of a huge graph would otherwise sum back to full-graph
  /// memory. make and consume may be invoked concurrently for distinct
  /// indices (consume writes to disjoint per-region slots in the sharded
  /// path); outcomes keep timings and errors but have edge_flow cleared.
  BatchReport run_streamed(
      int count, const std::function<graph::FlowNetwork(int)>& make,
      const std::function<void(InstanceOutcome&)>& consume) const;

  /// Single-step delta entry: solves the post-edit `net` through
  /// solver->solve_delta(net, delta, prior) with the engine's usual timing,
  /// optional validation, and failure isolation, as a one-instance outcome
  /// (index 0; the caller re-indexes when threading a stream).
  InstanceOutcome run_delta(const graph::FlowNetwork& net,
                            const flow::CapacityDelta& delta,
                            const flow::MaxFlowResult& prior,
                            const SolverPtr& solver) const;

  /// Reconfiguration-stream entry: outcome 0 solves `base` from scratch;
  /// outcome k >= 1 applies deltas[k-1] to the running network and
  /// re-solves it with the previous successful result as the prior. A
  /// stream is inherently sequential (each step consumes its predecessor),
  /// so it runs on the calling thread regardless of num_threads; a failed
  /// step is isolated like any batch failure and the next step's prior is
  /// the last successful result (an unusable prior just rides the
  /// backend's from-scratch fallback). Delta traffic shows up in the
  /// report's summed metrics (delta_solves / delta_fallbacks /
  /// edges_touched).
  BatchReport run_delta(const graph::FlowNetwork& base,
                        std::span<const flow::CapacityDelta> deltas,
                        const SolverPtr& solver) const;

  const BatchOptions& options() const { return options_; }

  /// The thread count `run` will actually use for `n` instances.
  int resolve_threads(int n) const;

 private:
  BatchOptions options_;
};

} // namespace aflow::core

// Batch workload construction: turn a DIMACS file / directory or a compact
// generator spec string into a vector of FlowNetwork instances for the
// BatchEngine. Shared by aflow_cli, the batch bench, and the tests.
//
// Spec grammar (';'-separated sources, each `kind:key=val,key=val,...`):
//   grid:side=31,count=32,seed=1,cap=16,neighbor=4
//   grid:height=24,width=40,count=8,seed=9
//   rmat_sparse:n=1000,degree=8,count=32,seed=7
//   rmat_dense:n=480,count=4,seed=7
//   layered:layers=6,width=20,fanout=4,cap=32,count=4,seed=5
//   uniform:n=500,m=2500,cap=64,count=4,seed=11
//   gridflow:height=1000,width=1000,cap=64,seed=3
// `count` (default 1) emits that many instances with seeds seed, seed+1, ...
// `vary=K` (default 1, any generator kind) replaces each generated instance
// by K same-topology capacity variants (see capacity_variants) — the
// reconfiguration-batch shape of the paper: one crossbar topology, many
// programmed conductance sets, e.g. grid:side=13,seed=5,vary=64.
// A source that names an existing file is read as one DIMACS instance; a
// directory contributes every *.dimacs / *.max file in it, sorted by name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.hpp"

namespace aflow::core {

/// Reads every DIMACS instance (*.dimacs, *.max) in `dir`, sorted by
/// filename. Throws std::runtime_error when the directory does not exist or
/// contains no instances.
std::vector<graph::FlowNetwork> load_dimacs_dir(const std::string& dir);

/// Expands a workload spec (grammar above): each ';'-separated source is a
/// DIMACS file, a directory of instances, or a generator spec. Throws
/// std::invalid_argument on unknown kinds, unknown keys, or malformed
/// key=value lists.
std::vector<graph::FlowNetwork> generate_batch(const std::string& spec);

/// Synonym for generate_batch, kept as the entry-point name used by callers
/// that may pass either a bare path or a spec.
std::vector<graph::FlowNetwork> load_batch(const std::string& spec_or_path);

/// Writes the single instance described by `spec` (one source, count=1) as a
/// DIMACS file at `path`. The gridflow kind is emitted directly from its
/// generator walk in O(1) memory — the way to put a million-node instance on
/// disk for `aflow solve --shards` without ever materialising it — while the
/// other kinds materialise the FlowNetwork and write it out.
void write_spec_dimacs(const std::string& spec, const std::string& path);

/// Reconfiguration batch: `count` same-topology copies of `base` with every
/// capacity rescaled by an i.i.d. factor drawn uniformly from [0.5, 1.5]
/// (seeded, deterministic). Variant 0 is `base` unchanged. Same graph, same
/// MNA pattern, new values — the substrate's reprogramming scenario and the
/// natural workload for the cross-instance warm-start layer.
std::vector<graph::FlowNetwork> capacity_variants(
    const graph::FlowNetwork& base, int count, std::uint64_t seed);

} // namespace aflow::core

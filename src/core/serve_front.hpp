// Event-driven serving front for core::ServeEngine, over Unix-socket and
// TCP transports.
//
// The PR-5 front spent one blocking thread per connection, so connection
// count — not solver speed — was the scaling wall. This front splits the
// two concerns the way streaming maxflow serving systems do: a thin I/O
// plane that owns every transport concern, feeding a FIXED worker pool
// that owns every solver call (DESIGN.md "Event-driven serving front").
//
//   I/O plane (options.io_threads poll loops, nonblocking fds)
//     accept on both listeners, line framing over per-connection read
//     buffers, oversized-frame resync, per-connection write buffers with
//     nonblocking flushes, hangup detection (POLLRDHUP every poll — the
//     always-on replacement for PR 8's periodic sweep), and backpressure:
//     a connection stops being READ while it sits at its pipelining limit
//     or its write buffer is full, so a slow or absent reader costs one
//     buffered allotment, never a thread and never unbounded memory.
//   Worker pool (options.workers threads)
//     pops requests from one bounded MPSC queue and runs
//     ServeSession::handle. The I/O plane schedules at most ONE request
//     per connection at a time and enqueues parsed lines in arrival
//     order, which is the whole per-session ordering argument: FIFO
//     parse, one in flight, FIFO response buffer (proof sketch in
//     DESIGN.md "Event-driven serving front").
//
// Thousands of idle clients therefore cost file descriptors and a few
// kilobytes of buffer each; the thread count is io_threads + workers,
// fixed at start. Every PR-5/PR-8 session contract is preserved: one
// ServeSession per connection, per-session response ordering, oversized
// frames answered once and discarded to their newline, beyond-cap
// connects rejected with one line, a client vanishing mid-solve trips the
// session CancelToken (now on the next poll wake instead of the next
// sweep), and `quit` ends one session while `shutdown` stops the front.
// POSIX-only (guarded throw on _WIN32).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/serve_engine.hpp"

namespace aflow::core {

struct ServeFrontOptions {
  /// Filesystem path of the Unix stream socket (replaced if it already
  /// exists). Empty = no Unix listener.
  std::string socket_path;
  /// TCP listen address, HOST:PORT (port 0 = kernel-assigned, readable
  /// from tcp_port() after start()). Empty = no TCP listener. At least one
  /// of socket_path / tcp_address is required.
  std::string tcp_address;
  /// Longest accepted request line, bytes (without the newline). Longer
  /// frames draw one error response and are discarded to their newline.
  size_t max_line_bytes = 1 << 20;
  int listen_backlog = 128;
  /// Poll-loop tick: the upper bound on how stale shutdown/stop detection
  /// can be. I/O readiness itself wakes the loops immediately.
  int poll_interval_ms = 50;
  /// Nonblocking poll loops in the I/O plane. One is right for almost
  /// every deployment; more only helps past tens of thousands of hot
  /// connections.
  int io_threads = 1;
  /// Worker threads executing requests. 0 = the engine's workers_per_bank.
  int workers = 0;
  /// Per-session pipelining limit: parsed-but-unserved requests a
  /// connection may have queued before the front stops reading it.
  int max_pipeline = 32;
  /// Per-connection write-buffer cap, bytes: a connection whose client is
  /// not draining responses stops being read past this point.
  size_t max_write_buffer_bytes = 256 << 10;
  /// At shutdown, how long the front keeps flushing already-buffered
  /// responses to clients that are still reading before closing on them.
  int drain_grace_ms = 1000;
};

/// Monotonic counters of the I/O plane, readable from any thread while the
/// front runs (exposed through the engine's `stats` response as the
/// "front" object — docs/BENCH_FORMAT.md).
struct FrontTelemetry {
  std::atomic<long long> accepted_unix{0};
  std::atomic<long long> accepted_tcp{0};
  std::atomic<long long> rejected{0};
  std::atomic<long long> open_connections{0};
  std::atomic<long long> requests_queued{0};
  std::atomic<long long> responses_written{0};
  /// Read-pause transitions: a connection hit its pipelining limit or its
  /// write-buffer cap and stopped being read until it drained.
  std::atomic<long long> backpressure_pauses{0};
  std::atomic<long long> oversized_frames{0};
  /// Hangups that cancelled in-flight or queued work via the session token.
  std::atomic<long long> hangup_cancels{0};
  std::atomic<long long> short_writes{0}; // injected serve.write faults
};

class ServeFront {
 public:
  /// Pimpl holding the listeners, queue, and thread pools; public so the
  /// implementation's free-standing runtime class (serve_front.cpp) can
  /// name it, but defined only in the .cpp.
  struct Impl;

  /// The engine must outlive the front. No sockets are touched until
  /// start().
  ServeFront(ServeEngine& engine, ServeFrontOptions options);
  ~ServeFront();
  ServeFront(const ServeFront&) = delete;
  ServeFront& operator=(const ServeFront&) = delete;

  /// Binds and listens on every configured transport. Throws
  /// std::runtime_error on socket/bind/listen failure (and on _WIN32).
  void start();

  /// Blocking: spawns the I/O loops and the worker pool, serves until a
  /// session requests shutdown or stop() is called, then drains buffered
  /// responses (bounded by drain_grace_ms), joins every thread, and
  /// removes the socket file. Call start() first.
  void run();

  /// Thread-safe: asks run() to return.
  void stop();

  const ServeFrontOptions& options() const { return options_; }
  /// The TCP port actually bound (after start()); 0 without a TCP listener.
  std::uint16_t tcp_port() const { return tcp_port_; }
  /// Connections granted a session so far (both transports).
  long long sessions_accepted() const {
    return telemetry_.accepted_unix.load() + telemetry_.accepted_tcp.load();
  }
  /// Connections refused because max_sessions were open.
  long long sessions_rejected() const { return telemetry_.rejected.load(); }
  const FrontTelemetry& telemetry() const { return telemetry_; }
  int io_thread_count() const;
  int worker_count() const;

 private:
  std::unique_ptr<Impl> impl_;
  ServeEngine& engine_;
  ServeFrontOptions options_;
  FrontTelemetry telemetry_;
  std::uint16_t tcp_port_ = 0;
};

} // namespace aflow::core

// Unix-socket serving front for core::ServeEngine: an accept loop that
// opens one ServeSession per connection and serves each on its own thread,
// so many clients stream requests against the engine's shared solver banks
// concurrently. The front owns the transport concerns the engine does not:
//
//  - line framing over a byte stream (partial writes from clients are
//    buffered until the newline arrives);
//  - oversized-frame protection (a line longer than max_line_bytes gets
//    one ok:false response and is discarded up to its newline — the
//    session survives and resyncs);
//  - mid-request disconnects (a client vanishing between or inside lines
//    closes that session only; the process and every other session keep
//    serving). A client that vanishes *during* a long solve is detected by
//    the accept loop's periodic hangup sweep (POLLRDHUP on every open
//    connection), which trips that session's CancelToken so the abandoned
//    solve unwinds at its next cancellation point instead of running to
//    completion on a dead socket;
//  - the session cap (a connection beyond ServeOptions::max_sessions is
//    answered with one rejection line and closed).
//
// `quit` ends one session; `shutdown` (from any session) stops the accept
// loop, after which run() joins the remaining connection threads and
// removes the socket file. POSIX-only (guarded no-op on _WIN32).
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/serve_engine.hpp"

namespace aflow::core {

struct ServeFrontOptions {
  /// Filesystem path of the Unix stream socket (required; replaced if it
  /// already exists). Must fit sockaddr_un::sun_path.
  std::string socket_path;
  /// Longest accepted request line, bytes (without the newline). Longer
  /// frames draw one error response and are discarded to their newline.
  size_t max_line_bytes = 1 << 20;
  int listen_backlog = 16;
  /// How often blocked accept/read calls wake up to check for shutdown.
  int poll_interval_ms = 50;
};

class ServeFront {
 public:
  /// The engine must outlive the front. No sockets are touched until
  /// start().
  ServeFront(ServeEngine& engine, ServeFrontOptions options);
  ~ServeFront();
  ServeFront(const ServeFront&) = delete;
  ServeFront& operator=(const ServeFront&) = delete;

  /// Binds and listens on options().socket_path. Throws std::runtime_error
  /// on socket/bind/listen failure (and on _WIN32).
  void start();

  /// Blocking accept loop: serves until a session requests shutdown or
  /// stop() is called, then joins every connection thread and removes the
  /// socket file. Call start() first.
  void run();

  /// Thread-safe: asks run() to return. Connections still open are joined
  /// by run() as their clients disconnect or their sessions quit.
  void stop();

  const ServeFrontOptions& options() const { return options_; }
  /// Connections granted a session so far.
  long long sessions_accepted() const { return accepted_.load(); }
  /// Connections refused because max_sessions were open.
  long long sessions_rejected() const { return rejected_.load(); }

 private:
  struct Connection {
    std::thread thread;
    std::atomic<bool> finished{false};
    // For the hangup sweep: the connection's fd (only polled while the
    // session is still alive — the handler closes the fd strictly after
    // releasing its session reference, so a lockable weak_ptr implies an
    // open fd) and the session whose token a hangup cancels.
    int fd = -1;
    std::weak_ptr<ServeSession> session;
  };

  void serve_client(int fd, std::shared_ptr<ServeSession> session,
                    std::atomic<bool>* finished);
  bool write_line(int fd, const std::string& response);
  void reap_finished(bool join_all);
  /// Polls every open connection for POLLRDHUP/POLLHUP/POLLERR and cancels
  /// the matching session's token: the disconnect-cancel half of the
  /// degradation ladder. Runs on the accept thread each poll interval.
  void sweep_disconnects();

  ServeEngine& engine_;
  ServeFrontOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<long long> accepted_{0};
  std::atomic<long long> rejected_{0};
  std::mutex connections_mutex_;
  std::list<Connection> connections_;
};

} // namespace aflow::core

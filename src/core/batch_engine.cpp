#include "core/batch_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/registry.hpp"
#include "util/fault_injector.hpp"

namespace aflow::core {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void aggregate_outcomes(BatchReport& report) {
  for (const InstanceOutcome& out : report.outcomes) {
    if (out.ok) {
      report.total_flow += out.result.flow_value;
      report.metrics += out.result.metrics;
      if (out.result.metrics.warm_started) ++report.warm_started_instances;
    } else {
      ++report.failed;
    }
  }
}
} // namespace

BatchEngine::BatchEngine(BatchOptions options) : options_(std::move(options)) {}

int BatchEngine::resolve_threads(int n) const {
  if (options_.deterministic) return 1;
  int threads = options_.num_threads;
  if (threads <= 0)
    threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  return std::max(1, std::min(threads, std::max(1, n)));
}

BatchReport BatchEngine::run(
    const std::vector<graph::FlowNetwork>& instances) const {
  // Fail fast on an unknown solver before spinning up workers. Each worker
  // owns a solver instance, so backends never share state.
  const int threads =
      resolve_threads(static_cast<int>(instances.size()));
  std::vector<SolverPtr> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t)
    workers.push_back(SolverRegistry::instance().create(options_.solver));
  return run(instances, workers);
}

BatchReport BatchEngine::run(const std::vector<graph::FlowNetwork>& instances,
                             const SolverPtr& shared_solver,
                             int threads) const {
  if (!shared_solver)
    throw std::invalid_argument("BatchEngine::run: shared solver is null");
  const std::vector<SolverPtr> workers(
      static_cast<size_t>(std::max(1, threads)), shared_solver);
  return run(instances, workers);
}

BatchReport BatchEngine::run(const std::vector<graph::FlowNetwork>& instances,
                             std::span<const SolverPtr> workers) const {
  if (workers.empty())
    throw std::invalid_argument("BatchEngine::run: workers must be non-empty");
  BatchReport report;
  const int n = static_cast<int>(instances.size());
  report.outcomes.resize(n);
  report.threads_used = std::min(resolve_threads(n),
                                 std::max(1, static_cast<int>(workers.size())));

  const auto batch_t0 = Clock::now();

  // Work is claimed from a shared atomic counter, and every worker writes
  // only its claimed slots of the pre-sized outcome vector.
  std::atomic<int> next{0};
  const auto worker = [&](int t) {
    const SolverPtr& solver = workers[t];
    for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      InstanceOutcome& out = report.outcomes[i];
      out.index = i;
      const auto t0 = Clock::now();
      try {
        options_.cancel.check();
        util::FaultInjector::instance().fire("batch.solve", &options_.cancel);
        instances[i].validate();
        out.result = solver->solve(instances[i], options_.cancel);
        if (options_.validate) {
          const std::string err = flow::check_flow(instances[i], out.result);
          if (!err.empty()) throw std::runtime_error("infeasible flow: " + err);
        }
        out.ok = true;
      } catch (const std::exception& e) {
        out.ok = false;
        out.error = e.what();
        out.error_info = classify_error(e);
      }
      out.seconds = seconds_since(t0);
    }
  };

  if (report.threads_used <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(report.threads_used);
    for (int t = 0; t < report.threads_used; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }

  report.wall_seconds = seconds_since(batch_t0);
  aggregate_outcomes(report);
  return report;
}

BatchReport BatchEngine::run_streamed(
    int count, const std::function<graph::FlowNetwork(int)>& make,
    const std::function<void(InstanceOutcome&)>& consume) const {
  if (count < 0)
    throw std::invalid_argument("BatchEngine::run_streamed: negative count");
  if (!make || !consume)
    throw std::invalid_argument(
        "BatchEngine::run_streamed: make/consume must be callable");
  BatchReport report;
  report.outcomes.resize(count);
  report.threads_used = resolve_threads(count);
  std::vector<SolverPtr> workers;
  workers.reserve(report.threads_used);
  for (int t = 0; t < report.threads_used; ++t)
    workers.push_back(SolverRegistry::instance().create(options_.solver));

  const auto batch_t0 = Clock::now();
  std::atomic<int> next{0};
  const auto worker = [&](int t) {
    const SolverPtr& solver = workers[t];
    for (int i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      InstanceOutcome& out = report.outcomes[i];
      out.index = i;
      const auto t0 = Clock::now();
      try {
        options_.cancel.check();
        util::FaultInjector::instance().fire("batch.solve", &options_.cancel);
        const graph::FlowNetwork net = make(i);
        net.validate();
        out.result = solver->solve(net, options_.cancel);
        if (options_.validate) {
          const std::string err = flow::check_flow(net, out.result);
          if (!err.empty()) throw std::runtime_error("infeasible flow: " + err);
        }
        out.ok = true;
      } catch (const std::exception& e) {
        out.ok = false;
        out.error = e.what();
        out.error_info = classify_error(e);
      }
      out.seconds = seconds_since(t0);
      if (out.ok) consume(out);
      // The consumer has scattered what it needs; keep the report light so
      // k huge regions never accumulate k huge flow vectors.
      out.result.edge_flow.clear();
      out.result.edge_flow.shrink_to_fit();
    }
  };

  if (report.threads_used <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(report.threads_used);
    for (int t = 0; t < report.threads_used; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }

  report.wall_seconds = seconds_since(batch_t0);
  aggregate_outcomes(report);
  return report;
}

InstanceOutcome BatchEngine::run_delta(const graph::FlowNetwork& net,
                                       const flow::CapacityDelta& delta,
                                       const flow::MaxFlowResult& prior,
                                       const SolverPtr& solver) const {
  if (!solver)
    throw std::invalid_argument("BatchEngine::run_delta: solver is null");
  InstanceOutcome out;
  out.index = 0;
  const auto t0 = Clock::now();
  try {
    options_.cancel.check();
    net.validate();
    out.result = solver->solve_delta(net, delta, prior, options_.cancel);
    if (options_.validate) {
      const std::string err = flow::check_flow(net, out.result);
      if (!err.empty()) throw std::runtime_error("infeasible flow: " + err);
    }
    out.ok = true;
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
    out.error_info = classify_error(e);
  }
  out.seconds = seconds_since(t0);
  return out;
}

BatchReport BatchEngine::run_delta(const graph::FlowNetwork& base,
                                   std::span<const flow::CapacityDelta> deltas,
                                   const SolverPtr& solver) const {
  if (!solver)
    throw std::invalid_argument("BatchEngine::run_delta: solver is null");
  BatchReport report;
  report.threads_used = 1;
  const auto batch_t0 = Clock::now();

  graph::FlowNetwork net = base;
  flow::MaxFlowResult prior;

  InstanceOutcome first;
  first.index = 0;
  {
    const auto t0 = Clock::now();
    try {
      options_.cancel.check();
      net.validate();
      first.result = solver->solve(net, options_.cancel);
      if (options_.validate) {
        const std::string err = flow::check_flow(net, first.result);
        if (!err.empty()) throw std::runtime_error("infeasible flow: " + err);
      }
      first.ok = true;
      prior = first.result;
    } catch (const std::exception& e) {
      first.ok = false;
      first.error = e.what();
      first.error_info = classify_error(e);
    }
    first.seconds = seconds_since(t0);
  }
  report.outcomes.push_back(std::move(first));

  for (size_t k = 0; k < deltas.size(); ++k) {
    InstanceOutcome out;
    try {
      flow::CapacityDelta d = deltas[k]; // apply() records old capacities
      d.apply(net);
      out = run_delta(net, d, prior, solver);
    } catch (const std::exception& e) {
      // A bad edit (index / capacity) fails this step. apply() is
      // all-or-nothing, so the network still holds the previous step's
      // state exactly and the stream continues from it.
      out.ok = false;
      out.error = e.what();
      out.error_info = classify_error(e);
    }
    out.index = static_cast<int>(k) + 1;
    if (out.ok) prior = out.result;
    report.outcomes.push_back(std::move(out));
  }

  report.wall_seconds = seconds_since(batch_t0);
  aggregate_outcomes(report);
  return report;
}

} // namespace aflow::core

#include "core/workload.hpp"

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <stdexcept>

#include "graph/dimacs.hpp"
#include "graph/generators.hpp"

namespace aflow::core {

namespace fs = std::filesystem;

namespace {

struct SourceSpec {
  std::string kind;
  std::map<std::string, double> params;

  double get(const std::string& key, double fallback) const {
    const auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
  /// Integer parameters must be integral: silently truncating (side=7.9
  /// becoming 7) would hand the caller a different instance than asked for.
  int get_int(const std::string& key, int fallback) const {
    const auto it = params.find(key);
    if (it == params.end()) return fallback;
    const double v = it->second;
    if (!(std::floor(v) == v) || v < static_cast<double>(INT_MIN) ||
        v > static_cast<double>(INT_MAX))
      throw std::invalid_argument(
          "workload '" + kind + "': parameter '" + key +
          "' must be an integer, got " + std::to_string(v));
    return static_cast<int>(v);
  }

  /// Typos must not silently fall back to defaults: every key has to be one
  /// the kind actually reads. `count`, `seed`, and `vary` apply to every
  /// generator kind.
  void require_keys(std::initializer_list<const char*> allowed) const {
    for (const auto& [key, unused] : params) {
      bool known = key == "count" || key == "seed" || key == "vary";
      for (const char* a : allowed) known = known || key == a;
      if (!known)
        throw std::invalid_argument("unknown key '" + key + "' for workload '" +
                                    kind + "'");
    }
  }
};

int positive(int value, const char* what) {
  if (value <= 0)
    throw std::invalid_argument(std::string(what) +
                                " must be positive, got " +
                                std::to_string(value));
  return value;
}

/// Strips leading/trailing whitespace, so "grid: side = 8, cap = 16" and
/// shell-wrapped specs with stray spaces parse the same as the tight form.
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

SourceSpec parse_source(const std::string& text) {
  SourceSpec spec;
  const auto colon = text.find(':');
  spec.kind = trim(text.substr(0, colon));
  if (colon == std::string::npos) return spec;

  std::istringstream rest(text.substr(colon + 1));
  std::string item;
  while (std::getline(rest, item, ',')) {
    if (trim(item).empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("bad spec item '" + trim(item) + "' in '" +
                                  text + "' (expected key=value)");
    const std::string key = trim(item.substr(0, eq));
    const std::string value = trim(item.substr(eq + 1));
    if (key.empty())
      throw std::invalid_argument("empty key in spec item '" + trim(item) +
                                  "' in '" + text + "'");
    try {
      size_t used = 0;
      const double parsed = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
      spec.params[key] = parsed;
    } catch (const std::exception&) {
      throw std::invalid_argument("bad numeric value in spec item '" +
                                  trim(item) + "'");
    }
  }
  return spec;
}

/// A segmentation-style grid instance: random terminal capacities in
/// [0, cap] per pixel, constant lattice capacity.
graph::FlowNetwork random_grid(int height, int width, double cap,
                               double neighbor, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, cap);
  const int pixels = height * width;
  std::vector<double> to_source(pixels), to_sink(pixels);
  for (int p = 0; p < pixels; ++p) {
    // Integral capacities, as everywhere else in the repo's generators.
    to_source[p] = std::floor(u(rng));
    to_sink[p] = std::floor(u(rng));
  }
  return graph::grid_cut_graph(height, width, to_source, to_sink, neighbor);
}

std::vector<graph::FlowNetwork> expand(const SourceSpec& spec) {
  const int count = positive(spec.get_int("count", 1), "count");
  const auto seed0 = static_cast<std::uint64_t>(spec.get("seed", 1));

  std::vector<graph::FlowNetwork> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
    if (spec.kind == "grid") {
      spec.require_keys({"side", "height", "width", "cap", "neighbor"});
      const int side = spec.get_int("side", 8);
      out.push_back(
          random_grid(positive(spec.get_int("height", side), "height"),
                      positive(spec.get_int("width", side), "width"),
                      spec.get("cap", 16.0), spec.get("neighbor", 4.0), seed));
    } else if (spec.kind == "rmat_sparse") {
      spec.require_keys({"n", "degree"});
      out.push_back(graph::rmat_sparse(positive(spec.get_int("n", 500), "n"),
                                       seed, spec.get("degree", 8.0)));
    } else if (spec.kind == "rmat_dense") {
      spec.require_keys({"n"});
      out.push_back(
          graph::rmat_dense(positive(spec.get_int("n", 480), "n"), seed));
    } else if (spec.kind == "layered") {
      spec.require_keys({"layers", "width", "fanout", "cap"});
      out.push_back(graph::layered_random(
          positive(spec.get_int("layers", 6), "layers"),
          positive(spec.get_int("width", 16), "width"),
          positive(spec.get_int("fanout", 4), "fanout"),
          positive(spec.get_int("cap", 32), "cap"), seed));
    } else if (spec.kind == "uniform") {
      spec.require_keys({"n", "m", "cap"});
      out.push_back(
          graph::uniform_random(positive(spec.get_int("n", 500), "n"),
                                positive(spec.get_int("m", 2500), "m"),
                                positive(spec.get_int("cap", 64), "cap"), seed));
    } else if (spec.kind == "gridflow") {
      spec.require_keys({"height", "width", "cap"});
      out.push_back(graph::gridflow(
          positive(spec.get_int("height", 32), "height"),
          positive(spec.get_int("width", 32), "width"),
          positive(spec.get_int("cap", 64), "cap"), seed));
    } else {
      throw std::invalid_argument(
          "unknown workload kind '" + spec.kind +
          "' (known: grid, rmat_sparse, rmat_dense, layered, uniform, "
          "gridflow; or pass a DIMACS file / directory path)");
    }
  }

  // vary=K: reconfiguration batches — replace each generated instance by K
  // same-topology capacity variants.
  const int vary = positive(spec.get_int("vary", 1), "vary");
  if (vary > 1) {
    std::vector<graph::FlowNetwork> varied;
    varied.reserve(out.size() * static_cast<size_t>(vary));
    for (size_t i = 0; i < out.size(); ++i) {
      auto v = capacity_variants(
          out[i], vary, seed0 + 0x9e3779b97f4a7c15ULL * (i + 1));
      for (auto& net : v) varied.push_back(std::move(net));
    }
    out = std::move(varied);
  }
  return out;
}

bool has_dimacs_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".dimacs" || ext == ".max";
}

} // namespace

std::vector<graph::FlowNetwork> load_dimacs_dir(const std::string& dir) {
  if (!fs::is_directory(dir))
    throw std::runtime_error("not a directory: " + dir);

  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file() && has_dimacs_extension(entry.path()))
      paths.push_back(entry.path());
  std::sort(paths.begin(), paths.end());

  if (paths.empty())
    throw std::runtime_error("no *.dimacs / *.max instances in " + dir);

  std::vector<graph::FlowNetwork> out;
  out.reserve(paths.size());
  for (const fs::path& p : paths)
    out.push_back(graph::read_dimacs_file(p.string()));
  return out;
}

std::vector<graph::FlowNetwork> generate_batch(const std::string& spec) {
  std::vector<graph::FlowNetwork> out;
  std::istringstream in(spec);
  std::string source;
  while (std::getline(in, source, ';')) {
    source = trim(source);
    if (source.empty()) continue;
    // Each source may independently be a DIMACS file, a directory of
    // instances, or a generator spec, so batches can mix recorded and
    // synthetic workloads.
    std::vector<graph::FlowNetwork> part;
    if (fs::is_regular_file(source))
      part.push_back(graph::read_dimacs_file(source));
    else if (fs::is_directory(source))
      part = load_dimacs_dir(source);
    else
      part = expand(parse_source(source));
    for (auto& net : part) out.push_back(std::move(net));
  }
  if (out.empty())
    throw std::invalid_argument("empty workload spec: '" + spec + "'");
  return out;
}

std::vector<graph::FlowNetwork> load_batch(const std::string& spec_or_path) {
  return generate_batch(spec_or_path);
}

void write_spec_dimacs(const std::string& spec, const std::string& path) {
  const std::string source = trim(spec);
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("write_spec_dimacs: cannot open " + path);

  if (!fs::is_regular_file(source) && !fs::is_directory(source)) {
    const SourceSpec parsed = parse_source(source);
    if (parsed.kind == "gridflow") {
      // Stream straight from the generator walk: a 1000x1000 gridflow is
      // ~3M arcs, and this path never holds more than one of them.
      parsed.require_keys({"height", "width", "cap"});
      if (parsed.get_int("count", 1) != 1 || parsed.get_int("vary", 1) != 1)
        throw std::invalid_argument(
            "write_spec_dimacs: expects a single instance (count=1, vary=1)");
      graph::write_gridflow_dimacs(
          out, positive(parsed.get_int("height", 32), "height"),
          positive(parsed.get_int("width", 32), "width"),
          positive(parsed.get_int("cap", 64), "cap"),
          static_cast<std::uint64_t>(parsed.get("seed", 1)));
      return;
    }
  }

  const std::vector<graph::FlowNetwork> nets = generate_batch(source);
  if (nets.size() != 1)
    throw std::invalid_argument(
        "write_spec_dimacs: spec expands to " + std::to_string(nets.size()) +
        " instances, expected exactly 1");
  graph::write_dimacs(out, nets.front());
}

std::vector<graph::FlowNetwork> capacity_variants(
    const graph::FlowNetwork& base, int count, std::uint64_t seed) {
  positive(count, "count");
  std::vector<graph::FlowNetwork> out;
  out.reserve(count);
  out.push_back(base);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> factor(0.5, 1.5);
  for (int i = 1; i < count; ++i)
    out.push_back(
        base.transform_capacities([&](double c) { return c * factor(rng); }));
  return out;
}

} // namespace aflow::core

#include "core/serve_engine.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analog/solver.hpp"
#include "core/registry.hpp"
#include "core/workload.hpp"
#include "mincut/dual_circuit.hpp"
#include "sim/sweep.hpp"

namespace aflow::core {

namespace {

/// Splits a request line into whitespace-separated tokens; double quotes
/// group (so `--spec "grid:side=8,seed=1"` works even with spaces). A line
/// whose first non-blank character is '#' is a comment.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size()) break;
    if (line[i] == '#' && out.empty()) return {};
    std::string tok;
    if (line[i] == '"') {
      ++i;
      while (i < line.size() && line[i] != '"') tok += line[i++];
      if (i < line.size()) ++i; // closing quote
    } else {
      while (i < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[i])))
        tok += line[i++];
    }
    out.push_back(std::move(tok));
  }
  return out;
}

std::string tok_string(const std::vector<std::string>& t, const char* key,
                       std::string fallback) {
  for (size_t i = 1; i + 1 < t.size(); ++i)
    if (t[i] == key) return t[i + 1];
  return fallback;
}

bool tok_flag(const std::vector<std::string>& t, const char* key) {
  for (size_t i = 1; i < t.size(); ++i)
    if (t[i] == key) return true;
  return false;
}

double tok_double(const std::vector<std::string>& t, const char* key,
                  double fallback) {
  const std::string s = tok_string(t, key, "");
  if (s.empty()) return fallback;
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad numeric value for ") + key +
                             ": '" + s + "'");
  }
}

long long tok_ll(const std::vector<std::string>& t, const char* key,
                 long long fallback) {
  const std::string s = tok_string(t, key, "");
  if (s.empty()) return fallback;
  try {
    return std::stoll(s);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad integer value for ") + key +
                             ": '" + s + "'");
  }
}

void write_metrics_json(util::JsonWriter& j, const flow::SolveMetrics& m) {
  j.begin_object();
  j.field("iterations", m.iterations);
  j.field("full_factors", m.full_factors);
  j.field("refactors", m.refactors);
  j.field("prototype_refactors", m.prototype_refactors);
  j.field("rhs_refreshes", m.rhs_refreshes);
  j.field("warm_iterations", m.warm_iterations);
  j.field("cold_iterations", m.cold_iterations);
  j.field("pool_hits", m.pool_hits);
  j.field("pool_misses", m.pool_misses);
  j.field("pool_evictions", m.pool_evictions);
  j.end_object();
}

/// Aggregated gauge/counter view over a set of ReusePools (a bank's
/// per-worker pools, or a single sweep/min-cut pool).
void write_pools_json(
    util::JsonWriter& j,
    const std::vector<std::shared_ptr<ReusePool>>& pools) {
  size_t entries = 0, bytes = 0, budget = 0;
  ReusePool::Stats total;
  for (const auto& pool : pools) {
    if (!pool) continue;
    entries += pool->size();
    bytes += pool->bytes();
    // Aggregate budget: bytes sums over every per-worker pool, so the
    // budget it is compared against must too (per-pool budgets are
    // identical within a bank).
    budget += pool->byte_budget();
    const ReusePool::Stats s = pool->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.stores += s.stores;
    total.evictions += s.evictions;
  }
  j.begin_object();
  j.field("pools", pools.size());
  j.field("entries", entries);
  j.field("bytes", bytes);
  j.field("byte_budget", budget);
  j.field("hits", total.hits);
  j.field("misses", total.misses);
  j.field("stores", total.stores);
  j.field("evictions", total.evictions);
  j.end_object();
}

void add_metrics(flow::SolveMetrics& into, const flow::SolveMetrics& m) {
  into.iterations += m.iterations;
  into.full_factors += m.full_factors;
  into.refactors += m.refactors;
  into.prototype_refactors += m.prototype_refactors;
  into.rhs_refreshes += m.rhs_refreshes;
  into.warm_iterations += m.warm_iterations;
  into.cold_iterations += m.cold_iterations;
  into.pool_hits += m.pool_hits;
  into.pool_misses += m.pool_misses;
  into.pool_evictions += m.pool_evictions;
  if (m.warm_started) into.warm_started = true;
}

} // namespace

ServeEngine::ServeEngine(ServeOptions options) : options_(std::move(options)) {
  if (options_.deterministic) {
    workers_ = 1;
  } else if (options_.num_threads > 0) {
    workers_ = options_.num_threads;
  } else {
    workers_ =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  sweep_pool_ = std::make_shared<ReusePool>(options_.pool_byte_budget);
  mincut_pool_ = std::make_shared<ReusePool>(options_.pool_byte_budget);
  sweep_ordering_ = std::make_shared<la::OrderingCache>();
  mincut_ordering_ = std::make_shared<la::OrderingCache>();
}

ServeEngine::Bank& ServeEngine::bank(const std::string& name) {
  const auto it = banks_.find(name);
  if (it != banks_.end()) return it->second;

  Bank b;
  // The warm analog backends are rebuilt here (instead of taken from the
  // registry) so their per-worker pools carry this engine's byte budget; a
  // registry-created warm adapter would hold an unbounded pool, which is
  // fine for a batch lifetime but not for a serving process.
  const std::optional<analog::AnalogSolveOptions> builtin =
      builtin_analog_options(name);
  const bool pooled = builtin && name.find("_warm") != std::string::npos;
  for (int t = 0; t < workers_; ++t) {
    if (pooled) {
      analog::AnalogSolveOptions opt = *builtin;
      auto pool = std::make_shared<ReusePool>(options_.pool_byte_budget);
      opt.reuse_pool = pool;
      b.pools.push_back(std::move(pool));
      b.workers.push_back(make_analog_solver(name, std::move(opt)));
    } else {
      // Throws std::invalid_argument for unknown names — surfaced as an
      // ok:false response by handle().
      b.workers.push_back(SolverRegistry::instance().create(name));
    }
  }
  return banks_.emplace(name, std::move(b)).first->second;
}

void ServeEngine::absorb(Bank& b, const BatchReport& report) {
  b.solves += static_cast<long long>(report.outcomes.size()) - report.failed;
  b.failed += report.failed;
  b.seconds += report.wall_seconds;
  add_metrics(b.metrics, report.metrics);
}

const graph::FlowNetwork& ServeEngine::require_instance() const {
  if (!current_)
    throw std::runtime_error(
        "no instance loaded (send: load --input FILE | --spec SPEC)");
  return *current_;
}

std::string ServeEngine::handle(const std::string& line) {
  const std::vector<std::string> t = tokenize(line);
  if (t.empty()) return {};
  ++requests_;
  const std::string& cmd = t[0];

  try {
    util::JsonWriter j;
    j.begin_object();
    j.field("schema", "aflow-serve-v1");
    j.field("id", requests_);
    j.field("request", cmd);
    if (cmd == "load") {
      cmd_load(t, j);
    } else if (cmd == "reconfigure") {
      cmd_reconfigure(t, j);
    } else if (cmd == "solve") {
      cmd_solve(t, j);
    } else if (cmd == "batch") {
      cmd_batch(t, j);
    } else if (cmd == "sweep") {
      cmd_sweep(t, j);
    } else if (cmd == "mincut") {
      cmd_mincut(j);
    } else if (cmd == "stats") {
      cmd_stats(j);
    } else if (cmd == "quit") {
      done_ = true;
      j.field("ok", true);
    } else {
      throw std::runtime_error(
          "unknown request '" + cmd +
          "' (known: load reconfigure solve batch sweep mincut stats quit)");
    }
    j.end_object();
    return j.str();
  } catch (const std::exception& e) {
    util::JsonWriter err;
    err.begin_object();
    err.field("schema", "aflow-serve-v1");
    err.field("id", requests_);
    err.field("request", cmd);
    err.field("ok", false);
    err.field("error", e.what());
    err.end_object();
    return err.str();
  }
}

void ServeEngine::cmd_load(const std::vector<std::string>& t,
                           util::JsonWriter& j) {
  const std::string input = tok_string(t, "--input", "");
  const std::string spec = tok_string(t, "--spec", "");
  if (input.empty() == spec.empty())
    throw std::runtime_error("load needs exactly one of --input or --spec");
  const std::vector<graph::FlowNetwork> instances =
      load_batch(input.empty() ? spec : input);
  base_ = instances.front();
  current_ = base_;
  j.field("ok", true);
  j.field("instances_in_source", instances.size());
  j.field("vertices", current_->num_vertices());
  j.field("edges", current_->num_edges());
  j.field("source", current_->source());
  j.field("sink", current_->sink());
}

void ServeEngine::cmd_reconfigure(const std::vector<std::string>& t,
                                  util::JsonWriter& j) {
  require_instance();
  bool mutated = false;
  const long long seed = tok_ll(t, "--seed", -1);
  if (seed >= 0) {
    // Deterministic capacity reprogramming of the *base* topology: same
    // seed, same instance, independent of reconfiguration history.
    current_ = capacity_variants(*base_, 2,
                                 static_cast<std::uint64_t>(seed))[1];
    mutated = true;
  }
  if (!tok_string(t, "--scale", "").empty()) {
    const double scale = tok_double(t, "--scale", 0.0);
    if (!(scale > 0.0)) throw std::runtime_error("--scale must be positive");
    current_ = current_->transform_capacities(
        [scale](double c) { return c * scale; });
    mutated = true;
  }
  const long long edge = tok_ll(t, "--edge", -1);
  if (edge >= 0) {
    const double cap = tok_double(t, "--capacity", 0.0);
    current_->set_capacity(static_cast<int>(edge), cap); // validates both
    mutated = true;
  }
  if (!mutated)
    throw std::runtime_error(
        "reconfigure needs --seed K, --scale F, or --edge I --capacity C");
  j.field("ok", true);
  j.field("vertices", current_->num_vertices());
  j.field("edges", current_->num_edges());
  j.field("max_capacity", current_->max_capacity());
}

void ServeEngine::cmd_solve(const std::vector<std::string>& t,
                            util::JsonWriter& j) {
  const graph::FlowNetwork& net = require_instance();
  const std::string name = tok_string(t, "--solver", options_.default_solver);
  Bank& b = bank(name);

  BatchOptions bo;
  bo.solver = name;
  bo.validate = tok_flag(t, "--check");
  const std::vector<graph::FlowNetwork> one{net};
  // Single request, worker 0: every point solve of a session funnels
  // through one persistent solver, so its pool stays hot.
  const BatchReport report =
      BatchEngine(bo).run(one, std::span<const SolverPtr>(b.workers.data(), 1));
  absorb(b, report);
  const InstanceOutcome& out = report.outcomes.front();
  if (!out.ok) throw std::runtime_error(out.error);

  j.field("ok", true);
  j.field("solver", name);
  j.field("flow", out.result.flow_value);
  j.field("ms", out.seconds * 1e3);
  j.field("warm_started", out.result.metrics.warm_started);
  j.key("metrics");
  write_metrics_json(j, out.result.metrics);
  j.key("pool");
  write_pools_json(j, b.pools);
}

void ServeEngine::cmd_batch(const std::vector<std::string>& t,
                            util::JsonWriter& j) {
  const std::string spec = tok_string(t, "--spec", "");
  if (spec.empty()) throw std::runtime_error("batch needs --spec");
  const std::string name = tok_string(t, "--solver", options_.default_solver);
  Bank& b = bank(name);

  BatchOptions bo;
  bo.solver = name;
  bo.validate = tok_flag(t, "--check");
  bo.deterministic = options_.deterministic;
  bo.num_threads = workers_;
  const std::vector<graph::FlowNetwork> instances = load_batch(spec);
  const BatchReport report = BatchEngine(bo).run(instances, b.workers);
  absorb(b, report);

  j.field("ok", true);
  j.field("solver", name);
  j.field("batch", spec);
  j.field("instances", report.outcomes.size());
  j.field("failed", report.failed);
  j.field("threads", report.threads_used);
  j.field("total_flow", report.total_flow);
  j.field("wall_ms", report.wall_seconds * 1e3);
  j.field("warm_started_instances", report.warm_started_instances);
  j.key("metrics");
  write_metrics_json(j, report.metrics);
  j.key("pool");
  write_pools_json(j, b.pools);
}

void ServeEngine::cmd_sweep(const std::vector<std::string>& t,
                            util::JsonWriter& j) {
  const graph::FlowNetwork& net = require_instance();
  const int points = static_cast<int>(tok_ll(t, "--points", 8));
  if (points < 1) throw std::runtime_error("--points must be >= 1");
  const double vmax = tok_double(t, "--vmax", 10.0);
  if (!(vmax > 0.0)) throw std::runtime_error("--vmax must be positive");

  // The substrate mapping the warm DC adapters use: topology-only MNA
  // pattern, so reconfigured capacities keep hitting the sweep pool.
  analog::MaxFlowCircuit c =
      analog::AnalogMaxFlowSolver(*builtin_analog_options("analog_dc_warm"))
          .map(net);
  sim::DcOptions dc_opt;
  dc_opt.ordering_cache = sweep_ordering_;
  sim::QuasiStaticSweep sweep(c.netlist, c.vflow_source, dc_opt, sweep_pool_);
  // Ramp inside the nontrivial region (no zero point): the first point is
  // a real LCP search, which is exactly what the pooled seed collapses.
  std::vector<double> values(points);
  for (int i = 0; i < points; ++i) values[i] = vmax * (i + 1) / points;
  const sim::SweepResult r =
      sweep.run(values, {sim::Probe::source_current(c.vflow_source, "Iflow")});
  ++sweeps_;

  const double iflow = r.trajectory.back().front();
  j.field("ok", true);
  j.field("points", points);
  j.field("vmax", vmax);
  j.field("flow", c.quantizer.to_flow(c.flow_value_volts_from_iflow(iflow)));
  j.field("breakpoints", r.breakpoints.size());
  j.field("warm_started", r.stats.warm_started);
  j.field("dc_iterations", r.stats.dc_iterations);
  j.field("warm_iterations", r.stats.warm_iterations);
  j.field("cold_iterations", r.stats.cold_iterations);
  j.field("full_factors", r.stats.full_factors);
  j.field("refactors", r.stats.refactors);
  j.key("pool");
  write_pools_json(j, {sweep_pool_});
}

void ServeEngine::cmd_mincut(util::JsonWriter& j) {
  const graph::FlowNetwork& net = require_instance();
  mincut::DualCircuitOptions opt;
  opt.ordering_cache = mincut_ordering_;
  opt.reuse_pool = mincut_pool_;
  const mincut::AnalogMinCutResult r = mincut::solve_mincut_dual(net, opt);
  ++mincuts_;

  double partition_cut = 0.0;
  for (const graph::Edge& e : net.edges())
    if (r.side[e.from] && !r.side[e.to]) partition_cut += e.capacity;

  j.field("ok", true);
  j.field("cut_value", partition_cut);
  j.field("objective", r.cut_value);
  j.field("flow_recovered", r.flow_value);
  j.field("dc_iterations", r.dc_iterations);
  j.field("warm_started", r.warm_started);
  j.field("warm_iterations", r.warm_iterations);
  j.field("cold_iterations", r.cold_iterations);
  j.key("pool");
  write_pools_json(j, {mincut_pool_});
}

void ServeEngine::cmd_stats(util::JsonWriter& j) {
  j.field("ok", true);
  j.field("requests", requests_);
  j.field("workers_per_bank", workers_);
  j.field("deterministic", options_.deterministic);
  j.field("pool_byte_budget", options_.pool_byte_budget);

  j.key("instance").begin_object();
  j.field("loaded", current_.has_value());
  if (current_) {
    j.field("vertices", current_->num_vertices());
    j.field("edges", current_->num_edges());
  }
  j.end_object();

  j.key("solvers").begin_array();
  for (const auto& [name, b] : banks_) {
    j.begin_object();
    j.field("solver", name);
    j.field("workers", b.workers.size());
    j.field("solves", b.solves);
    j.field("failed", b.failed);
    j.field("wall_ms", b.seconds * 1e3);
    j.key("metrics");
    write_metrics_json(j, b.metrics);
    j.key("pool");
    write_pools_json(j, b.pools);
    j.end_object();
  }
  j.end_array();

  j.field("sweeps", sweeps_);
  j.key("sweep_pool");
  write_pools_json(j, {sweep_pool_});
  j.field("mincuts", mincuts_);
  j.key("mincut_pool");
  write_pools_json(j, {mincut_pool_});
}

} // namespace aflow::core

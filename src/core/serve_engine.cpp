#include "core/serve_engine.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analog/solver.hpp"
#include "core/errors.hpp"
#include "core/registry.hpp"
#include "core/sharded_solver.hpp"
#include "core/workload.hpp"
#include "mincut/dual_circuit.hpp"
#include "sim/sweep.hpp"
#include "util/cancel.hpp"

namespace aflow::core {

namespace {

/// Splits a request line into whitespace-separated tokens; double quotes
/// group (so `--spec "grid:side=8,seed=1"` works even with spaces). A line
/// whose first non-blank character is '#' is a comment.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size()) break;
    if (line[i] == '#' && out.empty()) return {};
    std::string tok;
    if (line[i] == '"') {
      ++i;
      while (i < line.size() && line[i] != '"') tok += line[i++];
      if (i < line.size()) ++i; // closing quote
    } else {
      while (i < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[i])))
        tok += line[i++];
    }
    out.push_back(std::move(tok));
  }
  return out;
}

std::string tok_string(const std::vector<std::string>& t, const char* key,
                       std::string fallback) {
  for (size_t i = 1; i + 1 < t.size(); ++i)
    if (t[i] == key) return t[i + 1];
  return fallback;
}

bool tok_flag(const std::vector<std::string>& t, const char* key) {
  for (size_t i = 1; i < t.size(); ++i)
    if (t[i] == key) return true;
  return false;
}

double tok_double(const std::vector<std::string>& t, const char* key,
                  double fallback) {
  const std::string s = tok_string(t, key, "");
  if (s.empty()) return fallback;
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad numeric value for ") + key +
                             ": '" + s + "'");
  }
}

long long tok_ll(const std::vector<std::string>& t, const char* key,
                 long long fallback) {
  const std::string s = tok_string(t, key, "");
  if (s.empty()) return fallback;
  try {
    return std::stoll(s);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad integer value for ") + key +
                             ": '" + s + "'");
  }
}

void write_metrics_json(util::JsonWriter& j, const flow::SolveMetrics& m) {
  j.begin_object();
  j.field("iterations", m.iterations);
  j.field("full_factors", m.full_factors);
  j.field("refactors", m.refactors);
  j.field("prototype_refactors", m.prototype_refactors);
  j.field("rhs_refreshes", m.rhs_refreshes);
  j.field("warm_iterations", m.warm_iterations);
  j.field("cold_iterations", m.cold_iterations);
  j.field("pool_hits", m.pool_hits);
  j.field("pool_misses", m.pool_misses);
  j.field("pool_evictions", m.pool_evictions);
  j.field("delta_solves", m.delta_solves);
  j.field("delta_fallbacks", m.delta_fallbacks);
  j.field("edges_touched", m.edges_touched);
  j.field("injected_excess_arcs", m.injected_excess_arcs);
  j.field("returned_excess_walks", m.returned_excess_walks);
  j.field("phase2_fallbacks", m.phase2_fallbacks);
  j.field("warm_escalations", m.warm_escalations);
  j.field("fallback_analog_digital", m.fallback_analog_digital);
  j.field("fallback_region_retries", m.fallback_region_retries);
  j.field("fallback_region_direct", m.fallback_region_direct);
  j.field("fallback_pool_rebuilds", m.fallback_pool_rebuilds);
  j.end_object();
}

/// Parses the structured reconfigure edit list: `I:C[,I:C...]` (edge
/// index, new capacity). Order matters; a later edit to the same edge wins.
std::vector<flow::CapacityEdit> parse_edit_list(const std::string& spec) {
  std::vector<flow::CapacityEdit> edits;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const size_t colon = item.find(':');
    if (item.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 >= item.size())
      throw std::runtime_error("bad --edits item '" + item +
                               "' (want EDGE:CAPACITY)");
    flow::CapacityEdit e;
    try {
      e.edge = static_cast<int>(std::stoll(item.substr(0, colon)));
      e.capacity = std::stod(item.substr(colon + 1));
    } catch (const std::exception&) {
      throw std::runtime_error("bad --edits item '" + item +
                               "' (want EDGE:CAPACITY)");
    }
    edits.push_back(e);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (edits.empty()) throw std::runtime_error("--edits list is empty");
  return edits;
}

/// Wraps a single-outcome delta solve as a BatchReport so it folds into
/// the session/bank telemetry scopes exactly like a run() report.
BatchReport report_of(InstanceOutcome out) {
  BatchReport report;
  report.wall_seconds = out.seconds;
  report.threads_used = 1;
  if (out.ok) {
    report.total_flow = out.result.flow_value;
    report.metrics = out.result.metrics;
    if (out.result.metrics.warm_started) report.warm_started_instances = 1;
  } else {
    report.failed = 1;
  }
  report.outcomes.push_back(std::move(out));
  return report;
}

/// Bound on the per-session edit log: a reconfiguration stream that runs
/// longer than this between solves of one backend just composes a gap and
/// takes the scratch path — correctness never depends on log depth.
constexpr size_t kEditLogCap = 256;

/// Gauge/counter snapshot of one shared ReusePool (a bank's, or the
/// sweep/min-cut pool). Point-in-time under concurrency: other sessions
/// may be mutating the pool while this snapshot is taken.
void write_pool_json(util::JsonWriter& j, const ReusePool& pool) {
  const ReusePool::Stats s = pool.stats();
  j.begin_object();
  j.field("entries", pool.size());
  j.field("bytes", pool.bytes());
  j.field("byte_budget", pool.byte_budget());
  j.field("hits", s.hits);
  j.field("misses", s.misses);
  j.field("stores", s.stores);
  j.field("evictions", s.evictions);
  j.field("drops", s.drops);
  j.end_object();
}

/// SolveMetrics view of one sweep run, so sweep traffic aggregates through
/// the same per-session / shared-engine scopes as solver-bank traffic.
flow::SolveMetrics sweep_as_metrics(const sim::SweepStats& s) {
  flow::SolveMetrics m;
  m.iterations = s.dc_iterations;
  m.warm_iterations = s.warm_iterations;
  m.cold_iterations = s.cold_iterations;
  m.full_factors = s.full_factors;
  m.refactors = s.refactors;
  m.warm_started = s.warm_started;
  m.pool_hits = s.pool_hits;
  m.pool_misses = s.pool_misses;
  m.pool_evictions = s.pool_evictions;
  return m;
}

/// Folds one batch report into one accumulation scope. The per-session
/// and shared-bank scopes MUST fold identically — the concurrency tests
/// pin that summing session counters reproduces the bank counters — so
/// both go through this single helper.
void fold_report(const BatchReport& report, long long& solves,
                 long long& failed, double& seconds,
                 flow::SolveMetrics& metrics) {
  solves += static_cast<long long>(report.outcomes.size()) - report.failed;
  failed += report.failed;
  seconds += report.wall_seconds;
  metrics += report.metrics;
}

flow::SolveMetrics mincut_as_metrics(const mincut::AnalogMinCutResult& r) {
  flow::SolveMetrics m;
  m.iterations = r.dc_iterations;
  m.warm_iterations = r.warm_iterations;
  m.cold_iterations = r.cold_iterations;
  m.full_factors = r.full_factors;
  m.refactors = r.refactors;
  m.warm_started = r.warm_started;
  m.pool_hits = r.pool_hits;
  m.pool_misses = r.pool_misses;
  m.pool_evictions = r.pool_evictions;
  return m;
}

} // namespace

// ---------------------------------------------------------------- engine

ServeEngine::ServeEngine(ServeOptions options) : options_(std::move(options)) {
  if (options_.deterministic) {
    workers_ = 1;
  } else if (options_.num_threads > 0) {
    workers_ = options_.num_threads;
  } else {
    workers_ =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  if (options_.max_sessions < 1) options_.max_sessions = 1;
  sweep_pool_ = std::make_shared<ReusePool>(options_.pool_byte_budget);
  mincut_pool_ = std::make_shared<ReusePool>(options_.pool_byte_budget);
  sweep_ordering_ = std::make_shared<la::OrderingCache>();
  mincut_ordering_ = std::make_shared<la::OrderingCache>();
}

ServeEngine::~ServeEngine() = default;

std::shared_ptr<ServeSession> ServeEngine::open_session() {
  const std::lock_guard<std::mutex> lock(telemetry_mutex_);
  if (open_sessions_ >= options_.max_sessions) return nullptr;
  ++open_sessions_;
  ++sessions_opened_;
  peak_sessions_ = std::max(peak_sessions_, open_sessions_);
  return std::shared_ptr<ServeSession>(
      new ServeSession(*this, next_session_id_++));
}

void ServeEngine::close_session() {
  const std::lock_guard<std::mutex> lock(telemetry_mutex_);
  --open_sessions_;
}

int ServeEngine::open_sessions() const {
  const std::lock_guard<std::mutex> lock(telemetry_mutex_);
  return open_sessions_;
}

void ServeEngine::set_front_stats_provider(
    std::function<FrontStatsSnapshot()> provider) {
  const std::lock_guard<std::mutex> lock(telemetry_mutex_);
  front_stats_ = std::move(provider);
}

std::string ServeEngine::reject_line() const {
  util::JsonWriter j;
  j.begin_object();
  j.field("schema", "aflow-serve-v1");
  j.field("id", 0);
  j.field("session", 0);
  j.field("request", "connect");
  j.field("ok", false);
  j.field("error", "session limit reached (max_sessions=" +
                       std::to_string(options_.max_sessions) + ")");
  j.end_object();
  return j.str();
}

std::string ServeEngine::handle(const std::string& line) {
  if (!default_session_) default_session_ = open_session();
  if (!default_session_) return reject_line();
  return default_session_->handle(line);
}

bool ServeEngine::done() const {
  return shutdown_.load() || (default_session_ && default_session_->done());
}

ServeEngine::Bank& ServeEngine::bank(const std::string& name) {
  const std::lock_guard<std::mutex> lock(banks_mutex_);
  const auto it = banks_.find(name);
  if (it != banks_.end()) return it->second;

  Bank b;
  // The warm analog backends are rebuilt here (instead of taken from the
  // registry) so their shared pool carries this engine's byte budget and
  // is ONE per-pattern bank for every session, not a per-worker partition;
  // a registry-created warm adapter would hold an unbounded private pool.
  const std::optional<analog::AnalogSolveOptions> builtin =
      builtin_analog_options(name);
  if (builtin && name.find("_warm") != std::string::npos) {
    analog::AnalogSolveOptions opt = *builtin;
    b.pool = std::make_shared<ReusePool>(options_.pool_byte_budget);
    b.ordering = std::make_shared<la::OrderingCache>();
    opt.reuse_pool = b.pool;
    opt.ordering_cache = b.ordering;
    b.solver = make_analog_solver(name, std::move(opt));
  } else {
    // Throws std::invalid_argument for unknown names — surfaced as an
    // ok:false response by ServeSession::handle().
    b.solver = SolverRegistry::instance().create(name);
  }
  return banks_.emplace(name, std::move(b)).first->second;
}

void ServeEngine::absorb(Bank& b, const BatchReport& report) {
  const std::lock_guard<std::mutex> lock(telemetry_mutex_);
  fold_report(report, b.solves, b.failed, b.seconds, b.metrics);
}

void ServeEngine::write_stats(util::JsonWriter& j) {
  j.field("ok", true);
  j.field("requests", requests_.load());
  j.field("workers_per_bank", workers_);
  j.field("deterministic", options_.deterministic);
  j.field("pool_byte_budget", options_.pool_byte_budget);
  j.field("max_sessions", options_.max_sessions);

  // banks_mutex_ freezes the map shape; telemetry_mutex_ freezes the
  // counters (always taken in this order — bank() takes only the first,
  // absorb() only the second).
  const std::lock_guard<std::mutex> banks_lock(banks_mutex_);
  const std::lock_guard<std::mutex> lock(telemetry_mutex_);

  j.key("sessions").begin_object();
  j.field("open", open_sessions_);
  j.field("peak", peak_sessions_);
  j.field("opened", sessions_opened_);
  j.end_object();

  j.key("solvers").begin_array();
  for (const auto& [name, b] : banks_) {
    j.begin_object();
    j.field("solver", name);
    j.field("solves", b.solves);
    j.field("failed", b.failed);
    j.field("wall_ms", b.seconds * 1e3);
    j.key("metrics");
    write_metrics_json(j, b.metrics);
    if (b.pool) {
      j.key("pool");
      write_pool_json(j, *b.pool);
    }
    j.end_object();
  }
  j.end_array();

  j.field("sweeps", sweeps_);
  j.key("sweep_metrics");
  write_metrics_json(j, sweep_metrics_);
  j.key("sweep_pool");
  write_pool_json(j, *sweep_pool_);
  j.field("mincuts", mincuts_);
  j.key("mincut_metrics");
  write_metrics_json(j, mincut_metrics_);
  j.key("mincut_pool");
  write_pool_json(j, *mincut_pool_);

  // Transport-plane counters, present only when a serving front is running
  // (absent in stdin mode and in-process tests). The provider just
  // snapshots the front's atomics — safe under telemetry_mutex_.
  if (front_stats_) {
    const FrontStatsSnapshot f = front_stats_();
    j.key("front").begin_object();
    j.field("io_threads", f.io_threads);
    j.field("workers", f.workers);
    j.field("accepted_unix", f.accepted_unix);
    j.field("accepted_tcp", f.accepted_tcp);
    j.field("rejected", f.rejected);
    j.field("open_connections", f.open_connections);
    j.field("requests_queued", f.requests_queued);
    j.field("responses_written", f.responses_written);
    j.field("backpressure_pauses", f.backpressure_pauses);
    j.field("oversized_frames", f.oversized_frames);
    j.field("hangup_cancels", f.hangup_cancels);
    j.field("short_writes", f.short_writes);
    j.end_object();
  }
}

// --------------------------------------------------------------- session

ServeSession::ServeSession(ServeEngine& engine, int id)
    : engine_(engine), id_(id),
      deadline_ms_(engine.options().default_deadline_ms) {}

ServeSession::~ServeSession() { engine_.close_session(); }

util::CancelToken ServeSession::request_token(
    const std::vector<std::string>& t) const {
  const long long deadline_ms = tok_ll(t, "--deadline-ms", deadline_ms_);
  if (deadline_ms < 0)
    throw std::runtime_error("--deadline-ms must be >= 0 (0 = no deadline)");
  return session_token_.child(deadline_ms);
}

void ServeSession::absorb_session(const BatchReport& report) {
  fold_report(report, solves_, failed_, seconds_, solve_metrics_);
}

bool ServeSession::compose_delta_since(long long from_rev,
                                       flow::CapacityDelta& out) const {
  // Reconfigures log contiguous revisions (structural_revision_+1 ..
  // revision_), so walking forward from from_rev must see every step; a
  // jump means the log was trimmed past the prior.
  long long expect = from_rev;
  for (const auto& [rev, edits] : edit_log_) {
    if (rev <= from_rev) continue;
    if (rev != expect + 1) return false;
    expect = rev;
    out.edits.insert(out.edits.end(), edits.begin(), edits.end());
  }
  return expect == revision_;
}

const graph::FlowNetwork& ServeSession::require_instance() const {
  if (!current_)
    throw std::runtime_error(
        "no instance loaded (send: load --input FILE | --spec SPEC)");
  return *current_;
}

std::string ServeSession::handle(const std::string& line) {
  const std::vector<std::string> t = tokenize(line);
  if (t.empty()) return {};
  ++requests_;
  engine_.requests_.fetch_add(1);
  const std::string& cmd = t[0];

  try {
    util::JsonWriter j;
    j.begin_object();
    j.field("schema", "aflow-serve-v1");
    j.field("id", requests_);
    j.field("session", id_);
    j.field("request", cmd);
    if (cmd == "load") {
      cmd_load(t, j);
    } else if (cmd == "reconfigure") {
      cmd_reconfigure(t, j);
    } else if (cmd == "solve") {
      cmd_solve(t, j);
    } else if (cmd == "batch") {
      cmd_batch(t, j);
    } else if (cmd == "sweep") {
      cmd_sweep(t, j);
    } else if (cmd == "mincut") {
      cmd_mincut(t, j);
    } else if (cmd == "deadline") {
      cmd_deadline(t, j);
    } else if (cmd == "session") {
      cmd_session(j);
    } else if (cmd == "stats") {
      engine_.write_stats(j);
    } else if (cmd == "quit") {
      done_ = true;
      j.field("ok", true);
    } else if (cmd == "shutdown") {
      done_ = true;
      engine_.request_shutdown();
      j.field("ok", true);
    } else {
      throw std::runtime_error(
          "unknown request '" + cmd +
          "' (known: load reconfigure solve batch sweep mincut deadline "
          "session stats quit shutdown)");
    }
    j.end_object();
    return j.str();
  } catch (const std::exception& e) {
    // Structured failure shape: the legacy flattened string plus the
    // machine-readable error_info object (code / retryable / typed detail;
    // docs/BENCH_FORMAT.md). classify_error recognises a ServeRequestError
    // and passes its original classification through unchanged.
    ErrorInfo info = classify_error(e);
    if (info.message.empty()) info.message = e.what();
    util::JsonWriter err;
    err.begin_object();
    err.field("schema", "aflow-serve-v1");
    err.field("id", requests_);
    err.field("session", id_);
    err.field("request", cmd);
    err.field("ok", false);
    err.field("error", e.what());
    write_error_info(err, info);
    err.end_object();
    return err.str();
  }
}

std::string ServeSession::protocol_error(const std::string& message) {
  ++requests_;
  engine_.requests_.fetch_add(1);
  ErrorInfo info;
  info.code = "protocol";
  info.retryable = false;
  info.message = message;
  util::JsonWriter j;
  j.begin_object();
  j.field("schema", "aflow-serve-v1");
  j.field("id", requests_);
  j.field("session", id_);
  j.field("request", "(transport)");
  j.field("ok", false);
  j.field("error", message);
  write_error_info(j, info);
  j.end_object();
  return j.str();
}

void ServeSession::cmd_load(const std::vector<std::string>& t,
                            util::JsonWriter& j) {
  const std::string input = tok_string(t, "--input", "");
  const std::string spec = tok_string(t, "--spec", "");
  if (input.empty() == spec.empty())
    throw std::runtime_error("load needs exactly one of --input or --spec");
  const std::vector<graph::FlowNetwork> instances =
      load_batch(input.empty() ? spec : input);
  base_ = instances.front();
  current_ = base_;
  // A load may change the topology: restart the reconfiguration stream.
  // Old priors become structurally stale (revision < structural_revision_)
  // rather than deleted, so the check is one comparison.
  ++revision_;
  structural_revision_ = revision_;
  edit_log_.clear();
  j.field("ok", true);
  j.field("instances_in_source", instances.size());
  j.field("vertices", current_->num_vertices());
  j.field("edges", current_->num_edges());
  j.field("source", current_->source());
  j.field("sink", current_->sink());
}

void ServeSession::cmd_reconfigure(const std::vector<std::string>& t,
                                   util::JsonWriter& j) {
  require_instance();
  // Every request form — including the --seed / --scale generators — is
  // reduced to one CapacityDelta against the current instance, so the
  // whole mutation surface feeds the delta solve path uniformly.
  graph::FlowNetwork next = *current_;
  bool mutated = false;

  const long long seed = tok_ll(t, "--seed", -1);
  if (seed >= 0) {
    // Deterministic capacity reprogramming of the *base* topology: same
    // seed, same instance, independent of reconfiguration history.
    next = capacity_variants(*base_, 2, static_cast<std::uint64_t>(seed))[1];
    mutated = true;
  }
  if (!tok_string(t, "--scale", "").empty()) {
    const double scale = tok_double(t, "--scale", 0.0);
    if (!(scale > 0.0)) throw std::runtime_error("--scale must be positive");
    next = next.transform_capacities([scale](double c) { return c * scale; });
    mutated = true;
  }
  const std::string edits_spec = tok_string(t, "--edits", "");
  if (!edits_spec.empty()) {
    flow::CapacityDelta d;
    d.edits = parse_edit_list(edits_spec);
    d.apply(next); // validates indices and capacities
    mutated = true;
  }
  if (tok_ll(t, "--edge", -1) >= 0)
    // The single-edge alias was removed after its one-release deprecation
    // window; point old clients at the structured form.
    throw std::runtime_error(
        "--edge I --capacity C was removed; use --edits I:C[,I:C...]");
  if (!mutated)
    throw std::runtime_error(
        "reconfigure needs --edits I:C[,I:C...], --seed K, or --scale F");

  // Normalized diff current -> next (old capacities recorded): what the
  // log carries is independent of which request form produced it.
  flow::CapacityDelta delta = flow::delta_between(*current_, next);
  current_ = std::move(next);
  ++revision_;
  edit_log_.emplace_back(revision_, delta.edits);
  if (edit_log_.size() > kEditLogCap)
    edit_log_.erase(edit_log_.begin(),
                    edit_log_.begin() +
                        static_cast<long>(edit_log_.size() - kEditLogCap));

  j.field("ok", true);
  j.field("vertices", current_->num_vertices());
  j.field("edges", current_->num_edges());
  j.field("max_capacity", current_->max_capacity());
  j.field("edits_applied", delta.edits.size());
  j.field("revision", revision_);
}

void ServeSession::cmd_solve(const std::vector<std::string>& t,
                             util::JsonWriter& j) {
  const graph::FlowNetwork& net = require_instance();
  const util::CancelToken token = request_token(t);

  const long long shards = tok_ll(t, "--shards", 0);
  if (shards >= 2) {
    // Sharded decomposition solve of the loaded instance (DESIGN.md
    // "Sharded solve"). Runs outside the bank/prior machinery on purpose:
    // the region subproblems are throwaway networks with no reuse state
    // worth pooling, and the exact result is not a valid warm prior for the
    // per-solver delta path (different backend name, different metrics).
    ShardOptions so;
    so.shards = static_cast<int>(std::min<long long>(shards, 1 << 20));
    so.region_solver = tok_string(t, "--region-solver", "dinic");
    so.num_threads = static_cast<int>(tok_ll(t, "--threads", 0));
    so.deterministic = engine_.options().deterministic;
    const ShardedSolver solver(so);
    ShardReport rep;
    const flow::MaxFlowResult r =
        solver.solve_csr(graph::CsrGraph::from_network(net), &rep, token);
    j.field("ok", true);
    j.field("solver", "sharded");
    j.field("region_solver", so.region_solver);
    j.field("flow", r.flow_value);
    j.key("shards").begin_object();
    j.field("regions", rep.regions);
    j.field("cut_arcs", static_cast<long long>(rep.cut_arcs));
    j.field("cut_capacity", rep.cut_capacity);
    j.field("upper_bound", rep.upper_bound);
    j.field("stitched_value", rep.stitched_value);
    j.field("refined_added", rep.refined_added);
    j.field("threads", rep.threads_used);
    j.field("region_retries", rep.region_retries);
    j.field("region_direct_solves", rep.region_direct_solves);
    j.end_object();
    return;
  }

  const std::string name =
      tok_string(t, "--solver", engine_.options().default_solver);
  ServeEngine::Bank& b = engine_.bank(name);

  BatchOptions bo;
  bo.solver = name;
  bo.validate = tok_flag(t, "--check");
  bo.cancel = token;

  // Delta routing: ride ISolver::solve_delta when the backend is
  // incremental, the session holds a usable prior for it (same loaded
  // instance, log reaches back to its revision), and the client did not
  // force --scratch. The composed delta is exactly the edits since that
  // prior solved; an empty delta (re-solve without reconfigure) rides the
  // path too — it is the cheapest case.
  bool delta_path = false;
  flow::CapacityDelta delta;
  const auto prior_it = priors_.find(name);
  if (!tok_flag(t, "--scratch") && prior_it != priors_.end() &&
      prior_it->second.revision >= structural_revision_ &&
      b.solver->capabilities().incremental)
    delta_path = compose_delta_since(prior_it->second.revision, delta);

  // Either path runs on the calling session's thread, against the bank's
  // shared solver — so every session's solves feed (and draw from) the same
  // per-pattern pool.
  BatchReport report;
  if (delta_path) {
    report = report_of(
        BatchEngine(bo).run_delta(net, delta, prior_it->second.result,
                                  b.solver));
  } else {
    const std::vector<graph::FlowNetwork> one{net};
    report = BatchEngine(bo).run(one, b.solver, 1);
  }
  engine_.absorb(b, report);
  absorb_session(report);
  const InstanceOutcome* out = &report.outcomes.front();

  // Degradation ladder, analog rung: a *retryable* analog failure
  // (divergence, convergence loss, injected fault) is retried once through
  // the exact digital fallback bank before the client sees an error. The
  // rung never fires for a cancelled/expired request — the client asked for
  // the abandonment it got — and the retry runs under the same token, so
  // the fallback still honours the request deadline. The attempt is
  // counted (fallback_analog_digital) whether or not it rescues the solve.
  const std::string& fb_name = engine_.options().fallback_solver;
  std::string served_by = name;
  BatchReport fb_report;
  if (!out->ok && out->error_info.retryable && !token.cancelled() &&
      b.solver->capabilities().analog && !fb_name.empty() && fb_name != name) {
    ServeEngine::Bank& fb = engine_.bank(fb_name);
    BatchOptions fbo;
    fbo.solver = fb_name;
    fbo.validate = bo.validate;
    fbo.cancel = token;
    const std::vector<graph::FlowNetwork> one{net};
    fb_report = BatchEngine(fbo).run(one, fb.solver, 1);
    fb_report.metrics.fallback_analog_digital = 1;
    engine_.absorb(fb, fb_report);
    absorb_session(fb_report);
    if (fb_report.outcomes.front().ok) {
      out = &fb_report.outcomes.front();
      served_by = fb_name;
    }
  }

  if (!out->ok) {
    ErrorInfo info = out->error_info;
    if (info.message.empty()) info.message = out->error;
    throw ServeRequestError(std::move(info));
  }
  priors_[served_by] = Prior{out->result, revision_};

  j.field("ok", true);
  j.field("solver", served_by);
  j.field("fallback", served_by != name);
  j.field("delta", delta_path);
  j.field("flow", out->result.flow_value);
  j.key("telemetry").begin_object();
  j.field("ms", out->seconds * 1e3);
  j.field("warm_started", out->result.metrics.warm_started);
  j.key("metrics");
  write_metrics_json(j, out->result.metrics);
  if (b.pool) {
    j.key("pool");
    write_pool_json(j, *b.pool);
  }
  j.end_object();
}

void ServeSession::cmd_batch(const std::vector<std::string>& t,
                             util::JsonWriter& j) {
  const std::string spec = tok_string(t, "--spec", "");
  if (spec.empty()) throw std::runtime_error("batch needs --spec");
  const std::string name =
      tok_string(t, "--solver", engine_.options().default_solver);
  ServeEngine::Bank& b = engine_.bank(name);

  BatchOptions bo;
  bo.solver = name;
  bo.validate = tok_flag(t, "--check");
  bo.deterministic = engine_.options().deterministic;
  bo.num_threads = engine_.workers_per_bank();
  bo.cancel = request_token(t);
  const std::vector<graph::FlowNetwork> instances = load_batch(spec);

  // --delta: replay the batch as a reconfiguration stream — instance 0
  // solves from scratch, instance k re-solves incrementally from k-1's
  // result across their capacity diff. Requires every instance to share
  // one topology (delta_between throws otherwise); inherently sequential.
  const bool delta_stream = tok_flag(t, "--delta");
  BatchReport report;
  if (delta_stream) {
    std::vector<flow::CapacityDelta> deltas;
    deltas.reserve(instances.size() > 0 ? instances.size() - 1 : 0);
    for (size_t k = 1; k < instances.size(); ++k)
      deltas.push_back(flow::delta_between(instances[k - 1], instances[k]));
    report = BatchEngine(bo).run_delta(instances.front(), deltas, b.solver);
  } else {
    report = BatchEngine(bo).run(instances, b.solver,
                                 engine_.workers_per_bank());
  }
  engine_.absorb(b, report);
  absorb_session(report);

  j.field("ok", true);
  j.field("solver", name);
  j.field("batch", spec);
  j.field("delta", delta_stream);
  j.field("instances", report.outcomes.size());
  j.field("failed", report.failed);
  j.field("total_flow", report.total_flow);
  j.key("telemetry").begin_object();
  j.field("threads", report.threads_used);
  j.field("wall_ms", report.wall_seconds * 1e3);
  j.field("warm_started_instances", report.warm_started_instances);
  j.key("metrics");
  write_metrics_json(j, report.metrics);
  if (b.pool) {
    j.key("pool");
    write_pool_json(j, *b.pool);
  }
  j.end_object();
}

void ServeSession::cmd_sweep(const std::vector<std::string>& t,
                             util::JsonWriter& j) {
  const graph::FlowNetwork& net = require_instance();
  const int points = static_cast<int>(tok_ll(t, "--points", 8));
  if (points < 1) throw std::runtime_error("--points must be >= 1");
  const double vmax = tok_double(t, "--vmax", 10.0);
  if (!(vmax > 0.0)) throw std::runtime_error("--vmax must be positive");

  // The substrate mapping the warm DC adapters use: topology-only MNA
  // pattern, so reconfigured capacities keep hitting the sweep pool. The
  // pool and ordering cache are shared across sessions; results stay
  // bit-identical to a cold run regardless of which session fed the pool
  // (DESIGN.md "Serving architecture").
  analog::MaxFlowCircuit c =
      analog::AnalogMaxFlowSolver(*builtin_analog_options("analog_dc_warm"))
          .map(net);
  sim::DcOptions dc_opt;
  dc_opt.ordering_cache = engine_.sweep_ordering_;
  dc_opt.cancel = request_token(t);
  sim::QuasiStaticSweep sweep(c.netlist, c.vflow_source, dc_opt,
                              engine_.sweep_pool_);
  // Ramp inside the nontrivial region (no zero point): the first point is
  // a real LCP search, which is exactly what the pooled seed collapses.
  std::vector<double> values(points);
  for (int i = 0; i < points; ++i) values[i] = vmax * (i + 1) / points;
  const sim::SweepResult r =
      sweep.run(values, {sim::Probe::source_current(c.vflow_source, "Iflow")});
  const flow::SolveMetrics m = sweep_as_metrics(r.stats);
  ++sweeps_;
  sweep_metrics_ += m;
  {
    const std::lock_guard<std::mutex> lock(engine_.telemetry_mutex_);
    ++engine_.sweeps_;
    engine_.sweep_metrics_ += m;
  }

  const double iflow = r.trajectory.back().front();
  j.field("ok", true);
  j.field("points", points);
  j.field("vmax", vmax);
  j.field("flow", c.quantizer.to_flow(c.flow_value_volts_from_iflow(iflow)));
  j.field("breakpoints", r.breakpoints.size());
  j.key("telemetry").begin_object();
  j.field("warm_started", r.stats.warm_started);
  j.field("dc_iterations", r.stats.dc_iterations);
  j.field("warm_iterations", r.stats.warm_iterations);
  j.field("cold_iterations", r.stats.cold_iterations);
  j.field("full_factors", r.stats.full_factors);
  j.field("refactors", r.stats.refactors);
  j.field("pool_hits", r.stats.pool_hits);
  j.field("pool_misses", r.stats.pool_misses);
  j.field("pool_evictions", r.stats.pool_evictions);
  j.key("pool");
  write_pool_json(j, *engine_.sweep_pool_);
  j.end_object();
}

void ServeSession::cmd_mincut(const std::vector<std::string>& t,
                              util::JsonWriter& j) {
  const graph::FlowNetwork& net = require_instance();
  mincut::DualCircuitOptions opt;
  opt.ordering_cache = engine_.mincut_ordering_;
  opt.reuse_pool = engine_.mincut_pool_;
  opt.cancel = request_token(t);
  const mincut::AnalogMinCutResult r = mincut::solve_mincut_dual(net, opt);
  const flow::SolveMetrics m = mincut_as_metrics(r);
  ++mincuts_;
  mincut_metrics_ += m;
  {
    const std::lock_guard<std::mutex> lock(engine_.telemetry_mutex_);
    ++engine_.mincuts_;
    engine_.mincut_metrics_ += m;
  }

  double partition_cut = 0.0;
  for (const graph::Edge& e : net.edges())
    if (r.side[e.from] && !r.side[e.to]) partition_cut += e.capacity;

  j.field("ok", true);
  j.field("cut_value", partition_cut);
  j.field("objective", r.cut_value);
  j.field("flow_recovered", r.flow_value);
  j.key("telemetry").begin_object();
  j.field("warm_started", r.warm_started);
  j.field("dc_iterations", r.dc_iterations);
  j.field("warm_iterations", r.warm_iterations);
  j.field("cold_iterations", r.cold_iterations);
  j.field("pool_hits", r.pool_hits);
  j.field("pool_misses", r.pool_misses);
  j.field("pool_evictions", r.pool_evictions);
  j.key("pool");
  write_pool_json(j, *engine_.mincut_pool_);
  j.end_object();
}

void ServeSession::cmd_deadline(const std::vector<std::string>& t,
                                util::JsonWriter& j) {
  const long long ms = tok_ll(t, "--ms", -1);
  if (ms < 0)
    throw std::runtime_error("deadline needs --ms N (0 clears the default)");
  deadline_ms_ = ms;
  j.field("ok", true);
  j.field("deadline_ms", deadline_ms_);
}

void ServeSession::cmd_session(util::JsonWriter& j) {
  j.field("ok", true);
  j.field("requests", requests_);
  j.field("solves", solves_);
  j.field("failed", failed_);
  j.field("sweeps", sweeps_);
  j.field("mincuts", mincuts_);
  j.field("deadline_ms", deadline_ms_);
  j.key("instance").begin_object();
  j.field("loaded", current_.has_value());
  if (current_) {
    j.field("vertices", current_->num_vertices());
    j.field("edges", current_->num_edges());
    j.field("revision", revision_);
  }
  j.end_object();
  j.key("telemetry").begin_object();
  j.field("wall_ms", seconds_ * 1e3);
  j.key("solve_metrics");
  write_metrics_json(j, solve_metrics_);
  j.key("sweep_metrics");
  write_metrics_json(j, sweep_metrics_);
  j.key("mincut_metrics");
  write_metrics_json(j, mincut_metrics_);
  j.end_object();
}

} // namespace aflow::core

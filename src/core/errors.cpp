#include "core/errors.hpp"

#include <new>

#include "sim/transient.hpp"
#include "util/cancel.hpp"

namespace aflow::core {

ErrorInfo classify_error(const std::exception& e) {
  if (const auto* serve = dynamic_cast<const ServeRequestError*>(&e))
    return serve->info();

  ErrorInfo info;
  info.message = e.what();

  if (const auto* cancelled = dynamic_cast<const util::CancelledError*>(&e)) {
    info.code = cancelled->reason() == util::CancelReason::kDeadline
                    ? "deadline_exceeded"
                    : "cancelled";
    info.retryable = true;
    return info;
  }
  if (const auto* div = dynamic_cast<const sim::DivergenceError*>(&e)) {
    info.code = "divergence";
    info.retryable = true;
    const sim::DivergenceError::Diagnosis& d = div->diagnosis();
    if (!d.probe_label.empty())
      info.str_fields.emplace_back("probe", d.probe_label);
    info.num_fields.emplace_back("probe_index",
                                 static_cast<double>(d.probe_index));
    info.num_fields.emplace_back("node", static_cast<double>(d.node));
    info.num_fields.emplace_back("step", static_cast<double>(d.step));
    info.num_fields.emplace_back("time", d.time);
    info.num_fields.emplace_back("dt", d.dt);
    info.num_fields.emplace_back("value", d.value);
    info.num_fields.emplace_back("growth_per_step", d.growth_per_step);
    return info;
  }
  if (dynamic_cast<const sim::ConvergenceError*>(&e)) {
    info.code = "convergence";
    info.retryable = true;
    return info;
  }
  if (dynamic_cast<const std::bad_alloc*>(&e)) {
    info.code = "resource_exhausted";
    info.retryable = true;
    if (info.message.empty()) info.message = "allocation failed";
    return info;
  }
  if (dynamic_cast<const std::invalid_argument*>(&e)) {
    info.code = "invalid_argument";
    info.retryable = false;
    return info;
  }
  if (info.message.rfind("injected fault", 0) == 0) {
    info.code = "fault_injected";
    info.retryable = true;
    return info;
  }
  info.code = "internal";
  info.retryable = false;
  return info;
}

void write_error_info(util::JsonWriter& j, const ErrorInfo& info) {
  j.key("error_info").begin_object();
  j.field("code", info.code);
  j.field("retryable", info.retryable);
  j.field("message", info.message);
  for (const auto& [k, v] : info.str_fields) j.field(k, v);
  for (const auto& [k, v] : info.num_fields) j.field(k, v);
  j.end_object();
}

} // namespace aflow::core

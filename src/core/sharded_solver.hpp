// Sharded solve of one huge instance (DESIGN.md "Sharded solve"):
// k-way region partition -> parallel region solves through the BatchEngine
// worker pool -> boundary stitch -> conservation repair -> exact refinement
// on the full residual, with a valid optimality bound reported at every
// stage. The returned flow value is exactly the max flow: the refinement
// pass augments the stitched feasible flow to maximality regardless of how
// good the stitch was, so partition quality only moves work between the
// parallel region stage and the sequential refinement stage, never
// correctness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "graph/csr.hpp"

namespace aflow::core {

struct ShardOptions {
  /// Region count k; clamped to the vertex count. Below 2 the solve
  /// degenerates to a direct residual solve (no partition machinery).
  int shards = 4;
  /// Registry backend for the region subproblems. Must be exact and
  /// non-analog (region solves feed an exactness-preserving stitch; an
  /// approximate region flow would push its error into refinement work, and
  /// the analog adapters' crossbar sizing is not meant for shard-scale
  /// subproblems).
  std::string region_solver = "dinic";
  /// Worker threads for region solves; 0 picks hardware concurrency.
  int num_threads = 0;
  /// In-order single-thread region solves (clean traces; results are
  /// bit-identical either way since regions write disjoint slots).
  bool deterministic = false;
  /// Partition seed (arch::partition_regions).
  std::uint64_t seed = 1;
  /// Degradation ladder, region rung: a failed (or fault-injected) region
  /// solve is retried up to this many times through the region backend; if
  /// every retry fails too, the region is re-solved directly on the calling
  /// thread with the built-in exact solver. Both recoveries are reported
  /// (ShardReport::region_retries / region_direct_solves and the
  /// fallback_region_* SolveMetrics counters); only when the direct rung
  /// itself fails does the solve throw.
  int region_retries = 1;
};

/// Stage-by-stage telemetry of one sharded solve. upper_bound >= flow_value
/// >= stitched_value always; flow_value == the direct solver's value.
struct ShardReport {
  int regions = 0;
  std::vector<int> region_vertices; // per-region vertex counts
  std::int64_t cut_arcs = 0;
  double cut_capacity = 0.0;
  /// Pre-refinement optimality bound: min(trivial terminal bound, max flow
  /// of the region-contracted graph). Contraction only relaxes
  /// conservation, so this can never undershoot the true max flow.
  double upper_bound = 0.0;
  double stitched_value = 0.0; // feasible flow value after stitch + repair
  double refined_added = 0.0;  // flow added by the exact refinement pass
  double flow_value = 0.0;
  long long region_operations = 0;
  long long repair_operations = 0;
  long long refine_operations = 0;
  double partition_seconds = 0.0;
  double region_seconds = 0.0;
  double stitch_seconds = 0.0;
  double refine_seconds = 0.0;
  int threads_used = 1;
  /// Degradation-ladder traffic (see ShardOptions::region_retries).
  int region_retries = 0;
  int region_direct_solves = 0;
};

class ShardedSolver final : public ISolver {
 public:
  explicit ShardedSolver(ShardOptions options = {});

  const std::string& name() const override { return name_; }
  SolverCapabilities capabilities() const override;

  using ISolver::solve;

  /// FlowNetwork entry (ISolver contract): snapshots into a CsrGraph and
  /// runs solve_csr. Edge order is preserved, so edge_flow lines up.
  flow::MaxFlowResult solve(const graph::FlowNetwork& net,
                            const CancelToken& cancel) const override;

  /// The native huge-instance entry: solves a CSR view in place (streamed
  /// from disk via graph::read_dimacs_stream) without ever materialising
  /// the full FlowNetwork. Throws std::invalid_argument when the region
  /// backend is unknown, approximate, or analog. `cancel` is checked at
  /// every stage boundary and threaded into the region solves, the
  /// conservation repair, and the refinement pass.
  flow::MaxFlowResult solve_csr(const graph::CsrGraph& g,
                                ShardReport* report = nullptr,
                                const CancelToken& cancel = {}) const;

  const ShardOptions& options() const { return options_; }

 private:
  std::string name_ = "sharded";
  ShardOptions options_;
};

} // namespace aflow::core

// The unified solver interface of the engine layer: every max-flow backend
// (classical CPU algorithms and the analog substrate model) is exposed as an
// ISolver so that benches, examples, the CLI, and the batch engine can pick
// backends by name instead of hard-wiring call sites.
#pragma once

#include <memory>
#include <string>

#include "flow/delta.hpp"
#include "flow/maxflow.hpp"
#include "graph/network.hpp"
#include "util/cancel.hpp"

namespace aflow::core {

/// Deadline- and flag-based cooperative cancellation, threaded through
/// every ISolver::solve. Defined in util/ (the flow/ and sim/ inner loops
/// check it and must not depend on core/); aliased here as the engine-layer
/// name.
using CancelToken = util::CancelToken;

/// Static properties a caller can dispatch on without knowing the backend.
struct SolverCapabilities {
  /// Produces the exact (integral-capacity) maximum flow, as opposed to the
  /// analog substrate's approximation.
  bool exact = true;
  /// Models the paper's analog substrate (quantization, device physics).
  bool analog = false;
  /// Same input always yields the same result (all current backends qualify;
  /// future stochastic backends may not).
  bool deterministic = true;
  /// MaxFlowResult::operations carries a meaningful work counter.
  bool reports_operations = true;
  /// solve_delta has a real incremental fast path: small capacity edits are
  /// re-solved in O(changed region) by carrying the prior solution, instead
  /// of the default from-scratch fallback.
  bool incremental = false;
  /// Solves by k-way region decomposition with parallel region solves and
  /// an exact refinement pass (core::ShardedSolver) — the backend callers
  /// should route one huge instance through, rather than a batch of small
  /// ones.
  bool sharded = false;
};

class ISolver {
 public:
  virtual ~ISolver() = default;

  /// Registry name, e.g. "dinic" or "analog_dc".
  virtual const std::string& name() const = 0;
  virtual SolverCapabilities capabilities() const = 0;

  /// Solves one instance. Must be safe to call concurrently from multiple
  /// threads on distinct instances (all built-in backends are stateless).
  /// `cancel` makes long solves cooperatively cancellable: backends check
  /// it at iteration boundaries and unwind with util::CancelledError when
  /// it trips. Implementations that override the cancellable entry should
  /// add `using ISolver::solve;` to keep the convenience overload visible.
  virtual flow::MaxFlowResult solve(const graph::FlowNetwork& net,
                                    const CancelToken& cancel) const = 0;

  /// Convenience entry with a never-cancelling token.
  flow::MaxFlowResult solve(const graph::FlowNetwork& net) const {
    return solve(net, CancelToken{});
  }

  /// Incremental re-solve: `net` is the post-edit instance, `delta` the
  /// capacity edits that produced it, `prior` the solution of the pre-edit
  /// instance. Backends with capabilities().incremental carry `prior` across
  /// the edits (residual repair for the classical solvers, operating-point
  /// warm re-convergence for the analog substrate); the default rides the
  /// from-scratch solve() and counts a metrics.delta_fallbacks. Either way
  /// the returned flow value matches a from-scratch solve of `net`.
  virtual flow::MaxFlowResult solve_delta(const graph::FlowNetwork& net,
                                          const flow::CapacityDelta& delta,
                                          const flow::MaxFlowResult& prior,
                                          const CancelToken& cancel) const {
    (void)prior;
    flow::MaxFlowResult r = solve(net, cancel);
    r.metrics.delta_fallbacks += 1;
    r.metrics.edges_touched += delta.distinct_edges();
    return r;
  }

  /// Convenience entry with a never-cancelling token.
  flow::MaxFlowResult solve_delta(const graph::FlowNetwork& net,
                                  const flow::CapacityDelta& delta,
                                  const flow::MaxFlowResult& prior) const {
    return solve_delta(net, delta, prior, CancelToken{});
  }
};

using SolverPtr = std::shared_ptr<const ISolver>;

} // namespace aflow::core

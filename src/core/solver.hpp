// The unified solver interface of the engine layer: every max-flow backend
// (classical CPU algorithms and the analog substrate model) is exposed as an
// ISolver so that benches, examples, the CLI, and the batch engine can pick
// backends by name instead of hard-wiring call sites.
#pragma once

#include <memory>
#include <string>

#include "flow/maxflow.hpp"
#include "graph/network.hpp"

namespace aflow::core {

/// Static properties a caller can dispatch on without knowing the backend.
struct SolverCapabilities {
  /// Produces the exact (integral-capacity) maximum flow, as opposed to the
  /// analog substrate's approximation.
  bool exact = true;
  /// Models the paper's analog substrate (quantization, device physics).
  bool analog = false;
  /// Same input always yields the same result (all current backends qualify;
  /// future stochastic backends may not).
  bool deterministic = true;
  /// MaxFlowResult::operations carries a meaningful work counter.
  bool reports_operations = true;
};

class ISolver {
 public:
  virtual ~ISolver() = default;

  /// Registry name, e.g. "dinic" or "analog_dc".
  virtual const std::string& name() const = 0;
  virtual SolverCapabilities capabilities() const = 0;

  /// Solves one instance. Must be safe to call concurrently from multiple
  /// threads on distinct instances (all built-in backends are stateless).
  virtual flow::MaxFlowResult solve(const graph::FlowNetwork& net) const = 0;
};

using SolverPtr = std::shared_ptr<const ISolver>;

} // namespace aflow::core

#include "core/serve_front.hpp"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "util/event_loop.hpp"
#include "util/fault_injector.hpp"
#include "util/mpsc_queue.hpp"

#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace aflow::core {

#ifdef _WIN32

struct ServeFront::Impl {};
ServeFront::ServeFront(ServeEngine& engine, ServeFrontOptions options)
    : engine_(engine), options_(std::move(options)) {}
ServeFront::~ServeFront() = default;
void ServeFront::start() {
  throw std::runtime_error("ServeFront: sockets are not supported on this "
                           "platform");
}
void ServeFront::run() {}
void ServeFront::stop() {}
int ServeFront::io_thread_count() const { return 0; }
int ServeFront::worker_count() const { return 0; }

#else // POSIX

namespace {

/// One parsed-but-unserved request line. `oversized` marks a frame that
/// violated max_line_bytes: the worker answers it with protocol_error()
/// (text then carries the error message) instead of executing it.
struct PendingLine {
  std::string text;
  bool oversized = false;
};

} // namespace

/// Per-connection state. Everything below `session` is owned exclusively
/// by the connection's I/O loop thread; workers touch only the immutable
/// fields (fd is used by the loop alone, `session` and `loop_index` are
/// const after construction, and the executing/response handshake — at
/// most one work item in flight per connection, posted back through the
/// loop's locked mailbox — guarantees the loop never mutates `session`
/// while a worker is inside it).
struct Conn {
  int fd = -1;
  bool tcp = false;
  size_t loop_index = 0;
  std::shared_ptr<ServeSession> session; // null for rejected connections

  std::string read_buf;
  std::string write_buf;
  size_t write_off = 0;
  std::deque<PendingLine> pending;
  bool executing = false;      // one work item queued or running
  bool discarding = false;     // inside an oversized frame, seeking its \n
  bool reading_paused = false; // backpressure: at pipeline/write-buf limit
  bool hungup = false;         // peer gone; flush nothing, close when idle
  bool done = false;           // quit/shutdown/poison: close once drained
  bool closed = false;
};

namespace {

struct WorkItem {
  std::shared_ptr<Conn> conn;
  std::string line;
  bool oversized = false;
};

struct Response {
  std::shared_ptr<Conn> conn;
  std::string text;
  bool session_done = false;
};

struct IoLoop {
  util::SelfPipe wake;
  std::mutex mail_mutex;
  std::vector<std::shared_ptr<Conn>> incoming; // acceptor -> this loop
  std::vector<Response> responses;             // workers -> this loop
  std::vector<std::shared_ptr<Conn>> conns;    // loop-thread-owned
  std::thread thread;
};

constexpr size_t kNoSlot = static_cast<size_t>(-1);
/// recv() calls per connection per poll cycle: bounds how long one
/// fast-writing client can monopolise its I/O loop.
constexpr int kMaxReadsPerCycle = 16;

} // namespace

struct ServeFront::Impl {
  int unix_fd = -1;
  int tcp_fd = -1;
  std::vector<std::unique_ptr<IoLoop>> loops;
  std::unique_ptr<util::MpscQueue<WorkItem>> queue;
  std::vector<std::thread> workers;

  std::atomic<bool> stop{false};
  /// Loops observe this to close the accept path and stop reading; set by
  /// run() once stop/shutdown is detected.
  std::atomic<bool> stopping{false};
  /// Set after the worker pool is joined: loops may now flush-and-exit.
  std::atomic<bool> workers_done{false};
  std::atomic<size_t> next_loop{0};
  int worker_count = 0;

  std::mutex run_mutex;
  std::condition_variable run_cv;
};

ServeFront::ServeFront(ServeEngine& engine, ServeFrontOptions options)
    : impl_(std::make_unique<Impl>()), engine_(engine),
      options_(std::move(options)) {
  if (options_.io_threads < 1) options_.io_threads = 1;
  if (options_.max_pipeline < 1) options_.max_pipeline = 1;
  if (options_.max_write_buffer_bytes < 1) options_.max_write_buffer_bytes = 1;
}

ServeFront::~ServeFront() {
  stop();
  // run() joins everything before returning; if it never ran, there is
  // nothing to join — just release the listeners start() may have opened.
  if (impl_->unix_fd >= 0) {
    ::close(impl_->unix_fd);
    ::unlink(options_.socket_path.c_str());
  }
  if (impl_->tcp_fd >= 0) ::close(impl_->tcp_fd);
}

void ServeFront::stop() {
  impl_->stop.store(true);
  impl_->run_cv.notify_all();
}

int ServeFront::io_thread_count() const {
  return static_cast<int>(impl_->loops.size());
}

int ServeFront::worker_count() const { return impl_->worker_count; }

void ServeFront::start() {
  if (options_.socket_path.empty() && options_.tcp_address.empty())
    throw std::runtime_error(
        "ServeFront: configure socket_path and/or tcp_address");
  if (!options_.socket_path.empty())
    impl_->unix_fd =
        util::listen_unix(options_.socket_path, options_.listen_backlog);
  if (!options_.tcp_address.empty()) {
    try {
      impl_->tcp_fd = util::listen_tcp(options_.tcp_address,
                                       options_.listen_backlog, &tcp_port_);
    } catch (...) {
      if (impl_->unix_fd >= 0) {
        ::close(impl_->unix_fd);
        impl_->unix_fd = -1;
        ::unlink(options_.socket_path.c_str());
      }
      throw;
    }
  }
}

namespace {

/// Classes of front work, factored free of ServeFront so the loop body
/// reads top-down. All methods run on the owning loop's thread.
class FrontRuntime {
 public:
  FrontRuntime(ServeEngine& engine, const ServeFrontOptions& options,
               FrontTelemetry& telemetry, ServeFront::Impl& impl)
      : engine_(engine), options_(options), telemetry_(telemetry),
        impl_(impl),
        oversized_error_("oversized frame: request line exceeds " +
                         std::to_string(options.max_line_bytes) + " bytes") {}

  void loop_main(size_t index);
  void worker_main();

 private:
  void accept_all(size_t my_index, int lfd, bool tcp);
  void adopt(IoLoop& loop, std::shared_ptr<Conn> conn);
  void handle_response(IoLoop& loop, Response& r);
  void append_response(Conn& c, const std::string& text);
  void ingest(const std::shared_ptr<Conn>& conn, const char* data, size_t n);
  void read_conn(const std::shared_ptr<Conn>& conn);
  void flush_conn(Conn& c);
  void dispatch(const std::shared_ptr<Conn>& conn);
  void update_backpressure(Conn& c);
  void hangup(Conn& c);
  void close_conn(Conn& c);
  size_t write_pending(const Conn& c) const {
    return c.write_buf.size() - c.write_off;
  }

  ServeEngine& engine_;
  const ServeFrontOptions& options_;
  FrontTelemetry& telemetry_;
  ServeFront::Impl& impl_;
  const std::string oversized_error_;
};

void FrontRuntime::worker_main() {
  while (std::optional<WorkItem> item = impl_.queue->pop()) {
    // Sessions stay single-threaded by contract: the I/O plane schedules
    // at most one item per connection, so no two workers (and never the
    // loop) are inside one session at a time.
    ServeSession& session = *item->conn->session;
    std::string response = item->oversized
                               ? session.protocol_error(item->line)
                               : session.handle(item->line);
    const bool done = session.done();
    IoLoop& loop = *impl_.loops[item->conn->loop_index];
    {
      const std::lock_guard<std::mutex> lock(loop.mail_mutex);
      loop.responses.push_back(
          Response{std::move(item->conn), std::move(response), done});
    }
    loop.wake.notify();
  }
}

void FrontRuntime::loop_main(size_t index) {
  IoLoop& loop = *impl_.loops[index];
  const bool acceptor = index == 0;
  util::Poller poller;
  std::vector<std::shared_ptr<Conn>> incoming;
  std::vector<Response> responses;
  std::vector<size_t> slots;
  using Clock = std::chrono::steady_clock;
  Clock::time_point drain_deadline{};
  bool draining = false;

  for (;;) {
    // -- mailbox: new connections from the acceptor, worker responses.
    incoming.clear();
    responses.clear();
    {
      const std::lock_guard<std::mutex> lock(loop.mail_mutex);
      incoming.swap(loop.incoming);
      responses.swap(loop.responses);
    }
    for (std::shared_ptr<Conn>& conn : incoming) adopt(loop, std::move(conn));
    for (Response& r : responses) handle_response(loop, r);

    const bool stopping = impl_.stopping.load(std::memory_order_acquire);
    const bool workers_done = impl_.workers_done.load(std::memory_order_acquire);
    if (stopping) {
      // No further dispatches: queued-but-unserved requests are dropped,
      // matching the thread-per-connection front's abandon-on-shutdown.
      for (const std::shared_ptr<Conn>& conn : loop.conns)
        conn->pending.clear();
      if (workers_done && !draining) {
        draining = true;
        drain_deadline = Clock::now() + std::chrono::milliseconds(
                                            options_.drain_grace_ms);
      }
    }

    // -- close sweep: a connection leaves once no worker holds it and it
    // has nothing (or no way) left to deliver.
    const bool grace_over = draining && Clock::now() >= drain_deadline;
    for (auto it = loop.conns.begin(); it != loop.conns.end();) {
      Conn& c = **it;
      const bool flushed = write_pending(c) == 0;
      if (!c.closed && !c.executing &&
          (c.hungup || (c.done && flushed) ||
           (draining && (flushed || grace_over))))
        close_conn(c);
      it = c.closed ? loop.conns.erase(it) : std::next(it);
    }
    if (stopping && workers_done && loop.conns.empty()) break;

    // -- poll set.
    poller.clear();
    slots.clear();
    const size_t wake_slot = poller.add(loop.wake.read_fd(), POLLIN);
    size_t unix_slot = kNoSlot, tcp_slot = kNoSlot;
    if (acceptor && !stopping) {
      if (impl_.unix_fd >= 0) unix_slot = poller.add(impl_.unix_fd, POLLIN);
      if (impl_.tcp_fd >= 0) tcp_slot = poller.add(impl_.tcp_fd, POLLIN);
    }
    for (const std::shared_ptr<Conn>& conn : loop.conns) {
      short events = POLLRDHUP; // hangup detection stays on through pauses
      if (!conn->hungup && !conn->done && !conn->reading_paused && !stopping)
        events |= POLLIN;
      if (write_pending(*conn) > 0 && !conn->hungup) events |= POLLOUT;
      slots.push_back(poller.add(conn->fd, events));
    }

    poller.wait(options_.poll_interval_ms);

    // -- readiness.
    if (poller.revents(wake_slot) & POLLIN) loop.wake.drain();
    if (unix_slot != kNoSlot && (poller.revents(unix_slot) & POLLIN))
      accept_all(index, impl_.unix_fd, /*tcp=*/false);
    if (tcp_slot != kNoSlot && (poller.revents(tcp_slot) & POLLIN))
      accept_all(index, impl_.tcp_fd, /*tcp=*/true);
    for (size_t k = 0; k < slots.size(); ++k) {
      const std::shared_ptr<Conn>& conn = loop.conns[k];
      if (conn->closed) continue;
      const short re = poller.revents(slots[k]);
      if (re & POLLIN) {
        // Read before honouring a hangup bit: a client that pipelined
        // requests and closed straight after still gets them parsed (the
        // EOF surfaces as recv()==0 at the end of the data).
        read_conn(conn);
      } else if (re & (POLLRDHUP | POLLHUP | POLLERR)) {
        hangup(*conn);
      }
      if (!conn->closed && !conn->hungup && (re & POLLOUT)) {
        flush_conn(*conn);
        // A drained write buffer may clear the pause even with no request
        // in flight (nothing else re-evaluates it until the next response).
        update_backpressure(*conn);
      }
    }
  }

  // Loop exit: every connection was closed by the sweep above.
}

void FrontRuntime::adopt(IoLoop& loop, std::shared_ptr<Conn> conn) {
  loop.conns.push_back(std::move(conn));
}

void FrontRuntime::accept_all(size_t my_index, int lfd, bool tcp) {
  for (;;) {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Anything else — EAGAIN (drained), ECONNABORTED, or fd/memory
      // pressure (EMFILE/ENFILE/ENOMEM) — waits for the next poll cycle;
      // the poll interval paces the retry so an exhausted fd table does
      // not busy-loop, and a broken listener keeps erroring harmlessly
      // until shutdown.
      break;
    }
    try {
      util::set_nonblocking(fd);
    } catch (...) {
      ::close(fd);
      continue;
    }
    if (tcp) util::set_tcp_nodelay(fd);

    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->tcp = tcp;
    std::shared_ptr<ServeSession> session = engine_.open_session();
    if (!session) {
      // Beyond max_sessions: one rejection line, then close-after-flush.
      // The refused client failed, the process did not.
      telemetry_.rejected.fetch_add(1);
      append_response(*conn, engine_.reject_line());
      conn->done = true;
    } else {
      (tcp ? telemetry_.accepted_tcp : telemetry_.accepted_unix).fetch_add(1);
      conn->session = std::move(session);
    }
    telemetry_.open_connections.fetch_add(1);

    const size_t target = impl_.next_loop.fetch_add(1) % impl_.loops.size();
    conn->loop_index = target;
    if (target == my_index) {
      IoLoop& loop = *impl_.loops[target];
      flush_conn(*conn); // rejection lines usually leave immediately
      if (!conn->closed) adopt(loop, std::move(conn));
      continue;
    }
    IoLoop& other = *impl_.loops[target];
    {
      const std::lock_guard<std::mutex> lock(other.mail_mutex);
      other.incoming.push_back(std::move(conn));
    }
    other.wake.notify();
  }
}

void FrontRuntime::handle_response(IoLoop& loop, Response& r) {
  (void)loop;
  Conn& c = *r.conn;
  if (c.closed) return;
  c.executing = false;
  if (!r.text.empty() && !c.hungup && !c.done) append_response(c, r.text);
  if (r.session_done) {
    // quit/shutdown: anything the client pipelined past it is dropped,
    // exactly like the per-thread front breaking out of its read loop.
    c.done = true;
    c.pending.clear();
  }
  dispatch(r.conn);
  if (!c.hungup) flush_conn(c);
  // After the flush, not before: a pause decided on the pre-flush buffer
  // size would stick (with no request in flight there may be no later
  // event to clear it) even though the bytes just left for the kernel.
  update_backpressure(c);
}

void FrontRuntime::append_response(Conn& c, const std::string& text) {
  std::string out = text;
  out += '\n';
  // Chaos hook: simulate the transport dying mid-response (a short write
  // followed by connection loss) through the buffered write path. Clients
  // must treat a line without its newline as a dead session, never as a
  // parseable response.
  if (util::FaultInjector::instance().armed() &&
      util::FaultInjector::instance().take(
          "serve.write", util::FaultInjector::Action::kShort)) {
    out.resize(out.size() / 2);
    telemetry_.short_writes.fetch_add(1);
    c.write_buf += out;
    c.done = true; // close once the poisoned half-line drains
    c.pending.clear();
    return;
  }
  c.write_buf += out;
  telemetry_.responses_written.fetch_add(1);
}

void FrontRuntime::ingest(const std::shared_ptr<Conn>& conn, const char* data,
                          size_t n) {
  Conn& c = *conn;
  size_t offset = 0;
  if (c.discarding) {
    // Inside an oversized frame (already answered): drop bytes without
    // buffering them — the frame limit must bound memory even against a
    // client that streams forever without a newline — and resync at the
    // frame's newline.
    const void* nl = std::memchr(data, '\n', n);
    if (!nl) return;
    offset = static_cast<size_t>(static_cast<const char*>(nl) - data) + 1;
    c.discarding = false;
  }
  c.read_buf.append(data + offset, n - offset);

  size_t start = 0;
  for (size_t nl; (nl = c.read_buf.find('\n', start)) != std::string::npos;) {
    std::string line = c.read_buf.substr(start, nl - start);
    start = nl + 1;
    // A complete line can exceed the limit too (its newline arrived in the
    // same chunk): reject it instead of serving it. The rejection rides
    // the same per-session queue as real requests, so its response keeps
    // its place in the session's response order.
    if (line.size() > options_.max_line_bytes) {
      telemetry_.oversized_frames.fetch_add(1);
      c.pending.push_back(PendingLine{oversized_error_, true});
    } else {
      c.pending.push_back(PendingLine{std::move(line), false});
    }
  }
  c.read_buf.erase(0, start);

  if (c.read_buf.size() > options_.max_line_bytes) {
    // Oversized frame still awaiting its newline: queue one error answer,
    // drop what we buffered, and discard the rest as it streams in.
    telemetry_.oversized_frames.fetch_add(1);
    c.pending.push_back(PendingLine{oversized_error_, true});
    c.read_buf.clear();
    c.discarding = true;
  }

  dispatch(conn);
  update_backpressure(c);
}

void FrontRuntime::read_conn(const std::shared_ptr<Conn>& conn) {
  Conn& c = *conn;
  char chunk[4096];
  for (int reads = 0; reads < kMaxReadsPerCycle; ++reads) {
    if (c.reading_paused || c.hungup || c.done) break;
    const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
    if (n == 0) {
      // Client closed — possibly mid-line; the partial line is dropped and
      // only this session ends.
      hangup(c);
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (!util::would_block(errno)) hangup(c);
      break;
    }
    ingest(conn, chunk, static_cast<size_t>(n));
  }
}

void FrontRuntime::flush_conn(Conn& c) {
  while (write_pending(c) > 0) {
    const ssize_t n =
        ::send(c.fd, c.write_buf.data() + c.write_off, write_pending(c),
               MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (!util::would_block(errno)) hangup(c);
      return;
    }
    c.write_off += static_cast<size_t>(n);
  }
  c.write_buf.clear();
  c.write_off = 0;
}

void FrontRuntime::dispatch(const std::shared_ptr<Conn>& conn) {
  Conn& c = *conn;
  if (c.executing || c.hungup || c.done || c.pending.empty()) return;
  if (impl_.stopping.load(std::memory_order_acquire)) return;
  PendingLine item = std::move(c.pending.front());
  c.pending.pop_front();
  c.executing = true;
  telemetry_.requests_queued.fetch_add(1);
  // Capacity is sized to max_sessions (one in-flight item per connection),
  // so this never blocks in practice; a false return means the queue was
  // closed for shutdown, where dropping the request is the contract.
  if (!impl_.queue->push(WorkItem{conn, std::move(item.text), item.oversized}))
    c.executing = false;
}

void FrontRuntime::update_backpressure(Conn& c) {
  const bool should_pause =
      c.pending.size() >= static_cast<size_t>(options_.max_pipeline) ||
      write_pending(c) >= options_.max_write_buffer_bytes;
  if (should_pause && !c.reading_paused) {
    c.reading_paused = true;
    telemetry_.backpressure_pauses.fetch_add(1);
  } else if (!should_pause && c.reading_paused) {
    c.reading_paused = false;
  }
}

void FrontRuntime::hangup(Conn& c) {
  if (c.hungup) return;
  c.hungup = true;
  c.pending.clear(); // queued-but-unserved requests are work for nobody
  if (c.executing && c.session) {
    // The client's read side is gone mid-request: trip the session token
    // so the in-flight solve unwinds at its next cancellation point
    // instead of running to completion on a dead socket. This is the
    // always-on replacement for the accept thread's periodic POLLRDHUP
    // sweep. (The session object itself stays alive until the worker
    // posts its response — the close sweep waits for `executing`.)
    c.session->cancel();
    telemetry_.hangup_cancels.fetch_add(1);
  }
}

void FrontRuntime::close_conn(Conn& c) {
  if (c.closed) return;
  c.closed = true;
  c.session.reset(); // frees the max_sessions slot
  ::close(c.fd);
  telemetry_.open_connections.fetch_sub(1);
}

} // namespace

void ServeFront::run() {
  if (impl_->unix_fd < 0 && impl_->tcp_fd < 0)
    throw std::runtime_error("ServeFront::run: call start() first");

  impl_->stopping.store(false);
  impl_->workers_done.store(false);
  impl_->worker_count =
      options_.workers > 0 ? options_.workers : engine_.workers_per_bank();
  if (impl_->worker_count < 1) impl_->worker_count = 1;
  impl_->queue = std::make_unique<util::MpscQueue<WorkItem>>(
      static_cast<size_t>(
          std::max(64, engine_.options().max_sessions + options_.io_threads)));
  impl_->loops.clear();
  for (int i = 0; i < options_.io_threads; ++i)
    impl_->loops.push_back(std::make_unique<IoLoop>());

  FrontRuntime runtime(engine_, options_, telemetry_, *impl_);

  engine_.set_front_stats_provider([this] {
    FrontStatsSnapshot s;
    s.accepted_unix = telemetry_.accepted_unix.load();
    s.accepted_tcp = telemetry_.accepted_tcp.load();
    s.rejected = telemetry_.rejected.load();
    s.open_connections = telemetry_.open_connections.load();
    s.requests_queued = telemetry_.requests_queued.load();
    s.responses_written = telemetry_.responses_written.load();
    s.backpressure_pauses = telemetry_.backpressure_pauses.load();
    s.oversized_frames = telemetry_.oversized_frames.load();
    s.hangup_cancels = telemetry_.hangup_cancels.load();
    s.short_writes = telemetry_.short_writes.load();
    s.io_threads = static_cast<int>(impl_->loops.size());
    s.workers = impl_->worker_count;
    return s;
  });

  for (size_t i = 0; i < impl_->loops.size(); ++i)
    impl_->loops[i]->thread =
        std::thread([&runtime, i] { runtime.loop_main(i); });
  for (int i = 0; i < impl_->worker_count; ++i)
    impl_->workers.emplace_back([&runtime] { runtime.worker_main(); });

  // Coordinator: wait for stop() or a session's `shutdown` request. The
  // poll interval bounds shutdown-detection staleness, same as the loops.
  {
    std::unique_lock<std::mutex> lock(impl_->run_mutex);
    while (!impl_->stop.load() && !engine_.shutdown_requested())
      impl_->run_cv.wait_for(
          lock, std::chrono::milliseconds(options_.poll_interval_ms));
  }

  // Teardown, in dependency order: stop accepting/reading/dispatching,
  // drop queued requests, let in-flight requests finish and post their
  // responses, then let the loops flush what is buffered (bounded by
  // drain_grace_ms) and exit.
  impl_->stopping.store(true, std::memory_order_release);
  for (auto& loop : impl_->loops) loop->wake.notify();
  // close() hands back requests no worker ever popped. Their connections
  // still have `executing` set, and only a response clears it — so post an
  // empty response for each, or the close sweep would wait on them forever
  // and the loops (and this join) would never finish.
  for (WorkItem& item : impl_->queue->close()) {
    IoLoop& loop = *impl_->loops[item.conn->loop_index];
    {
      const std::lock_guard<std::mutex> lock(loop.mail_mutex);
      loop.responses.push_back(
          Response{std::move(item.conn), std::string(), false});
    }
    loop.wake.notify();
  }
  for (std::thread& w : impl_->workers)
    if (w.joinable()) w.join();
  impl_->workers.clear();
  impl_->workers_done.store(true, std::memory_order_release);
  for (auto& loop : impl_->loops) loop->wake.notify();
  for (auto& loop : impl_->loops)
    if (loop->thread.joinable()) loop->thread.join();
  impl_->loops.clear();
  impl_->queue.reset();

  engine_.set_front_stats_provider(nullptr);

  if (impl_->unix_fd >= 0) {
    ::close(impl_->unix_fd);
    impl_->unix_fd = -1;
    ::unlink(options_.socket_path.c_str());
  }
  if (impl_->tcp_fd >= 0) {
    ::close(impl_->tcp_fd);
    impl_->tcp_fd = -1;
  }
}

#endif // _WIN32

} // namespace aflow::core

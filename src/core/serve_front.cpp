#include "core/serve_front.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "util/fault_injector.hpp"

#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace aflow::core {

ServeFront::ServeFront(ServeEngine& engine, ServeFrontOptions options)
    : engine_(engine), options_(std::move(options)) {}

ServeFront::~ServeFront() {
  stop();
  reap_finished(/*join_all=*/true);
#ifndef _WIN32
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
#endif
}

void ServeFront::stop() { stop_.store(true); }

#ifdef _WIN32

void ServeFront::start() {
  throw std::runtime_error("ServeFront: Unix sockets are not supported on "
                           "this platform");
}
void ServeFront::run() {}
void ServeFront::serve_client(int, std::shared_ptr<ServeSession>,
                              std::atomic<bool>*) {}
bool ServeFront::write_line(int, const std::string&) { return false; }
void ServeFront::reap_finished(bool) {}
void ServeFront::sweep_disconnects() {}

#else // POSIX

namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Waits for readability; 0 = timeout, negative = error, positive = ready.
int wait_readable(int fd, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  const int r = ::poll(&p, 1, timeout_ms);
  if (r < 0 && errno == EINTR) return 0;
  return r;
}

} // namespace

// Sends the response plus a newline; false once the client is gone
// (EPIPE/reset — MSG_NOSIGNAL keeps a dead client from killing the process
// with SIGPIPE) or the front is stopping. Waiting for writability in
// poll_interval_ms slices keeps a client that never reads its socket from
// pinning this thread through a shutdown: once stop/shutdown is flagged,
// the half-delivered response is abandoned and the connection closes.
bool ServeFront::write_line(int fd, const std::string& response) {
  std::string out = response;
  out += '\n';
  // Chaos hook: simulate the transport dying mid-response (a short write
  // followed by connection loss). Clients must treat a line without its
  // newline as a dead session, never as a parseable response.
  if (util::FaultInjector::instance().armed() &&
      util::FaultInjector::instance().take("serve.write",
                                           util::FaultInjector::Action::kShort)) {
    ::send(fd, out.data(), out.size() / 2, MSG_NOSIGNAL);
    return false;
  }
  size_t sent = 0;
  while (sent < out.size()) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    const int ready = ::poll(&p, 1, options_.poll_interval_ms);
    if (ready < 0 && errno != EINTR) return false;
    if (ready <= 0) {
      if (stop_.load() || engine_.shutdown_requested()) return false;
      continue;
    }
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void ServeFront::start() {
  if (options_.socket_path.empty())
    throw std::runtime_error("ServeFront: socket_path is required");
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("ServeFront: socket path too long: " +
                             options_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error(errno_message("socket"));
  addr.sun_family = AF_UNIX;
  options_.socket_path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, options_.listen_backlog) < 0) {
    const std::string msg = errno_message("bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(msg);
  }
}

void ServeFront::run() {
  if (listen_fd_ < 0)
    throw std::runtime_error("ServeFront::run: call start() first");

  while (!stop_.load() && !engine_.shutdown_requested()) {
    const int ready = wait_readable(listen_fd_, options_.poll_interval_ms);
    if (ready < 0) break;
    reap_finished(/*join_all=*/false);
    sweep_disconnects();
    if (ready == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      // Transient conditions (a client aborted, fd pressure while other
      // sessions run) must not stop the front; pace the retry so an
      // exhausted fd table does not busy-loop. Anything else means the
      // listener itself is broken.
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK || errno == EMFILE || errno == ENFILE ||
          errno == ENOMEM) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.poll_interval_ms));
        continue;
      }
      break;
    }
    std::shared_ptr<ServeSession> session = engine_.open_session();
    if (!session) {
      // Beyond max_sessions: one rejection line, then hang up. The refused
      // client failed, the process did not.
      rejected_.fetch_add(1);
      write_line(client, engine_.reject_line());
      ::close(client);
      continue;
    }
    accepted_.fetch_add(1);
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    Connection& conn = connections_.emplace_back();
    conn.fd = client;
    conn.session = session;
    conn.thread = std::thread(&ServeFront::serve_client, this, client,
                              std::move(session), &conn.finished);
  }
  // However the loop ended, tell the connection threads to wind down
  // before joining them (a broken listener must not strand live sessions
  // in an unjoinable state).
  stop_.store(true);
  reap_finished(/*join_all=*/true);
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
}

void ServeFront::serve_client(int fd, std::shared_ptr<ServeSession> session,
                              std::atomic<bool>* finished) {
  std::string buf;
  bool discarding = false; // inside an oversized frame, waiting for its \n
  char chunk[4096];
  bool open = true;
  const std::string oversized_error =
      "oversized frame: request line exceeds " +
      std::to_string(options_.max_line_bytes) + " bytes";
  while (open && !session->done() && !stop_.load() &&
         !engine_.shutdown_requested()) {
    const int ready = wait_readable(fd, options_.poll_interval_ms);
    if (ready < 0) break;
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    // n == 0: client closed — possibly mid-line; the partial line is
    // dropped and only this session ends.
    if (n <= 0) break;
    size_t offset = 0;
    if (discarding) {
      // Inside an oversized frame (already answered): drop bytes without
      // buffering them — the frame limit must bound memory even against a
      // client that streams forever without a newline — and resync at the
      // frame's newline.
      const void* nl = std::memchr(chunk, '\n', static_cast<size_t>(n));
      if (!nl) continue;
      offset = static_cast<size_t>(static_cast<const char*>(nl) - chunk) + 1;
      discarding = false;
    }
    buf.append(chunk + offset, static_cast<size_t>(n) - offset);

    size_t start = 0;
    for (size_t nl; (nl = buf.find('\n', start)) != std::string::npos;) {
      std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      // A complete line can exceed the limit too (its newline arrived in
      // the same chunk): reject it instead of serving it.
      const std::string response =
          line.size() > options_.max_line_bytes
              ? session->protocol_error(oversized_error)
              : session->handle(line);
      if (!response.empty() && !write_line(fd, response)) {
        open = false;
        break;
      }
      if (session->done()) break;
    }
    buf.erase(0, start);

    if (open && buf.size() > options_.max_line_bytes) {
      // Oversized frame still awaiting its newline: answer once, drop
      // what we buffered, and discard the rest as it streams in.
      if (!write_line(fd, session->protocol_error(oversized_error)))
        open = false;
      buf.clear();
      discarding = true;
    }
  }
  // Release the session BEFORE closing the fd: the hangup sweep only polls
  // a connection's fd while it can still lock the session weak_ptr, so
  // this order guarantees it never polls a closed (possibly reused) fd on
  // behalf of a live session. Releasing before flagging `finished` also
  // keeps the invariant that a joiner observing `finished` observes the
  // freed max_sessions slot.
  session.reset();
  ::close(fd);
  finished->store(true);
}

void ServeFront::sweep_disconnects() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (Connection& conn : connections_) {
    if (conn.finished.load() || conn.fd < 0) continue;
    const std::shared_ptr<ServeSession> session = conn.session.lock();
    if (!session) continue; // handler already winding down
    pollfd p{};
    p.fd = conn.fd;
    p.events = POLLRDHUP;
    if (::poll(&p, 1, 0) <= 0) continue;
    if (p.revents & (POLLRDHUP | POLLHUP | POLLERR)) {
      // The client's read side is gone: any in-flight solve is now work on
      // behalf of nobody. Trip the session token; the handler thread
      // unwinds at the solver's next cancellation point and exits its read
      // loop. Cancelling an already-idle session is harmless — its next
      // recv() observes the same hangup.
      session->cancel();
      conn.fd = -1; // cancelled once; no need to poll this connection again
    }
  }
}

void ServeFront::reap_finished(bool join_all) {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (join_all || it->finished.load()) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

#endif // _WIN32

} // namespace aflow::core

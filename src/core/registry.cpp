#include "core/registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/sharded_solver.hpp"

namespace aflow::core {

namespace {

/// Adapts a `flow::` free function to the ISolver interface. Backends with
/// an incremental companion (dinic_delta, push_relabel_delta) pass it as
/// `delta_fn` and advertise SolverCapabilities::incremental; the rest keep
/// the ISolver default (from-scratch fallback).
class ClassicalSolver final : public ISolver {
 public:
  using Fn = flow::MaxFlowResult (*)(const graph::FlowNetwork&,
                                     const util::CancelToken&);
  using DeltaFn = flow::MaxFlowResult (*)(const graph::FlowNetwork&,
                                          const flow::CapacityDelta&,
                                          const flow::MaxFlowResult&,
                                          const util::CancelToken&);

  ClassicalSolver(std::string name, Fn fn, DeltaFn delta_fn = nullptr)
      : name_(std::move(name)), fn_(fn), delta_fn_(delta_fn) {}

  using ISolver::solve;
  using ISolver::solve_delta;

  const std::string& name() const override { return name_; }
  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.incremental = delta_fn_ != nullptr;
    return caps;
  }
  flow::MaxFlowResult solve(const graph::FlowNetwork& net,
                            const CancelToken& cancel) const override {
    return fn_(net, cancel);
  }
  flow::MaxFlowResult solve_delta(
      const graph::FlowNetwork& net, const flow::CapacityDelta& delta,
      const flow::MaxFlowResult& prior,
      const CancelToken& cancel) const override {
    if (!delta_fn_) return ISolver::solve_delta(net, delta, prior, cancel);
    return delta_fn_(net, delta, prior, cancel);
  }

 private:
  std::string name_;
  Fn fn_;
  DeltaFn delta_fn_;
};

class AnalogSolverAdapter final : public ISolver {
 public:
  AnalogSolverAdapter(std::string name, analog::AnalogSolveOptions options)
      : name_(std::move(name)),
        solver_(with_ordering_cache(std::move(options))) {}

  using ISolver::solve;
  using ISolver::solve_delta;

  const std::string& name() const override { return name_; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities caps;
    caps.exact = false;
    caps.analog = true;
    caps.reports_operations = true; // linear-system solve count
    // The analog delta path re-converges from the pooled operating point
    // (DcSolver::solve_warm), so it needs a ReusePool to carry state
    // between solves of one adapter — and only the steady-state method has
    // an operating point to carry (transient must start from rest).
    caps.incremental =
        solver_.has_reuse_pool() &&
        solver_.options().method == analog::SolveMethod::kSteadyState;
    return caps;
  }

  flow::MaxFlowResult solve(const graph::FlowNetwork& net,
                            const CancelToken& cancel) const override {
    return to_result(solver_.solve(net, cancel));
  }

  flow::MaxFlowResult solve_delta(
      const graph::FlowNetwork& net, const flow::CapacityDelta& delta,
      const flow::MaxFlowResult& prior,
      const CancelToken& cancel) const override {
    if (!solver_.has_reuse_pool())
      return ISolver::solve_delta(net, delta, prior, cancel);
    (void)prior; // the analog carry-over state lives in the ReusePool
    return to_result(solver_.solve_delta(net, delta, cancel));
  }

 private:
  static flow::MaxFlowResult to_result(const analog::AnalogFlowResult& r) {
    flow::MaxFlowResult out;
    out.flow_value = r.flow_value;
    out.edge_flow = r.edge_flow;
    out.operations = r.solves;
    out.metrics.iterations = r.solves;
    out.metrics.full_factors = r.full_factors;
    out.metrics.refactors = r.refactors;
    out.metrics.prototype_refactors = r.prototype_refactors;
    out.metrics.rhs_refreshes = r.rhs_refreshes;
    out.metrics.warm_iterations = r.warm_iterations;
    out.metrics.cold_iterations = r.cold_iterations;
    out.metrics.warm_started = r.warm_started;
    out.metrics.pool_hits = r.pool_hits;
    out.metrics.pool_misses = r.pool_misses;
    out.metrics.pool_evictions = r.pool_evictions;
    out.metrics.delta_solves = r.delta_solves;
    out.metrics.delta_fallbacks = r.delta_fallbacks;
    out.metrics.edges_touched = r.edges_touched;
    out.metrics.fallback_pool_rebuilds = r.pool_rebuilds;
    return out;
  }

  // Each adapter instance owns an ordering cache, so same-shape instances
  // solved through one adapter share their symbolic analysis. BatchEngine
  // creates one solver per worker thread, which makes this exactly the
  // per-worker sharing of the reconfiguration scenario (one crossbar
  // topology, many programmed conductance sets); the cache itself is
  // thread-safe, so the ISolver concurrency contract still holds.
  static analog::AnalogSolveOptions with_ordering_cache(
      analog::AnalogSolveOptions options) {
    if (!options.ordering_cache)
      options.ordering_cache = std::make_shared<la::OrderingCache>();
    return options;
  }

  std::string name_;
  analog::AnalogMaxFlowSolver solver_;
};

void register_builtins(SolverRegistry& reg) {
  reg.add("edmonds_karp", [] {
    return std::make_shared<ClassicalSolver>("edmonds_karp",
                                             &flow::edmonds_karp);
  });
  reg.add("dinic", [] {
    return std::make_shared<ClassicalSolver>("dinic", &flow::dinic,
                                             &flow::dinic_delta);
  });
  reg.add("push_relabel", [] {
    return std::make_shared<ClassicalSolver>("push_relabel",
                                             &flow::push_relabel,
                                             &flow::push_relabel_delta);
  });
  // Default-configured sharded decomposition solver; callers needing a
  // specific shard count / region backend construct ShardedSolver directly.
  reg.add("sharded", [] { return std::make_shared<ShardedSolver>(); });
  reg.add("analog_dc", [] {
    return make_analog_solver("analog_dc", *builtin_analog_options("analog_dc"));
  });
  reg.add("analog_transient", [] {
    return make_analog_solver("analog_transient",
                              *builtin_analog_options("analog_transient"));
  });
  // Warm variants: same substrate model plus a per-adapter core::ReusePool,
  // so same-shape instances flowing through one adapter (= one BatchEngine
  // worker) share factored LU prototypes and seed Newton from the previous
  // converged state. Kept separate from the plain adapters because warm
  // results depend on the order instances reach the pool: deterministic
  // batches are fully reproducible, but arbitrary multi-thread schedules
  // are only tolerance-identical, not bit-identical, to a cold run.
  // Dedicated level sources keep the MNA pattern a function of the graph
  // topology alone, so reprogrammed-capacity batches actually hit the pool.
  reg.add("analog_dc_warm", [] {
    auto opt = *builtin_analog_options("analog_dc_warm");
    opt.reuse_pool = std::make_shared<ReusePool>();
    return make_analog_solver("analog_dc_warm", std::move(opt));
  });
  reg.add("analog_transient_warm", [] {
    auto opt = *builtin_analog_options("analog_transient_warm");
    opt.reuse_pool = std::make_shared<ReusePool>();
    return make_analog_solver("analog_transient_warm", std::move(opt));
  });
}

} // namespace

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry* reg = [] {
    auto* r = new SolverRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

void SolverRegistry::add(const std::string& name, Factory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

bool SolverRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) > 0;
}

SolverPtr SolverRegistry::create(const std::string& name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::ostringstream msg;
      msg << "unknown solver '" << name << "'; known solvers:";
      for (const auto& [known, unused] : factories_) msg << ' ' << known;
      throw std::invalid_argument(msg.str());
    }
    factory = it->second;
  }
  return factory();
}

std::vector<std::string> SolverRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, unused] : factories_) out.push_back(name);
  return out;
}

flow::MaxFlowResult solve(const std::string& solver,
                          const graph::FlowNetwork& net) {
  return SolverRegistry::instance().create(solver)->solve(net);
}

SolverPtr make_analog_solver(std::string name,
                             analog::AnalogSolveOptions options) {
  return std::make_shared<AnalogSolverAdapter>(std::move(name),
                                               std::move(options));
}

std::optional<analog::AnalogSolveOptions> builtin_analog_options(
    const std::string& name) {
  const bool warm = name == "analog_dc_warm" || name == "analog_transient_warm";
  if (name != "analog_dc" && name != "analog_transient" && !warm)
    return std::nullopt;

  // Near-ideal substrate options: the analog registry entries should track
  // the exact solvers up to quantization, not confound users with op-amp
  // lag or parasitic dynamics (those stay available through
  // make_analog_solver).
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0;
  if (name == "analog_transient" || name == "analog_transient_warm") {
    opt.method = analog::SolveMethod::kTransient;
    // The transient entries exist to measure convergence time, which needs
    // some dynamics: keep the default parasitics on the crossbar wires.
    opt.config.parasitic_capacitance = 20e-15;
    // Ideal negative conductances under capacitive load make the widget
    // internals saddle points (DESIGN.md "NIC saddle-point instability
    // under capacitive load"), which used to diverge on generated grid
    // workloads. The registry default therefore integrates the series
    // finite-GBW lag (high-frequency modes see a positive resistance, and
    // the L-stable integrator damps them) with the smallest stability
    // margin that settles across the generated corpora. Accuracy price:
    // any positive margin biases the widgets (EXPERIMENTS.md "Marginal
    // stability on generated workloads"), so this entry reports settling
    // dynamics at ~10% flow error on grids — exactness stays with
    // analog_dc, whose algebraic internal nodes never see the saddle.
    opt.config.fidelity = analog::NegResFidelity::kLag;
    opt.config.lag_uses_series_element = true;
    opt.config.stability_margin = 0.001;
  }
  // Dedicated level sources keep the warm adapters' MNA pattern a function
  // of the graph topology alone, so reprogrammed-capacity streams actually
  // hit the pool.
  if (warm) opt.config.dedicated_level_sources = true;
  return opt;
}

} // namespace aflow::core

#include "core/sharded_solver.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "arch/partition.hpp"
#include "core/batch_engine.hpp"
#include "core/registry.hpp"
#include "flow/residual.hpp"
#include "util/fault_injector.hpp"

namespace aflow::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int local_id(const std::vector<int>& region_vertices, int v) {
  // Region vertex lists are ascending (partition_regions builds them by a
  // vertex-order sweep), so a binary search replaces the n-sized
  // global->local scratch array a million-vertex make() would otherwise
  // allocate per worker.
  const auto it =
      std::lower_bound(region_vertices.begin(), region_vertices.end(), v);
  return static_cast<int>(it - region_vertices.begin());
}

} // namespace

ShardedSolver::ShardedSolver(ShardOptions options)
    : options_(std::move(options)) {
  if (options_.shards < 1)
    throw std::invalid_argument("ShardedSolver: shards must be >= 1");
}

SolverCapabilities ShardedSolver::capabilities() const {
  SolverCapabilities caps;
  caps.sharded = true;
  return caps;
}

flow::MaxFlowResult ShardedSolver::solve(const graph::FlowNetwork& net,
                                         const CancelToken& cancel) const {
  return solve_csr(graph::CsrGraph::from_network(net), nullptr, cancel);
}

flow::MaxFlowResult ShardedSolver::solve_csr(const graph::CsrGraph& g,
                                             ShardReport* report,
                                             const CancelToken& cancel) const {
  // Fail fast on a bad region backend, before any partition work.
  const SolverPtr region_solver =
      SolverRegistry::instance().create(options_.region_solver);
  const SolverCapabilities rc = region_solver->capabilities();
  if (!rc.exact || rc.analog)
    throw std::invalid_argument(
        "ShardedSolver: region solver '" + options_.region_solver +
        "' must be exact and non-analog");

  const int n = g.num_vertices();
  const std::int64_t m = g.num_edges();
  const int s = g.source();
  const int t = g.sink();
  const int k = std::min(options_.shards, n);
  const double trivial_bound =
      std::min(g.source_out_capacity(), g.sink_in_capacity());

  ShardReport local_report;
  ShardReport& rep = report ? *report : local_report;
  rep = ShardReport{};

  flow::MaxFlowResult result;
  if (k < 2) {
    // Degenerate shard count: one region is just the direct residual solve.
    rep.regions = 1;
    rep.region_vertices = {n};
    rep.upper_bound = trivial_bound;
    const auto t0 = Clock::now();
    flow::detail::Residual r(g);
    flow::detail::dinic_augment(r, s, t, rep.refine_operations, cancel);
    rep.refine_seconds = seconds_since(t0);
    result.flow_value = r.carried_flow_at(s);
    result.edge_flow = r.carried_edge_flows();
    result.operations = rep.refine_operations;
    rep.flow_value = result.flow_value;
    rep.refined_added = result.flow_value;
    return result;
  }

  // --- Partition ---------------------------------------------------------
  cancel.check();
  const auto partition_t0 = Clock::now();
  arch::RegionPartitionOptions popt;
  popt.regions = k;
  popt.seed = options_.seed;
  const arch::RegionPartition part = arch::partition_regions(g, popt);
  rep.regions = part.num_regions;
  for (const auto& verts : part.vertices)
    rep.region_vertices.push_back(static_cast<int>(verts.size()));
  rep.cut_arcs = static_cast<std::int64_t>(part.cut_arcs.size());
  rep.cut_capacity = part.cut_capacity;

  // Pre-refinement optimality bound: contract every region to one vertex
  // (keeping the cut arcs) and max-flow the k-node quotient. Contraction
  // only removes conservation constraints, so its max flow dominates the
  // true one; the trivial terminal bound covers the s-and-t-in-one-region
  // case, where the quotient has no s-t separation to measure.
  rep.upper_bound = trivial_bound;
  if (part.region[s] != part.region[t] && !part.cut_arcs.empty()) {
    graph::FlowNetwork quotient(part.num_regions, part.region[s],
                                part.region[t]);
    for (const std::int64_t e : part.cut_arcs)
      quotient.add_edge(part.region[g.edge_from(e)],
                        part.region[g.edge_to(e)], g.edge_capacity(e));
    rep.upper_bound =
        std::min(rep.upper_bound, flow::dinic(quotient, cancel).flow_value);
  }
  rep.partition_seconds = seconds_since(partition_t0);
  cancel.check();

  // --- Parallel region solves -------------------------------------------
  // Region r's subproblem: its induced subgraph plus a super source S_r and
  // super sink T_r. Every cut arc is represented individually — an incoming
  // cut arc (u -> v, v in r) becomes S_r -> v at the arc's capacity, an
  // outgoing one becomes u -> T_r — so each region votes a flow for each of
  // its incident cut arcs. s and t, where present, are wired to their
  // region's super terminals at the trivial-bound capacities.
  const auto region_t0 = Clock::now();
  std::vector<std::vector<std::int64_t>> internal(
      static_cast<size_t>(part.num_regions));
  {
    std::vector<std::int64_t> count(static_cast<size_t>(part.num_regions), 0);
    for (std::int64_t e = 0; e < m; ++e) {
      const int r = part.region[g.edge_from(e)];
      if (r == part.region[g.edge_to(e)]) ++count[static_cast<size_t>(r)];
    }
    for (int r = 0; r < part.num_regions; ++r)
      internal[static_cast<size_t>(r)].reserve(
          static_cast<size_t>(count[static_cast<size_t>(r)]));
  }
  std::vector<std::vector<std::int64_t>> in_slots(
      static_cast<size_t>(part.num_regions)),
      out_slots(static_cast<size_t>(part.num_regions));
  for (std::int64_t e = 0; e < m; ++e) {
    const int ru = part.region[g.edge_from(e)];
    const int rv = part.region[g.edge_to(e)];
    if (ru == rv) internal[static_cast<size_t>(ru)].push_back(e);
  }
  for (size_t slot = 0; slot < part.cut_arcs.size(); ++slot) {
    const std::int64_t e = part.cut_arcs[slot];
    out_slots[static_cast<size_t>(part.region[g.edge_from(e)])].push_back(
        static_cast<std::int64_t>(slot));
    in_slots[static_cast<size_t>(part.region[g.edge_to(e)])].push_back(
        static_cast<std::int64_t>(slot));
  }

  std::vector<double> flow(static_cast<size_t>(m), 0.0);
  std::vector<double> cut_out(part.cut_arcs.size(), 0.0);
  std::vector<double> cut_in(part.cut_arcs.size(), 0.0);
  std::vector<long long> region_ops(static_cast<size_t>(part.num_regions), 0);

  const double s_supply = std::max(g.source_out_capacity(), 1.0);
  const double t_drain = std::max(g.sink_in_capacity(), 1.0);

  const auto make = [&](int r) {
    // Chaos battery: "shard.region:throw" / ":delay" faults the region
    // subproblem build, which the worker's failure isolation catches like
    // any region-solve failure — the ladder below then retries.
    util::FaultInjector::instance().fire("shard.region", &cancel);
    const auto& verts = part.vertices[static_cast<size_t>(r)];
    const int nr = static_cast<int>(verts.size());
    graph::FlowNetwork net(nr + 2, nr, nr + 1); // S_r = nr, T_r = nr + 1
    for (const std::int64_t e : internal[static_cast<size_t>(r)])
      net.add_edge(local_id(verts, g.edge_from(e)),
                   local_id(verts, g.edge_to(e)), g.edge_capacity(e));
    for (const std::int64_t slot : in_slots[static_cast<size_t>(r)]) {
      const std::int64_t e = part.cut_arcs[static_cast<size_t>(slot)];
      net.add_edge(nr, local_id(verts, g.edge_to(e)), g.edge_capacity(e));
    }
    for (const std::int64_t slot : out_slots[static_cast<size_t>(r)]) {
      const std::int64_t e = part.cut_arcs[static_cast<size_t>(slot)];
      net.add_edge(local_id(verts, g.edge_from(e)), nr + 1,
                   g.edge_capacity(e));
    }
    if (part.region[s] == r) net.add_edge(nr, local_id(verts, s), s_supply);
    if (part.region[t] == r) net.add_edge(local_id(verts, t), nr + 1, t_drain);
    return net;
  };

  // Scatter one region's solution into the global arrays. Regions own
  // disjoint slots (a cut arc's tail vote belongs to the tail region only,
  // the head vote to the head region), so concurrent consumes never touch
  // the same element.
  const auto consume = [&](InstanceOutcome& out) {
    const int r = out.index;
    const std::vector<double>& ef = out.result.edge_flow;
    size_t j = 0;
    for (const std::int64_t e : internal[static_cast<size_t>(r)])
      flow[static_cast<size_t>(e)] = ef[j++];
    for (const std::int64_t slot : in_slots[static_cast<size_t>(r)])
      cut_in[static_cast<size_t>(slot)] = ef[j++];
    for (const std::int64_t slot : out_slots[static_cast<size_t>(r)])
      cut_out[static_cast<size_t>(slot)] = ef[j++];
    region_ops[static_cast<size_t>(r)] = out.result.operations;
  };

  BatchOptions bo;
  bo.solver = options_.region_solver;
  bo.num_threads = options_.num_threads;
  bo.deterministic = options_.deterministic;
  bo.cancel = cancel;
  const BatchReport batch =
      BatchEngine(bo).run_streamed(part.num_regions, make, consume);
  rep.threads_used = batch.threads_used;

  // Degradation ladder, region rung: a failed region solve no longer fails
  // the whole sharded solve. Each failed region is retried through the
  // region backend up to region_retries times, then re-solved directly on
  // this thread with the built-in exact solver; only when the direct rung
  // fails too (or the solve is being cancelled) does the failure propagate.
  if (batch.failed > 0) {
    for (const InstanceOutcome& out : batch.outcomes) {
      if (out.ok) continue;
      cancel.check(); // a cancelled solve must not burn retries
      long long ops = 0;
      bool recovered = false;
      for (int a = 0; a < options_.region_retries && !recovered; ++a) {
        ++rep.region_retries;
        try {
          InstanceOutcome retry;
          retry.index = out.index;
          const graph::FlowNetwork net = make(out.index);
          net.validate();
          retry.result = region_solver->solve(net, cancel);
          consume(retry);
          recovered = true;
        } catch (const util::CancelledError&) {
          throw;
        } catch (const std::exception&) {
          // retry again, or fall through to the direct rung
        }
      }
      if (!recovered) {
        ++rep.region_direct_solves;
        try {
          InstanceOutcome direct;
          direct.index = out.index;
          const graph::FlowNetwork net = make(out.index);
          net.validate();
          flow::detail::Residual rr(net);
          flow::detail::dinic_augment(rr, net.source(), net.sink(), ops,
                                      cancel);
          direct.result.flow_value = rr.flow_value_at(net, net.source());
          direct.result.edge_flow = rr.edge_flows(net);
          direct.result.operations = ops;
          consume(direct);
        } catch (const util::CancelledError&) {
          throw;
        } catch (const std::exception& e) {
          throw std::runtime_error("ShardedSolver: region " +
                                   std::to_string(out.index) +
                                   " solve failed: " + out.error +
                                   " (direct re-solve also failed: " +
                                   e.what() + ")");
        }
      }
    }
  }
  for (const long long ops : region_ops) rep.region_operations += ops;
  rep.region_seconds = seconds_since(region_t0);
  cancel.check();

  // --- Stitch + conservation repair -------------------------------------
  // A cut arc carries the smaller of its two regions' votes: never above
  // capacity, and never more than either endpoint region routed. The
  // resulting pseudo-flow is capacity-feasible but violates conservation at
  // boundary vertices wherever the votes were clipped — exactly the
  // imbalance shape the shared repair machinery drains.
  const auto stitch_t0 = Clock::now();
  for (size_t slot = 0; slot < part.cut_arcs.size(); ++slot)
    flow[static_cast<size_t>(part.cut_arcs[slot])] =
        std::min(cut_out[slot], cut_in[slot]);
  cut_out = std::vector<double>();
  cut_in = std::vector<double>();

  flow::detail::Residual r(g, flow);
  flow = std::vector<double>();
  rep.stitched_value =
      flow::detail::repair_conservation(r, s, t, rep.repair_operations, cancel)
          ? r.carried_flow_at(s)
          : -1.0;
  if (rep.stitched_value < 0.0) {
    // Degenerate stitch: repair failed, or the region solutions routed more
    // flow into the source than out of it (paths traversing s inside its
    // own region), leaving a worse-than-empty carry. Drop it entirely —
    // exactness is untouched, refinement just starts from zero flow (a
    // direct solve).
    r = flow::detail::Residual(g);
    rep.stitched_value = 0.0;
  }
  rep.stitch_seconds = seconds_since(stitch_t0);

  // --- Exact refinement on the full residual -----------------------------
  const auto refine_t0 = Clock::now();
  flow::detail::dinic_augment(r, s, t, rep.refine_operations, cancel);
  rep.refine_seconds = seconds_since(refine_t0);

  result.flow_value = r.carried_flow_at(s);
  result.edge_flow = r.carried_edge_flows();
  result.operations =
      rep.region_operations + rep.repair_operations + rep.refine_operations;
  result.metrics.fallback_region_retries = rep.region_retries;
  result.metrics.fallback_region_direct = rep.region_direct_solves;
  rep.flow_value = result.flow_value;
  rep.refined_added = result.flow_value - rep.stitched_value;
  return result;
}

} // namespace aflow::core

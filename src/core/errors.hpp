// Structured, machine-readable error classification for the serving layer.
//
// The serve protocol's original failure shape was a flattened
// `"error":"<what()>"` string; clients could not tell a retryable deadline
// expiry from a fatal protocol error, and diagnoses carried by typed
// exceptions (sim::DivergenceError's probe/node/step/growth) were lost at
// the first catch. classify_error() maps the exception hierarchy to an
// ErrorInfo — a stable error code, a retryable bit, and typed key/value
// detail — which serving layers append as an `error_info` JSON object next
// to the legacy `error` string (schema in docs/BENCH_FORMAT.md).
//
// Retryable codes: the same request may succeed if re-sent (deadline
// expiry, cancellation, divergence of an approximate backend, injected
// faults, transient resource exhaustion). Fatal codes: the request itself
// is wrong (unknown solver, malformed spec) and re-sending cannot help.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace aflow::core {

struct ErrorInfo {
  std::string code = "internal";  // stable machine-readable identifier
  bool retryable = false;
  std::string message;            // human-readable, mirrors the what() string
  /// Typed detail (e.g. DivergenceError's probe/node/step/growth). Kept as
  /// flat key/value lists so the streaming JsonWriter can emit them without
  /// a document model.
  std::vector<std::pair<std::string, double>> num_fields;
  std::vector<std::pair<std::string, std::string>> str_fields;
};

/// Maps a caught exception to its ErrorInfo. Recognises
/// util::CancelledError (deadline_exceeded / cancelled, retryable),
/// sim::DivergenceError (divergence, retryable, diagnosis fields),
/// sim::ConvergenceError (convergence, retryable), std::bad_alloc
/// (resource_exhausted, retryable), std::invalid_argument
/// (invalid_argument, fatal), and injected faults (fault_injected,
/// retryable); everything else is `internal`, fatal.
ErrorInfo classify_error(const std::exception& e);

/// Serialises `info` as the value of an `error_info` key:
/// {"code":...,"retryable":...,"message":...,<typed fields>}.
void write_error_info(util::JsonWriter& j, const ErrorInfo& info);

/// Carries an ErrorInfo across the string-flattening catch boundaries of
/// the serving layer (BatchEngine outcomes, ShardedSolver region failures)
/// so the structured classification made at the original throw site
/// survives to the response writer.
class ServeRequestError : public std::runtime_error {
 public:
  explicit ServeRequestError(ErrorInfo info)
      : std::runtime_error(info.message), info_(std::move(info)) {}
  const ErrorInfo& info() const { return info_; }

 private:
  ErrorInfo info_;
};

} // namespace aflow::core

// Long-running serving mode: the persistent engine behind `aflow serve`.
//
// The paper's central claim is that one programmed substrate amortises its
// setup across many reconfigured problem instances. BatchEngine realises
// that for batch lifetimes — solvers, reuse pools, and ordering caches die
// with the batch. ServeEngine keeps them alive across an unbounded request
// stream: per-worker solver instances (and therefore their core::ReusePools
// and la::OrderingCaches) persist for the life of the process, with every
// pool byte-budgeted and LRU-evicted so memory stays bounded no matter how
// many distinct patterns the stream touches.
//
// Protocol: one request per line, one aflow-serve-v1 JSON response per line
// (schema documented in docs/BENCH_FORMAT.md; `aflow serve` wires this to
// stdin/stdout or a Unix socket):
//
//   load (--input FILE.dimacs | --spec GENSPEC)
//   reconfigure [--seed K] [--scale F] [--edge I --capacity C]
//   solve [--solver NAME] [--check]
//   batch --spec GENSPEC [--solver NAME] [--check]
//   sweep [--points N] [--vmax V]
//   mincut
//   stats
//   quit
//
// `load` installs the session's base instance (the "programmed substrate");
// `reconfigure` reprograms its capacities in place — topology, and
// therefore the MNA pattern under dedicated level sources, never changes,
// which is exactly what keeps the warm pools hot. `solve` runs the current
// instance on a named backend; `batch` fans a whole generated workload
// across the persistent worker bank; `sweep` and `mincut` drive the
// quasi-static sweep and min-cut dual through their own pools (results
// bit-identical to cold runs — see DESIGN.md "Serving architecture").
// Blank lines and lines starting with '#' are ignored (empty response).
// Malformed requests return ok:false and never terminate the engine.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/reuse_pool.hpp"
#include "core/solver.hpp"
#include "graph/network.hpp"
#include "la/lu.hpp"
#include "util/json.hpp"

namespace aflow::core {

struct ServeOptions {
  /// Backend used by `solve`/`batch` when the request names none.
  std::string default_solver = "analog_dc_warm";
  /// Workers per solver bank; 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;
  /// In-order single-worker execution (reproducible streams).
  bool deterministic = false;
  /// Byte budget for every ReusePool the engine owns (per worker, plus one
  /// each for the sweep and min-cut paths). 0 = unbounded.
  size_t pool_byte_budget = 64ull << 20;
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions options = {});

  /// Handles one request line and returns one JSON response line (empty for
  /// blank/comment lines). Never throws: malformed requests, unknown
  /// solvers, and solver failures all come back as ok:false responses.
  std::string handle(const std::string& line);

  /// True once a quit request has been served.
  bool done() const { return done_; }

  const ServeOptions& options() const { return options_; }
  /// Workers each solver bank runs with (resolved from options).
  int workers_per_bank() const { return workers_; }

 private:
  /// One persistent backend: a solver per worker, created once and reused
  /// for every later request, plus the byte-budgeted pools of the warm
  /// analog adapters (empty for backends without one) and the cumulative
  /// telemetry served from them.
  struct Bank {
    std::vector<SolverPtr> workers;
    std::vector<std::shared_ptr<ReusePool>> pools;
    long long solves = 0;
    long long failed = 0;
    double seconds = 0.0;
    flow::SolveMetrics metrics;
  };

  Bank& bank(const std::string& name);
  void absorb(Bank& b, const BatchReport& report);

  void cmd_load(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_reconfigure(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_solve(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_batch(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_sweep(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_mincut(util::JsonWriter& j);
  void cmd_stats(util::JsonWriter& j);

  const graph::FlowNetwork& require_instance() const;

  ServeOptions options_;
  int workers_ = 1;
  bool done_ = false;
  long long requests_ = 0;

  std::optional<graph::FlowNetwork> base_;    // as loaded
  std::optional<graph::FlowNetwork> current_; // after reconfigurations
  std::map<std::string, Bank> banks_;

  // The sweep and min-cut requests run on the calling thread; one pool and
  // ordering cache each, shared across all requests of that kind.
  std::shared_ptr<ReusePool> sweep_pool_;
  std::shared_ptr<ReusePool> mincut_pool_;
  std::shared_ptr<la::OrderingCache> sweep_ordering_;
  std::shared_ptr<la::OrderingCache> mincut_ordering_;
  long long sweeps_ = 0;
  long long mincuts_ = 0;
};

} // namespace aflow::core

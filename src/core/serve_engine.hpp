// Long-running serving mode: the persistent engine behind `aflow serve`.
//
// The paper's central claim is that one programmed substrate amortises its
// setup across many reconfigured problem instances. BatchEngine realises
// that for batch lifetimes; ServeEngine keeps the expensive assets alive
// across an unbounded request stream — and, since the multi-session front,
// across an unbounded number of CONCURRENT clients. The ownership split:
//
//   ServeSession (one per connection, single-threaded)
//     current/base instance, request counter, per-session telemetry.
//   ServeEngine (one per process, shared by all sessions)
//     solver banks — per backend name, ONE solver instance plus ONE
//     byte-budgeted core::ReusePool and ONE la::OrderingCache, shared and
//     synchronized across every session — the sweep/min-cut pools, and the
//     engine-wide counters.
//
// Locking/ownership rules are documented in DESIGN.md "Serving
// architecture" (multi-session subsection); the short version: sessions
// are externally synchronized (one thread each), everything reachable from
// more than one session is either internally synchronized (ReusePool,
// OrderingCache, the stateless solvers) or guarded by the engine's mutexes
// (bank map, telemetry, session registry).
//
// Protocol: one request per line, one aflow-serve-v1 JSON response per line
// (schema documented in docs/BENCH_FORMAT.md; `aflow serve` wires this to
// stdin/stdout or a Unix socket via core::ServeFront):
//
//   load (--input FILE.dimacs | --spec GENSPEC)
//   reconfigure (--edits I:C[,I:C...] | --seed K | --scale F)
//   solve [--solver NAME] [--check] [--scratch] [--deadline-ms N]
//         [--shards K [--region-solver NAME] [--threads N]]
//                      (K >= 2: sharded decomposition solve, DESIGN.md
//                      "Sharded solve"; skips the bank/prior machinery)
//   batch --spec GENSPEC [--solver NAME] [--check] [--delta]
//         [--deadline-ms N]
//   sweep [--points N] [--vmax V] [--deadline-ms N]
//   mincut [--deadline-ms N]
//   deadline [--ms N]  (session default deadline; 0 clears it)
//   session            (this connection's stats view)
//   stats              (engine-wide stats: banks, pools, sessions)
//   quit               (ends this session; other sessions keep serving)
//   shutdown           (ends this session AND stops the serving front)
//
// Reconfiguration streams ride the delta-first solver API (flow/delta.hpp):
// every capacity mutation is recorded as a CapacityDelta in the session's
// edit log, and `solve` routes through ISolver::solve_delta — carrying the
// session's previous result for that backend across the edits — whenever
// the backend advertises SolverCapabilities::incremental and the log still
// reaches back to that result's revision. `--scratch` forces the cold path;
// the response's top-level "delta" field says which path ran, and the
// metrics carry delta_solves / delta_fallbacks / edges_touched.
//
// Fault tolerance (DESIGN.md "Failure taxonomy and the degradation
// ladder"): every request runs under a CancelToken derived from the
// session's token, so a client disconnect (front-detected) or an expired
// `--deadline-ms` / session-default deadline unwinds the solve at its next
// cancellation point and comes back as a structured retryable error
// (`error_info` object, core/errors.hpp). A retryable failure of an analog
// bank (divergence, convergence loss) is retried once through the digital
// ServeOptions::fallback_solver bank before the error is surfaced; the
// rung is counted in SolveMetrics::fallback_analog_digital and reported in
// the response as "fallback": true.
//
// Responses put schedule-independent result fields at the top level and
// everything timing- or schedule-dependent (wall clock, warm/iteration
// telemetry, pool gauges) under a trailing "telemetry" object, so a
// session's responses are comparable bit-for-bit against a serial replay.
// Blank lines and lines starting with '#' are ignored (empty response).
// Malformed requests return ok:false and never terminate the engine.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/reuse_pool.hpp"
#include "core/solver.hpp"
#include "flow/delta.hpp"
#include "graph/network.hpp"
#include "la/lu.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"

namespace aflow::core {

class ServeEngine;

/// Point-in-time copy of the serving front's I/O-plane counters. The front
/// registers a provider with the engine while it runs, so the `stats`
/// response can report the transport plane (a "front" object, documented in
/// docs/BENCH_FORMAT.md) next to the solver banks. Plain values, not
/// atomics: providers snapshot whatever counters they keep.
struct FrontStatsSnapshot {
  long long accepted_unix = 0;
  long long accepted_tcp = 0;
  long long rejected = 0;
  long long open_connections = 0;
  long long requests_queued = 0;
  long long responses_written = 0;
  long long backpressure_pauses = 0;
  long long oversized_frames = 0;
  long long hangup_cancels = 0;
  long long short_writes = 0;
  int io_threads = 0;
  int workers = 0;
};

struct ServeOptions {
  /// Backend used by `solve`/`batch` when the request names none.
  std::string default_solver = "analog_dc_warm";
  /// Concurrent workers a `batch` request fans across; 0 picks
  /// std::thread::hardware_concurrency().
  int num_threads = 0;
  /// In-order single-worker batch execution (reproducible streams).
  bool deterministic = false;
  /// Byte budget for every ReusePool the engine owns: one per warm solver
  /// bank (shared by all sessions), plus one each for the sweep and
  /// min-cut paths. 0 = unbounded.
  size_t pool_byte_budget = 64ull << 20;
  /// Open-session cap: open_session() returns null beyond it, which the
  /// socket front turns into a per-connection rejection line.
  int max_sessions = 64;
  /// Default per-request deadline in milliseconds, inherited by every new
  /// session (a session overrides it with the `deadline` request, a single
  /// request with `--deadline-ms`). 0 = no deadline.
  long long default_deadline_ms = 0;
  /// Degradation-ladder rung for analog banks: when an analog backend fails
  /// a solve with a *retryable* error (divergence, convergence loss), the
  /// request is retried once through this exact digital backend before the
  /// error reaches the client. Empty disables the rung.
  std::string fallback_solver = "dinic";
};

/// One client's conversation with the engine: the current instance, the
/// per-session request counter, and this session's share of the telemetry.
/// A session is single-threaded by contract (its connection handler); all
/// cross-session state lives in the shared ServeEngine, which must outlive
/// every session it opened.
class ServeSession {
 public:
  ~ServeSession();
  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  /// Handles one request line and returns one JSON response line (empty
  /// for blank/comment lines). Never throws: malformed requests, unknown
  /// solvers, and solver failures all come back as ok:false responses.
  std::string handle(const std::string& line);

  /// Transport-level error line (oversized frame, ...) in the same schema
  /// as handle() responses; counts as a request of this session.
  std::string protocol_error(const std::string& message);

  /// True once this session served a quit or shutdown request.
  bool done() const { return done_; }
  /// Engine-assigned session id (1-based, in open order).
  int id() const { return id_; }

  /// Trips this session's CancelToken: every in-flight and future request
  /// of the session unwinds at its next cancellation point. Safe from any
  /// thread — this is how the front cancels a solve whose client
  /// disconnected mid-request.
  void cancel() { session_token_.cancel(); }

 private:
  friend class ServeEngine;
  ServeSession(ServeEngine& engine, int id);

  void cmd_load(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_reconfigure(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_solve(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_batch(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_sweep(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_mincut(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_deadline(const std::vector<std::string>& t, util::JsonWriter& j);
  void cmd_session(util::JsonWriter& j);

  /// Per-request token: child of the session token, carrying the request's
  /// `--deadline-ms` (or the session default when the flag is absent).
  util::CancelToken request_token(const std::vector<std::string>& t) const;

  /// Folds one batch report into this session's counters (the engine-side
  /// bank share is folded separately by ServeEngine::absorb).
  void absorb_session(const BatchReport& report);

  /// Concatenates the logged edits of every revision in (from_rev,
  /// revision_] into `out`. Returns false when the log no longer reaches
  /// back to from_rev (trimmed, or from_rev predates the loaded instance)
  /// — the caller then solves from scratch.
  bool compose_delta_since(long long from_rev, flow::CapacityDelta& out) const;

  const graph::FlowNetwork& require_instance() const;

  ServeEngine& engine_;
  const int id_;
  bool done_ = false;
  long long requests_ = 0;

  // Cancellation state: one cancellable session token (tripped by cancel()
  // on disconnect/shutdown) that every request token chains from, and the
  // session's default deadline (seeded from ServeOptions, overridable per
  // session and per request).
  util::CancelToken session_token_ = util::CancelToken::cancellable();
  long long deadline_ms_ = 0;

  std::optional<graph::FlowNetwork> base_;    // as loaded
  std::optional<graph::FlowNetwork> current_; // after reconfigurations

  // Reconfiguration-stream state behind the delta solve path. Every
  // capacity mutation bumps revision_ and logs its edits; load (a
  // potential topology change) resets the log and invalidates priors by
  // advancing structural_revision_. priors_ remembers, per backend name,
  // the last successful solve result and the revision it solved — the
  // prior threaded into ISolver::solve_delta. The log is bounded
  // (kEditLogCap in the .cpp); trimmed history shows up as a composition
  // gap and falls back to scratch.
  struct Prior {
    flow::MaxFlowResult result;
    long long revision = -1;
  };
  long long revision_ = 0;
  long long structural_revision_ = 0;
  std::vector<std::pair<long long, std::vector<flow::CapacityEdit>>> edit_log_;
  std::map<std::string, Prior> priors_;

  // Per-session telemetry (single-threaded: only this session's connection
  // handler touches it). The shared-bank counterpart lives in the engine;
  // see flow::SolveMetrics::operator+= for how the two scopes reconcile.
  long long solves_ = 0;
  long long failed_ = 0;
  long long sweeps_ = 0;
  long long mincuts_ = 0;
  double seconds_ = 0.0;
  flow::SolveMetrics solve_metrics_;  // solve/batch (bank-pool) traffic
  flow::SolveMetrics sweep_metrics_;  // sweep (sweep-pool) traffic
  flow::SolveMetrics mincut_metrics_; // mincut (mincut-pool) traffic
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions options = {});
  ~ServeEngine();

  /// Opens a new session, or returns null when options().max_sessions are
  /// already open (the caller should answer with reject_line() and hang
  /// up). The engine must outlive the returned session.
  std::shared_ptr<ServeSession> open_session();

  /// One aflow-serve-v1 error line for a connection that was refused a
  /// session (id/session 0: the request never reached a session).
  std::string reject_line() const;

  /// Single-session convenience for stdin mode and protocol tests:
  /// forwards to a lazily opened default session.
  std::string handle(const std::string& line);
  /// True once the default session quit or a shutdown was requested.
  bool done() const;

  /// Set by any session's `shutdown` request; the serving front polls it.
  bool shutdown_requested() const { return shutdown_.load(); }
  void request_shutdown() { shutdown_.store(true); }

  /// Registers (or, with nullptr, clears) the callback `stats` uses to
  /// include the serving front's counters. The provider must be callable
  /// from any session thread and must not call back into the engine. The
  /// front registers itself for the duration of run().
  void set_front_stats_provider(std::function<FrontStatsSnapshot()> provider);

  const ServeOptions& options() const { return options_; }
  /// Concurrent workers a batch request fans across (resolved from
  /// options); also the solver-handle count of every bank.
  int workers_per_bank() const { return workers_; }
  /// Currently open sessions.
  int open_sessions() const;

 private:
  friend class ServeSession;

  /// One persistent backend, shared by every session: a single solver
  /// instance (ISolver::solve is concurrency-safe) whose cross-instance
  /// assets — the byte-budgeted ReusePool and the OrderingCache of the
  /// warm analog adapters — are therefore one synchronized, per-pattern
  /// bank instead of per-worker partitions, plus the cumulative telemetry
  /// served from it (guarded by telemetry_mutex_).
  struct Bank {
    SolverPtr solver;
    std::shared_ptr<ReusePool> pool;             // null for pool-free backends
    std::shared_ptr<la::OrderingCache> ordering; // null for classical backends
    long long solves = 0;
    long long failed = 0;
    double seconds = 0.0;
    flow::SolveMetrics metrics;
  };

  /// Finds or creates the bank for `name` (throws std::invalid_argument
  /// for unknown solver names). The returned reference stays valid for the
  /// engine's lifetime (map nodes are stable).
  Bank& bank(const std::string& name);
  /// Folds one batch report into the bank's shared counters (engine
  /// scope); the calling session folds its own share via absorb_session.
  void absorb(Bank& b, const BatchReport& report);
  void close_session();
  void write_stats(util::JsonWriter& j);

  ServeOptions options_;
  int workers_ = 1;
  std::atomic<bool> shutdown_{false};

  mutable std::mutex banks_mutex_;     // guards banks_ map shape
  mutable std::mutex telemetry_mutex_; // guards bank/engine counters below
  std::map<std::string, Bank> banks_;

  // Session registry (guarded by telemetry_mutex_).
  int next_session_id_ = 1;
  int open_sessions_ = 0;
  int peak_sessions_ = 0;
  long long sessions_opened_ = 0;
  std::atomic<long long> requests_{0}; // engine-wide request total

  /// Serving-front counter source for `stats` (guarded by telemetry_mutex_;
  /// set while a front runs, empty otherwise).
  std::function<FrontStatsSnapshot()> front_stats_;

  // The sweep and min-cut requests run on the calling session's thread;
  // one shared pool and ordering cache each, synchronized internally.
  std::shared_ptr<ReusePool> sweep_pool_;
  std::shared_ptr<ReusePool> mincut_pool_;
  std::shared_ptr<la::OrderingCache> sweep_ordering_;
  std::shared_ptr<la::OrderingCache> mincut_ordering_;
  long long sweeps_ = 0;  // guarded by telemetry_mutex_
  long long mincuts_ = 0; // guarded by telemetry_mutex_
  flow::SolveMetrics sweep_metrics_;  // guarded by telemetry_mutex_
  flow::SolveMetrics mincut_metrics_; // guarded by telemetry_mutex_

  std::shared_ptr<ServeSession> default_session_; // lazy, legacy surface
};

} // namespace aflow::core

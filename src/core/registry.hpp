// Name -> solver registry. The built-in backends (edmonds_karp, dinic,
// push_relabel, analog_dc, analog_transient) are registered on first use;
// callers can add their own factories for experiments.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "analog/solver.hpp"
#include "core/solver.hpp"

namespace aflow::core {

class SolverRegistry {
 public:
  using Factory = std::function<SolverPtr()>;

  /// The process-wide registry, with the built-in backends pre-registered.
  static SolverRegistry& instance();

  /// Registers (or replaces) a named factory. Thread-safe.
  void add(const std::string& name, Factory factory);

  bool contains(const std::string& name) const;

  /// Instantiates the named solver. Throws std::invalid_argument with the
  /// list of known names when `name` is not registered.
  SolverPtr create(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  SolverRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

/// Convenience: `SolverRegistry::instance().create(solver)->solve(net)`.
flow::MaxFlowResult solve(const std::string& solver,
                          const graph::FlowNetwork& net);

/// Wraps an AnalogMaxFlowSolver with explicit options as an ISolver, for
/// experiments that sweep substrate parameters. The registry's built-in
/// analog entries use near-ideal defaults (ideal negative resistors, no
/// parasitics, vflow = 10 V) so their flow values track the exact solvers.
SolverPtr make_analog_solver(std::string name,
                             analog::AnalogSolveOptions options);

/// The substrate options behind the registry's built-in analog entries
/// (analog_dc, analog_transient, analog_dc_warm, analog_transient_warm);
/// std::nullopt for other names. The warm variants come back without a
/// ReusePool attached so serving layers (core::ServeEngine) can rebuild
/// these backends around their own byte-budgeted pools; the registry
/// factories attach an unbounded per-adapter pool themselves.
std::optional<analog::AnalogSolveOptions> builtin_analog_options(
    const std::string& name);

} // namespace aflow::core

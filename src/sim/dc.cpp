#include "sim/dc.hpp"

#include <random>
#include <set>

namespace aflow::sim {

std::vector<double> DcSolver::solve_linear(const circuit::DeviceState& state,
                                           double gmin) {
  circuit::StampOptions opt;
  opt.transient = false;
  opt.gmin = gmin;

  la::Triplets a;
  std::vector<double> rhs;
  assembler_.assemble(state, opt, a, rhs);

  la::SparseLU::Options lu_opt;
  lu_opt.ordering = options_.ordering;
  la::SparseLU lu(lu_opt);
  lu.factor(la::SparseMatrix::from_triplets(a));
  stats_.factor_nnz = lu.factor_nnz();

  std::vector<double> x(rhs.size());
  lu.solve(rhs, x);
  return x;
}

std::vector<double> DcSolver::solve(circuit::DeviceState& state) {
  stats_ = {};
  std::set<std::vector<char>> seen_diode_states;
  auto policy = circuit::MnaAssembler::FlipPolicy::kAll;
  std::mt19937_64 rng(0x5eed5eedULL);

  std::vector<double> x;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    stats_.iterations = iter + 1;

    // gmin stepping: if the system is singular at the nominal gmin, retry
    // with progressively larger leakage.
    double gmin = options_.gmin;
    for (;;) {
      try {
        x = solve_linear(state, gmin);
        break;
      } catch (const la::SingularMatrixError&) {
        gmin = (gmin == 0.0) ? 1e-12 : gmin * 100.0;
        if (gmin > 1e-4) throw;
      }
    }

    const double shockley_dv = assembler_.update_shockley_points(x, state);

    circuit::StampOptions dc_opt;
    dc_opt.transient = false;
    const int sat_flips = assembler_.update_opamp_saturation(x, dc_opt, state);

    // Escalate the flip policy whenever the PWL state vector repeats:
    // simultaneous flipping cycles on hard complementarity instances,
    // worst-violator can two-cycle, randomised single flips break ties.
    std::vector<char> state_key = state.diode_on;
    state_key.insert(state_key.end(), state.opamp_sat.begin(),
                     state.opamp_sat.end());
    if (policy != circuit::MnaAssembler::FlipPolicy::kRandom &&
        !seen_diode_states.insert(state_key).second) {
      policy = policy == circuit::MnaAssembler::FlipPolicy::kAll
                   ? circuit::MnaAssembler::FlipPolicy::kWorst
                   : circuit::MnaAssembler::FlipPolicy::kRandom;
    }
    const int flips =
        assembler_.update_pwl_diode_states(x, state, policy, rng());
    stats_.diode_flips += flips + sat_flips;

    if (flips == 0 && sat_flips == 0 && shockley_dv < options_.shockley_tol)
      return x;
  }
  throw ConvergenceError("DcSolver: no consistent operating point after " +
                         std::to_string(options_.max_iterations) + " iterations");
}

} // namespace aflow::sim

#include "sim/dc.hpp"

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <utility>

namespace aflow::sim {

void DcSolver::factor_full(const la::SparseMatrix& m) {
  la::factor_with_cache(lu_, m, options_.ordering_cache.get());
  stats_.full_factors++;
}

std::vector<double> DcSolver::solve_linear(const circuit::DeviceState& state,
                                           double gmin, bool force_full) {
  circuit::StampOptions opt;
  opt.transient = false;
  opt.gmin = gmin;

  if (!options_.reuse_factorization) {
    // Legacy path: rebuild the matrix and all symbolic analysis from
    // scratch (the baseline bench_lu_reuse measures against).
    la::Triplets a;
    std::vector<double> rhs;
    assembler_.assemble(state, opt, a, rhs);

    la::SparseLU::Options lu_opt;
    lu_opt.ordering = options_.ordering;
    la::SparseLU lu(lu_opt);
    lu.factor(la::SparseMatrix::from_triplets(a));
    stats_.full_factors++;
    stats_.factor_nnz = lu.factor_nnz();

    std::vector<double> x(rhs.size());
    lu.solve(rhs, x);
    return x;
  }

  const bool pattern_reused = assembler_.assemble(state, opt, pattern_);
  const la::SparseMatrix& m = pattern_.matrix();
  // First factorisation: try the cross-instance prototype (clone the
  // previous same-pattern factors and enter through the numeric-only
  // refactor — no symbolic analysis, no fresh pivoting).
  const la::PrototypeEntry entry =
      !lu_.factored() && !force_full
          ? la::enter_prototype(lu_, lu_prototype_.get(), m)
          : la::PrototypeEntry::kNotEntered;
  if (entry == la::PrototypeEntry::kRefactored) {
    stats_.refactors++;
    stats_.prototype_refactors++;
  } else if (entry == la::PrototypeEntry::kFullFactored) {
    stats_.full_factors++; // pivot degraded: fell back inside refactor()
  } else if (!pattern_reused || !lu_.factored() || force_full) {
    factor_full(m);
  } else if (lu_.refactor(m)) {
    stats_.refactors++;
  } else {
    stats_.full_factors++; // refactor fell back to a full factorisation
  }
  stats_.factor_nnz = lu_.factor_nnz();

  std::vector<double> x(pattern_.rhs().size());
  lu_.solve(pattern_.rhs(), x);
  return x;
}

std::vector<double> DcSolver::solve(circuit::DeviceState& state) {
  return solve_impl(state, {}, 0);
}

std::vector<double> DcSolver::solve_warm(circuit::DeviceState& state,
                                         std::span<const double> x_warm,
                                         int iteration_budget) {
  return solve_impl(state, x_warm, iteration_budget);
}

void DcSolver::warm_start(const WarmStart& w) {
  if (!w.column_order.empty()) lu_.seed_column_order(w.column_order);
  if (w.lu_prototype) lu_prototype_ = w.lu_prototype;
  if (w.prime_state && options_.reuse_factorization) {
    circuit::StampOptions opt;
    opt.transient = false;
    opt.gmin = options_.gmin;
    assembler_.assemble(*w.prime_state, opt, pattern_);
    la::factor_with_cache(lu_, pattern_.matrix(),
                          options_.ordering_cache.get());
  }
}

WarmStart DcSolver::export_warm_start() const {
  WarmStart w;
  if (!lu_.factored()) return w;
  w.lu_prototype = std::make_shared<const la::SparseLU>(lu_);
  w.column_order = lu_.column_order();
  return w;
}

std::uint64_t DcSolver::pattern_key() {
  if (!pattern_.ready()) {
    // The pattern is state-independent, so any state of the right shape
    // captures it; the assembled values are overwritten by the next solve.
    circuit::StampOptions opt;
    opt.transient = false;
    opt.gmin = options_.gmin;
    circuit::DeviceState s0 = circuit::DeviceState::initial(assembler_.netlist());
    assembler_.assemble(s0, opt, pattern_);
  }
  return pattern_.matrix().pattern_key();
}

std::vector<double> DcSolver::solve_impl(circuit::DeviceState& state,
                                         std::span<const double> x_warm,
                                         int iteration_budget) {
  stats_ = {};
  std::set<std::vector<char>> seen_diode_states;
  auto policy = circuit::MnaAssembler::FlipPolicy::kAll;
  std::mt19937_64 rng(0x5eed5eedULL);

  const bool warm = !x_warm.empty();
  stats_.warm_started = warm;
  if (warm) {
    // Align the carried device state with the warm solution so the first
    // linear solve starts from a consistent linearisation (a no-op when
    // `state` is exactly the converged state that produced `x_warm`).
    assembler_.update_shockley_points(x_warm, state);
    circuit::StampOptions dc_opt;
    dc_opt.transient = false;
    assembler_.update_opamp_saturation(x_warm, dc_opt, state);
    assembler_.update_pwl_diode_states(x_warm, state);
  }

  int max_iterations = options_.max_iterations;
  if (iteration_budget > 0)
    max_iterations = std::min(max_iterations, iteration_budget);

  std::vector<double> x;
  for (int iter = 0; iter < max_iterations; ++iter) {
    options_.cancel.check();
    stats_.iterations = iter + 1;
    (warm ? stats_.warm_iterations : stats_.cold_iterations) = iter + 1;

    // gmin stepping: if the system is singular at the nominal gmin, retry
    // with progressively larger leakage. The retries change the numeric
    // regime, so they force a full factorisation.
    double gmin = options_.gmin;
    bool force_full = false;
    for (;;) {
      try {
        x = solve_linear(state, gmin, force_full);
        break;
      } catch (const la::SingularMatrixError&) {
        gmin = (gmin == 0.0) ? 1e-12 : gmin * 100.0;
        force_full = true;
        if (gmin > 1e-4) throw;
      }
    }

    const double shockley_dv = assembler_.update_shockley_points(x, state);

    circuit::StampOptions dc_opt;
    dc_opt.transient = false;
    const int sat_flips = assembler_.update_opamp_saturation(x, dc_opt, state);

    // Escalate the flip policy whenever the PWL state vector repeats:
    // simultaneous flipping cycles on hard complementarity instances,
    // worst-violator can two-cycle, randomised single flips break ties.
    std::vector<char> state_key = state.diode_on;
    state_key.insert(state_key.end(), state.opamp_sat.begin(),
                     state.opamp_sat.end());
    if (policy != circuit::MnaAssembler::FlipPolicy::kRandom &&
        !seen_diode_states.insert(state_key).second) {
      policy = policy == circuit::MnaAssembler::FlipPolicy::kAll
                   ? circuit::MnaAssembler::FlipPolicy::kWorst
                   : circuit::MnaAssembler::FlipPolicy::kRandom;
    }
    const int flips =
        assembler_.update_pwl_diode_states(x, state, policy, rng());
    stats_.diode_flips += flips + sat_flips;

    if (flips == 0 && sat_flips == 0 && shockley_dv < options_.shockley_tol)
      return x;
  }
  throw ConvergenceError("DcSolver: no consistent operating point after " +
                         std::to_string(max_iterations) + " iterations");
}

PooledWarmStart pooled_warm_start(
    DcSolver& solver, core::ReusePool& pool, std::uint64_t key,
    circuit::DeviceState& state, int iteration_budget,
    const std::function<void(const DcStats&)>& on_failed_attempt) {
  PooledWarmStart out;
  const std::shared_ptr<const core::ReuseEntry> warm = pool.find(key);
  out.pool_hit = warm != nullptr;
  if (!warm) return out;

  // Bit-safe ordering seed: the prototype's column order is the pure
  // pattern function a cold run would compute itself.
  if (warm->lu && warm->lu->factored()) {
    WarmStart seed;
    seed.column_order = warm->lu->column_order();
    solver.warm_start(seed);
  }
  const circuit::Netlist& net = solver.assembler().netlist();
  if (!warm->shapes_match(net, solver.assembler().num_unknowns())) return out;

  // Canonical priming: freeze the factorisation provenance the cold path
  // would have, then attempt the seeded solve.
  WarmStart primer;
  primer.prime_state = &state;
  solver.warm_start(primer);
  out.primed = true;
  circuit::DeviceState attempt = *warm->state;
  auto failed = [&] {
    on_failed_attempt(solver.stats());
    state = circuit::DeviceState::initial(net);
  };
  try {
    out.x = solver.solve_warm(attempt, *warm->x, iteration_budget);
    state = std::move(attempt);
    out.solved = true;
  } catch (const ConvergenceError&) {
    failed();
  } catch (const la::SingularMatrixError&) {
    failed();
  }
  return out;
}

} // namespace aflow::sim

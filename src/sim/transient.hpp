// Transient analysis: backward-Euler integration of the substrate dynamics
// (parasitic capacitors, op-amp single poles, lagged negative resistors)
// with PWL-diode event handling.
//
// The step size follows a geometric schedule (hold, then double every
// `steps_per_dt` accepted steps) so the MNA matrix — which depends on dt —
// is refactorised only at dt changes and diode flips. Backward Euler is
// L-stable, which lets the integration stride over the fast op-amp poles
// once they have settled while remaining faithful to the slow network modes
// that dominate the paper's convergence times.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "la/lu.hpp"
#include "sim/dc.hpp"

namespace aflow::sim {

/// Raised by the transient divergence guard, carrying a diagnosis of what
/// tripped it instead of a bare failure: which probe (and node, for voltage
/// probes) blew past the limit, when, at what step size, and how fast the
/// envelope was growing — plus a pointer to the substrate-model explanation
/// (the idealised negative conductances make widget-internal nodes saddle
/// points under capacitive load; see DESIGN.md "NIC saddle-point
/// instability under capacitive load" for the mechanism and mitigations:
/// NegResFidelity::kLag, SubstrateConfig::stability_margin > 0, parasitics
/// on crossbar wires only).
class DivergenceError : public ConvergenceError {
 public:
  struct Diagnosis {
    std::string probe_label;
    int probe_index = -1;
    int node = -1;          // NodeId for voltage probes, -1 for currents
    double time = 0.0;      // seconds into the transient
    long long step = 0;     // accepted steps so far
    double dt = 0.0;        // step size at the trip
    double value = 0.0;     // offending probe value (may be non-finite)
    /// |v_now| / |v_previous| over the last accepted step; > 1 means a
    /// growing envelope (the saddle-point signature), 0 when no previous
    /// sample exists.
    double growth_per_step = 0.0;
  };

  DivergenceError(std::string message, Diagnosis diagnosis)
      : ConvergenceError(std::move(message)), diagnosis_(std::move(diagnosis)) {}

  const Diagnosis& diagnosis() const { return diagnosis_; }

 private:
  Diagnosis diagnosis_;
};

/// A recorded quantity: a node voltage or a voltage-source current.
struct Probe {
  enum class Kind { kNodeVoltage, kSourceCurrent };
  Kind kind = Kind::kNodeVoltage;
  int id = 0; // NodeId or vsource index
  std::string label;

  static Probe node(circuit::NodeId n, std::string label = {}) {
    return {Kind::kNodeVoltage, n, std::move(label)};
  }
  static Probe source_current(int src, std::string label = {}) {
    return {Kind::kSourceCurrent, src, std::move(label)};
  }
};

struct Waveform {
  std::vector<std::string> labels;
  std::vector<double> time;
  /// samples[k][p] = value of probe p at time[k].
  std::vector<std::vector<double>> samples;

  std::vector<double> series(int probe) const;
  double final_value(int probe) const { return samples.back()[probe]; }
};

/// Earliest time T such that |v(t) - v_final| <= rel_tol * |v_final| for all
/// t >= T — the paper's convergence-time definition (Sec. 5.1, 0.1%).
double convergence_time(std::span<const double> time,
                        std::span<const double> value, double rel_tol = 1e-3);

struct TransientOptions {
  double t_stop = 1e-3;
  double dt_initial = 1e-12;
  double dt_max = 1e-6;
  int steps_per_dt = 8;     // accepted steps before dt doubles
  int max_steps = 2000000;
  double gmin = 1e-12;
  int max_event_iterations = 60; // diode-flip resolution within one step
  la::SparseLU::Ordering ordering = la::SparseLU::Ordering::kMinDegree;
  /// Factorisation-reuse fast path (pattern-stable assembly + numeric-only
  /// refactor on diode flips and dt changes). Disable for the
  /// full-factor-per-event baseline; results match either way.
  bool reuse_factorization = true;
  /// Incremental RHS for quiet steps (no diode flip, no dt change): replay
  /// the recorded RHS tape, refreshing only per-device history terms,
  /// instead of re-running the full stamp loop. Bit-identical to the full
  /// assemble by construction; the toggle exists so tests and benches can
  /// A/B the two paths. Only effective with reuse_factorization.
  bool incremental_rhs = true;
  /// Optional cross-instance ordering share (see sim::DcOptions).
  std::shared_ptr<la::OrderingCache> ordering_cache;

  /// If set, the run stops early once every probe has been stable to within
  /// `settle_tol` (relative) for `settle_window` consecutive samples.
  std::optional<double> settle_tol;
  int settle_window = 24;
  /// Abort (throw ConvergenceError) when any probe exceeds this magnitude
  /// or becomes non-finite — the circuit is diverging.
  double divergence_limit = 1e12;
  /// Cooperative cancellation: checked once per accepted step; a tripped
  /// token unwinds with util::CancelledError. The default never cancels.
  util::CancelToken cancel;
};

struct TransientStats {
  long long steps = 0;
  long long factorizations = 0; // total = full_factors + refactors
  long long full_factors = 0;   // factorisations incl. symbolic analysis
  long long refactors = 0;      // numeric-only fast-path factorisations
  /// Refactors entered through a cloned cross-instance SparseLU prototype
  /// (subset of `refactors`).
  long long prototype_refactors = 0;
  long long solves = 0;
  /// Assembly split: full stamp-loop assembles vs RHS-only incremental tape
  /// replays. full_assembles + rhs_refreshes == solves always.
  long long full_assembles = 0;
  long long rhs_refreshes = 0;
  long long step_rejections = 0; // step-size halvings due to clamp chatter
  int diode_flips = 0;
  double end_time = 0.0;
  bool settled = false;
};

class TransientSolver {
 public:
  TransientSolver(const circuit::Netlist& net, TransientOptions options = {})
      : assembler_(net), options_(options) {
    la::SparseLU::Options lu_opt;
    lu_opt.ordering = options_.ordering;
    lu_ = la::SparseLU(lu_opt);
  }

  /// Integrates from t = 0 with initial `state` (typically
  /// DeviceState::initial or a DC point of the pre-step circuit).
  Waveform run(circuit::DeviceState& state, const std::vector<Probe>& probes);

  /// Installs a factored same-pattern SparseLU prototype from a previous
  /// instance (see core::ReusePool); the first factorisation clones it and
  /// enters through `refactor`, falling back to a full factorisation on
  /// pivot degradation as usual.
  void set_lu_prototype(std::shared_ptr<const la::SparseLU> prototype) {
    lu_prototype_ = std::move(prototype);
  }

  /// Fingerprint of the transient MNA pattern (captures it on first call).
  std::uint64_t pattern_key();

  /// Snapshot of the current factorisation for publishing as a
  /// cross-instance prototype; null when nothing has been factored.
  std::shared_ptr<const la::SparseLU> share_factorization() const;

  const TransientStats& stats() const { return stats_; }
  const circuit::MnaAssembler& assembler() const { return assembler_; }
  /// Full MNA solution at the last accepted step of the previous run().
  const std::vector<double>& last_solution() const { return last_x_; }

 private:
  double probe_value(const Probe& p, std::span<const double> x) const;
  DivergenceError make_divergence_error(const Probe& probe, const Waveform& wf,
                                        int probe_index, double value,
                                        double t, double dt) const;

  circuit::MnaAssembler assembler_;
  TransientOptions options_;
  TransientStats stats_;
  circuit::PatternAssembly pattern_;
  la::SparseLU lu_;
  std::shared_ptr<const la::SparseLU> lu_prototype_;
  std::vector<double> last_x_;
};

} // namespace aflow::sim

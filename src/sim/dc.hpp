// DC operating-point solver.
//
// Handles the two nonlinearities in the substrate's device set:
//  - piecewise-linear ideal diodes, by state pivoting (solve, flip
//    inconsistent diodes, re-solve) with cycle detection that falls back to
//    flipping only the worst violator — the classic way to solve the linear
//    complementarity system an ideal-diode network defines;
//  - Shockley diodes, by damped Newton with junction-voltage limiting.
//
// A gmin-stepping fallback handles nearly-singular systems.
//
// The linear-algebra work is reused aggressively: the MNA pattern is fixed
// across diode/op-amp state flips, so the solver assembles numeric-only
// in-place updates (circuit::PatternAssembly) and holds one persistent
// SparseLU that is fully factored once per pattern and numerically
// refactored on every subsequent iteration — and across successive solve()
// calls (quasi-static sweeps, source-ramp homotopy). Gmin stepping and
// pivot failures fall back to a full factorisation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "circuit/mna.hpp"
#include "core/reuse_pool.hpp"
#include "la/lu.hpp"
#include "util/cancel.hpp"

namespace aflow::sim {

class ConvergenceError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct DcOptions {
  int max_iterations = 400;
  double shockley_tol = 1e-6; // volts, junction update convergence
  double gmin = 1e-12;
  la::SparseLU::Ordering ordering = la::SparseLU::Ordering::kMinDegree;
  /// Factorisation-reuse fast path (pattern-stable assembly + numeric-only
  /// refactor). Disable to force the legacy rebuild-everything-per-iteration
  /// behaviour (the baseline in bench_lu_reuse; results match to solver
  /// tolerance either way).
  bool reuse_factorization = true;
  /// Optional cross-instance ordering share: same-pattern systems (e.g. a
  /// batch of reprogrammed crossbars of one topology) skip the
  /// fill-reducing analysis after the first instance. The cache is
  /// thread-safe; share one per batch worker.
  std::shared_ptr<la::OrderingCache> ordering_cache;
  /// Cooperative cancellation: checked once per Newton / diode-flip
  /// iteration; a tripped token unwinds with util::CancelledError. The
  /// default token never cancels.
  util::CancelToken cancel;
};

struct DcStats {
  int iterations = 0;
  /// Split of `iterations` by entry point: warm-started solves
  /// (solve_warm) vs cold solves. warm + cold == iterations always.
  int warm_iterations = 0;
  int cold_iterations = 0;
  bool warm_started = false; // this solve entered through solve_warm
  int diode_flips = 0;
  long long factor_nnz = 0;
  long long full_factors = 0; // factorisations incl. symbolic analysis
  long long refactors = 0;    // numeric-only fast-path factorisations
  /// Refactors entered through a cloned cross-instance SparseLU prototype
  /// (subset of `refactors`): the instance skipped its own symbolic
  /// analysis and numeric pivoting entirely.
  long long prototype_refactors = 0;
};

/// Aggregated warm-start carry-over between same-pattern DcSolver
/// instances — the single options struct behind what used to be four
/// separate entry points (set_lu_prototype, seed_column_order, prime,
/// share_factorization; all kept as thin forwarding shims). Populate the
/// pieces you have and hand the struct to DcSolver::warm_start; the donor
/// side snapshots its own with DcSolver::export_warm_start.
///
/// The pieces trade speed against bit-stability independently:
///  - lu_prototype: factored donor SparseLU; the first factorisation
///    clones it and enters through the numeric-only refactor (no symbolic
///    analysis, no pivoting). Fastest, but the donor's pivot order can
///    differ from a cold run's in the last bit.
///  - column_order: fill-reducing ordering seed. Bit-safe — the ordering
///    is a pure function of the MNA pattern, so a seeded solve is
///    bit-identical to one that computes the order itself.
///  - prime_state: when non-null, the solver assembles and fully factors
///    at this device state (exactly the cold path's first factorisation)
///    so every subsequent solve rides the numeric refactor over a frozen,
///    cold-identical pivot structure. Borrowed for the duration of the
///    warm_start call only.
struct WarmStart {
  std::shared_ptr<const la::SparseLU> lu_prototype;
  std::vector<int> column_order;
  const circuit::DeviceState* prime_state = nullptr;
};

class DcSolver {
 public:
  explicit DcSolver(const circuit::Netlist& net, DcOptions options = {})
      : assembler_(net), options_(std::move(options)) {
    la::SparseLU::Options lu_opt;
    lu_opt.ordering = options_.ordering;
    lu_ = la::SparseLU(lu_opt);
  }

  /// Solves for the operating point, iterating diode states / Newton to
  /// consistency. `state` is used as the starting point and updated.
  /// Throws ConvergenceError if no consistent state is found.
  /// Repeated calls on the same solver (with updated source values or
  /// device states) reuse the captured pattern and factorisation.
  std::vector<double> solve(circuit::DeviceState& state);

  /// Warm-start entry point for cross-instance reuse (core::ReusePool):
  /// `state` carries the converged device state of a previous same-shape
  /// instance and `x_warm` its node solution. The PWL/saturation/Shockley
  /// states are first aligned to `x_warm`, then the usual iteration runs —
  /// typically converging in a couple of iterations when the instances are
  /// close (the paper's reprogrammed-crossbar scenario). A positive
  /// `iteration_budget` caps the attempt below Options::max_iterations so a
  /// failed warm start costs little before the caller falls back to a cold
  /// homotopy. Iterations are attributed to DcStats::warm_iterations.
  std::vector<double> solve_warm(circuit::DeviceState& state,
                                 std::span<const double> x_warm,
                                 int iteration_budget = 0);

  /// Installs warm-start carry-over from a previous same-pattern instance:
  /// every populated piece of `w` is applied (ordering seed, then LU
  /// prototype, then canonical priming — see WarmStart for what each piece
  /// buys and costs). Priming is a no-op when reuse_factorization is off
  /// (there is no persistent factorisation to prime) and is not counted in
  /// the per-solve DcStats; callers that reconcile factor counters account
  /// for it separately. Call before solve()/solve_warm().
  void warm_start(const WarmStart& w);

  /// Snapshot of this solver's shareable warm-start state (factored LU as
  /// prototype + its pattern-pure column order), for publishing to the
  /// next same-pattern instance. Both fields are empty when nothing has
  /// been factored yet (e.g. reuse_factorization off); prime_state is
  /// never set — the receiver chooses its own canonical state.
  WarmStart export_warm_start() const;

  /// Shim for warm_start({.lu_prototype = ...}): fast, last-bit unstable
  /// (see WarmStart). Callers that need warm == cold bitwise prime instead.
  void set_lu_prototype(std::shared_ptr<const la::SparseLU> prototype) {
    WarmStart w;
    w.lu_prototype = std::move(prototype);
    warm_start(w);
  }

  /// Shim for warm_start({.column_order = ...}): bit-safe ordering seed (a
  /// wrong-size seed is ignored, and any valid permutation costs fill,
  /// never correctness).
  void seed_column_order(std::vector<int> order) {
    WarmStart w;
    w.column_order = std::move(order);
    warm_start(w);
  }

  /// Shim for warm_start({.prime_state = &state}): canonical priming for
  /// bit-stable warm starts (the quasi-static sweep and min-cut dual
  /// consumers of core::ReusePool). Call with DeviceState::initial and the
  /// cold path's source values before seeding warm state.
  void prime(const circuit::DeviceState& state) {
    WarmStart w;
    w.prime_state = &state;
    warm_start(w);
  }

  /// Fingerprint of this circuit's MNA pattern (captures the pattern on
  /// first call; the pattern is state-independent). Keys core::ReusePool.
  std::uint64_t pattern_key();

  /// Shim for export_warm_start().lu_prototype: the current factorisation
  /// as a cross-instance prototype; null when nothing has been factored.
  std::shared_ptr<const la::SparseLU> share_factorization() const {
    return export_warm_start().lu_prototype;
  }

  const circuit::MnaAssembler& assembler() const { return assembler_; }
  /// Statistics of the most recent solve() call.
  const DcStats& stats() const { return stats_; }

 private:
  std::vector<double> solve_impl(circuit::DeviceState& state,
                                 std::span<const double> x_warm,
                                 int iteration_budget);
  std::vector<double> solve_linear(const circuit::DeviceState& state,
                                   double gmin, bool force_full);
  void factor_full(const la::SparseMatrix& m);

  circuit::MnaAssembler assembler_;
  DcOptions options_;
  DcStats stats_;
  circuit::PatternAssembly pattern_;
  la::SparseLU lu_;
  std::shared_ptr<const la::SparseLU> lu_prototype_;
};

/// Outcome of pooled_warm_start (below).
struct PooledWarmStart {
  bool pool_hit = false;  // the lookup found an entry
  bool primed = false;    // canonical priming ran (one full factorisation)
  bool solved = false;    // x holds the converged warm solution
  std::vector<double> x;
};

/// The bit-stable pooled warm-start protocol shared by the quasi-static
/// sweep and the min-cut dual (see DESIGN.md "Serving architecture"):
/// looks `key` up in `pool`, seeds the pattern-pure column ordering from
/// the pooled prototype, and — when the entry carries a state matching the
/// solver's netlist shape — primes the solver with the cold path's first
/// factorisation (DcSolver::prime at the initial device state, counted by
/// `primed`, not in DcStats) and attempts a seeded solve under
/// `iteration_budget`.
///
/// On success (`solved`), `state` is the converged device state and the
/// solver's DcStats hold the attempt — the caller accumulates them as it
/// would any solve. On a failed attempt, `on_failed_attempt` receives the
/// attempt's stats, `state` is reset to the initial device state, and the
/// caller runs its cold solve exactly as if the pool had missed.
PooledWarmStart pooled_warm_start(
    DcSolver& solver, core::ReusePool& pool, std::uint64_t key,
    circuit::DeviceState& state, int iteration_budget,
    const std::function<void(const DcStats&)>& on_failed_attempt);

} // namespace aflow::sim

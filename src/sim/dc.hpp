// DC operating-point solver.
//
// Handles the two nonlinearities in the substrate's device set:
//  - piecewise-linear ideal diodes, by state pivoting (solve, flip
//    inconsistent diodes, re-solve) with cycle detection that falls back to
//    flipping only the worst violator — the classic way to solve the linear
//    complementarity system an ideal-diode network defines;
//  - Shockley diodes, by damped Newton with junction-voltage limiting.
//
// A gmin-stepping fallback handles nearly-singular systems.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "circuit/mna.hpp"
#include "la/lu.hpp"

namespace aflow::sim {

class ConvergenceError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct DcOptions {
  int max_iterations = 400;
  double shockley_tol = 1e-6; // volts, junction update convergence
  double gmin = 1e-12;
  la::SparseLU::Ordering ordering = la::SparseLU::Ordering::kMinDegree;
};

struct DcStats {
  int iterations = 0;
  int diode_flips = 0;
  long long factor_nnz = 0;
};

class DcSolver {
 public:
  explicit DcSolver(const circuit::Netlist& net, DcOptions options = {})
      : assembler_(net), options_(options) {}

  /// Solves for the operating point, iterating diode states / Newton to
  /// consistency. `state` is used as the starting point and updated.
  /// Throws ConvergenceError if no consistent state is found.
  std::vector<double> solve(circuit::DeviceState& state);

  const circuit::MnaAssembler& assembler() const { return assembler_; }
  const DcStats& stats() const { return stats_; }

 private:
  std::vector<double> solve_linear(const circuit::DeviceState& state,
                                   double gmin);

  circuit::MnaAssembler assembler_;
  DcOptions options_;
  DcStats stats_;
};

} // namespace aflow::sim

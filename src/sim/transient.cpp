#include "sim/transient.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "util/fault_injector.hpp"

namespace aflow::sim {

std::vector<double> Waveform::series(int probe) const {
  std::vector<double> out(samples.size());
  for (size_t k = 0; k < samples.size(); ++k) out[k] = samples[k][probe];
  return out;
}

double convergence_time(std::span<const double> time,
                        std::span<const double> value, double rel_tol) {
  assert(time.size() == value.size());
  if (time.empty()) return 0.0;
  const double vf = value.back();
  if (!std::isfinite(vf)) return time.back(); // diverged: never converged
  const double band = rel_tol * std::abs(vf);
  // Walk backwards to the last sample outside the band.
  for (size_t k = value.size(); k-- > 0;) {
    if (!(std::abs(value[k] - vf) <= band)) // NaN counts as outside
      return k + 1 < time.size() ? time[k + 1] : time.back();
  }
  return time.front();
}

double TransientSolver::probe_value(const Probe& p,
                                    std::span<const double> x) const {
  switch (p.kind) {
    case Probe::Kind::kNodeVoltage: return assembler_.node_voltage(p.id, x);
    case Probe::Kind::kSourceCurrent: return assembler_.vsource_current(p.id, x);
  }
  return 0.0;
}

DivergenceError TransientSolver::make_divergence_error(const Probe& probe,
                                                       const Waveform& wf,
                                                       int probe_index,
                                                       double value, double t,
                                                       double dt) const {
  DivergenceError::Diagnosis d;
  d.probe_label = wf.labels[probe_index].empty() ? "probe"
                                                 : wf.labels[probe_index];
  d.probe_index = probe_index;
  d.node = probe.kind == Probe::Kind::kNodeVoltage ? probe.id : -1;
  d.time = t;
  d.step = stats_.steps;
  d.dt = dt;
  d.value = value;
  // Growth of the probe envelope over the last accepted step: the
  // exponential blow-up signature of an unstable (saddle-point) mode, as
  // opposed to a one-step numerical excursion.
  if (!wf.samples.empty() && std::isfinite(value)) {
    const double prev = std::abs(wf.samples.back()[probe_index]);
    if (prev > 0.0) d.growth_per_step = std::abs(value) / prev;
  }

  char where[160];
  std::snprintf(where, sizeof where, d.node >= 0 ? "%s (node %d)" : "%s",
                d.probe_label.c_str(), d.node);
  char growth[96] = "";
  if (d.growth_per_step > 0.0)
    std::snprintf(growth, sizeof growth, ", growing %.3gx per accepted step",
                  d.growth_per_step);
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "TransientSolver: circuit diverging at t=%.6g s (step %lld, dt=%.3g s): "
      "probe %s reached %.6g (divergence limit %.3g)%s. The idealised "
      "negative conductances make widget-internal nodes saddle points under "
      "capacitive load — see DESIGN.md \"NIC saddle-point instability under "
      "capacitive load\". Mitigations: NegResFidelity::kLag, "
      "SubstrateConfig::stability_margin > 0, or parasitics on crossbar "
      "wires only (parasitics_on_internal_nodes = false).",
      d.time, d.step, d.dt, where, d.value, options_.divergence_limit, growth);
  return DivergenceError(buf, std::move(d));
}

std::uint64_t TransientSolver::pattern_key() {
  if (!pattern_.ready()) {
    circuit::StampOptions opt;
    opt.transient = true;
    opt.gmin = options_.gmin;
    opt.dt = options_.dt_initial;
    circuit::DeviceState s0 =
        circuit::DeviceState::initial(assembler_.netlist());
    assembler_.assemble(s0, opt, pattern_);
  }
  return pattern_.matrix().pattern_key();
}

std::shared_ptr<const la::SparseLU> TransientSolver::share_factorization()
    const {
  if (!lu_.factored()) return nullptr;
  return std::make_shared<const la::SparseLU>(lu_);
}

Waveform TransientSolver::run(circuit::DeviceState& state,
                              const std::vector<Probe>& probes) {
  stats_ = {};
  Waveform wf;
  for (const auto& p : probes)
    wf.labels.push_back(p.label.empty() ? std::string("probe") : p.label);

  const int n = assembler_.num_unknowns();
  std::vector<double> x(n, 0.0);

  const bool reuse = options_.reuse_factorization;
  circuit::PatternAssembly& pattern = pattern_;
  la::Triplets trip_legacy;
  std::vector<double> rhs_legacy;
  la::SparseMatrix m_legacy;

  circuit::StampOptions opt;
  opt.transient = true;
  opt.gmin = options_.gmin;
  opt.dt = options_.dt_initial;

  bool need_factor = true;
  double t = 0.0;
  int steps_at_dt = 0;
  int settled_run = 0;

  // Refreshes the matrix values and history RHS for the current state/dt.
  // In reuse mode this is a numeric-only in-place update against the fixed
  // pattern — and on quiet solves (no pending refactorisation, i.e. no
  // diode flip or dt change since the last full assemble) an RHS-only tape
  // replay that skips the stamp loop and the matrix update entirely: the
  // factors are reused as-is, so only the history terms in b can matter.
  // Returns whether the pattern was reused.
  auto assemble_current = [&]() -> bool {
    if (reuse) {
      if (options_.incremental_rhs && !need_factor && pattern.history_ready()) {
        assembler_.refresh_history_rhs(state, opt, pattern);
        stats_.rhs_refreshes++;
        return true;
      }
      stats_.full_assembles++;
      return assembler_.assemble(state, opt, pattern);
    }
    stats_.full_assembles++;
    assembler_.assemble(state, opt, trip_legacy, rhs_legacy);
    if (need_factor) m_legacy = la::SparseMatrix::from_triplets(trip_legacy);
    return false;
  };
  auto current_rhs = [&]() -> const std::vector<double>& {
    return reuse ? pattern.rhs() : rhs_legacy;
  };

  // Factorises the current matrix: numeric-only refactor when the pattern
  // is unchanged, full factorisation (seeded from the ordering cache, if
  // any) otherwise. The legacy baseline always factors from scratch.
  auto factorize = [&](bool pattern_reused) {
    la::PrototypeEntry entry = la::PrototypeEntry::kNotEntered;
    if (reuse && !lu_.factored())
      // Cross-instance prototype: clone and enter through the numeric-only
      // refactor, skipping this instance's symbolic analysis and pivoting.
      entry = la::enter_prototype(lu_, lu_prototype_.get(), pattern.matrix());
    if (!reuse) {
      lu_.factor(m_legacy);
      stats_.full_factors++;
    } else if (entry == la::PrototypeEntry::kRefactored) {
      stats_.refactors++;
      stats_.prototype_refactors++;
    } else if (entry == la::PrototypeEntry::kFullFactored) {
      stats_.full_factors++; // pivot degraded: fell back internally
    } else if (pattern_reused && lu_.factored()) {
      if (lu_.refactor(pattern.matrix()))
        stats_.refactors++;
      else
        stats_.full_factors++; // pivot degraded: fell back internally
    } else {
      // First factorisation for this pattern: seed the column ordering
      // from the shared cache when available, publish it otherwise.
      la::factor_with_cache(lu_, pattern.matrix(),
                            options_.ordering_cache.get());
      stats_.full_factors++;
    }
    stats_.factorizations++;
    need_factor = false;
  };

  while (t < options_.t_stop && stats_.steps < options_.max_steps) {
    options_.cancel.check();
    // Chaos battery: a forced divergence exercises the same guard (and the
    // same structured DivergenceError) that a real saddle-point blow-up
    // would trip, without needing an actually unstable circuit.
    if (!probes.empty() &&
        util::FaultInjector::instance().take("transient.step",
                                             util::FaultInjector::Action::kDiverge))
      throw make_divergence_error(probes[0], wf, 0,
                                  options_.divergence_limit * 2.0, t, opt.dt);
    // Resolve this step: solve, flip inconsistent diodes, repeat.
    // Dynamic-state history enters through `rhs`, so any diode flip forces
    // reassembly (values change but the pattern is static: off-diodes stamp
    // 1/Roff, on-diodes 1/Ron at the same positions). If the events refuse
    // to settle (clamp chattering during fast slews), reject the step and
    // retry at half the step size, where the capacitive stamps dominate and
    // the per-step complementarity problem is easier.
    const circuit::DeviceState step_start = state;
    int halvings = 0;
    for (;;) {
      bool settled_events = false;
      for (int event_iter = 0; event_iter <= options_.max_event_iterations;
           ++event_iter) {
        // Dynamic-state history enters through the RHS, so assembly runs
        // every solve; the matrix is only (re)factorised on events.
        const bool pattern_reused = assemble_current();
        if (need_factor) factorize(pattern_reused);
        lu_.solve(current_rhs(), x);
        stats_.solves++;
        const double shockley_dv = assembler_.update_shockley_points(x, state);
        const int sat_flips = assembler_.update_opamp_saturation(x, opt, state);
        const int flips = sat_flips + assembler_.update_pwl_diode_states(
            x, state,
            event_iter <= 20 ? circuit::MnaAssembler::FlipPolicy::kAll
            : event_iter <= 40
                ? circuit::MnaAssembler::FlipPolicy::kWorst
                : circuit::MnaAssembler::FlipPolicy::kRandom,
            static_cast<std::uint64_t>(event_iter) * 2654435761u);
        if (flips > 0) {
          stats_.diode_flips += flips;
          need_factor = true;
          continue;
        }
        if (shockley_dv >= 1e-6) { need_factor = true; continue; }
        settled_events = true;
        break;
      }
      if (settled_events) break;
      if (++halvings > 24)
        throw ConvergenceError(
            "TransientSolver: diode events did not settle at t=" +
            std::to_string(t) + " (dt=" + std::to_string(opt.dt) +
            ", step=" + std::to_string(stats_.steps) +
            ") even after step-size backoff");
      state = step_start;
      opt.dt *= 0.5;
      steps_at_dt = 0;
      need_factor = true;
      stats_.step_rejections++;
    }

    assembler_.advance_dynamic_states(x, opt, state);
    t += opt.dt;
    stats_.steps++;

    wf.time.push_back(t);
    std::vector<double> row(probes.size());
    for (size_t p = 0; p < probes.size(); ++p) {
      row[p] = probe_value(probes[p], x);
      if (!std::isfinite(row[p]) || std::abs(row[p]) > options_.divergence_limit)
        throw make_divergence_error(probes[p], wf, static_cast<int>(p), row[p],
                                    t, opt.dt);
    }

    // Early-settle detection.
    if (options_.settle_tol && !wf.samples.empty()) {
      const auto& prev = wf.samples.back();
      bool stable = true;
      for (size_t p = 0; p < row.size(); ++p) {
        const double scale = std::max({std::abs(row[p]), std::abs(prev[p]), 1e-12});
        if (std::abs(row[p] - prev[p]) > *options_.settle_tol * scale) {
          stable = false;
          break;
        }
      }
      settled_run = stable ? settled_run + 1 : 0;
    }
    wf.samples.push_back(std::move(row));
    if (options_.settle_tol && settled_run >= options_.settle_window &&
        opt.dt >= options_.dt_max) {
      stats_.settled = true;
      break;
    }

    // Geometric dt schedule: hold for steps_per_dt accepted steps, then
    // double (each change costs one refactorisation).
    if (++steps_at_dt >= options_.steps_per_dt && opt.dt < options_.dt_max) {
      opt.dt = std::min(opt.dt * 2.0, options_.dt_max);
      steps_at_dt = 0;
      need_factor = true;
    }
  }
  stats_.end_time = t;
  last_x_ = std::move(x);
  return wf;
}

} // namespace aflow::sim

// Quasi-static source sweep (Sec. 6.5 of the paper): ramp a voltage source
// slowly enough that the circuit tracks its DC operating point, and record
// the trajectory of selected probes. Diode state changes between sweep
// points are reported as breakpoints — these are the corners (points D, B,
// ...) of the piecewise-linear voltage trajectory in Fig. 15c.
//
// Cross-request warm start: a sweep can consult a core::ReusePool (the same
// per-pattern entries the DC/transient adapters feed) to seed its first
// point from the converged device state of the previous same-pattern
// request, collapsing the first point's PWL search to a couple of
// iterations. The warm path is bit-identical to a cold sweep by
// construction: only the pattern-pure column ordering is taken from the
// pooled prototype, and the solver is primed with the exact factorisation a
// cold sweep would compute first (DcSolver::prime), so every reported
// trajectory value is the same arithmetic either way.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/reuse_pool.hpp"
#include "sim/dc.hpp"
#include "sim/transient.hpp"

namespace aflow::sim {

struct SweepBreakpoint {
  double source_value = 0.0; // sweep value at which diode states changed
  int flips = 0;             // how many diodes changed state
};

/// Work/telemetry counters accumulated over all sweep points.
struct SweepStats {
  int dc_iterations = 0;
  /// Split of dc_iterations by entry point; warm ones come from the pooled
  /// first-point seed. warm + cold == dc_iterations always.
  int warm_iterations = 0;
  int cold_iterations = 0;
  /// Includes the canonical priming factorisation of a warm start.
  long long full_factors = 0;
  long long refactors = 0;
  bool warm_started = false; // first point was seeded from the pool
  /// ReusePool traffic (zero without a pool): one lookup per run.
  long long pool_hits = 0;
  long long pool_misses = 0;
  long long pool_evictions = 0;
};

struct SweepResult {
  std::vector<double> source_values;
  /// trajectory[k][p] = probe p at sweep point k.
  std::vector<std::vector<double>> trajectory;
  std::vector<SweepBreakpoint> breakpoints;
  SweepStats stats;
};

class QuasiStaticSweep {
 public:
  /// `pool` opts into cross-request warm starts (see file comment); the
  /// sweep publishes its factorisation and its first point's converged
  /// state back to the pool, so later sweeps of the same pattern seed
  /// their first point from it.
  QuasiStaticSweep(circuit::Netlist& net, int swept_source,
                   DcOptions options = {},
                   std::shared_ptr<core::ReusePool> pool = nullptr)
      : net_(&net), source_(swept_source), options_(options),
        pool_(std::move(pool)) {}

  /// Iteration cap for the pooled first-point attempt before falling back
  /// to the cold start (bounds the cost of a stale seed).
  int warm_iteration_budget = 48;

  /// DC-solves at each source value (warm-starting diode states from the
  /// previous point, as a slow physical ramp would).
  SweepResult run(const std::vector<double>& values,
                  const std::vector<Probe>& probes);

 private:
  circuit::Netlist* net_;
  int source_;
  DcOptions options_;
  std::shared_ptr<core::ReusePool> pool_;
};

} // namespace aflow::sim

// Quasi-static source sweep (Sec. 6.5 of the paper): ramp a voltage source
// slowly enough that the circuit tracks its DC operating point, and record
// the trajectory of selected probes. Diode state changes between sweep
// points are reported as breakpoints — these are the corners (points D, B,
// ...) of the piecewise-linear voltage trajectory in Fig. 15c.
#pragma once

#include <vector>

#include "sim/dc.hpp"
#include "sim/transient.hpp"

namespace aflow::sim {

struct SweepBreakpoint {
  double source_value = 0.0; // sweep value at which diode states changed
  int flips = 0;             // how many diodes changed state
};

struct SweepResult {
  std::vector<double> source_values;
  /// trajectory[k][p] = probe p at sweep point k.
  std::vector<std::vector<double>> trajectory;
  std::vector<SweepBreakpoint> breakpoints;
};

class QuasiStaticSweep {
 public:
  QuasiStaticSweep(circuit::Netlist& net, int swept_source, DcOptions options = {})
      : net_(&net), source_(swept_source), options_(options) {}

  /// DC-solves at each source value (warm-starting diode states from the
  /// previous point, as a slow physical ramp would).
  SweepResult run(const std::vector<double>& values,
                  const std::vector<Probe>& probes);

 private:
  circuit::Netlist* net_;
  int source_;
  DcOptions options_;
};

} // namespace aflow::sim

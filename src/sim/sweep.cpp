#include "sim/sweep.hpp"

namespace aflow::sim {

SweepResult QuasiStaticSweep::run(const std::vector<double>& values,
                                  const std::vector<Probe>& probes) {
  SweepResult result;
  circuit::DeviceState state = circuit::DeviceState::initial(*net_);

  // One solver across the sweep: each point is a small perturbation of the
  // previous one, so the factorisation-reuse fast path carries over.
  DcSolver solver(*net_, options_);
  std::vector<char> prev_diodes = state.diode_on;
  for (double v : values) {
    net_->set_vsource_value(source_, v);
    const std::vector<double> x = solver.solve(state);

    int flips = 0;
    for (size_t i = 0; i < state.diode_on.size(); ++i)
      if (state.diode_on[i] != prev_diodes[i]) ++flips;
    if (flips > 0) result.breakpoints.push_back({v, flips});
    prev_diodes = state.diode_on;

    result.source_values.push_back(v);
    std::vector<double> row(probes.size());
    const auto& asmbl = solver.assembler();
    for (size_t p = 0; p < probes.size(); ++p) {
      row[p] = probes[p].kind == Probe::Kind::kNodeVoltage
                   ? asmbl.node_voltage(probes[p].id, x)
                   : asmbl.vsource_current(probes[p].id, x);
    }
    result.trajectory.push_back(std::move(row));
  }
  return result;
}

} // namespace aflow::sim

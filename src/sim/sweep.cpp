#include "sim/sweep.hpp"

#include <utility>

namespace aflow::sim {

SweepResult QuasiStaticSweep::run(const std::vector<double>& values,
                                  const std::vector<Probe>& probes) {
  SweepResult result;
  circuit::DeviceState state = circuit::DeviceState::initial(*net_);
  // Breakpoint baseline: diode states of the cold start (a successful
  // pooled warm start below replaces `state` with the converged seed, but
  // point 0's reported flips must still be measured against rest).
  std::vector<char> prev_diodes = state.diode_on;

  // One solver across the sweep: each point is a small perturbation of the
  // previous one, so the factorisation-reuse fast path carries over.
  DcSolver solver(*net_, options_);

  auto accumulate = [&](const DcStats& s) {
    result.stats.dc_iterations += s.iterations;
    result.stats.warm_iterations += s.warm_iterations;
    result.stats.cold_iterations += s.cold_iterations;
    result.stats.full_factors += s.full_factors;
    result.stats.refactors += s.refactors;
  };

  // Cross-request warm start (see header): the shared bit-stable pool
  // protocol seeds point 0 from the previous same-pattern request's
  // converged state; a failed attempt falls back to the cold start below.
  std::uint64_t pool_key = 0;
  PooledWarmStart warm;
  const bool pooled =
      pool_ && options_.reuse_factorization && !values.empty();
  if (pooled) {
    pool_key = solver.pattern_key();
    net_->set_vsource_value(source_, values.front());
    warm = pooled_warm_start(solver, *pool_, pool_key, state,
                             warm_iteration_budget, accumulate);
    result.stats.pool_hits = warm.pool_hit ? 1 : 0;
    result.stats.pool_misses = warm.pool_hit ? 0 : 1;
    if (warm.primed) result.stats.full_factors++; // the priming factorisation
  }

  std::vector<double> x;
  // What the pool wants back is the *first* point's converged state: sweeps
  // ramp monotonically, so the best seed for the next same-pattern
  // request's first point is this request's first point, not its last.
  circuit::DeviceState first_state;
  std::vector<double> first_x;
  for (double v : values) {
    net_->set_vsource_value(source_, v);
    if (warm.solved) {
      // Pooled first point, already solved at values.front(); from here
      // every later point warm-starts from its predecessor exactly as a
      // cold sweep would. The solver's stats still hold the attempt.
      x = std::move(warm.x);
      result.stats.warm_started = true;
      warm.solved = false;
    } else {
      x = solver.solve(state);
    }
    accumulate(solver.stats());
    if (first_x.empty()) {
      first_state = state;
      first_x = x;
    }

    int flips = 0;
    for (size_t i = 0; i < state.diode_on.size(); ++i)
      if (state.diode_on[i] != prev_diodes[i]) ++flips;
    if (flips > 0) result.breakpoints.push_back({v, flips});
    prev_diodes = state.diode_on;

    result.source_values.push_back(v);
    std::vector<double> row(probes.size());
    const auto& asmbl = solver.assembler();
    for (size_t p = 0; p < probes.size(); ++p) {
      row[p] = probes[p].kind == Probe::Kind::kNodeVoltage
                   ? asmbl.node_voltage(probes[p].id, x)
                   : asmbl.vsource_current(probes[p].id, x);
    }
    result.trajectory.push_back(std::move(row));
  }

  if (pooled && !first_x.empty()) {
    core::ReuseEntry entry;
    entry.lu = solver.share_factorization();
    entry.state =
        std::make_shared<const circuit::DeviceState>(std::move(first_state));
    entry.x = std::make_shared<const std::vector<double>>(std::move(first_x));
    result.stats.pool_evictions = pool_->store(pool_key, std::move(entry));
  }
  return result;
}

} // namespace aflow::sim

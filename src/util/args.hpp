// Tiny `--key value` / `--flag` argv parsing, shared by the aflow CLI and
// the benches.
#pragma once

#include <cstring>
#include <string>

namespace aflow::util {

/// Returns the value following `--key` in argv, or `fallback`.
inline std::string arg_string(int argc, char** argv, const char* key,
                              std::string fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], key) == 0) return argv[i + 1];
  return fallback;
}

inline double arg_double(int argc, char** argv, const char* key, double fallback) {
  const std::string s = arg_string(argc, argv, key, "");
  return s.empty() ? fallback : std::stod(s);
}

inline int arg_int(int argc, char** argv, const char* key, int fallback) {
  const std::string s = arg_string(argc, argv, key, "");
  return s.empty() ? fallback : std::stoi(s);
}

inline bool arg_flag(int argc, char** argv, const char* key) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], key) == 0) return true;
  return false;
}

} // namespace aflow::util

#include "util/event_loop.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#ifndef _WIN32
#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace aflow::util {

#ifdef _WIN32

void set_nonblocking(int) {
  throw std::runtime_error("event_loop: not supported on this platform");
}
bool would_block(int) { return false; }
SelfPipe::SelfPipe() {
  throw std::runtime_error("event_loop: not supported on this platform");
}
SelfPipe::~SelfPipe() = default;
void SelfPipe::notify() const {}
void SelfPipe::drain() const {}
size_t Poller::add(int, short) { return 0; }
int Poller::wait(int) { return 0; }
short Poller::revents(size_t) const { return 0; }
int listen_unix(const std::string&, int) {
  throw std::runtime_error("event_loop: not supported on this platform");
}
int listen_tcp(const std::string&, int, std::uint16_t*) {
  throw std::runtime_error("event_loop: not supported on this platform");
}
void set_tcp_nodelay(int) {}

#else // POSIX

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

} // namespace

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    fail("fcntl(O_NONBLOCK)");
}

bool would_block(int err) {
  return err == EAGAIN || err == EWOULDBLOCK;
}

SelfPipe::SelfPipe() {
  if (::pipe(fds_) < 0) fail("pipe");
  set_nonblocking(fds_[0]);
  set_nonblocking(fds_[1]);
}

SelfPipe::~SelfPipe() {
  if (fds_[0] >= 0) ::close(fds_[0]);
  if (fds_[1] >= 0) ::close(fds_[1]);
}

void SelfPipe::notify() const {
  const char byte = 1;
  // A full pipe already guarantees a pending wake; EAGAIN is success.
  [[maybe_unused]] const ssize_t n = ::write(fds_[1], &byte, 1);
}

void SelfPipe::drain() const {
  char buf[256];
  while (::read(fds_[0], buf, sizeof buf) > 0) {
  }
}

size_t Poller::add(int fd, short events) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  fds_.push_back(p);
  return fds_.size() - 1;
}

int Poller::wait(int timeout_ms) {
  if (fds_.empty()) return 0;
  const int r = ::poll(fds_.data(), fds_.size(), timeout_ms);
  if (r < 0) {
    if (errno == EINTR) return 0;
    fail("poll");
  }
  return r;
}

short Poller::revents(size_t slot) const { return fds_[slot].revents; }

int listen_unix(const std::string& path, int backlog) {
  if (path.empty())
    throw std::runtime_error("listen_unix: socket path is required");
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("listen_unix: socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket(AF_UNIX)");
  addr.sun_family = AF_UNIX;
  path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    const std::string msg =
        std::string("bind/listen(") + path + "): " + std::strerror(errno);
    ::close(fd);
    throw std::runtime_error(msg);
  }
  set_nonblocking(fd);
  return fd;
}

int listen_tcp(const std::string& address, int backlog,
               std::uint16_t* bound_port) {
  std::string host, port;
  if (!address.empty() && address.front() == '[') {
    // Bracketed IPv6 literal: [::1]:8080. getaddrinfo wants the bare
    // address, so strip the brackets here.
    const size_t rb = address.find("]:");
    if (rb == std::string::npos || rb + 2 >= address.size())
      throw std::runtime_error(
          "listen_tcp: address must be [IPV6]:PORT, got '" + address + "'");
    host = address.substr(1, rb - 1);
    port = address.substr(rb + 2);
  } else {
    const size_t colon = address.rfind(':');
    if (colon == std::string::npos || colon + 1 >= address.size())
      throw std::runtime_error("listen_tcp: address must be HOST:PORT, got '" +
                               address + "'");
    host = address.substr(0, colon);
    port = address.substr(colon + 1);
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                port.c_str(), &hints, &res);
  if (gai != 0)
    throw std::runtime_error("listen_tcp: cannot resolve '" + address +
                             "': " + ::gai_strerror(gai));

  int fd = -1;
  std::string err = "listen_tcp: no usable address for '" + address + "'";
  for (const addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0)
      break;
    err = std::string("bind/listen(") + address + "): " + std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) throw std::runtime_error(err);
  set_nonblocking(fd);

  if (bound_port) {
    sockaddr_storage ss{};
    socklen_t len = sizeof ss;
    *bound_port = 0;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) == 0) {
      if (ss.ss_family == AF_INET)
        *bound_port =
            ntohs(reinterpret_cast<const sockaddr_in*>(&ss)->sin_port);
      else if (ss.ss_family == AF_INET6)
        *bound_port =
            ntohs(reinterpret_cast<const sockaddr_in6*>(&ss)->sin6_port);
    }
  }
  return fd;
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

#endif // _WIN32

} // namespace aflow::util

// Bounded blocking request queue between the serving front's I/O plane and
// its fixed worker pool (multiple producers — one per I/O thread — feeding
// multiple pool workers; the classic MPSC shape generalised to a shared
// consumer pool).
//
// The queue is deliberately a mutex + two condvars rather than a lock-free
// ring: occupancy is structurally tiny (the front schedules at most ONE
// item per connection, so size() never exceeds the open-connection count),
// contention is a handful of threads, and the simple form is trivially
// ThreadSanitizer-clean. The capacity bound is a memory-safety backstop,
// not a flow-control mechanism — per-connection flow control happens
// upstream (the I/O plane stops *reading* a connection at its pipelining
// limit, so unread bytes stay in the kernel socket buffer instead of
// becoming queued work).
//
// close() wakes every waiter, fails all future pushes, and hands the items
// still queued back to the caller: it is only called on shutdown, when
// pending requests are work on behalf of clients the process is about to
// hang up on anyway — but the caller may still need the items to unwind
// per-item bookkeeping (the serving front posts an empty response for each
// so the connection's in-flight flag clears and its close sweep can run).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace aflow::util {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Blocks while the queue is full; returns false (dropping the item)
  /// once the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed; nullopt
  /// means closed (workers exit on it).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (closed_) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Fails future pushes, wakes every waiter, and returns the items that
  /// were still queued (never handed to a consumer) so the caller can
  /// unwind whatever state was pinned on their completion.
  std::deque<T> close() {
    std::deque<T> orphaned;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      orphaned.swap(items_);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    return orphaned;
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

} // namespace aflow::util

// Cooperative cancellation for long-running solves.
//
// A CancelToken is a cheap, copyable handle to shared cancellation state:
// an explicit flag (cancel()), an optional monotonic deadline, and an
// optional parent token. A default-constructed token has no state and
// never cancels, so threading tokens through hot paths costs one pointer
// test per check. Solver loops call `check()` at their natural iteration
// boundaries (a Dinic BFS phase, a Newton iteration, an accepted transient
// step, a batch work-item claim); `check()` throws CancelledError, which
// unwinds like any solver failure and is classified as a *retryable*
// structured error by the serving layer (core/errors.hpp).
//
// Parent chaining composes a per-session token (cancelled when the client
// disconnects) with a per-request deadline: the request token's deadline
// trips independently, and cancelling the session token trips every
// request token derived from it.
//
// This lives in util/ (not core/) because the flow/ and sim/ layers — which
// host the innermost loops — must not depend on core/. core/solver.hpp
// aliases it as core::CancelToken.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

namespace aflow::util {

/// Why a cancellation fired: an explicit cancel() (client disconnect,
/// shutdown) or an expired deadline. Serving maps these to distinct
/// machine-readable error codes ("cancelled" vs "deadline_exceeded").
enum class CancelReason { kCancelled, kDeadline };

/// Thrown by CancelToken::check(). Derives from std::runtime_error so
/// existing catch-and-report paths (BatchEngine isolation, serve handle())
/// keep working; the serving layer dynamic_casts to recover the reason.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(reason == CancelReason::kDeadline
                               ? "solve cancelled: deadline exceeded"
                               : "solve cancelled"),
        reason_(reason) {}
  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never cancels; checks are a single null test.
  CancelToken() = default;

  /// A cancellable token with no deadline.
  static CancelToken cancellable() {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// A token that trips `timeout` from now. Non-positive timeouts yield an
  /// already-expired token (the first check throws).
  static CancelToken with_timeout(std::chrono::milliseconds timeout) {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    t.state_->has_deadline = true;
    t.state_->deadline = Clock::now() + timeout;
    return t;
  }

  /// A child of this token: cancelling the parent cancels the child; the
  /// child's own deadline/flag never propagate up. `timeout_ms <= 0` means
  /// no child deadline.
  CancelToken child(long long timeout_ms = 0) const {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    t.state_->parent = state_;
    if (timeout_ms > 0) {
      t.state_->has_deadline = true;
      t.state_->deadline =
          Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
    return t;
  }

  /// Trips the explicit flag. Safe from any thread; no-op on a default
  /// (stateless) token.
  void cancel() const {
    if (state_) state_->flag.store(true, std::memory_order_release);
  }

  bool can_cancel() const { return state_ != nullptr; }

  /// True when the token (or an ancestor) has been cancelled or its
  /// deadline has passed. Never throws.
  bool cancelled() const { return reason_if_cancelled().has_value(); }

  /// Throws CancelledError when cancelled; otherwise returns.
  void check() const {
    if (!state_) return;
    if (const auto reason = reason_if_cancelled())
      throw CancelledError(*reason);
  }

  /// The deadline closest to now across this token and its ancestors, or
  /// nullopt when none carries one. Used to size bounded waits (e.g. the
  /// fault injector's sliced delays).
  std::optional<Clock::time_point> deadline() const {
    std::optional<Clock::time_point> best;
    for (const State* s = state_.get(); s; s = s->parent.get())
      if (s->has_deadline && (!best || s->deadline < *best))
        best = s->deadline;
    return best;
  }

 private:
  struct State {
    std::atomic<bool> flag{false};
    bool has_deadline = false;          // immutable after construction
    Clock::time_point deadline{};       // immutable after construction
    std::shared_ptr<const State> parent; // immutable after construction
  };

  std::optional<CancelReason> reason_if_cancelled() const {
    bool deadline_hit = false;
    for (const State* s = state_.get(); s; s = s->parent.get()) {
      if (s->flag.load(std::memory_order_acquire))
        return CancelReason::kCancelled;
      if (s->has_deadline && Clock::now() >= s->deadline) deadline_hit = true;
    }
    if (deadline_hit) return CancelReason::kDeadline;
    return std::nullopt;
  }

  std::shared_ptr<State> state_;
};

} // namespace aflow::util

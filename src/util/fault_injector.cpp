#include "util/fault_injector.hpp"

#include <chrono>
#include <new>
#include <stdexcept>
#include <thread>

namespace aflow::util {

namespace {

bool fireable_from_fire(FaultInjector::Action a) {
  return a == FaultInjector::Action::kThrow ||
         a == FaultInjector::Action::kBadAlloc ||
         a == FaultInjector::Action::kDelay;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t at = s.find(sep, start);
    if (at == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, at - start));
    start = at + 1;
  }
  return out;
}

long long parse_ll(const std::string& s, const std::string& what) {
  try {
    size_t used = 0;
    const long long v = std::stoll(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultInjector: bad " + what + " '" + s + "'");
  }
}

} // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& spec) {
  armed_.store(false, std::memory_order_relaxed);
  rules_.clear();
  for (const std::string& part : split(spec, ';')) {
    if (part.empty()) continue;
    const std::vector<std::string> fields = split(part, ':');
    if (fields.size() < 2)
      throw std::invalid_argument(
          "FaultInjector: fault spec needs site:action, got '" + part + "'");
    auto rule = std::make_unique<Rule>();
    rule->site = fields[0];
    const std::string& action = fields[1];
    if (action == "throw") rule->action = Action::kThrow;
    else if (action == "badalloc") rule->action = Action::kBadAlloc;
    else if (action == "delay") rule->action = Action::kDelay;
    else if (action == "diverge") rule->action = Action::kDiverge;
    else if (action == "short") rule->action = Action::kShort;
    else
      throw std::invalid_argument("FaultInjector: unknown action '" + action +
                                  "' in '" + part + "'");
    for (size_t i = 2; i < fields.size(); ++i) {
      const std::string& f = fields[i];
      if (f.rfind("after=", 0) == 0)
        rule->after = parse_ll(f.substr(6), "after");
      else if (f.rfind("count=", 0) == 0)
        rule->count = parse_ll(f.substr(6), "count");
      else if (rule->action == Action::kDelay && i == 2)
        rule->param = parse_ll(f, "delay ms");
      else
        throw std::invalid_argument("FaultInjector: unknown field '" + f +
                                    "' in '" + part + "'");
    }
    rules_.push_back(std::move(rule));
  }
  armed_.store(!rules_.empty(), std::memory_order_relaxed);
}

void FaultInjector::fire(const std::string& site, const CancelToken* cancel) {
  if (!armed()) return;
  for (const auto& rule : rules_) {
    if (rule->site != site || !fireable_from_fire(rule->action)) continue;
    const long long arrival = rule->arrivals.fetch_add(1);
    if (arrival < rule->after) continue;
    if (rule->count > 0 && rule->fired.load() >= rule->count) continue;
    rule->fired.fetch_add(1);
    switch (rule->action) {
      case Action::kThrow:
        throw std::runtime_error("injected fault at " + site);
      case Action::kBadAlloc:
        throw std::bad_alloc();
      case Action::kDelay: {
        // Sliced sleep so an injected stall stays cancellable and a
        // deadline still bounds the request.
        long long remaining = rule->param;
        while (remaining > 0) {
          if (cancel) cancel->check();
          const long long slice = remaining < 10 ? remaining : 10;
          std::this_thread::sleep_for(std::chrono::milliseconds(slice));
          remaining -= slice;
        }
        if (cancel) cancel->check();
        break;
      }
      default: break;
    }
  }
}

bool FaultInjector::take(const std::string& site, Action action) {
  if (!armed()) return false;
  for (const auto& rule : rules_) {
    if (rule->site != site || rule->action != action) continue;
    const long long arrival = rule->arrivals.fetch_add(1);
    if (arrival < rule->after) continue;
    if (rule->count > 0 && rule->fired.load() >= rule->count) continue;
    rule->fired.fetch_add(1);
    return true;
  }
  return false;
}

long long FaultInjector::arrivals(const std::string& site) const {
  long long total = 0;
  for (const auto& rule : rules_)
    if (rule->site == site) total += rule->arrivals.load();
  return total;
}

long long FaultInjector::fired(const std::string& site) const {
  long long total = 0;
  for (const auto& rule : rules_)
    if (rule->site == site) total += rule->fired.load();
  return total;
}

} // namespace aflow::util

#include "util/json.hpp"

#include <fstream>

namespace aflow::util {

void write_json_file(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write JSON report: " + path);
  out << json << '\n';
  if (!out) throw std::runtime_error("failed writing JSON report: " + path);
}

} // namespace aflow::util

// Deterministic, seeded fault injection for the chaos test battery.
//
// Production code marks its interesting failure points with
// `FaultInjector::instance().fire("site.name")` (or `take(site, action)`
// for faults the site must realise itself, like a forced divergence or a
// shortened socket write). With no schedule armed the fast path is one
// relaxed atomic load — cheap enough to leave compiled into release
// builds, which is what lets one `aflow serve --faults ...` binary drive
// the chaos battery under any build type.
//
// A schedule is a ';'-separated list of fault specs:
//
//   site:action[:param][:after=N][:count=K]
//
//   action  one of
//     throw    fire() throws std::runtime_error("injected fault at <site>")
//     badalloc fire() throws std::bad_alloc
//     delay    fire() sleeps <param> ms (sliced, honouring a CancelToken)
//     diverge  take(site, kDiverge) returns true; the site forges the fault
//     short    take(site, kShort) returns true; the site shortens its write
//   after=N  skip the first N arrivals at the site (default 0)
//   count=K  fire at most K times (default 1; count=0 means unlimited)
//
// Example: "shard.region:throw:after=1;transient.step:diverge" throws on
// the second region solve and forces the first transient divergence check.
// Schedules come from the AFLOW_FAULTS environment variable or the serve
// `--faults` flag; arrival counters are process-wide and monotonic, so a
// given schedule is deterministic for a deterministic request stream.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "util/cancel.hpp"

namespace aflow::util {

class FaultInjector {
 public:
  enum class Action { kThrow, kBadAlloc, kDelay, kDiverge, kShort };

  static FaultInjector& instance();

  /// Replaces the armed schedule. Empty spec disarms. Throws
  /// std::invalid_argument on grammar errors. Not thread-safe against
  /// concurrent fire() — arm before starting workers (tests and serve
  /// startup both do).
  void arm(const std::string& spec);
  void disarm() { arm(""); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Counts an arrival at `site` and executes any matching throw/badalloc/
  /// delay fault. Delay sleeps in 10 ms slices, re-checking `cancel` so an
  /// injected stall stays cancellable.
  void fire(const std::string& site, const CancelToken* cancel = nullptr);

  /// Counts an arrival and reports whether a fault of `action` should be
  /// realised by the caller (forced divergence, shortened write, ...).
  bool take(const std::string& site, Action action);

  /// Total arrivals at `site` since the last arm(). Test-only telemetry.
  long long arrivals(const std::string& site) const;

  /// Faults actually fired at `site` since the last arm().
  long long fired(const std::string& site) const;

 private:
  struct Rule {
    std::string site;
    Action action = Action::kThrow;
    long long param = 0;   // delay ms
    long long after = 0;   // arrivals to skip
    long long count = 1;   // max firings; 0 = unlimited
    std::atomic<long long> arrivals{0};
    std::atomic<long long> fired{0};
  };

  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  std::vector<std::unique_ptr<Rule>> rules_;
};

} // namespace aflow::util

// Minimal streaming JSON writer for the machine-readable bench reports
// (BENCH_*.json): objects, arrays, strings with escaping, and numbers.
// Append-only with automatic comma management — enough for flat telemetry
// documents without pulling in a JSON dependency. Doubles are emitted with
// max_digits10 precision; non-finite values become null (JSON has no NaN).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace aflow::util {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Key of the next value inside an object.
  JsonWriter& key(std::string_view name) {
    separate();
    write_string(name);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    separate();
    write_string(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v) {
    separate();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(long long v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(size_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(bool v) {
    separate();
    out_ += v ? "true" : "false";
    return *this;
  }

  /// Shorthand for key(...).value(...).
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    return key(name).value(v);
  }

  /// The finished document; throws if containers are still open.
  const std::string& str() const {
    if (!depth_.empty())
      throw std::logic_error("JsonWriter: unclosed container");
    return out_;
  }

 private:
  JsonWriter& open(char c) {
    separate();
    out_ += c;
    depth_.push_back(false);
    return *this;
  }
  JsonWriter& close(char c) {
    if (depth_.empty()) throw std::logic_error("JsonWriter: nothing to close");
    depth_.pop_back();
    out_ += c;
    mark_value_written();
    return *this;
  }
  /// Emits the separating comma when needed and consumes a pending key.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!depth_.empty()) {
      if (depth_.back()) out_ += ',';
      depth_.back() = true;
    }
  }
  void mark_value_written() {
    if (!depth_.empty()) depth_.back() = true;
  }
  void write_string(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> depth_; // per open container: a value was written
  bool pending_key_ = false;
};

/// Writes `json` to `path` (with a trailing newline). Throws
/// std::runtime_error when the file cannot be written.
void write_json_file(const std::string& path, const std::string& json);

} // namespace aflow::util

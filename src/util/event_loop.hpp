// Event-loop primitives for the nonblocking serving front: fd helpers, a
// self-pipe wakeup, a pollfd-set builder, and listener construction for
// both supported transports (Unix stream sockets and TCP).
//
// These are thin, dependency-free wrappers over POSIX poll(2)/socket(2) so
// core/serve_front.cpp can stay about connection state machines rather
// than syscall plumbing. Everything here is POSIX-only; on _WIN32 the
// functions throw (the serving front is guarded the same way).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef _WIN32
#include <poll.h>
#endif

namespace aflow::util {

#ifdef _WIN32
struct pollfd {
  int fd;
  short events;
  short revents;
};
#else
using ::pollfd;
#endif

/// Sets O_NONBLOCK on `fd`. Throws std::runtime_error on failure.
void set_nonblocking(int fd);

/// True for errno values that mean "retry later" on a nonblocking fd.
bool would_block(int err);

/// Cross-thread wakeup for a poll loop: poll the read fd for POLLIN,
/// notify() from any thread to interrupt the wait, drain() on wake.
/// Notifications coalesce (a pipe full of wake bytes is one wake).
class SelfPipe {
 public:
  SelfPipe();
  ~SelfPipe();
  SelfPipe(const SelfPipe&) = delete;
  SelfPipe& operator=(const SelfPipe&) = delete;

  int read_fd() const { return fds_[0]; }
  /// Async-signal-ish: one nonblocking write; safe from any thread.
  void notify() const;
  /// Empties the pipe (call when the read fd polls readable).
  void drain() const;

 private:
  int fds_[2] = {-1, -1};
};

/// Builder for one poll(2) call: register fds each iteration, wait once,
/// then query readiness by the index `add` returned. Rebuilding the set
/// every iteration keeps registration state out of the connection objects;
/// at serving scale (hundreds to low thousands of fds) the O(n) rebuild is
/// noise next to the poll itself.
class Poller {
 public:
  void clear() { fds_.clear(); }
  /// Registers `fd` for `events`; returns its slot for revents().
  size_t add(int fd, short events);
  /// poll(2) over the registered set. Returns the ready count (0 on
  /// timeout); EINTR is reported as 0. Throws on other poll failures.
  int wait(int timeout_ms);
  short revents(size_t slot) const;

 private:
  std::vector<pollfd> fds_;
};

/// Binds and listens on a nonblocking Unix stream socket at `path`
/// (replacing any stale socket file). Returns the listening fd.
int listen_unix(const std::string& path, int backlog);

/// Binds and listens on a nonblocking TCP socket. `address` is HOST:PORT
/// (numeric or resolvable host; port 0 asks the kernel for an ephemeral
/// port); IPv6 literals may be bracketed, e.g. "[::1]:8080". Returns the
/// listening fd and stores the actually-bound port in `bound_port`.
int listen_tcp(const std::string& address, int backlog,
               std::uint16_t* bound_port);

/// Disables Nagle on a connected TCP socket (one-line requests must not
/// wait out a 40 ms delayed-ack window). No-op on failure — latency tuning
/// must never kill a connection.
void set_tcp_nodelay(int fd);

} // namespace aflow::util

#include "graph/dimacs.hpp"

#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace aflow::graph {

FlowNetwork read_dimacs(std::istream& in) {
  std::string line;
  int n = -1;
  long long m = -1;
  int source = -1;
  int sink = -1;
  struct Arc { int u, v; double cap; };
  std::vector<Arc> arcs;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    switch (kind) {
      case 'c': break; // comment
      case 'p': {
        if (n != -1)
          throw std::runtime_error(
              "read_dimacs: duplicate problem line ('p' may appear once)");
        std::string tag;
        ls >> tag >> n >> m;
        if (!ls || tag != "max")
          throw std::runtime_error("read_dimacs: expected 'p max N M'");
        if (n < 0 || m < 0)
          throw std::runtime_error(
              "read_dimacs: negative node or arc count in problem line");
        // FlowNetwork indexes edges with int; past 2^31 arcs the counts
        // would silently narrow. Refuse loudly and point at the path built
        // for that scale.
        if (m >= std::numeric_limits<int>::max())
          throw std::runtime_error(
              "read_dimacs: " + std::to_string(m) +
              " arcs exceeds the in-memory FlowNetwork's int edge index; "
              "use read_dimacs_stream for instances of this size");
        arcs.reserve(static_cast<size_t>(m));
        break;
      }
      case 'n': {
        int v = 0;
        char role = 0;
        ls >> v >> role;
        if (!ls) throw std::runtime_error("read_dimacs: malformed node line");
        if (role == 's') {
          if (source != -1) throw std::runtime_error("read_dimacs: duplicate source");
          source = v - 1;
        } else if (role == 't') {
          if (sink != -1) throw std::runtime_error("read_dimacs: duplicate sink");
          sink = v - 1;
        } else {
          throw std::runtime_error("read_dimacs: node role must be 's' or 't'");
        }
        break;
      }
      case 'a': {
        Arc a{};
        ls >> a.u >> a.v >> a.cap;
        if (!ls) throw std::runtime_error("read_dimacs: malformed arc line");
        arcs.push_back({a.u - 1, a.v - 1, a.cap});
        break;
      }
      default:
        throw std::runtime_error("read_dimacs: unknown line kind '" +
                                 std::string(1, kind) + "'");
    }
  }
  if (n < 2) throw std::runtime_error("read_dimacs: missing problem line");
  if (source < 0 || sink < 0)
    throw std::runtime_error("read_dimacs: missing source or sink designator");
  if (source == sink)
    throw std::runtime_error(
        "read_dimacs: source and sink designate the same node " +
        std::to_string(source + 1));
  if (static_cast<long long>(arcs.size()) != m)
    throw std::runtime_error(
        "read_dimacs: problem line declares " + std::to_string(m) +
        " arcs but the file contains " + std::to_string(arcs.size()));

  FlowNetwork net(n, source, sink);
  for (const auto& a : arcs) {
    if (a.u < 0 || a.u >= n || a.v < 0 || a.v >= n)
      throw std::runtime_error("read_dimacs: arc endpoint out of range");
    if (a.u == a.v) continue; // self loops carry no s-t flow; drop silently
    if (a.cap <= 0.0) continue; // zero-capacity arcs are no-ops
    net.add_edge(a.u, a.v, a.cap);
  }
  return net;
}

FlowNetwork read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_dimacs_file: cannot open " + path);
  return read_dimacs(in);
}

namespace {

const char* skip_ws(const char* p, const char* end) {
  while (p != end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

bool parse_i64(const char*& p, const char* end, std::int64_t& out) {
  p = skip_ws(p, end);
  const auto [next, ec] = std::from_chars(p, end, out);
  if (ec != std::errc()) return false;
  p = next;
  return true;
}

// The capacity field is the last token of an arc line and the line buffer is
// NUL-terminated, so strtod's unbounded scan is safe; from_chars for doubles
// is still spotty across the toolchains CI builds with.
bool parse_cap(const char*& p, const char* end, double& out) {
  p = skip_ws(p, end);
  char* next = nullptr;
  errno = 0;
  out = std::strtod(p, &next);
  if (next == p || errno == ERANGE) return false;
  p = next;
  return true;
}

} // namespace

CsrGraph read_dimacs_stream(std::istream& in) {
  std::string line;
  std::int64_t n = -1, m = -1, arcs_seen = 0;
  long long lineno = 0;
  int source = -1, sink = -1;
  std::vector<int> from, to;
  std::vector<double> cap;

  // Every parse error names the offending 1-based line so a truncated or
  // corrupted multi-gigabyte file can be diagnosed without a binary search.
  const auto fail = [&](const std::string& what) -> void {
    throw std::runtime_error("read_dimacs_stream: " + what + " at line " +
                             std::to_string(lineno));
  };

  while (std::getline(in, line)) {
    ++lineno;
    const char* p = line.c_str();
    const char* end = p + line.size();
    p = skip_ws(p, end);
    if (p == end) continue;
    const char kind = *p++;
    switch (kind) {
      case 'c':
        break;
      case 'p': {
        if (n != -1) fail("duplicate problem line");
        p = skip_ws(p, end);
        if (end - p < 3 || p[0] != 'm' || p[1] != 'a' || p[2] != 'x')
          fail("expected 'p max N M'");
        p += 3;
        if (!parse_i64(p, end, n) || !parse_i64(p, end, m) || n < 0 || m < 0)
          fail("expected 'p max N M'");
        if (n >= std::numeric_limits<int>::max())
          fail("node count " + std::to_string(n) +
               " exceeds the int vertex index");
        from.reserve(static_cast<size_t>(m));
        to.reserve(static_cast<size_t>(m));
        cap.reserve(static_cast<size_t>(m));
        break;
      }
      case 'n': {
        std::int64_t v = 0;
        p = skip_ws(p, end);
        if (!parse_i64(p, end, v)) fail("malformed node line");
        p = skip_ws(p, end);
        if (p == end) fail("malformed node line");
        if (*p == 's') {
          if (source != -1) fail("duplicate source");
          source = static_cast<int>(v - 1);
        } else if (*p == 't') {
          if (sink != -1) fail("duplicate sink");
          sink = static_cast<int>(v - 1);
        } else {
          fail("node role must be 's' or 't'");
        }
        break;
      }
      case 'a': {
        std::int64_t u = 0, v = 0;
        double c = 0.0;
        if (!parse_i64(p, end, u) || !parse_i64(p, end, v) ||
            !parse_cap(p, end, c))
          fail("malformed arc line (truncated mid-line?)");
        if (n < 0) fail("arc line before problem line");
        if (u < 1 || u > n || v < 1 || v > n)
          fail("arc endpoint out of range");
        ++arcs_seen;
        if (u == v || c <= 0.0) break; // same skip semantics as read_dimacs
        from.push_back(static_cast<int>(u - 1));
        to.push_back(static_cast<int>(v - 1));
        cap.push_back(c);
        break;
      }
      default:
        fail("unknown line kind '" + std::string(1, kind) + "'");
    }
  }
  if (in.bad())
    fail("stream read error (I/O failure mid-file)");
  if (n < 2)
    throw std::runtime_error("read_dimacs_stream: missing problem line");
  if (source < 0 || sink < 0)
    fail("missing source or sink designator");
  if (source == sink)
    fail("source and sink designate the same node " +
         std::to_string(source + 1));
  // The declared-vs-seen reconciliation is what catches a file truncated at
  // a line boundary (every surviving line parses; arcs are just missing).
  if (arcs_seen != m)
    throw std::runtime_error(
        "read_dimacs_stream: problem line declares " + std::to_string(m) +
        " arcs but the file contains " + std::to_string(arcs_seen) +
        " (input truncated after line " + std::to_string(lineno) + "?)");
  return CsrGraph(static_cast<int>(n), source, sink, std::move(from),
                  std::move(to), std::move(cap));
}

CsrGraph read_dimacs_stream_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("read_dimacs_stream_file: cannot open " + path);
  return read_dimacs_stream(in);
}

void write_dimacs(std::ostream& out, const FlowNetwork& net) {
  // Capacities are doubles: max_digits10 keeps a write -> read round trip
  // bit-exact (the default 6 significant digits corrupt anything >= 1e6 or
  // with a fine fractional part).
  const auto old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  out << "c analogflow DIMACS max-flow export\n";
  out << "p max " << net.num_vertices() << ' ' << net.num_edges() << '\n';
  out << "n " << net.source() + 1 << " s\n";
  out << "n " << net.sink() + 1 << " t\n";
  for (const Edge& e : net.edges())
    out << "a " << e.from + 1 << ' ' << e.to + 1 << ' ' << e.capacity << '\n';
  out.precision(old_precision);
}

void write_dimacs_file(const std::string& path, const FlowNetwork& net) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_dimacs_file: cannot open " + path);
  write_dimacs(out, net);
}

} // namespace aflow::graph

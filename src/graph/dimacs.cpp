#include "graph/dimacs.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace aflow::graph {

FlowNetwork read_dimacs(std::istream& in) {
  std::string line;
  int n = -1;
  long long m = -1;
  int source = -1;
  int sink = -1;
  struct Arc { int u, v; double cap; };
  std::vector<Arc> arcs;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    switch (kind) {
      case 'c': break; // comment
      case 'p': {
        std::string tag;
        ls >> tag >> n >> m;
        if (!ls || tag != "max")
          throw std::runtime_error("read_dimacs: expected 'p max N M'");
        break;
      }
      case 'n': {
        int v = 0;
        char role = 0;
        ls >> v >> role;
        if (!ls) throw std::runtime_error("read_dimacs: malformed node line");
        if (role == 's') {
          if (source != -1) throw std::runtime_error("read_dimacs: duplicate source");
          source = v - 1;
        } else if (role == 't') {
          if (sink != -1) throw std::runtime_error("read_dimacs: duplicate sink");
          sink = v - 1;
        } else {
          throw std::runtime_error("read_dimacs: node role must be 's' or 't'");
        }
        break;
      }
      case 'a': {
        Arc a{};
        ls >> a.u >> a.v >> a.cap;
        if (!ls) throw std::runtime_error("read_dimacs: malformed arc line");
        arcs.push_back({a.u - 1, a.v - 1, a.cap});
        break;
      }
      default:
        throw std::runtime_error("read_dimacs: unknown line kind '" +
                                 std::string(1, kind) + "'");
    }
  }
  if (n < 2) throw std::runtime_error("read_dimacs: missing problem line");
  if (source < 0 || sink < 0)
    throw std::runtime_error("read_dimacs: missing source or sink designator");

  FlowNetwork net(n, source, sink);
  for (const auto& a : arcs) {
    if (a.u < 0 || a.u >= n || a.v < 0 || a.v >= n)
      throw std::runtime_error("read_dimacs: arc endpoint out of range");
    if (a.u == a.v) continue; // self loops carry no s-t flow; drop silently
    if (a.cap <= 0.0) continue; // zero-capacity arcs are no-ops
    net.add_edge(a.u, a.v, a.cap);
  }
  return net;
}

FlowNetwork read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_dimacs_file: cannot open " + path);
  return read_dimacs(in);
}

void write_dimacs(std::ostream& out, const FlowNetwork& net) {
  out << "c analogflow DIMACS max-flow export\n";
  out << "p max " << net.num_vertices() << ' ' << net.num_edges() << '\n';
  out << "n " << net.source() + 1 << " s\n";
  out << "n " << net.sink() + 1 << " t\n";
  for (const Edge& e : net.edges())
    out << "a " << e.from + 1 << ' ' << e.to + 1 << ' ' << e.capacity << '\n';
}

void write_dimacs_file(const std::string& path, const FlowNetwork& net) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_dimacs_file: cannot open " + path);
  write_dimacs(out, net);
}

} // namespace aflow::graph

#include "graph/dimacs.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace aflow::graph {

FlowNetwork read_dimacs(std::istream& in) {
  std::string line;
  int n = -1;
  long long m = -1;
  int source = -1;
  int sink = -1;
  struct Arc { int u, v; double cap; };
  std::vector<Arc> arcs;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    switch (kind) {
      case 'c': break; // comment
      case 'p': {
        if (n != -1)
          throw std::runtime_error(
              "read_dimacs: duplicate problem line ('p' may appear once)");
        std::string tag;
        ls >> tag >> n >> m;
        if (!ls || tag != "max")
          throw std::runtime_error("read_dimacs: expected 'p max N M'");
        if (n < 0 || m < 0)
          throw std::runtime_error(
              "read_dimacs: negative node or arc count in problem line");
        break;
      }
      case 'n': {
        int v = 0;
        char role = 0;
        ls >> v >> role;
        if (!ls) throw std::runtime_error("read_dimacs: malformed node line");
        if (role == 's') {
          if (source != -1) throw std::runtime_error("read_dimacs: duplicate source");
          source = v - 1;
        } else if (role == 't') {
          if (sink != -1) throw std::runtime_error("read_dimacs: duplicate sink");
          sink = v - 1;
        } else {
          throw std::runtime_error("read_dimacs: node role must be 's' or 't'");
        }
        break;
      }
      case 'a': {
        Arc a{};
        ls >> a.u >> a.v >> a.cap;
        if (!ls) throw std::runtime_error("read_dimacs: malformed arc line");
        arcs.push_back({a.u - 1, a.v - 1, a.cap});
        break;
      }
      default:
        throw std::runtime_error("read_dimacs: unknown line kind '" +
                                 std::string(1, kind) + "'");
    }
  }
  if (n < 2) throw std::runtime_error("read_dimacs: missing problem line");
  if (source < 0 || sink < 0)
    throw std::runtime_error("read_dimacs: missing source or sink designator");
  if (source == sink)
    throw std::runtime_error(
        "read_dimacs: source and sink designate the same node " +
        std::to_string(source + 1));
  if (static_cast<long long>(arcs.size()) != m)
    throw std::runtime_error(
        "read_dimacs: problem line declares " + std::to_string(m) +
        " arcs but the file contains " + std::to_string(arcs.size()));

  FlowNetwork net(n, source, sink);
  for (const auto& a : arcs) {
    if (a.u < 0 || a.u >= n || a.v < 0 || a.v >= n)
      throw std::runtime_error("read_dimacs: arc endpoint out of range");
    if (a.u == a.v) continue; // self loops carry no s-t flow; drop silently
    if (a.cap <= 0.0) continue; // zero-capacity arcs are no-ops
    net.add_edge(a.u, a.v, a.cap);
  }
  return net;
}

FlowNetwork read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_dimacs_file: cannot open " + path);
  return read_dimacs(in);
}

void write_dimacs(std::ostream& out, const FlowNetwork& net) {
  // Capacities are doubles: max_digits10 keeps a write -> read round trip
  // bit-exact (the default 6 significant digits corrupt anything >= 1e6 or
  // with a fine fractional part).
  const auto old_precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  out << "c analogflow DIMACS max-flow export\n";
  out << "p max " << net.num_vertices() << ' ' << net.num_edges() << '\n';
  out << "n " << net.source() + 1 << " s\n";
  out << "n " << net.sink() + 1 << " t\n";
  for (const Edge& e : net.edges())
    out << "a " << e.from + 1 << ' ' << e.to + 1 << ' ' << e.capacity << '\n';
  out.precision(old_precision);
}

void write_dimacs_file(const std::string& path, const FlowNetwork& net) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_dimacs_file: cannot open " + path);
  write_dimacs(out, net);
}

} // namespace aflow::graph

#include "graph/csr.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace aflow::graph {

CsrGraph::CsrGraph(int num_vertices, int source, int sink,
                   std::vector<int> edge_from, std::vector<int> edge_to,
                   std::vector<double> edge_cap)
    : num_vertices_(num_vertices), source_(source), sink_(sink),
      edge_from_(std::move(edge_from)), edge_to_(std::move(edge_to)),
      edge_cap_(std::move(edge_cap)) {
  if (num_vertices_ < 2)
    throw std::invalid_argument("CsrGraph: need at least source and sink");
  if (source_ < 0 || source_ >= num_vertices_ || sink_ < 0 ||
      sink_ >= num_vertices_)
    throw std::invalid_argument("CsrGraph: source/sink out of range");
  if (source_ == sink_)
    throw std::invalid_argument("CsrGraph: source must differ from sink");
  if (edge_from_.size() != edge_to_.size() ||
      edge_from_.size() != edge_cap_.size())
    throw std::invalid_argument("CsrGraph: edge array lengths differ");

  const std::int64_t m = num_edges();
  std::vector<std::int64_t> degree(static_cast<size_t>(num_vertices_) + 1, 0);
  for (std::int64_t e = 0; e < m; ++e) {
    const int u = edge_from_[static_cast<size_t>(e)];
    const int v = edge_to_[static_cast<size_t>(e)];
    if (u < 0 || u >= num_vertices_ || v < 0 || v >= num_vertices_)
      throw std::invalid_argument("CsrGraph: edge endpoint out of range");
    if (u == v)
      throw std::invalid_argument("CsrGraph: self loops not supported");
    if (!(edge_cap_[static_cast<size_t>(e)] > 0.0))
      throw std::invalid_argument("CsrGraph: capacity must be positive");
    ++degree[static_cast<size_t>(u) + 1];
    ++degree[static_cast<size_t>(v) + 1];
  }
  for (int v = 0; v < num_vertices_; ++v)
    degree[static_cast<size_t>(v) + 1] += degree[static_cast<size_t>(v)];
  arc_start_ = degree; // prefix sums; degree reused below as a write cursor
  arc_ids_.resize(static_cast<size_t>(2) * static_cast<size_t>(m));
  for (std::int64_t e = 0; e < m; ++e) {
    const int u = edge_from_[static_cast<size_t>(e)];
    const int v = edge_to_[static_cast<size_t>(e)];
    arc_ids_[static_cast<size_t>(degree[static_cast<size_t>(u)]++)] = 2 * e;
    arc_ids_[static_cast<size_t>(degree[static_cast<size_t>(v)]++)] =
        2 * e + 1;
  }
}

CsrGraph CsrGraph::from_network(const FlowNetwork& net) {
  const size_t m = static_cast<size_t>(net.num_edges());
  std::vector<int> from(m), to(m);
  std::vector<double> cap(m);
  for (size_t e = 0; e < m; ++e) {
    const Edge& ed = net.edge(static_cast<int>(e));
    from[e] = ed.from;
    to[e] = ed.to;
    cap[e] = ed.capacity;
  }
  return CsrGraph(net.num_vertices(), net.source(), net.sink(),
                  std::move(from), std::move(to), std::move(cap));
}

FlowNetwork CsrGraph::to_network() const {
  if (num_edges() >= std::numeric_limits<int>::max())
    throw std::length_error(
        "CsrGraph::to_network: edge count exceeds FlowNetwork's int range; "
        "keep the instance in CSR form");
  FlowNetwork net(num_vertices_, source_, sink_);
  for (std::int64_t e = 0; e < num_edges(); ++e)
    net.add_edge(edge_from_[static_cast<size_t>(e)],
                 edge_to_[static_cast<size_t>(e)],
                 edge_cap_[static_cast<size_t>(e)]);
  return net;
}

double CsrGraph::source_out_capacity() const {
  double total = 0.0;
  for (std::int64_t a : arcs(source_))
    if (arc_is_out(a)) total += edge_cap_[static_cast<size_t>(arc_edge(a))];
  return total;
}

double CsrGraph::sink_in_capacity() const {
  double total = 0.0;
  for (std::int64_t a : arcs(sink_))
    if (!arc_is_out(a)) total += edge_cap_[static_cast<size_t>(arc_edge(a))];
  return total;
}

std::size_t CsrGraph::memory_bytes() const {
  return edge_from_.capacity() * sizeof(int) +
         edge_to_.capacity() * sizeof(int) +
         edge_cap_.capacity() * sizeof(double) +
         arc_start_.capacity() * sizeof(std::int64_t) +
         arc_ids_.capacity() * sizeof(std::int64_t);
}

std::string check_csr_flow(const CsrGraph& g, std::span<const double> edge_flow,
                           double flow_value, double tol) {
  const std::int64_t m = g.num_edges();
  if (static_cast<std::int64_t>(edge_flow.size()) != m)
    return "edge_flow has " + std::to_string(edge_flow.size()) +
           " entries for " + std::to_string(m) + " edges";
  for (std::int64_t e = 0; e < m; ++e) {
    const double f = edge_flow[static_cast<size_t>(e)];
    if (f < -tol)
      return "edge " + std::to_string(e) + ": negative flow " +
             std::to_string(f);
    if (f > g.edge_capacity(e) + tol)
      return "edge " + std::to_string(e) + ": flow " + std::to_string(f) +
             " exceeds capacity " + std::to_string(g.edge_capacity(e));
  }
  // One accumulator pass over the edge list instead of n incidence walks:
  // cheaper and touches each flow entry exactly twice.
  std::vector<double> net_out(static_cast<size_t>(g.num_vertices()), 0.0);
  for (std::int64_t e = 0; e < m; ++e) {
    const double f = edge_flow[static_cast<size_t>(e)];
    net_out[static_cast<size_t>(g.edge_from(e))] += f;
    net_out[static_cast<size_t>(g.edge_to(e))] -= f;
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (v == g.source() || v == g.sink()) continue;
    if (std::abs(net_out[static_cast<size_t>(v)]) > tol)
      return "vertex " + std::to_string(v) + ": conservation violated by " +
             std::to_string(net_out[static_cast<size_t>(v)]);
  }
  if (std::abs(net_out[static_cast<size_t>(g.source())] - flow_value) > tol)
    return "source outflow " +
           std::to_string(net_out[static_cast<size_t>(g.source())]) +
           " != claimed value " + std::to_string(flow_value);
  return {};
}

} // namespace aflow::graph

// Directed flow networks: the problem representation shared by the classical
// CPU solvers (`flow`) and the analog substrate (`analog`).
//
// Capacities are doubles so that quantised/analog solutions can be expressed
// in the same type, but all generators emit integral capacities as in the
// paper ("assign each edge e a nonzero integral capacity").
#pragma once

#include <span>
#include <string>
#include <vector>

namespace aflow::graph {

struct Edge {
  int from = 0;
  int to = 0;
  double capacity = 0.0;
};

/// A directed graph with distinguished source/sink and edge capacities.
/// Parallel edges are allowed; self-loops are rejected (they cannot carry
/// s-t flow and the crossbar has no diagonal widgets for them).
class FlowNetwork {
 public:
  FlowNetwork() = default;
  FlowNetwork(int num_vertices, int source, int sink);

  /// Adds a directed edge and returns its index.
  int add_edge(int from, int to, double capacity);

  /// Reprograms one edge's capacity in place — the serving reconfiguration
  /// primitive (topology, and therefore the substrate's MNA pattern under
  /// dedicated level sources, is unchanged). Throws std::invalid_argument
  /// on a bad index or non-positive capacity.
  void set_capacity(int e, double capacity);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  int source() const { return source_; }
  int sink() const { return sink_; }

  const Edge& edge(int e) const { return edges_[e]; }
  std::span<const Edge> edges() const { return edges_; }

  /// Edge indices leaving / entering `v`.
  std::span<const int> out_edges(int v) const { return out_[v]; }
  std::span<const int> in_edges(int v) const { return in_[v]; }

  int out_degree(int v) const { return static_cast<int>(out_[v].size()); }
  int in_degree(int v) const { return static_cast<int>(in_[v].size()); }
  /// Degree counting both directions (the paper's N = j + k per vertex).
  int degree(int v) const { return out_degree(v) + in_degree(v); }

  double max_capacity() const;

  /// True if every vertex lies on some s-t path (relevant for substrate
  /// sizing: other vertices map to unused crossbar columns).
  bool vertex_on_st_path(int v) const;

  /// Throws std::invalid_argument when the instance is malformed
  /// (bad source/sink, non-positive capacity, self loop).
  void validate() const;

  /// Returns a copy with `capacity -> f(capacity)` applied to every edge.
  template <typename F>
  FlowNetwork transform_capacities(F&& f) const {
    FlowNetwork out(num_vertices_, source_, sink_);
    for (const Edge& e : edges_) out.add_edge(e.from, e.to, f(e.capacity));
    return out;
  }

 private:
  int num_vertices_ = 0;
  int source_ = 0;
  int sink_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
};

/// Vertices reachable from `start` following edge direction.
std::vector<char> reachable_from(const FlowNetwork& net, int start);
/// Vertices that can reach `target` following edge direction.
std::vector<char> reaches_to(const FlowNetwork& net, int target);

/// The Fig. 5a example instance from the paper: 4 vertices s,n1..n3,t with
/// edges x1..x5 of capacities 3,2,1,1,2 and max flow 2.
FlowNetwork paper_example_fig5();

/// The Fig. 15a quasi-static example: maximize x1 s.t. x1 = x2 + x3,
/// capacities 4,1,4 (the two "infinite" edges are given `inf_cap`).
FlowNetwork paper_example_fig15(double inf_cap = 1e3);

} // namespace aflow::graph

#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <set>
#include <stdexcept>

namespace aflow::graph {

namespace {

/// Picks one (row, col) cell of the 2^levels x 2^levels adjacency matrix by
/// recursive quadrant descent (the R-MAT process).
std::pair<int, int> rmat_cell(int levels, const RmatParams& p, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  int row = 0;
  int col = 0;
  for (int l = 0; l < levels; ++l) {
    const double u = uni(rng);
    row <<= 1;
    col <<= 1;
    if (u < p.a) {
      // top-left: nothing to add
    } else if (u < p.a + p.b) {
      col |= 1;
    } else if (u < p.a + p.b + p.c) {
      row |= 1;
    } else {
      row |= 1;
      col |= 1;
    }
  }
  return {row, col};
}

int uniform_capacity(int max_capacity, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> dist(1, std::max(1, max_capacity));
  return dist(rng);
}

} // namespace

FlowNetwork rmat(int num_vertices, int num_edges, const RmatParams& params,
                 std::uint64_t seed) {
  if (num_vertices < 2) throw std::invalid_argument("rmat: need >= 2 vertices");
  if (params.a + params.b + params.c > 1.0)
    throw std::invalid_argument("rmat: probabilities exceed 1");
  std::mt19937_64 rng(seed);

  int levels = 0;
  while ((1 << levels) < num_vertices) ++levels;

  // Sample distinct non-loop edges within [0, num_vertices)^2.
  std::set<std::pair<int, int>> cells;
  const long long max_possible =
      static_cast<long long>(num_vertices) * (num_vertices - 1);
  const int target = static_cast<int>(
      std::min<long long>(num_edges, max_possible));
  long long attempts = 0;
  const long long attempt_limit = 200LL * std::max(target, 1) + 10000;
  while (static_cast<int>(cells.size()) < target && attempts < attempt_limit) {
    ++attempts;
    auto [r, c] = rmat_cell(levels, params, rng);
    if (r >= num_vertices || c >= num_vertices || r == c) continue;
    cells.insert({r, c});
  }

  // Degree bookkeeping for source/sink selection.
  std::vector<int> outdeg(num_vertices, 0), indeg(num_vertices, 0);
  for (const auto& [r, c] : cells) { outdeg[r]++; indeg[c]++; }
  const int source = static_cast<int>(
      std::max_element(outdeg.begin(), outdeg.end()) - outdeg.begin());

  // Build a provisional network to find vertices reachable from the source.
  FlowNetwork probe(num_vertices, source, source == 0 ? 1 : 0);
  for (const auto& [r, c] : cells) probe.add_edge(r, c, 1.0);
  const auto seen = reachable_from(probe, source);

  int sink = -1;
  int best_in = -1;
  for (int v = 0; v < num_vertices; ++v) {
    if (v == source || !seen[v]) continue;
    if (indeg[v] > best_in) { best_in = indeg[v]; sink = v; }
  }
  if (sink < 0) {
    // Source has no outgoing reach (degenerate sample): wire a short
    // deterministic path so the instance stays well-posed.
    sink = (source + 1) % num_vertices;
    cells.insert({source, sink});
  }

  FlowNetwork net(num_vertices, source, sink);
  for (const auto& [r, c] : cells)
    net.add_edge(r, c, uniform_capacity(params.max_capacity, rng));
  return net;
}

FlowNetwork rmat_dense(int num_vertices, std::uint64_t seed, double coeff) {
  const int m = std::max(1, static_cast<int>(std::lround(
      coeff * static_cast<double>(num_vertices) * num_vertices)));
  return rmat(num_vertices, m, RmatParams{}, seed);
}

FlowNetwork rmat_sparse(int num_vertices, std::uint64_t seed, double degree) {
  const int m = std::max(1, static_cast<int>(std::lround(degree * num_vertices)));
  return rmat(num_vertices, m, RmatParams{}, seed);
}

FlowNetwork grid_cut_graph(int height, int width,
                           const std::vector<double>& terminal_source,
                           const std::vector<double>& terminal_sink,
                           double neighbor_capacity) {
  const int pixels = height * width;
  if (static_cast<int>(terminal_source.size()) != pixels ||
      static_cast<int>(terminal_sink.size()) != pixels)
    throw std::invalid_argument("grid_cut_graph: terminal array size mismatch");
  const int source = pixels;
  const int sink = pixels + 1;
  FlowNetwork net(pixels + 2, source, sink);
  auto pid = [width](int y, int x) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const int p = pid(y, x);
      if (terminal_source[p] > 0.0) net.add_edge(source, p, terminal_source[p]);
      if (terminal_sink[p] > 0.0) net.add_edge(p, sink, terminal_sink[p]);
      if (neighbor_capacity > 0.0) {
        if (x + 1 < width) {
          net.add_edge(p, pid(y, x + 1), neighbor_capacity);
          net.add_edge(pid(y, x + 1), p, neighbor_capacity);
        }
        if (y + 1 < height) {
          net.add_edge(p, pid(y + 1, x), neighbor_capacity);
          net.add_edge(pid(y + 1, x), p, neighbor_capacity);
        }
      }
    }
  }
  return net;
}

FlowNetwork layered_random(int layers, int width, int fanout, int max_capacity,
                           std::uint64_t seed) {
  if (layers < 1 || width < 1) throw std::invalid_argument("layered_random: bad shape");
  std::mt19937_64 rng(seed);
  const int n = 2 + layers * width;
  const int source = 0;
  const int sink = n - 1;
  auto vid = [&](int layer, int slot) { return 1 + layer * width + slot; };

  FlowNetwork net(n, source, sink);
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int slot = 0; slot < width; ++slot)
    net.add_edge(source, vid(0, slot), uniform_capacity(max_capacity, rng));
  for (int l = 0; l + 1 < layers; ++l) {
    for (int slot = 0; slot < width; ++slot) {
      std::set<int> targets;
      targets.insert(pick(rng)); // at least one forward edge
      for (int f = 1; f < fanout; ++f) targets.insert(pick(rng));
      for (int t : targets)
        net.add_edge(vid(l, slot), vid(l + 1, t),
                     uniform_capacity(max_capacity, rng));
    }
  }
  for (int slot = 0; slot < width; ++slot)
    net.add_edge(vid(layers - 1, slot), sink, uniform_capacity(max_capacity, rng));
  return net;
}

namespace {

/// Emits every gridflow edge in one deterministic order (s->left column per
/// row, right column->t per row, then per-cell right/down/up arcs row-major)
/// through `emit(from, to, cap)`. Both the in-memory generator and the
/// DIMACS writer run through this single walk, so the two renditions of a
/// (height, width, max_capacity, seed) instance are edge-for-edge identical.
template <typename Emit>
void gridflow_walk(int height, int width, int max_capacity, std::uint64_t seed,
                   Emit&& emit) {
  if (height < 1 || width < 1)
    throw std::invalid_argument("gridflow: bad shape");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> cap(1, std::max(1, max_capacity));
  const std::int64_t pixels =
      static_cast<std::int64_t>(height) * static_cast<std::int64_t>(width);
  const std::int64_t source = pixels;
  const std::int64_t sink = pixels + 1;
  auto pid = [width](int y, int x) {
    return static_cast<std::int64_t>(y) * width + x;
  };
  for (int y = 0; y < height; ++y) emit(source, pid(y, 0), cap(rng));
  for (int y = 0; y < height; ++y) emit(pid(y, width - 1), sink, cap(rng));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) emit(pid(y, x), pid(y, x + 1), cap(rng));
      if (y + 1 < height) emit(pid(y, x), pid(y + 1, x), cap(rng));
      if (y > 0) emit(pid(y, x), pid(y - 1, x), cap(rng));
    }
  }
}

std::int64_t gridflow_num_edges(int height, int width) {
  const std::int64_t h = height, w = width;
  // 2h terminal arcs + h(w-1) right + 2w(h-1) down/up.
  return 2 * h + h * (w - 1) + 2 * w * (h - 1);
}

} // namespace

FlowNetwork gridflow(int height, int width, int max_capacity,
                     std::uint64_t seed) {
  const std::int64_t pixels =
      static_cast<std::int64_t>(height) * static_cast<std::int64_t>(width);
  FlowNetwork net(static_cast<int>(pixels + 2), static_cast<int>(pixels),
                  static_cast<int>(pixels + 1));
  gridflow_walk(height, width, max_capacity, seed,
                [&net](std::int64_t u, std::int64_t v, int c) {
                  net.add_edge(static_cast<int>(u), static_cast<int>(v),
                               static_cast<double>(c));
                });
  return net;
}

void write_gridflow_dimacs(std::ostream& out, int height, int width,
                           int max_capacity, std::uint64_t seed) {
  const std::int64_t pixels =
      static_cast<std::int64_t>(height) * static_cast<std::int64_t>(width);
  out << "c analogflow gridflow " << height << 'x' << width << " cap "
      << max_capacity << " seed " << seed << '\n';
  out << "p max " << pixels + 2 << ' ' << gridflow_num_edges(height, width)
      << '\n';
  out << "n " << pixels + 1 << " s\n";
  out << "n " << pixels + 2 << " t\n";
  gridflow_walk(height, width, max_capacity, seed,
                [&out](std::int64_t u, std::int64_t v, int c) {
                  out << "a " << u + 1 << ' ' << v + 1 << ' ' << c << '\n';
                });
}

FlowNetwork uniform_random(int num_vertices, int num_edges, int max_capacity,
                           std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, num_vertices - 1);
  std::set<std::pair<int, int>> cells;
  const int source = 0;
  const int sink = num_vertices - 1;
  long long attempts = 0;
  while (static_cast<int>(cells.size()) < num_edges && attempts < 100LL * num_edges + 1000) {
    ++attempts;
    const int u = pick(rng);
    const int v = pick(rng);
    if (u == v) continue;
    cells.insert({u, v});
  }
  // Guarantee at least one arc out of the source and one into the sink.
  cells.insert({source, sink});
  FlowNetwork net(num_vertices, source, sink);
  for (const auto& [u, v] : cells)
    net.add_edge(u, v, uniform_capacity(max_capacity, rng));
  return net;
}

} // namespace aflow::graph

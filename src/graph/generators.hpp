// Workload generators.
//
// The paper evaluates on R-MAT synthetic graphs (Chakrabarti et al., ICDM'04)
// in two regimes: dense (|E| proportional to |V|^2) and sparse (|E|
// proportional to |V|), with 200..1000 vertices and 500..8000 edges
// (Sec. 5.1). Grid graphs model the computer-vision workload from the
// introduction; layered and uniform-random graphs are used by the tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <random>

#include "graph/network.hpp"

namespace aflow::graph {

/// R-MAT quadrant probabilities; defaults are the customary skewed setting.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
  /// Largest (integral) edge capacity; capacities drawn uniformly in [1, C].
  int max_capacity = 64;
};

/// Generates an R-MAT graph with `num_vertices` vertices and (approximately)
/// `num_edges` distinct edges, then designates a source with maximal
/// out-degree and a sink of maximal in-degree among vertices reachable from
/// the source. Deterministic for a fixed seed.
FlowNetwork rmat(int num_vertices, int num_edges, const RmatParams& params,
                 std::uint64_t seed);

/// Dense regime of Fig. 10a: |E| = coeff * |V|^2. The paper's range
/// (8000 edges at 960 vertices) corresponds to coeff ~ 8.68e-3.
FlowNetwork rmat_dense(int num_vertices, std::uint64_t seed,
                       double coeff = 8000.0 / (960.0 * 960.0));

/// Sparse regime of Fig. 10b: |E| = degree * |V| (degree ~ 8 reaches the
/// paper's 8000 edges at 960 vertices).
FlowNetwork rmat_sparse(int num_vertices, std::uint64_t seed, double degree = 8.0);

/// 4-connected H x W pixel grid with source/sink terminals attached to every
/// pixel, the classic graph-cut construction for binary segmentation.
/// `terminal_source[p]` / `terminal_sink[p]` give the terminal capacities of
/// pixel p = y*width + x (zero entries omit the arc); `neighbor_capacity`
/// is used for all lattice arcs (both directions).
FlowNetwork grid_cut_graph(int height, int width,
                           const std::vector<double>& terminal_source,
                           const std::vector<double>& terminal_sink,
                           double neighbor_capacity);

/// Random layered DAG: source -> layer_1 -> ... -> layer_k -> sink, each
/// vertex wired to a random subset of the next layer. Good max-flow stress
/// shape with known structure.
FlowNetwork layered_random(int layers, int width, int fanout, int max_capacity,
                           std::uint64_t seed);

/// Erdos-Renyi-style random digraph with ensured s-t connectivity.
FlowNetwork uniform_random(int num_vertices, int num_edges, int max_capacity,
                           std::uint64_t seed);

/// Large-graph workload: an H x W lattice with flow entering at the left
/// column and draining at the right — s feeds (y, 0) on every row, (y, W-1)
/// feeds t, and every pixel has right/down/up lattice arcs with capacities
/// drawn uniformly from [1, max_cap]. At height = width = 1000 this is the
/// ~1M-vertex / ~3M-arc sharded-solve scale instance. Deterministic per
/// seed, and `write_gridflow_dimacs` emits the identical instance straight
/// to a DIMACS stream without materialising it, so huge workloads are
/// generated at O(1) memory and read back through read_dimacs_stream.
FlowNetwork gridflow(int height, int width, int max_capacity,
                     std::uint64_t seed);
void write_gridflow_dimacs(std::ostream& out, int height, int width,
                           int max_capacity, std::uint64_t seed);

} // namespace aflow::graph

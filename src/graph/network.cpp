#include "graph/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace aflow::graph {

FlowNetwork::FlowNetwork(int num_vertices, int source, int sink)
    : num_vertices_(num_vertices), source_(source), sink_(sink),
      out_(num_vertices), in_(num_vertices) {
  if (num_vertices < 2)
    throw std::invalid_argument("FlowNetwork: need at least source and sink");
  if (source < 0 || source >= num_vertices || sink < 0 || sink >= num_vertices)
    throw std::invalid_argument("FlowNetwork: source/sink out of range");
  if (source == sink)
    throw std::invalid_argument("FlowNetwork: source must differ from sink");
}

int FlowNetwork::add_edge(int from, int to, double capacity) {
  if (from < 0 || from >= num_vertices_ || to < 0 || to >= num_vertices_)
    throw std::invalid_argument("FlowNetwork::add_edge: vertex out of range");
  if (from == to)
    throw std::invalid_argument("FlowNetwork::add_edge: self loops not supported");
  if (!(capacity > 0.0))
    throw std::invalid_argument("FlowNetwork::add_edge: capacity must be positive");
  // num_edges() narrows edges_.size() to int; refuse the edge that would
  // make that cast wrap instead of silently corrupting every index after it.
  if (edges_.size() >=
      static_cast<size_t>(std::numeric_limits<int>::max()))
    throw std::length_error(
        "FlowNetwork::add_edge: edge count at the int index limit; "
        "instances of this size belong in graph::CsrGraph");
  const int id = static_cast<int>(edges_.size());
  edges_.push_back({from, to, capacity});
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

void FlowNetwork::set_capacity(int e, double capacity) {
  if (e < 0 || e >= num_edges())
    throw std::invalid_argument("FlowNetwork::set_capacity: edge out of range");
  if (!(capacity > 0.0))
    throw std::invalid_argument(
        "FlowNetwork::set_capacity: capacity must be positive");
  edges_[e].capacity = capacity;
}

double FlowNetwork::max_capacity() const {
  double c = 0.0;
  for (const Edge& e : edges_) c = std::max(c, e.capacity);
  return c;
}

void FlowNetwork::validate() const {
  if (num_vertices_ < 2) throw std::invalid_argument("FlowNetwork: too few vertices");
  if (source_ == sink_) throw std::invalid_argument("FlowNetwork: source == sink");
  for (const Edge& e : edges_) {
    if (e.from == e.to) throw std::invalid_argument("FlowNetwork: self loop");
    if (!(e.capacity > 0.0))
      throw std::invalid_argument("FlowNetwork: non-positive capacity");
  }
}

std::vector<char> reachable_from(const FlowNetwork& net, int start) {
  std::vector<char> seen(net.num_vertices(), 0);
  std::queue<int> q;
  q.push(start);
  seen[start] = 1;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int e : net.out_edges(v)) {
      const int u = net.edge(e).to;
      if (!seen[u]) { seen[u] = 1; q.push(u); }
    }
  }
  return seen;
}

std::vector<char> reaches_to(const FlowNetwork& net, int target) {
  std::vector<char> seen(net.num_vertices(), 0);
  std::queue<int> q;
  q.push(target);
  seen[target] = 1;
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int e : net.in_edges(v)) {
      const int u = net.edge(e).from;
      if (!seen[u]) { seen[u] = 1; q.push(u); }
    }
  }
  return seen;
}

bool FlowNetwork::vertex_on_st_path(int v) const {
  return reachable_from(*this, source_)[v] && reaches_to(*this, sink_)[v];
}

FlowNetwork paper_example_fig5() {
  // Vertices: 0 = s, 1 = n1, 2 = n2, 3 = n3, 4 = t.
  //
  // Topology reconstructed from the paper's quantitative claims: the exact
  // max flow is 2 (Fig. 8), Vx1 settles at 2 V, and Vx3/Vx4 saturate at
  // their 1 V capacities (Sec. 2.4) — which pins x3 as the n2->n3 edge:
  //        s --x1(3)--> n1 --x2(2)--> n2 --x5(2)--> t
  //                                   n2 --x3(1)--> n3 --x4(1)--> t
  FlowNetwork net(5, 0, 4);
  net.add_edge(0, 1, 3.0); // x1: s  -> n1
  net.add_edge(1, 2, 2.0); // x2: n1 -> n2
  net.add_edge(2, 3, 1.0); // x3: n2 -> n3
  net.add_edge(3, 4, 1.0); // x4: n3 -> t
  net.add_edge(2, 4, 2.0); // x5: n2 -> t
  return net;
}

FlowNetwork paper_example_fig15(double inf_cap) {
  // Vertices: 0 = s, 1 = n1, 2 = n2, 3 = n3, 4 = t.
  FlowNetwork net(5, 0, 4);
  net.add_edge(0, 1, 4.0);     // x1: s  -> n1
  net.add_edge(1, 2, 1.0);     // x2: n1 -> n2
  net.add_edge(1, 3, 4.0);     // x3: n1 -> n3
  net.add_edge(2, 4, inf_cap); // n2 -> t, "infinite"
  net.add_edge(3, 4, inf_cap); // n3 -> t, "infinite"
  return net;
}

} // namespace aflow::graph

// Compact immutable CSR view of a flow network — the large-instance
// representation of the sharded solve path (DESIGN.md "Sharded solve").
//
// graph::FlowNetwork carries a vector<vector<int>> adjacency: two heap
// blocks plus a 24-byte header per vertex, which is the memory wall at
// millions of nodes. A CsrGraph stores the same graph as five flat arrays
// (edge endpoints, capacities, and one combined incidence CSR) with 64-bit
// edge counts, so a million-node instance streams from disk into a
// predictable, compact footprint. The view is immutable by contract: build
// it once (from a stream or a FlowNetwork) and share it read-only.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/network.hpp"

namespace aflow::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds the CSR from flat edge arrays (all three the same length).
  /// Validates endpoints, rejects self loops and non-positive capacities,
  /// and constructs the incidence CSR in two O(E) passes. Throws
  /// std::invalid_argument on malformed input.
  CsrGraph(int num_vertices, int source, int sink, std::vector<int> edge_from,
           std::vector<int> edge_to, std::vector<double> edge_cap);

  /// Snapshot of an in-memory FlowNetwork (edge order preserved).
  static CsrGraph from_network(const FlowNetwork& net);

  /// Materialises a FlowNetwork (edge order preserved) — the bridge back to
  /// the per-region subproblem path and the tests. Throws std::length_error
  /// when the edge count exceeds FlowNetwork's int range.
  FlowNetwork to_network() const;

  int num_vertices() const { return num_vertices_; }
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(edge_cap_.size());
  }
  int source() const { return source_; }
  int sink() const { return sink_; }

  int edge_from(std::int64_t e) const {
    return edge_from_[static_cast<size_t>(e)];
  }
  int edge_to(std::int64_t e) const {
    return edge_to_[static_cast<size_t>(e)];
  }
  double edge_capacity(std::int64_t e) const {
    return edge_cap_[static_cast<size_t>(e)];
  }

  /// Incident arcs of `v`, both directions: arc 2e is edge e leaving its
  /// tail, arc 2e+1 is edge e seen from its head (same encoding as
  /// flow::detail::Residual).
  std::span<const std::int64_t> arcs(int v) const {
    return {arc_ids_.data() + arc_start_[v],
            static_cast<size_t>(arc_start_[v + 1] - arc_start_[v])};
  }
  static std::int64_t arc_edge(std::int64_t arc) { return arc >> 1; }
  static bool arc_is_out(std::int64_t arc) { return (arc & 1) == 0; }

  /// Sum of capacities leaving `source()` / entering `sink()` — the trivial
  /// max-flow upper bound pair.
  double source_out_capacity() const;
  double sink_in_capacity() const;

  /// Heap bytes held by the view (capacity planning for the serving layer).
  std::size_t memory_bytes() const;

 private:
  int num_vertices_ = 0;
  int source_ = 0;
  int sink_ = 0;
  std::vector<int> edge_from_;
  std::vector<int> edge_to_;
  std::vector<double> edge_cap_;
  std::vector<std::int64_t> arc_start_; // n + 1 offsets into arc_ids_
  std::vector<std::int64_t> arc_ids_;   // 2m incident arcs
};

/// Verifies that `edge_flow` is a feasible s-t flow of value `flow_value`
/// on `g`: capacity bounds, conservation at every ordinary vertex, and the
/// net source outflow, all to within `tol`. Returns an empty string when
/// valid, otherwise a description of the first violation — the CSR twin of
/// flow::check_flow, so huge sharded solves can be validated without
/// materialising a FlowNetwork.
std::string check_csr_flow(const CsrGraph& g, std::span<const double> edge_flow,
                           double flow_value, double tol = 1e-9);

} // namespace aflow::graph

// DIMACS max-flow format I/O ("p max", "n", "a" lines), the de-facto
// interchange format for max-flow benchmarks. Vertices are 1-based on disk
// and 0-based in memory.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"
#include "graph/network.hpp"

namespace aflow::graph {

/// Parses a DIMACS max-flow problem. Throws std::runtime_error on malformed
/// input (missing problem line, bad arc endpoints, duplicate node
/// designators, ...). Refuses instances with >= 2^31 arcs — those only fit
/// the streaming CSR path (read_dimacs_stream).
FlowNetwork read_dimacs(std::istream& in);
FlowNetwork read_dimacs_file(const std::string& path);

/// Streaming reader for huge instances: one pass, a reused line buffer with
/// std::from_chars field parsing (no istringstream churn), arc arrays
/// preallocated from the problem line, and 64-bit arc counts throughout.
/// Skip semantics match read_dimacs (self loops and non-positive capacities
/// are dropped). Returns the compact CSR view instead of a FlowNetwork so a
/// million-node instance never pays the per-vertex adjacency-vector tax.
CsrGraph read_dimacs_stream(std::istream& in);
CsrGraph read_dimacs_stream_file(const std::string& path);

/// Writes `net` in DIMACS max-flow format.
void write_dimacs(std::ostream& out, const FlowNetwork& net);
void write_dimacs_file(const std::string& path, const FlowNetwork& net);

} // namespace aflow::graph

// DIMACS max-flow format I/O ("p max", "n", "a" lines), the de-facto
// interchange format for max-flow benchmarks. Vertices are 1-based on disk
// and 0-based in memory.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/network.hpp"

namespace aflow::graph {

/// Parses a DIMACS max-flow problem. Throws std::runtime_error on malformed
/// input (missing problem line, bad arc endpoints, duplicate node
/// designators, ...).
FlowNetwork read_dimacs(std::istream& in);
FlowNetwork read_dimacs_file(const std::string& path);

/// Writes `net` in DIMACS max-flow format.
void write_dimacs(std::ostream& out, const FlowNetwork& net);
void write_dimacs_file(const std::string& path, const FlowNetwork& net);

} // namespace aflow::graph

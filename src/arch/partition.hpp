// Fiduccia-Mattheyses bipartitioning and recursive multiway partitioning,
// the clustering engine of the island-style mapping flow (Sec. 6.2): highly
// connected subgraphs go to the same processing island so that most edges
// stay inside a local crossbar.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"

namespace aflow::arch {

struct BipartitionResult {
  std::vector<char> side;  // 0 / 1 per (local) vertex
  long long cut_edges = 0; // edges crossing the partition
  int passes = 0;          // FM improvement passes executed
};

/// FM bipartition of an undirected adjacency (parallel edges allowed).
/// `balance_tolerance` bounds each side to ceil(n/2)(1 + tol).
BipartitionResult fm_bipartition(int num_vertices,
                                 const std::vector<std::pair<int, int>>& edges,
                                 double balance_tolerance = 0.1,
                                 std::uint64_t seed = 1);

struct PartitionResult {
  std::vector<int> part;   // part id per vertex
  int num_parts = 0;
  long long cut_edges = 0; // graph edges with endpoints in different parts
};

/// Recursive-bisection partitioning into parts of at most `capacity`
/// vertices, minimising edge cut.
PartitionResult partition_into_islands(const graph::FlowNetwork& net,
                                       int capacity, std::uint64_t seed = 1);

} // namespace aflow::arch

// Fiduccia-Mattheyses bipartitioning and recursive multiway partitioning,
// the clustering engine of the island-style mapping flow (Sec. 6.2): highly
// connected subgraphs go to the same processing island so that most edges
// stay inside a local crossbar.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/network.hpp"

namespace aflow::arch {

struct BipartitionResult {
  std::vector<char> side;  // 0 / 1 per (local) vertex
  long long cut_edges = 0; // edges crossing the partition
  int passes = 0;          // FM improvement passes executed
};

/// FM bipartition of an undirected adjacency (parallel edges allowed).
/// `balance_tolerance` bounds each side to ceil(n/2)(1 + tol).
BipartitionResult fm_bipartition(int num_vertices,
                                 const std::vector<std::pair<int, int>>& edges,
                                 double balance_tolerance = 0.1,
                                 std::uint64_t seed = 1);

struct PartitionResult {
  std::vector<int> part;   // part id per vertex
  int num_parts = 0;
  long long cut_edges = 0; // graph edges with endpoints in different parts
};

/// Recursive-bisection partitioning into parts of at most `capacity`
/// vertices, minimising edge cut.
PartitionResult partition_into_islands(const graph::FlowNetwork& net,
                                       int capacity, std::uint64_t seed = 1);

struct RegionPartitionOptions {
  int regions = 4;
  std::uint64_t seed = 1;
  /// Per-bisection side slack, as in fm_bipartition.
  double balance_tolerance = 0.1;
  /// Groups larger than this split by BFS layering instead of FM passes:
  /// the quadratic FM pass is fine for island-sized groups but would make a
  /// million-vertex first bisection take hours. BFS prefixes keep regions
  /// connected-ish on mesh-like instances at O(group edges) per split.
  int fm_threshold = 4096;
};

/// One region's view of the k-way split, plus the global cut manifest.
struct RegionPartition {
  int num_regions = 0;
  std::vector<int> region;                // region id per vertex
  std::vector<std::vector<int>> vertices; // per-region vertex lists
  /// Vertices with at least one incident cut arc, per region (the stitch
  /// points of the sharded solve).
  std::vector<std::vector<int>> boundary;
  /// Edge ids whose endpoints land in different regions, ascending.
  std::vector<std::int64_t> cut_arcs;
  double cut_capacity = 0.0; // total capacity over cut_arcs
};

/// K-way region partitioner: recursive bisection (FM below fm_threshold,
/// BFS-prefix above), deterministic per (graph, options). Generalizes the
/// island bisection to the sharded-solve decomposition: regions are
/// balanced to within the per-split tolerances and every region is
/// non-empty. Throws std::invalid_argument when regions < 1 or regions
/// exceeds the vertex count.
RegionPartition partition_regions(const graph::FlowNetwork& net,
                                  const RegionPartitionOptions& opts = {});
RegionPartition partition_regions(const graph::CsrGraph& g,
                                  const RegionPartitionOptions& opts = {});

} // namespace aflow::arch

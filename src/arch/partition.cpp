#include "arch/partition.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>
#include <random>
#include <stdexcept>

namespace aflow::arch {

namespace {

/// Classic FM pass machinery on a compact adjacency.
class FmEngine {
 public:
  FmEngine(int n, const std::vector<std::pair<int, int>>& edges,
           double balance_tolerance, std::uint64_t seed)
      : n_(n), adj_(n), side_(n, 0) {
    for (const auto& [u, v] : edges) {
      if (u == v) continue;
      adj_[u].push_back(v);
      adj_[v].push_back(u);
    }
    // Allow at least one vertex of slack beyond a perfect split, otherwise
    // a balanced-but-bad start can never escape (every move passes through
    // an (n/2 + 1, n/2 - 1) state).
    max_side_ = static_cast<int>(
        std::ceil(((n + 1) / 2) * (1.0 + balance_tolerance)));
    max_side_ = std::min(std::max(max_side_, n / 2 + 1), n);

    // Random balanced initial assignment.
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::mt19937_64 rng(seed);
    std::shuffle(order.begin(), order.end(), rng);
    for (int i = 0; i < n; ++i) side_[order[i]] = i % 2;
  }

  int run_passes(int max_passes) {
    int passes = 0;
    while (passes < max_passes) {
      ++passes;
      if (!pass()) break;
    }
    return passes;
  }

  long long cut() const {
    long long c = 0;
    for (int v = 0; v < n_; ++v)
      for (int u : adj_[v])
        if (u > v && side_[u] != side_[v]) ++c;
    return c;
  }

  const std::vector<char>& side() const { return side_; }

 private:
  int gain(int v) const {
    int g = 0;
    for (int u : adj_[v]) g += (side_[u] != side_[v]) ? 1 : -1;
    return g;
  }

  /// One FM pass: tentatively move every vertex once (best-gain first,
  /// balance permitting), then roll back to the best prefix.
  bool pass() {
    std::vector<char> locked(n_, 0);
    std::vector<int> gains(n_);
    for (int v = 0; v < n_; ++v) gains[v] = gain(v);
    std::array<int, 2> count{0, 0};
    for (int v = 0; v < n_; ++v) count[side_[v]]++;

    std::vector<int> moved;
    moved.reserve(n_);
    long long best_delta = 0;
    long long delta = 0;
    int best_prefix = 0;

    for (int step = 0; step < n_; ++step) {
      // Highest-gain movable vertex whose move keeps balance.
      int pick = -1;
      for (int v = 0; v < n_; ++v) {
        if (locked[v]) continue;
        if (count[1 - side_[v]] + 1 > max_side_) continue;
        if (pick < 0 || gains[v] > gains[pick]) pick = v;
      }
      if (pick < 0) break;

      delta += gains[pick];
      count[side_[pick]]--;
      side_[pick] = 1 - side_[pick];
      count[side_[pick]]++;
      locked[pick] = 1;
      moved.push_back(pick);
      // Incremental gain update for neighbours: if u now shares pick's
      // side, the edge (u, pick) just left the cut, so moving u would put
      // it back (-2); otherwise the edge entered the cut (+2).
      for (int u : adj_[pick]) {
        if (locked[u]) continue;
        gains[u] += (side_[u] == side_[pick]) ? -2 : 2;
      }
      gains[pick] = -gains[pick];

      if (delta > best_delta) {
        best_delta = delta;
        best_prefix = static_cast<int>(moved.size());
      }
    }

    // Roll back moves beyond the best prefix.
    for (int i = static_cast<int>(moved.size()) - 1; i >= best_prefix; --i)
      side_[moved[i]] = 1 - side_[moved[i]];
    return best_delta > 0;
  }

  int n_;
  std::vector<std::vector<int>> adj_;
  std::vector<char> side_;
  int max_side_ = 0;
};

} // namespace

BipartitionResult fm_bipartition(int num_vertices,
                                 const std::vector<std::pair<int, int>>& edges,
                                 double balance_tolerance, std::uint64_t seed) {
  if (num_vertices < 0) throw std::invalid_argument("fm_bipartition: bad size");
  BipartitionResult result;
  if (num_vertices == 0) return result;
  FmEngine engine(num_vertices, edges, balance_tolerance, seed);
  result.passes = engine.run_passes(12);
  result.side = engine.side();
  result.cut_edges = engine.cut();
  return result;
}

PartitionResult partition_into_islands(const graph::FlowNetwork& net,
                                       int capacity, std::uint64_t seed) {
  if (capacity < 1)
    throw std::invalid_argument("partition_into_islands: capacity must be >= 1");
  PartitionResult out;
  out.part.assign(net.num_vertices(), -1);

  // Work queue of vertex groups to split.
  std::vector<std::vector<int>> groups;
  {
    std::vector<int> all(net.num_vertices());
    std::iota(all.begin(), all.end(), 0);
    groups.push_back(std::move(all));
  }

  std::uint64_t salt = 0;
  while (!groups.empty()) {
    std::vector<int> group = std::move(groups.back());
    groups.pop_back();
    if (static_cast<int>(group.size()) <= capacity) {
      for (int v : group) out.part[v] = out.num_parts;
      out.num_parts++;
      continue;
    }
    // Local edge list within the group.
    std::vector<int> local(net.num_vertices(), -1);
    for (size_t i = 0; i < group.size(); ++i) local[group[i]] = static_cast<int>(i);
    std::vector<std::pair<int, int>> edges;
    for (const auto& e : net.edges()) {
      const int u = local[e.from];
      const int v = local[e.to];
      if (u >= 0 && v >= 0) edges.emplace_back(u, v);
    }
    const auto bi = fm_bipartition(static_cast<int>(group.size()), edges, 0.1,
                                   seed + (++salt));
    std::vector<int> left, right;
    for (size_t i = 0; i < group.size(); ++i)
      (bi.side[i] ? right : left).push_back(group[i]);
    // Degenerate split (all on one side) cannot happen with the balance
    // bound, but guard against it to guarantee termination.
    if (left.empty() || right.empty()) {
      const size_t half = group.size() / 2;
      left.assign(group.begin(), group.begin() + half);
      right.assign(group.begin() + half, group.end());
    }
    groups.push_back(std::move(left));
    groups.push_back(std::move(right));
  }

  for (const auto& e : net.edges())
    if (out.part[e.from] != out.part[e.to]) out.cut_edges++;
  return out;
}

namespace {

/// BFS order over a flat undirected adjacency (CSR offsets + neighbour
/// array — no per-vertex vectors, since the first bisection of a huge
/// instance runs through here), started from local vertex 0, with further
/// components appended in local order. The prefix of this order makes a
/// contiguous-ish split at any target size.
std::vector<int> bfs_order(int size, const std::vector<std::int64_t>& adj_start,
                           const std::vector<int>& adj) {
  std::vector<char> seen(static_cast<size_t>(size), 0);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(size));
  for (int start = 0; start < size; ++start) {
    if (seen[start]) continue;
    seen[start] = 1;
    order.push_back(start);
    for (size_t head = order.size() - 1; head < order.size(); ++head) {
      const int x = order[head];
      for (std::int64_t a = adj_start[static_cast<size_t>(x)];
           a < adj_start[static_cast<size_t>(x) + 1]; ++a) {
        const int u = adj[static_cast<size_t>(a)];
        if (seen[u]) continue;
        seen[u] = 1;
        order.push_back(u);
      }
    }
  }
  return order;
}

/// Shared k-way recursion over any edge-list view (FlowNetwork or CsrGraph):
/// `edge_at(e)` yields endpoints, `cap_at(e)` the capacity.
template <typename EdgeAt, typename CapAt>
RegionPartition partition_regions_impl(int n, std::int64_t m, EdgeAt edge_at,
                                       CapAt cap_at,
                                       const RegionPartitionOptions& opts) {
  if (opts.regions < 1)
    throw std::invalid_argument("partition_regions: need at least one region");
  if (opts.regions > n)
    throw std::invalid_argument(
        "partition_regions: more regions than vertices");

  RegionPartition out;
  out.region.assign(static_cast<size_t>(n), -1);

  struct Group {
    std::vector<int> verts;
    int parts;
  };
  std::vector<Group> stack;
  {
    std::vector<int> all(static_cast<size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    stack.push_back({std::move(all), opts.regions});
  }

  std::vector<int> local(static_cast<size_t>(n), -1);
  std::uint64_t salt = 0;
  while (!stack.empty()) {
    Group g = std::move(stack.back());
    stack.pop_back();
    if (g.parts == 1) {
      for (int v : g.verts) out.region[static_cast<size_t>(v)] =
          out.num_regions;
      out.num_regions++;
      continue;
    }
    const int size = static_cast<int>(g.verts.size());
    const int k1 = g.parts / 2;
    const int k2 = g.parts - k1;
    // Proportional target, clamped so both halves can still host one vertex
    // per remaining region.
    int target = static_cast<int>(
        (static_cast<std::int64_t>(size) * k1 + g.parts / 2) / g.parts);
    target = std::clamp(target, k1, size - k2);

    for (int i = 0; i < size; ++i) local[g.verts[static_cast<size_t>(i)]] = i;
    std::vector<std::pair<int, int>> edges;
    for (std::int64_t e = 0; e < m; ++e) {
      const auto [fu, fv] = edge_at(e);
      const int u = local[static_cast<size_t>(fu)];
      const int v = local[static_cast<size_t>(fv)];
      if (u >= 0 && v >= 0 && u != v) edges.emplace_back(u, v);
    }

    std::vector<char> in_left(static_cast<size_t>(size), 0);
    bool split_ok = false;
    if (k1 == k2 && size <= opts.fm_threshold) {
      const auto bi = fm_bipartition(size, edges, opts.balance_tolerance,
                                     opts.seed + (++salt));
      int left = 0;
      for (int i = 0; i < size; ++i)
        if (bi.side[static_cast<size_t>(i)] == 0) {
          in_left[static_cast<size_t>(i)] = 1;
          ++left;
        }
      split_ok = left >= k1 && size - left >= k2;
    }
    if (!split_ok) {
      std::vector<std::int64_t> adj_start(static_cast<size_t>(size) + 1, 0);
      for (const auto& [u, v] : edges) {
        ++adj_start[static_cast<size_t>(u) + 1];
        ++adj_start[static_cast<size_t>(v) + 1];
      }
      for (int i = 0; i < size; ++i)
        adj_start[static_cast<size_t>(i) + 1] +=
            adj_start[static_cast<size_t>(i)];
      std::vector<int> adj(2 * edges.size());
      std::vector<std::int64_t> cursor(adj_start.begin(), adj_start.end() - 1);
      for (const auto& [u, v] : edges) {
        adj[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] = v;
        adj[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] = u;
      }
      const std::vector<int> order = bfs_order(size, adj_start, adj);
      std::fill(in_left.begin(), in_left.end(), 0);
      for (int i = 0; i < target; ++i)
        in_left[static_cast<size_t>(order[static_cast<size_t>(i)])] = 1;
    }

    Group left{{}, k1}, right{{}, k2};
    for (int i = 0; i < size; ++i)
      (in_left[static_cast<size_t>(i)] ? left.verts : right.verts)
          .push_back(g.verts[static_cast<size_t>(i)]);
    for (int v : g.verts) local[static_cast<size_t>(v)] = -1;
    // Right first so the left half is processed (and numbered) first.
    stack.push_back(std::move(right));
    stack.push_back(std::move(left));
  }

  out.vertices.resize(static_cast<size_t>(out.num_regions));
  for (int v = 0; v < n; ++v)
    out.vertices[static_cast<size_t>(out.region[static_cast<size_t>(v)])]
        .push_back(v);

  std::vector<char> on_boundary(static_cast<size_t>(n), 0);
  for (std::int64_t e = 0; e < m; ++e) {
    const auto [u, v] = edge_at(e);
    if (out.region[static_cast<size_t>(u)] ==
        out.region[static_cast<size_t>(v)])
      continue;
    out.cut_arcs.push_back(e);
    out.cut_capacity += cap_at(e);
    on_boundary[static_cast<size_t>(u)] = 1;
    on_boundary[static_cast<size_t>(v)] = 1;
  }
  out.boundary.resize(static_cast<size_t>(out.num_regions));
  for (int v = 0; v < n; ++v)
    if (on_boundary[static_cast<size_t>(v)])
      out.boundary[static_cast<size_t>(out.region[static_cast<size_t>(v)])]
          .push_back(v);
  return out;
}

} // namespace

RegionPartition partition_regions(const graph::FlowNetwork& net,
                                  const RegionPartitionOptions& opts) {
  return partition_regions_impl(
      net.num_vertices(), static_cast<std::int64_t>(net.num_edges()),
      [&net](std::int64_t e) {
        const auto& ed = net.edge(static_cast<int>(e));
        return std::pair<int, int>{ed.from, ed.to};
      },
      [&net](std::int64_t e) {
        return net.edge(static_cast<int>(e)).capacity;
      },
      opts);
}

RegionPartition partition_regions(const graph::CsrGraph& g,
                                  const RegionPartitionOptions& opts) {
  return partition_regions_impl(
      g.num_vertices(), g.num_edges(),
      [&g](std::int64_t e) {
        return std::pair<int, int>{g.edge_from(e), g.edge_to(e)};
      },
      [&g](std::int64_t e) { return g.edge_capacity(e); }, opts);
}

} // namespace aflow::arch

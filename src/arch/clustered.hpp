// Clustered island-style architectures (Sec. 6.2, Fig. 11).
//
// A clustered substrate is a collection of small crossbar islands joined by
// a programmable routing network:
//  - 1-D: a linear island array with connection boxes onto a shared
//    horizontal channel (Fig. 11a) — cheap, fast to map, but every
//    inter-island edge occupies the channel across its whole span;
//  - 2-D: an island grid with switch boxes (Fig. 11b) — XY (L-shaped)
//    routing over per-segment channels, more flexible, more hardware.
//
// The mapping CAD flow is: FM-based clustering into islands (partition.hpp)
// -> island placement (greedy seed + pairwise-swap refinement) -> channel
// routing (exact occupancy accounting; a route fails if any segment exceeds
// the channel width). Reported metrics quantify the paper's hypothesis:
// clustering recovers the crossbar-cell utilisation that a monolithic
// n x n crossbar wastes on sparse graphs, and 1-D routing saturates before
// 2-D as graphs grow.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/partition.hpp"
#include "graph/network.hpp"

namespace aflow::arch {

enum class RoutingStyle { kLinear1D, kGrid2D };

struct ArchSpec {
  RoutingStyle style = RoutingStyle::kLinear1D;
  int island_capacity = 32; // vertices per island (a k x k local crossbar)
  int channel_width = 32;   // tracks per channel segment
  /// 2-D only: islands per row of the grid (columns sized to fit).
  int grid_columns = 8;
};

struct MappingResult {
  bool routed = false;          // all inter-island edges fit channel_width
  int islands = 0;              // islands actually used
  std::vector<int> vertex_island;
  long long intra_island_edges = 0;
  long long inter_island_edges = 0;
  /// Peak channel-segment occupancy (tracks needed on the worst segment);
  /// the smallest channel width that would route this mapping.
  int required_channel_width = 0;
  long long total_wirelength = 0; // channel segments occupied, summed
  /// Used crossbar cells / available cells, monolithic vs clustered.
  double monolithic_utilization = 0.0;
  double clustered_utilization = 0.0;
  double mapping_seconds = 0.0;
  int placement_swaps = 0;
};

/// Runs the full clustering / placement / routing flow.
MappingResult map_to_islands(const graph::FlowNetwork& net, const ArchSpec& spec,
                             std::uint64_t seed = 1);

} // namespace aflow::arch

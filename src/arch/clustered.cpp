#include "arch/clustered.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>
#include <random>
#include <stdexcept>

namespace aflow::arch {

namespace {

/// Inter-island connectivity: weight[a][b] = #edges between islands a, b.
std::map<std::pair<int, int>, int> island_graph(const graph::FlowNetwork& net,
                                                const std::vector<int>& part) {
  std::map<std::pair<int, int>, int> w;
  for (const auto& e : net.edges()) {
    const int a = part[e.from];
    const int b = part[e.to];
    if (a == b) continue;
    w[{std::min(a, b), std::max(a, b)}]++;
  }
  return w;
}

struct Placement {
  /// slot[i] = island placed at physical slot i; pos[island] = its slot.
  std::vector<int> pos;
  int swaps = 0;
};

/// Physical distance between slots under the architecture style.
struct SlotGeometry {
  RoutingStyle style;
  int grid_columns;

  int distance(int a, int b) const {
    if (style == RoutingStyle::kLinear1D) return std::abs(a - b);
    const int ax = a % grid_columns, ay = a / grid_columns;
    const int bx = b % grid_columns, by = b / grid_columns;
    return std::abs(ax - bx) + std::abs(ay - by);
  }
};

/// Greedy seed (BFS over the island graph) + pairwise-swap refinement of
/// total weighted wirelength.
Placement place_islands(int islands,
                        const std::map<std::pair<int, int>, int>& w,
                        const SlotGeometry& geom, std::uint64_t seed) {
  Placement p;
  p.pos.resize(islands);
  std::iota(p.pos.begin(), p.pos.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(p.pos.begin(), p.pos.end(), rng);

  // Adjacency for cost evaluation.
  std::vector<std::vector<std::pair<int, int>>> adj(islands);
  for (const auto& [key, weight] : w) {
    adj[key.first].emplace_back(key.second, weight);
    adj[key.second].emplace_back(key.first, weight);
  }
  auto vertex_cost = [&](int island) {
    long long c = 0;
    for (const auto& [other, weight] : adj[island])
      c += static_cast<long long>(weight) *
           geom.distance(p.pos[island], p.pos[other]);
    return c;
  };

  bool improved = true;
  int rounds = 0;
  while (improved && rounds < 24) {
    improved = false;
    ++rounds;
    for (int a = 0; a < islands; ++a) {
      for (int b = a + 1; b < islands; ++b) {
        const long long before = vertex_cost(a) + vertex_cost(b);
        std::swap(p.pos[a], p.pos[b]);
        const long long after = vertex_cost(a) + vertex_cost(b);
        if (after < before) {
          improved = true;
          p.swaps++;
        } else {
          std::swap(p.pos[a], p.pos[b]);
        }
      }
    }
  }
  return p;
}

struct RouteStats {
  int peak = 0;
  long long wirelength = 0;
};

/// 1-D: an edge between slots a < b occupies every channel segment in
/// [a, b); occupancy is exact (the channel is a single shared bundle).
RouteStats route_1d(const std::map<std::pair<int, int>, int>& w,
                    const std::vector<int>& pos, int slots) {
  std::vector<int> occupancy(std::max(slots - 1, 0), 0);
  RouteStats stats;
  for (const auto& [key, weight] : w) {
    int a = pos[key.first];
    int b = pos[key.second];
    if (a > b) std::swap(a, b);
    for (int s = a; s < b; ++s) {
      occupancy[s] += weight;
      stats.wirelength += weight;
    }
  }
  for (int o : occupancy) stats.peak = std::max(stats.peak, o);
  return stats;
}

/// 2-D: XY routing; horizontal then vertical segments, occupancy per
/// directed channel segment between adjacent switch boxes.
RouteStats route_2d(const std::map<std::pair<int, int>, int>& w,
                    const std::vector<int>& pos, int slots, int columns) {
  const int rows = (slots + columns - 1) / columns;
  // Horizontal segment (x, y) spans (x, y)-(x+1, y); vertical (x, y)-(x, y+1).
  std::vector<int> h(static_cast<size_t>(std::max(columns - 1, 0)) * rows, 0);
  std::vector<int> v(static_cast<size_t>(columns) * std::max(rows - 1, 0), 0);
  RouteStats stats;
  auto hseg = [&](int x, int y) -> int& { return h[y * (columns - 1) + x]; };
  auto vseg = [&](int x, int y) -> int& { return v[y * columns + x]; };

  for (const auto& [key, weight] : w) {
    const int a = pos[key.first];
    const int b = pos[key.second];
    int ax = a % columns, ay = a / columns;
    const int bx = b % columns, by = b / columns;
    for (int x = std::min(ax, bx); x < std::max(ax, bx); ++x) {
      hseg(x, ay) += weight;
      stats.wirelength += weight;
    }
    for (int y = std::min(ay, by); y < std::max(ay, by); ++y) {
      vseg(bx, y) += weight;
      stats.wirelength += weight;
    }
    (void)ax;
  }
  for (int o : h) stats.peak = std::max(stats.peak, o);
  for (int o : v) stats.peak = std::max(stats.peak, o);
  return stats;
}

} // namespace

MappingResult map_to_islands(const graph::FlowNetwork& net, const ArchSpec& spec,
                             std::uint64_t seed) {
  if (spec.island_capacity < 1)
    throw std::invalid_argument("map_to_islands: island_capacity must be >= 1");
  if (spec.style == RoutingStyle::kGrid2D && spec.grid_columns < 1)
    throw std::invalid_argument("map_to_islands: grid_columns must be >= 1");
  const auto t0 = std::chrono::steady_clock::now();

  MappingResult out;
  const auto partition = partition_into_islands(net, spec.island_capacity, seed);
  out.vertex_island = partition.part;
  out.islands = partition.num_parts;
  out.inter_island_edges = partition.cut_edges;
  out.intra_island_edges = net.num_edges() - partition.cut_edges;

  const auto w = island_graph(net, partition.part);
  const SlotGeometry geom{spec.style, spec.grid_columns};
  const auto placement = place_islands(partition.num_parts, w, geom, seed);
  out.placement_swaps = placement.swaps;

  const RouteStats stats =
      spec.style == RoutingStyle::kLinear1D
          ? route_1d(w, placement.pos, partition.num_parts)
          : route_2d(w, placement.pos, partition.num_parts, spec.grid_columns);
  out.required_channel_width = stats.peak;
  out.total_wirelength = stats.wirelength;
  out.routed = stats.peak <= spec.channel_width;

  // Cell utilisation: a monolithic substrate needs an n x n crossbar; the
  // clustered one spends k x k per island (intra-island edges use cells,
  // inter-island edges use routing, not cells).
  const double n = net.num_vertices();
  out.monolithic_utilization = net.num_edges() / (n * n);
  const double cells = static_cast<double>(out.islands) * spec.island_capacity *
                       spec.island_capacity;
  out.clustered_utilization = cells > 0 ? out.intra_island_edges / cells : 0.0;

  out.mapping_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

} // namespace aflow::arch

#include "la/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace aflow::la {

void Triplets::add(int row, int col, double value) {
  if (row < 0 || col < 0) throw std::invalid_argument("Triplets::add: negative index");
  rows_ = std::max(rows_, row + 1);
  cols_ = std::max(cols_, col + 1);
  entries_.push_back({row, col, value});
}

SparseMatrix SparseMatrix::from_triplets(const Triplets& t,
                                         std::vector<int>* slot_out) {
  SparseMatrix m;
  m.rows_ = t.rows();
  m.cols_ = t.cols();
  const auto entries = t.entries();
  if (slot_out) slot_out->assign(entries.size(), -1);

  std::vector<int> count(static_cast<size_t>(m.cols_) + 1, 0);
  for (const auto& e : entries) count[static_cast<size_t>(e.col) + 1]++;
  for (int c = 0; c < m.cols_; ++c) count[static_cast<size_t>(c) + 1] += count[c];

  // Bucket the original entry indices by column so duplicate merging can
  // map each input entry to its final value slot.
  std::vector<int> origin(entries.size());
  {
    std::vector<int> next(count.begin(), count.end() - 1);
    for (size_t i = 0; i < entries.size(); ++i)
      origin[next[entries[i].col]++] = static_cast<int>(i);
  }

  // Sort within each column and merge duplicates.
  m.col_ptr_.assign(static_cast<size_t>(m.cols_) + 1, 0);
  m.row_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  std::vector<std::pair<int, int>> scratch; // (row, original entry index)
  for (int c = 0; c < m.cols_; ++c) {
    scratch.clear();
    for (int k = count[c]; k < count[static_cast<size_t>(c) + 1]; ++k)
      scratch.emplace_back(entries[origin[k]].row, origin[k]);
    std::sort(scratch.begin(), scratch.end());
    for (size_t k = 0; k < scratch.size();) {
      const int r = scratch[k].first;
      const int slot = static_cast<int>(m.row_idx_.size());
      double v = 0.0;
      while (k < scratch.size() && scratch[k].first == r) {
        v += entries[scratch[k].second].value;
        if (slot_out) (*slot_out)[scratch[k].second] = slot;
        ++k;
      }
      m.row_idx_.push_back(r);
      m.values_.push_back(v);
    }
    m.col_ptr_[static_cast<size_t>(c) + 1] = static_cast<int>(m.row_idx_.size());
  }
  return m;
}

void SparseMatrix::update_values(std::span<const Triplet> entries,
                                 std::span<const int> slots) {
  assert(entries.size() == slots.size());
  std::fill(values_.begin(), values_.end(), 0.0);
  for (size_t i = 0; i < entries.size(); ++i) {
    const int slot = slots[i];
    assert(slot >= 0 && slot < static_cast<int>(values_.size()));
    assert(row_idx_[slot] == entries[i].row);
    values_[slot] += entries[i].value;
  }
}

namespace {

std::uint64_t fnv1a64(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

} // namespace

std::uint64_t SparseMatrix::compute_pattern_key() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a64(h, static_cast<std::uint64_t>(rows_));
  h = fnv1a64(h, static_cast<std::uint64_t>(cols_));
  for (int p : col_ptr_) h = fnv1a64(h, static_cast<std::uint64_t>(p));
  for (int r : row_idx_) h = fnv1a64(h, static_cast<std::uint64_t>(r));
  return h;
}

std::uint64_t SparseMatrix::pattern_key() const {
  if (!pattern_key_valid_) {
    pattern_key_ = compute_pattern_key();
    pattern_key_valid_ = true;
  }
  // Debug-only hot-loop check: a pattern that mutated behind the cached
  // fingerprint would silently corrupt every reuse layer above.
  assert(pattern_key_ == compute_pattern_key());
  return pattern_key_;
}

void SparseMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  assert(static_cast<int>(x.size()) == cols_);
  assert(static_cast<int>(y.size()) == rows_);
  std::fill(y.begin(), y.end(), 0.0);
  for (int c = 0; c < cols_; ++c) {
    const double xc = x[c];
    if (xc == 0.0) continue;
    for (int k = col_ptr_[c]; k < col_ptr_[static_cast<size_t>(c) + 1]; ++k)
      y[row_idx_[k]] += values_[k] * xc;
  }
}

double SparseMatrix::at(int row, int col) const {
  if (col < 0 || col >= cols_) return 0.0;
  const auto first = row_idx_.begin() + col_ptr_[col];
  const auto last = row_idx_.begin() + col_ptr_[static_cast<size_t>(col) + 1];
  const auto it = std::lower_bound(first, last, row);
  if (it == last || *it != row) return 0.0;
  return values_[static_cast<size_t>(it - row_idx_.begin())];
}

std::vector<std::vector<int>> SparseMatrix::symmetric_adjacency() const {
  const int n = std::max(rows_, cols_);
  std::vector<std::vector<int>> adj(n);
  for (int c = 0; c < cols_; ++c) {
    for (int k = col_ptr_[c]; k < col_ptr_[static_cast<size_t>(c) + 1]; ++k) {
      const int r = row_idx_[k];
      if (r == c) continue;
      adj[c].push_back(r);
      adj[r].push_back(c);
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

namespace dense {

bool lu_solve(std::vector<double> a, int n, std::span<const double> b,
              std::span<double> x) {
  assert(static_cast<int>(a.size()) == n * n);
  assert(static_cast<int>(b.size()) == n && static_cast<int>(x.size()) == n);
  std::vector<int> piv(n);
  std::vector<double> rhs(b.begin(), b.end());
  for (int i = 0; i < n; ++i) piv[i] = i;

  for (int k = 0; k < n; ++k) {
    int p = k;
    double best = std::abs(a[static_cast<size_t>(k) * n + k]);
    for (int i = k + 1; i < n; ++i) {
      const double v = std::abs(a[static_cast<size_t>(i) * n + k]);
      if (v > best) { best = v; p = i; }
    }
    if (best == 0.0) return false;
    if (p != k) {
      for (int j = 0; j < n; ++j)
        std::swap(a[static_cast<size_t>(p) * n + j], a[static_cast<size_t>(k) * n + j]);
      std::swap(rhs[p], rhs[k]);
    }
    const double pivot = a[static_cast<size_t>(k) * n + k];
    for (int i = k + 1; i < n; ++i) {
      const double f = a[static_cast<size_t>(i) * n + k] / pivot;
      if (f == 0.0) continue;
      a[static_cast<size_t>(i) * n + k] = f;
      for (int j = k + 1; j < n; ++j)
        a[static_cast<size_t>(i) * n + j] -= f * a[static_cast<size_t>(k) * n + j];
      rhs[i] -= f * rhs[k];
    }
  }
  for (int i = n - 1; i >= 0; --i) {
    double s = rhs[i];
    for (int j = i + 1; j < n; ++j) s -= a[static_cast<size_t>(i) * n + j] * x[j];
    x[i] = s / a[static_cast<size_t>(i) * n + i];
  }
  return true;
}

} // namespace dense

double norm_inf(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

} // namespace aflow::la

// Fill-reducing orderings for sparse LU factorisation.
//
// Circuit matrices from the analog substrate are structurally symmetric and
// very sparse (a handful of entries per row, with a few dense-ish rows at
// graph hubs and shared voltage-level sources). Minimum degree is the
// work-horse here; reverse Cuthill-McKee is kept for mesh-like systems and
// as a cross-check in tests.
#pragma once

#include <vector>

#include "la/sparse.hpp"

namespace aflow::la {

/// Minimum-degree ordering on the pattern of A + A^T.
/// Returns `perm` with perm[k] = index of the k-th pivot.
std::vector<int> minimum_degree_order(const SparseMatrix& a);

/// Reverse Cuthill-McKee ordering on the pattern of A + A^T.
std::vector<int> rcm_order(const SparseMatrix& a);

/// Identity permutation of size n.
std::vector<int> natural_order(int n);

/// Returns the inverse permutation: inv[perm[k]] = k.
std::vector<int> invert_permutation(const std::vector<int>& perm);

} // namespace aflow::la

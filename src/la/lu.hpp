// Sparse LU factorisation (left-looking Gilbert-Peierls with threshold
// partial pivoting) for the MNA systems produced by the circuit simulator.
//
// Usage:
//   SparseLU lu;
//   lu.factor(A);          // throws SingularMatrixError on failure
//   lu.solve(b, x);        // x = A^-1 b, any number of times
//
// A fill-reducing column ordering is chosen once per pattern; the row
// ordering comes from numerical pivoting. `refactor` re-runs the numeric
// factorisation for a matrix with the same pattern (diode state flips and
// time-step changes in transient analysis) while reusing the ordering.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "la/ordering.hpp"
#include "la/sparse.hpp"

namespace aflow::la {

class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(int column)
      : std::runtime_error("SparseLU: matrix is numerically singular at column " +
                           std::to_string(column)),
        column_(column) {}
  int column() const { return column_; }

 private:
  int column_;
};

class SparseLU {
 public:
  enum class Ordering { kMinDegree, kRcm, kNatural };

  struct Options {
    Ordering ordering = Ordering::kMinDegree;
    /// A candidate diagonal pivot is accepted if it is at least
    /// `pivot_threshold` times the largest magnitude in its column; this
    /// keeps the elimination close to the fill-reducing order.
    double pivot_threshold = 0.1;
  };

  SparseLU() = default;
  explicit SparseLU(Options options) : options_(options) {}

  /// Factors `a`. Computes a fresh column ordering.
  void factor(const SparseMatrix& a);

  /// Factors `a`, reusing the previous column ordering if the dimension
  /// matches (callers guarantee an unchanged pattern).
  void refactor(const SparseMatrix& a);

  /// Solves A x = b using the current factors.
  void solve(std::span<const double> b, std::span<double> x) const;

  bool factored() const { return n_ > 0; }
  int dimension() const { return n_; }
  /// Fill: total nonzeros in L + U (including diagonal).
  long long factor_nnz() const;

 private:
  void factor_with_order(const SparseMatrix& a, bool reuse_order);

  Options options_;
  int n_ = 0;
  std::vector<int> colperm_;  // colperm_[k] = original column of pivot step k
  std::vector<int> rowperm_;  // rowperm_[k] = original row chosen at step k

  // L (unit diagonal implied) and U stored column-wise in pivot coordinates.
  std::vector<int> lp_, li_;
  std::vector<double> lx_;
  std::vector<int> up_, ui_;
  std::vector<double> ux_;
  std::vector<double> udiag_;
};

} // namespace aflow::la

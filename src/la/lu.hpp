// Sparse LU factorisation (left-looking Gilbert-Peierls with threshold
// partial pivoting) for the MNA systems produced by the circuit simulator.
//
// Usage:
//   SparseLU lu;
//   lu.factor(A);          // throws SingularMatrixError on failure
//   lu.solve(b, x);        // x = A^-1 b, any number of times
//   lu.refactor(A2);       // same pattern, new values: numeric-only fast path
//
// `factor` chooses a fill-reducing column ordering, runs the symbolic reach
// DFS, and pivots numerically. `refactor` replays the numeric elimination
// over the frozen symbolic structure (same column ordering, same pivot rows,
// same L/U patterns) with no graph traversal at all — the per-iteration fast
// path for diode state flips, time-step changes, and reprogrammed
// conductances. When the saved pivot order degrades numerically (a pivot
// falls below `refactor_pivot_threshold` of its column magnitude) refactor
// transparently falls back to a full factorisation and reports it through
// its return value, so callers can keep full-factor vs refactor statistics.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "la/ordering.hpp"
#include "la/sparse.hpp"

namespace aflow::la {

class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(int column)
      : std::runtime_error("SparseLU: matrix is numerically singular at column " +
                           std::to_string(column)),
        column_(column) {}
  int column() const { return column_; }

 private:
  int column_;
};

class SparseLU {
 public:
  enum class Ordering { kMinDegree, kRcm, kNatural };

  struct Options {
    Ordering ordering = Ordering::kMinDegree;
    /// A candidate diagonal pivot is accepted if it is at least
    /// `pivot_threshold` times the largest magnitude in its column; this
    /// keeps the elimination close to the fill-reducing order.
    double pivot_threshold = 0.1;
    /// Numeric-only refactorisation keeps the saved pivot order only while
    /// every pivot stays at least this fraction of its column's magnitude
    /// (element growth <= 1/threshold per column); below it the refactor
    /// falls back to a full factorisation with fresh pivoting.
    double refactor_pivot_threshold = 0.01;
  };

  SparseLU() = default;
  explicit SparseLU(Options options) : options_(options) {}

  /// Factors `a`. Computes a fresh column ordering unless one was installed
  /// via `seed_column_order`.
  void factor(const SparseMatrix& a);

  /// Factors `a`, which must have the same sparsity pattern as the last
  /// fully-factored matrix. Returns true when the numeric-only fast path
  /// (frozen pivot order and fill pattern, no symbolic work) was used;
  /// returns false when it fell back to a full factorisation (pattern or
  /// dimension mismatch, or a pivot degraded past
  /// Options::refactor_pivot_threshold).
  bool refactor(const SparseMatrix& a);

  /// Solves A x = b using the current factors.
  void solve(std::span<const double> b, std::span<double> x) const;

  /// Installs a column ordering for the next `factor` call, skipping the
  /// fill-reducing analysis — for batches of same-pattern systems solved by
  /// different SparseLU instances. Ignored (and cleared) if the next
  /// factored matrix dimension does not match. Any valid permutation is
  /// safe: a mismatched ordering costs fill, never correctness.
  void seed_column_order(std::vector<int> order);
  /// The column ordering of the current factorisation (perm[k] = original
  /// column eliminated at step k).
  const std::vector<int>& column_order() const { return colperm_; }

  bool factored() const { return n_ > 0; }
  int dimension() const { return n_; }
  /// Fingerprint of the pattern of the current factorisation (0 when not
  /// factored) — lets a caller cheaply check whether a factored prototype
  /// matches a matrix before cloning it (see core::ReusePool).
  std::uint64_t factored_pattern_key() const { return n_ > 0 ? pattern_key_ : 0; }
  /// Fill: total nonzeros in L + U (including diagonal).
  long long factor_nnz() const;

  /// Heap bytes retained by the factorisation (permutations, L/U structure
  /// and values, scratch) — the cost a core::ReusePool charges an LU
  /// prototype against its byte budget.
  size_t memory_bytes() const;

 private:
  void factor_with_order(const SparseMatrix& a, bool reuse_order);
  bool try_numeric_refactor(const SparseMatrix& a);

  Options options_;
  int n_ = 0;
  bool order_seeded_ = false;
  std::uint64_t pattern_key_ = 0; // fingerprint of the factored pattern
  std::vector<int> colperm_;  // colperm_[k] = original column of pivot step k
  std::vector<int> rowperm_;  // rowperm_[k] = original row chosen at step k
  std::vector<int> pinv_;     // original row -> pivot step (rowperm_ inverse)

  // L (unit diagonal implied) and U stored column-wise in pivot coordinates.
  // U columns are sorted by pivot row so a refactor can replay the
  // elimination in dependency order without the reach DFS.
  std::vector<int> lp_, li_;
  std::vector<double> lx_;
  std::vector<int> up_, ui_;
  std::vector<double> ux_;
  std::vector<double> udiag_;
  std::vector<double> work_;  // dense scatter column for refactor
};

/// Thread-safe cache of fill-reducing column orderings keyed by sparsity
/// pattern, for sharing symbolic analysis across same-shape instances of a
/// batch (the paper's reconfiguration scenario: one crossbar topology,
/// many programmed conductance sets). A 64-bit key collision is harmless:
/// any permutation of the right size is a correct — at worst slower —
/// elimination order, and wrong-size seeds are rejected by SparseLU.
class OrderingCache {
 public:
  /// Fingerprint of the matrix dimensions and nonzero positions.
  static std::uint64_t pattern_key(const SparseMatrix& a);

  std::optional<std::vector<int>> find(std::uint64_t key) const;
  void store(std::uint64_t key, std::vector<int> order);
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<int>> orders_;
};

/// Full factorisation through an optional ordering cache: seeds the column
/// ordering on a pattern hit, publishes it on a miss. With a null cache
/// this is plain `lu.factor(a)`. Throws SingularMatrixError like factor().
void factor_with_cache(SparseLU& lu, const SparseMatrix& a,
                       OrderingCache* cache);

/// Outcome of entering a factorisation through a cross-instance prototype
/// (see enter_prototype).
enum class PrototypeEntry {
  kNotEntered,   // no prototype, or its pattern does not match `a`
  kRefactored,   // numeric-only fast path: symbolic analysis + pivoting skipped
  kFullFactored, // entered, but a pivot degraded: full factor (reused ordering)
};

/// Clone-and-refactor entry used by the warm-start layer: when `prototype`
/// is factored for exactly `a`'s pattern, copies it into `lu` and runs the
/// numeric-only refactor; pivot degradation falls back to a full
/// factorisation inside refactor() as usual. Keeps the protocol (and its
/// stats attribution, via the return value) in one place for the DC and
/// transient engines. Throws SingularMatrixError like refactor().
PrototypeEntry enter_prototype(SparseLU& lu, const SparseLU* prototype,
                               const SparseMatrix& a);

} // namespace aflow::la

#include "la/ordering.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>

namespace aflow::la {

std::vector<int> natural_order(int n) {
  std::vector<int> p(n);
  for (int i = 0; i < n; ++i) p[i] = i;
  return p;
}

std::vector<int> invert_permutation(const std::vector<int>& perm) {
  std::vector<int> inv(perm.size());
  for (size_t k = 0; k < perm.size(); ++k) inv[perm[k]] = static_cast<int>(k);
  return inv;
}

std::vector<int> minimum_degree_order(const SparseMatrix& a) {
  const int n = std::max(a.rows(), a.cols());
  auto adj = a.symmetric_adjacency();
  adj.resize(n);

  std::vector<char> eliminated(n, 0);
  std::vector<int> degree(n);
  for (int i = 0; i < n; ++i) degree[i] = static_cast<int>(adj[i].size());

  // Bucket queue keyed by (possibly stale) degree; stale entries are lazily
  // discarded, which keeps this a practical approximation of minimum degree.
  using Entry = std::pair<int, int>; // (degree, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (int i = 0; i < n; ++i) pq.emplace(degree[i], i);

  std::vector<int> perm;
  perm.reserve(n);
  std::vector<char> mark(n, 0);

  while (!pq.empty()) {
    const auto [deg, v] = pq.top();
    pq.pop();
    if (eliminated[v] || deg != degree[v]) continue;
    eliminated[v] = 1;
    perm.push_back(v);

    // Gather live neighbours of v.
    std::vector<int> live;
    live.reserve(adj[v].size());
    for (int u : adj[v])
      if (!eliminated[u]) live.push_back(u);

    // Form the elimination clique among live neighbours; update degrees.
    for (int u : live) {
      // Drop eliminated nodes from u's list (v included) and merge clique.
      auto& lu = adj[u];
      lu.erase(std::remove_if(lu.begin(), lu.end(),
                              [&](int w) { return eliminated[w] != 0; }),
               lu.end());
      for (int w : lu) mark[w] = 1;
      mark[u] = 1;
      for (int w : live)
        if (!mark[w]) lu.push_back(w);
      for (int w : lu) mark[w] = 0;
      mark[u] = 0;
      degree[u] = static_cast<int>(lu.size());
      pq.emplace(degree[u], u);
    }
    adj[v].clear();
    adj[v].shrink_to_fit();
  }
  assert(static_cast<int>(perm.size()) == n);
  return perm;
}

std::vector<int> rcm_order(const SparseMatrix& a) {
  const int n = std::max(a.rows(), a.cols());
  auto adj = a.symmetric_adjacency();
  adj.resize(n);

  std::vector<int> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);

  // Process each connected component, starting from a minimum-degree node.
  std::vector<int> nodes = natural_order(n);
  std::stable_sort(nodes.begin(), nodes.end(), [&](int x, int y) {
    return adj[x].size() < adj[y].size();
  });

  for (int start : nodes) {
    if (visited[start]) continue;
    std::queue<int> q;
    q.push(start);
    visited[start] = 1;
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      order.push_back(v);
      std::vector<int> nbrs;
      for (int u : adj[v])
        if (!visited[u]) nbrs.push_back(u);
      std::sort(nbrs.begin(), nbrs.end(), [&](int x, int y) {
        return adj[x].size() < adj[y].size();
      });
      for (int u : nbrs) {
        visited[u] = 1;
        q.push(u);
      }
    }
  }
  std::reverse(order.begin(), order.end());
  assert(static_cast<int>(order.size()) == n);
  return order;
}

} // namespace aflow::la

#include "la/lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aflow::la {

namespace {

// Depth-first search used to compute the reach of column pattern `b_rows`
// in the graph of already-computed L columns. Rows are original indices;
// `pinv[i]` maps an original row to its pivot step (-1 if not yet pivotal).
// Emits the reach in topological order into `stack_out` (from `top` to n-1).
int reach(int n, std::span<const int> lp, std::span<const int> li,
          std::span<const int> pinv, std::span<const int> b_rows,
          std::vector<int>& work_stack, std::vector<int>& path_pos,
          std::vector<char>& marked, std::vector<int>& stack_out) {
  int top = n;
  for (int row : b_rows) {
    if (marked[row]) continue;
    // Iterative DFS from `row`.
    int head = 0;
    work_stack[0] = row;
    while (head >= 0) {
      const int i = work_stack[head];
      const int k = pinv[i]; // L column this row maps to, if pivotal
      if (!marked[i]) {
        marked[i] = 1;
        path_pos[head] = (k < 0) ? 0 : lp[k];
      }
      bool done = true;
      if (k >= 0) {
        for (int p = path_pos[head]; p < lp[k + 1]; ++p) {
          const int child = li[p];
          if (marked[child]) continue;
          path_pos[head] = p + 1; // resume here after visiting child
          work_stack[++head] = child;
          done = false;
          break;
        }
      }
      if (done) {
        --head;
        stack_out[--top] = i;
      }
    }
  }
  return top;
}

} // namespace

void SparseLU::factor(const SparseMatrix& a) { factor_with_order(a, false); }

void SparseLU::refactor(const SparseMatrix& a) {
  const int n = a.rows();
  factor_with_order(a, n == static_cast<int>(colperm_.size()));
}

void SparseLU::factor_with_order(const SparseMatrix& a, bool reuse_order) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("SparseLU: matrix must be square");
  const int n = a.rows();

  if (!reuse_order) {
    switch (options_.ordering) {
      case Ordering::kMinDegree: colperm_ = minimum_degree_order(a); break;
      case Ordering::kRcm: colperm_ = rcm_order(a); break;
      case Ordering::kNatural: colperm_ = natural_order(n); break;
    }
  }

  lp_.assign(1, 0);
  li_.clear();
  lx_.clear();
  up_.assign(1, 0);
  ui_.clear();
  ux_.clear();
  udiag_.assign(n, 0.0);
  rowperm_.assign(n, -1);

  std::vector<int> pinv(n, -1); // original row -> pivot step
  std::vector<double> x(n, 0.0);
  std::vector<char> marked(n, 0);
  std::vector<int> stack_out(n), work_stack(n), path_pos(n);

  const auto acp = a.col_ptr();
  const auto ari = a.row_idx();
  const auto avx = a.values();

  for (int k = 0; k < n; ++k) {
    const int col = colperm_[k];
    std::span<const int> b_rows(ari.data() + acp[col],
                                static_cast<size_t>(acp[col + 1] - acp[col]));
    const int top =
        reach(n, lp_, li_, pinv, b_rows, work_stack, path_pos, marked, stack_out);

    // Scatter numeric values of A(:, col).
    for (int p = acp[col]; p < acp[col + 1]; ++p) x[ari[p]] = avx[p];

    // Sparse forward solve with the unit-diagonal L computed so far.
    for (int s = top; s < n; ++s) {
      const int i = stack_out[s];
      const int j = pinv[i];
      if (j < 0) continue;
      const double xj = x[i];
      if (xj != 0.0) {
        for (int p = lp_[j]; p < lp_[j + 1]; ++p) x[li_[p]] -= lx_[p] * xj;
      }
    }

    // Pivot selection among not-yet-pivotal rows; prefer the symmetric
    // diagonal candidate (row == col) when it is large enough.
    int ipiv = -1;
    double maxabs = 0.0;
    for (int s = top; s < n; ++s) {
      const int i = stack_out[s];
      if (pinv[i] >= 0) continue;
      const double v = std::abs(x[i]);
      if (v > maxabs) { maxabs = v; ipiv = i; }
    }
    if (ipiv < 0 || maxabs == 0.0) {
      // Clean up scatter state before throwing.
      for (int s = top; s < n; ++s) { marked[stack_out[s]] = 0; x[stack_out[s]] = 0.0; }
      throw SingularMatrixError(k);
    }
    if (pinv[col] < 0 && std::abs(x[col]) >= options_.pivot_threshold * maxabs)
      ipiv = col;

    const double pivot = x[ipiv];
    udiag_[k] = pivot;
    pinv[ipiv] = k;
    rowperm_[k] = ipiv;

    // Split the reach into U entries (pivotal rows) and L entries (the rest).
    for (int s = top; s < n; ++s) {
      const int i = stack_out[s];
      marked[i] = 0;
      const double v = x[i];
      x[i] = 0.0;
      if (i == ipiv) continue;
      if (pinv[i] >= 0) {
        if (v != 0.0) { ui_.push_back(pinv[i]); ux_.push_back(v); }
      } else {
        if (v != 0.0) { li_.push_back(i); lx_.push_back(v / pivot); }
      }
    }
    lp_.push_back(static_cast<int>(li_.size()));
    up_.push_back(static_cast<int>(ui_.size()));
  }

  // Remap L row indices from original rows to pivot steps; by construction
  // every remaining row eventually became pivotal.
  for (auto& i : li_) {
    assert(pinv[i] >= 0);
    i = pinv[i];
  }
  n_ = n;
}

void SparseLU::solve(std::span<const double> b, std::span<double> x) const {
  assert(factored());
  assert(static_cast<int>(b.size()) == n_ && static_cast<int>(x.size()) == n_);
  std::vector<double> y(n_);
  for (int k = 0; k < n_; ++k) y[k] = b[rowperm_[k]];
  // Forward solve: L has unit diagonal; columns already in pivot order.
  for (int k = 0; k < n_; ++k) {
    const double yk = y[k];
    if (yk == 0.0) continue;
    for (int p = lp_[k]; p < lp_[k + 1]; ++p) y[li_[p]] -= lx_[p] * yk;
  }
  // Backward solve with U.
  for (int k = n_ - 1; k >= 0; --k) {
    const double xk = y[k] / udiag_[k];
    y[k] = xk;
    if (xk == 0.0) continue;
    for (int p = up_[k]; p < up_[k + 1]; ++p) y[ui_[p]] -= ux_[p] * xk;
  }
  for (int k = 0; k < n_; ++k) x[colperm_[k]] = y[k];
}

long long SparseLU::factor_nnz() const {
  return static_cast<long long>(li_.size()) + static_cast<long long>(ui_.size()) + n_;
}

} // namespace aflow::la

#include "la/lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aflow::la {

namespace {

// Depth-first search used to compute the reach of column pattern `b_rows`
// in the graph of already-computed L columns. Rows are original indices;
// `pinv[i]` maps an original row to its pivot step (-1 if not yet pivotal).
// Emits the reach in topological order into `stack_out` (from `top` to n-1).
int reach(int n, std::span<const int> lp, std::span<const int> li,
          std::span<const int> pinv, std::span<const int> b_rows,
          std::vector<int>& work_stack, std::vector<int>& path_pos,
          std::vector<char>& marked, std::vector<int>& stack_out) {
  int top = n;
  for (int row : b_rows) {
    if (marked[row]) continue;
    // Iterative DFS from `row`.
    int head = 0;
    work_stack[0] = row;
    while (head >= 0) {
      const int i = work_stack[head];
      const int k = pinv[i]; // L column this row maps to, if pivotal
      if (!marked[i]) {
        marked[i] = 1;
        path_pos[head] = (k < 0) ? 0 : lp[k];
      }
      bool done = true;
      if (k >= 0) {
        for (int p = path_pos[head]; p < lp[k + 1]; ++p) {
          const int child = li[p];
          if (marked[child]) continue;
          path_pos[head] = p + 1; // resume here after visiting child
          work_stack[++head] = child;
          done = false;
          break;
        }
      }
      if (done) {
        --head;
        stack_out[--top] = i;
      }
    }
  }
  return top;
}

} // namespace

void SparseLU::factor(const SparseMatrix& a) {
  const bool seeded =
      order_seeded_ && static_cast<int>(colperm_.size()) == a.rows();
  order_seeded_ = false;
  factor_with_order(a, seeded);
}

bool SparseLU::refactor(const SparseMatrix& a) {
  if (factored() && try_numeric_refactor(a)) return true;
  // Numeric regime (or pattern) changed: redo the pivoting, but still reuse
  // the column ordering when the dimension matches — it depends only on the
  // pattern.
  factor_with_order(a, a.rows() == static_cast<int>(colperm_.size()));
  return false;
}

void SparseLU::seed_column_order(std::vector<int> order) {
  colperm_ = std::move(order);
  order_seeded_ = true;
  n_ = 0; // the seed invalidates any previous factorisation
}

void SparseLU::factor_with_order(const SparseMatrix& a, bool reuse_order) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("SparseLU: matrix must be square");
  const int n = a.rows();
  n_ = 0; // invalid until the factorisation completes (exception safety)
  order_seeded_ = false;

  if (!reuse_order) {
    switch (options_.ordering) {
      case Ordering::kMinDegree: colperm_ = minimum_degree_order(a); break;
      case Ordering::kRcm: colperm_ = rcm_order(a); break;
      case Ordering::kNatural: colperm_ = natural_order(n); break;
    }
  }

  lp_.assign(1, 0);
  li_.clear();
  lx_.clear();
  up_.assign(1, 0);
  ui_.clear();
  ux_.clear();
  udiag_.assign(n, 0.0);
  rowperm_.assign(n, -1);
  pinv_.assign(n, -1); // original row -> pivot step

  std::vector<double> x(n, 0.0);
  std::vector<char> marked(n, 0);
  std::vector<int> stack_out(n), work_stack(n), path_pos(n);

  const auto acp = a.col_ptr();
  const auto ari = a.row_idx();
  const auto avx = a.values();

  for (int k = 0; k < n; ++k) {
    const int col = colperm_[k];
    std::span<const int> b_rows(ari.data() + acp[col],
                                static_cast<size_t>(acp[col + 1] - acp[col]));
    const int top =
        reach(n, lp_, li_, pinv_, b_rows, work_stack, path_pos, marked, stack_out);

    // Scatter numeric values of A(:, col).
    for (int p = acp[col]; p < acp[col + 1]; ++p) x[ari[p]] = avx[p];

    // Sparse forward solve with the unit-diagonal L computed so far.
    for (int s = top; s < n; ++s) {
      const int i = stack_out[s];
      const int j = pinv_[i];
      if (j < 0) continue;
      const double xj = x[i];
      if (xj != 0.0) {
        for (int p = lp_[j]; p < lp_[j + 1]; ++p) x[li_[p]] -= lx_[p] * xj;
      }
    }

    // Pivot selection among not-yet-pivotal rows; prefer the symmetric
    // diagonal candidate (row == col) when it is large enough.
    int ipiv = -1;
    double maxabs = 0.0;
    for (int s = top; s < n; ++s) {
      const int i = stack_out[s];
      if (pinv_[i] >= 0) continue;
      const double v = std::abs(x[i]);
      if (v > maxabs) { maxabs = v; ipiv = i; }
    }
    if (ipiv < 0 || maxabs == 0.0) {
      // Clean up scatter state before throwing.
      for (int s = top; s < n; ++s) { marked[stack_out[s]] = 0; x[stack_out[s]] = 0.0; }
      throw SingularMatrixError(k);
    }
    if (pinv_[col] < 0 && std::abs(x[col]) >= options_.pivot_threshold * maxabs)
      ipiv = col;

    const double pivot = x[ipiv];
    udiag_[k] = pivot;
    pinv_[ipiv] = k;
    rowperm_[k] = ipiv;

    // Split the reach into U entries (pivotal rows) and L entries (the
    // rest). Numerically-zero entries are kept: the stored pattern must be
    // the full symbolic reach so a later numeric-only refactor (with
    // different values at the same positions) stays correct.
    for (int s = top; s < n; ++s) {
      const int i = stack_out[s];
      marked[i] = 0;
      const double v = x[i];
      x[i] = 0.0;
      if (i == ipiv) continue;
      if (pinv_[i] >= 0) {
        ui_.push_back(pinv_[i]);
        ux_.push_back(v);
      } else {
        li_.push_back(i);
        lx_.push_back(v / pivot);
      }
    }
    lp_.push_back(static_cast<int>(li_.size()));
    up_.push_back(static_cast<int>(ui_.size()));
  }

  // Remap L row indices from original rows to pivot steps; by construction
  // every remaining row eventually became pivotal.
  for (auto& i : li_) {
    assert(pinv_[i] >= 0);
    i = pinv_[i];
  }

  // Sort each U column by pivot step. Dependencies in the elimination only
  // run from lower to higher pivot steps, so ascending order is the
  // topological replay order the numeric refactor needs.
  {
    std::vector<std::pair<int, double>> col;
    for (int k = 0; k < n; ++k) {
      const int begin = up_[k], end = up_[k + 1];
      col.clear();
      for (int p = begin; p < end; ++p) col.emplace_back(ui_[p], ux_[p]);
      std::sort(col.begin(), col.end());
      for (int p = begin; p < end; ++p) {
        ui_[p] = col[static_cast<size_t>(p - begin)].first;
        ux_[p] = col[static_cast<size_t>(p - begin)].second;
      }
    }
  }

  pattern_key_ = a.pattern_key();
  n_ = n;
}

bool SparseLU::try_numeric_refactor(const SparseMatrix& a) {
  if (a.rows() != n_ || a.cols() != n_) return false;
  // The matrix caches its fingerprint, so this is O(1) on the hot loop
  // (pattern-stable assembly updates values in place and keeps the key).
  if (a.pattern_key() != pattern_key_) return false;

  work_.assign(n_, 0.0);
  const auto acp = a.col_ptr();
  const auto ari = a.row_idx();
  const auto avx = a.values();

  for (int k = 0; k < n_; ++k) {
    const int col = colperm_[k];
    // Scatter A(:, col) in pivot coordinates; the pattern match guarantees
    // every position lies inside the frozen U / pivot / L structure.
    for (int p = acp[col]; p < acp[col + 1]; ++p)
      work_[pinv_[ari[p]]] = avx[p];

    // Replay the forward elimination over the frozen U pattern (ascending
    // pivot steps = topological order).
    for (int p = up_[k]; p < up_[k + 1]; ++p) {
      const int j = ui_[p];
      const double v = work_[j];
      ux_[p] = v;
      work_[j] = 0.0;
      if (v != 0.0) {
        for (int q = lp_[j]; q < lp_[j + 1]; ++q) work_[li_[q]] -= lx_[q] * v;
      }
    }

    const double pivot = work_[k];
    work_[k] = 0.0;
    double colmax = std::abs(pivot);
    for (int q = lp_[k]; q < lp_[k + 1]; ++q)
      colmax = std::max(colmax, std::abs(work_[li_[q]]));

    // Pivot degraded (or singular, or NaN): clean up and hand control back
    // to the full factorisation.
    if (pivot == 0.0 ||
        !(std::abs(pivot) >= options_.refactor_pivot_threshold * colmax)) {
      for (int q = lp_[k]; q < lp_[k + 1]; ++q) work_[li_[q]] = 0.0;
      return false;
    }

    udiag_[k] = pivot;
    for (int q = lp_[k]; q < lp_[k + 1]; ++q) {
      lx_[q] = work_[li_[q]] / pivot;
      work_[li_[q]] = 0.0;
    }
  }
  return true;
}

void SparseLU::solve(std::span<const double> b, std::span<double> x) const {
  assert(factored());
  assert(static_cast<int>(b.size()) == n_ && static_cast<int>(x.size()) == n_);
  std::vector<double> y(n_);
  for (int k = 0; k < n_; ++k) y[k] = b[rowperm_[k]];
  // Forward solve: L has unit diagonal; columns already in pivot order.
  for (int k = 0; k < n_; ++k) {
    const double yk = y[k];
    if (yk == 0.0) continue;
    for (int p = lp_[k]; p < lp_[k + 1]; ++p) y[li_[p]] -= lx_[p] * yk;
  }
  // Backward solve with U.
  for (int k = n_ - 1; k >= 0; --k) {
    const double xk = y[k] / udiag_[k];
    y[k] = xk;
    if (xk == 0.0) continue;
    for (int p = up_[k]; p < up_[k + 1]; ++p) y[ui_[p]] -= ux_[p] * xk;
  }
  for (int k = 0; k < n_; ++k) x[colperm_[k]] = y[k];
}

long long SparseLU::factor_nnz() const {
  return static_cast<long long>(li_.size()) + static_cast<long long>(ui_.size()) + n_;
}

size_t SparseLU::memory_bytes() const {
  auto ints = [](const std::vector<int>& v) { return v.capacity() * sizeof(int); };
  auto dbls = [](const std::vector<double>& v) {
    return v.capacity() * sizeof(double);
  };
  return sizeof(SparseLU) + ints(colperm_) + ints(rowperm_) + ints(pinv_) +
         ints(lp_) + ints(li_) + dbls(lx_) + ints(up_) + ints(ui_) + dbls(ux_) +
         dbls(udiag_) + dbls(work_);
}

std::uint64_t OrderingCache::pattern_key(const SparseMatrix& a) {
  return a.pattern_key(); // cached on the matrix; O(1) after the first call
}

std::optional<std::vector<int>> OrderingCache::find(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = orders_.find(key);
  if (it == orders_.end()) return std::nullopt;
  return it->second;
}

void OrderingCache::store(std::uint64_t key, std::vector<int> order) {
  const std::lock_guard<std::mutex> lock(mutex_);
  orders_[key] = std::move(order);
}

size_t OrderingCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return orders_.size();
}

void factor_with_cache(SparseLU& lu, const SparseMatrix& a,
                       OrderingCache* cache) {
  if (!cache) {
    lu.factor(a);
    return;
  }
  const std::uint64_t key = OrderingCache::pattern_key(a);
  auto order = cache->find(key);
  if (order) lu.seed_column_order(std::move(*order));
  lu.factor(a);
  if (!order) cache->store(key, lu.column_order());
}

PrototypeEntry enter_prototype(SparseLU& lu, const SparseLU* prototype,
                               const SparseMatrix& a) {
  if (!prototype || !prototype->factored() ||
      prototype->factored_pattern_key() != a.pattern_key())
    return PrototypeEntry::kNotEntered;
  lu = *prototype;
  return lu.refactor(a) ? PrototypeEntry::kRefactored
                        : PrototypeEntry::kFullFactored;
}

} // namespace aflow::la

// Sparse linear algebra substrate for the analogflow circuit simulator.
//
// Provides a COO triplet builder (`Triplets`) used during MNA stamping and a
// compressed-sparse-column matrix (`SparseMatrix`) consumed by the LU solver.
// All indices are 0-based `int` (circuit matrices stay well below 2^31).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace aflow::la {

/// One (row, col, value) entry of a matrix under construction.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// Accumulates (row, col, value) entries; duplicates are summed when the
/// matrix is compressed. This is the natural target of MNA "stamping".
class Triplets {
 public:
  Triplets() = default;
  explicit Triplets(int rows, int cols) : rows_(rows), cols_(cols) {}

  /// Adds `value` at (row, col). Grows the logical dimensions if needed.
  void add(int row, int col, double value);

  /// Removes all entries but keeps the logical dimensions.
  void clear() { entries_.clear(); }

  /// Clears entries and resets the logical dimensions, keeping the entry
  /// buffer's capacity (for repeated same-shape assembly).
  void reset(int rows, int cols) {
    entries_.clear();
    rows_ = rows;
    cols_ = cols;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::span<const Triplet> entries() const { return entries_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<Triplet> entries_;
};

/// Immutable compressed-sparse-column matrix.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Compresses a triplet list; duplicate (row, col) entries are summed.
  /// When `slot_out` is non-null it receives, per input entry, the index in
  /// values() the entry was summed into — the scatter map that lets
  /// `update_values` refresh a fixed pattern without re-compressing.
  static SparseMatrix from_triplets(const Triplets& t,
                                    std::vector<int>* slot_out = nullptr);

  /// Numeric-only in-place update: overwrites values() by scattering
  /// `entries` through the `slots` map produced by from_triplets. The entry
  /// list must have the same length and (row, col) sequence as the one the
  /// pattern was built from.
  void update_values(std::span<const Triplet> entries,
                     std::span<const int> slots);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int nnz() const { return static_cast<int>(values_.size()); }

  /// 64-bit fingerprint of the dimensions and nonzero positions (values are
  /// excluded). Computed lazily and cached: the pattern is immutable after
  /// construction and `update_values` is numeric-only, so hot refactor loops
  /// pay O(1) instead of rehashing O(nnz) per call. Debug builds re-derive
  /// the key on every call and assert it against the cache, so a pattern
  /// mutated behind the cache is caught in the hot loop itself.
  std::uint64_t pattern_key() const;

  std::span<const int> col_ptr() const { return col_ptr_; }
  std::span<const int> row_idx() const { return row_idx_; }
  std::span<const double> values() const { return values_; }

  /// y = A * x.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Returns entry (row, col), 0 if not stored. O(log nnz(col)).
  double at(int row, int col) const;

  /// Structurally-symmetrised adjacency (pattern of A + A^T, no diagonal),
  /// used by fill-reducing orderings.
  std::vector<std::vector<int>> symmetric_adjacency() const;

 private:
  std::uint64_t compute_pattern_key() const;

  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> col_ptr_;   // size cols+1
  std::vector<int> row_idx_;   // size nnz, sorted within each column
  std::vector<double> values_; // size nnz
  // Lazily-cached pattern fingerprint (valid once nonzero). Not guarded:
  // matrices are per-solver, per-thread objects; sharing happens via the
  // 64-bit key itself, never via the matrix.
  mutable std::uint64_t pattern_key_ = 0;
  mutable bool pattern_key_valid_ = false;
};

/// Dense helpers used by tests and tiny subcircuits (e.g. the tuning loop).
namespace dense {

/// Solves A x = b in-place with partial pivoting; A is row-major n*n.
/// Returns false if A is numerically singular.
bool lu_solve(std::vector<double> a, int n, std::span<const double> b,
              std::span<double> x);

} // namespace dense

double norm_inf(std::span<const double> v);
double norm2(std::span<const double> v);

} // namespace aflow::la

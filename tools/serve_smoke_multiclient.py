#!/usr/bin/env python3
"""Multi-client smoke for `aflow serve --listen` (and, with --tcp, the TCP
transport of the same event-driven front).

Starts one serving process on a Unix socket — or a kernel-assigned TCP port
parsed from the server's "listening on tcp port N" stderr line — then
drives N parallel client threads, each holding its own session and
streaming a mixed request script. Validates, per client:

  - every response line parses as JSON with schema aflow-serve-v1;
  - per-session request ids are 1..M in order and carry the session id;
  - every scripted request succeeds (ok:true);
  - exact solves return the expected flow for the client's topology.

Then probes the session cap (one connection beyond --max-sessions must get
a single ok:false rejection line and EOF), drives one reconfiguration-stream
session through the structured `--edits` form (incremental solves checked
against forced `--scratch` re-solves every revision), sends `shutdown`, and
requires the server process to exit cleanly. Exit code 0 = smoke passed.

Usage: serve_smoke_multiclient.py --aflow PATH [--clients N] [--requests M]
                                  [--tcp]
"""

import argparse
import json
import os
import random
import re
import socket
import subprocess
import sys
import tempfile
import threading
import time

EXPECTED_GRID_FLOW = {4: 90.0, 5: 149.0, 6: 208.0}  # grid:side=S,seed=1


def connect(target):
    """target is ("unix", path) or ("tcp", port); returns a connected socket."""
    kind, value = target
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(30)
        sock.connect(value)
        return sock
    sock = socket.create_connection(("127.0.0.1", value), timeout=30)
    sock.settimeout(30)
    return sock


class Client:
    def __init__(self, target):
        self.sock = connect(target)
        self.file = self.sock.makefile("rw", encoding="utf-8")

    def request(self, line):
        self.file.write(line + "\n")
        self.file.flush()
        raw = self.file.readline()
        if not raw:
            raise RuntimeError(f"server hung up after: {line}")
        return json.loads(raw)

    def close(self):
        self.file.close()
        self.sock.close()


def run_client(target, index, requests, errors):
    try:
        side = 4 + index % 3
        script = [f"load --spec grid:side={side},seed=1"]
        while len(script) < requests:
            i = len(script)
            if i % 4 == 1:
                script.append("solve --solver dinic")
            elif i % 4 == 2:
                script.append(f"reconfigure --seed {index * 17 + i}")
            else:
                script.append("solve --solver analog_dc_warm")
        script.append("session")

        # The cap-holder connections released just before the clients
        # start; the server frees their slots asynchronously, so retry on
        # rejection instead of racing it.
        deadline = time.time() + 20
        while True:
            client = Client(target)
            doc = client.request(script[0])
            if doc["ok"]:
                break
            client.close()
            assert "session limit" in doc["error"], doc
            if time.time() > deadline:
                raise RuntimeError("session slots never freed")
            time.sleep(0.1)
        session_id = None
        reconfigured = False
        for expect_id, line in enumerate(script, start=1):
            if expect_id > 1:
                doc = client.request(line)
            assert doc["schema"] == "aflow-serve-v1", doc
            assert doc["ok"] is True, f"{line} -> {doc}"
            assert doc["id"] == expect_id, f"{line} -> {doc}"
            if session_id is None:
                session_id = doc["session"]
            assert doc["session"] == session_id, f"{line} -> {doc}"
            if line.startswith("reconfigure"):
                reconfigured = True
            if line == "solve --solver dinic":
                if reconfigured:
                    assert doc["flow"] > 0, f"{line} -> {doc}"
                else:
                    assert doc["flow"] == EXPECTED_GRID_FLOW[side], \
                        f"{line} -> {doc}"
        view = client.request("session")
        assert view["requests"] == len(script) + 1, view
        client.request("quit")
        client.close()
    except Exception as exc:  # noqa: BLE001 - smoke collects all failures
        errors.append(f"client {index}: {exc!r}")


def run_reconfigure_stream(target):
    """One session streaming capacity-edit revisions via `--edits`.

    Every revision: apply a small structured edit batch, then check that
    the incremental solve (delta:true) matches a forced from-scratch
    re-solve of the same revision. Also probes the removed
    `--edge/--capacity` alias for its pointer at the structured form.
    """
    client = Client(target)
    doc = client.request("load --spec grid:side=6,seed=2")
    assert doc["ok"] is True, doc
    edges = doc["edges"]

    doc = client.request("solve --solver dinic")
    assert doc["ok"] is True and doc["delta"] is False, doc

    rng = random.Random(42)
    revision = None
    for _ in range(5):
        batch = {e: round(rng.uniform(1.0, 9.0), 2)
                 for e in rng.sample(range(edges), 3)}
        spec = ",".join(f"{e}:{c}" for e, c in batch.items())
        doc = client.request(f"reconfigure --edits {spec}")
        assert doc["ok"] is True, doc
        # edits_applied counts the normalized diff (no-op edits drop out).
        assert 0 <= doc["edits_applied"] <= len(batch), doc
        if revision is not None:
            assert doc["revision"] == revision + 1, doc
        revision = doc["revision"]

        inc = client.request("solve --solver dinic")
        assert inc["ok"] is True and inc["delta"] is True, inc
        ref = client.request("solve --solver dinic --scratch")
        assert ref["ok"] is True and ref["delta"] is False, ref
        scale = max(1.0, abs(ref["flow"]))
        assert abs(inc["flow"] - ref["flow"]) <= 1e-9 * scale, (inc, ref)

    # Sharded decomposition solve of the current revision: exact, so it must
    # reproduce the direct solver's value, with a valid pre-refinement bound.
    doc = client.request("solve --shards 4 --threads 2")
    assert doc["ok"] is True and doc["solver"] == "sharded", doc
    assert abs(doc["flow"] - ref["flow"]) <= 1e-9 * scale, (doc, ref)
    assert doc["shards"]["upper_bound"] >= doc["flow"] - 1e-9, doc
    assert doc["shards"]["regions"] >= 2, doc

    doc = client.request("reconfigure --edge 0 --capacity 4.5")
    assert doc["ok"] is False, doc
    assert "removed" in doc["error"] and "--edits" in doc["error"], doc

    client.request("quit")
    client.close()


def wait_for_tcp_port(server, timeout=15):
    """Reads the server's stderr until the bound-port announcement."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        line = server.stderr.readline()
        if not line:
            raise RuntimeError("server exited before announcing its tcp port")
        match = re.search(r"listening on tcp port (\d+)", line)
        if match:
            return int(match.group(1))
    raise RuntimeError("server never announced its tcp port")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--aflow", required=True)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=6)
    parser.add_argument("--tcp", action="store_true",
                        help="drive the TCP transport instead of the Unix "
                             "socket (port 0, kernel-assigned)")
    args = parser.parse_args()

    sock_path = os.path.join(
        tempfile.mkdtemp(prefix="aflow_smoke_"), "serve.sock")
    listen = (["--tcp", "127.0.0.1:0"] if args.tcp
              else ["--listen", sock_path])
    server = subprocess.Popen(
        [args.aflow, "serve", *listen,
         "--max-sessions", str(args.clients + 1), "--pool-budget-mb", "32"],
        stderr=subprocess.PIPE, text=True)
    try:
        if args.tcp:
            target = ("tcp", wait_for_tcp_port(server))
        else:
            for _ in range(200):
                if os.path.exists(sock_path):
                    break
                if server.poll() is not None:
                    print("server exited early:", server.stderr.read())
                    return 1
                time.sleep(0.05)
            else:
                print("server socket never appeared")
                return 1
            target = ("unix", sock_path)

        errors = []
        threads = [
            threading.Thread(target=run_client,
                             args=(target, k, args.requests, errors))
            for k in range(args.clients)
        ]

        # Hold max_sessions slots open so the cap rejection is observable.
        holders = [Client(target) for _ in range(args.clients + 1)]
        over = connect(target)
        reject = over.makefile("r", encoding="utf-8").readline()
        doc = json.loads(reject)
        assert doc["ok"] is False and "session limit" in doc["error"], doc
        over.close()
        for holder in holders:
            holder.close()

        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            print("\n".join(errors))
            return 1

        run_reconfigure_stream(target)

        Client(target).request("shutdown")
        server.wait(timeout=30)
        if server.returncode != 0:
            print(f"server exited with {server.returncode}")
            return 1
        transport = "tcp" if args.tcp else "unix-socket"
        print(f"multi-client serve smoke ({transport}): {args.clients} "
              f"concurrent sessions x {args.requests}+ requests OK, cap "
              "rejection OK, reconfigure stream (delta vs scratch) OK, "
              "clean shutdown")
        return 0
    finally:
        if server.poll() is None:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())

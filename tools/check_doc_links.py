#!/usr/bin/env python3
"""Intra-repo documentation link and citation checker (CI gate).

Two classes of reference are validated, and the script exits nonzero with a
per-failure report if any dangles:

1. Markdown links. Every ``[text](target)`` in a tracked ``*.md`` file whose
   target is not an external URL must resolve to an existing file (relative
   to the linking file), and a ``#anchor`` suffix must match a heading of
   the target (GitHub slug rules: lowercase, alphanumerics and hyphens,
   spaces to hyphens).

2. Doc citations in code. Comments and strings under ``src/``, ``tests/``,
   ``bench/``, and ``tools/`` may cite the design docs; every mention of
   DESIGN.md or EXPERIMENTS.md must carry a quoted section title —
   ``DESIGN.md "Fidelity ladder"`` — and both the file and a matching
   ``##``/``#`` heading must exist. Citations may wrap across comment lines
   and live inside C string literals (``\\"`` and ``%%`` are normalised
   before matching).

Stdlib only; run from anywhere inside the repo.
"""
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CODE_DIRS = ["src", "tests", "bench", "tools"]
CODE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".py"}
SKIP_DIRS = {".git", "build", ".claude"}
CITED_DOCS = ("DESIGN.md", "EXPERIMENTS.md")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CITATION = re.compile(
    r"\b(DESIGN\.md|EXPERIMENTS\.md)\b(\s*\"([^\"]{1,120})\")?")


def md_files():
    for path in sorted(REPO.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            yield path


def code_files():
    for d in CODE_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            # The checker itself holds the citation patterns as data.
            if path.suffix in CODE_SUFFIXES and path.name != "check_doc_links.py":
                yield path


def github_slug(heading):
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return re.sub(r" ", "-", slug)


def headings_of(md_path):
    titles, slugs = [], set()
    for line in md_path.read_text(encoding="utf-8").splitlines():
        m = re.match(r"#{1,6}\s+(.*)", line)
        if m:
            titles.append(m.group(1).strip())
            slugs.add(github_slug(m.group(1)))
    return titles, slugs


def normalise_code(text):
    """Joins wrapped comment/string lines so a citation can be matched as
    one run of text: C string-literal breaks ("..." "..."), comment
    continuations, printf %% and \\" escapes."""
    text = text.replace('\\"', '"').replace("%%", "%")
    # "abc"  "def" adjacent string literals -> abc def
    text = re.sub(r'"\s*\n\s*"', " ", text)
    # newline + comment leader -> single space
    text = re.sub(r"\s*\n\s*(?:///?|\*+(?!/)|#)?\s*", " ", text)
    # string-literal joins can double interior spaces
    return re.sub(r"  +", " ", text)


def main():
    failures = []

    for md in md_files():
        rel = md.relative_to(REPO)
        text = md.read_text(encoding="utf-8")
        for m in MD_LINK.finditer(text):
            target = m.group(1)
            if re.match(r"[a-z]+://|mailto:", target):
                continue
            path_part, _, anchor = target.partition("#")
            dest = md if not path_part else (md.parent / path_part).resolve()
            if not dest.exists():
                failures.append(f"{rel}: dangling link ({target})")
                continue
            if anchor and dest.suffix == ".md":
                _, slugs = headings_of(dest)
                if anchor not in slugs:
                    failures.append(
                        f"{rel}: link anchor #{anchor} not a heading of "
                        f"{dest.relative_to(REPO)}")
        # Sectioned citations inside the docs themselves are validated too.
        for m in CITATION.finditer(normalise_code(text)):
            if m.group(3):
                check_citation(rel, m, failures)

    for src in code_files():
        rel = src.relative_to(REPO)
        text = normalise_code(src.read_text(encoding="utf-8"))
        for m in CITATION.finditer(text):
            if not m.group(3):
                context = text[max(0, m.start() - 40):m.end() + 40]
                failures.append(
                    f"{rel}: citation of {m.group(1)} without a quoted "
                    f'section title (cite as: {m.group(1)} "Section") '
                    f"near: ...{context}...")
                continue
            check_citation(rel, m, failures)

    if failures:
        print(f"check_doc_links: {len(failures)} dangling reference(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("check_doc_links: all markdown links and doc citations resolve.")
    return 0


def check_citation(rel, match, failures):
    doc, section = match.group(1), match.group(3)
    doc_path = REPO / doc
    if not doc_path.exists():
        failures.append(f"{rel}: citation of missing file {doc}")
        return
    titles, _ = headings_of(doc_path)
    if section not in titles:
        failures.append(
            f'{rel}: {doc} has no section "{section}" '
            f"(sections: {', '.join(titles)})")


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Chaos smoke for `aflow serve --listen --faults ...` (with --tcp, the
same phases run over the TCP transport and its buffered write path).

Drives a serving process armed with a deterministic fault schedule through
the full degradation story and requires that, under injected solver faults,
deadline overruns, a mid-solve client disconnect, and a transport fault:

  - the server process survives every phase and still exits cleanly;
  - every failure is a machine-readable JSON error carrying error_info
    with the expected code and retryable flag;
  - a request that draws no fault returns the bit-correct flow value, even
    when an earlier request on the same session failed;
  - a deadline-bounded request errors out in bounded wall time instead of
    riding out a 10 s injected stall;
  - abandoning a connection mid-solve cancels the in-flight work (proved by
    the server shutting down promptly afterwards instead of sleeping out a
    30 s injected stall);
  - a short-write transport fault kills only that connection: the client
    sees a truncated line + EOF, never a parseable half-response.

The schedule below is arrival-exact: FaultInjector rules keep independent
per-rule arrival counters, and a rule that throws stops later rules from
seeing that arrival. The trace is documented inline at each phase.

Usage: serve_chaos.py --aflow PATH [--tcp]
"""

import argparse
import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import time

EXPECTED_GRID_FLOW = {4: 90.0, 5: 149.0}  # grid:side=S,seed=1

# batch.solve arrivals (sequential requests, one in flight at a time):
#   S1: rule 1 throws -> structured fault_injected error (rules 2-3 do not
#       see this arrival; the throw precedes their counters).
#   S2: no rule fires -> clean solve.
#   S3: rule 2 (after=1) stalls 10 s -> the 500 ms deadline trips it.
#   S4: no rule fires -> clean solve on the same session as S3.
#   S5: rule 3 (after=2) stalls 30 s -> client disconnects mid-solve; the
#       hangup sweep must cancel the stall.
#   S6: all rules spent -> clean solve, bit-correct.
SCHEDULE = ("batch.solve:throw"
            ";batch.solve:delay:10000:after=1"
            ";batch.solve:delay:30000:after=2")


class Client:
    def __init__(self, target):
        kind, value = target
        if kind == "unix":
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.settimeout(30)
            self.sock.connect(value)
        else:
            self.sock = socket.create_connection(("127.0.0.1", value),
                                                 timeout=30)
            self.sock.settimeout(30)
        self.file = self.sock.makefile("rw", encoding="utf-8")

    def request(self, line):
        self.file.write(line + "\n")
        self.file.flush()
        raw = self.file.readline()
        if not raw:
            raise RuntimeError(f"server hung up after: {line}")
        if not raw.endswith("\n"):
            raise RuntimeError(f"truncated response line after: {line}")
        return json.loads(raw)

    def send_only(self, line):
        self.file.write(line + "\n")
        self.file.flush()

    def close(self):
        self.file.close()
        self.sock.close()


def start_server(aflow, sock_path, faults, tcp=False):
    """Returns (server, target) where target is ("unix", path)/("tcp", port)."""
    listen = ["--tcp", "127.0.0.1:0"] if tcp else ["--listen", sock_path]
    server = subprocess.Popen(
        [aflow, "serve", *listen, "--faults", faults],
        stderr=subprocess.PIPE, text=True)
    if tcp:
        deadline = time.time() + 15
        while time.time() < deadline:
            line = server.stderr.readline()
            if not line:
                raise RuntimeError("server exited before announcing its port")
            match = re.search(r"listening on tcp port (\d+)", line)
            if match:
                return server, ("tcp", int(match.group(1)))
        raise RuntimeError("server never announced its tcp port")
    for _ in range(200):
        if os.path.exists(sock_path):
            return server, ("unix", sock_path)
        if server.poll() is not None:
            raise RuntimeError(f"server exited early: {server.stderr.read()}")
        time.sleep(0.05)
    raise RuntimeError("server socket never appeared")


def expect_error(doc, code, retryable):
    assert doc["ok"] is False, doc
    info = doc["error_info"]
    assert info["code"] == code, doc
    assert info["retryable"] is retryable, doc
    assert info["message"], doc


def run_fault_phases(aflow, sock_path, tcp):
    server, target = start_server(aflow, sock_path, SCHEDULE, tcp)
    try:
        # Phase 1: injected solver fault is a structured, transient error —
        # the same session recovers with the bit-correct flow on retry.
        a = Client(target)
        assert a.request("load --spec grid:side=4,seed=1")["ok"], "load A"
        expect_error(a.request("solve --solver dinic"),           # S1
                     code="fault_injected", retryable=True)
        doc = a.request("solve --solver dinic")                   # S2
        assert doc["ok"] and doc["flow"] == EXPECTED_GRID_FLOW[4], doc
        a.request("quit")
        a.close()

        # Phase 2: a 10 s injected stall against a 500 ms deadline must
        # yield deadline_exceeded in bounded time, and the session stays
        # usable afterwards.
        b = Client(target)
        assert b.request("load --spec grid:side=4,seed=1")["ok"], "load B"
        t0 = time.time()
        expect_error(b.request("solve --solver dinic --deadline-ms 500"),
                     code="deadline_exceeded", retryable=True)    # S3
        elapsed = time.time() - t0
        assert elapsed < 3.0, f"deadline not enforced: {elapsed:.1f}s"
        doc = b.request("solve --solver dinic")                   # S4
        assert doc["ok"] and doc["flow"] == EXPECTED_GRID_FLOW[4], doc
        b.request("quit")
        b.close()

        # Phase 3: disconnect mid-solve while a 30 s stall is injected.
        # The hangup sweep must cancel the abandoned work — verified below
        # by the server shutting down long before the stall would end.
        c = Client(target)
        assert c.request("load --spec grid:side=5,seed=1")["ok"], "load C"
        c.send_only("solve --solver dinic")                       # S5
        time.sleep(0.5)  # let the solve reach the injected stall
        c.close()        # abandon it
        time.sleep(0.5)  # let the sweep observe the hangup

        # Phase 4: an unaffected session is bit-correct after all that.
        d = Client(target)
        assert d.request("load --spec grid:side=5,seed=1")["ok"], "load D"
        doc = d.request("solve --solver dinic")                   # S6
        assert doc["ok"] and doc["flow"] == EXPECTED_GRID_FLOW[5], doc
        d.request("quit")
        d.close()

        t0 = time.time()
        Client(target).request("shutdown")
        server.wait(timeout=15)
        shutdown_s = time.time() - t0
        assert server.returncode == 0, f"server exited {server.returncode}"
        assert shutdown_s < 10.0, \
            f"shutdown took {shutdown_s:.1f}s: abandoned solve not cancelled"
    finally:
        if server.poll() is None:
            server.kill()


def run_short_write_phase(aflow, sock_path, tcp):
    """Transport fault: the response is cut mid-line and the connection
    dies. The client must see a truncated line (no newline) then EOF —
    never a parseable half-response — and the server must keep serving.
    With --tcp this exercises the front's buffered TCP write path."""
    server, target = start_server(aflow, sock_path, "serve.write:short", tcp)
    try:
        victim = Client(target)
        victim.send_only("load --spec grid:side=4,seed=1")
        raw = victim.file.readline()
        assert raw and not raw.endswith("\n"), f"expected short line: {raw!r}"
        assert victim.file.readline() == "", "expected EOF after short write"
        victim.close()

        fine = Client(target)
        assert fine.request("load --spec grid:side=4,seed=1")["ok"], "load"
        doc = fine.request("solve --solver dinic")
        assert doc["ok"] and doc["flow"] == EXPECTED_GRID_FLOW[4], doc
        fine.request("shutdown")
        fine.close()
        server.wait(timeout=15)
        assert server.returncode == 0, f"server exited {server.returncode}"
    finally:
        if server.poll() is None:
            server.kill()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--aflow", required=True)
    parser.add_argument("--tcp", action="store_true",
                        help="run every phase over the TCP transport")
    args = parser.parse_args()

    root = tempfile.mkdtemp(prefix="aflow_chaos_")
    run_fault_phases(args.aflow, os.path.join(root, "chaos.sock"), args.tcp)
    run_short_write_phase(args.aflow, os.path.join(root, "short.sock"),
                          args.tcp)
    transport = "tcp" if args.tcp else "unix-socket"
    print(f"serve chaos smoke ({transport}): injected fault -> structured "
          "retryable error, deadline bounded, mid-solve disconnect "
          "cancelled, short write isolated, clean shutdowns")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// aflow — command-line front end for the solver engine.
//
//   aflow solvers
//   aflow solve --solver dinic --input x.dimacs [--check] [--expect-flow V]
//   aflow solve --shards K --input huge.dimacs [--region-solver NAME]
//               [--threads N] [--seed S] [--check]
//   aflow gen --spec "gridflow:height=1000,width=1000,cap=64,seed=3"
//             --output huge.dimacs
//   aflow bench --solver push_relabel --batch "grid:side=31,count=64,seed=1"
//               [--threads N] [--deterministic] [--check] [--per-instance]
//               [--json FILE]
//
// `solve --shards K` is the huge-instance path (DESIGN.md "Sharded solve"):
// the input streams from disk into a compact CSR view — the full
// FlowNetwork adjacency structure is never materialised — then k-way region
// decomposition, parallel region solves, and an exact refinement pass.
// `gen` writes a generator spec as a DIMACS file; the gridflow kind streams
// in O(1) memory, so generating a million-node instance costs no RAM.
//
//   aflow serve [--solver NAME] [--threads N] [--deterministic]
//               [--pool-budget-mb M] [--listen PATH] [--tcp HOST:PORT]
//               [--max-sessions N] [--max-line-bytes B] [--io-threads N]
//               [--front-workers N] [--max-pipeline N] [--deadline-ms N]
//               [--fallback NAME] [--faults SCHEDULE]
//
// `--deadline-ms` sets the default per-request deadline every session
// inherits (0 = none); `--fallback` names the digital backend retryable
// analog failures degrade to (empty disables the rung). `--faults` (or the
// AFLOW_FAULTS environment variable) arms the deterministic fault-injection
// schedule documented in src/util/fault_injector.hpp — the chaos battery's
// entry point into a release binary.
//
// `--batch` accepts a DIMACS file, a directory of *.dimacs / *.max files, or
// a generator spec (see src/core/workload.hpp for the grammar). `--json`
// writes a machine-readable report (schema aflow-bench-v1: solver, instance
// shapes, wall ms, iteration counts, refactor/warm shares) for perf-trend
// tracking in CI. `serve` starts the long-running serving mode: newline-
// delimited requests on stdin (one session), or — with `--listen PATH`
// (alias `--socket`) and/or `--tcp HOST:PORT` (port 0 = kernel-assigned;
// the bound port is printed on stderr) — an event-driven front accepting up
// to `--max-sessions` concurrent client sessions over shared solver banks;
// one aflow-serve-v1 JSON response per line either way. `--io-threads`,
// `--front-workers`, and `--max-pipeline` size the front's I/O plane,
// worker pool, and per-session pipelining limit (see
// core/serve_front.hpp). Both schemas are documented in
// docs/BENCH_FORMAT.md.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/registry.hpp"
#include "core/serve_engine.hpp"
#include "core/sharded_solver.hpp"
#include "core/serve_front.hpp"
#include "core/workload.hpp"
#include "graph/dimacs.hpp"
#include "util/args.hpp"
#include "util/fault_injector.hpp"
#include "util/json.hpp"

namespace {

using namespace aflow;
using util::arg_flag;
using util::arg_int;
using util::arg_string;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  aflow solvers\n"
      "  aflow solve --solver NAME --input FILE.dimacs [--check] "
      "[--expect-flow V]\n"
      "  aflow solve --shards K --input FILE.dimacs [--region-solver NAME]\n"
      "              [--threads N] [--seed S] [--check] [--expect-flow V]\n"
      "  aflow gen --spec GENSPEC --output FILE.dimacs\n"
      "  aflow bench --solver NAME --batch SPEC_OR_PATH [--threads N]\n"
      "              [--deterministic] [--check] [--per-instance] "
      "[--json FILE]\n"
      "  aflow serve [--solver NAME] [--threads N] [--deterministic]\n"
      "              [--pool-budget-mb M] [--listen PATH] [--tcp HOST:PORT]\n"
      "              [--max-sessions N] [--max-line-bytes B] "
      "[--io-threads N]\n"
      "              [--front-workers N] [--max-pipeline N] "
      "[--deadline-ms N]\n"
      "              [--fallback NAME] [--faults SCHEDULE]\n");
  return 2;
}

/// Machine-readable batch report (schema aflow-bench-v1), shared shape with
/// the gated benches so one consumer can track the whole perf trajectory.
void write_bench_json(const std::string& path, const std::string& batch,
                      const core::BatchOptions& options,
                      const std::vector<aflow::graph::FlowNetwork>& instances,
                      const core::BatchReport& report) {
  util::JsonWriter j;
  j.begin_object();
  j.field("schema", "aflow-bench-v1");
  j.field("bench", "aflow_cli");
  j.field("solver", options.solver);
  j.field("batch", batch);
  j.field("threads", report.threads_used);
  j.field("deterministic", options.deterministic);
  j.field("instances", report.outcomes.size());
  j.field("failed", report.failed);
  j.field("total_flow", report.total_flow);
  j.field("wall_ms", report.wall_seconds * 1e3);

  const flow::SolveMetrics& m = report.metrics;
  const double factors =
      static_cast<double>(m.full_factors + m.refactors);
  const double iters =
      static_cast<double>(m.warm_iterations + m.cold_iterations);
  j.key("metrics").begin_object();
  j.field("iterations", m.iterations);
  j.field("full_factors", m.full_factors);
  j.field("refactors", m.refactors);
  j.field("prototype_refactors", m.prototype_refactors);
  j.field("refactor_share",
          factors > 0.0 ? static_cast<double>(m.refactors) / factors : 0.0);
  j.field("rhs_refreshes", m.rhs_refreshes);
  j.field("warm_iterations", m.warm_iterations);
  j.field("cold_iterations", m.cold_iterations);
  j.field("warm_share",
          iters > 0.0 ? static_cast<double>(m.warm_iterations) / iters : 0.0);
  j.field("warm_started_instances", report.warm_started_instances);
  j.field("pool_hits", m.pool_hits);
  j.field("pool_misses", m.pool_misses);
  j.field("pool_evictions", m.pool_evictions);
  j.field("delta_solves", m.delta_solves);
  j.field("delta_fallbacks", m.delta_fallbacks);
  j.field("edges_touched", m.edges_touched);
  j.field("fallback_analog_digital", m.fallback_analog_digital);
  j.field("fallback_region_retries", m.fallback_region_retries);
  j.field("fallback_region_direct", m.fallback_region_direct);
  j.field("fallback_pool_rebuilds", m.fallback_pool_rebuilds);
  j.end_object();

  j.key("per_instance").begin_array();
  for (const core::InstanceOutcome& out : report.outcomes) {
    j.begin_object();
    j.field("index", out.index);
    j.field("ok", out.ok);
    if (out.index >= 0 && out.index < static_cast<int>(instances.size())) {
      j.field("vertices", instances[out.index].num_vertices());
      j.field("edges", instances[out.index].num_edges());
    }
    if (out.ok) {
      j.field("flow", out.result.flow_value);
      j.field("iterations", out.result.metrics.iterations);
      j.field("warm_started", out.result.metrics.warm_started);
    } else {
      j.field("error", out.error);
      core::write_error_info(j, out.error_info);
    }
    j.field("ms", out.seconds * 1e3);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  util::write_json_file(path, j.str());
}

int cmd_solvers() {
  for (const std::string& name : core::SolverRegistry::instance().names()) {
    const auto solver = core::SolverRegistry::instance().create(name);
    const auto caps = solver->capabilities();
    std::printf("%-18s %s%s\n", name.c_str(),
                caps.exact ? "exact" : "approximate",
                caps.analog ? ", analog substrate model" : "");
  }
  return 0;
}

/// `solve --shards K`: stream the instance from disk into the compact CSR
/// view and run the sharded decomposition solver on it. The in-memory
/// FlowNetwork path is never touched, which is the whole point — a
/// million-node instance fits where the per-vertex adjacency vectors don't.
int cmd_solve_sharded(int argc, char** argv, const std::string& input,
                      int shards) {
  core::ShardOptions options;
  options.shards = shards;
  options.region_solver =
      arg_string(argc, argv, "--region-solver", options.region_solver);
  options.num_threads = arg_int(argc, argv, "--threads", 0);
  options.seed = static_cast<std::uint64_t>(arg_int(argc, argv, "--seed", 1));

  const graph::CsrGraph g = graph::read_dimacs_stream_file(input);
  const core::ShardedSolver solver(options);
  core::ShardReport rep;
  const flow::MaxFlowResult result = solver.solve_csr(g, &rep);

  std::printf("instance:  %s (%d vertices, %lld edges)\n", input.c_str(),
              g.num_vertices(), static_cast<long long>(g.num_edges()));
  std::printf("solver:    sharded (%d regions, region solver %s, %d threads)\n",
              rep.regions, options.region_solver.c_str(), rep.threads_used);
  std::printf("cut arcs:  %lld (capacity %.10g)\n",
              static_cast<long long>(rep.cut_arcs), rep.cut_capacity);
  std::printf("bound:     %.10g (pre-refinement upper bound)\n",
              rep.upper_bound);
  std::printf("stitched:  %.10g  refined: +%.10g\n", rep.stitched_value,
              rep.refined_added);
  std::printf("flow:      %.10g\n", result.flow_value);
  std::printf("ops:       %lld\n", result.operations);
  std::printf("stages:    partition %.3f ms, regions %.3f ms, stitch %.3f ms, "
              "refine %.3f ms\n",
              rep.partition_seconds * 1e3, rep.region_seconds * 1e3,
              rep.stitch_seconds * 1e3, rep.refine_seconds * 1e3);

  if (arg_flag(argc, argv, "--check")) {
    const std::string err =
        graph::check_csr_flow(g, result.edge_flow, result.flow_value);
    if (!err.empty()) {
      std::fprintf(stderr, "FAIL: %s\n", err.c_str());
      return 1;
    }
    std::printf("check:     feasible\n");
  }

  const std::string expect = arg_string(argc, argv, "--expect-flow", "");
  if (!expect.empty()) {
    const double want = std::stod(expect);
    if (std::abs(result.flow_value - want) > 1e-6 * std::max(1.0, want)) {
      std::fprintf(stderr, "FAIL: expected flow %.10g, got %.10g\n", want,
                   result.flow_value);
      return 1;
    }
  }
  return 0;
}

int cmd_solve(int argc, char** argv) {
  const std::string input = arg_string(argc, argv, "--input", "");
  if (input.empty()) return usage();

  const int shards = arg_int(argc, argv, "--shards", 0);
  if (shards >= 2) return cmd_solve_sharded(argc, argv, input, shards);

  const std::string solver_name = arg_string(argc, argv, "--solver", "dinic");

  const graph::FlowNetwork net = graph::read_dimacs_file(input);
  const auto solver = core::SolverRegistry::instance().create(solver_name);
  const flow::MaxFlowResult result = solver->solve(net);

  std::printf("instance: %s (%d vertices, %d edges)\n", input.c_str(),
              net.num_vertices(), net.num_edges());
  std::printf("solver:   %s\n", solver->name().c_str());
  std::printf("flow:     %.10g\n", result.flow_value);
  std::printf("ops:      %lld\n", result.operations);

  if (arg_flag(argc, argv, "--check")) {
    const std::string err = flow::check_flow(net, result);
    if (!err.empty()) {
      std::fprintf(stderr, "FAIL: %s\n", err.c_str());
      return 1;
    }
    std::printf("check:    feasible\n");
  }

  const std::string expect = arg_string(argc, argv, "--expect-flow", "");
  if (!expect.empty()) {
    const double want = std::stod(expect);
    if (std::abs(result.flow_value - want) > 1e-6 * std::max(1.0, want)) {
      std::fprintf(stderr, "FAIL: expected flow %.10g, got %.10g\n", want,
                   result.flow_value);
      return 1;
    }
  }
  return 0;
}

int cmd_gen(int argc, char** argv) {
  const std::string spec = arg_string(argc, argv, "--spec", "");
  const std::string output = arg_string(argc, argv, "--output", "");
  if (spec.empty() || output.empty()) return usage();
  core::write_spec_dimacs(spec, output);
  std::printf("wrote %s (%s)\n", output.c_str(), spec.c_str());
  return 0;
}

int cmd_bench(int argc, char** argv) {
  const std::string batch = arg_string(argc, argv, "--batch", "");
  if (batch.empty()) return usage();

  core::BatchOptions options;
  options.solver = arg_string(argc, argv, "--solver", "dinic");
  options.num_threads = arg_int(argc, argv, "--threads", 0);
  options.deterministic = arg_flag(argc, argv, "--deterministic");
  options.validate = arg_flag(argc, argv, "--check");

  const auto instances = core::load_batch(batch);
  const core::BatchReport report = core::BatchEngine(options).run(instances);

  if (arg_flag(argc, argv, "--per-instance")) {
    for (const core::InstanceOutcome& out : report.outcomes) {
      if (out.ok)
        std::printf("[%4d] flow %.10g  (%.3f ms)\n", out.index,
                    out.result.flow_value, out.seconds * 1e3);
      else
        std::printf("[%4d] FAILED: %s\n", out.index, out.error.c_str());
    }
  }

  double solve_seconds = 0.0;
  for (const core::InstanceOutcome& out : report.outcomes)
    solve_seconds += out.seconds;
  std::printf("batch:      %s\n", batch.c_str());
  std::printf("solver:     %s\n", options.solver.c_str());
  std::printf("instances:  %zu (%d failed)\n", report.outcomes.size(),
              report.failed);
  std::printf("threads:    %d\n", report.threads_used);
  std::printf("total flow: %.10g\n", report.total_flow);
  std::printf("wall:       %.3f ms  (sum of per-instance solves: %.3f ms)\n",
              report.wall_seconds * 1e3, solve_seconds * 1e3);
  if (report.wall_seconds > 0.0)
    std::printf("throughput: %.1f instances/s\n",
                static_cast<double>(report.outcomes.size()) /
                    report.wall_seconds);
  if (report.metrics.warm_iterations + report.metrics.cold_iterations > 0)
    std::printf("warm-start: %d/%zu instances, %lld warm / %lld cold "
                "iterations\n",
                report.warm_started_instances, report.outcomes.size(),
                report.metrics.warm_iterations, report.metrics.cold_iterations);

  const std::string json_path = arg_string(argc, argv, "--json", "");
  if (!json_path.empty()) {
    write_bench_json(json_path, batch, options, instances, report);
    std::printf("json:       %s\n", json_path.c_str());
  }
  return report.failed == 0 ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  core::ServeOptions options;
  options.default_solver =
      arg_string(argc, argv, "--solver", options.default_solver);
  options.num_threads = arg_int(argc, argv, "--threads", 0);
  options.deterministic = arg_flag(argc, argv, "--deterministic");
  options.max_sessions =
      arg_int(argc, argv, "--max-sessions", options.max_sessions);
  const double budget_mb = util::arg_double(argc, argv, "--pool-budget-mb", 64.0);
  options.pool_byte_budget =
      budget_mb <= 0.0 ? 0 : static_cast<size_t>(budget_mb * (1 << 20));
  options.default_deadline_ms = arg_int(argc, argv, "--deadline-ms", 0);
  options.fallback_solver =
      arg_string(argc, argv, "--fallback", options.fallback_solver);

  // Chaos hook: arm the deterministic fault schedule before any worker
  // exists (FaultInjector::arm is not safe against concurrent fire()).
  // The flag wins over the environment variable.
  std::string faults = arg_string(argc, argv, "--faults", "");
  if (faults.empty())
    if (const char* env = std::getenv("AFLOW_FAULTS")) faults = env;
  if (!faults.empty()) {
    util::FaultInjector::instance().arm(faults);
    std::fprintf(stderr, "aflow serve: fault schedule armed: %s\n",
                 faults.c_str());
  }

  core::ServeEngine engine(options);

  // `--listen` is the multi-session socket front; `--socket` kept as the
  // PR-4 spelling of the same thing. `--tcp HOST:PORT` adds (or is) the
  // network transport — both listeners may run at once, sharing the one
  // event-driven front.
  const std::string socket_path = arg_string(
      argc, argv, "--listen", arg_string(argc, argv, "--socket", ""));
  const std::string tcp_address = arg_string(argc, argv, "--tcp", "");
  if (!socket_path.empty() || !tcp_address.empty()) {
#ifndef _WIN32
    core::ServeFrontOptions front_options;
    front_options.socket_path = socket_path;
    front_options.tcp_address = tcp_address;
    const int max_line = arg_int(argc, argv, "--max-line-bytes", 0);
    if (max_line > 0)
      front_options.max_line_bytes = static_cast<size_t>(max_line);
    front_options.io_threads =
        arg_int(argc, argv, "--io-threads", front_options.io_threads);
    front_options.workers =
        arg_int(argc, argv, "--front-workers", front_options.workers);
    front_options.max_pipeline =
        arg_int(argc, argv, "--max-pipeline", front_options.max_pipeline);
    core::ServeFront front(engine, front_options);
    front.start();
    if (!socket_path.empty())
      std::fprintf(stderr,
                   "aflow serve: listening on %s (up to %d concurrent "
                   "sessions; send 'shutdown' to stop)\n",
                   socket_path.c_str(), options.max_sessions);
    if (!tcp_address.empty())
      // The resolved port matters: with `--tcp HOST:0` the kernel picks
      // it, and harnesses read it off this line.
      std::fprintf(stderr,
                   "aflow serve: listening on tcp port %u (up to %d "
                   "concurrent sessions; send 'shutdown' to stop)\n",
                   static_cast<unsigned>(front.tcp_port()),
                   options.max_sessions);
    front.run();
    return 0;
#else
    std::fprintf(stderr,
                 "error: --listen/--tcp is not supported on this platform\n");
    return 1;
#endif
  }

  // stdin mode: one session, ended by quit/shutdown or EOF.
  std::string line;
  while (!engine.done() && std::getline(std::cin, line)) {
    const std::string response = engine.handle(line);
    if (response.empty()) continue;
    std::printf("%s\n", response.c_str());
    std::fflush(stdout);
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "solvers") return cmd_solvers();
    if (cmd == "solve") return cmd_solve(argc, argv);
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "bench") return cmd_bench(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

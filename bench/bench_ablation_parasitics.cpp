// Ablation (Sec. 5.1): settling time vs parasitic capacitance per net and
// vs op-amp gain-bandwidth product — the two knobs behind the Fig. 10
// convergence-time claims.
#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace aflow;
  bench::banner("Ablation — settling time vs parasitics and GBW");

  // Bounded-transient instance (see EXPERIMENTS.md
  // "Marginal stability on generated workloads").
  const auto g = graph::layered_random(4, 2, 2, 8, 5);
  auto tconv = [&](double cap, double gbw) -> double {
    analog::AnalogSolveOptions opt;
    opt.config.fidelity = analog::NegResFidelity::kOpAmpNic;
    opt.config.parasitics_on_internal_nodes = true;
    opt.config.nic_anti_latch = false;
    opt.config.parasitic_capacitance = cap;
    opt.config.opamp_gbw = gbw;
    opt.config.vflow = 10.0;
    opt.method = analog::SolveMethod::kTransient;
    try {
      return analog::AnalogMaxFlowSolver(opt).solve(g).convergence_time;
    } catch (const std::exception&) {
      return -1.0;
    }
  };

  std::printf("instance: %d vertices / %d edges\n\n", g.num_vertices(),
              g.num_edges());
  std::printf("settling time vs parasitic capacitance (GBW = 10 GHz):\n");
  std::printf("%12s %14s\n", "C/net (fF)", "t_settle (s)");
  for (double c : {5e-15, 10e-15, 20e-15, 40e-15, 80e-15}) {
    const double t = tconv(c, 10e9);
    if (t >= 0.0) std::printf("%12.0f %14.3e\n", c * 1e15, t);
    else std::printf("%12.0f %14s\n", c * 1e15, "(diverged)");
  }

  std::printf("\nsettling time vs GBW (C = 20 fF/net):\n");
  std::printf("%12s %14s\n", "GBW (GHz)", "t_settle (s)");
  for (double gbw : {5e9, 10e9, 20e9, 50e9}) {
    const double t = tconv(20e-15, gbw);
    if (t >= 0.0) std::printf("%12.0f %14.3e\n", gbw / 1e9, t);
    else std::printf("%12.0f %14s\n", gbw / 1e9, "(diverged)");
  }
  bench::rule();
  std::printf("paper claims ~10x speedup from 10G -> 50G GBW; the model "
              "yields the GBW-proportional\ncomponent plus the "
              "parasitic-RC floor.\n");
  return 0;
}

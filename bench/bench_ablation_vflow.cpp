// Ablation (Sec. 2.3 / 6.5): relative error vs the objective drive Vflow.
// Table 1 sets Vflow = 3 V with Vdd = 1 V; the flow value only reaches the
// optimum once every min-cut edge saturates, which needs enough drive to
// overcome the divider attenuation of the constraint network. This sweep
// exposes the paper's most under-specified operating condition.
#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace aflow;
  bench::banner("Ablation — error vs objective drive Vflow (Vdd = 1 V)");

  const int seeds = bench::arg_int(argc, argv, "--seeds", 4);
  std::printf("%10s %14s %14s   (negative = undershoot: cut not saturated)\n",
              "Vflow (V)", "avg err", "worst err");
  bench::rule();
  for (double vflow : {1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 35.0, 50.0}) {
    double sum = 0.0;
    double worst = 0.0;
    for (int seed = 1; seed <= seeds; ++seed) {
      const auto g = graph::rmat(48, 220, {}, seed);
      const double exact = core::solve("push_relabel", g).flow_value;
      analog::AnalogSolveOptions opt;
      opt.config.fidelity = analog::NegResFidelity::kIdeal;
      opt.config.parasitic_capacitance = 0.0;
      opt.config.vflow = vflow;
      opt.quantization = analog::QuantizationMode::kRound;
      const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);
      const double err = (r.flow_value - exact) / exact;
      sum += err;
      if (std::abs(err) > std::abs(worst)) worst = err;
    }
    std::printf("%10.0f %13.2f%% %13.2f%%\n", vflow, 100.0 * sum / seeds,
                100.0 * worst);
  }
  bench::rule();
  std::printf("at the paper's Vflow = 3 V the substrate underestimates "
              "shallow instances noticeably;\nthe Fig. 10 benches therefore "
              "run at Vflow = 10 V (documented divergence from Table 1).\n");
  return 0;
}

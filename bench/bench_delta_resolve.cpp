// Incremental re-solve gate (flow/delta.hpp), on the paper's
// reconfiguration scenario: one topology, a stream of small capacity edits.
//
// For each incremental backend (dinic_delta, push_relabel_delta) the bench
// builds a deterministic edit stream — `--steps` revisions of one grid
// instance, each touching ~`--edit-frac` of the edges (default 1%) with
// bounded capacity scalings — and runs it twice:
//
//   scratch:     every revision solved cold by the backend's plain solver;
//   incremental: revision k solved by solve-delta carrying revision k-1's
//                result across the CapacityDelta.
//
// Asserts
//   (a) per-revision flow values agree to 1e-9 (and the min-cut value of
//       the incremental flow matches, by flow/min-cut duality checked in
//       the test battery; here value identity is the gate),
//   (b) the delta path engages on every step (delta_solves == steps,
//       delta_fallbacks == 0),
//   (c) wall-clock speedup incremental vs scratch >= --min-speedup
//       (default 3x) over the whole stream, scaled per backend (dinic
//       carries the full gate; push-relabel's slack-bounded warm restart
//       runs at 0.9x of it — both backends sit at the shared carry-cost
//       ceiling, see DESIGN.md "Incremental re-solve: the delta path").
//
//   bench_delta_resolve [--spec grid:side=31,seed=7] [--steps 64]
//                       [--edit-frac 0.01] [--edit-mag 0.15] [--reps 3]
//                       [--min-speedup 3.0] [--smoke] [--json FILE]
//
// --smoke shrinks the workload and drops the wall-clock gate (CI machines
// are too noisy for timing assertions) while keeping the value-identity and
// engagement assertions.
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/workload.hpp"
#include "flow/delta.hpp"
#include "util/json.hpp"

using namespace aflow;

namespace {

struct Backend {
  const char* name;
  flow::MaxFlowResult (*solve)(const graph::FlowNetwork&,
                               const util::CancelToken&);
  flow::MaxFlowResult (*solve_delta)(const graph::FlowNetwork&,
                                     const flow::CapacityDelta&,
                                     const flow::MaxFlowResult&,
                                     const util::CancelToken&);
  // Per-backend scaling of --min-speedup. Dinic carries the headline gate:
  // after the delta repair the residual is within O(edits) of maximal, and
  // an augmenting-path search routes the remainder almost for free. The
  // push-relabel warm restart (slack-bounded source budget instead of the
  // old full preflow flood) now does O(budget) restart work too — its ops
  // drop ~40x vs scratch on the default stream — so its gate sits just
  // under dinic's, at the shared ceiling both backends hit: the per-step
  // carry cost (residual rebuild + conservation repair) that dominates
  // once restart work is small (measurements and analysis in DESIGN.md
  // "Incremental re-solve: the delta path").
  double gate_scale;
};

/// The revision stream: nets[0] is the base instance, nets[k] differs from
/// nets[k-1] by deltas[k-1] (old_capacity recorded by apply()).
struct Stream {
  std::vector<graph::FlowNetwork> nets;
  std::vector<flow::CapacityDelta> deltas;
};

Stream make_stream(const graph::FlowNetwork& base, int steps,
                   double edit_frac, double edit_mag, unsigned seed) {
  Stream s;
  s.nets.push_back(base);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick_edge(0, base.num_edges() - 1);
  std::uniform_real_distribution<double> pick_factor(1.0 - edit_mag,
                                                     1.0 + edit_mag);
  const int edits_per_step = std::max(
      1, static_cast<int>(edit_frac * static_cast<double>(base.num_edges())));
  for (int k = 0; k < steps; ++k) {
    graph::FlowNetwork next = s.nets.back();
    flow::CapacityDelta d;
    for (int i = 0; i < edits_per_step; ++i) {
      const int e = pick_edge(rng);
      d.edits.push_back(
          {e, std::max(1e-3, next.edge(e).capacity * pick_factor(rng))});
    }
    d.apply(next);
    s.nets.push_back(std::move(next));
    s.deltas.push_back(std::move(d));
  }
  return s;
}

struct RunTotals {
  std::vector<double> flows; // one per revision (incl. the base)
  long long operations = 0;  // backend ops (paths / pushes+relabels)
  long long delta_solves = 0;
  long long delta_fallbacks = 0;
  long long edges_touched = 0;
  long long injected_excess_arcs = 0;
  long long returned_excess_walks = 0;
  long long phase2_fallbacks = 0;
  long long warm_escalations = 0;
};

RunTotals run_scratch(const Backend& b, const Stream& s) {
  RunTotals t;
  for (const auto& net : s.nets) {
    const flow::MaxFlowResult r = b.solve(net, {});
    t.flows.push_back(r.flow_value);
    t.operations += r.operations;
  }
  return t;
}

RunTotals run_incremental(const Backend& b, const Stream& s) {
  RunTotals t;
  flow::MaxFlowResult prior = b.solve(s.nets[0], {});
  t.flows.push_back(prior.flow_value);
  t.operations += prior.operations;
  for (size_t k = 0; k < s.deltas.size(); ++k) {
    flow::MaxFlowResult r = b.solve_delta(s.nets[k + 1], s.deltas[k], prior, {});
    t.flows.push_back(r.flow_value);
    t.operations += r.operations;
    t.delta_solves += r.metrics.delta_solves;
    t.delta_fallbacks += r.metrics.delta_fallbacks;
    t.edges_touched += r.metrics.edges_touched;
    t.injected_excess_arcs += r.metrics.injected_excess_arcs;
    t.returned_excess_walks += r.metrics.returned_excess_walks;
    t.phase2_fallbacks += r.metrics.phase2_fallbacks;
    t.warm_escalations += r.metrics.warm_escalations;
    prior = std::move(r);
  }
  return t;
}

struct GateResult {
  std::string name;
  double speedup = 0.0;
  double threshold = 0.0;
  double base_ms = 0.0;
  double fast_ms = 0.0;
  bool timed = false;
};

} // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::arg_flag(argc, argv, "--smoke");
  const int reps = bench::arg_int(argc, argv, "--reps", smoke ? 1 : 3);
  const int steps = bench::arg_int(argc, argv, "--steps", smoke ? 12 : 64);
  const double edit_frac =
      bench::arg_double(argc, argv, "--edit-frac", 0.01);
  // Reprogramming magnitude: each touched edge's capacity scales by a
  // factor in [1-mag, 1+mag]. 0.15 models the paper's conductance-tweak
  // streams; crank it to stress the repair path (correctness holds at any
  // magnitude — the test battery covers below-flow decreases).
  const double edit_mag = bench::arg_double(argc, argv, "--edit-mag", 0.15);
  const double min_speedup =
      bench::arg_double(argc, argv, "--min-speedup", smoke ? 0.0 : 3.0);
  const std::string spec = bench::arg_string(
      argc, argv, "--spec", smoke ? "grid:side=16,seed=7" : "grid:side=31,seed=7");
  const std::string json_path = bench::arg_string(argc, argv, "--json", "");

  bench::banner("Incremental re-solve: capacity-edit streams through the "
                "delta-first solver API");

  const graph::FlowNetwork base = core::load_batch(spec).at(0);
  const Stream stream =
      make_stream(base, steps, edit_frac, edit_mag, /*seed=*/1234);
  std::printf("base instance: %s (%d vertices, %d edges); %d-step stream, "
              "%zu edits/step\n\n",
              spec.c_str(), base.num_vertices(), base.num_edges(), steps,
              stream.deltas.empty() ? 0 : stream.deltas[0].edits.size());

  const Backend backends[] = {
      {"dinic", &flow::dinic, &flow::dinic_delta, 1.0},
      {"push_relabel", &flow::push_relabel, &flow::push_relabel_delta, 0.9},
  };

  std::vector<GateResult> gates;
  bool ok = true;
  util::JsonWriter j;
  j.begin_object();
  j.field("schema", "aflow-bench-v1");
  j.field("bench", "delta_resolve");
  j.field("smoke", smoke);
  j.field("batch", spec);
  j.field("steps", steps);
  j.field("edit_frac", edit_frac);
  j.field("edit_mag", edit_mag);
  j.key("backends").begin_array();

  for (const Backend& b : backends) {
    const RunTotals scratch = run_scratch(b, stream);
    const RunTotals inc = run_incremental(b, stream);

    for (size_t k = 0; k < scratch.flows.size(); ++k) {
      const double scale = std::max(1.0, std::abs(scratch.flows[k]));
      if (std::abs(scratch.flows[k] - inc.flows[k]) > 1e-9 * scale) {
        std::fprintf(stderr,
                     "FAIL(%s): revision %zu flow differs (%.17g scratch vs "
                     "%.17g incremental)\n",
                     b.name, k, scratch.flows[k], inc.flows[k]);
        ok = false;
      }
    }
    if (inc.delta_solves != steps || inc.delta_fallbacks != 0) {
      std::fprintf(stderr,
                   "FAIL(%s): delta path engaged on %lld/%d steps "
                   "(%lld fallbacks, want 0)\n",
                   b.name, inc.delta_solves, steps, inc.delta_fallbacks);
      ok = false;
    }
    std::printf("%-14s value identity over %d revisions: %s; "
                "%lld delta solves, %lld fallbacks, %lld edges touched, "
                "ops %lld scratch / %lld incremental\n",
                b.name, steps + 1, ok ? "OK" : "FAILED", inc.delta_solves,
                inc.delta_fallbacks, inc.edges_touched, scratch.operations,
                inc.operations);
    if (inc.injected_excess_arcs || inc.warm_escalations ||
        inc.phase2_fallbacks)
      std::printf("%-14s restart telemetry: %lld injected arcs, "
                  "%lld excess walks, %lld phase-2 fallbacks, "
                  "%lld warm escalations\n",
                  b.name, inc.injected_excess_arcs,
                  inc.returned_excess_walks, inc.phase2_fallbacks,
                  inc.warm_escalations);

    GateResult g{std::string("delta_vs_scratch_") + b.name, 0.0,
                 min_speedup * b.gate_scale, 0.0, 0.0, false};
    if (!smoke) {
      const double t_scratch =
          bench::time_median([&] { run_scratch(b, stream); }, reps);
      const double t_inc =
          bench::time_median([&] { run_incremental(b, stream); }, reps);
      g.base_ms = t_scratch * 1e3;
      g.fast_ms = t_inc * 1e3;
      g.speedup = t_inc > 0.0 ? t_scratch / t_inc : 0.0;
      g.timed = true;
      std::printf("%-14s scratch %.3f ms, incremental %.3f ms: %.2fx "
                  "(gate %.2fx)\n",
                  b.name, g.base_ms, g.fast_ms, g.speedup, g.threshold);
    }
    gates.push_back(g);

    j.begin_object();
    j.field("solver", b.name);
    j.field("operations_scratch", scratch.operations);
    j.field("operations_incremental", inc.operations);
    j.field("delta_solves", inc.delta_solves);
    j.field("delta_fallbacks", inc.delta_fallbacks);
    j.field("edges_touched", inc.edges_touched);
    j.field("injected_excess_arcs", inc.injected_excess_arcs);
    j.field("returned_excess_walks", inc.returned_excess_walks);
    j.field("phase2_fallbacks", inc.phase2_fallbacks);
    j.field("warm_escalations", inc.warm_escalations);
    j.field("wall_ms_scratch", g.base_ms);
    j.field("wall_ms_incremental", g.fast_ms);
    j.end_object();
  }
  j.end_array();

  j.key("gates").begin_array();
  for (const GateResult& g : gates)
    bench::json_gate(j, g.name, g.timed, g.speedup, g.threshold);
  j.end_array();
  j.end_object();
  if (!json_path.empty()) {
    util::write_json_file(json_path, j.str());
    std::printf("json: %s\n", json_path.c_str());
  }

  for (const GateResult& g : gates) {
    if (g.timed && g.threshold > 0.0 && g.speedup < g.threshold) {
      std::fprintf(stderr, "FAIL: %s speedup %.2fx below gate %.2fx\n",
                   g.name.c_str(), g.speedup, g.threshold);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

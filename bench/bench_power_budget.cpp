// Sec. 5.2: power and energy analysis. P ~ (|E| + |V|) * Pamp with
// Pamp = 500 uW; a 5 W embedded budget hosts ~1e4 edges and a 150 W server
// budget ~3e5; energy efficiency vs the CPU follows from the speedup.
#include "analog/power.hpp"
#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"
#include "sim/dc.hpp"

int main() {
  using namespace aflow;
  bench::banner("Sec. 5.2 — power consumption vs graph size");

  analog::PowerParams params;
  std::printf("%6s %8s %10s %14s %16s\n", "|V|", "|E|", "op-amps",
              "P_opamp (mW)", "P_resistor (mW)");
  bench::rule();
  for (int n : {64, 128, 256, 512, 1000}) {
    const auto g = graph::rmat_sparse(n, 7);
    auto report = analog::estimate_power(g, params);
    // Measure the resistive term from the operating point for the sizes the
    // DC engine handles quickly.
    if (n <= 256) {
      analog::AnalogSolveOptions opt;
      opt.config.fidelity = analog::NegResFidelity::kIdeal;
      opt.config.parasitic_capacitance = 0.0;
      opt.config.vflow = 3.0; // Table 1 operating point
      analog::AnalogMaxFlowSolver solver(opt);
      const auto c = solver.map(g);
      sim::DcSolver dc(c.netlist);
      auto state = circuit::DeviceState::initial(c.netlist);
      const auto x = dc.solve(state);
      report = analog::measure_power(g, params, c.netlist, dc.assembler(), x);
      std::printf("%6d %8d %10d %14.1f %16.3f\n", n, g.num_edges(),
                  report.active_opamps, report.opamp_power * 1e3,
                  report.resistor_power * 1e3);
    } else {
      std::printf("%6d %8d %10d %14.1f %16s\n", n, g.num_edges(),
                  report.active_opamps, report.opamp_power * 1e3, "(analytic)");
    }
  }
  bench::rule();

  std::printf("\nbudget arithmetic (Pamp = %.0f uW):\n", params.p_amp * 1e6);
  std::printf("  %-44s %12lld   (paper: ~1e4)\n",
              "edges hosted in a 5 W embedded budget",
              analog::max_edges_for_budget(5.0, params));
  std::printf("  %-44s %12lld   (paper: 3e5)\n",
              "edges hosted in a 150 W server budget",
              analog::max_edges_for_budget(150.0, params));

  // Energy comparison on a mid-size instance.
  const auto g = graph::rmat_sparse(256, 7);
  const auto solver = core::SolverRegistry::instance().create("push_relabel");
  const double cpu_s = bench::time_median([&] { solver->solve(g); });
  analog::AnalogSolveOptions topt;
  topt.config.fidelity = analog::NegResFidelity::kOpAmpNic;
  topt.config.parasitics_on_internal_nodes = true;
  topt.config.nic_anti_latch = false;
  topt.config.vflow = 10.0;
  topt.method = analog::SolveMethod::kTransient;
  double tconv = 0.0;
  try {
    tconv = analog::AnalogMaxFlowSolver(topt).solve(g).convergence_time;
  } catch (const std::exception&) {
    tconv = 0.0;
  }
  const auto report = analog::estimate_power(g, params);
  std::printf("\nenergy per solve, %d-vertex / %d-edge instance:\n",
              g.num_vertices(), g.num_edges());
  std::printf("  substrate: %.2f W x %.3e s = %.3e J\n", report.total(), tconv,
              analog::analog_energy(report, tconv));
  std::printf("  CPU:       %.0f W x %.3e s = %.3e J\n", params.cpu_power,
              cpu_s, analog::cpu_energy(params, cpu_s));
  if (tconv > 0.0)
    std::printf("  energy-efficiency ratio: %.0fx (paper: two to three orders "
                "of magnitude)\n",
                analog::cpu_energy(params, cpu_s) /
                    analog::analog_energy(report, tconv));
  return 0;
}

// Ablation (reproduction finding): the stability-margin / correctness
// trade-off of the negative-resistor widgets.
//
// The paper's design sets every |-R| exactly equal to the resistance of the
// network it faces — the marginal point of NIC stability. Biasing the
// magnitudes by (1 + margin) stabilises the dynamics but softens the
// conservation constraints, which the objective drive then exploits: the
// flow error grows catastrophically, not O(margin). This bench measures
// that cliff — the central design tension this reproduction exposes.
#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace aflow;
  bench::banner("Ablation — negative-resistor stability margin vs correctness");

  const auto g = graph::rmat(40, 170, {}, 5);
  const double exact = core::solve("push_relabel", g).flow_value;
  std::printf("instance: %d vertices / %d edges, exact max flow %.0f\n\n",
              g.num_vertices(), g.num_edges(), exact);
  std::printf("%10s %12s %12s\n", "margin", "flow", "error");
  bench::rule();
  for (double margin : {0.0, 0.001, 0.005, 0.02, 0.05, 0.1}) {
    analog::AnalogSolveOptions opt;
    opt.config.fidelity = analog::NegResFidelity::kIdeal;
    opt.config.parasitic_capacitance = 0.0;
    opt.config.vflow = 20.0;
    opt.config.stability_margin = margin;
    opt.quantization = analog::QuantizationMode::kNone;
    try {
      const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);
      std::printf("%10.3f %12.2f %+11.2f%%\n", margin, r.flow_value,
                  100.0 * (r.flow_value - exact) / exact);
    } catch (const std::exception&) {
      std::printf("%10.3f %12s\n", margin, "(no op point)");
    }
  }
  bench::rule();
  std::printf("margin = 0 reproduces the paper's exact constraints "
              "(dynamically marginal). Any positive\nmargin destroys the "
              "clean operating point: the DC complementarity search loses "
              "its\nsolution, and dynamic settling (when bounded) drifts "
              "toward the capacity clamps (+50%%\nflow on small examples at "
              "margin 0.02). Correctness and strict stability are in\n"
              "fundamental tension in this substrate (see EXPERIMENTS.md "
              "\"Marginal stability on generated workloads\").\n");
  return 0;
}

// Factorisation-reuse gate: solves a Newton-heavy batch of analog DC
// instances twice — once with the legacy rebuild-everything-per-iteration
// baseline and once with the pattern-stable assembly + numeric-refactor
// fast path (plus cross-instance ordering sharing) — and verifies
//   (a) the two paths agree on every flow value to 1e-9,
//   (b) the fast path actually runs as refactors (>= iterations - solves
//       full factorisations would mean the fast path never engaged), and
//   (c) the measured speedup clears the gate (default 1.5x).
//
//   bench_lu_reuse [--batch SPEC] [--reps 3] [--min-speedup 1.5] [--smoke]
//                  [--json FILE]
//
// --smoke shrinks the workload and drops the timing gate (CI machines are
// too noisy for wall-clock assertions) while keeping the correctness and
// refactor-share assertions. --json writes an aflow-bench-v1 report for
// perf-trend tracking.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "core/workload.hpp"
#include "util/json.hpp"

using namespace aflow;

namespace {

struct PathTotals {
  double flow = 0.0;
  long long full_factors = 0;
  long long refactors = 0;
  long long solves = 0;
  std::vector<double> flows;
};

analog::AnalogSolveOptions make_options(bool reuse, bool share) {
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0;
  opt.method = analog::SolveMethod::kSteadyState;
  opt.reuse_factorization = reuse;
  if (share) opt.ordering_cache = std::make_shared<la::OrderingCache>();
  return opt;
}

PathTotals run_path(const std::vector<graph::FlowNetwork>& instances,
                    const analog::AnalogSolveOptions& options) {
  const analog::AnalogMaxFlowSolver solver(options);
  PathTotals t;
  for (const auto& net : instances) {
    const analog::AnalogFlowResult r = solver.solve(net);
    t.flow += r.flow_value;
    t.full_factors += r.full_factors;
    t.refactors += r.refactors;
    t.solves += r.solves;
    t.flows.push_back(r.flow_value);
  }
  return t;
}

} // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::arg_flag(argc, argv, "--smoke");
  const int reps = bench::arg_int(argc, argv, "--reps", smoke ? 1 : 3);
  const double min_speedup =
      bench::arg_double(argc, argv, "--min-speedup", smoke ? 0.0 : 1.5);
  // Dense-ish ~1k-node circuits whose clamp ladders make the DC solve
  // Newton/PWL-heavy; 64 instances as in the acceptance criterion.
  const std::string spec = bench::arg_string(
      argc, argv, "--batch",
      smoke ? "grid:side=6,count=4,seed=5"
            : "grid:side=13,count=64,seed=5");

  bench::banner("LU factorisation reuse: rebuild-per-iteration baseline vs "
                "refactor fast path");
  const auto instances = core::load_batch(spec);
  std::printf("instances: %zu  (spec: %s)\n\n", instances.size(), spec.c_str());

  const auto baseline_opt = make_options(/*reuse=*/false, /*share=*/false);
  const auto reuse_opt = make_options(/*reuse=*/true, /*share=*/true);

  const PathTotals base = run_path(instances, baseline_opt);
  const PathTotals fast = run_path(instances, reuse_opt);

  // (a) Identical answers.
  for (size_t i = 0; i < instances.size(); ++i) {
    if (std::abs(base.flows[i] - fast.flows[i]) > 1e-9) {
      std::fprintf(stderr,
                   "FAIL: instance %zu flow differs between paths "
                   "(%.17g baseline vs %.17g reuse)\n",
                   i, base.flows[i], fast.flows[i]);
      return 1;
    }
  }

  // (b) The fast path must spend almost all factorisations as refactors:
  // one full factorisation per instance pattern is expected, everything
  // else should ride the numeric-only path.
  if (fast.refactors < fast.solves - fast.full_factors - 1) {
    std::fprintf(stderr,
                 "FAIL: refactor fast path not engaged (solves=%lld "
                 "full=%lld refactors=%lld)\n",
                 fast.solves, fast.full_factors, fast.refactors);
    return 1;
  }
  if (fast.refactors == 0) {
    std::fprintf(stderr, "FAIL: reuse path performed zero refactors\n");
    return 1;
  }
  if (base.refactors != 0) {
    std::fprintf(stderr, "FAIL: baseline unexpectedly refactored (%lld)\n",
                 base.refactors);
    return 1;
  }

  std::printf("flow identity across paths: OK (total flow %.10g)\n",
              fast.flow);
  std::printf("baseline: %lld linear solves, %lld full factorisations\n",
              base.solves, base.full_factors);
  std::printf("reuse:    %lld linear solves, %lld full factorisations, "
              "%lld refactors (%.1f%% fast path)\n\n",
              fast.solves, fast.full_factors, fast.refactors,
              100.0 * static_cast<double>(fast.refactors) /
                  static_cast<double>(fast.full_factors + fast.refactors));

  const double t_base =
      bench::time_median([&] { run_path(instances, baseline_opt); }, reps);
  const double t_fast =
      bench::time_median([&] { run_path(instances, reuse_opt); }, reps);
  const double speedup = t_fast > 0.0 ? t_base / t_fast : 0.0;

  bench::rule();
  std::printf("%-36s %12s\n", "path", "wall [ms]");
  bench::rule();
  std::printf("%-36s %12.2f\n", "rebuild per iteration (baseline)",
              t_base * 1e3);
  std::printf("%-36s %12.2f\n", "pattern + refactor reuse", t_fast * 1e3);
  bench::rule();
  std::printf("speedup: %.2fx  (gate: %.2fx)\n", speedup, min_speedup);

  const std::string json_path = bench::arg_string(argc, argv, "--json", "");
  if (!json_path.empty()) {
    aflow::util::JsonWriter j;
    j.begin_object();
    j.field("schema", "aflow-bench-v1");
    j.field("bench", "lu_reuse");
    j.field("smoke", smoke);
    j.field("batch", spec);
    j.field("instances", instances.size());
    j.field("solves", fast.solves);
    j.field("full_factors", fast.full_factors);
    j.field("refactors", fast.refactors);
    j.field("refactor_share",
            static_cast<double>(fast.refactors) /
                static_cast<double>(
                    std::max(1LL, fast.full_factors + fast.refactors)));
    j.field("wall_ms_baseline", t_base * 1e3);
    j.field("wall_ms_reuse", t_fast * 1e3);
    j.key("gates").begin_array();
    bench::json_gate(j, "dc_reuse_vs_rebuild", /*timed=*/min_speedup > 0.0,
                     speedup, min_speedup);
    j.end_array();
    j.end_object();
    aflow::util::write_json_file(json_path, j.str());
    std::printf("json: %s\n", json_path.c_str());
  }

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below gate %.2fx\n", speedup,
                 min_speedup);
    return 1;
  }
  return 0;
}

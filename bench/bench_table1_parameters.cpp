// Table 1: "Design parameters for the max-flow computing substrate."
#include "analog/substrate_config.hpp"
#include "bench_util.hpp"

int main() {
  using namespace aflow;
  const analog::SubstrateConfig c;
  bench::banner("Table 1 — Design parameters for the max-flow computing substrate");
  std::printf("%-48s %10s %10s\n", "parameter", "paper", "this repo");
  bench::rule();
  std::printf("%-48s %10s %10.0f\n", "Memristor LRS resistance (kOhm)", "10",
              c.lrs_resistance / 1e3);
  std::printf("%-48s %10s %10.0f\n", "Memristor HRS resistance (kOhm)", "1000",
              c.hrs_resistance / 1e3);
  std::printf("%-48s %10s %10.1f\n", "Objective function voltage Vflow (V)", "3",
              c.vflow);
  std::printf("%-48s %10s %10.0f\n", "Open loop gain of op-amp", "1e4",
              c.opamp_gain);
  std::printf("%-48s %10s %7.0f-50\n", "Gain-bandwidth product of op-amp (GHz)",
              "10 to 50", c.opamp_gbw / 1e9);
  std::printf("%-48s %10s %10d\n", "Number of columns in the crossbar", "1000",
              c.crossbar_cols);
  std::printf("%-48s %10s %10d\n", "Number of rows in the crossbar", "1000",
              c.crossbar_rows);
  std::printf("%-48s %10s %10d\n", "Number of voltage levels", "20",
              c.voltage_levels);
  bench::rule();
  std::printf("model additions (see DESIGN.md \"Model additions beyond "
              "Table 1\"): diode Ron %.2f Ohm, Roff %.0e "
              "Ohm, op-amp rails +-%.0f V,\nparasitic %.0f fF/net, supply Vdd "
              "%.1f V for the quantized capacity levels\n",
              c.diode.r_on, c.diode.r_off, 15.0,
              c.parasitic_capacitance * 1e15, c.vdd);
  return 0;
}

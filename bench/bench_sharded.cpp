// Sharded-solve gate (core/sharded_solver.hpp), on the PR's headline
// scenario: one huge instance, solved in k regions with exact boundary
// refinement (see DESIGN.md "Sharded solve").
//
// The bench writes a gridflow instance to a DIMACS file, then runs two
// pipelines in one process:
//
//   sharded: stream the file into a CsrGraph (graph::read_dimacs_stream),
//            partition into --shards regions, solve them through the
//            BatchEngine worker pool, stitch + repair + refine;
//   direct:  read the file into a FlowNetwork (graph::read_dimacs) and
//            solve it cold with single-thread Dinic.
//
// Asserts
//   (a) flow-value identity to 1e-9 and a feasible sharded flow
//       (graph::check_csr_flow),
//   (b) engagement: the partition produced --shards regions with a
//       non-empty cut manifest, and the pre-refinement bound brackets the
//       flow (upper_bound >= flow >= stitched_value >= 0),
//   (c) the parallel region-solve stage beats a whole single-thread direct
//       dinic by >= --min-speedup (default 2x): the region subproblems are
//       small enough that even their *sequential* sum undercuts the direct
//       solve (measured ~4.6x on the 1M-node grid), and the stage divides
//       across BatchEngine workers. The end-to-end speedup is reported but
//       not gated — at this scale the sequential stitch-repair + refinement
//       tail dominates (~0.8x end-to-end on one CPU; see the ROADMAP
//       follow-up on parallelising the tail),
//   (d) peak RSS of the sharded pipeline <= --rss-budget-mb (default 384,
//       fitting the measured ~262 MB for the 1M-node grid with headroom —
//       while the direct pipeline's FlowNetwork + residual measure ~397 MB,
//       over the same budget). The sharded pipeline runs first, so its
//       VmHWM reading is uncontaminated; the direct pipeline then pushes
//       VmHWM past it, which the report surfaces as the in-memory path's
//       overhead.
//
//   bench_sharded [--height 1000] [--width 1000] [--cap 64] [--seed 7]
//                 [--shards 8] [--threads 0] [--region-solver dinic]
//                 [--min-speedup 2.0] [--rss-budget-mb 2048]
//                 [--dimacs FILE] [--smoke] [--json FILE]
//
// --smoke shrinks the grid and drops the wall-clock and RSS gates (CI
// machines are noisy and small) while keeping the value-identity,
// feasibility and engagement assertions.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "core/sharded_solver.hpp"
#include "flow/maxflow.hpp"
#include "graph/csr.hpp"
#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "util/json.hpp"

using namespace aflow;

namespace {

/// Peak resident set (VmHWM) in MB, from /proc/self/status; 0 when the
/// proc interface is unavailable (non-Linux), which disables the RSS gate.
double peak_rss_mb() {
  std::ifstream st("/proc/self/status");
  std::string line;
  while (std::getline(st, line))
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0; // kB -> MB
  return 0.0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

} // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::arg_flag(argc, argv, "--smoke");
  const int height = bench::arg_int(argc, argv, "--height", smoke ? 120 : 1000);
  const int width = bench::arg_int(argc, argv, "--width", smoke ? 120 : 1000);
  const int cap = bench::arg_int(argc, argv, "--cap", 64);
  const int seed = bench::arg_int(argc, argv, "--seed", 7);
  const int shards = bench::arg_int(argc, argv, "--shards", smoke ? 4 : 8);
  const int threads = bench::arg_int(argc, argv, "--threads", 0);
  const std::string region_solver =
      bench::arg_string(argc, argv, "--region-solver", "dinic");
  const double min_speedup =
      bench::arg_double(argc, argv, "--min-speedup", smoke ? 0.0 : 2.0);
  const double rss_budget_mb =
      bench::arg_double(argc, argv, "--rss-budget-mb", smoke ? 0.0 : 384.0);
  const std::string json_path = bench::arg_string(argc, argv, "--json", "");
  std::string dimacs = bench::arg_string(argc, argv, "--dimacs", "");
  const bool keep_dimacs = !dimacs.empty();
  if (dimacs.empty())
    dimacs = (std::filesystem::temp_directory_path() /
              "aflow_bench_sharded.dimacs")
                 .string();

  bench::banner("Sharded solve: k-way region decomposition with exact "
                "boundary refinement, streamed from disk");

  {
    std::ofstream out(dimacs);
    graph::write_gridflow_dimacs(out, height, width, cap,
                                 static_cast<std::uint64_t>(seed));
  }
  std::printf("instance: gridflow %dx%d cap=%d seed=%d -> %s (%.1f MB on "
              "disk)\n\n",
              height, width, cap, seed, dimacs.c_str(),
              static_cast<double>(std::filesystem::file_size(dimacs)) / 1e6);

  // --- Sharded pipeline first: its VmHWM reading is the gated one. -------
  core::ShardOptions opt;
  opt.shards = shards;
  opt.region_solver = region_solver;
  opt.num_threads = threads;
  core::ShardReport rep;
  const auto sharded_t0 = std::chrono::steady_clock::now();
  const graph::CsrGraph g = graph::read_dimacs_stream_file(dimacs);
  const double stream_s = seconds_since(sharded_t0);
  const auto solve_t0 = std::chrono::steady_clock::now();
  const flow::MaxFlowResult sharded =
      core::ShardedSolver(opt).solve_csr(g, &rep);
  const double sharded_s = seconds_since(solve_t0);
  const double rss_sharded = peak_rss_mb();

  std::printf("sharded   %d regions (%s, %d threads): flow %.6g in %.3f s "
              "(+%.3f s streaming)\n",
              rep.regions, region_solver.c_str(), rep.threads_used,
              sharded.flow_value, sharded_s, stream_s);
  std::printf("          cut arcs %lld (cap %.6g), bound %.6g, stitched "
              "%.6g + refined %.6g\n",
              static_cast<long long>(rep.cut_arcs), rep.cut_capacity,
              rep.upper_bound, rep.stitched_value, rep.refined_added);
  std::printf("          stages: partition %.3f s, regions %.3f s, stitch "
              "%.3f s, refine %.3f s; peak RSS %.1f MB\n",
              rep.partition_seconds, rep.region_seconds, rep.stitch_seconds,
              rep.refine_seconds, rss_sharded);

  const std::string feasible =
      graph::check_csr_flow(g, sharded.edge_flow, sharded.flow_value,
                            1e-6 * std::max(1.0, sharded.flow_value));

  // --- Direct pipeline: the in-memory FlowNetwork baseline. --------------
  const auto direct_t0 = std::chrono::steady_clock::now();
  const graph::FlowNetwork net = graph::read_dimacs_file(dimacs);
  const double read_s = seconds_since(direct_t0);
  const auto dinic_t0 = std::chrono::steady_clock::now();
  const flow::MaxFlowResult direct = flow::dinic(net);
  const double direct_s = seconds_since(dinic_t0);
  const double rss_direct = peak_rss_mb();

  std::printf("direct    single-thread dinic: flow %.6g in %.3f s (+%.3f s "
              "reading); peak RSS %.1f MB (+%.1f over sharded)\n\n",
              direct.flow_value, direct_s, read_s, rss_direct,
              rss_direct - rss_sharded);

  const double speedup = sharded_s > 0.0 ? direct_s / sharded_s : 0.0;
  const double region_speedup =
      rep.region_seconds > 0.0 ? direct_s / rep.region_seconds : 0.0;
  const bool region_gated = !smoke;
  const bool rss_gated = !smoke && rss_budget_mb > 0.0 && rss_sharded > 0.0;

  bool ok = true;
  bool value_ok = true;
  const double scale = std::max(1.0, std::abs(direct.flow_value));
  if (std::abs(sharded.flow_value - direct.flow_value) > 1e-9 * scale) {
    value_ok = false;
    std::fprintf(stderr, "FAIL: flow differs (%.17g sharded vs %.17g direct)\n",
                 sharded.flow_value, direct.flow_value);
    ok = false;
  }
  if (!feasible.empty()) {
    std::fprintf(stderr, "FAIL: sharded flow infeasible: %s\n",
                 feasible.c_str());
    value_ok = false;
  }
  ok = ok && value_ok;
  if (rep.regions != shards || rep.cut_arcs <= 0) {
    std::fprintf(stderr,
                 "FAIL: partition did not engage (%d regions, %lld cut arcs)\n",
                 rep.regions, static_cast<long long>(rep.cut_arcs));
    ok = false;
  }
  if (rep.upper_bound < sharded.flow_value - 1e-9 * scale ||
      rep.stitched_value < 0.0 ||
      sharded.flow_value < rep.stitched_value - 1e-9 * scale) {
    std::fprintf(stderr,
                 "FAIL: bound ordering violated (bound %.17g, flow %.17g, "
                 "stitched %.17g)\n",
                 rep.upper_bound, sharded.flow_value, rep.stitched_value);
    ok = false;
  }
  std::printf("region stage vs direct: %.2fx (%d threads; gate %.2fx%s); "
              "end-to-end: %.2fx (reported, not gated)\n",
              region_speedup, rep.threads_used, min_speedup,
              region_gated ? "" : ", smoke: reported only", speedup);
  if (region_gated && min_speedup > 0.0 && region_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: region-stage speedup %.2fx below gate %.2fx\n",
                 region_speedup, min_speedup);
    ok = false;
  }
  if (rss_gated && rss_sharded > rss_budget_mb) {
    std::fprintf(stderr, "FAIL: sharded peak RSS %.1f MB over budget %.1f MB\n",
                 rss_sharded, rss_budget_mb);
    ok = false;
  }

  util::JsonWriter j;
  j.begin_object();
  j.field("schema", "aflow-bench-v1");
  j.field("bench", "sharded");
  j.field("smoke", smoke);
  j.field("height", height);
  j.field("width", width);
  j.field("vertices", g.num_vertices());
  j.field("edges", static_cast<long long>(g.num_edges()));
  j.field("shards", shards);
  j.field("region_solver", region_solver);
  j.field("threads_used", rep.threads_used);
  j.field("flow", sharded.flow_value);
  j.field("upper_bound", rep.upper_bound);
  j.field("stitched_value", rep.stitched_value);
  j.field("refined_added", rep.refined_added);
  j.field("cut_arcs", static_cast<long long>(rep.cut_arcs));
  j.field("cut_capacity", rep.cut_capacity);
  j.field("wall_s_stream", stream_s);
  j.field("wall_s_sharded", sharded_s);
  j.field("wall_s_partition", rep.partition_seconds);
  j.field("wall_s_regions", rep.region_seconds);
  j.field("wall_s_stitch", rep.stitch_seconds);
  j.field("wall_s_refine", rep.refine_seconds);
  j.field("wall_s_direct_read", read_s);
  j.field("wall_s_direct", direct_s);
  j.field("rss_sharded_mb", rss_sharded);
  j.field("rss_direct_mb", rss_direct);
  j.key("gates").begin_array();
  bench::json_gate(j, "sharded_value_identity", true, value_ok ? 1.0 : 0.0,
                   1.0);
  bench::json_gate(j, "sharded_regions_vs_direct", region_gated,
                   region_speedup, min_speedup);
  // RSS gate reuses the speedup record shape: "speedup" = budget / peak, so
  // pass means the sharded pipeline fit with headroom >= 1.
  bench::json_gate(j, "sharded_rss_budget", rss_gated,
                   rss_sharded > 0.0 ? rss_budget_mb / rss_sharded : 0.0, 1.0);
  j.end_array();
  j.end_object();
  if (!json_path.empty()) {
    util::write_json_file(json_path, j.str());
    std::printf("json: %s\n", json_path.c_str());
  }

  if (!keep_dimacs) std::filesystem::remove(dimacs);
  return ok ? 0 : 1;
}

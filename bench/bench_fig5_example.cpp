// Fig. 5: the worked example — solve the 5-edge instance on the substrate
// and print the node-voltage waveform of the Vflow step response (Fig. 5c)
// plus the steady-state solution (Sec. 2.4).
#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/network.hpp"

int main(int argc, char** argv) {
  using namespace aflow;
  bench::banner("Fig. 5 — solving the example instance; waveform of V(x1..x5)");

  const auto g = graph::paper_example_fig5();
  const double exact = core::solve("push_relabel", g).flow_value;

  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kOpAmpNic;
  opt.config.parasitics_on_internal_nodes = true;
  opt.config.nic_anti_latch = false;
  opt.config.vflow = bench::arg_double(argc, argv, "--vflow", 10.0);
  opt.config.vdd = 3.0; // 1 V per capacity unit, as in the paper's figure
  opt.quantization = analog::QuantizationMode::kNone;
  opt.method = analog::SolveMethod::kTransient;
  opt.record_edge_waveforms = true;

  const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);

  std::printf("\nwaveform (time s, V(x1)..V(x5); paper plots 0..25 ns):\n");
  std::printf("%12s %8s %8s %8s %8s %8s\n", "t", "V(x1)", "V(x2)", "V(x3)",
              "V(x4)", "V(x5)");
  const size_t stride = std::max<size_t>(1, r.waveform.time.size() / 28);
  for (size_t k = 0; k < r.waveform.time.size(); k += stride) {
    std::printf("%12.3e %8.3f %8.3f %8.3f %8.3f %8.3f\n", r.waveform.time[k],
                r.waveform.samples[k][1], r.waveform.samples[k][2],
                r.waveform.samples[k][3], r.waveform.samples[k][4],
                r.waveform.samples[k][5]);
  }
  std::printf("\nsteady state: flow = %.3f (exact %.0f), per-edge:", r.flow_value,
              exact);
  for (double f : r.edge_flow) std::printf(" %.3f", f);
  std::printf("\npaper (Sec. 2.4): Vx1 -> 2 V, x3/x4 saturate at 1 V "
              "(one of several degenerate optimal splits; see EXPERIMENTS.md "
              "\"Degenerate optimal splits\")\n");

  // The steady-state (theory) solution for comparison.
  analog::AnalogSolveOptions dc = opt;
  dc.config.fidelity = analog::NegResFidelity::kIdeal;
  dc.method = analog::SolveMethod::kSteadyState;
  const auto rdc = analog::AnalogMaxFlowSolver(dc).solve(g);
  std::printf("ideal-substrate steady state: flow = %.3f, per-edge:",
              rdc.flow_value);
  for (double f : rdc.edge_flow) std::printf(" %.3f", f);
  std::printf("\n");
  return 0;
}

// Sec. 6.2 (Fig. 11): clustered island-style architectures. Map sparse
// R-MAT graphs onto a monolithic crossbar, a 1-D island array with a shared
// channel, and a 2-D island grid with switch boxes; report utilisation,
// minimum channel width, wirelength and mapping time.
#include "arch/clustered.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace aflow;
  bench::banner("Sec. 6.2 / Fig. 11 — clustered architectures vs monolithic crossbar");

  const int island = bench::arg_int(argc, argv, "--island", 32);
  std::printf("island capacity: %d vertices (a %dx%d local crossbar per island)\n\n",
              island, island, island);
  std::printf("%6s %7s | %10s | %8s %7s %7s | %8s %7s %7s | %9s\n", "|V|",
              "|E|", "mono util", "1D util", "1D Wmin", "1D wire", "2D util",
              "2D Wmin", "2D wire", "map time");
  bench::rule(' ', 0);
  bench::rule();
  for (int n : {128, 256, 512, 1000}) {
    const auto g = graph::rmat_sparse(n, 11);
    arch::ArchSpec d1;
    d1.island_capacity = island;
    d1.channel_width = 1 << 20;
    arch::ArchSpec d2 = d1;
    d2.style = arch::RoutingStyle::kGrid2D;
    d2.grid_columns = std::max(2, (n / island) / 4);

    const auto m1 = arch::map_to_islands(g, d1, 11);
    const auto m2 = arch::map_to_islands(g, d2, 11);
    std::printf("%6d %7d | %10.4f | %8.4f %7d %7lld | %8.4f %7d %7lld | %8.3fs\n",
                n, g.num_edges(), m1.monolithic_utilization,
                m1.clustered_utilization, m1.required_channel_width,
                m1.total_wirelength, m2.clustered_utilization,
                m2.required_channel_width, m2.total_wirelength,
                m1.mapping_seconds + m2.mapping_seconds);
  }
  bench::rule();
  std::printf("shape checks (paper's hypotheses): clustering recovers the "
              "utilisation a monolithic\ncrossbar wastes on sparse graphs; "
              "the 1-D shared channel needs monotonically more tracks\nthan "
              "the 2-D switch-box fabric as graphs grow; 1-D maps faster "
              "(no 2-D placement).\n");
  return 0;
}

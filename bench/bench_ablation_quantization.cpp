// Ablation (Sec. 4.1): relative error vs the number of voltage levels N.
// The paper fixes N = 20 and notes the accuracy/cost trade; this sweep
// quantifies it, together with the worst-case bound e = C/N.
#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace aflow;
  bench::banner("Ablation — error vs number of quantization levels N (Sec. 4.1)");

  const int seeds = bench::arg_int(argc, argv, "--seeds", 4);
  std::printf("%6s %14s %14s %14s\n", "N", "avg |err|", "max |err|",
              "bound C/N (rel)");
  bench::rule();
  for (int levels : {4, 8, 16, 20, 32, 64, 128}) {
    double sum = 0.0, worst = 0.0, bound_rel = 0.0;
    for (int seed = 1; seed <= seeds; ++seed) {
      const auto g = graph::rmat(48, 220, {}, seed);
      const double exact = core::solve("push_relabel", g).flow_value;
      analog::AnalogSolveOptions opt;
      opt.config.fidelity = analog::NegResFidelity::kIdeal;
      opt.config.parasitic_capacitance = 0.0;
      opt.config.vflow = 10.0;
      opt.quantization = analog::QuantizationMode::kRound;
      opt.config.voltage_levels = levels;
      const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);
      const double err = r.relative_error(exact);
      sum += err;
      worst = std::max(worst, err);
      bound_rel += g.max_capacity() / levels / exact;
    }
    std::printf("%6d %13.2f%% %13.2f%% %13.2f%%\n", levels,
                100.0 * sum / seeds, 100.0 * worst, 100.0 * bound_rel / seeds);
  }
  bench::rule();
  std::printf("error shrinks ~1/N until the residual circuit error floor; "
              "N = 20 (Table 1) sits near the\npaper's <= 8%% envelope.\n");
  return 0;
}

// Fig. 15 / Sec. 6.5: quasi-static circuit dynamics. Ramp Vflow slowly and
// track the trajectory of (Vx1, Vx2, Vx3) through the feasible region.
//
// Two circuits are swept:
//  1. the paper's simplified Fig. 15b circuit (x2, x3 dangling), which
//     reproduces the closed-form walk-through: Vx1 = 2/9 Vflow initially,
//     breakpoint D at Vflow = 9 V (x2 clamps at 1 V), optimum B(4,1,3) at
//     Vflow = 19 V;
//  2. the full substrate mapping of the same instance, whose negation
//     widgets load the nodes and shift the breakpoints outward.
#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "graph/network.hpp"
#include "sim/sweep.hpp"

using namespace aflow;

namespace {

void sweep_simplified() {
  std::printf("\n[simplified Fig. 15b circuit — the paper's walk-through]\n");
  const double r = 10e3;
  circuit::Netlist nl;
  const auto x1 = nl.new_node("x1"), p1 = nl.new_node("p1"),
             x1m = nl.new_node("x1m"), n1 = nl.new_node("n1"),
             x2 = nl.new_node("x2"), x3 = nl.new_node("x3"),
             vf = nl.new_node("vflow");
  const int src = nl.add_vsource(vf, circuit::kGround, 0.0);
  nl.add_resistor(vf, x1, r);
  nl.add_resistor(x1, p1, r);
  nl.add_resistor(x1m, p1, r);
  nl.add_negative_resistor(p1, circuit::kGround, r / 2.0);
  nl.add_resistor(x1m, n1, r);
  nl.add_resistor(x2, n1, r);
  nl.add_resistor(x3, n1, r);
  nl.add_negative_resistor(n1, circuit::kGround, r / 3.0);
  // Capacity clamps x1 <= 4, x2 <= 1, x3 <= 4 (volts == flow units here).
  const auto lvl4 = nl.new_node("lvl4");
  nl.add_vsource(lvl4, circuit::kGround, 4.0);
  const auto lvl1 = nl.new_node("lvl1");
  nl.add_vsource(lvl1, circuit::kGround, 1.0);
  nl.add_diode(x1, lvl4);
  nl.add_diode(x2, lvl1);
  nl.add_diode(x3, lvl4);
  nl.add_diode(circuit::kGround, x1);
  nl.add_diode(circuit::kGround, x2);
  nl.add_diode(circuit::kGround, x3);

  std::vector<double> values;
  for (double v = 0.0; v <= 22.0; v += 0.5) values.push_back(v);
  sim::QuasiStaticSweep sweep(nl, src);
  const auto result = sweep.run(values, {sim::Probe::node(x1, "Vx1"),
                                         sim::Probe::node(x2, "Vx2"),
                                         sim::Probe::node(x3, "Vx3")});

  std::printf("%8s %8s %8s %8s\n", "Vflow", "Vx1", "Vx2", "Vx3");
  for (size_t k = 0; k < result.source_values.size(); k += 2)
    std::printf("%8.1f %8.3f %8.3f %8.3f\n", result.source_values[k],
                result.trajectory[k][0], result.trajectory[k][1],
                result.trajectory[k][2]);
  std::printf("breakpoints (diode state changes):");
  for (const auto& b : result.breakpoints)
    std::printf("  Vflow=%.1fV (%d flips)", b.source_value, b.flips);
  std::printf("\npaper: D at 9 V (x2 clamps), optimum B(4,1,3) reached at 19 V\n");
}

void sweep_full_substrate() {
  std::printf("\n[full substrate mapping of the same instance]\n");
  const auto g = graph::paper_example_fig15(10.0);
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vdd = 10.0;
  opt.quantization = analog::QuantizationMode::kNone;

  std::printf("%8s %8s %8s %8s\n", "Vflow", "x1", "x2", "x3");
  for (double v : {1.0, 4.0, 9.0, 19.0, 40.0, 80.0, 160.0, 320.0}) {
    opt.config.vflow = v;
    const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);
    std::printf("%8.0f %8.3f %8.3f %8.3f\n", v, r.edge_flow[0], r.edge_flow[1],
                r.edge_flow[2]);
  }
  std::printf("the widget loading shifts the optimum-reaching drive well "
              "beyond the simplified circuit's 19 V\n");
}

} // namespace

int main() {
  bench::banner("Fig. 15 — quasi-static trajectory of the node voltages");
  sweep_simplified();
  sweep_full_substrate();
  return 0;
}

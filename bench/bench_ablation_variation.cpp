// Ablation (Sec. 4.3): solution quality vs resistor mismatch, with layout
// matching and memristive tuning. Also demonstrates ratio invariance under
// die-level global scaling and the Fig. 9b tuning procedure itself.
#include "analog/solver.hpp"
#include "analog/tuning.hpp"
#include "analog/variation.hpp"
#include "bench_util.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace aflow;
  bench::banner("Ablation — process variation and tuning (Sec. 4.3)");

  const int seeds = bench::arg_int(argc, argv, "--seeds", 3);

  std::printf("[ratio invariance] die-level global scale, ideal substrate:\n");
  const auto g0 = graph::rmat(40, 170, {}, 5);
  const double exact0 = core::solve("push_relabel", g0).flow_value;
  for (double scale : {0.7, 1.0, 1.5, 2.0}) {
    analog::AnalogSolveOptions opt;
    opt.config.fidelity = analog::NegResFidelity::kIdeal;
    opt.config.parasitic_capacitance = 0.0;
    opt.config.vflow = 20.0;
    analog::VariationModel vm;
    vm.global_scale = scale;
    opt.perturb = analog::make_variation(vm);
    const auto r = analog::AnalogMaxFlowSolver(opt).solve(g0);
    std::printf("  scale %.1f: flow %.3f (err %+.4f%%)\n", scale, r.flow_value,
                100.0 * (r.flow_value - exact0) / exact0);
  }

  std::printf("\n[mismatch] NIC realisation (unrailed dynamics), Vflow = 20 V:\n");
  std::printf("%28s %12s %12s\n", "condition", "avg |err|", "worst |err|");
  bench::rule(' ', 0);
  struct Case { const char* name; double sigma; double tuned; };
  const Case cases[] = {
      {"nominal (no mismatch)", 0.0, -1.0},
      {"untrimmed 5% mismatch", 0.05, -1.0},
      {"layout-matched 1%", 0.01, -1.0},
      {"layout-matched 0.1%", 0.001, -1.0},
      {"memristive-tuned 0.1%", 0.0, 0.001},
  };
  for (const auto& c : cases) {
    double sum = 0.0, worst = 0.0;
    int ok = 0;
    for (int seed = 1; seed <= seeds; ++seed) {
      // Bounded-transient instance; R-MAT mismatch studies diverge (a
      // reproduction finding, see EXPERIMENTS.md
      // "Marginal stability on generated workloads").
      const auto g = graph::paper_example_fig5();
      const double exact = core::solve("push_relabel", g).flow_value;
      analog::AnalogSolveOptions opt;
      opt.config.fidelity = analog::NegResFidelity::kOpAmpNic;
      opt.config.parasitics_on_internal_nodes = true;
      opt.config.nic_anti_latch = false;
      opt.config.vflow = 20.0;
      analog::VariationModel vm;
      vm.mismatch_sigma = c.sigma;
      vm.tuned_tolerance = c.tuned;
      vm.seed = seed * 977;
      opt.perturb = analog::make_variation(vm);
      try {
        const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);
        const double err = r.relative_error(exact);
        sum += err;
        worst = std::max(worst, err);
        ++ok;
      } catch (const std::exception&) {
      }
    }
    if (ok > 0)
      std::printf("%28s %11.2f%% %11.2f%%   (%d/%d solved)\n", c.name,
                  100.0 * sum / ok, 100.0 * worst, ok, seeds);
    else
      std::printf("%28s %12s\n", c.name, "(all diverged)");
  }

  std::printf("\n[Fig. 9b tuning procedure] on mismatched negation widgets:\n");
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    analog::TuningOptions topt;
    topt.variation.mismatch_sigma = 0.05;
    topt.variation.seed = seed;
    const auto rep = analog::tune_negation_widget(topt);
    std::printf("  seed %llu: |Vxm + Vx| %.4f V -> %.6f V in %d rounds (%s)\n",
                static_cast<unsigned long long>(seed), rep.initial_error,
                rep.final_error, rep.rounds,
                rep.converged ? "converged" : "NOT converged");
  }
  return 0;
}

// Fig. 10: convergence time and relative error on R-MAT graphs, dense
// (|E| ~ |V|^2, Fig. 10a) and sparse (|E| ~ |V|, Fig. 10b) regimes, for
// op-amp GBW 10 GHz and 50 GHz, against the push-relabel CPU baseline.
//
// Methodology (see EXPERIMENTS.md "Convergence-time methodology"):
//  - relative error: ideal-substrate steady state (the paper's Sec. 2
//    theory) with Table-1 quantization, solved by ramped-homotopy DC;
//  - convergence time: settling time of the dynamic realisation (explicit
//    unrailed Fig. 9a NICs, 20 fF parasitics) measured on the J(t) waveform
//    with the paper's 0.1% band, on instances whose transients stay bounded;
//  - CPU time: in-repo push-relabel, -O3, instance in memory (paper
//    protocol), median of 5 runs.
#include <exception>

#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"

using namespace aflow;

namespace {

struct Row {
  int vertices = 0;
  int edges = 0;
  double exact = 0.0;
  double cpu_seconds = 0.0;
  double tconv_10g = 0.0;
  double tconv_50g = 0.0;
  double rel_error = 0.0;
  bool dynamic_failed = false;
  bool dynamic_skipped = false;
  bool dc_failed = false;
};

double measure_tconv(const graph::FlowNetwork& g, double gbw, double vflow) {
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kOpAmpNic;
  opt.config.parasitics_on_internal_nodes = true;
  opt.config.nic_anti_latch = false;
  opt.config.opamp_gbw = gbw;
  opt.config.vflow = vflow;
  opt.quantization = analog::QuantizationMode::kRound;
  opt.method = analog::SolveMethod::kTransient;
  opt.t_stop = 4e-5; // bound the integration effort per instance
  return analog::AnalogMaxFlowSolver(opt).solve(g).convergence_time;
}

Row run_instance(const graph::FlowNetwork& g, double vflow,
                 bool measure_dynamics) {
  Row row;
  row.vertices = g.num_vertices();
  row.edges = g.num_edges();

  const auto solver = core::SolverRegistry::instance().create("push_relabel");
  const auto pr = solver->solve(g);
  row.exact = pr.flow_value;
  row.cpu_seconds = bench::time_median([&] { solver->solve(g); });

  analog::AnalogSolveOptions dc;
  dc.config.fidelity = analog::NegResFidelity::kIdeal;
  dc.config.parasitic_capacitance = 0.0;
  dc.config.vflow = vflow;
  dc.quantization = analog::QuantizationMode::kRound;
  try {
    const auto r = analog::AnalogMaxFlowSolver(dc).solve(g);
    row.rel_error = r.relative_error(row.exact);
  } catch (const std::exception&) {
    row.dc_failed = true;
  }

  if (measure_dynamics) {
    try {
      row.tconv_10g = measure_tconv(g, 10e9, vflow);
      row.tconv_50g = measure_tconv(g, 50e9, vflow);
    } catch (const std::exception&) {
      row.dynamic_failed = true;
    }
  } else {
    row.dynamic_skipped = true;
  }
  return row;
}

void print_regime(const char* title, bool dense, const std::vector<int>& sizes,
                  double vflow, std::uint64_t seed, int dyn_max) {
  bench::banner(title);
  std::printf("%6s %7s %12s %12s %12s %10s %10s %9s\n", "|V|", "|E|",
              "t_conv@10G", "t_conv@50G", "push-relabel", "speedup10",
              "speedup50", "rel.err");
  bench::rule();
  double err_sum = 0.0;
  int err_count = 0;
  for (int n : sizes) {
    const auto g = dense ? graph::rmat_dense(n, seed) : graph::rmat_sparse(n, seed);
    const Row row = run_instance(g, vflow, n <= dyn_max);
    std::printf("%6d %7d ", row.vertices, row.edges);
    if (row.dynamic_skipped) std::printf("%12s %12s ", "-", "-");
    else if (row.dynamic_failed)
      std::printf("%12s %12s ", "(diverged)", "(diverged)");
    else std::printf("%12.3e %12.3e ", row.tconv_10g, row.tconv_50g);
    std::printf("%12.3e ", row.cpu_seconds);
    if (row.dynamic_failed || row.dynamic_skipped)
      std::printf("%10s %10s ", "-", "-");
    else std::printf("%10.0f %10.0f ", row.cpu_seconds / row.tconv_10g,
                     row.cpu_seconds / row.tconv_50g);
    if (row.dc_failed) std::printf("%9s\n", "-");
    else {
      std::printf("%8.2f%%\n", 100.0 * row.rel_error);
      err_sum += row.rel_error;
      err_count++;
    }
  }
  bench::rule();
  if (err_count > 0)
    std::printf("average relative error: %.2f%%  (paper: 3.7%% dense / 5.4%% "
                "sparse, all <= 8%%)\n\n",
                100.0 * err_sum / err_count);
}

} // namespace

int main(int argc, char** argv) {
  // Paper range: 256..960. Default here is a reduced sweep that finishes in
  // minutes on a laptop; --paper runs the full range.
  std::vector<int> sizes = {256, 448, 640};
  if (bench::arg_flag(argc, argv, "--paper"))
    sizes = {256, 320, 384, 448, 512, 576, 640, 704, 768, 832, 896, 960};
  const double vflow = bench::arg_double(argc, argv, "--vflow", 10.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(bench::arg_int(argc, argv, "--seed", 7));
  // The unrailed dynamic model is only integrated where its start-up
  // transient stays bounded (see EXPERIMENTS.md
  // "Marginal stability on generated workloads").
  const int dyn_max = bench::arg_int(argc, argv, "--dyn-max", 256);

  print_regime("Fig. 10a — dense graphs (|E| ~ |V|^2), R-MAT", true, sizes,
               vflow, seed, dyn_max);
  print_regime("Fig. 10b — sparse graphs (|E| ~ |V|), R-MAT", false, sizes,
               vflow, seed, dyn_max);

  // Dynamic settling on instances whose start-up transients stay bounded
  // (the marginal widgets make R-MAT instances diverge; see EXPERIMENTS.md
  // "Marginal stability on generated workloads").
  bench::banner("dynamic settling times (bounded instances, unrailed NIC model)");
  std::printf("%22s %6s %6s %12s %12s %12s %10s\n", "instance", "|V|", "|E|",
              "t_conv@10G", "t_conv@50G", "push-relabel", "speedup10");
  bench::rule();
  std::vector<std::pair<std::string, graph::FlowNetwork>> dyn;
  dyn.emplace_back("fig5", graph::paper_example_fig5());
  for (int layers : {2, 4, 8, 12})
    dyn.emplace_back("layered-" + std::to_string(layers),
                     graph::layered_random(layers, 2, 2, 8, 5));
  for (auto& [name, g] : dyn) {
    const auto solver = core::SolverRegistry::instance().create("push_relabel");
    const double cpu = bench::time_median([&, &g = g] { solver->solve(g); });
    try {
      const double t10 = measure_tconv(g, 10e9, vflow);
      const double t50 = measure_tconv(g, 50e9, vflow);
      std::printf("%22s %6d %6d %12.3e %12.3e %12.3e %10.0f\n", name.c_str(),
                  g.num_vertices(), g.num_edges(), t10, t50, cpu, cpu / t10);
    } catch (const std::exception&) {
      std::printf("%22s %6d %6d %12s %12s %12.3e %10s\n", name.c_str(),
                  g.num_vertices(), g.num_edges(), "(diverged)", "(diverged)",
                  cpu, "-");
    }
  }
  bench::rule();
  std::printf("notes: convergence time is the settling time of the dynamic "
              "model (J(t) within 0.1%%\nof final); relative error "
              "comes from the ideal-substrate steady state at Vflow=%.0fV. "
              "See\nEXPERIMENTS.md \"Marginal stability on generated workloads\" "
              "and the paper-vs-measured comparison.\n",
              vflow);
  return 0;
}

// Batch-engine scaling bench (acceptance gate of the engine PR): 64 generated
// instances (grid + random, ~1k nodes each) solved by the BatchEngine in
// 1-thread and N-thread mode. Reports wall-clock speedup and verifies the
// flow values are identical across thread counts.
//
//   bench_batch_engine [--solver dinic] [--threads 8] [--reps 3]
//                      [--batch SPEC] [--min-speedup X]
//
// --min-speedup X fails the run (exit 1) when the N-thread speedup over the
// single-thread baseline is below X — the acceptance gate for scaling
// regressions. Default 0 (report only), because shared CI runners are too
// noisy for a hard wall-clock gate.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "core/batch_engine.hpp"
#include "core/workload.hpp"

using namespace aflow;

int main(int argc, char** argv) {
  const std::string solver = bench::arg_string(argc, argv, "--solver", "dinic");
  const int threads = bench::arg_int(argc, argv, "--threads", 8);
  const int reps = bench::arg_int(argc, argv, "--reps", 3);
  const double min_speedup = bench::arg_double(argc, argv, "--min-speedup", 0.0);
  // 31x31 grid-cut graphs have 963 vertices; the random instances are sized
  // to match (~1k nodes each), 64 instances total.
  const std::string spec = bench::arg_string(
      argc, argv, "--batch",
      "grid:side=31,count=32,seed=1;uniform:n=1000,m=8000,cap=64,count=32,seed=101");

  bench::banner("BatchEngine scaling: 1 thread vs " + std::to_string(threads) +
                " threads, solver=" + solver);
  const auto instances = core::load_batch(spec);
  std::printf("instances: %zu  (spec: %s)\n\n", instances.size(), spec.c_str());

  core::BatchOptions single;
  single.solver = solver;
  single.deterministic = true;
  core::BatchOptions multi;
  multi.solver = solver;
  multi.num_threads = threads;

  const core::BatchEngine engine1(single);
  const core::BatchEngine engineN(multi);

  // Reference results once, for the cross-thread-count identity check.
  const auto r1 = engine1.run(instances);
  const auto rn = engineN.run(instances);
  if (r1.failed != 0 || rn.failed != 0) {
    std::fprintf(stderr, "FAIL: %d/%d instances failed\n", r1.failed,
                 rn.failed);
    return 1;
  }
  for (size_t i = 0; i < instances.size(); ++i) {
    const double f1 = r1.outcomes[i].result.flow_value;
    const double fn = rn.outcomes[i].result.flow_value;
    if (f1 != fn) {
      std::fprintf(stderr,
                   "FAIL: instance %zu flow differs across thread counts "
                   "(%.17g vs %.17g)\n",
                   i, f1, fn);
      return 1;
    }
  }
  std::printf("flow identity across thread counts: OK (total flow %.10g)\n\n",
              r1.total_flow);

  const double t1 =
      bench::time_median([&] { engine1.run(instances); }, reps);
  const double tn =
      bench::time_median([&] { engineN.run(instances); }, reps);
  const double speedup = tn > 0.0 ? t1 / tn : 0.0;

  bench::rule();
  std::printf("%-28s %12s %12s\n", "mode", "wall [ms]", "inst/s");
  bench::rule();
  std::printf("%-28s %12.2f %12.1f\n", "1 thread (deterministic)", t1 * 1e3,
              instances.size() / t1);
  std::printf("%-28s %12.2f %12.1f\n",
              (std::to_string(threads) + " threads").c_str(), tn * 1e3,
              instances.size() / tn);
  bench::rule();
  std::printf("speedup: %.2fx", speedup);
  if (min_speedup > 0.0) std::printf("  (gate: %.2fx)", min_speedup);
  std::printf("\n");
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below gate %.2fx\n", speedup,
                 min_speedup);
    return 1;
  }
  return 0;
}

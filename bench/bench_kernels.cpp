// Microbenchmarks (google-benchmark) of the computational kernels under the
// reproduction: sparse LU on substrate matrices, the DC operating-point
// solve, graph generation, and the CPU max-flow baselines.
#include <benchmark/benchmark.h>

#include "analog/solver.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"
#include "la/lu.hpp"
#include "sim/dc.hpp"

using namespace aflow;

namespace {

analog::MaxFlowCircuit make_circuit(int n) {
  const auto g = graph::rmat_sparse(n, 7);
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0;
  return analog::AnalogMaxFlowSolver(opt).map(g);
}

void BM_SparseLuFactor(benchmark::State& state) {
  auto c = make_circuit(static_cast<int>(state.range(0)));
  circuit::MnaAssembler mna(c.netlist);
  auto devstate = circuit::DeviceState::initial(c.netlist);
  la::Triplets t;
  std::vector<double> rhs;
  mna.assemble(devstate, {}, t, rhs);
  const auto m = la::SparseMatrix::from_triplets(t);
  for (auto _ : state) {
    la::SparseLU lu;
    lu.factor(m);
    benchmark::DoNotOptimize(lu.factor_nnz());
  }
  state.counters["unknowns"] = static_cast<double>(m.rows());
}
BENCHMARK(BM_SparseLuFactor)->Arg(64)->Arg(128)->Arg(256);

void BM_SparseLuSolve(benchmark::State& state) {
  auto c = make_circuit(static_cast<int>(state.range(0)));
  circuit::MnaAssembler mna(c.netlist);
  auto devstate = circuit::DeviceState::initial(c.netlist);
  la::Triplets t;
  std::vector<double> rhs;
  mna.assemble(devstate, {}, t, rhs);
  const auto m = la::SparseMatrix::from_triplets(t);
  la::SparseLU lu;
  lu.factor(m);
  std::vector<double> x(rhs.size());
  for (auto _ : state) {
    lu.solve(rhs, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SparseLuSolve)->Arg(64)->Arg(128)->Arg(256);

void BM_AnalogDcSolve(benchmark::State& state) {
  const auto g = graph::rmat_sparse(static_cast<int>(state.range(0)), 7);
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0;
  analog::AnalogMaxFlowSolver solver(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(g).flow_value);
  }
}
BENCHMARK(BM_AnalogDcSolve)->Arg(64)->Arg(128);

void BM_PushRelabel(benchmark::State& state) {
  const auto g = graph::rmat_sparse(static_cast<int>(state.range(0)), 7);
  const auto solver = core::SolverRegistry::instance().create("push_relabel");
  for (auto _ : state)
    benchmark::DoNotOptimize(solver->solve(g).flow_value);
}
BENCHMARK(BM_PushRelabel)->Arg(256)->Arg(512)->Arg(960);

void BM_Dinic(benchmark::State& state) {
  const auto g = graph::rmat_sparse(static_cast<int>(state.range(0)), 7);
  const auto solver = core::SolverRegistry::instance().create("dinic");
  for (auto _ : state) benchmark::DoNotOptimize(solver->solve(g).flow_value);
}
BENCHMARK(BM_Dinic)->Arg(256)->Arg(512)->Arg(960);

void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        graph::rmat_sparse(static_cast<int>(state.range(0)), 7).num_edges());
}
BENCHMARK(BM_RmatGeneration)->Arg(256)->Arg(960);

} // namespace

BENCHMARK_MAIN();

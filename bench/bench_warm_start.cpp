// Cross-instance warm-start gates (core::ReusePool), on the paper's
// reconfiguration scenario: one crossbar topology, reprogrammed capacities.
//
// Gate A — DC reconfiguration batch, warm vs cold: both paths run the
// pattern-stable refactor fast path with a shared ordering cache; the warm
// path additionally consults a ReusePool (factored LU prototypes + carried
// Newton/device state, homotopy skipped at full drive). Asserts
//   (a) per-instance flows agree to 1e-9,
//   (b) the pool engages (>= count-1 warm starts, prototype refactors, at
//       most one full factorisation),
//   (c) wall-clock speedup >= --min-speedup (default 1.3x).
//
// Gate B — transient path, reuse vs legacy: the factorisation-reuse +
// incremental-RHS transient engine against the rebuild-per-event baseline
// (the transient counterpart of bench_lu_reuse's DC gate). Asserts flow
// identity, RHS-refresh engagement, and speedup >= --min-transient-speedup
// (default 1.5x).
//
//   bench_warm_start [--batch SPEC] [--transient-batch SPEC] [--reps 3]
//                    [--min-speedup 1.3] [--min-transient-speedup 1.5]
//                    [--smoke] [--json FILE]
//
// --smoke shrinks the workloads and drops the wall-clock gates (CI machines
// are too noisy for timing assertions) while keeping every correctness and
// engagement assertion.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "core/workload.hpp"
#include "util/json.hpp"

using namespace aflow;

namespace {

struct PathTotals {
  double flow = 0.0;
  std::vector<double> flows;
  long long dc_iterations = 0;
  long long full_factors = 0;
  long long refactors = 0;
  long long prototype_refactors = 0;
  long long rhs_refreshes = 0;
  long long solves = 0;
  int warm_started = 0;
};

analog::AnalogSolveOptions dc_options(bool warm) {
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0;
  opt.config.dedicated_level_sources = true; // pattern = f(topology) only
  opt.method = analog::SolveMethod::kSteadyState;
  opt.ordering_cache = std::make_shared<la::OrderingCache>();
  if (warm) opt.reuse_pool = std::make_shared<core::ReusePool>();
  return opt;
}

analog::AnalogSolveOptions transient_options(bool reuse) {
  analog::AnalogSolveOptions opt;
  // kLag with a small stability margin: dynamics rich enough to integrate,
  // stable enough to settle on reconfiguration workloads (the idealised
  // negative resistors diverge under capacitive load on larger graphs).
  opt.config.fidelity = analog::NegResFidelity::kLag;
  opt.config.stability_margin = 0.05;
  opt.config.parasitic_capacitance = 20e-15;
  opt.config.vflow = 10.0;
  opt.config.dedicated_level_sources = true;
  opt.method = analog::SolveMethod::kTransient;
  opt.reuse_factorization = reuse;
  if (reuse) {
    opt.ordering_cache = std::make_shared<la::OrderingCache>();
    opt.reuse_pool = std::make_shared<core::ReusePool>();
  }
  return opt;
}

/// One pass over the batch through one solver (fresh pools per call, as a
/// batch worker would see them).
PathTotals run_path(const std::vector<graph::FlowNetwork>& instances,
                    const analog::AnalogSolveOptions& options) {
  const analog::AnalogMaxFlowSolver solver(options);
  PathTotals t;
  for (const auto& net : instances) {
    const analog::AnalogFlowResult r = solver.solve(net);
    t.flow += r.flow_value;
    t.flows.push_back(r.flow_value);
    t.dc_iterations += r.dc_iterations;
    t.full_factors += r.full_factors;
    t.refactors += r.refactors;
    t.prototype_refactors += r.prototype_refactors;
    t.rhs_refreshes += r.rhs_refreshes;
    t.solves += r.solves;
    if (r.warm_started) t.warm_started++;
  }
  return t;
}

bool flows_agree(const PathTotals& a, const PathTotals& b, const char* what) {
  for (size_t i = 0; i < a.flows.size(); ++i) {
    const double scale = std::max(1.0, std::abs(a.flows[i]));
    if (std::abs(a.flows[i] - b.flows[i]) > 1e-9 * scale) {
      std::fprintf(stderr,
                   "FAIL(%s): instance %zu flow differs (%.17g vs %.17g)\n",
                   what, i, a.flows[i], b.flows[i]);
      return false;
    }
  }
  return true;
}

struct GateResult {
  std::string name;
  double speedup = 0.0;
  double threshold = 0.0;
  double base_ms = 0.0;
  double fast_ms = 0.0;
  bool timed = false;
};

} // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::arg_flag(argc, argv, "--smoke");
  const int reps = bench::arg_int(argc, argv, "--reps", smoke ? 1 : 3);
  const double min_speedup =
      bench::arg_double(argc, argv, "--min-speedup", smoke ? 0.0 : 1.3);
  const double min_tr_speedup = bench::arg_double(
      argc, argv, "--min-transient-speedup", smoke ? 0.0 : 1.5);
  const std::string dc_spec =
      bench::arg_string(argc, argv, "--batch",
                        smoke ? "grid:side=6,seed=5,vary=6"
                              : "grid:side=13,seed=5,vary=32");
  const std::string tr_spec =
      bench::arg_string(argc, argv, "--transient-batch",
                        smoke ? "grid:side=4,seed=5,vary=4"
                              : "grid:side=6,seed=5,vary=6");
  const std::string json_path = bench::arg_string(argc, argv, "--json", "");

  bench::banner("Cross-instance warm start: reconfiguration batches through "
                "the ReusePool");

  // ---------------------------------------------------------------- gate A
  const auto dc_instances = core::load_batch(dc_spec);
  std::printf("DC reconfiguration batch: %zu instances (spec: %s)\n",
              dc_instances.size(), dc_spec.c_str());

  const auto cold_opt = dc_options(/*warm=*/false);
  const auto warm_opt = dc_options(/*warm=*/true);
  const PathTotals cold = run_path(dc_instances, cold_opt);
  const PathTotals warm = run_path(dc_instances, warm_opt);

  if (!flows_agree(cold, warm, "dc")) return 1;
  const int n = static_cast<int>(dc_instances.size());
  if (warm.warm_started < n - 1) {
    std::fprintf(stderr,
                 "FAIL: warm start engaged on %d/%d instances (want >= %d)\n",
                 warm.warm_started, n, n - 1);
    return 1;
  }
  if (warm.prototype_refactors < n - 1) {
    std::fprintf(stderr,
                 "FAIL: only %lld prototype refactors (want >= %d)\n",
                 warm.prototype_refactors, n - 1);
    return 1;
  }
  if (warm.full_factors > 1) {
    std::fprintf(stderr,
                 "FAIL: warm path ran %lld full factorisations (want <= 1)\n",
                 warm.full_factors);
    return 1;
  }
  std::printf("flow identity cold vs warm: OK (total %.10g)\n", warm.flow);
  std::printf("cold: %lld DC iterations, %lld full factorisations\n",
              cold.dc_iterations, cold.full_factors);
  std::printf("warm: %lld DC iterations, %lld full factorisations, "
              "%lld prototype refactors, %d/%d warm-started\n\n",
              warm.dc_iterations, warm.full_factors,
              warm.prototype_refactors, warm.warm_started, n);

  // ---------------------------------------------------------------- gate B
  const auto tr_instances = core::load_batch(tr_spec);
  std::printf("transient batch: %zu instances (spec: %s)\n",
              tr_instances.size(), tr_spec.c_str());

  const auto tr_base_opt = transient_options(/*reuse=*/false);
  const auto tr_fast_opt = transient_options(/*reuse=*/true);
  const PathTotals tr_base = run_path(tr_instances, tr_base_opt);
  const PathTotals tr_fast = run_path(tr_instances, tr_fast_opt);

  if (!flows_agree(tr_base, tr_fast, "transient")) return 1;
  if (tr_fast.rhs_refreshes == 0) {
    std::fprintf(stderr, "FAIL: transient incremental RHS never engaged\n");
    return 1;
  }
  if (tr_fast.refactors == 0) {
    std::fprintf(stderr, "FAIL: transient refactor fast path never engaged\n");
    return 1;
  }
  std::printf("flow identity legacy vs reuse: OK (total %.10g)\n",
              tr_fast.flow);
  std::printf("legacy: %lld solves, %lld full factorisations\n",
              tr_base.solves, tr_base.full_factors);
  std::printf("reuse:  %lld solves, %lld full factorisations, %lld "
              "refactors, %lld RHS-only refreshes\n\n",
              tr_fast.solves, tr_fast.full_factors, tr_fast.refactors,
              tr_fast.rhs_refreshes);

  // ------------------------------------------------------------- wall clock
  std::vector<GateResult> gates;
  gates.push_back({"dc_warm_vs_cold", 0.0, min_speedup, 0.0, 0.0, false});
  gates.push_back(
      {"transient_reuse_vs_legacy", 0.0, min_tr_speedup, 0.0, 0.0, false});

  if (!smoke) {
    {
      const double t_cold = bench::time_median(
          [&] { run_path(dc_instances, dc_options(false)); }, reps);
      const double t_warm = bench::time_median(
          [&] { run_path(dc_instances, dc_options(true)); }, reps);
      gates[0].base_ms = t_cold * 1e3;
      gates[0].fast_ms = t_warm * 1e3;
      gates[0].speedup = t_warm > 0.0 ? t_cold / t_warm : 0.0;
      gates[0].timed = true;
    }
    {
      const double t_base = bench::time_median(
          [&] { run_path(tr_instances, transient_options(false)); }, reps);
      const double t_fast = bench::time_median(
          [&] { run_path(tr_instances, transient_options(true)); }, reps);
      gates[1].base_ms = t_base * 1e3;
      gates[1].fast_ms = t_fast * 1e3;
      gates[1].speedup = t_fast > 0.0 ? t_base / t_fast : 0.0;
      gates[1].timed = true;
    }

    bench::rule();
    std::printf("%-32s %12s %12s %9s %7s\n", "gate", "base [ms]", "fast [ms]",
                "speedup", "gate");
    bench::rule();
    for (const GateResult& g : gates)
      std::printf("%-32s %12.2f %12.2f %8.2fx %6.2fx\n", g.name.c_str(),
                  g.base_ms, g.fast_ms, g.speedup, g.threshold);
    bench::rule();
  }

  if (!json_path.empty()) {
    util::JsonWriter j;
    j.begin_object();
    j.field("schema", "aflow-bench-v1");
    j.field("bench", "warm_start");
    j.field("smoke", smoke);
    j.key("dc").begin_object();
    j.field("batch", dc_spec);
    j.field("instances", dc_instances.size());
    // Totals of the cold- vs warm-configured runs — deliberately NOT named
    // warm_iterations/cold_iterations, which in aflow_cli's metrics block
    // mean the DcStats per-solve attribution split.
    j.field("iterations_cold_run", cold.dc_iterations);
    j.field("iterations_warm_run", warm.dc_iterations);
    j.field("warm_started_instances", warm.warm_started);
    j.field("warm_full_factors", warm.full_factors);
    j.field("prototype_refactors", warm.prototype_refactors);
    j.field("wall_ms_cold", gates[0].base_ms);
    j.field("wall_ms_warm", gates[0].fast_ms);
    j.end_object();
    j.key("transient").begin_object();
    j.field("batch", tr_spec);
    j.field("instances", tr_instances.size());
    j.field("solves", tr_fast.solves);
    j.field("refactors", tr_fast.refactors);
    j.field("rhs_refreshes", tr_fast.rhs_refreshes);
    j.field("wall_ms_legacy", gates[1].base_ms);
    j.field("wall_ms_reuse", gates[1].fast_ms);
    j.end_object();
    j.key("gates").begin_array();
    for (const GateResult& g : gates)
      bench::json_gate(j, g.name, g.timed, g.speedup, g.threshold);
    j.end_array();
    j.end_object();
    util::write_json_file(json_path, j.str());
    std::printf("json: %s\n", json_path.c_str());
  }

  bool ok = true;
  for (const GateResult& g : gates) {
    if (g.timed && g.threshold > 0.0 && g.speedup < g.threshold) {
      std::fprintf(stderr, "FAIL: %s speedup %.2fx below gate %.2fx\n",
                   g.name.c_str(), g.speedup, g.threshold);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

// Sec. 6.4: dual decomposition. Split graphs that exceed one substrate into
// two overlapping regions and iterate subproblem min-cuts to global
// agreement.
#include "bench_util.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"
#include "mincut/decomposition.hpp"

int main(int argc, char** argv) {
  using namespace aflow;
  bench::banner("Sec. 6.4 — dual decomposition of large instances");

  const int seeds = bench::arg_int(argc, argv, "--seeds", 6);
  std::printf("%6s %6s %7s %10s %10s %7s %8s %8s %8s\n", "|V|", "|E|", "seed",
              "exact cut", "decomp", "iters", "agreed", "size M", "size N");
  bench::rule();
  int agreements = 0;
  int optimal = 0;
  int total = 0;
  for (int n : {200, 400, 800}) {
    for (int seed = 1; seed <= seeds / 2; ++seed) {
      const auto g = graph::rmat_sparse(n, seed);
      const auto exact = flow::min_cut_from_flow(g, core::solve("push_relabel", g));
      mincut::DecompositionOptions opt;
      opt.max_iterations = 80;
      const auto r = mincut::solve_by_decomposition(g, opt);
      ++total;
      agreements += r.agreed;
      optimal += std::abs(r.cut_value - exact.cut_value) < 1e-6;
      std::printf("%6d %6d %7d %10.0f %10.0f %7d %8s %8d %8d\n",
                  g.num_vertices(), g.num_edges(), seed, exact.cut_value,
                  r.cut_value, r.iterations, r.agreed ? "yes" : "no",
                  r.subproblem_vertices_m, r.subproblem_vertices_n);
    }
  }
  bench::rule();
  std::printf("overlap agreement on %d/%d instances; optimal merged cut on "
              "%d/%d.\nAgreement certifies optimality (strong duality, "
              "Sec. 6.4); disagreement cases carry the\nsubgradient plateau "
              "typical of dual decomposition on graphs with many optimal cuts.\n",
              agreements, total, optimal, total);
  return 0;
}

// Sec. 6.3 (Figs. 12-14): the min-cut dual circuit. For a corpus of
// instances, compare the analog dual solve against the exact min cut:
// thresholded-partition cut value, continuous objective, and the recovered
// flow (dual variables).
#include "bench_util.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"
#include "mincut/dual_circuit.hpp"

int main(int argc, char** argv) {
  using namespace aflow;
  bench::banner("Sec. 6.3 — analog min-cut via the dual LP circuit");

  const int seeds = bench::arg_int(argc, argv, "--seeds", 8);
  std::printf("%6s %6s %6s %10s %12s %12s %10s %8s\n", "seed", "|V|", "|E|",
              "exact cut", "partition", "objective", "flow r/o", "DC iters");
  bench::rule();

  int exact_partitions = 0;
  int solved = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    const auto g = graph::rmat(24, 80, {}, seed);
    const auto cut = flow::min_cut_from_flow(g, core::solve("push_relabel", g));
    try {
      const auto r = mincut::solve_mincut_dual(g);
      double side_cut = 0.0;
      for (const auto& e : g.edges())
        if (r.side[e.from] && !r.side[e.to]) side_cut += e.capacity;
      ++solved;
      if (std::abs(side_cut - cut.cut_value) < 1e-6) ++exact_partitions;
      std::printf("%6d %6d %6d %10.0f %12.0f %12.2f %10.2f %8d\n", seed,
                  g.num_vertices(), g.num_edges(), cut.cut_value, side_cut,
                  r.cut_value, r.flow_value, r.dc_iterations);
    } catch (const std::exception&) {
      std::printf("%6d %6d %6d %10.0f %12s\n", seed, g.num_vertices(),
                  g.num_edges(), cut.cut_value, "(no op point)");
    }
  }
  bench::rule();
  std::printf("thresholded p-partition recovered the exact min cut on %d/%d "
              "solved instances.\nThe continuous objective overshoots by the "
              "widget-coupling distortion; the recovered flow\nreadout is "
              "qualitative (uncalibrated scale). See EXPERIMENTS.md "
              "\"Min-cut dual: qualitative flow readout\".\n",
              exact_partitions, solved);
  return 0;
}

// Fig. 8: voltage-level quantization on the Fig. 5 instance with N = 20 and
// Vdd = 1 V. The paper reports quantized levels {1.0, 0.65, 0.35, 0.35,
// 0.65} V, circuit solution 0.7 V and |f| = 2.1 (5% deviation from the
// exact 2).
#include "analog/quantize.hpp"
#include "analog/solver.hpp"
#include "bench_util.hpp"
#include "core/registry.hpp"
#include "flow/maxflow.hpp"
#include "graph/network.hpp"

int main() {
  using namespace aflow;
  bench::banner("Fig. 8 — voltage level quantization (N = 20, Vdd = 1 V)");

  const auto g = graph::paper_example_fig5();
  const double exact = core::solve("push_relabel", g).flow_value;
  const analog::Quantizer q(1.0, 20, g.max_capacity(),
                            analog::QuantizationMode::kRound);

  std::printf("%-6s %-10s %-12s %-12s\n", "edge", "capacity", "Q(c) paper",
              "Q(c) ours");
  const double paper_q[5] = {1.00, 0.65, 0.35, 0.35, 0.65};
  for (int e = 0; e < g.num_edges(); ++e)
    std::printf("x%-5d %-10.0f %-12.2f %-12.2f\n", e + 1, g.edge(e).capacity,
                paper_q[e], q.to_voltage(g.edge(e).capacity));
  std::printf("worst-case per-edge error e = C/N = %.3f flow units\n\n",
              q.worst_case_error());

  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0; // enough drive to saturate this instance's cut
  opt.quantization = analog::QuantizationMode::kRound;
  opt.config.voltage_levels = 20;
  const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);

  std::printf("%-42s %10s\n", "quantity", "value");
  bench::rule('-', 54);
  std::printf("%-42s %10.3f\n", "exact max flow (before quantization)", exact);
  std::printf("%-42s %10.3f\n", "circuit flow value (volts)",
              r.flow_value / g.max_capacity());
  std::printf("%-42s %10.3f\n", "approximate |f| after de-quantization",
              r.flow_value);
  std::printf("%-42s %9.2f%%\n", "deviation from exact",
              100.0 * (r.flow_value - exact) / exact);
  std::printf("\npaper: circuit solution 0.7 V -> |f| = 2.1 (+5%%). Our ideal-"
              "diode circuit settles at the\nquantized optimum 0.65 V -> 1.95 "
              "(-2.5%%); the paper's +5%% sign indicates soft diode knees\n"
              "in their SPICE run (see EXPERIMENTS.md "
              "\"Quantization: the sign of the error\").\n");
  return 0;
}

// Shared helpers for the reproduction benches: wall-clock timing of the CPU
// baseline and consistent table printing. Argv parsing lives in
// util/args.hpp (shared with the aflow CLI) and is re-exported here.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/args.hpp"

namespace aflow::bench {

using util::arg_double;
using util::arg_flag;
using util::arg_int;
using util::arg_string;

/// Median wall-clock seconds of `fn` over `reps` runs (after one warm-up).
inline double time_median(const std::function<void()>& fn, int reps = 5) {
  using Clock = std::chrono::steady_clock;
  fn(); // warm-up
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    times.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void rule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void banner(const std::string& title) {
  rule('=');
  std::printf("%s\n", title.c_str());
  rule('=');
}

} // namespace aflow::bench

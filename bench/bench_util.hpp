// Shared helpers for the reproduction benches: wall-clock timing of the CPU
// baseline and consistent table printing. Argv parsing lives in
// util/args.hpp (shared with the aflow CLI) and is re-exported here.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/args.hpp"
#include "util/json.hpp"

namespace aflow::bench {

using util::arg_double;
using util::arg_flag;
using util::arg_int;
using util::arg_string;

/// Appends one aflow-bench-v1 gate record — the single definition of the
/// {name, timed, speedup, threshold, pass} shape shared by the gated
/// benches, so JSON consumers see one schema. An untimed gate (smoke mode)
/// or a threshold <= 0 passes by definition.
inline void json_gate(util::JsonWriter& j, std::string_view name, bool timed,
                      double speedup, double threshold) {
  j.begin_object();
  j.field("name", name);
  j.field("timed", timed);
  j.field("speedup", speedup);
  j.field("threshold", threshold);
  j.field("pass", !timed || threshold <= 0.0 || speedup >= threshold);
  j.end_object();
}

/// Median wall-clock seconds of `fn` over `reps` runs (after one warm-up).
inline double time_median(const std::function<void()>& fn, int reps = 5) {
  using Clock = std::chrono::steady_clock;
  fn(); // warm-up
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    times.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void rule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void banner(const std::string& title) {
  rule('=');
  std::printf("%s\n", title.c_str());
  rule('=');
}

} // namespace aflow::bench

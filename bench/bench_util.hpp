// Shared helpers for the reproduction benches: tiny argv parsing, wall-clock
// timing of the CPU baseline, and consistent table printing.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace aflow::bench {

/// Returns the value following `--key` in argv, or `fallback`.
inline std::string arg_string(int argc, char** argv, const char* key,
                              std::string fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], key) == 0) return argv[i + 1];
  return fallback;
}

inline double arg_double(int argc, char** argv, const char* key, double fallback) {
  const std::string s = arg_string(argc, argv, key, "");
  return s.empty() ? fallback : std::stod(s);
}

inline int arg_int(int argc, char** argv, const char* key, int fallback) {
  const std::string s = arg_string(argc, argv, key, "");
  return s.empty() ? fallback : std::stoi(s);
}

inline bool arg_flag(int argc, char** argv, const char* key) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], key) == 0) return true;
  return false;
}

/// Median wall-clock seconds of `fn` over `reps` runs (after one warm-up).
inline double time_median(const std::function<void()>& fn, int reps = 5) {
  using Clock = std::chrono::steady_clock;
  fn(); // warm-up
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    times.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void rule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void banner(const std::string& title) {
  rule('=');
  std::printf("%s\n", title.c_str());
  rule('=');
}

} // namespace aflow::bench

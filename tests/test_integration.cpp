// Cross-module integration: the full substrate lifecycle and the pipelines
// a downstream user would run.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "analog/crossbar.hpp"
#include "analog/power.hpp"
#include "analog/solver.hpp"
#include "arch/clustered.hpp"
#include "flow/maxflow.hpp"
#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "mincut/dual_circuit.hpp"

namespace analog = aflow::analog;
namespace arch = aflow::arch;
namespace flow = aflow::flow;
namespace graph = aflow::graph;
namespace mincut = aflow::mincut;

TEST(Integration, FullLifecycleProgramComputeReadout) {
  // Generate -> size the crossbar -> program (Sec. 3.1) -> compute
  // (Sec. 3.2) -> read out -> compare with the CPU baseline.
  const auto g = graph::rmat(48, 220, {}, 33);
  const double exact = flow::push_relabel(g).flow_value;

  analog::Crossbar xbar(g.num_vertices(), g.num_vertices(), {});
  const auto prog = xbar.program(analog::Crossbar::cells_for_graph(g));
  ASSERT_TRUE(prog.success);
  EXPECT_EQ(prog.cycles, g.num_vertices());

  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 50.0;
  opt.config.diode.r_on = 0.01;
  opt.quantization = analog::QuantizationMode::kRound;
  opt.config.voltage_levels = 20;
  opt.perturb = xbar.link_perturbation(g);

  const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);
  EXPECT_LT(r.relative_error(exact), 0.08); // the paper's error envelope

  // Power accounting for this instance.
  const auto power = analog::estimate_power(g, {});
  EXPECT_GT(power.active_opamps, 0);
  EXPECT_LT(power.total(), 5.0); // well inside the 5 W embedded budget
}

TEST(Integration, DimacsPipelineMatchesInMemory) {
  const auto g = graph::rmat(32, 120, {}, 8);
  std::stringstream ss;
  graph::write_dimacs(ss, g);
  const auto g2 = graph::read_dimacs(ss);

  const double f1 = flow::dinic(g).flow_value;
  const double f2 = flow::dinic(g2).flow_value;
  EXPECT_DOUBLE_EQ(f1, f2);

  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 50.0;
  const auto r1 = analog::AnalogMaxFlowSolver(opt).solve(g);
  const auto r2 = analog::AnalogMaxFlowSolver(opt).solve(g2);
  EXPECT_NEAR(r1.flow_value, r2.flow_value, 1e-9);
}

TEST(Integration, MaxFlowMinCutDualityAcrossSolvers) {
  // Three independent routes to the same number: CPU max-flow, analog
  // max-flow, analog min-cut partition.
  const auto g = graph::rmat(28, 100, {}, 13);
  const auto mf = flow::push_relabel(g);
  const auto cut = flow::min_cut_from_flow(g, mf);
  ASSERT_NEAR(mf.flow_value, cut.cut_value, 1e-9);

  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 50.0;
  opt.config.diode.r_on = 0.01;
  const auto analog_flow = analog::AnalogMaxFlowSolver(opt).solve(g);
  EXPECT_LT(analog_flow.relative_error(mf.flow_value), 0.05);

  const auto analog_cut = mincut::solve_mincut_dual(g);
  double side_cut = 0.0;
  for (const auto& e : g.edges())
    if (analog_cut.side[e.from] && !analog_cut.side[e.to]) side_cut += e.capacity;
  EXPECT_NEAR(side_cut, cut.cut_value, 1e-6);
}

TEST(Integration, VisionWorkloadSegmentsCleanly) {
  // A two-blob synthetic image: the min cut should separate the blobs.
  const int h = 6, w = 9;
  std::vector<double> src(h * w, 0.0), snk(h * w, 0.0);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const int p = y * w + x;
      if (x < 3) src[p] = 8.0;        // strongly foreground
      else if (x >= 6) snk[p] = 8.0;  // strongly background
    }
  const auto g = graph::grid_cut_graph(h, w, src, snk, 1.0);
  const auto mf = flow::push_relabel(g);
  const auto cut = flow::min_cut_from_flow(g, mf);

  // The cut must cross the middle band: cost = h * lambda * (1 boundary).
  EXPECT_NEAR(cut.cut_value, h * 1.0, 1e-9 + h * 1.0);
  for (int y = 0; y < h; ++y) {
    EXPECT_TRUE(cut.side[y * w + 0]);      // foreground pixels source-side
    EXPECT_FALSE(cut.side[y * w + w - 1]); // background pixels sink-side
  }
}

TEST(Integration, OversizedGraphNeedsClusteredMapping) {
  // A graph larger than one crossbar must go through the Sec. 6.2 flow.
  const auto g = graph::rmat_sparse(200, 17);
  arch::ArchSpec spec;
  spec.island_capacity = 64;
  spec.channel_width = 4096;
  const auto m = arch::map_to_islands(g, spec, 17);
  EXPECT_TRUE(m.routed);
  EXPECT_GE(m.islands, (g.num_vertices() + 63) / 64);

  // Islands host subcircuits no larger than their capacity.
  std::vector<int> load(m.islands, 0);
  for (int v = 0; v < g.num_vertices(); ++v) load[m.vertex_island[v]]++;
  for (int c : load) EXPECT_LE(c, spec.island_capacity);
}

TEST(Integration, QuantizationErrorBoundHoldsEndToEnd) {
  // Per-edge worst-case quantization error is C/N (Sec. 4.1); the end-to-
  // end flow error of the quantized *instance* is bounded by the cut size
  // times C/N. Verify against the exact quantized optimum.
  for (int seed : {1, 2, 3}) {
    const auto g = graph::rmat(40, 170, {}, seed);
    const double c_max = g.max_capacity();
    const int levels = 20;
    analog::Quantizer q(1.0, levels, c_max, analog::QuantizationMode::kRound);

    graph::FlowNetwork gq(g.num_vertices(), g.source(), g.sink());
    for (const auto& e : g.edges()) {
      const double cap = q.to_flow(q.to_voltage(e.capacity));
      if (cap > 0.0) gq.add_edge(e.from, e.to, cap);
    }
    const double exact = flow::push_relabel(g).flow_value;
    const double quantized = flow::push_relabel(gq).flow_value;
    const auto cut = flow::min_cut_from_flow(g, flow::push_relabel(g));
    const double bound =
        static_cast<double>(cut.cut_edges.size()) * q.worst_case_error() / 2.0 +
        1e-9;
    EXPECT_LE(std::abs(quantized - exact), bound) << "seed " << seed;
  }
}

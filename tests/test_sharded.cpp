// Sharded solve: k-way decomposition + parallel region solves + exact
// refinement (core::ShardedSolver). The battery checks exactness against
// the direct solver across mixed generators and shard counts, the validity
// of the pre-refinement optimality bound, feasibility of the returned flow,
// registry/capability wiring, and the serve-protocol `solve --shards` path.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/serve_engine.hpp"
#include "core/sharded_solver.hpp"
#include "flow/maxflow.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/network.hpp"

namespace core = aflow::core;
namespace flow = aflow::flow;
namespace graph = aflow::graph;

namespace {

std::vector<graph::FlowNetwork> mixed_instances() {
  std::vector<graph::FlowNetwork> nets;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    nets.push_back(graph::rmat(90, 420, {}, seed));
    nets.push_back(graph::uniform_random(80, 400, 32, seed));
    nets.push_back(graph::layered_random(5, 14, 4, 24, seed));
    nets.push_back(graph::gridflow(11, 9, 16, seed));
  }
  return nets;
}

} // namespace

// The acceptance battery: >= 50 (instance, k) pairs, identical max-flow
// value to the direct solver, feasible flow, and a bound that is valid
// before refinement ever runs.
TEST(Sharded, MatchesDirectSolverAcrossGeneratorsAndShardCounts) {
  const auto nets = mixed_instances();
  int cases = 0;
  for (const auto& net : nets) {
    const double exact = flow::dinic(net).flow_value;
    for (int k : {2, 4, 8}) {
      core::ShardOptions opt;
      opt.shards = k;
      const core::ShardedSolver solver(opt);
      core::ShardReport rep;
      const flow::MaxFlowResult r =
          solver.solve_csr(graph::CsrGraph::from_network(net), &rep);
      const std::string label =
          "n=" + std::to_string(net.num_vertices()) + " k=" + std::to_string(k);
      EXPECT_NEAR(r.flow_value, exact, 1e-9 * std::max(1.0, exact)) << label;
      EXPECT_GE(rep.upper_bound, r.flow_value - 1e-9) << label;
      EXPECT_GE(r.flow_value, rep.stitched_value - 1e-9) << label;
      EXPECT_GE(rep.stitched_value, 0.0) << label;
      EXPECT_NEAR(rep.flow_value, rep.stitched_value + rep.refined_added, 1e-9)
          << label;
      EXPECT_EQ(rep.regions, k) << label;
      int covered = 0;
      for (int c : rep.region_vertices) covered += c;
      EXPECT_EQ(covered, net.num_vertices()) << label;
      EXPECT_TRUE(flow::check_flow(net, r).empty()) << label;
      ++cases;
    }
  }
  EXPECT_GE(cases, 50);
}

TEST(Sharded, RegisteredWithShardedCapability) {
  auto& reg = core::SolverRegistry::instance();
  ASSERT_TRUE(reg.contains("sharded"));
  const auto solver = reg.create("sharded");
  EXPECT_EQ(solver->name(), "sharded");
  EXPECT_TRUE(solver->capabilities().sharded);
  EXPECT_TRUE(solver->capabilities().exact);
  EXPECT_FALSE(solver->capabilities().analog);

  // The plain ISolver entry solves FlowNetwork instances like any backend.
  const auto net = graph::rmat(60, 260, {}, 3);
  EXPECT_NEAR(solver->solve(net).flow_value, flow::dinic(net).flow_value,
              1e-9);
}

TEST(Sharded, RejectsApproximateOrUnknownRegionSolvers) {
  const auto net = graph::rmat(40, 160, {}, 2);
  const graph::CsrGraph g = graph::CsrGraph::from_network(net);
  for (const std::string bad : {"analog_dc", "analog_transient",
                                "analog_dc_warm"}) {
    core::ShardOptions opt;
    opt.region_solver = bad;
    EXPECT_THROW(core::ShardedSolver(opt).solve_csr(g), std::invalid_argument)
        << bad;
  }
  core::ShardOptions unknown;
  unknown.region_solver = "no_such_backend";
  EXPECT_THROW(core::ShardedSolver(unknown).solve_csr(g),
               std::invalid_argument);
  EXPECT_THROW(core::ShardedSolver(core::ShardOptions{.shards = 0}),
               std::invalid_argument);
}

TEST(Sharded, ExactRegionSolversAllWork) {
  const auto net = graph::uniform_random(70, 320, 24, 5);
  const double exact = flow::dinic(net).flow_value;
  const graph::CsrGraph g = graph::CsrGraph::from_network(net);
  for (const std::string name : {"dinic", "edmonds_karp", "push_relabel"}) {
    core::ShardOptions opt;
    opt.shards = 4;
    opt.region_solver = name;
    EXPECT_NEAR(core::ShardedSolver(opt).solve_csr(g).flow_value, exact, 1e-9)
        << name;
  }
}

TEST(Sharded, DeterministicAcrossRunsAndThreadCounts) {
  const auto net = graph::rmat(110, 520, {}, 7);
  const graph::CsrGraph g = graph::CsrGraph::from_network(net);
  core::ShardOptions a;
  a.shards = 4;
  a.num_threads = 1;
  core::ShardOptions b = a;
  b.num_threads = 0; // hardware concurrency
  core::ShardReport ra, rb;
  const flow::MaxFlowResult fa = core::ShardedSolver(a).solve_csr(g, &ra);
  const flow::MaxFlowResult fb = core::ShardedSolver(b).solve_csr(g, &rb);
  // Regions write disjoint slots and refinement is sequential, so the
  // result is bit-identical regardless of the worker schedule.
  EXPECT_EQ(fa.flow_value, fb.flow_value);
  ASSERT_EQ(fa.edge_flow.size(), fb.edge_flow.size());
  for (size_t e = 0; e < fa.edge_flow.size(); ++e)
    EXPECT_EQ(fa.edge_flow[e], fb.edge_flow[e]) << e;
  EXPECT_EQ(ra.region_vertices, rb.region_vertices);
  EXPECT_EQ(ra.cut_arcs, rb.cut_arcs);
  EXPECT_EQ(ra.stitched_value, rb.stitched_value);
}

TEST(Sharded, DegenerateShardCountsFallBackToDirectSolve) {
  const auto net = graph::rmat(50, 200, {}, 4);
  const double exact = flow::dinic(net).flow_value;
  const graph::CsrGraph g = graph::CsrGraph::from_network(net);

  core::ShardOptions one;
  one.shards = 1;
  core::ShardReport rep;
  EXPECT_NEAR(core::ShardedSolver(one).solve_csr(g, &rep).flow_value, exact,
              1e-9);
  EXPECT_EQ(rep.regions, 1);

  // shards > n clamps to the vertex count instead of throwing.
  core::ShardOptions many;
  many.shards = 10 * net.num_vertices();
  EXPECT_NEAR(core::ShardedSolver(many).solve_csr(g).flow_value, exact, 1e-9);
}

TEST(Sharded, TinyAndDisconnectedInstances) {
  // Two vertices, one edge: every k degenerates sensibly.
  graph::FlowNetwork tiny(2, 0, 1);
  tiny.add_edge(0, 1, 3.0);
  core::ShardOptions opt;
  opt.shards = 8;
  EXPECT_NEAR(
      core::ShardedSolver(opt).solve_csr(graph::CsrGraph::from_network(tiny))
          .flow_value,
      3.0, 1e-12);

  // Disconnected terminals: zero flow, no crash at any stage.
  graph::FlowNetwork split(6, 0, 5);
  split.add_edge(0, 1, 2.0);
  split.add_edge(1, 2, 2.0);
  split.add_edge(3, 4, 2.0);
  split.add_edge(4, 5, 2.0);
  core::ShardOptions k3;
  k3.shards = 3;
  core::ShardReport rep;
  EXPECT_NEAR(
      core::ShardedSolver(k3).solve_csr(graph::CsrGraph::from_network(split),
                                        &rep)
          .flow_value,
      0.0, 1e-12);
  EXPECT_GE(rep.upper_bound, 0.0);
}

// Serve-protocol front: `solve --shards K` on the loaded instance matches
// the direct solve of the same revision and reports the shards object.
TEST(Sharded, ServeSolveShardsMatchesDirectPath) {
  core::ServeOptions opt;
  opt.deterministic = true;
  core::ServeEngine engine(opt);
  ASSERT_NE(engine.handle("load --spec grid:side=7,seed=4").find("\"ok\":true"),
            std::string::npos);

  const std::string direct = engine.handle("solve --solver dinic");
  ASSERT_NE(direct.find("\"ok\":true"), std::string::npos) << direct;
  const auto flow_of = [](const std::string& json) {
    const auto at = json.find("\"flow\":");
    return std::stod(json.substr(at + 7));
  };

  const std::string sharded =
      engine.handle("solve --shards 4 --region-solver push_relabel");
  ASSERT_NE(sharded.find("\"ok\":true"), std::string::npos) << sharded;
  EXPECT_NE(sharded.find("\"solver\":\"sharded\""), std::string::npos)
      << sharded;
  EXPECT_NE(sharded.find("\"shards\":{"), std::string::npos) << sharded;
  EXPECT_NE(sharded.find("\"upper_bound\":"), std::string::npos) << sharded;
  EXPECT_NEAR(flow_of(sharded), flow_of(direct), 1e-9);

  // A bad region backend surfaces as a clean ok:false, not a dead session.
  const std::string bad =
      engine.handle("solve --shards 4 --region-solver analog_dc");
  EXPECT_NE(bad.find("\"ok\":false"), std::string::npos) << bad;
  EXPECT_NE(engine.handle("solve --solver dinic").find("\"ok\":true"),
            std::string::npos);
}


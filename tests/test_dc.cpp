// DC operating-point analysis: MNA stamps, diode clamps, op-amps, negative
// resistance, and the paper's own circuit identities:
//  - the negation widget enforces Vx^- = -Vx (Eq. 2-3);
//  - the Fig. 15 example yields Vx1 = 2/9 Vflow, Vx2 = Vx3 = 1/9 Vflow;
//  - the NIC's effective resistance degrades as ~1/A (Sec. 4.2).
#include <gtest/gtest.h>

#include <memory>

#include "circuit/netlist.hpp"
#include "sim/dc.hpp"

namespace circuit = aflow::circuit;
namespace sim = aflow::sim;

namespace {

std::vector<double> solve(circuit::Netlist& nl, circuit::DeviceState* state = nullptr) {
  sim::DcSolver solver(nl);
  circuit::DeviceState local = circuit::DeviceState::initial(nl);
  circuit::DeviceState& s = state ? *state : local;
  return solver.solve(s);
}

double v(const circuit::Netlist& nl, circuit::NodeId n,
         const std::vector<double>& x) {
  return circuit::MnaAssembler(nl).node_voltage(n, x);
}

} // namespace

TEST(Dc, VoltageDivider) {
  circuit::Netlist nl;
  const auto top = nl.new_node(), mid = nl.new_node();
  nl.add_vsource(top, circuit::kGround, 10.0);
  nl.add_resistor(top, mid, 1e3);
  nl.add_resistor(mid, circuit::kGround, 3e3);
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, mid, x), 7.5, 1e-6);
}

TEST(Dc, VsourceCurrentConvention) {
  circuit::Netlist nl;
  const auto top = nl.new_node();
  const int src = nl.add_vsource(top, circuit::kGround, 10.0);
  nl.add_resistor(top, circuit::kGround, 2e3);
  const auto x = solve(nl);
  // Delivered current is positive out of the + terminal: 10V / 2k = 5 mA.
  EXPECT_NEAR(circuit::MnaAssembler(nl).vsource_current(src, x), 5e-3, 1e-10);
}

TEST(Dc, CurrentSourceIntoResistor) {
  circuit::Netlist nl;
  const auto n = nl.new_node();
  nl.add_isource(circuit::kGround, n, 1e-3);
  nl.add_resistor(n, circuit::kGround, 1e3);
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, n, x), 1.0, 1e-9);
}

TEST(Dc, MemristorStampsAsProgrammedResistance) {
  circuit::Netlist nl;
  const auto top = nl.new_node(), mid = nl.new_node();
  nl.add_vsource(top, circuit::kGround, 2.0);
  nl.add_resistor(top, mid, 10e3);
  circuit::MemristorParams mp;
  nl.add_memristor(mid, circuit::kGround, mp, 10e3);
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, mid, x), 1.0, 1e-6);
}

TEST(Dc, PwlDiodeClampsLowAndHigh) {
  // Fig. 1 capacity clamp: source drives x above the clamp level; the upper
  // diode must pin V(x) at the level (2 V here, with Ron drop ~ mV).
  circuit::Netlist nl;
  const auto drive = nl.new_node(), x_node = nl.new_node(), lvl = nl.new_node();
  nl.add_vsource(drive, circuit::kGround, 5.0);
  nl.add_resistor(drive, x_node, 10e3);
  nl.add_vsource(lvl, circuit::kGround, 2.0);
  nl.add_diode(x_node, lvl);              // clamps V(x) <= 2
  nl.add_diode(circuit::kGround, x_node); // clamps V(x) >= 0
  auto x = solve(nl);
  EXPECT_NEAR(v(nl, x_node, x), 2.0, 1e-2);

  // Now pull down: lower clamp engages near 0.
  nl.set_vsource_value(0, -5.0);
  x = solve(nl);
  EXPECT_NEAR(v(nl, x_node, x), 0.0, 1e-2);
}

TEST(Dc, PwlDiodeTurnOnVoltageShiftsClamp) {
  circuit::Netlist nl;
  const auto drive = nl.new_node(), x_node = nl.new_node(), lvl = nl.new_node();
  nl.add_vsource(drive, circuit::kGround, 5.0);
  nl.add_resistor(drive, x_node, 10e3);
  nl.add_vsource(lvl, circuit::kGround, 2.0);
  circuit::DiodeParams dp;
  dp.v_on = 0.3;
  nl.add_diode(x_node, lvl, dp);
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, x_node, x), 2.3, 2e-2); // clamp level + Von
}

TEST(Dc, ShockleyDiodeForwardDrop) {
  circuit::Netlist nl;
  const auto top = nl.new_node(), a = nl.new_node();
  nl.add_vsource(top, circuit::kGround, 5.0);
  nl.add_resistor(top, a, 1e3);
  circuit::DiodeParams dp;
  dp.model = circuit::DiodeModel::kShockley;
  nl.add_diode(a, circuit::kGround, dp);
  const auto x = solve(nl);
  // Silicon-ish drop at ~4.3 mA.
  EXPECT_GT(v(nl, a, x), 0.5);
  EXPECT_LT(v(nl, a, x), 0.8);
}

TEST(Dc, IdealNegativeResistorStampsNegativeConductance) {
  // Series r with -r/2 to ground: divider gives Vout = Vin * (-0.5)/(1-0.5)
  // = -Vin; with Vin = 1 the node sits at -1 V.
  circuit::Netlist nl;
  const auto in = nl.new_node(), out = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 1.0);
  nl.add_resistor(in, out, 10e3);
  nl.add_negative_resistor(out, circuit::kGround, 5e3);
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, out, x), -1.0, 1e-6);
}

TEST(Dc, OpAmpFollowerTracksInput) {
  circuit::Netlist nl;
  const auto in = nl.new_node(), out = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 1.5);
  nl.add_opamp(in, out, out, {}); // unity follower
  nl.add_resistor(out, circuit::kGround, 10e3);
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, out, x), 1.5, 1e-3); // finite-gain error ~ 1/A
}

TEST(Dc, OpAmpInverterGain) {
  circuit::Netlist nl;
  const auto in = nl.new_node(), vm = nl.new_node(), out = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 0.5);
  nl.add_resistor(in, vm, 10e3);
  nl.add_resistor(vm, out, 20e3); // gain -2
  nl.add_opamp(circuit::kGround, vm, out, {});
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, out, x), -1.0, 2e-3);
}

TEST(Dc, NicRealizesNegativeResistance) {
  // Drive the NIC terminal through a known resistor and infer Reff from the
  // divider; Sec. 4.2: Reff ~ -(1 + k/A) Rtarget.
  circuit::Netlist nl;
  const auto in = nl.new_node(), t = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 1.0);
  nl.add_resistor(in, t, 10e3);
  nl.add_nic_negative_resistor(t, 5e3, 10e3, {});
  const auto x = solve(nl);
  const double vt = v(nl, t, x);
  // Reff = vt / i, i = (1 - vt)/10k.
  const double reff = vt * 10e3 / (1.0 - vt);
  EXPECT_NEAR(reff, -5e3, 5e3 * 0.01); // within 1% of -Rtarget
}

TEST(Dc, NicPrecisionScalesWithGain) {
  auto reff_for_gain = [](double gain) {
    circuit::Netlist nl;
    const auto in = nl.new_node(), t = nl.new_node();
    nl.add_vsource(in, circuit::kGround, 1.0);
    nl.add_resistor(in, t, 10e3);
    circuit::OpAmpParams op;
    op.gain = gain;
    nl.add_nic_negative_resistor(t, 5e3, 10e3, op);
    const auto x = solve(nl);
    const double vt = circuit::MnaAssembler(nl).node_voltage(t, x);
    return vt * 10e3 / (1.0 - vt);
  };
  const double err_lo = std::abs(reff_for_gain(100.0) + 5e3) / 5e3;
  const double err_hi = std::abs(reff_for_gain(1e4) + 5e3) / 5e3;
  // Precision inversely proportional to gain (Sec. 4.2).
  EXPECT_GT(err_lo / err_hi, 50.0);
  EXPECT_LT(err_hi, 1e-3);
}

TEST(Dc, NegationWidgetEnforcesMirror) {
  // Fig. 2 widget: x --r-- P --r-- xm, -r/2 at P, load on xm. Vxm = -Vx.
  circuit::Netlist nl;
  const auto x_node = nl.new_node(), p = nl.new_node(), xm = nl.new_node();
  nl.add_vsource(x_node, circuit::kGround, 0.7);
  nl.add_resistor(x_node, p, 10e3);
  nl.add_resistor(xm, p, 10e3);
  nl.add_negative_resistor(p, circuit::kGround, 5e3);
  nl.add_resistor(xm, circuit::kGround, 10e3); // arbitrary load
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, xm, x), -0.7, 1e-6);
}

TEST(Dc, Fig15LinearRegimeMatchesPaper) {
  // Paper Sec. 6.5: before any clamp engages,
  //   Vx1 = 2/9 Vflow, Vx2 = Vx3 = 1/9 Vflow.
  // Build the Fig. 15b circuit: Vflow-r-x1, negation widget on x1, x1m and
  // x2, x3 joined at column n1 with -r/3.
  const double r = 10e3;
  circuit::Netlist nl;
  const auto x1 = nl.new_node("x1"), p1 = nl.new_node("p1"),
             x1m = nl.new_node("x1m"), n1 = nl.new_node("n1"),
             x2 = nl.new_node("x2"), x3 = nl.new_node("x3"),
             vf = nl.new_node("vflow");
  const double vflow = 0.9; // small: linear regime
  nl.add_vsource(vf, circuit::kGround, vflow);
  nl.add_resistor(vf, x1, r);
  nl.add_resistor(x1, p1, r);
  nl.add_resistor(x1m, p1, r);
  nl.add_negative_resistor(p1, circuit::kGround, r / 2.0);
  nl.add_resistor(x1m, n1, r);
  nl.add_resistor(x2, n1, r);
  nl.add_resistor(x3, n1, r);
  nl.add_negative_resistor(n1, circuit::kGround, r / 3.0);
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, x1, x), 2.0 / 9.0 * vflow, 1e-6);
  EXPECT_NEAR(v(nl, x2, x), 1.0 / 9.0 * vflow, 1e-6);
  EXPECT_NEAR(v(nl, x3, x), 1.0 / 9.0 * vflow, 1e-6);
  EXPECT_NEAR(v(nl, x1m, x), -v(nl, x1, x), 1e-7);
}

TEST(Dc, GminSteppingRecoversFloatingNode) {
  // A node connected only through a capacitor is floating in DC; gmin keeps
  // the system solvable and pins it to ground.
  circuit::Netlist nl;
  const auto a = nl.new_node(), b = nl.new_node();
  nl.add_vsource(a, circuit::kGround, 1.0);
  nl.add_capacitor(a, b, 1e-12);
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, b, x), 0.0, 1e-6);
}

namespace {

/// A PWL-heavy clamp ladder: chained dividers with competing diode clamps,
/// forcing several diode-state iterations from a cold start.
circuit::Netlist clamp_ladder(int stages) {
  circuit::Netlist nl;
  auto prev = nl.new_node();
  nl.add_vsource(prev, circuit::kGround, 8.0);
  for (int i = 0; i < stages; ++i) {
    const auto node = nl.new_node();
    const auto lvl = nl.new_node();
    nl.add_resistor(prev, node, 1e3);
    nl.add_resistor(node, circuit::kGround, 4e3);
    nl.add_vsource(lvl, circuit::kGround, 3.0 - 0.4 * i);
    nl.add_diode(node, lvl);              // upper clamp
    nl.add_diode(circuit::kGround, node); // lower clamp
    prev = node;
  }
  return nl;
}

} // namespace

TEST(Dc, ReusePathMatchesRebuildPath) {
  // The factorisation-reuse fast path must be numerically indistinguishable
  // from rebuilding the matrix and factors every iteration.
  circuit::Netlist nl = clamp_ladder(8);

  sim::DcOptions rebuild_opt;
  rebuild_opt.reuse_factorization = false;
  sim::DcSolver rebuild(nl, rebuild_opt);
  circuit::DeviceState s1 = circuit::DeviceState::initial(nl);
  const auto x1 = rebuild.solve(s1);

  sim::DcSolver reuse(nl); // reuse_factorization defaults on
  circuit::DeviceState s2 = circuit::DeviceState::initial(nl);
  const auto x2 = reuse.solve(s2);

  ASSERT_EQ(x1.size(), x2.size());
  for (size_t i = 0; i < x1.size(); ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
  EXPECT_EQ(s1.diode_on, s2.diode_on);

  // Same number of Newton/PWL iterations, but the reuse path performs
  // exactly one full factorisation and refactors everything else.
  EXPECT_EQ(rebuild.stats().iterations, reuse.stats().iterations);
  EXPECT_GT(reuse.stats().iterations, 1);
  EXPECT_EQ(reuse.stats().full_factors, 1);
  EXPECT_EQ(reuse.stats().refactors, reuse.stats().iterations - 1);
  EXPECT_EQ(rebuild.stats().refactors, 0);
  EXPECT_EQ(rebuild.stats().full_factors, rebuild.stats().iterations);
}

TEST(Dc, RepeatSolvesReuseTheFactorisationAcrossCalls) {
  // Sweeping the source on one solver (the quasi-static / homotopy usage)
  // must not pay for any further symbolic analysis.
  circuit::Netlist nl = clamp_ladder(4);
  sim::DcSolver solver(nl);
  circuit::DeviceState state = circuit::DeviceState::initial(nl);
  (void)solver.solve(state);

  nl.set_vsource_value(0, 5.0);
  (void)solver.solve(state);
  EXPECT_EQ(solver.stats().full_factors, 0);
  EXPECT_EQ(solver.stats().refactors, solver.stats().iterations);

  nl.set_vsource_value(0, 2.0);
  (void)solver.solve(state);
  EXPECT_EQ(solver.stats().full_factors, 0);
  EXPECT_EQ(solver.stats().refactors, solver.stats().iterations);
}

TEST(Dc, OrderingCacheIsSeededAndHit) {
  circuit::Netlist nl = clamp_ladder(4);
  auto cache = std::make_shared<aflow::la::OrderingCache>();

  sim::DcOptions opt;
  opt.ordering_cache = cache;
  {
    sim::DcSolver solver(nl, opt);
    circuit::DeviceState state = circuit::DeviceState::initial(nl);
    (void)solver.solve(state);
  }
  EXPECT_EQ(cache->size(), 1u);

  // A second solver over the same topology consumes the cached ordering
  // (no new entry) and must reproduce the identical solution: the ordering
  // is a pure function of the pattern, so seeding is bit-exact.
  sim::DcSolver fresh(nl, opt);
  circuit::DeviceState s_fresh = circuit::DeviceState::initial(nl);
  const auto x_cached = fresh.solve(s_fresh);
  EXPECT_EQ(cache->size(), 1u);

  sim::DcSolver uncached(nl);
  circuit::DeviceState s_un = circuit::DeviceState::initial(nl);
  const auto x_un = uncached.solve(s_un);
  ASSERT_EQ(x_cached.size(), x_un.size());
  for (size_t i = 0; i < x_un.size(); ++i)
    EXPECT_DOUBLE_EQ(x_cached[i], x_un[i]);
}

TEST(Dc, GminSteppingStillWorksWithReuse) {
  // The floating-node instance forces the singular -> gmin ladder inside
  // the reuse path (full refactorisations, not crashes).
  circuit::Netlist nl;
  const auto a = nl.new_node(), b = nl.new_node();
  nl.add_vsource(a, circuit::kGround, 1.0);
  nl.add_capacitor(a, b, 1e-12);
  sim::DcOptions opt;
  opt.gmin = 0.0; // start singular
  sim::DcSolver solver(nl, opt);
  circuit::DeviceState state = circuit::DeviceState::initial(nl);
  const auto x = solver.solve(state);
  EXPECT_NEAR(circuit::MnaAssembler(nl).node_voltage(b, x), 0.0, 1e-6);
  EXPECT_GE(solver.stats().full_factors, 1);
}

TEST(Dc, DiodeStateCyclingFallsBackToSingleFlip) {
  // Two competing clamps on the same node: simultaneous flipping can cycle;
  // the solver must still find the consistent state.
  circuit::Netlist nl;
  const auto d = nl.new_node(), x_node = nl.new_node();
  const auto lvl1 = nl.new_node(), lvl2 = nl.new_node();
  nl.add_vsource(d, circuit::kGround, 5.0);
  nl.add_resistor(d, x_node, 1e3);
  nl.add_vsource(lvl1, circuit::kGround, 1.0);
  nl.add_vsource(lvl2, circuit::kGround, 1.5);
  nl.add_diode(x_node, lvl1);
  nl.add_diode(x_node, lvl2);
  const auto x = solve(nl);
  EXPECT_NEAR(v(nl, x_node, x), 1.0, 2e-2); // tightest clamp wins
}

// Quasi-static sweep engine (Sec. 6.5 machinery), DIMACS file round trips,
// and solver edge cases not covered by the module suites.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analog/solver.hpp"
#include "flow/maxflow.hpp"
#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "sim/sweep.hpp"

namespace analog = aflow::analog;
namespace circuit = aflow::circuit;
namespace flow = aflow::flow;
namespace graph = aflow::graph;
namespace sim = aflow::sim;

TEST(QuasiStaticSweep, LinearCircuitTracksSource) {
  // A plain divider: the swept probe must be exactly half the source.
  circuit::Netlist nl;
  const auto top = nl.new_node(), mid = nl.new_node();
  const int src = nl.add_vsource(top, circuit::kGround, 0.0);
  nl.add_resistor(top, mid, 1e3);
  nl.add_resistor(mid, circuit::kGround, 1e3);

  sim::QuasiStaticSweep sweep(nl, src);
  const auto r = sweep.run({0.0, 1.0, 2.0, 4.0}, {sim::Probe::node(mid, "v")});
  ASSERT_EQ(r.source_values.size(), 4u);
  for (size_t k = 0; k < r.source_values.size(); ++k)
    EXPECT_NEAR(r.trajectory[k][0], r.source_values[k] / 2.0, 1e-6);
  EXPECT_TRUE(r.breakpoints.empty());
}

TEST(QuasiStaticSweep, ReportsClampBreakpoints) {
  // Divider into a 1 V clamp: one breakpoint when the diode engages.
  circuit::Netlist nl;
  const auto top = nl.new_node(), mid = nl.new_node(), lvl = nl.new_node();
  const int src = nl.add_vsource(top, circuit::kGround, 0.0);
  nl.add_vsource(lvl, circuit::kGround, 1.0);
  nl.add_resistor(top, mid, 1e3);
  nl.add_resistor(mid, circuit::kGround, 1e3);
  nl.add_diode(mid, lvl);

  std::vector<double> values;
  for (double v = 0.0; v <= 4.0; v += 0.25) values.push_back(v);
  sim::QuasiStaticSweep sweep(nl, src);
  const auto r = sweep.run(values, {sim::Probe::node(mid, "v")});

  ASSERT_EQ(r.breakpoints.size(), 1u);
  // Unclamped v_mid = Vflow/2 crosses 1 V at Vflow = 2 V.
  EXPECT_NEAR(r.breakpoints[0].source_value, 2.25, 0.26);
  EXPECT_NEAR(r.trajectory.back()[0], 1.0, 1e-2); // clamped at the end
}

TEST(Dimacs, FileRoundTripThroughDisk) {
  const auto g = graph::rmat(24, 90, {}, 3);
  const std::string path = "/tmp/aflow_dimacs_test.max";
  graph::write_dimacs_file(path, g);
  const auto g2 = graph::read_dimacs_file(path);
  EXPECT_DOUBLE_EQ(flow::dinic(g).flow_value, flow::dinic(g2).flow_value);
  std::remove(path.c_str());
  EXPECT_THROW(graph::read_dimacs_file("/nonexistent/nope.max"),
               std::runtime_error);
}

TEST(Dimacs, FileRoundTripPreservesLargeAndFractionalCapacities) {
  // Through-disk variant of the precision round trip: flow values computed
  // on the original and reloaded instance must agree bit-for-bit even with
  // capacities far beyond 6 significant digits.
  graph::FlowNetwork g(4, 0, 3);
  g.add_edge(0, 1, 123456789.0);
  g.add_edge(0, 2, 2.000000000000004);
  g.add_edge(1, 3, 100000000.5);
  g.add_edge(2, 3, 0.1);
  const std::string path = "/tmp/aflow_dimacs_precision_test.max";
  graph::write_dimacs_file(path, g);
  const auto g2 = graph::read_dimacs_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (int e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(g2.edge(e).capacity, g.edge(e).capacity);
  EXPECT_EQ(flow::dinic(g).flow_value, flow::dinic(g2).flow_value);
}

TEST(AnalogSolver, RejectsEmptyGraph) {
  graph::FlowNetwork g(2, 0, 1);
  analog::AnalogMaxFlowSolver solver;
  EXPECT_THROW(solver.solve(g), std::invalid_argument);
}

TEST(AnalogSolver, SingleEdgeInstanceIsExact) {
  graph::FlowNetwork g(2, 0, 1);
  g.add_edge(0, 1, 7.0);
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0;
  opt.quantization = analog::QuantizationMode::kNone;
  const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);
  EXPECT_NEAR(r.flow_value, 7.0, 0.05);
}

TEST(AnalogSolver, DisconnectedInstanceReadsNearZero) {
  graph::FlowNetwork g(4, 0, 3);
  g.add_edge(0, 1, 5.0); // dead end: vertex 1 has no outlet
  g.add_edge(2, 3, 5.0); // unreachable from the source
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0;
  const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);
  EXPECT_LT(std::abs(r.flow_value), 0.1);
}

TEST(AnalogSolver, ParallelEdgesShareLevelSources) {
  // Ten edges with the same capacity must share one level source (Sec. 4.1).
  graph::FlowNetwork g(2, 0, 1);
  for (int i = 0; i < 10; ++i) g.add_edge(0, 1, 4.0);
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  analog::AnalogMaxFlowSolver solver(opt);
  const auto c = solver.map(g);
  // Vflow + one shared level source.
  EXPECT_EQ(c.netlist.vsources().size(), 2u);
}

TEST(AnalogSolver, LargeSparseInstanceStaysInErrorEnvelope) {
  // A 960-vertex instance — the top of the paper's Fig. 10 range — through
  // the steady-state path end to end.
  const auto g = graph::rmat_sparse(960, 7);
  const double exact = flow::push_relabel(g).flow_value;
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0;
  opt.quantization = analog::QuantizationMode::kRound;
  const auto r = analog::AnalogMaxFlowSolver(opt).solve(g);
  EXPECT_LT(r.relative_error(exact), 0.08);
}

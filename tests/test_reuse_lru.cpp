// Serving-safe ReusePool: byte-budgeted LRU eviction, counter
// reconciliation, and the bit-identity contract of the warm quasi-static
// sweep and min-cut dual paths (their pooled runs must reproduce the cold
// runs bit for bit — see DESIGN.md "Serving architecture").
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "analog/solver.hpp"
#include "core/reuse_pool.hpp"
#include "core/workload.hpp"
#include "graph/generators.hpp"
#include "mincut/dual_circuit.hpp"
#include "sim/sweep.hpp"

namespace analog = aflow::analog;
namespace circuit = aflow::circuit;
namespace core = aflow::core;
namespace graph = aflow::graph;
namespace la = aflow::la;
namespace mincut = aflow::mincut;
namespace sim = aflow::sim;

namespace {

/// An entry whose dominant cost is an `n`-double solution vector.
core::ReuseEntry entry_of_doubles(size_t n) {
  core::ReuseEntry e;
  e.x = std::make_shared<const std::vector<double>>(n, 1.0);
  return e;
}

analog::AnalogSolveOptions reconfig_options() {
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0;
  opt.config.dedicated_level_sources = true;
  return opt;
}

} // namespace

TEST(ReusePoolLru, EvictsLeastRecentlyUsedUnderByteBudget) {
  const size_t per_entry = entry_of_doubles(1000).memory_bytes();
  // Room for two entries, not three.
  core::ReusePool pool(2 * per_entry + per_entry / 2);

  EXPECT_EQ(pool.store(1, entry_of_doubles(1000)), 0);
  EXPECT_EQ(pool.store(2, entry_of_doubles(1000)), 0);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.bytes(), 2 * per_entry);

  // Touch 1 so that 2 becomes the least recently used, then overflow.
  ASSERT_NE(pool.find(1), nullptr);
  EXPECT_EQ(pool.store(3, entry_of_doubles(1000)), 1);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_LE(pool.bytes(), pool.byte_budget());

  EXPECT_NE(pool.find(1), nullptr);
  EXPECT_NE(pool.find(3), nullptr);
  EXPECT_EQ(pool.find(2), nullptr) << "LRU entry must be the one evicted";
  EXPECT_EQ(pool.stats().evictions, 1);
}

TEST(ReusePoolLru, CountersReconcile) {
  core::ReusePool pool(1); // evict on every distinct store
  int lookups = 0, found = 0;
  auto look = [&](std::uint64_t key) {
    ++lookups;
    if (pool.find(key)) ++found;
  };

  look(7);                                     // miss
  pool.store(7, entry_of_doubles(8));          // oversized entry: retained
  look(7);                                     // hit
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_GT(pool.bytes(), pool.byte_budget())
      << "a single oversized entry is retained, not thrashed";

  pool.store(8, entry_of_doubles(8));          // evicts 7
  look(7);                                     // miss
  look(8);                                     // hit

  const core::ReusePool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, lookups);
  EXPECT_EQ(s.hits, found);
  EXPECT_EQ(s.stores, 2);
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ReusePoolLru, SameKeyStoreReplacesWithoutEviction) {
  const size_t small = entry_of_doubles(10).memory_bytes();
  core::ReusePool pool(4 * small);
  pool.store(5, entry_of_doubles(10));
  const size_t before = pool.bytes();
  EXPECT_EQ(pool.store(5, entry_of_doubles(10)), 0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.bytes(), before) << "replacement must not leak bytes";
  EXPECT_EQ(pool.stats().evictions, 0);
}

TEST(WarmSweep, BitIdenticalToColdSweepAndSavesIterations) {
  // The serving contract (ISSUE 4): a pooled sweep must reproduce the cold
  // sweep bit for bit — the pool contributes only the pattern-pure column
  // ordering plus a device-state seed, and the solver is primed with the
  // cold path's own first factorisation.
  const auto instances = core::load_batch("grid:side=5,seed=7,vary=3");
  const analog::AnalogMaxFlowSolver mapper(reconfig_options());
  // Start the ramp well inside the nontrivial region so the first point is
  // a real LCP search (that is what the cross-request seed collapses).
  const std::vector<double> values{4.0, 6.0, 8.0, 10.0};

  auto run_sweep = [&](const graph::FlowNetwork& net,
                       std::shared_ptr<core::ReusePool> pool) {
    analog::MaxFlowCircuit c = mapper.map(net);
    sim::QuasiStaticSweep sweep(c.netlist, c.vflow_source, {}, std::move(pool));
    return sweep.run(values,
                     {sim::Probe::source_current(c.vflow_source, "Iflow")});
  };

  auto pool = std::make_shared<core::ReusePool>();
  const sim::SweepResult feed = run_sweep(instances[0], pool);
  EXPECT_FALSE(feed.stats.warm_started);
  EXPECT_EQ(feed.stats.pool_misses, 1);
  EXPECT_EQ(pool->size(), 1u);

  const sim::SweepResult warm = run_sweep(instances[1], pool);
  const sim::SweepResult cold = run_sweep(instances[1], nullptr);

  EXPECT_TRUE(warm.stats.warm_started);
  EXPECT_EQ(warm.stats.pool_hits, 1);
  EXPECT_EQ(warm.stats.warm_iterations + warm.stats.cold_iterations,
            warm.stats.dc_iterations);
  EXPECT_EQ(cold.stats.pool_hits + cold.stats.pool_misses, 0);

  ASSERT_EQ(warm.trajectory.size(), cold.trajectory.size());
  for (size_t k = 0; k < warm.trajectory.size(); ++k) {
    ASSERT_EQ(warm.trajectory[k].size(), cold.trajectory[k].size());
    for (size_t p = 0; p < warm.trajectory[k].size(); ++p)
      EXPECT_EQ(warm.trajectory[k][p], cold.trajectory[k][p])
          << "point " << k << " probe " << p
          << " must be bit-identical to the cold sweep";
  }
  ASSERT_EQ(warm.breakpoints.size(), cold.breakpoints.size());
  for (size_t b = 0; b < warm.breakpoints.size(); ++b) {
    EXPECT_EQ(warm.breakpoints[b].source_value,
              cold.breakpoints[b].source_value);
    EXPECT_EQ(warm.breakpoints[b].flips, cold.breakpoints[b].flips);
  }
  // The pooled seed collapses the first point's LCP search.
  EXPECT_LT(warm.stats.dc_iterations, cold.stats.dc_iterations);
}

TEST(WarmMinCut, BitIdenticalToColdAndSavesIterations) {
  const auto g0 = graph::rmat(24, 80, {}, 3);
  // Reconfigured capacities on the same topology: the dual circuit's
  // pattern depends only on the topology, so this hits the pool entry.
  const auto g1 = core::capacity_variants(g0, 2, 17)[1];

  mincut::DualCircuitOptions cold_opt;
  mincut::DualCircuitOptions warm_opt;
  warm_opt.reuse_pool = std::make_shared<core::ReusePool>();

  const mincut::AnalogMinCutResult feed = mincut::solve_mincut_dual(g0, warm_opt);
  EXPECT_FALSE(feed.warm_started);
  EXPECT_EQ(feed.pool_misses, 1);
  EXPECT_EQ(warm_opt.reuse_pool->size(), 1u);

  const mincut::AnalogMinCutResult warm = mincut::solve_mincut_dual(g1, warm_opt);
  const mincut::AnalogMinCutResult cold = mincut::solve_mincut_dual(g1, cold_opt);

  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.pool_hits, 1);
  EXPECT_EQ(warm.warm_iterations + warm.cold_iterations, warm.dc_iterations);

  EXPECT_EQ(warm.cut_value, cold.cut_value);
  EXPECT_EQ(warm.flow_value, cold.flow_value);
  ASSERT_EQ(warm.p_values.size(), cold.p_values.size());
  for (size_t v = 0; v < warm.p_values.size(); ++v) {
    EXPECT_EQ(warm.p_values[v], cold.p_values[v]) << "p " << v;
    EXPECT_EQ(warm.side[v], cold.side[v]) << "side " << v;
  }
  ASSERT_EQ(warm.d_values.size(), cold.d_values.size());
  for (size_t e = 0; e < warm.d_values.size(); ++e) {
    EXPECT_EQ(warm.d_values[e], cold.d_values[e]) << "d " << e;
    EXPECT_EQ(warm.edge_flow[e], cold.edge_flow[e]) << "flow " << e;
  }
  // The pooled seed collapses the complementarity search.
  EXPECT_LT(warm.dc_iterations, cold.dc_iterations);
}

// Transient integration: analytic RC / single-pole responses, the lagged
// negative resistor, event handling, and the convergence-time metric.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/netlist.hpp"
#include "sim/transient.hpp"

namespace circuit = aflow::circuit;
namespace sim = aflow::sim;

TEST(ConvergenceTime, FindsBandEntry) {
  // v(k) = 1 - 2^-k: enters the 0.1% band of v_final when |v-v10| small.
  std::vector<double> t, v;
  for (int k = 0; k <= 10; ++k) {
    t.push_back(k);
    v.push_back(1.0 - std::pow(2.0, -k));
  }
  const double tc = sim::convergence_time(t, v, 1e-3);
  // final = 1 - 2^-10 ~ 0.99902, band ~ 9.99e-4; k = 9 is already inside
  // (|v9 - v10| = 2^-10), k = 8 is outside (3 * 2^-10) -> entry at t = 9.
  EXPECT_DOUBLE_EQ(tc, 9.0);
  EXPECT_DOUBLE_EQ(sim::convergence_time(t, v, 0.5), 1.0);
}

TEST(ConvergenceTime, ConstantSignalConvergesImmediately) {
  const std::vector<double> t = {0.0, 1.0, 2.0};
  const std::vector<double> v = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(sim::convergence_time(t, v, 1e-3), 0.0);
}

TEST(Transient, RcStepMatchesAnalytic) {
  // 1k * 1n = 1 us time constant; check v(t) = 1 - exp(-t/tau) at samples.
  circuit::Netlist nl;
  const auto in = nl.new_node(), out = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 1.0);
  nl.add_resistor(in, out, 1e3);
  nl.add_capacitor(out, circuit::kGround, 1e-9);

  sim::TransientOptions opt;
  opt.dt_initial = 1e-9;
  opt.dt_max = 1e-8; // small fixed-ish steps for accuracy
  opt.t_stop = 6e-6;
  sim::TransientSolver solver(nl, opt);
  circuit::DeviceState state = circuit::DeviceState::initial(nl);
  const auto wf = solver.run(state, {sim::Probe::node(out, "v")});

  const double tau = 1e-6;
  for (size_t k = 0; k < wf.time.size(); k += 37) {
    const double expect = 1.0 - std::exp(-wf.time[k] / tau);
    EXPECT_NEAR(wf.samples[k][0], expect, 0.02);
  }
  EXPECT_NEAR(wf.samples.back()[0], 1.0, 1e-2);
}

TEST(Transient, OpAmpFollowerStepHasSinglePoleResponse) {
  // Follower closed-loop bandwidth ~ GBW, so tau_cl ~ 1/(2 pi GBW).
  circuit::Netlist nl;
  const auto in = nl.new_node(), out = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 1.0);
  circuit::OpAmpParams op;
  op.gain = 1e4;
  op.gbw = 1e9;
  nl.add_opamp(in, out, out, op);
  nl.add_resistor(out, circuit::kGround, 10e3);

  sim::TransientOptions topt;
  topt.dt_initial = 1e-12;
  topt.dt_max = 1e-10;
  topt.t_stop = 3e-9;
  sim::TransientSolver solver(nl, topt);
  circuit::DeviceState state = circuit::DeviceState::initial(nl);
  const auto wf = solver.run(state, {sim::Probe::node(out, "v")});

  EXPECT_NEAR(wf.samples.back()[0], 1.0, 2e-3);
  const double tau_cl = 1.0 / (2.0 * std::numbers::pi * op.gbw);
  const double tc = sim::convergence_time(wf.time, wf.series(0), 1e-2);
  // 1% settling of a single pole takes ln(100) tau ~ 4.6 tau.
  EXPECT_GT(tc, 2.0 * tau_cl);
  EXPECT_LT(tc, 12.0 * tau_cl);
}

TEST(Transient, LaggedNegativeResistorSettlesToIdealValue) {
  // Stable configuration (negative conductance weaker than the network
  // conductance it faces: 20k > 10k): the lag element must settle onto the
  // ideal DC solution V = Vin * (-2) = ... compute: V(1/r - 1/R) = Vin/r ->
  // V = Vin * R / (R - r) = 1 * 20k / (20k - 10k)... with the negative
  // resistor: V = -Vin * (1/r) / (1/R - 1/r) = 2.0 V for r=10k, R=20k.
  circuit::Netlist nl;
  const auto in = nl.new_node(), out = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 1.0);
  nl.add_resistor(in, out, 10e3);
  nl.add_negative_resistor(out, circuit::kGround, 20e3, /*tau=*/1e-8);
  nl.add_capacitor(out, circuit::kGround, 20e-15);

  sim::TransientOptions topt;
  topt.dt_initial = 1e-10;
  topt.dt_max = 1e-9;
  topt.t_stop = 5e-7;
  sim::TransientSolver solver(nl, topt);
  circuit::DeviceState state = circuit::DeviceState::initial(nl);
  const auto wf = solver.run(state, {sim::Probe::node(out, "v")});
  EXPECT_NEAR(wf.samples.back()[0], 2.0, 2e-2);
  // Early on, before the lag responds, the node divides passively upward
  // but stays below the final overshoot target.
  EXPECT_GT(wf.samples.front()[0], 0.0);
  EXPECT_LT(wf.samples.front()[0], 1.0);
}

TEST(Transient, LaggedNegativeResistorSaddleDiverges) {
  // The same divider with the negative conductance *stronger* than the
  // network (5k < 10k) is a saddle — the classic NIC instability. The
  // integrator must reproduce the divergence rather than hide it.
  circuit::Netlist nl;
  const auto in = nl.new_node(), out = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 1.0);
  nl.add_resistor(in, out, 10e3);
  nl.add_negative_resistor(out, circuit::kGround, 5e3, /*tau=*/1e-8);
  nl.add_capacitor(out, circuit::kGround, 20e-15);

  sim::TransientOptions topt;
  topt.dt_initial = 1e-10;
  topt.dt_max = 1e-9;
  topt.t_stop = 3e-7;
  sim::TransientSolver solver(nl, topt);
  circuit::DeviceState state = circuit::DeviceState::initial(nl);
  // The divergence guard must catch the blow-up and report it.
  EXPECT_THROW(solver.run(state, {sim::Probe::node(out, "v")}),
               sim::ConvergenceError);
}

TEST(Transient, DivergenceGuardReportsDiagnosis) {
  // The guard must say *why* it tripped (node, step, growth factor, and a
  // pointer to the substrate-model explanation), not just that it did —
  // the ROADMAP diagnosis item. Same saddle circuit as above.
  circuit::Netlist nl;
  const auto in = nl.new_node(), out = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 1.0);
  nl.add_resistor(in, out, 10e3);
  nl.add_negative_resistor(out, circuit::kGround, 5e3, /*tau=*/1e-8);
  nl.add_capacitor(out, circuit::kGround, 20e-15);

  sim::TransientOptions topt;
  topt.dt_initial = 1e-10;
  topt.dt_max = 1e-9;
  topt.t_stop = 3e-7;
  sim::TransientSolver solver(nl, topt);
  circuit::DeviceState state = circuit::DeviceState::initial(nl);
  try {
    solver.run(state, {sim::Probe::node(out, "V(out)")});
    FAIL() << "saddle circuit must trip the divergence guard";
  } catch (const sim::DivergenceError& e) {
    const sim::DivergenceError::Diagnosis& d = e.diagnosis();
    EXPECT_EQ(d.probe_label, "V(out)");
    EXPECT_EQ(d.probe_index, 0);
    EXPECT_EQ(d.node, out);
    EXPECT_GT(d.step, 0);
    EXPECT_GT(d.time, 0.0);
    EXPECT_GT(d.dt, 0.0);
    // Exponential envelope: strictly growing per accepted step.
    EXPECT_GT(d.growth_per_step, 1.0);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("node"), std::string::npos) << msg;
    EXPECT_NE(msg.find("growing"), std::string::npos) << msg;
    EXPECT_NE(msg.find("DESIGN.md \"NIC saddle-point instability under "
                       "capacitive load\""),
              std::string::npos)
        << "diagnosis must point at the instability explanation: " << msg;
    EXPECT_NE(msg.find("stability_margin"), std::string::npos) << msg;
  }
}

TEST(Transient, DiodeEventIsHandledMidRun) {
  // RC charging into a 1 V clamp: trajectory follows RC then flattens.
  circuit::Netlist nl;
  const auto in = nl.new_node(), out = nl.new_node(), lvl = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 3.0);
  nl.add_vsource(lvl, circuit::kGround, 1.0);
  nl.add_resistor(in, out, 1e3);
  nl.add_capacitor(out, circuit::kGround, 1e-9);
  nl.add_diode(out, lvl);

  sim::TransientOptions topt;
  topt.dt_initial = 1e-9;
  topt.dt_max = 2e-8;
  topt.t_stop = 8e-6;
  sim::TransientSolver solver(nl, topt);
  circuit::DeviceState state = circuit::DeviceState::initial(nl);
  const auto wf = solver.run(state, {sim::Probe::node(out, "v")});
  EXPECT_NEAR(wf.samples.back()[0], 1.0, 2e-2);
  EXPECT_GE(solver.stats().diode_flips, 1);
  // Never rises meaningfully above the clamp.
  for (const auto& row : wf.samples) EXPECT_LT(row[0], 1.05);
}

TEST(Transient, ReusePathMatchesFullFactorBaseline) {
  // The RC-into-clamp instance exercises diode flips and dt doubling; the
  // pattern-reuse fast path and the full-factor-per-event baseline must
  // produce the same trajectory to solver tolerance.
  auto build = [] {
    circuit::Netlist nl;
    const auto in = nl.new_node(), out = nl.new_node(), lvl = nl.new_node();
    nl.add_vsource(in, circuit::kGround, 3.0);
    nl.add_vsource(lvl, circuit::kGround, 1.0);
    nl.add_resistor(in, out, 1e3);
    nl.add_capacitor(out, circuit::kGround, 1e-9);
    nl.add_diode(out, lvl);
    return nl;
  };
  sim::TransientOptions topt;
  topt.dt_initial = 1e-9;
  topt.dt_max = 2e-8;
  topt.t_stop = 8e-6;

  auto nl_reuse = build();
  sim::TransientSolver reuse(nl_reuse, topt);
  circuit::DeviceState s1 = circuit::DeviceState::initial(nl_reuse);
  const auto wf1 = reuse.run(s1, {sim::Probe::node(2, "v")});

  topt.reuse_factorization = false;
  auto nl_base = build();
  sim::TransientSolver baseline(nl_base, topt);
  circuit::DeviceState s2 = circuit::DeviceState::initial(nl_base);
  const auto wf2 = baseline.run(s2, {sim::Probe::node(2, "v")});

  ASSERT_EQ(wf1.samples.size(), wf2.samples.size());
  for (size_t k = 0; k < wf1.samples.size(); ++k)
    EXPECT_NEAR(wf1.samples[k][0], wf2.samples[k][0], 1e-9) << "step " << k;

  // Stats are consistent, and the reuse path rode the numeric fast path
  // for every factorisation after the first (diode flips + dt changes).
  EXPECT_EQ(reuse.stats().factorizations,
            reuse.stats().full_factors + reuse.stats().refactors);
  EXPECT_EQ(reuse.stats().full_factors, 1);
  EXPECT_GT(reuse.stats().refactors, 0);
  EXPECT_EQ(baseline.stats().refactors, 0);
  EXPECT_EQ(baseline.stats().full_factors, baseline.stats().factorizations);
  EXPECT_EQ(reuse.stats().factorizations, baseline.stats().factorizations);
}

TEST(Transient, SettleDetectionStopsEarly) {
  circuit::Netlist nl;
  const auto in = nl.new_node(), out = nl.new_node();
  nl.add_vsource(in, circuit::kGround, 1.0);
  nl.add_resistor(in, out, 1e3);
  nl.add_capacitor(out, circuit::kGround, 1e-9);

  sim::TransientOptions topt;
  topt.dt_initial = 1e-9;
  topt.dt_max = 1e-7;
  topt.t_stop = 1.0; // far beyond settling; must stop early
  topt.settle_tol = 1e-9;
  sim::TransientSolver solver(nl, topt);
  circuit::DeviceState state = circuit::DeviceState::initial(nl);
  const auto wf = solver.run(state, {sim::Probe::node(out, "v")});
  EXPECT_TRUE(solver.stats().settled);
  EXPECT_LT(wf.time.back(), 1e-3);
}

TEST(Transient, SourceCurrentProbe) {
  circuit::Netlist nl;
  const auto top = nl.new_node();
  const int src = nl.add_vsource(top, circuit::kGround, 10.0);
  nl.add_resistor(top, circuit::kGround, 1e3);
  nl.add_capacitor(top, circuit::kGround, 1e-12);

  sim::TransientOptions topt;
  topt.dt_initial = 1e-10;
  topt.t_stop = 1e-7;
  sim::TransientSolver solver(nl, topt);
  circuit::DeviceState state = circuit::DeviceState::initial(nl);
  const auto wf = solver.run(state, {sim::Probe::source_current(src, "i")});
  EXPECT_NEAR(wf.samples.back()[0], 10.0 / 1e3, 1e-6);
}

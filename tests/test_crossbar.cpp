// Crossbar programming protocol (Sec. 3.1) and the crossbar-to-circuit
// equivalence (Sec. 3.2).
#include <gtest/gtest.h>

#include "analog/crossbar.hpp"
#include "analog/solver.hpp"
#include "flow/maxflow.hpp"
#include "graph/generators.hpp"

namespace analog = aflow::analog;
namespace graph = aflow::graph;
namespace flow = aflow::flow;

namespace {

analog::SubstrateConfig test_config() {
  analog::SubstrateConfig c;
  c.fidelity = analog::NegResFidelity::kIdeal;
  c.parasitic_capacitance = 0.0;
  c.vflow = 50.0;
  return c;
}

} // namespace

TEST(Crossbar, ProgramsTargetCellsOnly) {
  analog::Crossbar xbar(8, 8, {});
  const std::vector<std::pair<int, int>> cells = {{0, 1}, {3, 5}, {7, 0}};
  const auto report = xbar.program(cells);

  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.misprogrammed_cells, 0);
  EXPECT_EQ(report.cycles, 8); // one per row (Sec. 3.1)
  EXPECT_GT(report.disturb_margin, 0.0);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      const bool want = std::find(cells.begin(), cells.end(),
                                  std::make_pair(r, c)) != cells.end();
      EXPECT_EQ(xbar.is_lrs(r, c), want) << r << "," << c;
    }
  EXPECT_NEAR(xbar.utilization(), 3.0 / 64.0, 1e-12);
}

TEST(Crossbar, ReprogrammingIsIdempotentAfterReset) {
  analog::Crossbar xbar(4, 4, {});
  ASSERT_TRUE(xbar.program({{0, 1}}).success);
  xbar.reset();
  EXPECT_DOUBLE_EQ(xbar.utilization(), 0.0);
  ASSERT_TRUE(xbar.program({{2, 3}}).success);
  EXPECT_TRUE(xbar.is_lrs(2, 3));
  EXPECT_FALSE(xbar.is_lrs(0, 1));
}

TEST(Crossbar, HalfSelectDisturbWithBadMargins) {
  // Programming voltages above the threshold on half-selected cells must
  // corrupt the array — the model has to expose the failure.
  analog::Crossbar xbar(6, 6, {});
  analog::ProgrammingParams bad;
  bad.v_high = 1.5; // above the 1.3 V threshold alone
  bad.v_low = -1.5;
  const auto report = xbar.program({{1, 2}, {4, 2}}, bad);
  EXPECT_LT(report.disturb_margin, 0.0);
  EXPECT_FALSE(report.success);
  EXPECT_GT(report.misprogrammed_cells, 0);
}

TEST(Crossbar, ProgrammingTimeScalesWithRows) {
  analog::Crossbar small(16, 16, {});
  analog::Crossbar large(64, 64, {});
  const auto rs = small.program({{0, 0}});
  const auto rl = large.program({{0, 0}});
  EXPECT_EQ(rs.cycles, 16);
  EXPECT_EQ(rl.cycles, 64);
  EXPECT_NEAR(rl.program_time / rs.program_time, 4.0, 1e-9);
  EXPECT_GT(rl.program_energy, 0.0);
}

TEST(Crossbar, AgingDriftsLrsCells) {
  analog::Crossbar xbar(4, 4, {});
  ASSERT_TRUE(xbar.program({{1, 1}}).success);
  const double before = xbar.memristance(1, 1);
  xbar.age(0.05);
  EXPECT_NEAR(xbar.memristance(1, 1), before * 1.05, 1e-6);
  // HRS cells unaffected.
  EXPECT_DOUBLE_EQ(xbar.memristance(0, 0), 1000e3);
}

TEST(Crossbar, CellsForGraphSkipsUnusableEdges) {
  graph::FlowNetwork g(4, 0, 3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 3, 2.0);
  g.add_edge(3, 1, 1.0); // out of sink: no widget
  const auto cells = analog::Crossbar::cells_for_graph(g);
  EXPECT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], std::make_pair(0, 1));
  EXPECT_EQ(cells[1], std::make_pair(1, 3));
}

TEST(Crossbar, ProgrammedSubstrateMatchesDirectMapping) {
  // Full configure-then-compute pipeline (Sec. 3.2): solving through the
  // programmed crossbar must agree with the directly mapped circuit, since
  // every LRS cell lands exactly on the nominal link resistance.
  const auto g = graph::rmat(24, 100, {}, 5);
  analog::Crossbar xbar(24, 24, {});
  ASSERT_TRUE(xbar.program(analog::Crossbar::cells_for_graph(g)).success);

  analog::AnalogSolveOptions direct;
  direct.config = test_config();
  analog::AnalogSolveOptions via_xbar = direct;
  via_xbar.perturb = xbar.link_perturbation(g);

  const auto rd = analog::AnalogMaxFlowSolver(direct).solve(g);
  const auto rx = analog::AnalogMaxFlowSolver(via_xbar).solve(g);
  EXPECT_NEAR(rx.flow_value, rd.flow_value, 1e-6 + 1e-6 * rd.flow_value);
}

TEST(Crossbar, MisprogrammedCellHasDetectableReadoutSignature) {
  // A dark (HRS) cell breaks the structural assumptions behind BOTH
  // readouts — the dark edge's node still charges to its clamp (voltage
  // readout over-reports) and Eq. 7a assumes nominal objective links
  // (hardware readout mis-scales) — but the two disagree strongly, which is
  // exactly the detectable signature of misprogramming. With clean
  // programming they agree tightly.
  graph::FlowNetwork g(3, 0, 2);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 5.0);
  g.add_edge(0, 2, 5.0);
  const double exact = flow::push_relabel(g).flow_value;
  EXPECT_NEAR(exact, 10.0, 1e-9);

  analog::AnalogSolveOptions opt;
  opt.config = test_config();

  analog::Crossbar clean(3, 3, {});
  ASSERT_TRUE(clean.program(analog::Crossbar::cells_for_graph(g)).success);
  opt.perturb = clean.link_perturbation(g);
  const auto r_clean = analog::AnalogMaxFlowSolver(opt).solve(g);
  EXPECT_LT(std::abs(r_clean.flow_value_hw - r_clean.flow_value),
            0.01 * exact);

  analog::Crossbar dark(3, 3, {});
  ASSERT_TRUE(dark.program({{0, 1}, {1, 2}}).success); // (0,2) left HRS
  opt.perturb = dark.link_perturbation(g);
  const auto r_dark = analog::AnalogMaxFlowSolver(opt).solve(g);
  EXPECT_GT(std::abs(r_dark.flow_value_hw - r_dark.flow_value),
            0.2 * exact);
}

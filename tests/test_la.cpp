// Sparse linear algebra: triplet compression, matvec, orderings, LU.
#include <gtest/gtest.h>

#include <random>

#include "la/lu.hpp"
#include "la/ordering.hpp"
#include "la/sparse.hpp"

namespace la = aflow::la;

TEST(Triplets, DuplicatesAreSummed) {
  la::Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(2, 1, -4.0);
  const auto m = la::SparseMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), -4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(Triplets, NegativeIndexThrows) {
  la::Triplets t;
  EXPECT_THROW(t.add(-1, 0, 1.0), std::invalid_argument);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  la::Triplets t(3, 3);
  t.add(0, 0, 2.0);
  t.add(0, 2, 1.0);
  t.add(1, 1, -1.0);
  t.add(2, 0, 5.0);
  const auto m = la::SparseMatrix::from_triplets(t);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(SparseMatrix, SymmetricAdjacencyIgnoresDiagonal) {
  la::Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(2, 0, 1.0);
  const auto adj = la::SparseMatrix::from_triplets(t).symmetric_adjacency();
  EXPECT_EQ(adj[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(adj[1], (std::vector<int>{0}));
  EXPECT_EQ(adj[2], (std::vector<int>{0}));
}

TEST(Ordering, PermutationsAreValid) {
  la::Triplets t(4, 4);
  for (int i = 0; i < 4; ++i) t.add(i, i, 1.0);
  t.add(0, 3, 1.0);
  t.add(3, 0, 1.0);
  const auto m = la::SparseMatrix::from_triplets(t);
  for (auto perm : {la::minimum_degree_order(m), la::rcm_order(m)}) {
    std::vector<char> seen(4, 0);
    for (int p : perm) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, 4);
      EXPECT_FALSE(seen[p]) << "duplicate in permutation";
      seen[p] = 1;
    }
  }
}

TEST(Ordering, InvertPermutation) {
  const std::vector<int> p = {2, 0, 1};
  const auto inv = la::invert_permutation(p);
  EXPECT_EQ(inv, (std::vector<int>{1, 2, 0}));
}

namespace {

/// Random diagonally-dominant-ish sparse system for LU validation.
la::SparseMatrix random_system(int n, double density, std::mt19937_64& rng,
                               la::Triplets* out_triplets = nullptr) {
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::bernoulli_distribution hit(density);
  la::Triplets t(n, n);
  for (int i = 0; i < n; ++i) {
    t.add(i, i, 4.0 + val(rng));
    for (int j = 0; j < n; ++j)
      if (i != j && hit(rng)) t.add(i, j, val(rng));
  }
  if (out_triplets) *out_triplets = t;
  return la::SparseMatrix::from_triplets(t);
}

} // namespace

class SparseLUParam
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SparseLUParam, SolveMatchesMultiply) {
  const auto [n, density, seed] = GetParam();
  std::mt19937_64 rng(seed);
  const auto a = random_system(n, density, rng);

  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = val(rng);
  std::vector<double> b(n);
  a.multiply(x_true, b);

  for (auto ordering : {la::SparseLU::Ordering::kMinDegree,
                        la::SparseLU::Ordering::kRcm,
                        la::SparseLU::Ordering::kNatural}) {
    la::SparseLU::Options opt;
    opt.ordering = ordering;
    la::SparseLU lu(opt);
    lu.factor(a);
    std::vector<double> x(n);
    lu.solve(b, x);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], x_true[i], 1e-8) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SparseLUParam,
    ::testing::Values(std::make_tuple(5, 0.5, 1), std::make_tuple(20, 0.2, 2),
                      std::make_tuple(50, 0.1, 3), std::make_tuple(100, 0.05, 4),
                      std::make_tuple(200, 0.02, 5),
                      std::make_tuple(400, 0.01, 6)));

TEST(SparseLU, RefactorReusesOrdering) {
  std::mt19937_64 rng(7);
  la::Triplets t;
  const auto a = random_system(60, 0.1, rng, &t);
  la::SparseLU lu;
  lu.factor(a);

  // Same pattern, scaled values.
  la::Triplets t2(60, 60);
  for (const auto& e : t.entries()) t2.add(e.row, e.col, e.value * 2.0);
  const auto a2 = la::SparseMatrix::from_triplets(t2);
  lu.refactor(a2);

  std::vector<double> x_true(60, 1.0), b(60), x(60);
  a2.multiply(x_true, b);
  lu.solve(b, x);
  for (int i = 0; i < 60; ++i) EXPECT_NEAR(x[i], 1.0, 1e-8);
}

TEST(SparseLU, SingularMatrixThrows) {
  la::Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  // Column/row 2 empty -> structurally singular.
  t.add(2, 2, 0.0);
  la::SparseLU lu;
  EXPECT_THROW(lu.factor(la::SparseMatrix::from_triplets(t)),
               la::SingularMatrixError);
}

TEST(SparseLU, NonSquareThrows) {
  la::Triplets t(2, 3);
  t.add(0, 0, 1.0);
  t.add(1, 2, 1.0);
  la::SparseLU lu;
  EXPECT_THROW(lu.factor(la::SparseMatrix::from_triplets(t)),
               std::invalid_argument);
}

TEST(SparseLU, PivotingHandlesZeroDiagonal) {
  // [[0 1], [1 0]] needs row pivoting.
  la::Triplets t(2, 2);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  la::SparseLU lu;
  lu.factor(la::SparseMatrix::from_triplets(t));
  std::vector<double> b = {3.0, 4.0}, x(2);
  lu.solve(b, x);
  EXPECT_DOUBLE_EQ(x[0], 4.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(DenseLU, SolvesAndDetectsSingular) {
  std::vector<double> a = {2, 1, 1, 3};
  std::vector<double> b = {5, 10}, x(2);
  ASSERT_TRUE(la::dense::lu_solve(a, 2, b, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  std::vector<double> singular = {1, 2, 2, 4};
  EXPECT_FALSE(la::dense::lu_solve(singular, 2, b, x));
}

TEST(Norms, InfAndTwo) {
  const std::vector<double> v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(la::norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(la::norm2(v), 5.0);
}

// Sparse linear algebra: triplet compression, matvec, orderings, LU.
#include <gtest/gtest.h>

#include <random>

#include "la/lu.hpp"
#include "la/ordering.hpp"
#include "la/sparse.hpp"

namespace la = aflow::la;

TEST(Triplets, DuplicatesAreSummed) {
  la::Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(2, 1, -4.0);
  const auto m = la::SparseMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), -4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(Triplets, NegativeIndexThrows) {
  la::Triplets t;
  EXPECT_THROW(t.add(-1, 0, 1.0), std::invalid_argument);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  la::Triplets t(3, 3);
  t.add(0, 0, 2.0);
  t.add(0, 2, 1.0);
  t.add(1, 1, -1.0);
  t.add(2, 0, 5.0);
  const auto m = la::SparseMatrix::from_triplets(t);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(SparseMatrix, SymmetricAdjacencyIgnoresDiagonal) {
  la::Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(2, 0, 1.0);
  const auto adj = la::SparseMatrix::from_triplets(t).symmetric_adjacency();
  EXPECT_EQ(adj[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(adj[1], (std::vector<int>{0}));
  EXPECT_EQ(adj[2], (std::vector<int>{0}));
}

TEST(Ordering, PermutationsAreValid) {
  la::Triplets t(4, 4);
  for (int i = 0; i < 4; ++i) t.add(i, i, 1.0);
  t.add(0, 3, 1.0);
  t.add(3, 0, 1.0);
  const auto m = la::SparseMatrix::from_triplets(t);
  for (auto perm : {la::minimum_degree_order(m), la::rcm_order(m)}) {
    std::vector<char> seen(4, 0);
    for (int p : perm) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, 4);
      EXPECT_FALSE(seen[p]) << "duplicate in permutation";
      seen[p] = 1;
    }
  }
}

TEST(Ordering, InvertPermutation) {
  const std::vector<int> p = {2, 0, 1};
  const auto inv = la::invert_permutation(p);
  EXPECT_EQ(inv, (std::vector<int>{1, 2, 0}));
}

namespace {

/// Random diagonally-dominant-ish sparse system for LU validation.
la::SparseMatrix random_system(int n, double density, std::mt19937_64& rng,
                               la::Triplets* out_triplets = nullptr) {
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::bernoulli_distribution hit(density);
  la::Triplets t(n, n);
  for (int i = 0; i < n; ++i) {
    t.add(i, i, 4.0 + val(rng));
    for (int j = 0; j < n; ++j)
      if (i != j && hit(rng)) t.add(i, j, val(rng));
  }
  if (out_triplets) *out_triplets = t;
  return la::SparseMatrix::from_triplets(t);
}

} // namespace

class SparseLUParam
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SparseLUParam, SolveMatchesMultiply) {
  const auto [n, density, seed] = GetParam();
  std::mt19937_64 rng(seed);
  const auto a = random_system(n, density, rng);

  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = val(rng);
  std::vector<double> b(n);
  a.multiply(x_true, b);

  for (auto ordering : {la::SparseLU::Ordering::kMinDegree,
                        la::SparseLU::Ordering::kRcm,
                        la::SparseLU::Ordering::kNatural}) {
    la::SparseLU::Options opt;
    opt.ordering = ordering;
    la::SparseLU lu(opt);
    lu.factor(a);
    std::vector<double> x(n);
    lu.solve(b, x);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], x_true[i], 1e-8) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SparseLUParam,
    ::testing::Values(std::make_tuple(5, 0.5, 1), std::make_tuple(20, 0.2, 2),
                      std::make_tuple(50, 0.1, 3), std::make_tuple(100, 0.05, 4),
                      std::make_tuple(200, 0.02, 5),
                      std::make_tuple(400, 0.01, 6)));

TEST(SparseLU, RefactorReusesOrdering) {
  std::mt19937_64 rng(7);
  la::Triplets t;
  const auto a = random_system(60, 0.1, rng, &t);
  la::SparseLU lu;
  lu.factor(a);

  // Same pattern, scaled values: the numeric-only fast path must engage.
  la::Triplets t2(60, 60);
  for (const auto& e : t.entries()) t2.add(e.row, e.col, e.value * 2.0);
  const auto a2 = la::SparseMatrix::from_triplets(t2);
  EXPECT_TRUE(lu.refactor(a2));

  std::vector<double> x_true(60, 1.0), b(60), x(60);
  a2.multiply(x_true, b);
  lu.solve(b, x);
  for (int i = 0; i < 60; ++i) EXPECT_NEAR(x[i], 1.0, 1e-8);
}

TEST(SparseLU, NumericRefactorMatchesFullFactor) {
  // Randomly re-valued same-pattern systems must solve identically through
  // refactor and through a fresh factor (to LU round-off).
  std::mt19937_64 rng(11);
  la::Triplets t;
  const auto a = random_system(120, 0.05, rng, &t);
  la::SparseLU reused;
  reused.factor(a);

  std::uniform_real_distribution<double> val(0.5, 2.0);
  for (int round = 0; round < 5; ++round) {
    la::Triplets t2(120, 120);
    for (const auto& e : t.entries()) t2.add(e.row, e.col, e.value * val(rng));
    const auto a2 = la::SparseMatrix::from_triplets(t2);
    ASSERT_TRUE(reused.refactor(a2)) << "round " << round;

    la::SparseLU fresh;
    fresh.factor(a2);

    std::vector<double> x_true(120), b(120), x_re(120), x_full(120);
    for (auto& v : x_true) v = val(rng);
    a2.multiply(x_true, b);
    reused.solve(b, x_re);
    fresh.solve(b, x_full);
    for (int i = 0; i < 120; ++i) {
      EXPECT_NEAR(x_re[i], x_true[i], 1e-9);
      EXPECT_NEAR(x_re[i], x_full[i], 1e-10);
    }
  }
}

TEST(SparseLU, RefactorFallsBackOnPatternChange) {
  std::mt19937_64 rng(13);
  const auto a = random_system(40, 0.1, rng);
  la::SparseLU lu;
  lu.factor(a);

  // Different pattern: refactor must take the full-factorisation path and
  // still produce a valid solve.
  std::mt19937_64 rng2(14);
  const auto b_mat = random_system(40, 0.2, rng2);
  EXPECT_FALSE(lu.refactor(b_mat));

  std::vector<double> x_true(40, 2.0), b(40), x(40);
  b_mat.multiply(x_true, b);
  lu.solve(b, x);
  for (int i = 0; i < 40; ++i) EXPECT_NEAR(x[i], 2.0, 1e-8);
}

TEST(SparseLU, RefactorFallsBackOnPivotDegradation) {
  // Factor a diagonally dominant system, then refactor with the dominance
  // inverted so the frozen pivot order would be numerically disastrous: the
  // fast path must decline and re-pivot.
  la::Triplets t(2, 2);
  t.add(0, 0, 10.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 10.0);
  la::SparseLU lu;
  lu.factor(la::SparseMatrix::from_triplets(t));

  la::Triplets t2(2, 2);
  t2.add(0, 0, 1e-14);
  t2.add(0, 1, 1.0);
  t2.add(1, 0, 1.0);
  t2.add(1, 1, 1e-14);
  const auto a2 = la::SparseMatrix::from_triplets(t2);
  EXPECT_FALSE(lu.refactor(a2));

  std::vector<double> b = {1.0, 2.0}, x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 1.0, 1e-9);
}

TEST(SparseLU, RefactorWithoutFactorBehavesLikeFactor) {
  std::mt19937_64 rng(17);
  const auto a = random_system(30, 0.1, rng);
  la::SparseLU lu;
  EXPECT_FALSE(lu.refactor(a)); // nothing to reuse yet
  EXPECT_TRUE(lu.factored());
}

TEST(SparseLU, SeededColumnOrderSkipsAnalysisAndStaysCorrect) {
  std::mt19937_64 rng(19);
  la::Triplets t;
  const auto a = random_system(50, 0.1, rng, &t);

  la::SparseLU first;
  first.factor(a);
  const std::vector<int> order = first.column_order();

  la::SparseLU seeded;
  seeded.seed_column_order(order);
  seeded.factor(a);
  EXPECT_EQ(seeded.column_order(), order);

  std::vector<double> x_true(50, -1.5), b(50), x(50);
  a.multiply(x_true, b);
  seeded.solve(b, x);
  for (int i = 0; i < 50; ++i) EXPECT_NEAR(x[i], -1.5, 1e-8);
}

TEST(SparseLU, SingularRefactorLeavesSolverReusable) {
  la::Triplets good(2, 2);
  good.add(0, 0, 2.0);
  good.add(1, 1, 3.0);
  good.add(0, 1, 1.0);
  la::SparseLU lu;
  lu.factor(la::SparseMatrix::from_triplets(good));

  la::Triplets bad(2, 2);
  bad.add(0, 0, 0.0);
  bad.add(1, 1, 0.0);
  bad.add(0, 1, 0.0);
  EXPECT_THROW(lu.refactor(la::SparseMatrix::from_triplets(bad)),
               la::SingularMatrixError);
  EXPECT_FALSE(lu.factored()); // invalidated, not corrupted

  lu.factor(la::SparseMatrix::from_triplets(good));
  std::vector<double> b = {2.0, 3.0}, x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0], 0.5, 1e-12);
}

TEST(OrderingCache, SharesOrderingsByPattern) {
  std::mt19937_64 rng(23);
  la::Triplets t;
  const auto a = random_system(40, 0.1, rng, &t);
  const auto key = la::OrderingCache::pattern_key(a);

  la::OrderingCache cache;
  EXPECT_FALSE(cache.find(key).has_value());

  la::SparseLU lu;
  lu.factor(a);
  cache.store(key, lu.column_order());
  ASSERT_TRUE(cache.find(key).has_value());
  EXPECT_EQ(*cache.find(key), lu.column_order());
  EXPECT_EQ(cache.size(), 1u);

  // Same pattern, different values -> same key; different pattern -> not.
  la::Triplets t2(40, 40);
  for (const auto& e : t.entries()) t2.add(e.row, e.col, e.value * 3.0);
  EXPECT_EQ(la::OrderingCache::pattern_key(la::SparseMatrix::from_triplets(t2)),
            key);
  std::mt19937_64 rng2(24);
  EXPECT_NE(la::OrderingCache::pattern_key(random_system(40, 0.2, rng2)), key);
}

TEST(SparseMatrix, SlotMapUpdateMatchesRecompression) {
  la::Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0); // duplicate: summed into one slot
  t.add(2, 1, -4.0);
  t.add(1, 2, 9.0);
  std::vector<int> slots;
  auto m = la::SparseMatrix::from_triplets(t, &slots);
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(slots[0], slots[1]);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);

  // Re-stamp the same sequence with new values; in-place update must agree
  // with a fresh compression.
  la::Triplets t2(3, 3);
  t2.add(0, 0, -1.0);
  t2.add(0, 0, 0.5);
  t2.add(2, 1, 7.0);
  t2.add(1, 2, 0.0);
  m.update_values(t2.entries(), slots);
  EXPECT_DOUBLE_EQ(m.at(0, 0), -0.5);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 7.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
  EXPECT_EQ(m.nnz(), 3); // pattern unchanged
}

TEST(Triplets, ResetKeepsDimensionsAndClearsEntries) {
  la::Triplets t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 2.0);
  t.reset(3, 3);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_TRUE(t.entries().empty());
}

TEST(SparseLU, SingularMatrixThrows) {
  la::Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  // Column/row 2 empty -> structurally singular.
  t.add(2, 2, 0.0);
  la::SparseLU lu;
  EXPECT_THROW(lu.factor(la::SparseMatrix::from_triplets(t)),
               la::SingularMatrixError);
}

TEST(SparseLU, NonSquareThrows) {
  la::Triplets t(2, 3);
  t.add(0, 0, 1.0);
  t.add(1, 2, 1.0);
  la::SparseLU lu;
  EXPECT_THROW(lu.factor(la::SparseMatrix::from_triplets(t)),
               std::invalid_argument);
}

TEST(SparseLU, PivotingHandlesZeroDiagonal) {
  // [[0 1], [1 0]] needs row pivoting.
  la::Triplets t(2, 2);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  la::SparseLU lu;
  lu.factor(la::SparseMatrix::from_triplets(t));
  std::vector<double> b = {3.0, 4.0}, x(2);
  lu.solve(b, x);
  EXPECT_DOUBLE_EQ(x[0], 4.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(DenseLU, SolvesAndDetectsSingular) {
  std::vector<double> a = {2, 1, 1, 3};
  std::vector<double> b = {5, 10}, x(2);
  ASSERT_TRUE(la::dense::lu_solve(a, 2, b, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  std::vector<double> singular = {1, 2, 2, 4};
  EXPECT_FALSE(la::dense::lu_solve(singular, 2, b, x));
}

TEST(Norms, InfAndTwo) {
  const std::vector<double> v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(la::norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(la::norm2(v), 5.0);
}

// Fault-tolerance battery: cooperative cancellation (CancelToken), the
// deterministic fault-injection harness (util::FaultInjector), and the
// graceful-degradation ladder of the serving stack — deadlines come back
// as structured retryable errors within their bound, an analog divergence
// degrades to the digital fallback bank, a failed sharded region is
// retried then solved directly, a poisoned ReusePool store leaves the
// pool's counters reconciled, and a fault that hits one session never
// perturbs another session's (schedule-independent) response bits.
#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/errors.hpp"
#include "core/reuse_pool.hpp"
#include "core/serve_engine.hpp"
#include "core/sharded_solver.hpp"
#include "core/workload.hpp"
#include "flow/maxflow.hpp"
#include "graph/network.hpp"
#include "util/cancel.hpp"
#include "util/fault_injector.hpp"

namespace core = aflow::core;
namespace flow = aflow::flow;
namespace graph = aflow::graph;
namespace util = aflow::util;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Every test arms its own schedule; this guard guarantees the process-wide
/// injector is disarmed again even when an assertion fails mid-test.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    util::FaultInjector::instance().arm(spec);
  }
  ~FaultGuard() { util::FaultInjector::instance().disarm(); }
};

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

/// Removes the trailing `,"telemetry":{...}` object so responses compare
/// schedule-independently (same helper shape as test_serve_concurrent).
std::string strip_telemetry(std::string s) {
  const std::string key = ",\"telemetry\":{";
  const size_t at = s.find(key);
  if (at == std::string::npos) return s;
  size_t depth = 0;
  size_t i = at + key.size() - 1;
  for (; i < s.size(); ++i) {
    if (s[i] == '{') ++depth;
    if (s[i] == '}' && --depth == 0) break;
  }
  s.erase(at, i - at + 1);
  return s;
}

} // namespace

// ------------------------------------------------------------ CancelToken

TEST(CancelToken, DefaultTokenNeverCancels) {
  const util::CancelToken t;
  EXPECT_FALSE(t.can_cancel());
  EXPECT_FALSE(t.cancelled());
  EXPECT_NO_THROW(t.check());
  t.cancel(); // no-op on a stateless token
  EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, ExplicitCancelThrowsWithReason) {
  const util::CancelToken t = util::CancelToken::cancellable();
  EXPECT_NO_THROW(t.check());
  t.cancel();
  EXPECT_TRUE(t.cancelled());
  try {
    t.check();
    FAIL() << "check() must throw after cancel()";
  } catch (const util::CancelledError& e) {
    EXPECT_EQ(e.reason(), util::CancelReason::kCancelled);
  }
}

TEST(CancelToken, DeadlineTripsWithDeadlineReason) {
  const util::CancelToken t =
      util::CancelToken::with_timeout(std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  try {
    t.check();
    FAIL() << "check() must throw after the deadline";
  } catch (const util::CancelledError& e) {
    EXPECT_EQ(e.reason(), util::CancelReason::kDeadline);
  }
}

TEST(CancelToken, CancellingTheParentCancelsTheChildNotViceVersa) {
  const util::CancelToken session = util::CancelToken::cancellable();
  const util::CancelToken request = session.child();
  EXPECT_FALSE(request.cancelled());

  const util::CancelToken other = session.child();
  other.cancel(); // a child's flag never propagates up or sideways
  EXPECT_FALSE(session.cancelled());
  EXPECT_FALSE(request.cancelled());

  session.cancel();
  EXPECT_TRUE(request.cancelled());
}

TEST(CancelToken, ChildDeadlineIsIndependentOfTheParent) {
  const util::CancelToken session = util::CancelToken::cancellable();
  const util::CancelToken request = session.child(5);
  ASSERT_TRUE(request.deadline().has_value());
  EXPECT_FALSE(session.deadline().has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(request.cancelled());
  EXPECT_FALSE(session.cancelled());
}

// ---------------------------------------------------------- FaultInjector

TEST(FaultInjector, ScheduleGrammarRejectsNonsense) {
  auto& inj = util::FaultInjector::instance();
  EXPECT_THROW(inj.arm("siteonly"), std::invalid_argument);
  EXPECT_THROW(inj.arm("site:explode"), std::invalid_argument);
  EXPECT_THROW(inj.arm("site:throw:after=x"), std::invalid_argument);
  EXPECT_FALSE(inj.armed()); // a rejected schedule leaves it disarmed
}

TEST(FaultInjector, AfterAndCountGateFirings) {
  const FaultGuard guard("s:throw:after=2:count=2");
  auto& inj = util::FaultInjector::instance();
  EXPECT_NO_THROW(inj.fire("s")); // arrival 0: skipped
  EXPECT_NO_THROW(inj.fire("s")); // arrival 1: skipped
  EXPECT_THROW(inj.fire("s"), std::runtime_error);
  EXPECT_THROW(inj.fire("s"), std::runtime_error);
  EXPECT_NO_THROW(inj.fire("s")); // count exhausted
  EXPECT_EQ(inj.arrivals("s"), 5);
  EXPECT_EQ(inj.fired("s"), 2);
  EXPECT_NO_THROW(inj.fire("t")); // other sites unaffected
}

TEST(FaultInjector, TakeMatchesActionKind) {
  const FaultGuard guard("w:short");
  auto& inj = util::FaultInjector::instance();
  EXPECT_FALSE(inj.take("w", util::FaultInjector::Action::kDiverge));
  EXPECT_TRUE(inj.take("w", util::FaultInjector::Action::kShort));
  EXPECT_FALSE(inj.take("w", util::FaultInjector::Action::kShort)); // count=1
}

// ------------------------------------------------- ReusePool exception safety

TEST(ReusePool, FailedStoreLeavesCountersReconciled) {
  core::ReusePool pool(1 << 20);
  core::ReuseEntry entry;
  entry.x = std::make_shared<std::vector<double>>(256, 1.0);

  {
    const FaultGuard guard("pool.store:badalloc");
    EXPECT_THROW(pool.store(42, entry), std::bad_alloc);
  }
  // Strong guarantee: the failed publish left no entry, no bytes, and no
  // store count — the pool is exactly as it was.
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.bytes(), 0u);
  EXPECT_EQ(pool.stats().stores, 0);
  EXPECT_EQ(pool.find(42), nullptr);

  // The same store succeeds once the fault is gone, and the books balance.
  pool.store(42, entry);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_GT(pool.bytes(), 0u);
  EXPECT_EQ(pool.stats().stores, 1);
  EXPECT_NE(pool.find(42), nullptr);

  // The drop rung: removing the entry reverses the accounting and counts.
  EXPECT_TRUE(pool.drop(42));
  EXPECT_FALSE(pool.drop(42));
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.bytes(), 0u);
  EXPECT_EQ(pool.stats().drops, 1);
}

// ---------------------------------------------------- deadlines in the engine

TEST(Deadlines, BatchSolveDeadlineIsStructuredAndBounded) {
  const FaultGuard guard("batch.solve:delay:10000");
  core::BatchOptions bo;
  bo.solver = "dinic";
  bo.cancel = util::CancelToken::with_timeout(std::chrono::milliseconds(300));
  const std::vector<graph::FlowNetwork> one =
      core::load_batch("grid:side=4,seed=1");

  const auto t0 = Clock::now();
  const core::BatchReport report = core::BatchEngine(bo).run(one);
  const double elapsed = ms_since(t0);

  ASSERT_EQ(report.failed, 1);
  const core::InstanceOutcome& out = report.outcomes.front();
  EXPECT_EQ(out.error_info.code, "deadline_exceeded");
  EXPECT_TRUE(out.error_info.retryable);
  // The injected stall is 10 s; the 300 ms deadline must cut it inside the
  // 2x bound (the injector re-checks the token every 10 ms slice).
  EXPECT_LT(elapsed, 600.0) << "deadline not honoured within 2x";
}

TEST(Deadlines, ServeDeadlineMsFlagYieldsRetryableError) {
  const FaultGuard guard("batch.solve:delay:10000");
  core::ServeEngine engine;
  ASSERT_TRUE(contains(engine.handle("load --spec grid:side=4,seed=1"),
                       "\"ok\":true"));
  const auto t0 = Clock::now();
  const std::string r =
      engine.handle("solve --solver dinic --deadline-ms 250");
  const double elapsed = ms_since(t0);
  EXPECT_TRUE(contains(r, "\"ok\":false")) << r;
  EXPECT_TRUE(contains(r, "\"code\":\"deadline_exceeded\"")) << r;
  EXPECT_TRUE(contains(r, "\"retryable\":true")) << r;
  EXPECT_LT(elapsed, 500.0) << "deadline not honoured within 2x";
}

TEST(Deadlines, SessionDefaultDeadlineAppliesAndClears) {
  core::ServeEngine engine;
  ASSERT_TRUE(contains(engine.handle("load --spec grid:side=4,seed=1"),
                       "\"ok\":true"));
  ASSERT_TRUE(contains(engine.handle("deadline --ms 200"),
                       "\"deadline_ms\":200"));
  {
    const FaultGuard guard("batch.solve:delay:10000");
    const std::string r = engine.handle("solve --solver dinic");
    EXPECT_TRUE(contains(r, "\"code\":\"deadline_exceeded\"")) << r;
  }
  // Clearing the default (and removing the fault) restores full service
  // on the SAME session: deadline expiry is retryable by construction.
  ASSERT_TRUE(contains(engine.handle("deadline --ms 0"), "\"ok\":true"));
  const std::string ok = engine.handle("solve --solver dinic");
  EXPECT_TRUE(contains(ok, "\"ok\":true")) << ok;
  EXPECT_TRUE(contains(ok, "\"flow\":90")) << ok;
}

// ----------------------------------------------------- degradation ladder

TEST(DegradationLadder, InjectedSolveFaultIsStructuredAndTransient) {
  core::ServeEngine engine;
  ASSERT_TRUE(contains(engine.handle("load --spec grid:side=4,seed=1"),
                       "\"ok\":true"));
  {
    const FaultGuard guard("batch.solve:throw");
    const std::string r = engine.handle("solve --solver dinic");
    EXPECT_TRUE(contains(r, "\"ok\":false")) << r;
    EXPECT_TRUE(contains(r, "\"code\":\"fault_injected\"")) << r;
    EXPECT_TRUE(contains(r, "\"retryable\":true")) << r;
  }
  // The engine survived; the retry the error invited succeeds.
  const std::string r2 = engine.handle("solve --solver dinic");
  EXPECT_TRUE(contains(r2, "\"ok\":true")) << r2;
  EXPECT_TRUE(contains(r2, "\"flow\":90")) << r2;
}

TEST(DegradationLadder, AnalogDivergenceFallsBackToDigitalBank) {
  const FaultGuard guard("transient.step:diverge");
  core::ServeEngine engine;
  ASSERT_TRUE(contains(engine.handle("load --spec grid:side=4,seed=1"),
                       "\"ok\":true"));
  const std::string r = engine.handle("solve --solver analog_transient");
  // The analog bank diverged (injected); the digital fallback bank must
  // rescue the request with the exact answer, visibly.
  EXPECT_TRUE(contains(r, "\"ok\":true")) << r;
  EXPECT_TRUE(contains(r, "\"fallback\":true")) << r;
  EXPECT_TRUE(contains(r, "\"solver\":\"dinic\"")) << r;
  EXPECT_TRUE(contains(r, "\"flow\":90")) << r;
  // ...and the rung is telemetry-visible in the engine stats.
  const std::string stats = engine.handle("stats");
  EXPECT_TRUE(contains(stats, "\"fallback_analog_digital\":1")) << stats;
}

TEST(DegradationLadder, DivergenceWithoutFallbackCarriesDiagnosis) {
  const FaultGuard guard("transient.step:diverge");
  core::ServeOptions opt;
  opt.fallback_solver.clear(); // disable the rung: surface the raw error
  core::ServeEngine engine(opt);
  ASSERT_TRUE(contains(engine.handle("load --spec grid:side=4,seed=1"),
                       "\"ok\":true"));
  const std::string r = engine.handle("solve --solver analog_transient");
  EXPECT_TRUE(contains(r, "\"ok\":false")) << r;
  EXPECT_TRUE(contains(r, "\"code\":\"divergence\"")) << r;
  EXPECT_TRUE(contains(r, "\"retryable\":true")) << r;
  // The DivergenceError diagnosis survives to the response as typed fields.
  EXPECT_TRUE(contains(r, "\"growth_per_step\":")) << r;
  EXPECT_TRUE(contains(r, "\"probe\":")) << r;
}

TEST(DegradationLadder, FailedShardedRegionIsRetriedThenExact) {
  const FaultGuard guard("shard.region:throw");
  const graph::FlowNetwork net = core::load_batch("grid:side=6,seed=1").front();
  const double expect = flow::dinic(net).flow_value;

  core::ShardOptions so;
  so.shards = 3;
  so.deterministic = true;
  const core::ShardedSolver solver(so);
  core::ShardReport rep;
  const flow::MaxFlowResult r =
      solver.solve_csr(graph::CsrGraph::from_network(net), &rep);
  EXPECT_DOUBLE_EQ(r.flow_value, expect);
  EXPECT_GE(rep.region_retries, 1);
  EXPECT_EQ(r.metrics.fallback_region_retries, rep.region_retries);
}

TEST(DegradationLadder, RegionRetryExhaustionFallsBackToDirectSolve) {
  // Two rules aimed at the SAME region. Rule 1 throws out of the first
  // make() call BEFORE rule 2's arrival counter increments, so rule 2 runs
  // one arrival behind: with R regions it sees the other R-1 initial solves
  // as arrivals 0..R-2 and the failed region's retry as arrival R-1. Both
  // rules hit the same region, the single configured retry exhausts, and
  // the direct local re-solve rung must still produce the exact flow.
  // R comes from a clean dry run — the partitioner may legitimately return
  // more regions than the requested shard count.
  const graph::FlowNetwork net = core::load_batch("grid:side=6,seed=1").front();
  const double expect = flow::dinic(net).flow_value;

  core::ShardOptions so;
  so.shards = 3;
  so.deterministic = true;
  const core::ShardedSolver solver(so);
  core::ShardReport dry;
  solver.solve_csr(graph::CsrGraph::from_network(net), &dry);
  ASSERT_GE(dry.regions, 2);

  const FaultGuard guard("shard.region:throw;shard.region:throw:after=" +
                         std::to_string(dry.regions - 1));
  core::ShardReport rep;
  const flow::MaxFlowResult r =
      solver.solve_csr(graph::CsrGraph::from_network(net), &rep);
  EXPECT_DOUBLE_EQ(r.flow_value, expect);
  EXPECT_GE(rep.region_retries, 1);
  EXPECT_GE(rep.region_direct_solves, 1)
      << "regions=" << dry.regions << " retries=" << rep.region_retries
      << " arrivals=" << util::FaultInjector::instance().arrivals("shard.region")
      << " fired=" << util::FaultInjector::instance().fired("shard.region");
  EXPECT_EQ(r.metrics.fallback_region_direct, rep.region_direct_solves);
}

TEST(DegradationLadder, ServeShardedSolveSurvivesRegionFaultVisibly) {
  const FaultGuard guard("shard.region:throw");
  core::ServeOptions opt;
  opt.deterministic = true;
  core::ServeEngine engine(opt);
  ASSERT_TRUE(contains(engine.handle("load --spec grid:side=6,seed=1"),
                       "\"ok\":true"));
  const std::string r = engine.handle("solve --shards 3");
  EXPECT_TRUE(contains(r, "\"ok\":true")) << r;
  EXPECT_TRUE(contains(r, "\"flow\":208")) << r;
  EXPECT_TRUE(contains(r, "\"region_retries\":1")) << r;
}

// ------------------------------------------------------- session isolation

TEST(SessionIsolation, FaultInOneSessionLeavesAnotherBitIdentical) {
  // Replay session B's request stream in a fault-free engine; then run the
  // same stream while session A is being bombarded with injected faults.
  // B's responses must match the replay bit-for-bit outside telemetry.
  const std::vector<std::string> script = {
      "load --spec grid:side=5,seed=1",
      "solve --solver dinic",
      "reconfigure --scale 2",
      "solve --solver dinic",
      "session",
  };

  std::vector<std::string> clean;
  {
    core::ServeEngine engine;
    const std::shared_ptr<core::ServeSession> b = engine.open_session();
    for (const std::string& line : script)
      clean.push_back(strip_telemetry(b->handle(line)));
  }

  {
    const FaultGuard guard("batch.solve:throw:count=0;pool.store:badalloc:count=0");
    core::ServeEngine engine;
    const std::shared_ptr<core::ServeSession> a = engine.open_session();
    const std::shared_ptr<core::ServeSession> b = engine.open_session();
    ASSERT_TRUE(contains(a->handle("load --spec grid:side=4,seed=1"),
                         "\"ok\":true"));

    // Interleave: A draws an injected fault before every B request. The
    // unlimited schedule would fail B's solves too — so B's success proves
    // isolation comes from the response path, not from fault exhaustion...
    std::vector<std::string> dirty;
    for (const std::string& line : script) {
      const std::string ra = a->handle("solve --solver push_relabel");
      EXPECT_TRUE(contains(ra, "\"fault_injected\"")) << ra;
      // ...except B's own solves must dodge the batch.solve site, so
      // disarm around exactly B's request and re-arm after (single-threaded
      // here; arm/disarm is not safe under concurrent fire()).
      util::FaultInjector::instance().disarm();
      dirty.push_back(strip_telemetry(b->handle(line)));
      util::FaultInjector::instance().arm(
          "batch.solve:throw:count=0;pool.store:badalloc:count=0");
    }

    ASSERT_EQ(dirty.size(), clean.size());
    for (size_t i = 0; i < clean.size(); ++i) {
      // Session ids differ between the two engines ("session":1 vs 2);
      // normalise that one schedule-independent field.
      std::string want = clean[i];
      const size_t at = want.find("\"session\":1");
      ASSERT_NE(at, std::string::npos) << want;
      want.replace(at, 11, "\"session\":2");
      EXPECT_EQ(dirty[i], want) << "response " << i << " diverged";
    }
  }
}

// --------------------------------------------------------- error schema

TEST(ErrorSchema, UnknownSolverIsFatalInvalidArgument) {
  core::ServeEngine engine;
  ASSERT_TRUE(contains(engine.handle("load --spec grid:side=4,seed=1"),
                       "\"ok\":true"));
  const std::string r = engine.handle("solve --solver no_such_backend");
  EXPECT_TRUE(contains(r, "\"ok\":false")) << r;
  EXPECT_TRUE(contains(r, "\"code\":\"invalid_argument\"")) << r;
  EXPECT_TRUE(contains(r, "\"retryable\":false")) << r;
}

TEST(ErrorSchema, EveryErrorResponseCarriesErrorInfo) {
  core::ServeEngine engine;
  const std::vector<std::string> bad = {
      "solve",                   // no instance loaded
      "nonsense",                // unknown request
      "reconfigure --scale -1",  // bad argument
      "batch",                   // missing --spec
      "deadline",                // missing --ms
  };
  for (const std::string& line : bad) {
    const std::string r = engine.handle(line);
    EXPECT_TRUE(contains(r, "\"ok\":false")) << r;
    EXPECT_TRUE(contains(r, "\"error_info\":{")) << r;
    EXPECT_TRUE(contains(r, "\"code\":")) << r;
    EXPECT_TRUE(contains(r, "\"retryable\":")) << r;
  }
}

// Clustered island-style architectures (Sec. 6.2): FM partitioning,
// placement, channel routing, and the utilisation argument.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "arch/clustered.hpp"
#include "arch/partition.hpp"
#include "graph/generators.hpp"

namespace arch = aflow::arch;
namespace graph = aflow::graph;

TEST(Partition, FmSeparatesTwoCliques) {
  // Two 4-cliques joined by one edge: optimal bipartition cuts exactly it.
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < 4; ++a)
    for (int b = a + 1; b < 4; ++b) {
      edges.emplace_back(a, b);
      edges.emplace_back(4 + a, 4 + b);
    }
  edges.emplace_back(0, 4);
  const auto r = arch::fm_bipartition(8, edges, 0.1, 3);
  EXPECT_EQ(r.cut_edges, 1);
  EXPECT_EQ(r.side[0], r.side[1]);
  EXPECT_EQ(r.side[0], r.side[3]);
  EXPECT_NE(r.side[0], r.side[4]);
}

TEST(Partition, FmRespectsBalance) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < 30; ++v) edges.emplace_back(0, v); // star
  const auto r = arch::fm_bipartition(30, edges, 0.1, 1);
  int left = 0;
  for (char s : r.side) left += s == 0;
  EXPECT_GE(left, 13);
  EXPECT_LE(left, 17);
}

TEST(Partition, IslandsRespectCapacity) {
  const auto g = graph::rmat_sparse(96, 5);
  const auto p = arch::partition_into_islands(g, 16, 5);
  std::vector<int> count(p.num_parts, 0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    ASSERT_GE(p.part[v], 0);
    ASSERT_LT(p.part[v], p.num_parts);
    count[p.part[v]]++;
  }
  for (int c : count) EXPECT_LE(c, 16);
  // Cut accounting is consistent.
  long long cut = 0;
  for (const auto& e : g.edges()) cut += p.part[e.from] != p.part[e.to];
  EXPECT_EQ(cut, p.cut_edges);
}

TEST(Partition, ClusteringBeatsRandomAssignment) {
  const auto g = graph::rmat_sparse(128, 9);
  const auto p = arch::partition_into_islands(g, 32, 9);
  // Random assignment into the same number of parts cuts ~ (1 - 1/parts)
  // of the edges; FM should do clearly better on a clustered R-MAT graph.
  const double random_cut =
      g.num_edges() * (1.0 - 1.0 / std::max(p.num_parts, 1));
  EXPECT_LT(static_cast<double>(p.cut_edges), 0.8 * random_cut);
}

TEST(Clustered, MappingIsConsistent) {
  const auto g = graph::rmat_sparse(128, 3);
  arch::ArchSpec spec;
  spec.island_capacity = 32;
  spec.channel_width = 1 << 20; // effectively unbounded: must route
  const auto m = arch::map_to_islands(g, spec, 3);

  EXPECT_TRUE(m.routed);
  EXPECT_EQ(m.intra_island_edges + m.inter_island_edges, g.num_edges());
  EXPECT_GT(m.islands, 1);
  EXPECT_GT(m.required_channel_width, 0);
  EXPECT_GE(m.total_wirelength, m.inter_island_edges); // >= 1 segment each
}

TEST(Clustered, UtilizationBeatsMonolithicOnSparseGraphs) {
  // The Sec. 6.2 motivation: a large sparse graph wastes a monolithic
  // n x n crossbar (utilisation ~ 1/n); islands recover utilisation.
  const auto g = graph::rmat_sparse(512, 7);
  arch::ArchSpec spec;
  spec.island_capacity = 32;
  const auto m = arch::map_to_islands(g, spec, 7);
  EXPECT_GT(m.clustered_utilization, 2.0 * m.monolithic_utilization);
}

TEST(Clustered, RoutingFailsWhenChannelTooNarrow) {
  const auto g = graph::rmat_sparse(128, 11);
  arch::ArchSpec spec;
  spec.island_capacity = 16;
  spec.channel_width = 1;
  const auto m = arch::map_to_islands(g, spec, 11);
  EXPECT_FALSE(m.routed);
  EXPECT_GT(m.required_channel_width, 1);
}

TEST(Clustered, Grid2DNeedsNoWiderChannelsThan1D) {
  // The Fig. 11 trade-off: 2-D routing spreads demand over many segments,
  // so its peak channel occupancy is at most the 1-D bundle's.
  const auto g = graph::rmat_sparse(192, 13);
  arch::ArchSpec d1;
  d1.island_capacity = 24;
  arch::ArchSpec d2 = d1;
  d2.style = arch::RoutingStyle::kGrid2D;
  d2.grid_columns = 3;
  const auto m1 = arch::map_to_islands(g, d1, 13);
  const auto m2 = arch::map_to_islands(g, d2, 13);
  EXPECT_LE(m2.required_channel_width, m1.required_channel_width);
}

TEST(Clustered, SingleIslandHasNoRouting) {
  const auto g = graph::rmat(20, 60, {}, 1);
  arch::ArchSpec spec;
  spec.island_capacity = 64; // whole graph fits
  const auto m = arch::map_to_islands(g, spec, 1);
  EXPECT_EQ(m.islands, 1);
  EXPECT_EQ(m.inter_island_edges, 0);
  EXPECT_EQ(m.required_channel_width, 0);
  EXPECT_TRUE(m.routed);
}

TEST(Clustered, RejectsBadSpecs) {
  const auto g = graph::rmat(20, 60, {}, 1);
  arch::ArchSpec bad;
  bad.island_capacity = 0;
  EXPECT_THROW(arch::map_to_islands(g, bad), std::invalid_argument);
  arch::ArchSpec bad2;
  bad2.style = arch::RoutingStyle::kGrid2D;
  bad2.grid_columns = 0;
  EXPECT_THROW(arch::map_to_islands(g, bad2), std::invalid_argument);
}

// ---- Seed-determinism and balance-tolerance pins (satellite battery) ----

TEST(Partition, FmIsSeedDeterministicOnLargerRandomGraphs) {
  // Two calls with identical (graph, tolerance, seed) must agree exactly:
  // downstream consumers (island mapping, sharded solve) rely on replayable
  // partitions.
  const auto g = graph::rmat_sparse(400, 21);
  std::vector<std::pair<int, int>> edges;
  for (const auto& e : g.edges()) edges.emplace_back(e.from, e.to);
  for (const std::uint64_t seed : {1ull, 7ull, 31ull}) {
    const auto a = arch::fm_bipartition(g.num_vertices(), edges, 0.1, seed);
    const auto b = arch::fm_bipartition(g.num_vertices(), edges, 0.1, seed);
    EXPECT_EQ(a.side, b.side) << "seed " << seed;
    EXPECT_EQ(a.cut_edges, b.cut_edges) << "seed " << seed;
  }
}

TEST(Partition, FmHonorsBalanceToleranceOnLargerRandomGraphs) {
  const auto g = graph::rmat_sparse(500, 13);
  std::vector<std::pair<int, int>> edges;
  for (const auto& e : g.edges()) edges.emplace_back(e.from, e.to);
  const int n = g.num_vertices();
  for (const double tol : {0.05, 0.1, 0.3}) {
    for (const std::uint64_t seed : {2ull, 11ull}) {
      const auto r = arch::fm_bipartition(n, edges, tol, seed);
      // The documented bound: each side <= ceil(n/2)(1 + tol).
      const int cap =
          static_cast<int>(std::ceil(((n + 1) / 2) * (1.0 + tol)));
      int left = 0;
      for (char s : r.side) left += s == 0;
      EXPECT_LE(left, cap) << "tol " << tol << " seed " << seed;
      EXPECT_LE(n - left, cap) << "tol " << tol << " seed " << seed;
    }
  }
}

TEST(Partition, IslandsAreSeedDeterministicOnLargerRandomGraphs) {
  const auto g = graph::rmat_sparse(300, 17);
  const auto a = arch::partition_into_islands(g, 48, 9);
  const auto b = arch::partition_into_islands(g, 48, 9);
  EXPECT_EQ(a.part, b.part);
  EXPECT_EQ(a.num_parts, b.num_parts);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
}

// ---- K-way region partitioner (sharded solve's decomposition) ----

TEST(Partition, RegionsCoverEveryVertexExactlyOnce) {
  const auto g = graph::rmat(220, 900, {}, 5);
  for (const int k : {2, 3, 4, 8}) {
    arch::RegionPartitionOptions opt;
    opt.regions = k;
    const auto p = arch::partition_regions(g, opt);
    ASSERT_EQ(p.num_regions, k);
    ASSERT_EQ(static_cast<int>(p.region.size()), g.num_vertices());
    std::vector<int> seen(g.num_vertices(), 0);
    for (int r = 0; r < k; ++r) {
      EXPECT_FALSE(p.vertices[r].empty()) << "region " << r;
      for (const int v : p.vertices[r]) {
        EXPECT_EQ(p.region[v], r);
        seen[v]++;
      }
      // Vertex lists are ascending (the sharded solver binary-searches
      // them for global->local mapping).
      EXPECT_TRUE(std::is_sorted(p.vertices[r].begin(), p.vertices[r].end()));
    }
    for (int v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(seen[v], 1) << v;
  }
}

TEST(Partition, RegionCutManifestIsExact) {
  const auto g = graph::uniform_random(150, 700, 24, 3);
  arch::RegionPartitionOptions opt;
  opt.regions = 4;
  const auto p = arch::partition_regions(g, opt);

  std::vector<std::int64_t> expect_cut;
  double expect_capacity = 0.0;
  for (int e = 0; e < g.num_edges(); ++e)
    if (p.region[g.edge(e).from] != p.region[g.edge(e).to]) {
      expect_cut.push_back(e);
      expect_capacity += g.edge(e).capacity;
    }
  EXPECT_EQ(p.cut_arcs, expect_cut);
  EXPECT_NEAR(p.cut_capacity, expect_capacity, 1e-9);

  // Boundary lists are exactly the cut-arc endpoints, per region.
  std::vector<std::vector<int>> expect_boundary(4);
  std::vector<char> on_boundary(g.num_vertices(), 0);
  for (const std::int64_t e : p.cut_arcs) {
    on_boundary[g.edge(static_cast<int>(e)).from] = 1;
    on_boundary[g.edge(static_cast<int>(e)).to] = 1;
  }
  for (int v = 0; v < g.num_vertices(); ++v)
    if (on_boundary[v]) expect_boundary[p.region[v]].push_back(v);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(p.boundary[r], expect_boundary[r]);
}

TEST(Partition, RegionsAreDeterministicAndAgreeAcrossGraphViews) {
  const auto net = graph::rmat(260, 1100, {}, 8);
  const graph::CsrGraph csr = graph::CsrGraph::from_network(net);
  arch::RegionPartitionOptions opt;
  opt.regions = 6;
  opt.seed = 17;
  const auto a = arch::partition_regions(net, opt);
  const auto b = arch::partition_regions(net, opt);
  const auto c = arch::partition_regions(csr, opt);
  EXPECT_EQ(a.region, b.region);
  // The FlowNetwork and CsrGraph overloads walk identical edge lists, so
  // the result must not depend on which view the caller holds.
  EXPECT_EQ(a.region, c.region);
  EXPECT_EQ(a.cut_arcs, c.cut_arcs);
  EXPECT_EQ(a.boundary, c.boundary);
}

TEST(Partition, RegionsValidateArguments) {
  const auto g = graph::rmat(30, 120, {}, 2);
  arch::RegionPartitionOptions bad;
  bad.regions = 0;
  EXPECT_THROW(arch::partition_regions(g, bad), std::invalid_argument);
  bad.regions = g.num_vertices() + 1;
  EXPECT_THROW(arch::partition_regions(g, bad), std::invalid_argument);

  arch::RegionPartitionOptions one;
  one.regions = 1;
  const auto p = arch::partition_regions(g, one);
  EXPECT_EQ(p.num_regions, 1);
  EXPECT_TRUE(p.cut_arcs.empty());
  EXPECT_EQ(static_cast<int>(p.vertices[0].size()), g.num_vertices());
}

TEST(Partition, RegionsStayRoughlyBalanced) {
  // Recursive bisection with per-split tolerance 0.1 cannot produce a
  // pathological region; allow generous slack but pin the order of
  // magnitude so a regression to one-giant-region fails loudly.
  const auto g = graph::gridflow(40, 40, 8, 6);
  arch::RegionPartitionOptions opt;
  opt.regions = 8;
  const auto p = arch::partition_regions(g, opt);
  const int ideal = g.num_vertices() / 8;
  for (int r = 0; r < 8; ++r) {
    EXPECT_GE(static_cast<int>(p.vertices[r].size()), ideal / 3) << r;
    EXPECT_LE(static_cast<int>(p.vertices[r].size()), ideal * 3) << r;
  }
}

// Clustered island-style architectures (Sec. 6.2): FM partitioning,
// placement, channel routing, and the utilisation argument.
#include <gtest/gtest.h>

#include "arch/clustered.hpp"
#include "arch/partition.hpp"
#include "graph/generators.hpp"

namespace arch = aflow::arch;
namespace graph = aflow::graph;

TEST(Partition, FmSeparatesTwoCliques) {
  // Two 4-cliques joined by one edge: optimal bipartition cuts exactly it.
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < 4; ++a)
    for (int b = a + 1; b < 4; ++b) {
      edges.emplace_back(a, b);
      edges.emplace_back(4 + a, 4 + b);
    }
  edges.emplace_back(0, 4);
  const auto r = arch::fm_bipartition(8, edges, 0.1, 3);
  EXPECT_EQ(r.cut_edges, 1);
  EXPECT_EQ(r.side[0], r.side[1]);
  EXPECT_EQ(r.side[0], r.side[3]);
  EXPECT_NE(r.side[0], r.side[4]);
}

TEST(Partition, FmRespectsBalance) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < 30; ++v) edges.emplace_back(0, v); // star
  const auto r = arch::fm_bipartition(30, edges, 0.1, 1);
  int left = 0;
  for (char s : r.side) left += s == 0;
  EXPECT_GE(left, 13);
  EXPECT_LE(left, 17);
}

TEST(Partition, IslandsRespectCapacity) {
  const auto g = graph::rmat_sparse(96, 5);
  const auto p = arch::partition_into_islands(g, 16, 5);
  std::vector<int> count(p.num_parts, 0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    ASSERT_GE(p.part[v], 0);
    ASSERT_LT(p.part[v], p.num_parts);
    count[p.part[v]]++;
  }
  for (int c : count) EXPECT_LE(c, 16);
  // Cut accounting is consistent.
  long long cut = 0;
  for (const auto& e : g.edges()) cut += p.part[e.from] != p.part[e.to];
  EXPECT_EQ(cut, p.cut_edges);
}

TEST(Partition, ClusteringBeatsRandomAssignment) {
  const auto g = graph::rmat_sparse(128, 9);
  const auto p = arch::partition_into_islands(g, 32, 9);
  // Random assignment into the same number of parts cuts ~ (1 - 1/parts)
  // of the edges; FM should do clearly better on a clustered R-MAT graph.
  const double random_cut =
      g.num_edges() * (1.0 - 1.0 / std::max(p.num_parts, 1));
  EXPECT_LT(static_cast<double>(p.cut_edges), 0.8 * random_cut);
}

TEST(Clustered, MappingIsConsistent) {
  const auto g = graph::rmat_sparse(128, 3);
  arch::ArchSpec spec;
  spec.island_capacity = 32;
  spec.channel_width = 1 << 20; // effectively unbounded: must route
  const auto m = arch::map_to_islands(g, spec, 3);

  EXPECT_TRUE(m.routed);
  EXPECT_EQ(m.intra_island_edges + m.inter_island_edges, g.num_edges());
  EXPECT_GT(m.islands, 1);
  EXPECT_GT(m.required_channel_width, 0);
  EXPECT_GE(m.total_wirelength, m.inter_island_edges); // >= 1 segment each
}

TEST(Clustered, UtilizationBeatsMonolithicOnSparseGraphs) {
  // The Sec. 6.2 motivation: a large sparse graph wastes a monolithic
  // n x n crossbar (utilisation ~ 1/n); islands recover utilisation.
  const auto g = graph::rmat_sparse(512, 7);
  arch::ArchSpec spec;
  spec.island_capacity = 32;
  const auto m = arch::map_to_islands(g, spec, 7);
  EXPECT_GT(m.clustered_utilization, 2.0 * m.monolithic_utilization);
}

TEST(Clustered, RoutingFailsWhenChannelTooNarrow) {
  const auto g = graph::rmat_sparse(128, 11);
  arch::ArchSpec spec;
  spec.island_capacity = 16;
  spec.channel_width = 1;
  const auto m = arch::map_to_islands(g, spec, 11);
  EXPECT_FALSE(m.routed);
  EXPECT_GT(m.required_channel_width, 1);
}

TEST(Clustered, Grid2DNeedsNoWiderChannelsThan1D) {
  // The Fig. 11 trade-off: 2-D routing spreads demand over many segments,
  // so its peak channel occupancy is at most the 1-D bundle's.
  const auto g = graph::rmat_sparse(192, 13);
  arch::ArchSpec d1;
  d1.island_capacity = 24;
  arch::ArchSpec d2 = d1;
  d2.style = arch::RoutingStyle::kGrid2D;
  d2.grid_columns = 3;
  const auto m1 = arch::map_to_islands(g, d1, 13);
  const auto m2 = arch::map_to_islands(g, d2, 13);
  EXPECT_LE(m2.required_channel_width, m1.required_channel_width);
}

TEST(Clustered, SingleIslandHasNoRouting) {
  const auto g = graph::rmat(20, 60, {}, 1);
  arch::ArchSpec spec;
  spec.island_capacity = 64; // whole graph fits
  const auto m = arch::map_to_islands(g, spec, 1);
  EXPECT_EQ(m.islands, 1);
  EXPECT_EQ(m.inter_island_edges, 0);
  EXPECT_EQ(m.required_channel_width, 0);
  EXPECT_TRUE(m.routed);
}

TEST(Clustered, RejectsBadSpecs) {
  const auto g = graph::rmat(20, 60, {}, 1);
  arch::ArchSpec bad;
  bad.island_capacity = 0;
  EXPECT_THROW(arch::map_to_islands(g, bad), std::invalid_argument);
  arch::ArchSpec bad2;
  bad2.style = arch::RoutingStyle::kGrid2D;
  bad2.grid_columns = 0;
  EXPECT_THROW(arch::map_to_islands(g, bad2), std::invalid_argument);
}

// Classical max-flow solvers: known answers, feasibility, cross-agreement,
// and max-flow = min-cut duality.
#include <gtest/gtest.h>

#include "flow/maxflow.hpp"
#include "graph/generators.hpp"

namespace flow = aflow::flow;
namespace graph = aflow::graph;

using Solver = flow::MaxFlowResult (*)(const graph::FlowNetwork&);

namespace {

// Wrapped in lambdas because the underlying entry points also take a
// defaulted CancelToken, which is part of the function-pointer type.
const std::vector<std::pair<const char*, Solver>> kSolvers = {
    {"edmonds_karp",
     [](const graph::FlowNetwork& g) { return flow::edmonds_karp(g); }},
    {"dinic", [](const graph::FlowNetwork& g) { return flow::dinic(g); }},
    {"push_relabel",
     [](const graph::FlowNetwork& g) { return flow::push_relabel(g); }},
};

} // namespace

TEST(MaxFlow, PaperFig5HasValue2) {
  const auto g = graph::paper_example_fig5();
  for (const auto& [name, solve] : kSolvers) {
    const auto r = solve(g);
    EXPECT_DOUBLE_EQ(r.flow_value, 2.0) << name;
    EXPECT_EQ(flow::check_flow(g, r), "") << name;
  }
}

TEST(MaxFlow, PaperFig15HasValue4) {
  const auto g = graph::paper_example_fig15();
  for (const auto& [name, solve] : kSolvers) {
    EXPECT_DOUBLE_EQ(solve(g).flow_value, 4.0) << name;
  }
}

TEST(MaxFlow, SingleEdge) {
  graph::FlowNetwork g(2, 0, 1);
  g.add_edge(0, 1, 5.0);
  for (const auto& [name, solve] : kSolvers)
    EXPECT_DOUBLE_EQ(solve(g).flow_value, 5.0) << name;
}

TEST(MaxFlow, DisconnectedIsZero) {
  graph::FlowNetwork g(4, 0, 3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(2, 3, 5.0);
  for (const auto& [name, solve] : kSolvers)
    EXPECT_DOUBLE_EQ(solve(g).flow_value, 0.0) << name;
}

TEST(MaxFlow, ParallelEdgesAdd) {
  graph::FlowNetwork g(2, 0, 1);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 1, 3.0);
  for (const auto& [name, solve] : kSolvers)
    EXPECT_DOUBLE_EQ(solve(g).flow_value, 5.0) << name;
}

TEST(MaxFlow, BackEdgeRequiresResidualUndo) {
  // The classic instance where a greedy path must be partially undone via
  // the residual back edge.
  graph::FlowNetwork g(4, 0, 3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(2, 3, 1.0);
  for (const auto& [name, solve] : kSolvers)
    EXPECT_DOUBLE_EQ(solve(g).flow_value, 2.0) << name;
}

TEST(MaxFlow, EdgesIntoSourceAndOutOfSinkAreHarmless) {
  graph::FlowNetwork g(4, 0, 3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 3, 2.0);
  g.add_edge(3, 2, 5.0); // out of sink
  g.add_edge(2, 0, 5.0); // into source
  for (const auto& [name, solve] : kSolvers) {
    const auto r = solve(g);
    EXPECT_DOUBLE_EQ(r.flow_value, 2.0) << name;
    EXPECT_EQ(flow::check_flow(g, r), "") << name;
  }
}

class MaxFlowAgreement : public ::testing::TestWithParam<int> {};

TEST_P(MaxFlowAgreement, AllSolversAgreeAndAreFeasible) {
  const int seed = GetParam();
  const std::vector<graph::FlowNetwork> instances = {
      graph::rmat(48, 300, {}, seed),
      graph::rmat_sparse(64, seed),
      graph::layered_random(4, 6, 3, 12, seed),
      graph::uniform_random(40, 160, 9, seed),
  };
  for (const auto& g : instances) {
    const auto ek = flow::edmonds_karp(g);
    const auto di = flow::dinic(g);
    const auto pr = flow::push_relabel(g);
    EXPECT_NEAR(ek.flow_value, di.flow_value, 1e-9);
    EXPECT_NEAR(ek.flow_value, pr.flow_value, 1e-9);
    EXPECT_EQ(flow::check_flow(g, ek), "");
    EXPECT_EQ(flow::check_flow(g, di), "");
    EXPECT_EQ(flow::check_flow(g, pr), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowAgreement, ::testing::Range(1, 13));

class MinCutDuality : public ::testing::TestWithParam<int> {};

TEST_P(MinCutDuality, CutValueEqualsFlowValue) {
  const auto g = graph::rmat(56, 350, {}, GetParam());
  const auto r = flow::dinic(g);
  const auto cut = flow::min_cut_from_flow(g, r);
  EXPECT_NEAR(cut.cut_value, r.flow_value, 1e-9);
  EXPECT_TRUE(cut.side[g.source()]);
  EXPECT_FALSE(cut.side[g.sink()]);
  // Every cut edge is saturated.
  for (int e : cut.cut_edges)
    EXPECT_NEAR(r.edge_flow[e], g.edge(e).capacity, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCutDuality, ::testing::Range(1, 9));

TEST(PushRelabel, ConservationAuditOnRandomInstances) {
  // Push-relabel terminates with a preflow; the returned edge_flow is only
  // a flow if every unit of stranded excess has been pushed back to the
  // source. This audit sweeps ~100 random instances — including sparse
  // ones with large source-side regions that cannot reach the sink, where
  // the gap heuristic lifts whole height levels past n — and asserts true
  // conservation at every non-terminal vertex plus value agreement with
  // Dinic's independent implementation.
  int audited = 0;
  for (int seed = 1; seed <= 25; ++seed) {
    const graph::FlowNetwork nets[] = {
        graph::rmat_sparse(120, seed, 5.0), // stranded-excess-prone
        graph::rmat_dense(60, seed),
        graph::layered_random(6, 10, 3, 16, seed),
        graph::uniform_random(90, 360, 32, seed),
    };
    for (const auto& net : nets) {
      ++audited;
      const auto pr = flow::push_relabel(net);
      const auto dn = flow::dinic(net);
      EXPECT_EQ(flow::check_flow(net, pr), "")
          << "seed " << seed << ": push-relabel left a preflow (stranded "
             "excess) or violated a capacity";
      EXPECT_DOUBLE_EQ(pr.flow_value, dn.flow_value) << "seed " << seed;
    }
  }
  EXPECT_EQ(audited, 100);
}

TEST(CheckFlow, DetectsViolations) {
  const auto g = graph::paper_example_fig5();
  auto r = flow::dinic(g);
  ASSERT_EQ(flow::check_flow(g, r), "");

  auto bad = r;
  bad.edge_flow[0] = 100.0; // over capacity
  EXPECT_NE(flow::check_flow(g, bad), "");

  bad = r;
  bad.edge_flow[1] += 0.5; // conservation broken at n2
  EXPECT_NE(flow::check_flow(g, bad), "");

  bad = r;
  bad.flow_value += 1.0; // wrong value
  EXPECT_NE(flow::check_flow(g, bad), "");
}

// Session-layer transport robustness of core::ServeFront, over real Unix
// sockets: interleaved partial lines, oversized frames, mid-request
// disconnects, and connects beyond --max-sessions must all error (or
// recover) per-session without killing the process or the other sessions.
#include <gtest/gtest.h>

#ifndef _WIN32

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/serve_front.hpp"
#include "util/fault_injector.hpp"

namespace core = aflow::core;
namespace util = aflow::util;

namespace {

bool json_ok(const std::string& json) {
  return json.find("\"ok\":true") != std::string::npos;
}

/// Engine + front + accept-loop thread, torn down in order.
class FrontHarness {
 public:
  explicit FrontHarness(core::ServeOptions engine_options = {},
                        size_t max_line_bytes = 1 << 20)
      : engine_(engine_options) {
    core::ServeFrontOptions fo;
    fo.socket_path =
        "/tmp/aflow_front_test_" + std::to_string(::getpid()) + "_" +
        std::to_string(instance_counter_++) + ".sock";
    fo.max_line_bytes = max_line_bytes;
    fo.poll_interval_ms = 10;
    front_ = std::make_unique<core::ServeFront>(engine_, fo);
    front_->start();
    runner_ = std::thread([this] { front_->run(); });
  }

  ~FrontHarness() {
    front_->stop();
    runner_.join();
  }

  const std::string& path() const { return front_->options().socket_path; }
  core::ServeEngine& engine() { return engine_; }
  core::ServeFront& front() { return *front_; }

 private:
  static inline int instance_counter_ = 0;
  core::ServeEngine engine_;
  std::unique_ptr<core::ServeFront> front_;
  std::thread runner_;
};

/// Blocking line-oriented client with a receive deadline, so a server bug
/// fails the test instead of hanging it.
class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    EXPECT_TRUE(connected_) << path;
  }
  ~Client() { close(); }

  void send_raw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
  }

  /// One response line (without the newline); "" on EOF or timeout.
  std::string read_line() {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return {};
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True when the server hung up (EOF within the receive deadline).
  bool at_eof() {
    char c;
    return ::recv(fd_, &c, 1, 0) == 0;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

} // namespace

TEST(ServeFront, InterleavedPartialLinesAreReassembled) {
  FrontHarness harness;
  Client c(harness.path());

  // One request split across three writes, with a pause between them.
  c.send_raw("load --spec gr");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  c.send_raw("id:side=4,se");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  c.send_raw("ed=1\nsolve --solver dinic\n");

  const std::string load = c.read_line();
  EXPECT_TRUE(json_ok(load)) << load;
  EXPECT_NE(load.find("\"request\":\"load\""), std::string::npos) << load;
  const std::string solve = c.read_line();
  EXPECT_TRUE(json_ok(solve)) << solve;
  EXPECT_NE(solve.find("\"flow\":90"), std::string::npos) << solve;
}

TEST(ServeFront, OversizedFramesErrorAndTheSessionResyncs) {
  FrontHarness harness({}, /*max_line_bytes=*/128);
  Client c(harness.path());

  // A 512-byte line: exceeds the frame limit long before its newline.
  c.send_raw(std::string(512, 'x'));
  const std::string err = c.read_line();
  EXPECT_NE(err.find("\"ok\":false"), std::string::npos) << err;
  EXPECT_NE(err.find("oversized frame"), std::string::npos) << err;

  // Keep streaming the same frame: the front must drop (not buffer) it.
  c.send_raw(std::string(512, 'y'));

  // The newline ends the bad frame; the session keeps serving.
  c.send_raw("\nload --spec grid:side=4,seed=1\n");
  const std::string load = c.read_line();
  EXPECT_TRUE(json_ok(load)) << load;

  // A complete over-limit line (newline in the same chunk) is rejected
  // too, and the next request still works.
  c.send_raw(std::string(300, 'z') + "\nsolve --solver dinic\n");
  const std::string err2 = c.read_line();
  EXPECT_NE(err2.find("oversized frame"), std::string::npos) << err2;
  const std::string solve = c.read_line();
  EXPECT_TRUE(json_ok(solve)) << solve;
  EXPECT_NE(solve.find("\"flow\":90"), std::string::npos) << solve;
}

TEST(ServeFront, MidRequestDisconnectLeavesTheProcessServing) {
  FrontHarness harness;
  {
    Client c(harness.path());
    c.send_raw("load --spec grid:side=4,seed=1\n");
    EXPECT_TRUE(json_ok(c.read_line()));
    c.send_raw("solve --solver din"); // vanish mid-request
    c.close();
  }
  // The dropped session must not take the front down: a new client gets a
  // fresh session and full service.
  Client c2(harness.path());
  c2.send_raw("load --spec grid:side=5,seed=1\nsolve --solver dinic\n");
  EXPECT_TRUE(json_ok(c2.read_line()));
  const std::string solve = c2.read_line();
  EXPECT_TRUE(json_ok(solve)) << solve;
  EXPECT_NE(solve.find("\"flow\":149"), std::string::npos) << solve;
}

TEST(ServeFront, MidSolveDisconnectCancelsTheAbandonedWork) {
  // A client that vanishes DURING a long solve must not pin a handler
  // thread for the solve's natural duration: the front's hangup sweep
  // trips the session's CancelToken, and the solve unwinds at its next
  // cancellation point. The injected stall is 30 s — three orders of
  // magnitude past the asserted cancellation latency — so a pass can only
  // mean the disconnect actually cancelled the work.
  util::FaultInjector::instance().arm("batch.solve:delay:30000");
  auto harness = std::make_unique<FrontHarness>();
  {
    Client c(harness->path());
    c.send_raw("load --spec grid:side=4,seed=1\n");
    EXPECT_TRUE(json_ok(c.read_line()));
    c.send_raw("solve --solver dinic\n");
    // Let the handler enter the solve (and its injected stall) first, so
    // the disconnect genuinely lands mid-solve.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    c.close();
  }
  // Give the accept loop a few poll intervals to run its hangup sweep
  // (teardown stops that loop, so the sweep must fire before it).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Tearing down the harness joins the connection thread; with the sweep
  // working, that join completes in sweep-interval + cancel-slice time.
  const auto t0 = std::chrono::steady_clock::now();
  harness.reset();
  const double join_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  util::FaultInjector::instance().disarm();
  EXPECT_LT(join_ms, 5000.0)
      << "disconnect did not cancel the in-flight solve";
}

TEST(ServeFront, ConnectsBeyondMaxSessionsAreRejectedPerConnection) {
  core::ServeOptions opt;
  opt.max_sessions = 2;
  FrontHarness harness(opt);

  // Two sessions hold the cap (a round-trip each proves they are live).
  Client a(harness.path()), b(harness.path());
  a.send_raw("load --spec grid:side=4,seed=1\n");
  b.send_raw("load --spec grid:side=4,seed=1\n");
  EXPECT_TRUE(json_ok(a.read_line()));
  EXPECT_TRUE(json_ok(b.read_line()));

  // The third connection gets one rejection line, then EOF — and neither
  // the process nor the live sessions are harmed.
  Client rejected(harness.path());
  const std::string reject = rejected.read_line();
  EXPECT_NE(reject.find("\"ok\":false"), std::string::npos) << reject;
  EXPECT_NE(reject.find("session limit"), std::string::npos) << reject;
  EXPECT_TRUE(rejected.at_eof());

  a.send_raw("solve --solver dinic\n");
  EXPECT_TRUE(json_ok(a.read_line()));

  // Freeing one slot readmits new clients (the slot is released when the
  // connection thread finishes; poll for it).
  a.send_raw("quit\n");
  EXPECT_TRUE(json_ok(a.read_line()));
  std::string late_response;
  for (int attempt = 0; attempt < 100 && late_response.empty(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Client late(harness.path());
    late.send_raw("stats\n");
    late_response = late.read_line();
    if (late_response.find("session limit") != std::string::npos)
      late_response.clear(); // still at the cap; retry
  }
  EXPECT_TRUE(json_ok(late_response)) << late_response;
  EXPECT_GE(harness.front().sessions_rejected(), 1);
}

TEST(ServeFront, QuitEndsOneSessionShutdownEndsTheFront) {
  FrontHarness harness;
  Client a(harness.path()), b(harness.path());

  a.send_raw("quit\n");
  EXPECT_TRUE(json_ok(a.read_line()));
  EXPECT_TRUE(a.at_eof()); // quit hangs up this session only

  b.send_raw("load --spec grid:side=4,seed=1\n");
  EXPECT_TRUE(json_ok(b.read_line())); // ...the other keeps serving

  b.send_raw("shutdown\n");
  EXPECT_TRUE(json_ok(b.read_line()));
  EXPECT_TRUE(harness.engine().shutdown_requested());
  // ~FrontHarness joins run(); returning from this test proves shutdown
  // actually stops the accept loop.
}

TEST(ServeFront, ConcurrentSocketClientsAllGetServed) {
  core::ServeOptions opt;
  opt.max_sessions = 8;
  FrontHarness harness(opt);

  std::vector<std::string> flows(6);
  std::vector<std::thread> clients;
  for (int k = 0; k < 6; ++k) {
    clients.emplace_back([&, k] {
      Client c(harness.path());
      const int side = 4 + (k % 3);
      c.send_raw("load --spec grid:side=" + std::to_string(side) +
                 ",seed=1\nsolve --solver dinic\nquit\n");
      c.read_line(); // load
      flows[k] = c.read_line();
      c.read_line(); // quit
    });
  }
  for (std::thread& t : clients) t.join();
  const char* expected[] = {"\"flow\":90", "\"flow\":149", "\"flow\":208"};
  for (int k = 0; k < 6; ++k) {
    EXPECT_TRUE(json_ok(flows[k])) << k << ": " << flows[k];
    EXPECT_NE(flows[k].find(expected[k % 3]), std::string::npos) << flows[k];
  }
  EXPECT_EQ(harness.front().sessions_accepted(), 6);
}

#else  // _WIN32

TEST(ServeFront, SkippedOnThisPlatform) { GTEST_SKIP(); }

#endif // _WIN32

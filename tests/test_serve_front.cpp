// Transport and scheduling robustness of the event-driven core::ServeFront,
// parameterized over BOTH real transports (Unix socket and TCP): interleaved
// partial lines, oversized frames, mid-request and mid-solve disconnects,
// connects beyond --max-sessions, pipelining order, backpressure against
// slow readers, and connection counts far beyond the thread count must all
// behave (or fail) per-session without killing the process or the other
// sessions.
#include <gtest/gtest.h>

#ifndef _WIN32

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve_transport_harness.hpp"
#include "util/event_loop.hpp"
#include "util/fault_injector.hpp"

namespace core = aflow::core;
namespace util = aflow::util;

using serve_test::Client;
using serve_test::FrontHarness;
using serve_test::Transport;

namespace {

bool json_ok(const std::string& json) {
  return json.find("\"ok\":true") != std::string::npos;
}

long long response_id(const std::string& json) {
  const std::string needle = "\"id\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtoll(json.c_str() + at + needle.size(), nullptr, 10);
}

class ServeFrontTransport : public ::testing::TestWithParam<Transport> {};

} // namespace

TEST_P(ServeFrontTransport, InterleavedPartialLinesAreReassembled) {
  FrontHarness harness(GetParam());
  Client c(harness);

  // One request split across three writes, with a pause between them.
  c.send_raw("load --spec gr");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  c.send_raw("id:side=4,se");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  c.send_raw("ed=1\nsolve --solver dinic\n");

  const std::string load = c.read_line();
  EXPECT_TRUE(json_ok(load)) << load;
  EXPECT_NE(load.find("\"request\":\"load\""), std::string::npos) << load;
  const std::string solve = c.read_line();
  EXPECT_TRUE(json_ok(solve)) << solve;
  EXPECT_NE(solve.find("\"flow\":90"), std::string::npos) << solve;
}

TEST_P(ServeFrontTransport, OversizedFramesErrorAndTheSessionResyncs) {
  core::ServeFrontOptions fo;
  fo.max_line_bytes = 128;
  FrontHarness harness(GetParam(), {}, fo);
  Client c(harness);

  // A 512-byte line: exceeds the frame limit long before its newline.
  c.send_raw(std::string(512, 'x'));
  const std::string err = c.read_line();
  EXPECT_NE(err.find("\"ok\":false"), std::string::npos) << err;
  EXPECT_NE(err.find("oversized frame"), std::string::npos) << err;

  // Keep streaming the same frame: the front must drop (not buffer) it.
  c.send_raw(std::string(512, 'y'));

  // The newline ends the bad frame; the session keeps serving.
  c.send_raw("\nload --spec grid:side=4,seed=1\n");
  const std::string load = c.read_line();
  EXPECT_TRUE(json_ok(load)) << load;

  // A complete over-limit line (newline in the same chunk) is rejected
  // too, and the next request still works.
  c.send_raw(std::string(300, 'z') + "\nsolve --solver dinic\n");
  const std::string err2 = c.read_line();
  EXPECT_NE(err2.find("oversized frame"), std::string::npos) << err2;
  const std::string solve = c.read_line();
  EXPECT_TRUE(json_ok(solve)) << solve;
  EXPECT_NE(solve.find("\"flow\":90"), std::string::npos) << solve;
  EXPECT_GE(harness.front().telemetry().oversized_frames.load(), 2);
}

TEST_P(ServeFrontTransport, MidRequestDisconnectLeavesTheProcessServing) {
  FrontHarness harness(GetParam());
  {
    Client c(harness);
    c.send_raw("load --spec grid:side=4,seed=1\n");
    EXPECT_TRUE(json_ok(c.read_line()));
    c.send_raw("solve --solver din"); // vanish mid-request
    c.close();
  }
  // The dropped session must not take the front down: a new client gets a
  // fresh session and full service.
  Client c2(harness);
  c2.send_raw("load --spec grid:side=5,seed=1\nsolve --solver dinic\n");
  EXPECT_TRUE(json_ok(c2.read_line()));
  const std::string solve = c2.read_line();
  EXPECT_TRUE(json_ok(solve)) << solve;
  EXPECT_NE(solve.find("\"flow\":149"), std::string::npos) << solve;
}

TEST_P(ServeFrontTransport, MidSolveDisconnectCancelsTheAbandonedWork) {
  // A client that vanishes DURING a long solve must not pin a worker for
  // the solve's natural duration: the I/O plane sees the hangup on its
  // next poll wake (POLLRDHUP/EOF — the event-driven replacement for the
  // old periodic sweep), trips the session's CancelToken, and the solve
  // unwinds at its next cancellation point. The injected stall is 30 s —
  // three orders of magnitude past the asserted cancellation latency — so
  // a pass can only mean the disconnect actually cancelled the work.
  util::FaultInjector::instance().arm("batch.solve:delay:30000");
  auto harness = std::make_unique<FrontHarness>(GetParam());
  {
    Client c(*harness);
    c.send_raw("load --spec grid:side=4,seed=1\n");
    EXPECT_TRUE(json_ok(c.read_line()));
    c.send_raw("solve --solver dinic\n");
    // Let a worker enter the solve (and its injected stall) first, so the
    // disconnect genuinely lands mid-solve.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    c.close();
  }
  // A few poll ticks for the hangup to be seen and the token tripped.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_GE(harness->front().telemetry().hangup_cancels.load(), 1);
  // Tearing down the harness joins the worker pool; with cancellation
  // working, that join completes in poll-tick + cancel-slice time.
  const auto t0 = std::chrono::steady_clock::now();
  harness.reset();
  const double join_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  util::FaultInjector::instance().disarm();
  EXPECT_LT(join_ms, 5000.0)
      << "disconnect did not cancel the in-flight solve";
}

TEST_P(ServeFrontTransport, ConnectsBeyondMaxSessionsAreRejectedPerConnection) {
  core::ServeOptions opt;
  opt.max_sessions = 2;
  FrontHarness harness(GetParam(), opt);

  // Two sessions hold the cap (a round-trip each proves they are live).
  Client a(harness), b(harness);
  a.send_raw("load --spec grid:side=4,seed=1\n");
  b.send_raw("load --spec grid:side=4,seed=1\n");
  EXPECT_TRUE(json_ok(a.read_line()));
  EXPECT_TRUE(json_ok(b.read_line()));

  // The third connection gets one rejection line, then EOF — and neither
  // the process nor the live sessions are harmed.
  Client rejected(harness);
  const std::string reject = rejected.read_line();
  EXPECT_NE(reject.find("\"ok\":false"), std::string::npos) << reject;
  EXPECT_NE(reject.find("session limit"), std::string::npos) << reject;
  EXPECT_TRUE(rejected.at_eof());

  a.send_raw("solve --solver dinic\n");
  EXPECT_TRUE(json_ok(a.read_line()));

  // Freeing one slot readmits new clients (the slot is released when the
  // connection closes after its quit response flushes; poll for it).
  a.send_raw("quit\n");
  EXPECT_TRUE(json_ok(a.read_line()));
  std::string late_response;
  for (int attempt = 0; attempt < 100 && late_response.empty(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Client late(harness);
    late.send_raw("stats\n");
    late_response = late.read_line();
    if (late_response.find("session limit") != std::string::npos)
      late_response.clear(); // still at the cap; retry
  }
  EXPECT_TRUE(json_ok(late_response)) << late_response;
  // The stats of a served front carry the transport-plane counters.
  EXPECT_NE(late_response.find("\"front\":{"), std::string::npos)
      << late_response;
  EXPECT_GE(harness.front().sessions_rejected(), 1);
}

TEST_P(ServeFrontTransport, QuitEndsOneSessionShutdownEndsTheFront) {
  FrontHarness harness(GetParam());
  Client a(harness), b(harness);

  a.send_raw("quit\n");
  EXPECT_TRUE(json_ok(a.read_line()));
  EXPECT_TRUE(a.at_eof()); // quit hangs up this session only

  b.send_raw("load --spec grid:side=4,seed=1\n");
  EXPECT_TRUE(json_ok(b.read_line())); // ...the other keeps serving

  b.send_raw("shutdown\n");
  EXPECT_TRUE(json_ok(b.read_line()));
  EXPECT_TRUE(harness.engine().shutdown_requested());
  // ~FrontHarness joins run(); returning from this test proves shutdown
  // actually stops the I/O plane and the worker pool.
}

TEST_P(ServeFrontTransport, ConcurrentSocketClientsAllGetServed) {
  core::ServeOptions opt;
  opt.max_sessions = 8;
  FrontHarness harness(GetParam(), opt);

  std::vector<std::string> flows(6);
  std::vector<std::thread> clients;
  for (int k = 0; k < 6; ++k) {
    clients.emplace_back([&, k] {
      Client c(harness);
      const int side = 4 + (k % 3);
      c.send_raw("load --spec grid:side=" + std::to_string(side) +
                 ",seed=1\nsolve --solver dinic\nquit\n");
      c.read_line(); // load
      flows[k] = c.read_line();
      c.read_line(); // quit
    });
  }
  for (std::thread& t : clients) t.join();
  const char* expected[] = {"\"flow\":90", "\"flow\":149", "\"flow\":208"};
  for (int k = 0; k < 6; ++k) {
    EXPECT_TRUE(json_ok(flows[k])) << k << ": " << flows[k];
    EXPECT_NE(flows[k].find(expected[k % 3]), std::string::npos) << flows[k];
  }
  EXPECT_EQ(harness.front().sessions_accepted(), 6);
}

TEST_P(ServeFrontTransport, HundredsOfIdleConnectionsCostNoThreads) {
  // The point of the event-driven front: connection count scales on file
  // descriptors, not threads. Every thread the front will ever use exists
  // after the first request round-trips; piling on 511 more connections
  // must leave the process thread count flat, and every one of those
  // connections must still get served.
  constexpr int kConnections = 512;
  core::ServeOptions opt;
  opt.max_sessions = kConnections + 8;
  FrontHarness harness(GetParam(), opt);

  std::vector<std::unique_ptr<Client>> clients;
  clients.push_back(std::make_unique<Client>(harness));
  clients.back()->send_raw("session\n");
  EXPECT_TRUE(json_ok(clients.back()->read_line()));

  const int threads_before = serve_test::process_thread_count();
  while (static_cast<int>(clients.size()) < kConnections) {
    clients.push_back(std::make_unique<Client>(harness));
    ASSERT_TRUE(clients.back()->connected())
        << "connect " << clients.size() << " failed";
  }
  // All open and idle; give the accept path a tick to settle, then prove
  // the thread count did not move with the connection count.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const int threads_with_all_open = serve_test::process_thread_count();
  if (threads_before > 0 && threads_with_all_open > 0) {
    EXPECT_EQ(threads_with_all_open, threads_before)
        << kConnections << " open connections changed the thread count";
  }

  // Not just parked: every connection is live and served.
  for (size_t k = 0; k < clients.size(); ++k) {
    clients[k]->send_raw("session\n");
    const std::string response = clients[k]->read_line();
    EXPECT_TRUE(json_ok(response)) << "connection " << k << ": " << response;
  }
  EXPECT_EQ(harness.front().sessions_accepted(), kConnections);
  EXPECT_EQ(harness.front().telemetry().open_connections.load(),
            kConnections);
}

TEST_P(ServeFrontTransport, PipelinedRequestsAreAnsweredInPerSessionOrder) {
  // Two sessions each fire one burst of pipelined requests; responses must
  // come back in each session's send order (monotonic per-session ids with
  // the matching request names), regardless of how the worker pool
  // interleaves the two sessions.
  constexpr int kPipelined = 12;
  FrontHarness harness(GetParam());
  Client a(harness), b(harness);

  const auto burst = [](int side) {
    std::string all = "load --spec grid:side=" + std::to_string(side) +
                      ",seed=1\n";
    for (int i = 1; i < kPipelined; ++i)
      all += i % 3 == 1 ? "solve --solver dinic\n" : "session\n";
    return all;
  };
  a.send_raw(burst(4));
  b.send_raw(burst(5));

  const auto check = [&](Client& c, const char* flow, const char* who) {
    for (int i = 0; i < kPipelined; ++i) {
      const std::string response = c.read_line();
      EXPECT_TRUE(json_ok(response)) << who << " " << i << ": " << response;
      EXPECT_EQ(response_id(response), i + 1)
          << who << " response out of order: " << response;
      const char* request = i == 0 ? "\"request\":\"load\""
                            : i % 3 == 1 ? "\"request\":\"solve\""
                                         : "\"request\":\"session\"";
      EXPECT_NE(response.find(request), std::string::npos)
          << who << " " << i << ": " << response;
      if (i % 3 == 1) {
        EXPECT_NE(response.find(flow), std::string::npos) << response;
      }
    }
  };
  check(a, "\"flow\":90", "a");
  check(b, "\"flow\":149", "b");
}

TEST_P(ServeFrontTransport, SlowReaderIsPausedWithoutStallingOtherSessions) {
  // A client that pipelines hard but never reads must be throttled by the
  // front (reads stop at the pipelining limit / write-buffer cap), not
  // buffered without bound — and a well-behaved session sharing the front
  // must keep round-tripping underneath it. When the slow reader finally
  // drains, every response arrives, still in order.
  constexpr int kBurst = 64;
  core::ServeFrontOptions fo;
  fo.max_pipeline = 2;
  fo.max_write_buffer_bytes = 512;
  FrontHarness harness(GetParam(), {}, fo);

  Client slow(harness), steady(harness);
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += "session\n";
  slow.send_raw(burst); // ...and do not read

  // The steady session is unaffected while the slow one sits paused.
  steady.send_raw("load --spec grid:side=4,seed=1\nsolve --solver dinic\n");
  EXPECT_TRUE(json_ok(steady.read_line()));
  const std::string solve = steady.read_line();
  EXPECT_TRUE(json_ok(solve)) << solve;
  EXPECT_NE(solve.find("\"flow\":90"), std::string::npos) << solve;

  // With ~13 bytes of request producing a ~200-byte response against a
  // 512-byte write cap and a pipelining limit of 2, the burst above can
  // only be absorbed by pausing reads on the slow connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GE(harness.front().telemetry().backpressure_pauses.load(), 1);

  // Drain: the paused connection resumes and serves the whole burst in
  // order.
  for (int i = 0; i < kBurst; ++i) {
    const std::string response = slow.read_line();
    EXPECT_TRUE(json_ok(response)) << "slow " << i << ": " << response;
    EXPECT_EQ(response_id(response), i + 1)
        << "slow response out of order: " << response;
  }
}

TEST_P(ServeFrontTransport, WriteBufferPauseResumesWithNoRequestInFlight) {
  // Regression: a pause decided while a response sat in the write buffer —
  // with NO further request in flight — must clear once the buffer drains.
  // A 1-byte cap makes every response trip the cap check in isolation; if
  // the drained buffer never re-arms POLLIN, the connection goes deaf and
  // the next round's read_line() times out empty.
  core::ServeFrontOptions fo;
  fo.max_write_buffer_bytes = 1;
  FrontHarness harness(GetParam(), {}, fo);
  Client c(harness);
  for (int i = 0; i < 5; ++i) {
    c.send_raw("session\n");
    const std::string response = c.read_line();
    EXPECT_TRUE(json_ok(response)) << "round " << i << ": " << response;
    EXPECT_EQ(response_id(response), i + 1) << response;
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, ServeFrontTransport,
                         ::testing::Values(Transport::kUnix, Transport::kTcp),
                         [](const ::testing::TestParamInfo<Transport>& info) {
                           return serve_test::transport_name(info.param);
                         });

TEST(ServeFrontShutdown, StopWithQueuedRequestsDoesNotHangRun) {
  // Regression: shutdown while a request sits in the worker queue. The
  // queue's close() hands the never-popped items back and run() posts an
  // empty response for each; before that, the orphaned connection kept
  // `executing` set forever, so the I/O loop (and run()'s join of it)
  // never finished.
  util::FaultInjector::instance().arm("batch.solve:delay:1000");
  core::ServeFrontOptions fo;
  fo.workers = 1; // one stalled worker means everything else queues
  auto harness = std::make_unique<FrontHarness>(Transport::kUnix,
                                                core::ServeOptions{}, fo);
  Client a(*harness), b(*harness);
  a.send_raw("load --spec grid:side=4,seed=1\n");
  EXPECT_TRUE(json_ok(a.read_line()));
  a.send_raw("solve --solver dinic\n"); // pins the only worker in its delay
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  b.send_raw("session\n"); // queued behind the stalled solve
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  harness.reset(); // stop() + join run()
  const double teardown_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
  util::FaultInjector::instance().disarm();
  // Bounded by the solve's injected 1 s, nowhere near a hang.
  EXPECT_LT(teardown_ms, 8000.0)
      << "shutdown hung on queued-but-never-served work";
}

TEST(EventLoopTcp, BracketedIpv6ListenAddressIsAccepted) {
  std::uint16_t port = 0;
  int fd = -1;
  try {
    fd = util::listen_tcp("[::1]:0", 16, &port);
  } catch (const std::runtime_error& e) {
    // A host without IPv6 may legitimately fail at bind — but a resolve
    // failure would mean the brackets leaked through to getaddrinfo.
    EXPECT_EQ(std::string(e.what()).find("cannot resolve"), std::string::npos)
        << e.what();
    GTEST_SKIP() << e.what();
  }
  EXPECT_GE(fd, 0);
  EXPECT_GT(port, 0);
  ::close(fd);
  // Brackets without a port are rejected up front.
  EXPECT_THROW(util::listen_tcp("[::1]", 16, nullptr), std::runtime_error);
}

TEST(ServeFrontChaos, ShortWriteFaultTruncatesThroughTheBufferedTcpPath) {
  // serve.write:short through the buffered TCP write path: the client must
  // see a truncated line (no newline) followed by EOF — a dead session,
  // never a parseable response — and the front must keep serving others.
  util::FaultInjector::instance().arm("serve.write:short:count=1");
  auto harness = std::make_unique<FrontHarness>(Transport::kTcp);
  {
    Client c(*harness);
    c.send_raw("load --spec grid:side=4,seed=1\n");
    const std::string raw = c.read_to_eof();
    EXPECT_FALSE(raw.empty()) << "short write should deliver a partial line";
    EXPECT_EQ(raw.find('\n'), std::string::npos)
        << "truncated response unexpectedly complete: " << raw;
    EXPECT_EQ(harness->front().telemetry().short_writes.load(), 1);
  }
  // The poisoned connection died alone; the front still serves.
  Client c2(*harness);
  c2.send_raw("load --spec grid:side=4,seed=1\nsolve --solver dinic\n");
  EXPECT_TRUE(json_ok(c2.read_line()));
  const std::string solve = c2.read_line();
  EXPECT_NE(solve.find("\"flow\":90"), std::string::npos) << solve;
  harness.reset();
  util::FaultInjector::instance().disarm();
}

#else  // _WIN32

TEST(ServeFront, SkippedOnThisPlatform) { GTEST_SKIP(); }

#endif // _WIN32

// Flow networks, generators, DIMACS I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/dimacs.hpp"
#include "graph/generators.hpp"
#include "graph/network.hpp"

namespace graph = aflow::graph;

TEST(FlowNetwork, BasicConstruction) {
  graph::FlowNetwork net(4, 0, 3);
  const int e0 = net.add_edge(0, 1, 2.5);
  const int e1 = net.add_edge(1, 3, 1.0);
  EXPECT_EQ(e0, 0);
  EXPECT_EQ(e1, 1);
  EXPECT_EQ(net.num_edges(), 2);
  EXPECT_EQ(net.out_degree(0), 1);
  EXPECT_EQ(net.in_degree(3), 1);
  EXPECT_EQ(net.degree(1), 2);
  EXPECT_DOUBLE_EQ(net.max_capacity(), 2.5);
  net.validate();
}

TEST(FlowNetwork, RejectsMalformedInput) {
  EXPECT_THROW(graph::FlowNetwork(1, 0, 0), std::invalid_argument);
  EXPECT_THROW(graph::FlowNetwork(3, 1, 1), std::invalid_argument);
  EXPECT_THROW(graph::FlowNetwork(3, 0, 5), std::invalid_argument);
  graph::FlowNetwork net(3, 0, 2);
  EXPECT_THROW(net.add_edge(0, 0, 1.0), std::invalid_argument); // self loop
  EXPECT_THROW(net.add_edge(0, 1, 0.0), std::invalid_argument); // zero cap
  EXPECT_THROW(net.add_edge(0, 9, 1.0), std::invalid_argument); // range
}

TEST(FlowNetwork, Reachability) {
  graph::FlowNetwork net(4, 0, 3);
  net.add_edge(0, 1, 1.0);
  net.add_edge(1, 3, 1.0);
  // vertex 2 is isolated
  const auto fwd = graph::reachable_from(net, 0);
  EXPECT_TRUE(fwd[0] && fwd[1] && fwd[3]);
  EXPECT_FALSE(fwd[2]);
  EXPECT_TRUE(net.vertex_on_st_path(1));
  EXPECT_FALSE(net.vertex_on_st_path(2));
}

TEST(FlowNetwork, PaperExamples) {
  const auto fig5 = graph::paper_example_fig5();
  EXPECT_EQ(fig5.num_vertices(), 5);
  EXPECT_EQ(fig5.num_edges(), 5);
  EXPECT_DOUBLE_EQ(fig5.max_capacity(), 3.0);
  fig5.validate();

  const auto fig15 = graph::paper_example_fig15();
  EXPECT_EQ(fig15.num_edges(), 5);
  fig15.validate();
}

TEST(Generators, RmatRespectsSizeAndDeterminism) {
  const auto g1 = graph::rmat(64, 256, {}, 42);
  const auto g2 = graph::rmat(64, 256, {}, 42);
  EXPECT_EQ(g1.num_vertices(), 64);
  EXPECT_NEAR(g1.num_edges(), 256, 16); // dedup can fall slightly short
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  for (int e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).from, g2.edge(e).from);
    EXPECT_EQ(g1.edge(e).to, g2.edge(e).to);
    EXPECT_DOUBLE_EQ(g1.edge(e).capacity, g2.edge(e).capacity);
  }
  g1.validate();
  // Sink reachable from source by construction.
  EXPECT_TRUE(graph::reachable_from(g1, g1.source())[g1.sink()]);
}

TEST(Generators, RmatDenseAndSparseRegimes) {
  const auto dense = graph::rmat_dense(320, 1);
  const auto sparse = graph::rmat_sparse(320, 1);
  // Dense: ~8.68e-3 * n^2 = ~889 edges; sparse: ~8n = 2560.
  EXPECT_GT(dense.num_edges(), 700);
  EXPECT_LT(dense.num_edges(), 950);
  EXPECT_GT(sparse.num_edges(), 2200);
  EXPECT_LT(sparse.num_edges(), 2600);
}

TEST(Generators, RmatSkewsDegrees) {
  // With a = 0.57 the low-numbered vertices should accumulate more edges.
  const auto g = graph::rmat(256, 2048, {}, 7);
  long long low = 0, high = 0;
  for (const auto& e : g.edges()) {
    if (e.from < 128) ++low;
    else ++high;
  }
  EXPECT_GT(low, high);
}

TEST(Generators, GridCutGraphShape) {
  const int h = 3, w = 4;
  std::vector<double> src(h * w, 0.0), snk(h * w, 0.0);
  src[0] = 5.0;
  snk[11] = 5.0;
  const auto g = graph::grid_cut_graph(h, w, src, snk, 1.0);
  EXPECT_EQ(g.num_vertices(), h * w + 2);
  // Lattice arcs: 2*(h*(w-1) + (h-1)*w) = 2*(9+8) = 34, plus 2 terminal arcs.
  EXPECT_EQ(g.num_edges(), 36);
  g.validate();
}

TEST(Generators, LayeredRandomIsLayered) {
  const auto g = graph::layered_random(4, 5, 3, 10, 3);
  EXPECT_EQ(g.num_vertices(), 2 + 4 * 5);
  g.validate();
  for (const auto& e : g.edges()) {
    if (e.from == g.source() || e.to == g.sink()) continue;
    const int from_layer = (e.from - 1) / 5;
    const int to_layer = (e.to - 1) / 5;
    EXPECT_EQ(to_layer, from_layer + 1);
  }
}

TEST(Generators, UniformRandomConnectsTerminals) {
  const auto g = graph::uniform_random(30, 90, 20, 5);
  EXPECT_GE(g.out_degree(g.source()), 1);
  EXPECT_GE(g.in_degree(g.sink()), 1);
  g.validate();
}

TEST(Dimacs, RoundTrip) {
  const auto g = graph::paper_example_fig5();
  std::stringstream ss;
  graph::write_dimacs(ss, g);
  const auto g2 = graph::read_dimacs(ss);
  ASSERT_EQ(g2.num_vertices(), g.num_vertices());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_EQ(g2.source(), g.source());
  EXPECT_EQ(g2.sink(), g.sink());
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g2.edge(e).from, g.edge(e).from);
    EXPECT_EQ(g2.edge(e).to, g.edge(e).to);
    EXPECT_DOUBLE_EQ(g2.edge(e).capacity, g.edge(e).capacity);
  }
}

TEST(Dimacs, ParsesStandardInput) {
  std::stringstream ss(
      "c tiny example\n"
      "p max 3 2\n"
      "n 1 s\n"
      "n 3 t\n"
      "a 1 2 7\n"
      "a 2 3 4\n");
  const auto g = graph::read_dimacs(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.edge(0).capacity, 7.0);
}

TEST(Dimacs, RejectsMalformedInput) {
  {
    std::stringstream ss("a 1 2 3\n");
    EXPECT_THROW(graph::read_dimacs(ss), std::runtime_error); // no problem line
  }
  {
    std::stringstream ss("p max 3 1\nn 1 s\na 1 2 3\n");
    EXPECT_THROW(graph::read_dimacs(ss), std::runtime_error); // no sink
  }
  {
    std::stringstream ss("p max 3 1\nn 1 s\nn 2 t\nn 3 s\na 1 2 3\n");
    EXPECT_THROW(graph::read_dimacs(ss), std::runtime_error); // dup source
  }
  {
    std::stringstream ss("p max 2 1\nn 1 s\nn 2 t\na 1 9 3\n");
    EXPECT_THROW(graph::read_dimacs(ss), std::runtime_error); // range
  }
}

TEST(Dimacs, RejectsDuplicateProblemLine) {
  // A second 'p' line silently overwriting n/m would reinterpret every
  // following arc; it must be an error.
  std::stringstream ss(
      "p max 3 2\n"
      "p max 5 2\n"
      "n 1 s\nn 3 t\n"
      "a 1 2 7\na 2 3 4\n");
  EXPECT_THROW(graph::read_dimacs(ss), std::runtime_error);
}

TEST(Dimacs, RejectsSourceEqualsSink) {
  std::stringstream ss(
      "p max 3 1\n"
      "n 2 s\nn 2 t\n"
      "a 1 2 7\n");
  EXPECT_THROW(graph::read_dimacs(ss), std::runtime_error);
}

TEST(Dimacs, RejectsArcCountMismatch) {
  { // fewer arcs than declared (truncated file)
    std::stringstream ss("p max 3 2\nn 1 s\nn 3 t\na 1 2 7\n");
    EXPECT_THROW(graph::read_dimacs(ss), std::runtime_error);
  }
  { // more arcs than declared
    std::stringstream ss(
        "p max 3 1\nn 1 s\nn 3 t\na 1 2 7\na 2 3 4\n");
    EXPECT_THROW(graph::read_dimacs(ss), std::runtime_error);
  }
}

TEST(Dimacs, RoundTripPreservesFullCapacityPrecision) {
  // Capacities >= 1e6 and with fine fractional parts lose digits at the
  // default 6-significant-digit stream precision; the writer must emit
  // max_digits10 so a write -> read round trip is bit-exact.
  graph::FlowNetwork g(4, 0, 3);
  g.add_edge(0, 1, 1234567.0);
  g.add_edge(1, 2, 16777216.125);
  g.add_edge(2, 3, 0.30000000000000004); // 0.1 + 0.2: needs all 17 digits
  g.add_edge(0, 2, 9007199254740992.0);  // 2^53
  std::stringstream ss;
  graph::write_dimacs(ss, g);
  const auto g2 = graph::read_dimacs(ss);
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (int e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(g2.edge(e).capacity, g.edge(e).capacity)
        << "capacity corrupted on edge " << e;
}

TEST(Csr, RoundTripsThroughFlowNetwork) {
  const auto net = graph::rmat(50, 240, {}, 11);
  const graph::CsrGraph g = graph::CsrGraph::from_network(net);
  ASSERT_EQ(g.num_vertices(), net.num_vertices());
  ASSERT_EQ(g.num_edges(), net.num_edges());
  EXPECT_EQ(g.source(), net.source());
  EXPECT_EQ(g.sink(), net.sink());
  for (int e = 0; e < net.num_edges(); ++e) {
    EXPECT_EQ(g.edge_from(e), net.edge(e).from);
    EXPECT_EQ(g.edge_to(e), net.edge(e).to);
    EXPECT_DOUBLE_EQ(g.edge_capacity(e), net.edge(e).capacity);
  }
  // Incidence covers every edge endpoint exactly once per direction.
  std::int64_t arcs = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (const std::int64_t a : g.arcs(v)) {
      const std::int64_t e = graph::CsrGraph::arc_edge(a);
      EXPECT_EQ(graph::CsrGraph::arc_is_out(a) ? g.edge_from(e) : g.edge_to(e),
                v);
      ++arcs;
    }
  }
  EXPECT_EQ(arcs, 2 * g.num_edges());

  const graph::FlowNetwork back = g.to_network();
  ASSERT_EQ(back.num_edges(), net.num_edges());
  for (int e = 0; e < net.num_edges(); ++e) {
    EXPECT_EQ(back.edge(e).from, net.edge(e).from);
    EXPECT_EQ(back.edge(e).to, net.edge(e).to);
    EXPECT_DOUBLE_EQ(back.edge(e).capacity, net.edge(e).capacity);
  }
  double source_out = 0.0;
  for (int e : net.out_edges(net.source()))
    source_out += net.edge(e).capacity;
  EXPECT_DOUBLE_EQ(g.source_out_capacity(), source_out);
}

TEST(Csr, RejectsMalformedEdges) {
  EXPECT_THROW(graph::CsrGraph(3, 0, 2, {0}, {0}, {1.0}),
               std::invalid_argument); // self loop
  EXPECT_THROW(graph::CsrGraph(3, 0, 2, {0}, {1}, {0.0}),
               std::invalid_argument); // non-positive capacity
  EXPECT_THROW(graph::CsrGraph(3, 0, 2, {0}, {7}, {1.0}),
               std::invalid_argument); // endpoint out of range
  EXPECT_THROW(graph::CsrGraph(1, 0, 0, {}, {}, {}),
               std::invalid_argument); // source == sink
}

TEST(Dimacs, StreamReaderMatchesClassicReader) {
  const auto net = graph::uniform_random(60, 300, 40, 5);
  std::stringstream ss;
  graph::write_dimacs(ss, net);
  const std::string text = ss.str();

  std::stringstream classic_in(text), stream_in(text);
  const graph::FlowNetwork classic = graph::read_dimacs(classic_in);
  const graph::CsrGraph streamed = graph::read_dimacs_stream(stream_in);
  ASSERT_EQ(streamed.num_vertices(), classic.num_vertices());
  ASSERT_EQ(streamed.num_edges(), classic.num_edges());
  EXPECT_EQ(streamed.source(), classic.source());
  EXPECT_EQ(streamed.sink(), classic.sink());
  for (int e = 0; e < classic.num_edges(); ++e) {
    EXPECT_EQ(streamed.edge_from(e), classic.edge(e).from);
    EXPECT_EQ(streamed.edge_to(e), classic.edge(e).to);
    EXPECT_EQ(streamed.edge_capacity(e), classic.edge(e).capacity);
  }
}

TEST(Dimacs, StreamReaderSkipSemanticsMatchClassicReader) {
  // Self loops and non-positive capacities are dropped silently by both
  // readers, and both still require the declared arc count to match the
  // a-lines seen (not the arcs kept).
  const std::string text =
      "c skip semantics\n"
      "p max 4 4\n"
      "n 1 s\n"
      "n 4 t\n"
      "a 1 2 5\n"
      "a 2 2 9\n" // self loop: dropped
      "a 2 3 0\n" // zero capacity: dropped
      "a 3 4 6\n";
  std::stringstream classic_in(text), stream_in(text);
  const graph::FlowNetwork classic = graph::read_dimacs(classic_in);
  const graph::CsrGraph streamed = graph::read_dimacs_stream(stream_in);
  EXPECT_EQ(classic.num_edges(), 2);
  EXPECT_EQ(streamed.num_edges(), 2);
  EXPECT_EQ(streamed.edge_to(1), 3);
}

TEST(Dimacs, StreamReaderRejectsMalformedInput) {
  { // truncated: fewer a-lines than declared
    std::stringstream ss("p max 3 2\nn 1 s\nn 3 t\na 1 2 7\n");
    EXPECT_THROW(graph::read_dimacs_stream(ss), std::runtime_error);
  }
  { // arc endpoint out of range
    std::stringstream ss("p max 2 1\nn 1 s\nn 2 t\na 1 9 3\n");
    EXPECT_THROW(graph::read_dimacs_stream(ss), std::runtime_error);
  }
  { // no problem line
    std::stringstream ss("a 1 2 3\n");
    EXPECT_THROW(graph::read_dimacs_stream(ss), std::runtime_error);
  }
  { // garbage field
    std::stringstream ss("p max 2 1\nn 1 s\nn 2 t\na 1 2 bogus\n");
    EXPECT_THROW(graph::read_dimacs_stream(ss), std::runtime_error);
  }
}

TEST(Dimacs, StreamReaderDiagnosesTruncatedInput) {
  { // truncated at a line boundary: the error must reconcile the declared
    // arc count against what was actually read, and name the last line, so
    // a cut-off multi-gigabyte transfer is diagnosable from the message.
    std::stringstream ss("p max 4 3\nn 1 s\nn 4 t\na 1 2 7\na 2 3 4\n");
    try {
      graph::read_dimacs_stream(ss);
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("declares 3"), std::string::npos) << msg;
      EXPECT_NE(msg.find("contains 2"), std::string::npos) << msg;
      EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
    }
  }
  { // truncated mid-line: the arc line itself is incomplete; the error must
    // name the offending line number.
    std::stringstream ss("p max 4 3\nn 1 s\nn 4 t\na 1 2 7\na 2 3");
    try {
      graph::read_dimacs_stream(ss);
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("malformed arc line"), std::string::npos) << msg;
      EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
    }
  }
}

TEST(Dimacs, ClassicReaderRefusesHugeArcCounts) {
  // >= 2^31 arcs cannot be held by FlowNetwork's int edge ids; the classic
  // reader must refuse up front (before consuming gigabytes) and point at
  // the streaming path.
  std::stringstream ss("p max 4 2147483648\nn 1 s\nn 4 t\n");
  try {
    graph::read_dimacs(ss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("read_dimacs_stream"),
              std::string::npos)
        << e.what();
  }
}

TEST(Generators, GridflowIsDeterministicAndWellFormed) {
  const auto a = graph::gridflow(6, 9, 16, 3);
  const auto b = graph::gridflow(6, 9, 16, 3);
  const auto c = graph::gridflow(6, 9, 16, 4);
  const int h = 6, w = 9;
  EXPECT_EQ(a.num_vertices(), h * w + 2);
  EXPECT_EQ(a.num_edges(), 2 * h + h * (w - 1) + 2 * w * (h - 1));
  EXPECT_EQ(a.source(), h * w);
  EXPECT_EQ(a.sink(), h * w + 1);
  a.validate();
  ASSERT_EQ(a.num_edges(), b.num_edges());
  bool differs = false;
  for (int e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).from, b.edge(e).from);
    EXPECT_DOUBLE_EQ(a.edge(e).capacity, b.edge(e).capacity);
    if (a.edge(e).capacity != c.edge(e).capacity) differs = true;
  }
  EXPECT_TRUE(differs) << "seed must matter";
}

TEST(Generators, GridflowDimacsRenditionIsEdgeForEdgeIdentical) {
  // The in-memory generator and the O(1)-memory DIMACS emitter share one
  // walk, so the two renditions must agree edge for edge — that identity is
  // what lets the sharded-solve battery compare the streamed path against
  // the in-memory path on "the same" instance.
  const auto net = graph::gridflow(7, 5, 12, 9);
  std::stringstream ss;
  graph::write_gridflow_dimacs(ss, 7, 5, 12, 9);
  const graph::CsrGraph streamed = graph::read_dimacs_stream(ss);
  ASSERT_EQ(streamed.num_vertices(), net.num_vertices());
  ASSERT_EQ(streamed.num_edges(), net.num_edges());
  EXPECT_EQ(streamed.source(), net.source());
  EXPECT_EQ(streamed.sink(), net.sink());
  for (int e = 0; e < net.num_edges(); ++e) {
    EXPECT_EQ(streamed.edge_from(e), net.edge(e).from) << e;
    EXPECT_EQ(streamed.edge_to(e), net.edge(e).to) << e;
    EXPECT_EQ(streamed.edge_capacity(e), net.edge(e).capacity) << e;
  }
}

TEST(Csr, CheckCsrFlowValidatesConservationAndCapacity) {
  graph::FlowNetwork net(4, 0, 3);
  net.add_edge(0, 1, 2.0);
  net.add_edge(1, 3, 2.0);
  net.add_edge(0, 2, 1.0);
  net.add_edge(2, 3, 1.0);
  const graph::CsrGraph g = graph::CsrGraph::from_network(net);

  const std::vector<double> good{2.0, 2.0, 1.0, 1.0};
  EXPECT_TRUE(graph::check_csr_flow(g, good, 3.0).empty());

  std::vector<double> over = good;
  over[0] = 2.5; // above capacity
  EXPECT_FALSE(graph::check_csr_flow(g, over, 3.5).empty());

  std::vector<double> leaky = good;
  leaky[1] = 1.0; // vertex 1 no longer conserves
  EXPECT_FALSE(graph::check_csr_flow(g, leaky, 2.0).empty());

  EXPECT_FALSE(graph::check_csr_flow(g, good, 2.0).empty()); // wrong value
  const std::vector<double> short_flow{1.0};
  EXPECT_FALSE(graph::check_csr_flow(g, short_flow, 1.0).empty()); // shape
}

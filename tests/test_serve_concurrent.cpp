// Multi-session serving correctness: N client threads x M mixed requests
// against ONE engine, asserting (a) each session's responses are
// bit-identical to a serial replay of the same scripts on a fresh engine —
// the schedule-independent result fields, i.e. everything outside the
// "telemetry" object — and (b) the shared-pool hit/miss/eviction counters
// reconcile across sessions: summing every session's per-request pool
// traffic reproduces each shared pool's own cumulative statistics.
//
// Tolerance note: warm analog point solves are the one documented
// exception to bit-identity (a pooled Newton seed depends on which
// instance last fed the shared pool — see DESIGN.md "Serving
// architecture"), so their flow values are compared to 1e-8 relative and
// everything else in those responses bit-exactly. Sweeps and min-cut
// duals go through shared ReusePools too, and for them bit-identity is
// asserted strictly (canonical priming makes warm results bit-identical
// to cold runs regardless of the pool's feeding order).
//
// The battery runs three ways: in-process (session threads calling
// handle() directly), and through the real event-driven serving front over
// each transport (Unix socket, TCP) — same scripts, same assertions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/serve_engine.hpp"

#ifndef _WIN32
#include "serve_transport_harness.hpp"
#endif

namespace core = aflow::core;

namespace {

constexpr int kSessions = 8;
constexpr int kRequestsPerSession = 14;

long long json_ll(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing key " << key << " in " << json;
  if (at == std::string::npos) return -1;
  return std::strtoll(json.c_str() + at + needle.size(), nullptr, 10);
}

double json_double(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing key " << key << " in " << json;
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

bool json_bool(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  return at != std::string::npos &&
         json.compare(at + needle.size(), 4, "true") == 0;
}

/// Removes the trailing `,"telemetry":{...}` object (balanced braces; the
/// telemetry payload is numeric/boolean only, so no brace can hide inside
/// a string). What remains is the schedule-independent response.
std::string strip_telemetry(std::string s) {
  const std::string key = ",\"telemetry\":{";
  const size_t at = s.find(key);
  if (at == std::string::npos) return s;
  size_t i = at + key.size();
  int depth = 1;
  while (i < s.size() && depth > 0) {
    if (s[i] == '{')
      ++depth;
    else if (s[i] == '}')
      --depth;
    ++i;
  }
  s.erase(at, i - at);
  return s;
}

/// Removes one scalar field (",key":value" including its leading comma).
std::string strip_field(std::string s, const std::string& key) {
  const std::string needle = ",\"" + key + "\":";
  const size_t at = s.find(needle);
  if (at == std::string::npos) return s;
  size_t end = at + needle.size();
  while (end < s.size() && s[end] != ',' && s[end] != '}') ++end;
  s.erase(at, end - at);
  return s;
}

/// Balanced `{...}` substring of the object stored under `key`.
std::string object_after(const std::string& s, const std::string& key) {
  const std::string needle = "\"" + key + "\":{";
  const size_t at = s.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing object " << key << " in " << s;
  if (at == std::string::npos) return {};
  const size_t open = at + needle.size() - 1;
  size_t i = open + 1;
  int depth = 1;
  while (i < s.size() && depth > 0) {
    if (s[i] == '{')
      ++depth;
    else if (s[i] == '}')
      --depth;
    ++i;
  }
  return s.substr(open, i - open);
}

/// The request script of session k. Sessions k, k+3, k+6 share a grid
/// topology (same MNA pattern), so the shared per-pattern pools really are
/// contended; the remaining requests mix reconfigurations, exact and warm
/// solves, shared-pool sweeps and min-cut duals, batches, and stats views.
std::vector<std::string> session_script(int k) {
  const int side = 4 + (k % 3);
  std::vector<std::string> script;
  script.push_back("load --spec grid:side=" + std::to_string(side) +
                   ",seed=1");
  for (int i = 1; static_cast<int>(script.size()) < kRequestsPerSession - 1;
       ++i) {
    switch (i % 7) {
      case 0:
        script.push_back("batch --solver dinic --spec grid:side=" +
                         std::to_string(side) + ",seed=2,vary=3");
        break;
      case 1:
        script.push_back("reconfigure --seed " + std::to_string(31 * k + i));
        break;
      case 2:
        script.push_back("solve --solver dinic");
        break;
      case 3:
        script.push_back("solve --solver analog_dc_warm");
        break;
      case 4:
        script.push_back("sweep --points 3");
        break;
      case 5:
        script.push_back("mincut");
        break;
      default:
        script.push_back("session");
        break;
    }
  }
  script.push_back("session"); // final per-session counters, for reconciling
  return script;
}

bool is_warm_solve(const std::string& request) {
  return request.rfind("solve", 0) == 0 &&
         request.find("analog_dc_warm") != std::string::npos;
}

/// Tolerance-compares one continuous field, then removes it from both
/// responses so the rest stays under the bit-exact comparison.
void compare_near_and_strip(std::string& a, std::string& b,
                            const std::string& key, int session,
                            const std::string& request) {
  const double va = json_double(a, key);
  const double vb = json_double(b, key);
  EXPECT_NEAR(va, vb, 1e-8 * std::max(1.0, std::abs(vb)))
      << "session " << session << " request " << request << " field " << key;
  a = strip_field(a, key);
  b = strip_field(b, key);
}

core::ServeOptions engine_options() {
  core::ServeOptions opt;
  opt.num_threads = 2;
  opt.max_sessions = kSessions + 1; // +1 for the final stats probe
  return opt;
}

/// Runs every script against one engine. `concurrent` drives each session
/// from its own thread; otherwise sessions replay one after another.
std::vector<std::vector<std::string>> run_scripts(
    core::ServeEngine& engine,
    const std::vector<std::vector<std::string>>& scripts, bool concurrent) {
  std::vector<std::shared_ptr<core::ServeSession>> sessions;
  for (size_t k = 0; k < scripts.size(); ++k) {
    sessions.push_back(engine.open_session());
    EXPECT_NE(sessions.back(), nullptr);
  }
  std::vector<std::vector<std::string>> responses(scripts.size());
  const auto drive = [&](size_t k) {
    for (const std::string& line : scripts[k])
      responses[k].push_back(sessions[k]->handle(line));
  };
  if (concurrent) {
    std::vector<std::thread> threads;
    for (size_t k = 0; k < scripts.size(); ++k) threads.emplace_back(drive, k);
    for (std::thread& t : threads) t.join();
  } else {
    for (size_t k = 0; k < scripts.size(); ++k) drive(k);
  }
  return responses;
}

/// The battery's core assertion, shared by the in-process driver and the
/// socket-transport drivers: every session's responses, minus the
/// "telemetry" object, match a serial replay bit-for-bit — except the two
/// documented tolerance cases (warm analog flow; mincut's degenerate
/// continuous diagnostics).
void expect_bit_identical_to_serial(
    const std::vector<std::vector<std::string>>& scripts,
    const std::vector<std::vector<std::string>>& concurrent,
    const std::vector<std::vector<std::string>>& serial) {
  int compared = 0, warm_compared = 0;
  for (int k = 0; k < kSessions; ++k) {
    ASSERT_EQ(concurrent[k].size(), serial[k].size());
    for (size_t i = 0; i < scripts[k].size(); ++i) {
      const std::string& request = scripts[k][i];
      std::string a = strip_telemetry(concurrent[k][i]);
      std::string b = strip_telemetry(serial[k][i]);
      ASSERT_TRUE(json_bool(a, "ok")) << request << " -> " << concurrent[k][i];
      if (is_warm_solve(request)) {
        // Documented exception: the pooled Newton seed depends on pool
        // feeding order, so the flow is tolerance- (not bit-) identical.
        compare_near_and_strip(a, b, "flow", k, request);
        ++warm_compared;
      } else if (request == "mincut") {
        // The min-cut *partition* (side set, cut_value) is bit-identical,
        // but the analog LP's continuous diagnostics sit on a degenerate
        // flat optimum (EXPERIMENTS.md "Degenerate optimal splits"): when
        // the seeded LCP search re-freezes its structure mid-flight (the
        // gmin caveat of DESIGN.md "Serving architecture"), their last
        // bits depend on which instance fed the shared pool.
        compare_near_and_strip(a, b, "objective", k, request);
        compare_near_and_strip(a, b, "flow_recovered", k, request);
      }
      EXPECT_EQ(a, b) << "session " << k << " request '" << request
                      << "' diverged from serial replay";
      ++compared;
    }
  }
  EXPECT_EQ(compared, kSessions * kRequestsPerSession);
  EXPECT_GT(warm_compared, 0);
}

} // namespace

TEST(ServeConcurrent, SessionsAreBitIdenticalToSerialReplay) {
  std::vector<std::vector<std::string>> scripts;
  for (int k = 0; k < kSessions; ++k) scripts.push_back(session_script(k));

  core::ServeEngine concurrent_engine(engine_options());
  const auto concurrent = run_scripts(concurrent_engine, scripts, true);

  core::ServeEngine serial_engine(engine_options());
  const auto serial = run_scripts(serial_engine, scripts, false);

  expect_bit_identical_to_serial(scripts, concurrent, serial);
}

TEST(ServeConcurrent, SharedPoolCountersReconcileAcrossSessions) {
  std::vector<std::vector<std::string>> scripts;
  for (int k = 0; k < kSessions; ++k) scripts.push_back(session_script(k));

  core::ServeEngine engine(engine_options());
  const auto responses = run_scripts(engine, scripts, true);

  // Sum every session's per-request pool traffic from its final `session`
  // view (three scopes: solver-bank, sweep, mincut).
  long long bank_hits = 0, bank_misses = 0, bank_evictions = 0;
  long long sweep_lookups = 0, mincut_lookups = 0;
  long long sweeps = 0, mincuts = 0;
  for (int k = 0; k < kSessions; ++k) {
    const std::string& view = responses[k].back();
    ASSERT_TRUE(json_bool(view, "ok")) << view;
    const std::string solve_m = object_after(view, "solve_metrics");
    bank_hits += json_ll(solve_m, "pool_hits");
    bank_misses += json_ll(solve_m, "pool_misses");
    bank_evictions += json_ll(solve_m, "pool_evictions");
    const std::string sweep_m = object_after(view, "sweep_metrics");
    sweep_lookups +=
        json_ll(sweep_m, "pool_hits") + json_ll(sweep_m, "pool_misses");
    const std::string mincut_m = object_after(view, "mincut_metrics");
    mincut_lookups +=
        json_ll(mincut_m, "pool_hits") + json_ll(mincut_m, "pool_misses");
    sweeps += json_ll(view, "sweeps");
    mincuts += json_ll(view, "mincuts");
  }

  // The engine-wide view of the same pools, via a fresh session.
  const auto probe = engine.open_session();
  ASSERT_NE(probe, nullptr);
  const std::string stats = probe->handle("stats");
  ASSERT_TRUE(json_bool(stats, "ok")) << stats;

  // analog_dc_warm is the only pooled solver bank the scripts touch, so
  // the first bank "pool" object in stats is its shared pool.
  const std::string bank_pool = object_after(stats, "pool");
  EXPECT_EQ(bank_hits, json_ll(bank_pool, "hits"));
  EXPECT_EQ(bank_misses, json_ll(bank_pool, "misses"));
  EXPECT_EQ(bank_evictions, json_ll(bank_pool, "evictions"));
  EXPECT_GT(bank_hits, 0) << "warm solves should hit the shared bank pool";

  // One pool lookup per sweep / min-cut run, by contract.
  const std::string sweep_pool = object_after(stats, "sweep_pool");
  EXPECT_EQ(sweep_lookups,
            json_ll(sweep_pool, "hits") + json_ll(sweep_pool, "misses"));
  EXPECT_EQ(sweeps, sweep_lookups);
  const std::string mincut_pool = object_after(stats, "mincut_pool");
  EXPECT_EQ(mincut_lookups,
            json_ll(mincut_pool, "hits") + json_ll(mincut_pool, "misses"));
  EXPECT_EQ(mincuts, mincut_lookups);

  // Engine-level sweep/mincut accumulators agree with the session sums.
  const std::string engine_sweep_m = object_after(stats, "sweep_metrics");
  EXPECT_EQ(sweep_lookups, json_ll(engine_sweep_m, "pool_hits") +
                               json_ll(engine_sweep_m, "pool_misses"));
  EXPECT_EQ(sweeps, json_ll(stats, "sweeps"));
  EXPECT_EQ(mincuts, json_ll(stats, "mincuts"));

  // Session registry: 8 script sessions (closed when run_scripts returned)
  // plus this probe (still open).
  const std::string sessions = object_after(stats, "sessions");
  EXPECT_EQ(json_ll(sessions, "opened"), kSessions + 1);
  EXPECT_EQ(json_ll(sessions, "open"), 1);
  EXPECT_EQ(json_ll(sessions, "peak"), kSessions);
}

TEST(ServeConcurrent, EngineEnforcesTheSessionCap) {
  core::ServeOptions opt;
  opt.max_sessions = 2;
  core::ServeEngine engine(opt);

  auto a = engine.open_session();
  auto b = engine.open_session();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(engine.open_session(), nullptr);
  EXPECT_EQ(engine.open_sessions(), 2);

  const std::string reject = engine.reject_line();
  EXPECT_NE(reject.find("\"ok\":false"), std::string::npos) << reject;
  EXPECT_NE(reject.find("session limit"), std::string::npos) << reject;

  // Releasing a session frees its slot.
  a.reset();
  EXPECT_EQ(engine.open_sessions(), 1);
  auto c = engine.open_session();
  EXPECT_NE(c, nullptr);
  EXPECT_NE(c->id(), b->id());
}

#ifndef _WIN32

// The same battery, but with the concurrent side driven through the real
// serving front — framing, queueing, worker scheduling, response routing —
// over each transport. The assertions are UNCHANGED from the in-process
// battery: whatever the event-driven front does to the schedule, the
// schedule-independent response fields must still match a serial replay.
class ServeConcurrentTransport
    : public ::testing::TestWithParam<serve_test::Transport> {};

TEST_P(ServeConcurrentTransport, SocketSessionsAreBitIdenticalToSerialReplay) {
  std::vector<std::vector<std::string>> scripts;
  for (int k = 0; k < kSessions; ++k) scripts.push_back(session_script(k));

  std::vector<std::vector<std::string>> concurrent(kSessions);
  {
    serve_test::FrontHarness harness(GetParam(), engine_options());

    // The serial replay opens its sessions in script order, and `session`
    // responses carry the engine-assigned session id — so client k must
    // own session id k+1. Connect one client at a time and round-trip its
    // first request (load) before connecting the next: accept order, and
    // with it id order, is then deterministic.
    std::vector<std::unique_ptr<serve_test::Client>> clients;
    for (int k = 0; k < kSessions; ++k) {
      clients.push_back(std::make_unique<serve_test::Client>(harness));
      ASSERT_TRUE(clients.back()->connected());
      clients.back()->send_raw(scripts[k][0] + "\n");
      concurrent[k].push_back(clients.back()->read_line());
      ASSERT_TRUE(json_bool(concurrent[k][0], "ok")) << concurrent[k][0];
    }

    // Now genuinely concurrent: every session streams its remaining
    // script from its own thread, pipelining the requests and collecting
    // the responses in arrival order (which the front must keep equal to
    // send order per session).
    std::vector<std::thread> drivers;
    for (int k = 0; k < kSessions; ++k) {
      drivers.emplace_back([&, k] {
        std::string burst;
        for (size_t i = 1; i < scripts[k].size(); ++i)
          burst += scripts[k][i] + "\n";
        clients[k]->send_raw(burst);
        for (size_t i = 1; i < scripts[k].size(); ++i)
          concurrent[k].push_back(clients[k]->read_line());
      });
    }
    for (std::thread& t : drivers) t.join();
  }

  core::ServeEngine serial_engine(engine_options());
  const auto serial = run_scripts(serial_engine, scripts, false);

  expect_bit_identical_to_serial(scripts, concurrent, serial);
}

INSTANTIATE_TEST_SUITE_P(
    Transports, ServeConcurrentTransport,
    ::testing::Values(serve_test::Transport::kUnix,
                      serve_test::Transport::kTcp),
    [](const ::testing::TestParamInfo<serve_test::Transport>& info) {
      return serve_test::transport_name(info.param);
    });

#endif // _WIN32

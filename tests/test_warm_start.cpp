// Cross-instance warm-start layer: ReusePool semantics, DcSolver warm
// entry, SparseLU prototype entry, transient incremental RHS, and the
// deterministic-batch reproducibility contract.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "analog/solver.hpp"
#include "core/batch_engine.hpp"
#include "core/registry.hpp"
#include "core/reuse_pool.hpp"
#include "core/workload.hpp"
#include "graph/generators.hpp"
#include "sim/dc.hpp"
#include "sim/transient.hpp"

namespace analog = aflow::analog;
namespace circuit = aflow::circuit;
namespace core = aflow::core;
namespace graph = aflow::graph;
namespace la = aflow::la;
namespace sim = aflow::sim;

namespace {

analog::AnalogSolveOptions reconfig_options(bool warm) {
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kIdeal;
  opt.config.parasitic_capacitance = 0.0;
  opt.config.vflow = 10.0;
  // Dedicated level sources: the MNA pattern depends only on the graph
  // topology, so capacity variants actually share a pool entry.
  opt.config.dedicated_level_sources = true;
  opt.method = analog::SolveMethod::kSteadyState;
  opt.ordering_cache = std::make_shared<la::OrderingCache>();
  if (warm) opt.reuse_pool = std::make_shared<core::ReusePool>();
  return opt;
}

} // namespace

TEST(ReusePool, StoreFindAndMergeSemantics) {
  core::ReusePool pool;
  EXPECT_EQ(pool.find(42), nullptr);
  EXPECT_EQ(pool.stats().misses, 1);

  core::ReuseEntry dc;
  dc.state = std::make_shared<const circuit::DeviceState>();
  dc.x = std::make_shared<const std::vector<double>>(3, 1.0);
  pool.store(42, dc);
  const auto hit = pool.find(42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->x->size(), 3u);
  EXPECT_EQ(pool.size(), 1u);

  // A partial store (transient publishes only the LU) must not wipe the
  // device state a DC store published under the same key.
  core::ReuseEntry transient;
  transient.lu = std::make_shared<const la::SparseLU>();
  pool.store(42, transient);
  const auto merged = pool.find(42);
  ASSERT_NE(merged, nullptr);
  EXPECT_NE(merged->lu, nullptr);
  ASSERT_NE(merged->state, nullptr);
  ASSERT_NE(merged->x, nullptr);
  EXPECT_EQ(merged->x->size(), 3u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(SparseMatrixPatternKey, CachedAcrossValueUpdates) {
  la::Triplets t(3, 3);
  t.add(0, 0, 2.0);
  t.add(1, 1, 3.0);
  t.add(2, 2, 4.0);
  t.add(0, 1, -1.0);
  std::vector<int> slots;
  la::SparseMatrix m = la::SparseMatrix::from_triplets(t, &slots);
  const std::uint64_t key = m.pattern_key();
  EXPECT_NE(key, 0u);

  // Numeric-only update: same pattern, same key.
  la::Triplets t2(3, 3);
  t2.add(0, 0, 5.0);
  t2.add(1, 1, 6.0);
  t2.add(2, 2, 7.0);
  t2.add(0, 1, -2.0);
  m.update_values(t2.entries(), slots);
  EXPECT_EQ(m.pattern_key(), key);

  // Different pattern, different key.
  la::Triplets t3(3, 3);
  t3.add(0, 0, 2.0);
  t3.add(1, 1, 3.0);
  t3.add(2, 2, 4.0);
  t3.add(1, 0, -1.0);
  const la::SparseMatrix m3 = la::SparseMatrix::from_triplets(t3);
  EXPECT_NE(m3.pattern_key(), key);
}

TEST(DcSolverWarmStart, CountersReconcileAndWarmConvergesFaster) {
  const auto instances = core::load_batch("grid:side=5,seed=7,vary=2");
  const analog::AnalogSolveOptions opt = reconfig_options(/*warm=*/false);
  const analog::MaxFlowCircuit c0 =
      analog::AnalogMaxFlowSolver(opt).map(instances[0]);

  sim::DcSolver solver(c0.netlist);
  circuit::DeviceState state = circuit::DeviceState::initial(c0.netlist);
  const std::vector<double> x_cold = solver.solve(state);
  const sim::DcStats cold = solver.stats();
  EXPECT_FALSE(cold.warm_started);
  EXPECT_EQ(cold.warm_iterations, 0);
  EXPECT_EQ(cold.cold_iterations, cold.iterations);

  // Warm restart from the converged state: must converge (in one or two
  // iterations — nothing changed) and attribute its work as warm.
  circuit::DeviceState warm_state = state;
  const std::vector<double> x_warm = solver.solve_warm(warm_state, x_cold);
  const sim::DcStats warm = solver.stats();
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.cold_iterations, 0);
  EXPECT_EQ(warm.warm_iterations, warm.iterations);
  EXPECT_LE(warm.iterations, 2);
  EXPECT_LT(warm.iterations, cold.iterations);
  ASSERT_EQ(x_warm.size(), x_cold.size());
  for (size_t i = 0; i < x_warm.size(); ++i)
    EXPECT_NEAR(x_warm[i], x_cold[i], 1e-9) << "unknown " << i;
}

TEST(DcSolverWarmStart, PrototypeEntrySkipsSymbolicAnalysis) {
  const auto instances = core::load_batch("grid:side=5,seed=9,vary=2");
  const analog::AnalogSolveOptions opt = reconfig_options(/*warm=*/false);
  const analog::AnalogMaxFlowSolver mapper(opt);
  const analog::MaxFlowCircuit c0 = mapper.map(instances[0]);
  const analog::MaxFlowCircuit c1 = mapper.map(instances[1]);

  sim::DcSolver first(c0.netlist);
  circuit::DeviceState s0 = circuit::DeviceState::initial(c0.netlist);
  first.solve(s0);
  const auto prototype = first.share_factorization();
  ASSERT_NE(prototype, nullptr);

  sim::DcSolver second(c1.netlist);
  ASSERT_EQ(second.pattern_key(), first.pattern_key())
      << "capacity variants must share the MNA pattern";
  second.set_lu_prototype(prototype);
  circuit::DeviceState s1 = circuit::DeviceState::initial(c1.netlist);
  second.solve(s1);
  EXPECT_EQ(second.stats().full_factors, 0);
  EXPECT_GE(second.stats().prototype_refactors, 1);
}

TEST(WarmStart, WarmBatchMatchesColdBatchUnderDeterministicOrder) {
  // The satellite contract: a warm-started reconfiguration batch must
  // reproduce the cold-started results. Flow values agree to 1e-9 (the
  // final factorisation's pivot order can differ in provenance — prototype
  // vs own full factor — which perturbs last-bit rounding), and the warm
  // run itself is bit-reproducible: same pool, same order, same bits.
  const auto instances = core::load_batch("grid:side=6,seed=5,vary=6");

  const analog::AnalogMaxFlowSolver cold(reconfig_options(false));
  const analog::AnalogMaxFlowSolver warm_a(reconfig_options(true));
  const analog::AnalogMaxFlowSolver warm_b(reconfig_options(true));

  int warm_started = 0;
  for (const auto& net : instances) {
    const auto rc = cold.solve(net);
    const auto ra = warm_a.solve(net);
    const auto rb = warm_b.solve(net);
    const double scale = std::max(1.0, std::abs(rc.flow_value));
    EXPECT_NEAR(ra.flow_value, rc.flow_value, 1e-9 * scale);
    // Bit-identical across repeated warm runs in the same order.
    EXPECT_EQ(ra.flow_value, rb.flow_value);
    ASSERT_EQ(ra.edge_flow.size(), rb.edge_flow.size());
    for (size_t e = 0; e < ra.edge_flow.size(); ++e)
      EXPECT_EQ(ra.edge_flow[e], rb.edge_flow[e]);
    // warm + cold iteration counters reconcile with the total.
    EXPECT_EQ(ra.warm_iterations + ra.cold_iterations, ra.dc_iterations);
    EXPECT_EQ(rc.warm_iterations, 0);
    if (ra.warm_started) ++warm_started;
  }
  // Everything after the first instance warm-starts on this workload.
  EXPECT_GE(warm_started, static_cast<int>(instances.size()) - 1);
}

TEST(WarmStart, FallsBackCleanlyWhenPatternChangesMidBatch) {
  // Alternating shapes through one warm solver: each shape keeps its own
  // pool entry, results match the cold reference, nothing leaks across.
  const auto small = core::load_batch("grid:side=4,seed=3,vary=3");
  const auto large = core::load_batch("grid:side=5,seed=3,vary=3");
  std::vector<graph::FlowNetwork> mixed;
  for (size_t i = 0; i < small.size(); ++i) {
    mixed.push_back(small[i]);
    mixed.push_back(large[i]);
  }

  const analog::AnalogSolveOptions warm_opt = reconfig_options(true);
  const analog::AnalogMaxFlowSolver warm(warm_opt);
  const analog::AnalogMaxFlowSolver cold(reconfig_options(false));
  for (const auto& net : mixed) {
    const auto rw = warm.solve(net);
    const auto rc = cold.solve(net);
    const double scale = std::max(1.0, std::abs(rc.flow_value));
    EXPECT_NEAR(rw.flow_value, rc.flow_value, 1e-9 * scale);
  }
  // One pool entry per distinct pattern.
  EXPECT_EQ(warm_opt.reuse_pool->size(), 2u);
  EXPECT_GT(warm_opt.reuse_pool->stats().hits, 0);
}

TEST(WarmStart, BatchEngineDeterministicModeIsThreadCountInvariant) {
  // Deterministic mode forces sequential in-order execution, so the warm
  // adapters must be bit-identical regardless of the requested thread
  // count — the acceptance contract of the warm-start layer.
  const auto instances = core::load_batch("grid:side=5,seed=11,vary=6");

  core::BatchOptions a;
  a.solver = "analog_dc_warm";
  a.deterministic = true;
  a.num_threads = 1;
  core::BatchOptions b = a;
  b.num_threads = 8;

  const auto ra = core::BatchEngine(a).run(instances);
  const auto rb = core::BatchEngine(b).run(instances);
  ASSERT_EQ(ra.failed, 0);
  ASSERT_EQ(rb.failed, 0);
  EXPECT_EQ(ra.threads_used, 1);
  EXPECT_EQ(rb.threads_used, 1);
  for (size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(ra.outcomes[i].result.flow_value,
              rb.outcomes[i].result.flow_value)
        << "instance " << i;
    ASSERT_EQ(ra.outcomes[i].result.edge_flow.size(),
              rb.outcomes[i].result.edge_flow.size());
    for (size_t e = 0; e < ra.outcomes[i].result.edge_flow.size(); ++e)
      EXPECT_EQ(ra.outcomes[i].result.edge_flow[e],
                rb.outcomes[i].result.edge_flow[e]);
  }
  // The aggregated telemetry shows the pool at work.
  EXPECT_GE(ra.warm_started_instances,
            static_cast<int>(instances.size()) - 1);
  EXPECT_EQ(ra.metrics.warm_iterations + ra.metrics.cold_iterations,
            ra.metrics.iterations);
}

TEST(TransientIncrementalRhs, BitIdenticalToFullAssemblyAndReconciles) {
  // A/B the incremental-RHS tape replay against assemble-every-solve on a
  // dynamic circuit (lag fidelity + parasitics): waveforms must be
  // bit-identical — the replay is the same arithmetic in the same order.
  const auto instances = core::load_batch("grid:side=4,seed=5,vary=2");
  analog::AnalogSolveOptions opt;
  opt.config.fidelity = analog::NegResFidelity::kLag;
  opt.config.stability_margin = 0.05;
  opt.config.parasitic_capacitance = 20e-15;
  opt.config.vflow = 10.0;
  opt.config.dedicated_level_sources = true;
  opt.method = analog::SolveMethod::kTransient;

  const analog::MaxFlowCircuit c =
      analog::AnalogMaxFlowSolver(opt).map(instances[1]);

  auto run_with = [&](bool incremental) {
    sim::TransientOptions topt;
    topt.dt_initial = 1e-12;
    topt.dt_max = 1e-8;
    topt.t_stop = 2e-8;
    topt.incremental_rhs = incremental;
    sim::TransientSolver solver(c.netlist, topt);
    circuit::DeviceState state = circuit::DeviceState::initial(c.netlist);
    std::vector<sim::Probe> probes{
        sim::Probe::source_current(c.vflow_source, "Iflow")};
    const sim::Waveform wf = solver.run(state, probes);
    return std::make_pair(wf, solver.stats());
  };

  const auto [wf_full, st_full] = run_with(false);
  const auto [wf_incr, st_incr] = run_with(true);

  ASSERT_EQ(wf_full.time.size(), wf_incr.time.size());
  for (size_t k = 0; k < wf_full.time.size(); ++k) {
    EXPECT_EQ(wf_full.time[k], wf_incr.time[k]);
    EXPECT_EQ(wf_full.samples[k][0], wf_incr.samples[k][0]) << "step " << k;
  }

  // Counter reconciliation: every solve is either a full assemble or an
  // RHS-only refresh, and the incremental path actually engages.
  EXPECT_EQ(st_incr.full_assembles + st_incr.rhs_refreshes, st_incr.solves);
  EXPECT_GT(st_incr.rhs_refreshes, 0);
  EXPECT_EQ(st_full.rhs_refreshes, 0);
  EXPECT_EQ(st_full.full_assembles, st_full.solves);
  // Identical integration path: same solve count either way.
  EXPECT_EQ(st_full.solves, st_incr.solves);
  EXPECT_EQ(st_full.steps, st_incr.steps);
}

TEST(WarmStart, WarmAdaptersAreRegistered) {
  auto& reg = core::SolverRegistry::instance();
  ASSERT_TRUE(reg.contains("analog_dc_warm"));
  ASSERT_TRUE(reg.contains("analog_transient_warm"));
  const auto g = graph::paper_example_fig5();
  EXPECT_NEAR(core::solve("analog_dc_warm", g).flow_value, 2.0, 0.15);
}

// Netlist construction rules and behavioural device models.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/netlist.hpp"

namespace circuit = aflow::circuit;

TEST(Netlist, NodeCreationAndNames) {
  circuit::Netlist nl;
  EXPECT_EQ(nl.num_nodes(), 1); // ground
  const auto a = nl.new_node("alpha");
  const auto b = nl.new_node();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(nl.node_name(a), "alpha");
  EXPECT_EQ(nl.node_name(0), "gnd");
}

TEST(Netlist, DeviceValidation) {
  circuit::Netlist nl;
  const auto a = nl.new_node();
  EXPECT_THROW(nl.add_resistor(a, 99, 1.0), std::invalid_argument);
  EXPECT_THROW(nl.add_resistor(a, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(nl.add_negative_resistor(a, 0, -5.0), std::invalid_argument);
  EXPECT_THROW(nl.add_negative_resistor(a, 0, 5.0, -1.0), std::invalid_argument);
  EXPECT_THROW(nl.add_capacitor(a, 0, 0.0), std::invalid_argument);
  circuit::OpAmpParams bad;
  bad.r_out = 0.0;
  EXPECT_THROW(nl.add_opamp(a, 0, a, bad), std::invalid_argument);
  circuit::MemristorParams mp;
  mp.r_hrs = mp.r_lrs; // not > LRS
  EXPECT_THROW(nl.add_memristor(a, 0, mp, 1e4), std::invalid_argument);
}

TEST(Netlist, MemristanceIsClampedToDeviceRange) {
  circuit::Netlist nl;
  const auto a = nl.new_node();
  circuit::MemristorParams mp; // 10k .. 1M
  const int id = nl.add_memristor(a, 0, mp, 1.0);
  EXPECT_DOUBLE_EQ(nl.memristors()[id].memristance, mp.r_lrs);
}

TEST(OpAmp, TauMatchesDominantPole) {
  circuit::OpAmp op;
  op.params.gain = 1e4;
  op.params.gbw = 10e9;
  // tau = A / (2 pi GBW)
  EXPECT_NEAR(op.tau(), 1e4 / (2.0 * std::numbers::pi * 10e9), 1e-12);
}

TEST(Memristor, ThresholdSwitchingAndRetention) {
  circuit::MemristorParams mp;
  circuit::Memristor m{0, 0, mp, mp.r_hrs};

  // Below threshold: retention.
  m.apply_programming_pulse(1.0, 1e-6);
  EXPECT_DOUBLE_EQ(m.memristance, mp.r_hrs);

  // Above threshold: switches toward LRS and clamps there.
  m.apply_programming_pulse(2.4, 2e-9);
  EXPECT_DOUBLE_EQ(m.memristance, mp.r_lrs);
  EXPECT_TRUE(m.is_lrs());

  // Reverse polarity: back toward HRS.
  m.apply_programming_pulse(-2.4, 2e-9);
  EXPECT_DOUBLE_EQ(m.memristance, mp.r_hrs);
  EXPECT_FALSE(m.is_lrs());
}

TEST(Memristor, PartialSwitchingScalesWithPulseWidth) {
  circuit::MemristorParams mp;
  mp.switch_rate = 1e12; // slow device: partial switching
  circuit::Memristor m{0, 0, mp, mp.r_hrs};
  m.apply_programming_pulse(2.3, 1e-9);
  const double after_one = m.memristance;
  EXPECT_LT(after_one, mp.r_hrs);
  EXPECT_GT(after_one, mp.r_lrs);
  m.apply_programming_pulse(2.3, 1e-9);
  EXPECT_LT(m.memristance, after_one);
}

TEST(Netlist, NicSubcircuitShape) {
  circuit::Netlist nl;
  const auto t = nl.new_node("t");
  const int amp = nl.add_nic_negative_resistor(t, 5e3, 10e3, {});
  EXPECT_EQ(amp, 0);
  EXPECT_EQ(nl.resistors().size(), 3u);
  EXPECT_EQ(nl.opamps().size(), 1u);
  EXPECT_EQ(nl.opamps()[0].in_plus, t);
}
